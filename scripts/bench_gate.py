#!/usr/bin/env python3
"""Compile-time benchmark regression gate.

Compares a freshly generated BENCH_compile.json (written by
bench/bench_compile_time) against the committed baseline in
results/BENCH_compile_baseline.json and fails when a timing metric
regresses past its threshold.

Metric classes:

  *_ns counters   timing; gated on the ratio current/baseline.  Each
                  metric owns a warn threshold (default 1.5x; the synth
                  placement-scaling metrics use 2.0x because they are
                  sub-second and noisier on shared runners).  Crossing
                  the warn threshold fails the gate unless --warn-only.
  *.entries       determinism; must match the baseline exactly (the synth
                  generator is seeded, so a drift means the workload or
                  the analysis changed shape -- rebase the baseline
                  deliberately).  Always enforced, even with --warn-only.
  speedup         synth.n2000.speedup_jobs8_pct must reach
                  SPEEDUP_MIN_PCT (4x) -- but only when the measuring
                  host reports host.cores >= SPEEDUP_MIN_CORES (8): a
                  small container cannot demonstrate an 8-job speedup no
                  matter how good the engine is, so the bar is
                  core-scaled rather than absolute.

The gate is ENFORCING by default: exact-match and placement-time metric
failures exit nonzero.  Escape hatches, in order of preference:

  1. A real regression: fix it, or rebase the baseline deliberately
     (run bench_compile_time, copy BENCH_compile.json over
     results/BENCH_compile_baseline.json, and say why in the commit).
  2. A known-noisy runner: pass --warn-only to downgrade timing-ratio
     crossings to warnings.  Exact-match counters and a regression
     beyond --hard-fail (default 3.0x) still fail even then.
  3. A host-specific speedup miss (e.g. a shared runner that throttles
     its cores): pass --allow-speedup-miss to downgrade the parallel
     speedup check to a warning.  Use this only with a link to the
     runner's incident; the check is the acceptance bar for the
     parallel placement engine.

Exit codes: 0 ok, 1 regression, 2 usage/IO error.
"""

import argparse
import json
import sys

# Per-metric warn thresholds (ratio current/baseline). Anything not listed
# uses DEFAULT_WARN. The synth metrics are the primary gate signal: they
# track the indexed placement engine on a ~1200-entry routine.
WARN_THRESHOLDS = {
    "synth.n400.placement_ns": 2.0,
    "synth.n400.audit_ns": 2.0,
    "synth.n400.placement_plus_audit_ns": 2.0,
    "synth.n400.wall_ns": 2.0,
    "synth.n400.verify_ns": 2.0,
    "synth.n400.verified_wall_ns": 2.0,
    "synth.n2000.placement_plus_audit_jobs1_ns": 2.0,
    "synth.n2000.placement_plus_audit_jobs8_ns": 2.0,
    "synth.n10000.placement_plus_audit_jobs8_ns": 2.0,
    "synth.n10000.wall_jobs8_ns": 2.0,
}
DEFAULT_WARN = 1.5

# Parallel placement speedup bar: placement+audit at 8 jobs must be at
# least SPEEDUP_MIN_PCT/100 times faster than serial on the n2000 synth
# workload -- enforced only when the measuring host has SPEEDUP_MIN_CORES
# or more cores (the metric is meaningless on smaller hosts).
SPEEDUP_MIN_PCT = 400
SPEEDUP_MIN_CORES = 8

# The translation-validation verifier must stay cheap relative to the
# compilation it validates: verify_ns <= this fraction of the unverified
# synth wall time (checked within the current run, independent of baseline).
VERIFY_OVERHEAD_LIMIT = 0.25

# Counters that must match the baseline bit-for-bit.
EXACT_KEYS = {"synth.n400.entries", "synth.n2000.entries",
              "synth.n10000.entries"}


def load_counters(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_gate: error: cannot read '{path}': {e}", file=sys.stderr)
        sys.exit(2)
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        print(f"bench_gate: error: '{path}' has no counters object",
              file=sys.stderr)
        sys.exit(2)
    return counters


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="results/BENCH_compile_baseline.json")
    ap.add_argument("--current", default="BENCH_compile.json")
    ap.add_argument("--warn-only", action="store_true",
                    help="warn-threshold crossings do not fail the gate")
    ap.add_argument("--hard-fail", type=float, default=3.0,
                    help="ratio that fails even with --warn-only")
    ap.add_argument("--allow-speedup-miss", action="store_true",
                    help="downgrade the parallel speedup bar to a warning "
                         "(documented escape hatch for throttled runners)")
    args = ap.parse_args()

    base = load_counters(args.baseline)
    cur = load_counters(args.current)

    failures = []
    warnings = []

    for key in sorted(set(base) | set(cur)):
        if key not in cur:
            warnings.append(f"{key}: present in baseline, missing in current")
            continue
        if key not in base:
            print(f"  new    {key} = {cur[key]}")
            continue
        b, c = base[key], cur[key]

        if key in EXACT_KEYS:
            if b != c:
                failures.append(f"{key}: expected {b}, got {c} "
                                "(deterministic counter drifted)")
            else:
                print(f"  exact  {key} = {c}")
            continue

        if not key.endswith("_ns"):
            print(f"  info   {key} = {c} (baseline {b})")
            continue

        if b <= 0:
            warnings.append(f"{key}: baseline is {b}, cannot compute ratio")
            continue
        ratio = c / b
        warn_at = WARN_THRESHOLDS.get(key, DEFAULT_WARN)

        # Compile-server round-trip latency is scheduling-sensitive (it
        # measures a daemon thread handoff, not just compiler work), so the
        # serve.* metrics never fail the gate -- they warn, even past
        # --hard-fail, so the trend stays visible without gating merges on
        # runner scheduling noise.  The collective.* metrics are simulated
        # (deterministic model outputs, not wall clock); they shift whenever
        # the cost model is recalibrated, so they are likewise warn-only and
        # a drift means "rebase the baseline with the recalibration commit".
        if key.startswith("serve.") or key.startswith("collective."):
            if ratio > warn_at:
                warnings.append(f"{key}: {c} vs baseline {b} "
                                f"({ratio:.2f}x > {warn_at}x, warn-only)")
                verdict = "warn"
            else:
                verdict = "ok"
            print(f"  {verdict:<6} {key} ratio {ratio:.2f} "
                  f"(current {c}, baseline {b})")
            continue

        verdict = "ok"
        if ratio > args.hard_fail:
            failures.append(f"{key}: {c} vs baseline {b} "
                            f"({ratio:.2f}x > hard limit {args.hard_fail}x)")
            verdict = "FAIL"
        elif ratio > warn_at:
            msg = (f"{key}: {c} vs baseline {b} "
                   f"({ratio:.2f}x > {warn_at}x)")
            if args.warn_only:
                warnings.append(msg)
                verdict = "warn"
            else:
                failures.append(msg)
                verdict = "FAIL"
        print(f"  {verdict:<6} {key} ratio {ratio:.2f} "
              f"(current {c}, baseline {b})")

    # Parallel placement speedup: gated within the current run, core-scaled
    # by the recording host (see SPEEDUP_MIN_CORES above).
    speedup = cur.get("synth.n2000.speedup_jobs8_pct")
    cores = cur.get("host.cores", 0)
    if speedup is not None:
        if cores < SPEEDUP_MIN_CORES:
            print(f"  skip   parallel speedup check: host has {cores} "
                  f"core(s), bar applies at >= {SPEEDUP_MIN_CORES} "
                  f"(measured {speedup / 100:.2f}x)")
        elif speedup < SPEEDUP_MIN_PCT:
            msg = (f"synth.n2000.speedup_jobs8_pct: {speedup / 100:.2f}x "
                   f"speedup at 8 jobs on a {cores}-core host "
                   f"(bar {SPEEDUP_MIN_PCT / 100:.0f}x)")
            if args.allow_speedup_miss:
                warnings.append(msg)
            else:
                failures.append(msg)
        else:
            print(f"  ok     parallel speedup {speedup / 100:.2f}x at 8 jobs "
                  f"({cores}-core host, bar {SPEEDUP_MIN_PCT / 100:.0f}x)")

    # Collective lowering wins: the lowered round schedules should beat the
    # monolithic pattern cost on at least 3 of the 4 Figure 10 workloads on
    # the SP2.  Warn-only (the counters come from the deterministic
    # simulator, but the bar belongs to the lowering PR's acceptance, not to
    # every future cost-model recalibration).
    wins = cur.get("collective.sp2_wins")
    if wins is not None:
        if wins < 3:
            warnings.append(f"collective.sp2_wins: lowered collectives beat "
                            f"the monolithic model on only {wins}/4 Figure "
                            f"10 workloads (expected >= 3)")
        else:
            print(f"  ok     collective lowering wins on {wins}/4 Figure 10 "
                  f"workloads (SP2)")

    # Verifier overhead: gated within the current run so it holds on any
    # machine, not just relative to the baseline's.
    verify_ns = cur.get("synth.n400.verify_ns")
    wall_ns = cur.get("synth.n400.wall_ns")
    if verify_ns is not None and wall_ns:
        overhead = verify_ns / wall_ns
        if overhead > VERIFY_OVERHEAD_LIMIT:
            failures.append(
                f"synth.n400.verify_ns: {verify_ns} is {overhead:.0%} of "
                f"synth.n400.wall_ns {wall_ns} "
                f"(limit {VERIFY_OVERHEAD_LIMIT:.0%})")
        else:
            print(f"  ok     verify overhead {overhead:.1%} of synth wall "
                  f"(limit {VERIFY_OVERHEAD_LIMIT:.0%})")

    for w in warnings:
        print(f"bench_gate: warning: {w}")
    for f in failures:
        print(f"bench_gate: FAIL: {f}")
    if failures:
        return 1
    print(f"bench_gate: ok ({len(base)} baseline metrics, "
          f"{len(warnings)} warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
