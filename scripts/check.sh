#!/usr/bin/env bash
# Full local check: regular build + tests, then an ASan/UBSan build + tests.
# Usage: scripts/check.sh [extra cmake args...]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

echo "== regular build =="
cmake -B build -S . "$@"
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== sanitizer build (address;undefined) =="
cmake -B build-asan -S . -DGCA_SANITIZE="address;undefined" "$@"
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== all checks passed =="
