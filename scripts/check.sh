#!/usr/bin/env bash
# Full local check, in four stages:
#   1. regular build + the whole ctest suite (use `ctest -L tier1` by hand
#      for the fast gate);
#   2. Debug build with the translation validator between every pass
#      (--verify=each) over examples/ and the built-in workloads, plus the
#      fuzz shards (which use the verifier as their plan oracle);
#   3. ASan/UBSan build + the whole suite;
#   4. TSan build of the parallel batch driver, verifying that an 8-way
#      compile of every built-in workload is race-free and bitwise equal to
#      a serial run, that intra-compilation parallel placement
#      (--placement-jobs=8) is race-free over the examples and a fuzz
#      shard, that the shared result cache is race-free and single-flight
#      under 8-way duplicated inputs, that the trace collector's
#      lock-free per-thread lanes are race-free under an 8-way traced
#      batch compile, and that the compile server is race-free under an
#      8-client gca-load mix — with the HTTP admin plane scraped
#      continuously from a background thread for the whole run — followed
#      by a SIGTERM drain.
# Usage: scripts/check.sh [extra cmake args...]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

echo "== regular build =="
cmake -B build -S . "$@"
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== verifier build (Debug, --verify=each) =="
# Debug build so every assert is live, then the structural IR verifier and
# the independent availability dataflow run between every pass over each
# example and built-in workload. The fuzz shards re-run here too: each seed
# already calls the verifier as its plan oracle, so this exercises it across
# all 120 fuzz plans with asserts on.
cmake -B build-debug -S . -DCMAKE_BUILD_TYPE=Debug "$@"
cmake --build build-debug -j "$JOBS" --target gca-compile gca_fuzz_tests
build-debug/tools/gca-compile --workloads examples/*.hpf --audit --lint \
  --verify=each --stats > /dev/null
ctest --test-dir build-debug -L fuzz --output-on-failure -j "$JOBS"

echo "== sanitizer build (address;undefined) =="
cmake -B build-asan -S . -DGCA_SANITIZE="address;undefined" "$@"
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== thread sanitizer run (parallel batch driver) =="
cmake -B build-tsan -S . -DGCA_SANITIZE="thread" "$@"
cmake --build build-tsan -j "$JOBS" --target gca-compile
build-tsan/tools/gca-compile --workloads --jobs 8 --stats --audit --lint \
  --verify-determinism > /dev/null

echo "== thread sanitizer run (parallel placement, --placement-jobs=8) =="
# Intra-compilation parallelism: the placement and audit phases fan
# per-entry work across a session-owned pool. Examples plus the built-in
# workloads and a synthetic routine set run with 8 placement jobs under
# TSan; a fuzz shard re-runs with the pool active via GCA_FUZZ_PLACEMENT_JOBS.
build-tsan/tools/gca-compile --workloads examples/*.hpf --audit --lint \
  --stats --placement-jobs=8 > /dev/null
build-tsan/tools/gca-compile --synth=400 --synth-seed=1 --repeat=2 \
  --strategy=comb --audit --stats --placement-jobs=8 > /dev/null
cmake --build build-tsan -j "$JOBS" --target gca_fuzz_tests
GCA_FUZZ_PLACEMENT_JOBS=8 ctest --test-dir build-tsan -L 'fuzz-shard0$' \
  --output-on-failure -j "$JOBS"

echo "== thread sanitizer run (shared result cache, single-flight) =="
# Eight copies of the same input race for one cache key: under single-flight
# exactly one compiles (1 miss) and the other seven replay (7 hits), with
# every built-in workload compiling concurrently alongside.
J=examples/jacobi.hpf
build-tsan/tools/gca-compile --jobs 8 --audit --lint --cache=mem \
  --cache-stats --workloads "$J" "$J" "$J" "$J" "$J" "$J" "$J" "$J" \
  > /dev/null 2> build-tsan/cache-stats.txt \
  || { cat build-tsan/cache-stats.txt; exit 1; }
# Anchor on the "cache: " prefix: plain hits=7, not routine-hits=7.
grep -q 'cache: hits=7 ' build-tsan/cache-stats.txt || {
  echo "error: cache single-flight check failed:"
  cat build-tsan/cache-stats.txt
  exit 1
}

echo "== thread sanitizer run (traced batch compile) =="
# Every worker emits spans/instants into its own trace lane while the main
# thread runs the driver; the exported trace must be valid and complete.
build-tsan/tools/gca-compile --workloads --jobs 8 --cache=mem \
  --trace=build-tsan/trace.json --metrics=build-tsan/metrics.json \
  --histogram "$J" > /dev/null
python3 scripts/validate_trace.py build-tsan/trace.json \
  --min-worker-lanes 8 --expect-decisions

echo "== thread sanitizer run (compile server under load + admin scrapes) =="
# The daemon's full concurrency surface under TSan: the accept loop, one
# connection thread per client, the worker pool, the shared result cache,
# the HTTP admin plane, and the drain path all running at once. Eight
# checked clients replay the workload + synth mix (every response
# bitwise-compared against a local compilation) while a background scraper
# hammers every admin endpoint for the whole run; then SIGTERM drains the
# server and the run report plus scraped metrics are cross-checked by
# validate_load.py and the exposition lint.
cmake --build build-tsan -j "$JOBS" --target gca-load
SRVDIR=$(mktemp -d)
trap 'rm -rf "$SRVDIR"' EXIT
build-tsan/tools/gca-compile --serve="$SRVDIR/s.sock" --cache \
  --admin=127.0.0.1:0 --log="$SRVDIR/req.log" \
  2> "$SRVDIR/serve.log" & SRV=$!
for _ in $(seq 100); do
  [ -S "$SRVDIR/s.sock" ] && grep -q 'admin on' "$SRVDIR/serve.log" && break
  sleep 0.1
done
ADMIN=$(sed -n 's/^gca-compile: admin on //p' "$SRVDIR/serve.log")
# Continuous scrape loop: every endpoint, as fast as it will go, until the
# load run finishes — the TSan-interesting interleavings are admin reads
# racing request accounting, not any particular scrape's content.
python3 - "$ADMIN" "$SRVDIR/scrape.stop" <<'EOF' & SCRAPER=$!
import sys, os, time, urllib.request
addr, stopfile = sys.argv[1], sys.argv[2]
while not os.path.exists(stopfile):
    for path in ("/metrics", "/statusz", "/tracez", "/healthz", "/readyz"):
        try:
            urllib.request.urlopen("http://%s%s" % (addr, path)).read()
        except Exception:
            pass
    time.sleep(0.001)
EOF
build-tsan/tools/gca-load --socket="$SRVDIR/s.sock" --workloads \
  --synth=60 --synth-count=2 --clients=8 --requests=64 --check --metrics \
  --admin="$ADMIN" > "$SRVDIR/load.json"
python3 -c "import sys,urllib.request as u; \
  open(sys.argv[2],'wb').write(u.urlopen('http://'+sys.argv[1]+'/metrics').read())" \
  "$ADMIN" "$SRVDIR/exposition.txt"
touch "$SRVDIR/scrape.stop"
wait "$SCRAPER"
kill -TERM "$SRV"
wait "$SRV" || { cat "$SRVDIR/serve.log"; exit 1; }
grep -q 'drained' "$SRVDIR/serve.log"
python3 scripts/validate_load.py "$SRVDIR/load.json" \
  --min-clients 8 --require-metrics
python3 scripts/validate_exposition.py "$SRVDIR/exposition.txt"
python3 -c "import json,sys; \
  assert sum(1 for l in open(sys.argv[1]) if json.loads(l)) >= 64" \
  "$SRVDIR/req.log"

echo "== all checks passed =="
