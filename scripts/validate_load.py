#!/usr/bin/env python3
"""Validate a gca-load run against the compile-server acceptance bars.

Input is the load tool's stdout: line 1 is the run report, line 2 (when the
run was invoked with --metrics) is the server's scraped metrics snapshot.
The checks encode what the load harness is for, independent of gca-load's
own exit code, so CI cross-checks the tool rather than trusting it:

  report    slo_pass true, zero mismatches / protocol errors, at least one
            served request, client count at or above --min-clients, latency
            quantiles ordered (p50 <= p95 <= p99), and request accounting
            that closes: every issued request is ok, a compile error,
            overloaded, a timeout, or a draining rejection.
  shedding  --expect-overloaded requires at least one overloaded response
            (the saturation run must actually saturate); without it any
            shedding is a violation (the steady-state mix must not shed).
  metrics   the scraped snapshot must parse, count at least as many
            requests as the report issued, and carry a latency histogram.

Exit codes: 0 ok, 1 violation, 2 usage/IO error.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"validate_load: FAIL: {msg}", file=sys.stderr)
    return 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("load_output",
                    help="file holding gca-load stdout (report line, "
                         "optionally followed by the metrics line)")
    ap.add_argument("--min-clients", type=int, default=8,
                    help="minimum concurrent clients (default 8)")
    ap.add_argument("--expect-overloaded", action="store_true",
                    help="require at least one overloaded response; "
                         "without this flag any shedding is a violation")
    ap.add_argument("--require-metrics", action="store_true",
                    help="fail when no metrics line is present")
    ap.add_argument("--max-p99-ms", type=float, default=0.0,
                    help="optional absolute p99 bound in milliseconds")
    args = ap.parse_args()

    try:
        with open(args.load_output) as f:
            lines = [l for l in f.read().splitlines() if l.strip()]
    except OSError as e:
        print(f"validate_load: error: cannot read "
              f"'{args.load_output}': {e}", file=sys.stderr)
        return 2
    if not lines:
        print(f"validate_load: error: '{args.load_output}' is empty",
              file=sys.stderr)
        return 2
    try:
        report = json.loads(lines[0])
        metrics = json.loads(lines[1]) if len(lines) > 1 else None
    except ValueError as e:
        return fail(f"output is not valid JSON: {e}")

    status = 0

    def check(ok, msg):
        nonlocal status
        if ok:
            print(f"  ok     {msg}")
        else:
            status = fail(msg) or status

    # --- report line ---------------------------------------------------
    for key in ("requests", "clients", "ok", "compile_errors", "overloaded",
                "timeouts", "draining", "mismatches", "protocol_errors",
                "p50_ms", "p95_ms", "p99_ms", "slo_pass"):
        if key not in report:
            return fail(f"report is missing '{key}'")

    check(report["slo_pass"] is True, "slo_pass")
    check(report["mismatches"] == 0,
          f"mismatches == 0 (got {report['mismatches']})")
    check(report["protocol_errors"] == 0,
          f"protocol_errors == 0 (got {report['protocol_errors']})")
    check(report["ok"] >= 1, f"served at least one request ({report['ok']})")
    check(report["clients"] >= args.min_clients,
          f"clients {report['clients']} >= {args.min_clients}")

    answered = (report["ok"] + report["compile_errors"] +
                report["overloaded"] + report["timeouts"] +
                report["draining"])
    check(answered == report["requests"],
          f"request accounting closes ({answered} answered of "
          f"{report['requests']} issued)")

    p50, p95, p99 = report["p50_ms"], report["p95_ms"], report["p99_ms"]
    check(p50 <= p95 <= p99,
          f"latency quantiles ordered (p50={p50} p95={p95} p99={p99})")
    if args.max_p99_ms > 0:
        check(p99 <= args.max_p99_ms,
              f"p99 {p99}ms <= bound {args.max_p99_ms}ms")

    if args.expect_overloaded:
        check(report["overloaded"] >= 1,
              f"saturation shed load ({report['overloaded']} overloaded)")
    else:
        check(report["overloaded"] == 0,
              f"steady-state mix shed no load "
              f"(got {report['overloaded']} overloaded)")

    # --- metrics line --------------------------------------------------
    if metrics is None:
        if args.require_metrics:
            return fail("no metrics line in the load output "
                        "(run gca-load with --metrics)")
    else:
        counters = metrics.get("counters")
        if not isinstance(counters, dict):
            return fail("metrics snapshot has no counters object")
        served = counters.get("server.requests", 0)
        check(served >= report["requests"],
              f"server counted every issued request "
              f"({served} >= {report['requests']})")
        check(counters.get("server.ok", 0) >= report["ok"],
              f"server ok counter covers the report "
              f"({counters.get('server.ok', 0)} >= {report['ok']})")
        hist = metrics.get("histograms", {})
        lat = hist.get("server.latency_ns") if isinstance(hist, dict) else None
        check(isinstance(lat, dict) and lat.get("count", 0) >= report["ok"],
              "server latency histogram present and populated")

    if status == 0:
        print(f"validate_load: ok ({report['requests']} requests, "
              f"{report['clients']} clients, p99 {p99}ms)")
    return status


if __name__ == "__main__":
    sys.exit(main())
