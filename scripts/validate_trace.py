#!/usr/bin/env python3
"""Validates a gca-compile --trace output file.

Checks that the file is well-formed Chrome trace-event JSON, that worker
lanes are present and named, that every lane's B/E span events balance (no
cross-thread interleaving corruption), and that the expected pass spans and
placement decision events are present.

usage: validate_trace.py TRACE.json [--min-worker-lanes N] [--expect-decisions]
"""

import argparse
import json
import sys

EXPECTED_PASSES = {"parse", "scalarize", "fuse", "build-context", "placement"}


def fail(msg):
    print("validate_trace: FAIL: " + msg, file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--min-worker-lanes", type=int, default=0,
                    help="require at least N lanes named worker-*")
    ap.add_argument("--expect-decisions", action="store_true",
                    help="require placement decision events")
    args = ap.parse_args()

    with open(args.trace) as f:
        doc = json.load(f)

    if "traceEvents" not in doc:
        fail("no traceEvents array")
    events = doc["traceEvents"]
    if not events:
        fail("empty trace")

    lane_names = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            lane_names[e["tid"]] = e["args"]["name"]

    workers = [n for n in lane_names.values() if n.startswith("worker-")]
    if len(workers) < args.min_worker_lanes:
        fail("expected >= %d worker lanes, found %d (%s)"
             % (args.min_worker_lanes, len(workers), sorted(workers)))

    # Per-lane span balance: B and E must nest properly within each tid.
    depth = {}
    for e in events:
        ph = e.get("ph")
        if ph not in ("B", "E"):
            continue
        tid = e["tid"]
        depth[tid] = depth.get(tid, 0) + (1 if ph == "B" else -1)
        if depth[tid] < 0:
            fail("lane %s closes a span it never opened" % tid)
    open_lanes = {t: d for t, d in depth.items() if d}
    if open_lanes:
        fail("unbalanced spans on lanes %s" % sorted(open_lanes))

    names = {e["name"] for e in events if "name" in e}
    missing = EXPECTED_PASSES - names
    if missing:
        fail("missing pass spans: %s" % sorted(missing))

    decisions = [e for e in events if e.get("cat") == "decision"]
    if args.expect_decisions and not decisions:
        fail("no placement decision events")

    print("validate_trace: OK: %d events, %d lanes (%d workers), "
          "%d decision events"
          % (len(events), len(lane_names), len(workers), len(decisions)))


if __name__ == "__main__":
    main()
