#!/usr/bin/env python3
"""Validates a gca-compile --trace output file.

Checks that the file is well-formed Chrome trace-event JSON, that worker
lanes are present and named, that every lane's B/E span events balance (no
cross-thread interleaving corruption), and that the expected pass spans and
placement decision events are present.

With --server the file is a compile-server trace: the pipeline-pass checks
are replaced by request-span checks — at least --min-requests "request"
spans in category "serve", every serve span tagged with a rid, request
rids unique, and every request that reached a compile also carries a
dispatch span with the same rid.

usage: validate_trace.py TRACE.json [--min-worker-lanes N]
                         [--expect-decisions]
                         [--server] [--min-requests N]
                         [--expect-trace-id PREFIX]
"""

import argparse
import json
import sys

EXPECTED_PASSES = {"parse", "scalarize", "fuse", "build-context", "placement",
                   "lower"}


def fail(msg):
    print("validate_trace: FAIL: " + msg, file=sys.stderr)
    sys.exit(1)


def check_server(events, args):
    """Request-span checks for a compile-server trace."""
    serve = [e for e in events if e.get("cat") == "serve"]
    if not serve:
        fail("no serve-category spans (was the server run with --trace?)")

    for e in serve:
        rid = e.get("args", {}).get("rid")
        if rid is None:
            fail("serve span '%s' carries no rid" % e.get("name"))

    def rids(name):
        return [e["args"]["rid"] for e in serve if e.get("name") == name]

    requests = rids("request")
    if len(requests) < args.min_requests:
        fail("expected >= %d request spans, found %d"
             % (args.min_requests, len(requests)))
    if len(set(requests)) != len(requests):
        dupes = sorted({r for r in requests if requests.count(r) > 1})
        fail("request rids not unique: %s" % dupes)

    # A request that reached the compiler must have been dispatched first.
    dispatched = set(rids("dispatch"))
    undispatched = sorted(set(rids("compile")) - dispatched)
    if undispatched:
        fail("compile spans without a dispatch span: rids %s" % undispatched)

    if args.expect_trace_id:
        tagged = [e for e in serve
                  if str(e.get("args", {}).get("trace_id", ""))
                  .startswith(args.expect_trace_id)]
        if not tagged:
            fail("no serve span carries a trace_id starting with '%s'"
                 % args.expect_trace_id)

    return len(requests), len(dispatched)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--min-worker-lanes", type=int, default=0,
                    help="require at least N lanes named worker-*")
    ap.add_argument("--expect-decisions", action="store_true",
                    help="require placement decision events")
    ap.add_argument("--server", action="store_true",
                    help="validate a compile-server trace: request spans "
                         "instead of pipeline pass spans")
    ap.add_argument("--min-requests", type=int, default=1,
                    help="with --server: require at least N request spans")
    ap.add_argument("--expect-trace-id", default="",
                    help="with --server: require a span whose trace_id "
                         "starts with this prefix")
    args = ap.parse_args()

    with open(args.trace) as f:
        doc = json.load(f)

    if "traceEvents" not in doc:
        fail("no traceEvents array")
    events = doc["traceEvents"]
    if not events:
        fail("empty trace")

    lane_names = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            lane_names[e["tid"]] = e["args"]["name"]

    workers = [n for n in lane_names.values() if n.startswith("worker-")]
    if len(workers) < args.min_worker_lanes:
        fail("expected >= %d worker lanes, found %d (%s)"
             % (args.min_worker_lanes, len(workers), sorted(workers)))

    # Per-lane span balance: B and E must nest properly within each tid.
    depth = {}
    for e in events:
        ph = e.get("ph")
        if ph not in ("B", "E"):
            continue
        tid = e["tid"]
        depth[tid] = depth.get(tid, 0) + (1 if ph == "B" else -1)
        if depth[tid] < 0:
            fail("lane %s closes a span it never opened" % tid)
    open_lanes = {t: d for t, d in depth.items() if d}
    if open_lanes:
        fail("unbalanced spans on lanes %s" % sorted(open_lanes))

    if args.server:
        n_requests, n_dispatched = check_server(events, args)
        print("validate_trace: OK: %d events, %d lanes (%d workers), "
              "%d request spans (%d dispatched)"
              % (len(events), len(lane_names), len(workers),
                 n_requests, n_dispatched))
        return

    names = {e["name"] for e in events if "name" in e}
    missing = EXPECTED_PASSES - names
    if missing:
        fail("missing pass spans: %s" % sorted(missing))

    decisions = [e for e in events if e.get("cat") == "decision"]
    if args.expect_decisions and not decisions:
        fail("no placement decision events")

    # Collective lowering invariant: every placed group carries exactly one
    # lowered-as decision (and no lowered-as names an unplaced group).  Keyed
    # by (routine, group id) -- both event kinds tag the group as "other".
    def group_key(e):
        a = e.get("args", {})
        return (a.get("routine"), a.get("other"))

    placed = {group_key(e) for e in decisions if e["name"] == "group-placed"}
    lowered = [group_key(e) for e in decisions if e["name"] == "lowered-as"]
    for key in placed:
        n = lowered.count(key)
        if n != 1:
            fail("group %s of routine '%s' placed but lowered %d times "
                 "(expected exactly 1)" % (key[1], key[0], n))
    orphans = sorted(set(lowered) - placed, key=str)
    if orphans:
        fail("lowered-as events for groups never placed: %s" % orphans)

    print("validate_trace: OK: %d events, %d lanes (%d workers), "
          "%d decision events"
          % (len(events), len(lane_names), len(workers), len(decisions)))


if __name__ == "__main__":
    main()
