#!/usr/bin/env python3
"""Lint a Prometheus text exposition (the /metrics payload).

Checks the contract scrapers rely on, family by family:

  structure  every sample belongs to a family that was announced with
             both a # HELP and a # TYPE line before its first sample,
             and the declared type is one Prometheus defines.
  names      metric names match [a-zA-Z_:][a-zA-Z0-9_:]* and label names
             match [a-zA-Z_][a-zA-Z0-9_]*.
  samples    every value parses as a float (NaN allowed only for summary
             quantiles), and no (name, labelset) pair appears twice.
  summaries  quantile labels parse as floats in [0, 1] and the reported
             values are non-decreasing as the quantile increases.
  histograms _bucket cumulative counts are monotone in le, the +Inf
             bucket exists and equals _count.

Reads a file, or stdin when the argument is '-'.
Exit codes: 0 ok, 1 violation, 2 usage/IO error.
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}

# One sample line: name{labels} value [timestamp]
SAMPLE_RE = re.compile(
    r"^(?P<name>[^\s{]+)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?$")
LABEL_PAIR_RE = re.compile(r'([^=,]+)="((?:[^"\\]|\\.)*)"')


class Lint:
    def __init__(self):
        self.status = 0

    def fail(self, line_no, msg):
        print("validate_exposition: FAIL: line %d: %s" % (line_no, msg),
              file=sys.stderr)
        self.status = 1


def base_family(name):
    """Maps a sample name to the family that must have announced it:
    summary/histogram samples use the family name plus a suffix."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[:-len(suffix)]
    return name


def parse_labels(lint, line_no, raw):
    labels = []
    if raw is None or raw.strip() == "":
        return labels
    consumed = 0
    for m in LABEL_PAIR_RE.finditer(raw):
        lname = m.group(1).strip()
        if not LABEL_RE.match(lname):
            lint.fail(line_no, "illegal label name '%s'" % lname)
        labels.append((lname, m.group(2)))
        consumed = m.end()
    rest = raw[consumed:].strip().strip(",")
    if rest:
        lint.fail(line_no, "unparseable label text '%s'" % rest)
    return labels


def parse_value(lint, line_no, text):
    low = text.lower()
    if low in ("+inf", "inf"):
        return math.inf
    if low == "-inf":
        return -math.inf
    if low == "nan":
        return math.nan
    try:
        return float(text)
    except ValueError:
        lint.fail(line_no, "value '%s' is not a number" % text)
        return None


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("exposition", help="metrics text file, or '-' for stdin")
    ap.add_argument("--min-samples", type=int, default=1,
                    help="require at least N samples (default 1)")
    args = ap.parse_args()

    try:
        if args.exposition == "-":
            text = sys.stdin.read()
        else:
            with open(args.exposition) as f:
                text = f.read()
    except OSError as e:
        print("validate_exposition: error: %s" % e, file=sys.stderr)
        return 2

    lint = Lint()
    helped = set()     # families with a # HELP line seen
    typed = {}         # family -> declared type
    seen = set()       # (name, labelset) pairs
    samples = 0
    # family -> list of (line_no, labels, value) for post-pass checks
    summary_quants = {}
    hist_buckets = {}
    hist_counts = {}

    for line_no, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("# HELP "):
            parts = stripped.split(None, 3)
            if len(parts) < 3:
                lint.fail(line_no, "malformed HELP line")
                continue
            fam = parts[2]
            if not NAME_RE.match(fam):
                lint.fail(line_no, "illegal metric name '%s'" % fam)
            if fam in helped:
                lint.fail(line_no, "duplicate HELP for '%s'" % fam)
            helped.add(fam)
            continue
        if stripped.startswith("# TYPE "):
            parts = stripped.split()
            if len(parts) != 4:
                lint.fail(line_no, "malformed TYPE line")
                continue
            fam, ftype = parts[2], parts[3]
            if not NAME_RE.match(fam):
                lint.fail(line_no, "illegal metric name '%s'" % fam)
            if ftype not in TYPES:
                lint.fail(line_no, "unknown type '%s'" % ftype)
            if fam in typed:
                lint.fail(line_no, "duplicate TYPE for '%s'" % fam)
            typed[fam] = ftype
            continue
        if stripped.startswith("#"):
            continue  # comment

        m = SAMPLE_RE.match(stripped)
        if not m:
            lint.fail(line_no, "unparseable sample line")
            continue
        name = m.group("name")
        if not NAME_RE.match(name):
            lint.fail(line_no, "illegal metric name '%s'" % name)
            continue
        fam = base_family(name)
        ftype = typed.get(fam) or typed.get(name)
        if fam not in typed and name not in typed:
            lint.fail(line_no, "sample '%s' has no preceding TYPE" % name)
        if fam not in helped and name not in helped:
            lint.fail(line_no, "sample '%s' has no preceding HELP" % name)
        labels = parse_labels(lint, line_no, m.group("labels"))
        value = parse_value(lint, line_no, m.group("value"))
        if value is None:
            continue
        key = (name, tuple(sorted(labels)))
        if key in seen:
            lint.fail(line_no, "duplicate sample for %s%s"
                      % (name, dict(labels) or ""))
        seen.add(key)
        samples += 1

        label_map = dict(labels)
        if ftype == "summary" and name == fam and "quantile" in label_map:
            try:
                q = float(label_map["quantile"])
            except ValueError:
                lint.fail(line_no, "quantile '%s' is not a number"
                          % label_map["quantile"])
                continue
            if not 0.0 <= q <= 1.0:
                lint.fail(line_no, "quantile %g outside [0, 1]" % q)
            summary_quants.setdefault(fam, []).append((line_no, q, value))
        elif ftype == "histogram" and name.endswith("_bucket"):
            le = label_map.get("le")
            if le is None:
                lint.fail(line_no, "_bucket sample without an le label")
                continue
            bound = math.inf if le == "+Inf" else None
            if bound is None:
                try:
                    bound = float(le)
                except ValueError:
                    lint.fail(line_no, "le '%s' is not a number" % le)
                    continue
            hist_buckets.setdefault(fam, []).append((line_no, bound, value))
        elif ftype == "histogram" and name == fam + "_count":
            hist_counts[fam] = (line_no, value)
        elif value is not None and math.isnan(value):
            lint.fail(line_no, "NaN outside a summary quantile")

    # --- post-pass: ordering within families ---------------------------
    for fam, quants in summary_quants.items():
        quants.sort(key=lambda t: t[1])
        prev = None
        for line_no, q, v in quants:
            if math.isnan(v):
                continue
            if prev is not None and v < prev:
                lint.fail(line_no, "summary '%s' quantile %g value %g "
                          "drops below the previous quantile's %g"
                          % (fam, q, v, prev))
            prev = v
    for fam, buckets in hist_buckets.items():
        buckets.sort(key=lambda t: t[1])
        prev = None
        for line_no, bound, v in buckets:
            if prev is not None and v < prev:
                lint.fail(line_no, "histogram '%s' bucket le=%g count %g "
                          "is not cumulative" % (fam, bound, v))
            prev = v
        if not buckets or not math.isinf(buckets[-1][1]):
            lint.fail(buckets[-1][0] if buckets else 0,
                      "histogram '%s' has no +Inf bucket" % fam)
        elif fam in hist_counts and buckets[-1][2] != hist_counts[fam][1]:
            lint.fail(hist_counts[fam][0],
                      "histogram '%s' +Inf bucket %g != _count %g"
                      % (fam, buckets[-1][2], hist_counts[fam][1]))

    if samples < args.min_samples:
        lint.fail(0, "only %d samples, need at least %d"
                  % (samples, args.min_samples))

    if lint.status == 0:
        print("validate_exposition: OK: %d samples across %d families"
              % (samples, len(typed)))
    return lint.status


if __name__ == "__main__":
    sys.exit(main())
