# Empty dependencies file for gca_ssa.
# This may be replaced when dependencies are built.
