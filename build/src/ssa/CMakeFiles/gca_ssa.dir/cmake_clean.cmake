file(REMOVE_RECURSE
  "CMakeFiles/gca_ssa.dir/Ssa.cpp.o"
  "CMakeFiles/gca_ssa.dir/Ssa.cpp.o.d"
  "libgca_ssa.a"
  "libgca_ssa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gca_ssa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
