file(REMOVE_RECURSE
  "libgca_ssa.a"
)
