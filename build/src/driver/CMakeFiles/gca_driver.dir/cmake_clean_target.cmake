file(REMOVE_RECURSE
  "libgca_driver.a"
)
