file(REMOVE_RECURSE
  "CMakeFiles/gca_driver.dir/Compile.cpp.o"
  "CMakeFiles/gca_driver.dir/Compile.cpp.o.d"
  "libgca_driver.a"
  "libgca_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gca_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
