# Empty dependencies file for gca_driver.
# This may be replaced when dependencies are built.
