file(REMOVE_RECURSE
  "CMakeFiles/gca_core.dir/Context.cpp.o"
  "CMakeFiles/gca_core.dir/Context.cpp.o.d"
  "CMakeFiles/gca_core.dir/Detect.cpp.o"
  "CMakeFiles/gca_core.dir/Detect.cpp.o.d"
  "CMakeFiles/gca_core.dir/EarliestLatest.cpp.o"
  "CMakeFiles/gca_core.dir/EarliestLatest.cpp.o.d"
  "CMakeFiles/gca_core.dir/Placement.cpp.o"
  "CMakeFiles/gca_core.dir/Placement.cpp.o.d"
  "libgca_core.a"
  "libgca_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gca_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
