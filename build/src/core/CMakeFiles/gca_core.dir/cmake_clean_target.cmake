file(REMOVE_RECURSE
  "libgca_core.a"
)
