
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Context.cpp" "src/core/CMakeFiles/gca_core.dir/Context.cpp.o" "gcc" "src/core/CMakeFiles/gca_core.dir/Context.cpp.o.d"
  "/root/repo/src/core/Detect.cpp" "src/core/CMakeFiles/gca_core.dir/Detect.cpp.o" "gcc" "src/core/CMakeFiles/gca_core.dir/Detect.cpp.o.d"
  "/root/repo/src/core/EarliestLatest.cpp" "src/core/CMakeFiles/gca_core.dir/EarliestLatest.cpp.o" "gcc" "src/core/CMakeFiles/gca_core.dir/EarliestLatest.cpp.o.d"
  "/root/repo/src/core/Placement.cpp" "src/core/CMakeFiles/gca_core.dir/Placement.cpp.o" "gcc" "src/core/CMakeFiles/gca_core.dir/Placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/section/CMakeFiles/gca_section.dir/DependInfo.cmake"
  "/root/repo/build/src/ssa/CMakeFiles/gca_ssa.dir/DependInfo.cmake"
  "/root/repo/build/src/dep/CMakeFiles/gca_dep.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/gca_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gca_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gca_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
