# Empty dependencies file for gca_core.
# This may be replaced when dependencies are built.
