file(REMOVE_RECURSE
  "libgca_ir.a"
)
