file(REMOVE_RECURSE
  "CMakeFiles/gca_ir.dir/AffineExpr.cpp.o"
  "CMakeFiles/gca_ir.dir/AffineExpr.cpp.o.d"
  "CMakeFiles/gca_ir.dir/Ast.cpp.o"
  "CMakeFiles/gca_ir.dir/Ast.cpp.o.d"
  "CMakeFiles/gca_ir.dir/Builder.cpp.o"
  "CMakeFiles/gca_ir.dir/Builder.cpp.o.d"
  "CMakeFiles/gca_ir.dir/Printer.cpp.o"
  "CMakeFiles/gca_ir.dir/Printer.cpp.o.d"
  "libgca_ir.a"
  "libgca_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gca_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
