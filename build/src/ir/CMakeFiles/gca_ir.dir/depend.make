# Empty dependencies file for gca_ir.
# This may be replaced when dependencies are built.
