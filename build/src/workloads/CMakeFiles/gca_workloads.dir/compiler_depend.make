# Empty compiler generated dependencies file for gca_workloads.
# This may be replaced when dependencies are built.
