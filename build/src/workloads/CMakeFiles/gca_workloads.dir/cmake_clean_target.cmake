file(REMOVE_RECURSE
  "libgca_workloads.a"
)
