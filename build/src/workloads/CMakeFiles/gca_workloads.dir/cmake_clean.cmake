file(REMOVE_RECURSE
  "CMakeFiles/gca_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/gca_workloads.dir/Workloads.cpp.o.d"
  "libgca_workloads.a"
  "libgca_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gca_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
