file(REMOVE_RECURSE
  "CMakeFiles/gca_lower.dir/Schedule.cpp.o"
  "CMakeFiles/gca_lower.dir/Schedule.cpp.o.d"
  "libgca_lower.a"
  "libgca_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gca_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
