file(REMOVE_RECURSE
  "libgca_lower.a"
)
