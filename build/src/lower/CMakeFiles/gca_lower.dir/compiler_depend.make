# Empty compiler generated dependencies file for gca_lower.
# This may be replaced when dependencies are built.
