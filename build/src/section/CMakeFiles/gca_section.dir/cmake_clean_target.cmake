file(REMOVE_RECURSE
  "libgca_section.a"
)
