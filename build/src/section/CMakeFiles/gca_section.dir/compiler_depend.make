# Empty compiler generated dependencies file for gca_section.
# This may be replaced when dependencies are built.
