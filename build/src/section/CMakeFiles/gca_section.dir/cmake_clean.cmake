file(REMOVE_RECURSE
  "CMakeFiles/gca_section.dir/Mapping.cpp.o"
  "CMakeFiles/gca_section.dir/Mapping.cpp.o.d"
  "CMakeFiles/gca_section.dir/Section.cpp.o"
  "CMakeFiles/gca_section.dir/Section.cpp.o.d"
  "libgca_section.a"
  "libgca_section.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gca_section.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
