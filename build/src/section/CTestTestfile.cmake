# CMake generated Testfile for 
# Source directory: /root/repo/src/section
# Build directory: /root/repo/build/src/section
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
