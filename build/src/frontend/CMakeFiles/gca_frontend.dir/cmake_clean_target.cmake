file(REMOVE_RECURSE
  "libgca_frontend.a"
)
