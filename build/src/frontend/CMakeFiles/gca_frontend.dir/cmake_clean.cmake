file(REMOVE_RECURSE
  "CMakeFiles/gca_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/gca_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/gca_frontend.dir/Parser.cpp.o"
  "CMakeFiles/gca_frontend.dir/Parser.cpp.o.d"
  "libgca_frontend.a"
  "libgca_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gca_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
