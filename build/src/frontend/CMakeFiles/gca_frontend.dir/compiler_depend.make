# Empty compiler generated dependencies file for gca_frontend.
# This may be replaced when dependencies are built.
