file(REMOVE_RECURSE
  "libgca_support.a"
)
