# Empty dependencies file for gca_support.
# This may be replaced when dependencies are built.
