file(REMOVE_RECURSE
  "CMakeFiles/gca_support.dir/Diag.cpp.o"
  "CMakeFiles/gca_support.dir/Diag.cpp.o.d"
  "CMakeFiles/gca_support.dir/SourceLoc.cpp.o"
  "CMakeFiles/gca_support.dir/SourceLoc.cpp.o.d"
  "CMakeFiles/gca_support.dir/StrUtil.cpp.o"
  "CMakeFiles/gca_support.dir/StrUtil.cpp.o.d"
  "libgca_support.a"
  "libgca_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gca_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
