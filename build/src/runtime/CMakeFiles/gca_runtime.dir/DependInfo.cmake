
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/CostModel.cpp" "src/runtime/CMakeFiles/gca_runtime.dir/CostModel.cpp.o" "gcc" "src/runtime/CMakeFiles/gca_runtime.dir/CostModel.cpp.o.d"
  "/root/repo/src/runtime/Grid.cpp" "src/runtime/CMakeFiles/gca_runtime.dir/Grid.cpp.o" "gcc" "src/runtime/CMakeFiles/gca_runtime.dir/Grid.cpp.o.d"
  "/root/repo/src/runtime/Machine.cpp" "src/runtime/CMakeFiles/gca_runtime.dir/Machine.cpp.o" "gcc" "src/runtime/CMakeFiles/gca_runtime.dir/Machine.cpp.o.d"
  "/root/repo/src/runtime/Simulate.cpp" "src/runtime/CMakeFiles/gca_runtime.dir/Simulate.cpp.o" "gcc" "src/runtime/CMakeFiles/gca_runtime.dir/Simulate.cpp.o.d"
  "/root/repo/src/runtime/Verify.cpp" "src/runtime/CMakeFiles/gca_runtime.dir/Verify.cpp.o" "gcc" "src/runtime/CMakeFiles/gca_runtime.dir/Verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lower/CMakeFiles/gca_lower.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gca_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gca_support.dir/DependInfo.cmake"
  "/root/repo/build/src/section/CMakeFiles/gca_section.dir/DependInfo.cmake"
  "/root/repo/build/src/ssa/CMakeFiles/gca_ssa.dir/DependInfo.cmake"
  "/root/repo/build/src/dep/CMakeFiles/gca_dep.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/gca_cfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
