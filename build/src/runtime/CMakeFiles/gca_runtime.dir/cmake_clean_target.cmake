file(REMOVE_RECURSE
  "libgca_runtime.a"
)
