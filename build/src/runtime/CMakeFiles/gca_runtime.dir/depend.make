# Empty dependencies file for gca_runtime.
# This may be replaced when dependencies are built.
