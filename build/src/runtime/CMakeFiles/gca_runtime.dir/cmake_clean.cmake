file(REMOVE_RECURSE
  "CMakeFiles/gca_runtime.dir/CostModel.cpp.o"
  "CMakeFiles/gca_runtime.dir/CostModel.cpp.o.d"
  "CMakeFiles/gca_runtime.dir/Grid.cpp.o"
  "CMakeFiles/gca_runtime.dir/Grid.cpp.o.d"
  "CMakeFiles/gca_runtime.dir/Machine.cpp.o"
  "CMakeFiles/gca_runtime.dir/Machine.cpp.o.d"
  "CMakeFiles/gca_runtime.dir/Simulate.cpp.o"
  "CMakeFiles/gca_runtime.dir/Simulate.cpp.o.d"
  "CMakeFiles/gca_runtime.dir/Verify.cpp.o"
  "CMakeFiles/gca_runtime.dir/Verify.cpp.o.d"
  "libgca_runtime.a"
  "libgca_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gca_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
