file(REMOVE_RECURSE
  "libgca_dep.a"
)
