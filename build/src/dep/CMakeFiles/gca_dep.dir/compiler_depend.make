# Empty compiler generated dependencies file for gca_dep.
# This may be replaced when dependencies are built.
