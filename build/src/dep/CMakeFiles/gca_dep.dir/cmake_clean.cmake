file(REMOVE_RECURSE
  "CMakeFiles/gca_dep.dir/DepTest.cpp.o"
  "CMakeFiles/gca_dep.dir/DepTest.cpp.o.d"
  "libgca_dep.a"
  "libgca_dep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gca_dep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
