file(REMOVE_RECURSE
  "libgca_cfg.a"
)
