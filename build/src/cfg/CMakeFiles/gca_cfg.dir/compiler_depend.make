# Empty compiler generated dependencies file for gca_cfg.
# This may be replaced when dependencies are built.
