file(REMOVE_RECURSE
  "CMakeFiles/gca_cfg.dir/Cfg.cpp.o"
  "CMakeFiles/gca_cfg.dir/Cfg.cpp.o.d"
  "CMakeFiles/gca_cfg.dir/DomTree.cpp.o"
  "CMakeFiles/gca_cfg.dir/DomTree.cpp.o.d"
  "libgca_cfg.a"
  "libgca_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gca_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
