# Empty dependencies file for gca_xform.
# This may be replaced when dependencies are built.
