file(REMOVE_RECURSE
  "CMakeFiles/gca_xform.dir/Fuse.cpp.o"
  "CMakeFiles/gca_xform.dir/Fuse.cpp.o.d"
  "CMakeFiles/gca_xform.dir/Scalarize.cpp.o"
  "CMakeFiles/gca_xform.dir/Scalarize.cpp.o.d"
  "libgca_xform.a"
  "libgca_xform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gca_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
