file(REMOVE_RECURSE
  "libgca_xform.a"
)
