
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/builder_api.cpp" "examples/CMakeFiles/builder_api.dir/builder_api.cpp.o" "gcc" "examples/CMakeFiles/builder_api.dir/builder_api.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/gca_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gca_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lower/CMakeFiles/gca_lower.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gca_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/xform/CMakeFiles/gca_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/gca_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/section/CMakeFiles/gca_section.dir/DependInfo.cmake"
  "/root/repo/build/src/ssa/CMakeFiles/gca_ssa.dir/DependInfo.cmake"
  "/root/repo/build/src/dep/CMakeFiles/gca_dep.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/gca_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gca_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gca_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
