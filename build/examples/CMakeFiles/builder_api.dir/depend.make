# Empty dependencies file for builder_api.
# This may be replaced when dependencies are built.
