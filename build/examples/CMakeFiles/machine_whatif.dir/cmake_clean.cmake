file(REMOVE_RECURSE
  "CMakeFiles/machine_whatif.dir/machine_whatif.cpp.o"
  "CMakeFiles/machine_whatif.dir/machine_whatif.cpp.o.d"
  "machine_whatif"
  "machine_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
