# Empty compiler generated dependencies file for machine_whatif.
# This may be replaced when dependencies are built.
