# Empty dependencies file for commexplorer.
# This may be replaced when dependencies are built.
