file(REMOVE_RECURSE
  "CMakeFiles/commexplorer.dir/commexplorer.cpp.o"
  "CMakeFiles/commexplorer.dir/commexplorer.cpp.o.d"
  "commexplorer"
  "commexplorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commexplorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
