file(REMOVE_RECURSE
  "CMakeFiles/bench_motivating_examples.dir/bench_motivating_examples.cpp.o"
  "CMakeFiles/bench_motivating_examples.dir/bench_motivating_examples.cpp.o.d"
  "bench_motivating_examples"
  "bench_motivating_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivating_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
