# Empty compiler generated dependencies file for bench_motivating_examples.
# This may be replaced when dependencies are built.
