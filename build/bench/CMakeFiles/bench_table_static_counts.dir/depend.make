# Empty dependencies file for bench_table_static_counts.
# This may be replaced when dependencies are built.
