# Empty dependencies file for gca_tests.
# This may be replaced when dependencies are built.
