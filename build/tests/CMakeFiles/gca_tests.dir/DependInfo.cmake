
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_affine.cpp" "tests/CMakeFiles/gca_tests.dir/test_affine.cpp.o" "gcc" "tests/CMakeFiles/gca_tests.dir/test_affine.cpp.o.d"
  "/root/repo/tests/test_cfg.cpp" "tests/CMakeFiles/gca_tests.dir/test_cfg.cpp.o" "gcc" "tests/CMakeFiles/gca_tests.dir/test_cfg.cpp.o.d"
  "/root/repo/tests/test_dep.cpp" "tests/CMakeFiles/gca_tests.dir/test_dep.cpp.o" "gcc" "tests/CMakeFiles/gca_tests.dir/test_dep.cpp.o.d"
  "/root/repo/tests/test_detect.cpp" "tests/CMakeFiles/gca_tests.dir/test_detect.cpp.o" "gcc" "tests/CMakeFiles/gca_tests.dir/test_detect.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/gca_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/gca_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_fusion.cpp" "tests/CMakeFiles/gca_tests.dir/test_fusion.cpp.o" "gcc" "tests/CMakeFiles/gca_tests.dir/test_fusion.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/gca_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/gca_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_ir.cpp" "tests/CMakeFiles/gca_tests.dir/test_ir.cpp.o" "gcc" "tests/CMakeFiles/gca_tests.dir/test_ir.cpp.o.d"
  "/root/repo/tests/test_parser.cpp" "tests/CMakeFiles/gca_tests.dir/test_parser.cpp.o" "gcc" "tests/CMakeFiles/gca_tests.dir/test_parser.cpp.o.d"
  "/root/repo/tests/test_partial.cpp" "tests/CMakeFiles/gca_tests.dir/test_partial.cpp.o" "gcc" "tests/CMakeFiles/gca_tests.dir/test_partial.cpp.o.d"
  "/root/repo/tests/test_placement.cpp" "tests/CMakeFiles/gca_tests.dir/test_placement.cpp.o" "gcc" "tests/CMakeFiles/gca_tests.dir/test_placement.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/gca_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/gca_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_scalarize.cpp" "tests/CMakeFiles/gca_tests.dir/test_scalarize.cpp.o" "gcc" "tests/CMakeFiles/gca_tests.dir/test_scalarize.cpp.o.d"
  "/root/repo/tests/test_section.cpp" "tests/CMakeFiles/gca_tests.dir/test_section.cpp.o" "gcc" "tests/CMakeFiles/gca_tests.dir/test_section.cpp.o.d"
  "/root/repo/tests/test_ssa.cpp" "tests/CMakeFiles/gca_tests.dir/test_ssa.cpp.o" "gcc" "tests/CMakeFiles/gca_tests.dir/test_ssa.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/gca_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/gca_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/gca_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/gca_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/gca_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gca_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lower/CMakeFiles/gca_lower.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gca_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/xform/CMakeFiles/gca_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/gca_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/section/CMakeFiles/gca_section.dir/DependInfo.cmake"
  "/root/repo/build/src/ssa/CMakeFiles/gca_ssa.dir/DependInfo.cmake"
  "/root/repo/build/src/dep/CMakeFiles/gca_dep.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/gca_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gca_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gca_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
