//===- examples/machine_whatif.cpp - cost-model what-if study -------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
//
// The paper's Section 6 observes that the value of message combining
// depends on the network's startup-to-bandwidth ratio ("message startup
// overheads tend to be astronomical... although reasonable bandwidth can be
// supported for sufficiently large messages"). This example sweeps a family
// of synthetic machines from startup-dominated (1996 clusters) to
// bandwidth-dominated (an idealized low-overhead network) and shows how the
// benefit of the global algorithm over the baselines shrinks as startup
// costs vanish.
//
//===----------------------------------------------------------------------===//

#include "driver/Compile.h"
#include "lower/Schedule.h"
#include "runtime/Simulate.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace gca;

static double commTime(const Workload &W, Strategy S,
                       const MachineProfile &M) {
  CompileOptions Opts;
  Opts.Placement.Strat = S;
  Opts.Params["n"] = 128;
  Opts.Params["nsteps"] = 10;
  CompileResult R = compileSource(W.Source, Opts);
  if (!R.Ok)
    std::exit(1);
  double T = 0;
  for (const RoutineResult &RR : R.Routines) {
    ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
    T += simulate(*RR.Ctx, RR.Plan, Prog, M, 25).CommTime;
  }
  return T;
}

int main() {
  std::printf("What-if: value of global combining vs per-message startup "
              "cost (shallow, n=128, P=25)\n\n");
  std::printf("%12s | %12s | %12s | %12s | %10s\n", "startup", "orig comm",
              "nored comm", "comb comm", "comb gain");
  for (double Overhead : {100e-6, 40e-6, 10e-6, 2e-6, 0.2e-6}) {
    MachineProfile M = MachineProfile::sp2();
    M.Name = "synthetic";
    M.SendOverhead = M.RecvOverhead = Overhead;
    // The message size needed to amortize startup shrinks with it.
    double Scale = Overhead / 23e-6;
    M.HalfSizeBytes *= Scale;
    M.InjectHalf *= Scale;
    double O = commTime(shallowWorkload(), Strategy::Orig, M);
    double N = commTime(shallowWorkload(), Strategy::Earliest, M);
    double C = commTime(shallowWorkload(), Strategy::Global, M);
    std::printf("%9.1f us | %9.2f ms | %9.2f ms | %9.2f ms | %9.2fx\n",
                Overhead * 1e6, O * 1e3, N * 1e3, C * 1e3, O / C);
  }
  std::printf("\nAs per-message costs vanish, nored and comb converge "
              "(combining only removes startups); orig keeps paying for its "
              "redundant data volume. Combining pays exactly when messages "
              "are expensive to start - the paper's premise.\n");
  return 0;
}
