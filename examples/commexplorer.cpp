//===- examples/commexplorer.cpp - HPF-lite analysis CLI ------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
//
// A command-line explorer for the communication analysis: reads an HPF-lite
// program from a file (or runs the built-in shallow benchmark), and prints,
// per routine and strategy, the static message table, the verified
// schedule, and the simulated cost on both machine profiles.
//
//   $ ./commexplorer                   # built-in shallow
//   $ ./commexplorer prog.hpf          # your program
//   $ ./commexplorer prog.hpf 128      # ... with n = 128
//
//===----------------------------------------------------------------------===//

#include "driver/Compile.h"
#include "lower/Schedule.h"
#include "runtime/Simulate.h"
#include "runtime/Verify.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace gca;

int main(int argc, char **argv) {
  std::string Source;
  if (argc > 1) {
    std::ifstream In(argv[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", argv[1]);
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  } else {
    std::printf("(no input file: analyzing the built-in shallow "
                "benchmark)\n\n");
    Source = shallowWorkload().Source;
  }

  ParamMap Params;
  if (argc > 2)
    Params["n"] = std::strtoll(argv[2], nullptr, 10);

  for (Strategy S : {Strategy::Orig, Strategy::Earliest, Strategy::Global}) {
    CompileOptions Opts;
    Opts.Placement.Strat = S;
    Opts.Params = Params;
    CompileResult R = compileSource(Source, Opts);
    if (!R.Ok) {
      std::fprintf(stderr, "compile errors:\n%s", R.Errors.c_str());
      return 1;
    }
    std::printf("==== strategy: %s ====\n", strategyName(S));
    for (const RoutineResult &RR : R.Routines) {
      const CommStats &St = RR.Plan.Stats;
      std::printf("routine %-10s NNC=%d SUM=%d BCAST=%d GEN=%d "
                  "(entries=%d, eliminated=%d)\n",
                  RR.R->name().c_str(), St.groups(CommKind::Shift),
                  St.groups(CommKind::Reduce), St.groups(CommKind::Bcast),
                  St.groups(CommKind::General), St.NumEntries,
                  St.NumEliminated);
      ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
      for (const MachineProfile &M :
           {MachineProfile::sp2(), MachineProfile::now()}) {
        int P = M.Name == "SP2" ? 25 : 8;
        SimResult Sim = simulate(*RR.Ctx, RR.Plan, Prog, M, P);
        std::printf("  %-4s P=%-3d total=%9.3f ms  network=%9.3f ms "
                    "(%4.1f%%)\n",
                    M.Name.c_str(), P, Sim.TotalTime * 1e3,
                    Sim.CommTime * 1e3, 100.0 * Sim.commFraction());
      }
    }
    std::printf("\n");
  }

  // Print the global schedule and its verification for the first routine.
  CompileOptions Opts;
  Opts.Params = Params;
  CompileResult R = compileSource(Source, Opts);
  const RoutineResult &RR = R.Routines[0];
  ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
  VerifyResult V = verifySchedule(*RR.Ctx, RR.Plan, Prog, 4);
  std::printf("==== schedule (comb), routine %s ====\n%s\n%s",
              RR.R->name().c_str(),
              Prog.listing(*RR.Ctx, RR.Plan).c_str(), V.str().c_str());
  return 0;
}
