//===- examples/quickstart.cpp - five-minute tour -------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
//
// Quickstart: compile a small HPF-lite program, compare the three placement
// strategies of the paper's evaluation, print the generated communication
// schedule, verify it, and simulate it on the SP2 profile.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "driver/Compile.h"
#include "lower/Schedule.h"
#include "runtime/Simulate.h"
#include "runtime/Verify.h"

#include <cstdio>

using namespace gca;

// A coupled two-field relaxation: both (BLOCK,BLOCK) fields are read with
// four-point stencils every timestep, so every iteration needs
// nearest-neighbour communication for u and for v in all four directions —
// eight messages naively, four once the global algorithm combines the two
// fields per direction.
static const char *Source = R"(
program coupled
param n = 64
param nsteps = 10
real u(n,n) distribute (block,block)
real v(n,n) distribute (block,block)
real unew(n,n) distribute (block,block)
real vnew(n,n) distribute (block,block)
begin
  u = 1
  v = 1
  unew = 0
  vnew = 0
  do t = 1, nsteps
    unew(2:n-1,2:n-1) = u(1:n-2,2:n-1) + u(3:n,2:n-1) + u(2:n-1,1:n-2) + u(2:n-1,3:n) + v(2:n-1,2:n-1)
    vnew(2:n-1,2:n-1) = v(1:n-2,2:n-1) + v(3:n,2:n-1) + v(2:n-1,1:n-2) + v(2:n-1,3:n) + u(2:n-1,2:n-1)
    u(1:n,1:n) = unew(1:n,1:n)
    v(1:n,1:n) = vnew(1:n,1:n)
  end do
end
)";

int main() {
  std::printf("== gcomm quickstart: global communication placement ==\n\n");

  for (Strategy S : {Strategy::Orig, Strategy::Earliest, Strategy::Global}) {
    CompileOptions Opts;
    Opts.Placement.Strat = S;
    CompileResult R = compileSource(Source, Opts);
    if (!R.Ok) {
      std::fprintf(stderr, "compile error:\n%s", R.Errors.c_str());
      return 1;
    }
    const RoutineResult &RR = R.Routines[0];

    // Lower to an executable schedule and check it end to end: every remote
    // element must be delivered after its last write (Claim 4.7).
    ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
    VerifyResult V = verifySchedule(*RR.Ctx, RR.Plan, Prog, 4);

    // Simulate one run on the paper's SP2 profile with 25 processors.
    SimResult Sim = simulate(*RR.Ctx, RR.Plan, Prog, MachineProfile::sp2(),
                             25);

    std::printf("strategy %-9s: %d call sites, verify %s, total %.2f ms "
                "(%.0f%% network)\n",
                strategyName(S), RR.Plan.Stats.totalGroups(),
                V.Ok ? "OK" : "FAILED", Sim.TotalTime * 1e3,
                100.0 * Sim.commFraction());
  }

  // Show the schedule the global algorithm generates.
  CompileOptions Opts;
  CompileResult R = compileSource(Source, Opts);
  const RoutineResult &RR = R.Routines[0];
  ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
  std::printf("\ngenerated schedule (COMM lines are aggregate exchanges):\n\n");
  std::printf("%s", Prog.listing(*RR.Ctx, RR.Plan).c_str());
  return 0;
}
