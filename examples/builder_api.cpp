//===- examples/builder_api.cpp - programmatic IR construction ------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
//
// Builds the paper's Figure 4 running example directly through the
// RoutineBuilder API (no text frontend), then walks the analysis results:
// per-entry Earliest/Latest points, candidate counts, eliminations, and the
// final combined groups. This is the API a compiler frontend would target.
//
//===----------------------------------------------------------------------===//

#include "core/Placement.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "xform/Scalarize.h"

#include <cstdio>

using namespace gca;

int main() {
  // distribute a, b, c, d :: (BLOCK,*) over n x n.
  constexpr int64_t N = 16;
  Routine R("figure4");
  RoutineBuilder B(R);
  for (const char *Name : {"a", "b", "c", "d"})
    B.array(Name, {N, N}, {DistKind::Block, DistKind::Star});

  // b(:,1:n:2) = 1 ; b(:,2:n:2) = 2
  B.assignLit(B.refs("b", {B.fullDim("b", 0),
                           Subscript::range(B.c(1), B.c(N), 2)}),
              1.0);
  B.assignLit(B.refs("b", {B.fullDim("b", 0),
                           Subscript::range(B.c(2), B.c(N), 2)}),
              2.0);

  // if (cond) a = 3 else a = d.
  B.beginIf("cond");
  B.assignLit(B.whole("a"), 3.0);
  B.beginElse();
  B.assign(B.whole("a"), {B.whole("d")});
  B.endIf();

  // do i = 2,n { do j = 1,n,2 {...}; do j = 1,n {...} }.
  B.beginLoop("i", B.c(2), B.c(N));
  B.beginLoop("j", B.c(1), B.c(N), 2);
  B.assign(B.ref("c", {B.v("i"), B.v("j")}),
           {B.ref("a", {B.v("i") - 1, B.v("j")}),
            B.ref("b", {B.v("i") - 1, B.v("j")})});
  B.endLoop();
  B.beginLoop("j", B.c(1), B.c(N));
  B.assign(B.ref("c", {B.v("i"), B.v("j")}),
           {B.ref("a", {B.v("i") - 1, B.v("j")}),
            B.ref("b", {B.v("i") - 1, B.v("j")})});
  B.endLoop();
  B.endLoop();

  std::printf("== built routine ==\n%s\n", printRoutine(R).c_str());

  // The pHPF-style pipeline: scalarize, analyze, place globally.
  DiagEngine Diags;
  scalarizeRoutine(R, Diags);
  AnalysisContext Ctx(R);
  PlacementOptions Opts; // Defaults: the paper's global algorithm.
  CommPlan Plan = planCommunication(Ctx, Opts);

  std::printf("== per-entry analysis ==\n");
  for (const CommEntry &E : Plan.Entries) {
    std::printf("entry %d: %s %s  earliest=(B%d,%d) latest=(B%d,%d) "
                "candidates=%zu%s\n",
                E.Id, R.array(E.ArrayId).Name.c_str(), E.M.str().c_str(),
                E.EarliestSlot.Node, E.EarliestSlot.Index, E.LatestSlot.Node,
                E.LatestSlot.Index, E.OriginalCandidates.size(),
                E.Eliminated ? "  [eliminated: fully redundant]" : "");
  }

  std::printf("\n== final plan ==\n%s", Plan.str(R).c_str());
  std::printf("\nThe paper's result: one combined NNC carrying both a and "
              "b, with the first-loop entries eliminated.\n");
  return 0;
}
