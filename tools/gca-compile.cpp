//===- tools/gca-compile.cpp - Parallel batch compilation driver ----------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
//
// Compiles many HPF-lite sources through the instrumented pass pipeline
// (driver/Pipeline.h), optionally in parallel. Each input gets its own
// Session — no shared mutable state — and outputs are emitted in input
// order, so a parallel run is bitwise-identical to a serial one (timing
// reports aside, which is why --verify-determinism compares only the
// deterministic sections).
//
//   $ gca-compile prog.hpf other.hpf        # plans to stdout
//   $ gca-compile --workloads --jobs 8      # all built-in workloads, 8 ways
//   $ gca-compile --stats --time-report x.hpf
//   $ gca-compile --time-report=json --workloads
//   $ gca-compile --dump-after=scalarize x.hpf
//   $ gca-compile --workloads --jobs 8 --verify-determinism
//
// Exit status: 0 on success, 1 on any compile error, audit violation, or
// determinism mismatch, 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace gca;

namespace {

struct ToolOptions {
  CompileOptions Compile;
  unsigned Jobs = 1;
  bool Stats = false;
  bool TimeReport = false;
  bool TimeReportJson = false;
  bool Workloads = false;
  bool VerifyDeterminism = false;
  bool PrintPlans = true;
};

struct Input {
  std::string Name;
  std::string Source;
};

/// Everything one compilation produced, split into the deterministic part
/// (compared by --verify-determinism) and the timing part (not compared).
struct Output {
  std::string Deterministic;
  std::string Timing;
  bool Failed = false;
};

Output compileOne(const Input &In, const ToolOptions &Opts) {
  Output Out;
  Session S(In.Source, Opts.Compile);
  S.run();
  CompileResult R = S.take();

  std::string &D = Out.Deterministic;
  D += "== " + In.Name + " ==\n";
  if (!R.Ok) {
    D += R.Errors;
    Out.Failed = true;
    return Out;
  }
  if (Opts.PrintPlans)
    for (const RoutineResult &RR : R.Routines)
      D += RR.Plan.str(*RR.R);
  for (const auto &[Pass, Dump] : S.Dumps)
    D += "-- dump after " + Pass + " --\n" + Dump;
  if (!R.Diagnostics.empty())
    D += R.Diagnostics;
  if (Opts.Stats)
    D += S.Stats.str();
  if (!R.AuditOk)
    Out.Failed = true;

  if (Opts.TimeReportJson)
    Out.Timing = "{\"input\":\"" + In.Name +
                 "\",\"report\":" + S.timeReportJson() + "}\n";
  else if (Opts.TimeReport)
    Out.Timing = "-- time report: " + In.Name + " --\n" + S.timeReport();
  return Out;
}

/// Compiles every input with \p Jobs workers; outputs land in input order.
std::vector<Output> compileAll(const std::vector<Input> &Inputs,
                               const ToolOptions &Opts, unsigned Jobs) {
  std::vector<Output> Outputs(Inputs.size());
  if (Jobs <= 1) {
    for (size_t I = 0; I != Inputs.size(); ++I)
      Outputs[I] = compileOne(Inputs[I], Opts);
    return Outputs;
  }
  ThreadPool Pool(Jobs);
  for (size_t I = 0; I != Inputs.size(); ++I)
    Pool.async([&Inputs, &Outputs, &Opts, I] {
      Outputs[I] = compileOne(Inputs[I], Opts);
    });
  Pool.wait();
  return Outputs;
}

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] [files.hpf...]\n"
      "  --workloads            also compile every built-in workload\n"
      "  --jobs N, -j N         compile N inputs concurrently (default 1)\n"
      "  --stats                print the counter registry per input\n"
      "  --time-report[=json]   per-pass timing (and counter) report\n"
      "  --dump-after=PASS      dump program/plans after PASS (or 'all')\n"
      "  --strategy=NAME        orig|nored|comb|optimal|earlycomb\n"
      "  --no-scalarize --fuse --audit --no-audit --lint --no-lint\n"
      "  --no-plans             suppress plan printing\n"
      "  -p name=value          override a param declaration\n"
      "  --verify-determinism   recompile serially and require identical "
      "output\n",
      Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  ToolOptions Opts;
  std::vector<Input> Inputs;
  std::vector<std::string> Paths;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--workloads") {
      Opts.Workloads = true;
    } else if (Arg == "--jobs" || Arg == "-j") {
      if (I + 1 >= argc)
        return usage(argv[0]);
      Opts.Jobs = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      Opts.Jobs =
          static_cast<unsigned>(std::strtoul(Arg.c_str() + 7, nullptr, 10));
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (Arg == "--time-report") {
      Opts.TimeReport = true;
    } else if (Arg == "--time-report=json") {
      Opts.TimeReportJson = true;
    } else if (Arg.rfind("--dump-after=", 0) == 0) {
      Opts.Compile.DumpAfter = Arg.substr(std::strlen("--dump-after="));
    } else if (Arg.rfind("--strategy=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--strategy="));
      bool Found = false;
      for (Strategy S :
           {Strategy::Orig, Strategy::Earliest, Strategy::Global,
            Strategy::Optimal, Strategy::EarliestCombine})
        if (Name == strategyName(S)) {
          Opts.Compile.Placement.Strat = S;
          Found = true;
        }
      if (!Found) {
        std::fprintf(stderr, "error: unknown strategy '%s'\n", Name.c_str());
        return 2;
      }
    } else if (Arg == "--no-scalarize") {
      Opts.Compile.Scalarize = false;
    } else if (Arg == "--fuse") {
      Opts.Compile.FuseLoops = true;
    } else if (Arg == "--audit") {
      Opts.Compile.Audit = true;
    } else if (Arg == "--no-audit") {
      Opts.Compile.Audit = false;
    } else if (Arg == "--lint") {
      Opts.Compile.Lint = true;
    } else if (Arg == "--no-lint") {
      Opts.Compile.Lint = false;
    } else if (Arg == "--no-plans") {
      Opts.PrintPlans = false;
    } else if (Arg == "--verify-determinism") {
      Opts.VerifyDeterminism = true;
    } else if (Arg == "-p") {
      const char *Eq = I + 1 < argc ? std::strchr(argv[I + 1], '=') : nullptr;
      if (!Eq)
        return usage(argv[0]);
      Opts.Compile.Params[std::string(argv[I + 1], Eq - argv[I + 1])] =
          std::strtoll(Eq + 1, nullptr, 10);
      ++I;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage(argv[0]);
    } else {
      Paths.push_back(Arg);
    }
  }

  for (const std::string &Path : Paths) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Inputs.push_back({Path, SS.str()});
  }
  if (Opts.Workloads)
    for (const Workload *W : allWorkloads())
      Inputs.push_back({W->Name, W->Source});
  if (Inputs.empty())
    return usage(argv[0]);

  std::vector<Output> Outputs = compileAll(Inputs, Opts, Opts.Jobs);

  int Status = 0;
  for (const Output &O : Outputs) {
    std::fputs(O.Deterministic.c_str(), stdout);
    std::fputs(O.Timing.c_str(), stdout);
    if (O.Failed)
      Status = 1;
  }

  if (Opts.VerifyDeterminism) {
    std::vector<Output> Serial = compileAll(Inputs, Opts, 1);
    for (size_t I = 0; I != Outputs.size(); ++I)
      if (Serial[I].Deterministic != Outputs[I].Deterministic) {
        std::fprintf(stderr,
                     "error: nondeterministic output for '%s' "
                     "(--jobs %u vs serial)\n",
                     Inputs[I].Name.c_str(), Opts.Jobs);
        Status = 1;
      }
    if (Status == 0)
      std::fprintf(stderr,
                   "determinism verified: %zu inputs, %u jobs vs serial\n",
                   Inputs.size(), Opts.Jobs);
  }
  return Status;
}
