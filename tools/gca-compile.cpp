//===- tools/gca-compile.cpp - Parallel batch compilation driver ----------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
//
// Compiles many HPF-lite sources through the instrumented pass pipeline
// (driver/Pipeline.h), optionally in parallel. Each input gets its own
// Session — no shared mutable state — and outputs are emitted in input
// order, so a parallel run is bitwise-identical to a serial one (timing
// reports aside, which is why --verify-determinism compares only the
// deterministic sections).
//
//   $ gca-compile prog.hpf other.hpf        # plans to stdout
//   $ gca-compile --workloads --jobs 8      # all built-in workloads, 8 ways
//   $ gca-compile --stats --time-report x.hpf
//   $ gca-compile --time-report=json --workloads
//   $ gca-compile --dump-after=scalarize x.hpf
//   $ gca-compile --workloads --jobs 8 --verify-determinism
//   $ gca-compile --workloads --cache=/tmp/gca-cache --cache-stats
//
// With --cache, every compilation is keyed on its content (source bytes,
// normalized options, pass list, tool version) and replayed from the cache
// on a hit — bitwise-identical plans, diagnostics, dumps and counters, so
// cached and uncached runs produce the same deterministic output.
//
// Exit status: 0 on success, 1 on any compile error, audit or translation-
// validation violation, or determinism mismatch, 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "driver/CachedPipeline.h"
#include "driver/Pipeline.h"
#include "driver/Serve.h"
#include "runtime/Collective.h"
#include "support/Io.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "support/StrUtil.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "workloads/Synth.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace gca;

namespace {

struct ToolOptions {
  CompileOptions Compile;
  unsigned Jobs = 1;
  bool Stats = false;
  bool TimeReport = false;
  bool TimeReportJson = false;
  bool Workloads = false;
  bool VerifyDeterminism = false;
  bool PrintPlans = true;
  /// Append each routine's placement decision log to the deterministic
  /// output (requires uncached compilation: decision logs are not cached).
  bool DumpDecisions = false;
  /// Compile every input this many times; the deterministic output must be
  /// identical across repeats, and --time-report=json gains min/median wall
  /// time over the runs so bench numbers stop jittering.
  int Repeat = 1;
  /// --synth=N: also compile a generated workload with N statement nests.
  int SynthNests = 0;
  uint64_t SynthSeed = 1;
  /// Cache spec: empty = disabled, "mem" = memory tier only, anything else
  /// is the disk-tier directory (memory tier in front of it).
  std::string CacheSpec;
  bool CacheStats = false;
  size_t CacheBytes = 64ull << 20;
  /// Shared across the whole batch (ResultCache is thread-safe).
  ResultCache *Cache = nullptr;
  /// Chrome trace-event JSON output path; empty = tracing off.
  std::string TraceFile;
  /// Batch metrics snapshot: --metrics[=FILE], JSON by default.
  bool Metrics = false;
  std::string MetricsFile;
  bool MetricsPrometheus = false;
  /// Print the compile-latency histogram one-liner after the batch.
  bool HistogramReport = false;
  /// --serve=PATH|stdio: run as a long-lived compile server instead of a
  /// batch. PATH is a Unix socket; "stdio" frames over stdin/stdout.
  std::string ServeSpec;
  /// Compile workers for --serve (0 = hardware concurrency).
  unsigned ServeJobs = 0;
  /// Admission bound for --serve (requests admitted but not started).
  int QueueLimit = 64;
  /// Per-request deadline for --serve, seconds; 0 disables.
  double RequestTimeoutSec = 0;
  /// --admin=HOST:PORT: HTTP admin plane for --serve (metrics, healthz,
  /// readyz, statusz, tracez). Port 0 binds an ephemeral port, announced
  /// on stderr.
  std::string AdminSpec;
  /// --log=FILE|-: structured request log (one JSON line per request).
  std::string LogFile;
  /// --log-slow=MS: flag requests slower than MS in the log and pin them
  /// in /tracez.
  double LogSlowMs = 0;
  /// --microbench: run the CommBench-style collective microbenchmark sweep
  /// instead of compiling (op x algorithm x size table on --machine).
  bool Microbench = false;
  int MbWarmup = 3;
  int MbIters = 10;
  uint64_t MbSeed = 42;
  int MbProcs = 16;
};

struct Input {
  std::string Name;
  std::string Source;
};

/// Everything one compilation produced, split into the deterministic part
/// (compared by --verify-determinism) and the timing part (not compared).
struct Output {
  std::string Deterministic;
  std::string Timing;
  bool Failed = false;
  /// For the batch metrics snapshot: the session's counters, the wall time,
  /// and whether the result cache served this compilation.
  StatsRegistry::Snapshot Counters;
  double WallSec = 0;
  /// Wall time of the translation-validation pass (0 when off or replayed).
  double VerifyWallSec = 0;
  bool CacheHit = false;
};

/// One compilation of \p In. \p PrevWalls is non-null only on the last run
/// of a --repeat series: the wall times of the earlier runs, so the timing
/// report can include min/median over the whole series.
Output compileOneRun(const Input &In, const ToolOptions &Opts,
                     const std::vector<double> *PrevWalls) {
  Output Out;
  TraceSpan Span("compile", "driver", {{"input", In.Name}});
  auto Start = std::chrono::steady_clock::now();
  Session S(In.Source, Opts.Compile);
  bool CacheHit = false;
  if (Opts.Cache) {
    CachedPipeline CP(*Opts.Cache);
    CacheHit = CP.run(S);
  } else {
    S.run();
  }
  CompileResult R = S.take();
  double WallSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  Out.Counters = S.Stats.snapshot();
  Out.WallSec = WallSec;
  for (const PassRecord &P : S.Passes)
    if (P.Name == "verify")
      Out.VerifyWallSec = P.Time.WallSec;
  Out.CacheHit = CacheHit;

  // The compile server renders through the same function, which is what
  // makes its responses bitwise-identical to batch output.
  Out.Deterministic = renderCompileOutput(In.Name, S, R, Opts.PrintPlans,
                                          Opts.Stats, Opts.DumpDecisions);
  if (!R.Ok) {
    Out.Failed = true;
    return Out;
  }
  if (!R.AuditOk || !R.VerifyOk)
    Out.Failed = true;

  // Min/median wall time over a --repeat series (this run included).
  double WallMin = WallSec, WallMedian = WallSec;
  if (PrevWalls && !PrevWalls->empty()) {
    std::vector<double> All = *PrevWalls;
    All.push_back(WallSec);
    std::sort(All.begin(), All.end());
    WallMin = All.front();
    size_t N = All.size();
    WallMedian =
        N % 2 ? All[N / 2] : (All[N / 2 - 1] + All[N / 2]) / 2;
  }

  if (Opts.TimeReportJson) {
    // JsonWriter escapes the input name — file names containing quotes or
    // backslashes must not corrupt the report document.
    JsonWriter W;
    W.beginObject();
    W.key("input").value(In.Name);
    if (Opts.Cache) {
      W.key("cache_hit").value(CacheHit);
      W.key("wall_s").value(WallSec);
    }
    if (Opts.Repeat > 1) {
      W.key("repeats").value(static_cast<int64_t>(Opts.Repeat));
      W.key("wall_min_s").value(WallMin);
      W.key("wall_median_s").value(WallMedian);
    }
    W.key("report").raw(S.timeReportJson());
    W.endObject();
    Out.Timing = W.str() + "\n";
  } else if (Opts.TimeReport) {
    Out.Timing = "-- time report: " + In.Name + " --\n";
    if (Opts.Cache)
      Out.Timing += strFormat("  cache %s, %.6f s wall\n",
                              CacheHit ? "hit" : "miss", WallSec);
    if (Opts.Repeat > 1)
      Out.Timing += strFormat("  repeats %d, min %.6f s, median %.6f s\n",
                              Opts.Repeat, WallMin, WallMedian);
    Out.Timing += S.timeReport();
  }
  return Out;
}

/// compileOneRun, --repeat times. Every repeat is a fresh Session; the
/// deterministic output must be identical across the series (plans must not
/// depend on run-to-run state), and the last run's timing report carries
/// min/median wall time over all runs.
Output compileOne(const Input &In, const ToolOptions &Opts) {
  int Repeat = Opts.Repeat < 1 ? 1 : Opts.Repeat;
  if (Repeat == 1)
    return compileOneRun(In, Opts, nullptr);
  std::vector<double> Walls;
  Output First;
  for (int Run = 0; Run != Repeat; ++Run) {
    bool Last = Run == Repeat - 1;
    Output Cur = compileOneRun(In, Opts, Last ? &Walls : nullptr);
    Walls.push_back(Cur.WallSec);
    if (Run == 0) {
      First = std::move(Cur);
      continue;
    }
    if (Cur.Deterministic != First.Deterministic) {
      std::fprintf(stderr,
                   "error: output for '%s' differs between repeat 1 and "
                   "repeat %d\n",
                   In.Name.c_str(), Run + 1);
      First.Failed = true;
    }
    if (Last) {
      // Keep the final run's timing/counters; report the series median as
      // the batch-level wall time so metrics aggregate stable numbers.
      First.Timing = std::move(Cur.Timing);
      First.Counters = std::move(Cur.Counters);
      First.VerifyWallSec = Cur.VerifyWallSec;
      First.CacheHit = Cur.CacheHit;
      std::vector<double> Sorted = Walls;
      std::sort(Sorted.begin(), Sorted.end());
      size_t N = Sorted.size();
      First.WallSec =
          N % 2 ? Sorted[N / 2] : (Sorted[N / 2 - 1] + Sorted[N / 2]) / 2;
    }
  }
  return First;
}

/// Compiles every input with \p Jobs workers; outputs land in input order.
std::vector<Output> compileAll(const std::vector<Input> &Inputs,
                               const ToolOptions &Opts, unsigned Jobs) {
  std::vector<Output> Outputs(Inputs.size());
  if (Jobs <= 1) {
    for (size_t I = 0; I != Inputs.size(); ++I)
      Outputs[I] = compileOne(Inputs[I], Opts);
    return Outputs;
  }
  ThreadPool Pool(Jobs);
  for (size_t I = 0; I != Inputs.size(); ++I)
    Pool.async([&Inputs, &Outputs, &Opts, I] {
      Outputs[I] = compileOne(Inputs[I], Opts);
    });
  Pool.wait();
  return Outputs;
}

/// Writes \p Doc to \p File ("" = stdout), checking every write: a full
/// disk or a closed pipe must become a nonzero exit, not silent data loss.
bool emitDoc(const std::string &Doc, const std::string &File) {
  if (File.empty()) {
    if (std::fputs(Doc.c_str(), stdout) < 0)
      return false;
    return std::fflush(stdout) == 0;
  }
  FILE *F = std::fopen(File.c_str(), "w");
  if (!F)
    return false;
  bool Ok = std::fputs(Doc.c_str(), F) >= 0;
  if (std::fflush(F) != 0 || std::ferror(F))
    Ok = false;
  if (std::fclose(F) != 0)
    Ok = false;
  return Ok;
}

/// Self-pipe write end for the SIGTERM/SIGINT handler. The handler only
/// write()s (async-signal-safe); a watcher thread turns the byte into
/// CompileServer::requestDrain().
volatile int SignalPipeWrite = -1;

extern "C" void onDrainSignal(int) {
  char B = 'x';
  int Fd = SignalPipeWrite;
  if (Fd >= 0)
    (void)!::write(Fd, &B, 1);
}

/// `gca-compile --serve`: the long-lived compile service. Returns the
/// process exit status after a graceful drain.
int serveMain(const ToolOptions &Opts, ResultCache *Cache) {
  // GCA_FAULT arms the I/O fault injector (tests only): short reads/writes,
  // EAGAIN storms, and EINTR on the server's wire I/O.
  FaultInjector::instance().configureFromEnv();

  ServerConfig SC;
  bool Stdio = Opts.ServeSpec == "stdio" || Opts.ServeSpec == "-";
  if (!Stdio)
    SC.SocketPath = Opts.ServeSpec;
  SC.Jobs = Opts.ServeJobs;
  SC.QueueLimit = Opts.QueueLimit;
  SC.RequestTimeoutSec = Opts.RequestTimeoutSec;
  SC.Cache = Cache;
  SC.AdminSpec = Opts.AdminSpec;
  SC.SlowMs = Opts.LogSlowMs;

  // Request log: "-" is stdout, which in stdio mode carries response
  // frames, so the combination is a usage error, not silent corruption.
  FILE *LogStream = nullptr;
  bool CloseLog = false;
  if (!Opts.LogFile.empty()) {
    if (Opts.LogFile == "-") {
      if (Stdio) {
        std::fprintf(stderr, "error: --log=- is incompatible with "
                             "--serve=stdio (stdout carries frames)\n");
        return 2;
      }
      LogStream = stdout;
    } else {
      LogStream = std::fopen(Opts.LogFile.c_str(), "a");
      if (!LogStream) {
        std::fprintf(stderr, "error: cannot open log file '%s': %s\n",
                     Opts.LogFile.c_str(), std::strerror(errno));
        return 1;
      }
      CloseLog = true;
    }
  }
  SC.LogStream = LogStream;

  // --trace from a serving process: spans are tagged with request ids, so
  // the export attributes pipeline work to the requests that caused it.
  if (!Opts.TraceFile.empty()) {
    TraceCollector::instance().enable();
    TraceCollector::instance().setThreadName("main");
  }

  CompileServer Server(SC);

  if (!Opts.AdminSpec.empty()) {
    std::string Err;
    if (!Server.startAdmin(Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      if (CloseLog)
        std::fclose(LogStream);
      return 1;
    }
    // The resolved address matters with --admin=HOST:0; scripts parse this
    // line to find the ephemeral port.
    std::fprintf(stderr, "gca-compile: admin on %s\n",
                 Server.adminAddress().c_str());
  }

  int SigPipe[2];
  if (::pipe(SigPipe) != 0) {
    std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  SignalPipeWrite = SigPipe[1];
  struct sigaction SA;
  std::memset(&SA, 0, sizeof SA);
  SA.sa_handler = onDrainSignal;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
  // Response writes use MSG_NOSIGNAL on sockets; the stdio framing path
  // still needs SIGPIPE ignored so a vanished peer is a write error, not
  // sudden death.
  ::signal(SIGPIPE, SIG_IGN);
  std::thread Watcher([&Server, &SigPipe] {
    char B;
    if (ioReadFull(SigPipe[0], &B, 1) == IoStatus::Ok)
      Server.requestDrain();
  });

  int Status = 0;
  if (Stdio) {
    Server.serveConnection(/*InFd=*/0, /*OutFd=*/1);
    Server.requestDrain();
  } else {
    std::string Err;
    if (!Server.start(Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      Status = 1;
      Server.requestDrain();
    } else {
      std::fprintf(stderr,
                   "gca-compile: serving on %s (%lld workers, queue limit "
                   "%d)\n",
                   Opts.ServeSpec.c_str(),
                   static_cast<long long>(Server.counter("server.jobs")),
                   SC.QueueLimit);
    }
  }
  Server.wait();

  // Quiesce the signal path before tearing the self-pipe down.
  SA.sa_handler = SIG_DFL;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
  SignalPipeWrite = -1;
  ::close(SigPipe[1]);
  Watcher.join();
  ::close(SigPipe[0]);

  if (Opts.Metrics) {
    MetricsSnapshot Snap = Server.metricsSnapshot();
    std::string Doc =
        Opts.MetricsPrometheus ? Snap.prometheus() : Snap.json() + "\n";
    if (!emitDoc(Doc, Opts.MetricsFile)) {
      std::fprintf(stderr, "error: cannot write metrics%s%s\n",
                   Opts.MetricsFile.empty() ? "" : " to ",
                   Opts.MetricsFile.c_str());
      Status = 1;
    }
  }
  // wait() joined every connection thread and drained the pool, so the
  // collector is quiescent and the export is safe.
  if (!Opts.TraceFile.empty() &&
      !TraceCollector::instance().writeChromeJson(Opts.TraceFile)) {
    std::fprintf(stderr, "error: cannot write '%s'\n",
                 Opts.TraceFile.c_str());
    Status = 1;
  }
  if (CloseLog && std::fclose(LogStream) != 0) {
    std::fprintf(stderr, "error: cannot write log file '%s'\n",
                 Opts.LogFile.c_str());
    Status = 1;
  }
  std::fprintf(stderr, "gca-compile: drained (%lld requests, %lld ok)\n",
               static_cast<long long>(Server.counter("server.requests")),
               static_cast<long long>(Server.counter("server.ok")));
  return Status;
}

/// CommBench-style collective microbenchmark: sweeps every operation x
/// candidate-algorithm x message-size point on the selected machine profile
/// with the warmup/numiter discipline and prints min/med/avg/max per row.
/// The per-iteration jitter is seeded, so the table is reproducible.
int microbenchMain(const ToolOptions &Opts) {
  std::optional<MachineProfile> M = MachineProfile::byName(Opts.Compile.Machine);
  if (!M) {
    std::string Known;
    for (const std::string &Name : MachineProfile::listProfiles())
      Known += Known.empty() ? Name : " " + Name;
    std::fprintf(stderr, "error: unknown machine profile '%s' (known: %s)\n",
                 Opts.Compile.Machine.c_str(), Known.c_str());
    return 2;
  }
  static const double Sizes[] = {64, 1024, 16384, 262144, 1048576};
  std::printf("# machine=%s procs=%d warmup=%d iters=%d seed=%llu\n",
              M->Name.c_str(), Opts.MbProcs, Opts.MbWarmup, Opts.MbIters,
              static_cast<unsigned long long>(Opts.MbSeed));
  std::printf("%-10s %-18s %10s %12s %12s %12s %12s\n", "op", "algo",
              "bytes", "min(us)", "med(us)", "avg(us)", "max(us)");
  for (CollOp Op : {CollOp::Allreduce, CollOp::Bcast, CollOp::Alltoallv,
                    CollOp::NeighborExchange}) {
    for (CollAlgo Algo : candidateAlgos(Op)) {
      for (double Bytes : Sizes) {
        std::optional<CollSchedule> S;
        if (Op == CollOp::NeighborExchange)
          S = exchangeSchedule(Opts.MbProcs,
                               std::vector<double>(2, Bytes / 2), Algo);
        else
          S = buildSchedule(Op, Algo, Opts.MbProcs, Bytes, *M);
        if (!S)
          continue;
        std::string Err;
        if (!verifyDelivery(*S, &Err)) {
          std::fprintf(stderr, "error: %s/%s delivery check failed: %s\n",
                       collOpName(Op), collAlgoName(Algo), Err.c_str());
          return 1;
        }
        MicrobenchStats St =
            microbench(*S, *M, Opts.MbWarmup, Opts.MbIters, Opts.MbSeed);
        std::printf("%-10s %-18s %10.0f %12.3f %12.3f %12.3f %12.3f\n",
                    collOpName(Op), collAlgoName(Algo), Bytes,
                    St.MinSec * 1e6, St.MedSec * 1e6, St.AvgSec * 1e6,
                    St.MaxSec * 1e6);
      }
    }
  }
  return 0;
}

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] [files.hpf...]\n"
      "  --workloads            also compile every built-in workload\n"
      "  --synth=N              also compile a generated workload with N\n"
      "                         statement nests (deterministic from the "
      "seed)\n"
      "  --synth-seed=S         seed for --synth (default 1)\n"
      "  --repeat=N             compile each input N times; plans must be\n"
      "                         identical, timing reports gain min/median "
      "wall\n"
      "  --dump-decisions       append each routine's placement decision "
      "log\n"
      "                         (incompatible with --cache)\n"
      "  --jobs N, -j N         compile N inputs concurrently (default 1)\n"
      "  --placement-jobs=N     fan the placement analysis and plan audit\n"
      "                         of each routine across N worker threads;\n"
      "                         plans, stats, and decision logs are\n"
      "                         bitwise-identical at any N (default 1)\n"
      "  --stats                print the counter registry per input\n"
      "  --time-report[=json]   per-pass timing (and counter) report\n"
      "  --dump-after=PASS      dump program/plans after PASS (or 'all')\n"
      "  --strategy=NAME        orig|nored|comb|optimal|earlycomb\n"
      "  --machine=NAME         machine profile for collective lowering and\n"
      "                         simulation (default sp2; see "
      "--list-machines)\n"
      "  --list-machines        print the machine-profile registry and exit\n"
      "  --microbench           run the CommBench-style collective sweep on\n"
      "                         --machine instead of compiling: every op x\n"
      "                         algorithm x size, min/med/avg/max after "
      "warmup\n"
      "  --mb-warmup=N --mb-iters=N --mb-seed=S --mb-procs=P\n"
      "                         microbenchmark discipline (defaults 3/10/42/"
      "16)\n"
      "  --no-scalarize --fuse --audit --no-audit --lint --no-lint\n"
      "  --verify[=final|each|off]  translation validation: re-verify every\n"
      "                         plan with the independent availability\n"
      "                         dataflow ('each' adds structural IR checks\n"
      "                         after every pass); --no-verify disables\n"
      "  --defer-reductions --partial-redundancy\n"
      "  --no-plans             suppress plan printing\n"
      "  -p name=value          override a param declaration\n"
      "  --verify-determinism   recompile serially and require identical "
      "output\n"
      "  --cache[=DIR|mem]      replay identical compilations from a "
      "content-addressed\n"
      "                         cache (DIR adds a disk tier; default mem)\n"
      "  --no-cache             disable a previously-given --cache\n"
      "  --cache-bytes=N        memory-tier LRU byte budget (default 64 MiB)"
      "\n"
      "  --cache-stats          print cache hit/miss counters to stderr\n"
      "  --trace=FILE.json      write a Chrome trace-event file (load in\n"
      "                         Perfetto or chrome://tracing)\n"
      "  --metrics[=FILE]       write a batch metrics snapshot (stdout when\n"
      "                         FILE omitted)\n"
      "  --metrics-format=F     json (default) or prometheus\n"
      "  --histogram            print the compile-latency histogram\n"
      "  --serve=PATH|stdio|-   run as a compile server on a Unix socket\n"
      "                         (or framed over stdin/stdout); honors "
      "--cache,\n"
      "                         drains gracefully on SIGTERM/SIGINT, and "
      "with\n"
      "                         --metrics[=FILE] writes a final snapshot\n"
      "  --serve-jobs=N         compile workers for --serve (default: all "
      "cores)\n"
      "  --queue-limit=N        admitted-but-unstarted bound; beyond it "
      "requests\n"
      "                         are answered 'overloaded' (default 64)\n"
      "  --request-timeout=S    answer 'timeout' when a request waits more "
      "than\n"
      "                         S seconds before dispatch (default: off)\n"
      "  --admin=HOST:PORT      HTTP admin plane for --serve: GET /metrics\n"
      "                         (Prometheus text), /healthz, /readyz (503 "
      "while\n"
      "                         draining), /statusz (queue, in-flight and "
      "per-client\n"
      "                         tables), /tracez (recent + slowest "
      "requests).\n"
      "                         PORT 0 binds an ephemeral port, announced "
      "on\n"
      "                         stderr as 'gca-compile: admin on "
      "HOST:PORT'\n"
      "  --log=FILE|-           one JSON line per request (ids, client, "
      "status,\n"
      "                         queue wait, wall, cache hit, bytes in/out)\n"
      "  --log-slow=MS          flag requests slower than MS ms as "
      "\"slow\":true\n"
      "                         and pin them in /tracez\n",
      Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  ToolOptions Opts;
  std::vector<Input> Inputs;
  std::vector<std::string> Paths;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--workloads") {
      Opts.Workloads = true;
    } else if (Arg.rfind("--synth=", 0) == 0) {
      Opts.SynthNests =
          static_cast<int>(std::strtol(Arg.c_str() + 8, nullptr, 10));
      if (Opts.SynthNests <= 0)
        return usage(argv[0]);
    } else if (Arg.rfind("--synth-seed=", 0) == 0) {
      Opts.SynthSeed = std::strtoull(Arg.c_str() + 13, nullptr, 10);
    } else if (Arg.rfind("--repeat=", 0) == 0) {
      Opts.Repeat = static_cast<int>(std::strtol(Arg.c_str() + 9, nullptr, 10));
      if (Opts.Repeat < 1)
        return usage(argv[0]);
    } else if (Arg == "--dump-decisions") {
      Opts.DumpDecisions = true;
    } else if (Arg == "--jobs" || Arg == "-j") {
      if (I + 1 >= argc)
        return usage(argv[0]);
      Opts.Jobs = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      Opts.Jobs =
          static_cast<unsigned>(std::strtoul(Arg.c_str() + 7, nullptr, 10));
    } else if (Arg.rfind("--placement-jobs=", 0) == 0) {
      Opts.Compile.Placement.Jobs = static_cast<int>(
          std::strtol(Arg.c_str() + std::strlen("--placement-jobs="), nullptr,
                      10));
      if (Opts.Compile.Placement.Jobs < 1)
        return usage(argv[0]);
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (Arg == "--time-report") {
      Opts.TimeReport = true;
    } else if (Arg == "--time-report=json") {
      Opts.TimeReportJson = true;
    } else if (Arg.rfind("--dump-after=", 0) == 0) {
      Opts.Compile.DumpAfter = Arg.substr(std::strlen("--dump-after="));
    } else if (Arg.rfind("--strategy=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("--strategy="));
      bool Found = false;
      for (Strategy S :
           {Strategy::Orig, Strategy::Earliest, Strategy::Global,
            Strategy::Optimal, Strategy::EarliestCombine})
        if (Name == strategyName(S)) {
          Opts.Compile.Placement.Strat = S;
          Found = true;
        }
      if (!Found) {
        std::fprintf(stderr, "error: unknown strategy '%s'\n", Name.c_str());
        return 2;
      }
    } else if (Arg == "--no-scalarize") {
      Opts.Compile.Scalarize = false;
    } else if (Arg == "--defer-reductions") {
      Opts.Compile.Placement.DeferReductions = true;
    } else if (Arg == "--partial-redundancy") {
      Opts.Compile.Placement.PartialRedundancy = true;
    } else if (Arg == "--fuse") {
      Opts.Compile.FuseLoops = true;
    } else if (Arg == "--audit") {
      Opts.Compile.Audit = true;
    } else if (Arg == "--no-audit") {
      Opts.Compile.Audit = false;
    } else if (Arg == "--lint") {
      Opts.Compile.Lint = true;
    } else if (Arg == "--no-lint") {
      Opts.Compile.Lint = false;
    } else if (Arg == "--verify" || Arg == "--verify=final") {
      Opts.Compile.Verify = VerifyMode::Final;
    } else if (Arg == "--verify=each") {
      Opts.Compile.Verify = VerifyMode::Each;
    } else if (Arg == "--verify=off" || Arg == "--no-verify") {
      Opts.Compile.Verify = VerifyMode::Off;
    } else if (Arg == "--no-plans") {
      Opts.PrintPlans = false;
    } else if (Arg == "--cache") {
      Opts.CacheSpec = "mem";
    } else if (Arg.rfind("--cache=", 0) == 0) {
      Opts.CacheSpec = Arg.substr(std::strlen("--cache="));
      if (Opts.CacheSpec.empty())
        return usage(argv[0]);
    } else if (Arg == "--no-cache") {
      Opts.CacheSpec.clear();
    } else if (Arg.rfind("--cache-bytes=", 0) == 0) {
      Opts.CacheBytes = static_cast<size_t>(
          std::strtoull(Arg.c_str() + std::strlen("--cache-bytes="), nullptr,
                        10));
    } else if (Arg == "--cache-stats") {
      Opts.CacheStats = true;
    } else if (Arg == "--verify-determinism") {
      Opts.VerifyDeterminism = true;
    } else if (Arg.rfind("--trace=", 0) == 0) {
      Opts.TraceFile = Arg.substr(std::strlen("--trace="));
      if (Opts.TraceFile.empty())
        return usage(argv[0]);
    } else if (Arg == "--metrics") {
      Opts.Metrics = true;
    } else if (Arg.rfind("--metrics=", 0) == 0) {
      Opts.Metrics = true;
      Opts.MetricsFile = Arg.substr(std::strlen("--metrics="));
    } else if (Arg.rfind("--metrics-format=", 0) == 0) {
      std::string F = Arg.substr(std::strlen("--metrics-format="));
      if (F == "prometheus")
        Opts.MetricsPrometheus = true;
      else if (F == "json")
        Opts.MetricsPrometheus = false;
      else
        return usage(argv[0]);
    } else if (Arg == "--histogram") {
      Opts.HistogramReport = true;
    } else if (Arg.rfind("--serve=", 0) == 0) {
      Opts.ServeSpec = Arg.substr(std::strlen("--serve="));
      if (Opts.ServeSpec.empty())
        return usage(argv[0]);
    } else if (Arg.rfind("--serve-jobs=", 0) == 0) {
      Opts.ServeJobs = static_cast<unsigned>(
          std::strtoul(Arg.c_str() + std::strlen("--serve-jobs="), nullptr,
                       10));
    } else if (Arg.rfind("--queue-limit=", 0) == 0) {
      Opts.QueueLimit = static_cast<int>(
          std::strtol(Arg.c_str() + std::strlen("--queue-limit="), nullptr,
                      10));
      if (Opts.QueueLimit < 0)
        return usage(argv[0]);
    } else if (Arg.rfind("--request-timeout=", 0) == 0) {
      Opts.RequestTimeoutSec =
          std::strtod(Arg.c_str() + std::strlen("--request-timeout="),
                      nullptr);
      if (Opts.RequestTimeoutSec < 0)
        return usage(argv[0]);
    } else if (Arg.rfind("--admin=", 0) == 0) {
      Opts.AdminSpec = Arg.substr(std::strlen("--admin="));
      if (Opts.AdminSpec.empty())
        return usage(argv[0]);
    } else if (Arg.rfind("--log=", 0) == 0) {
      Opts.LogFile = Arg.substr(std::strlen("--log="));
      if (Opts.LogFile.empty())
        return usage(argv[0]);
    } else if (Arg.rfind("--log-slow=", 0) == 0) {
      Opts.LogSlowMs =
          std::strtod(Arg.c_str() + std::strlen("--log-slow="), nullptr);
      if (Opts.LogSlowMs <= 0)
        return usage(argv[0]);
    } else if (Arg.rfind("--machine=", 0) == 0) {
      Opts.Compile.Machine = Arg.substr(std::strlen("--machine="));
      if (Opts.Compile.Machine.empty())
        return usage(argv[0]);
    } else if (Arg == "--list-machines") {
      for (const std::string &Name : MachineProfile::listProfiles())
        std::printf("%s\n", Name.c_str());
      return 0;
    } else if (Arg == "--microbench") {
      Opts.Microbench = true;
    } else if (Arg.rfind("--mb-warmup=", 0) == 0) {
      Opts.MbWarmup = static_cast<int>(
          std::strtol(Arg.c_str() + std::strlen("--mb-warmup="), nullptr, 10));
      if (Opts.MbWarmup < 0)
        return usage(argv[0]);
    } else if (Arg.rfind("--mb-iters=", 0) == 0) {
      Opts.MbIters = static_cast<int>(
          std::strtol(Arg.c_str() + std::strlen("--mb-iters="), nullptr, 10));
      if (Opts.MbIters < 1)
        return usage(argv[0]);
    } else if (Arg.rfind("--mb-seed=", 0) == 0) {
      Opts.MbSeed =
          std::strtoull(Arg.c_str() + std::strlen("--mb-seed="), nullptr, 10);
    } else if (Arg.rfind("--mb-procs=", 0) == 0) {
      Opts.MbProcs = static_cast<int>(
          std::strtol(Arg.c_str() + std::strlen("--mb-procs="), nullptr, 10));
      if (Opts.MbProcs < 1)
        return usage(argv[0]);
    } else if (Arg == "-p") {
      const char *Eq = I + 1 < argc ? std::strchr(argv[I + 1], '=') : nullptr;
      if (!Eq)
        return usage(argv[0]);
      Opts.Compile.Params[std::string(argv[I + 1], Eq - argv[I + 1])] =
          std::strtoll(Eq + 1, nullptr, 10);
      ++I;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage(argv[0]);
    } else {
      Paths.push_back(Arg);
    }
  }

  if (Opts.Microbench) {
    if (!Paths.empty() || Opts.Workloads || !Opts.ServeSpec.empty()) {
      std::fprintf(stderr, "error: --microbench takes no inputs\n");
      return 2;
    }
    return microbenchMain(Opts);
  }

  for (const std::string &Path : Paths) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Inputs.push_back({Path, SS.str()});
  }
  if (Opts.Workloads)
    for (const Workload *W : allWorkloads())
      Inputs.push_back({W->Name, W->Source});
  if (Opts.SynthNests > 0) {
    SynthSpec Spec;
    Spec.Nests = Opts.SynthNests;
    Spec.Seed = Opts.SynthSeed;
    Inputs.push_back({synthName(Spec), synthSource(Spec)});
  }
  if (!Opts.ServeSpec.empty() && !Inputs.empty()) {
    std::fprintf(stderr, "error: --serve takes no inputs (clients send "
                         "sources over the wire)\n");
    return 2;
  }
  if (Opts.ServeSpec.empty() &&
      (!Opts.AdminSpec.empty() || !Opts.LogFile.empty() ||
       Opts.LogSlowMs > 0)) {
    std::fprintf(stderr, "error: --admin, --log, and --log-slow require "
                         "--serve\n");
    return 2;
  }
  if (Inputs.empty() && Opts.ServeSpec.empty())
    return usage(argv[0]);

  if (Opts.DumpDecisions && !Opts.CacheSpec.empty()) {
    std::fprintf(stderr, "error: --dump-decisions requires uncached "
                         "compilation (decision logs are not cached)\n");
    return 2;
  }

  std::unique_ptr<ResultCache> Cache;
  if (!Opts.CacheSpec.empty()) {
    ResultCache::Config C;
    C.MemBudgetBytes = Opts.CacheBytes;
    if (Opts.CacheSpec != "mem")
      C.Dir = Opts.CacheSpec;
    Cache = std::make_unique<ResultCache>(std::move(C));
    Opts.Cache = Cache.get();
  }

  if (!Opts.ServeSpec.empty())
    return serveMain(Opts, Cache.get());

  if (!Opts.TraceFile.empty()) {
    TraceCollector::instance().enable();
    TraceCollector::instance().setThreadName("main");
  }

  std::vector<Output> Outputs = compileAll(Inputs, Opts, Opts.Jobs);

  int Status = 0;
  for (const Output &O : Outputs) {
    std::fputs(O.Deterministic.c_str(), stdout);
    std::fputs(O.Timing.c_str(), stdout);
    if (O.Failed)
      Status = 1;
  }
  if (Cache && Opts.TimeReportJson)
    std::fprintf(stdout, "{\"cache\":%s}\n", Cache->stats().json().c_str());
  if (Cache && Opts.CacheStats)
    std::fprintf(stderr, "%s\n", Cache->stats().str().c_str());

  if (Opts.Metrics || Opts.HistogramReport) {
    // The batch snapshot: session counters summed over all inputs, the
    // driver's own counters, cache counters, and the latency histogram.
    MetricsSnapshot Snap;
    Histogram Wall, VerifyWall;
    int64_t Failures = 0, CacheHits = 0;
    for (const Output &O : Outputs) {
      for (const auto &[Name, Value] : O.Counters)
        Snap.Counters[Name] += Value;
      Wall.record(static_cast<int64_t>(O.WallSec * 1e9));
      if (Opts.Compile.Verify != VerifyMode::Off)
        VerifyWall.record(static_cast<int64_t>(O.VerifyWallSec * 1e9));
      Failures += O.Failed;
      CacheHits += O.CacheHit;
    }
    Snap.Counters["driver.inputs"] = static_cast<int64_t>(Inputs.size());
    Snap.Counters["driver.failures"] = Failures;
    Snap.Counters["driver.jobs"] = Opts.Jobs;
    if (Cache) {
      CacheStats CS = Cache->stats();
      Snap.Counters["driver.cache-hits"] = CacheHits;
      Snap.Counters["cache.hits"] = CS.Hits;
      Snap.Counters["cache.misses"] = CS.Misses;
      Snap.Counters["cache.evictions"] = CS.Evictions;
      Snap.Counters["cache.disk-hits"] = CS.DiskHits;
      Snap.Counters["cache.disk-errors"] = CS.DiskErrors;
      Snap.Counters["cache.routine-hits"] = CS.RoutineHits;
      Snap.Counters["cache.routine-misses"] = CS.RoutineMisses;
    }
    Snap.addHistogram("compile.wall_ns", Wall);
    if (Opts.Compile.Verify != VerifyMode::Off)
      Snap.addHistogram("verify.wall_ns", VerifyWall);
    if (Opts.HistogramReport)
      std::fprintf(stdout, "compile.wall_ns: %s\n", Wall.str().c_str());
    if (Opts.Metrics) {
      std::string Doc =
          Opts.MetricsPrometheus ? Snap.prometheus() : Snap.json() + "\n";
      if (!emitDoc(Doc, Opts.MetricsFile)) {
        std::fprintf(stderr, "error: cannot write metrics%s%s\n",
                     Opts.MetricsFile.empty() ? "" : " to ",
                     Opts.MetricsFile.c_str());
        Status = 1;
      }
    }
  }

  if (Opts.VerifyDeterminism) {
    std::vector<Output> Serial = compileAll(Inputs, Opts, 1);
    for (size_t I = 0; I != Outputs.size(); ++I)
      if (Serial[I].Deterministic != Outputs[I].Deterministic) {
        std::fprintf(stderr,
                     "error: nondeterministic output for '%s' "
                     "(--jobs %u vs serial)\n",
                     Inputs[I].Name.c_str(), Opts.Jobs);
        Status = 1;
      }
    if (Status == 0)
      std::fprintf(stderr,
                   "determinism verified: %zu inputs, %u jobs vs serial\n",
                   Inputs.size(), Opts.Jobs);
  }

  // Workers are joined (compileAll waits on the pool), so the collector is
  // quiescent and the export is safe.
  if (!Opts.TraceFile.empty() &&
      !TraceCollector::instance().writeChromeJson(Opts.TraceFile)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Opts.TraceFile.c_str());
    Status = 1;
  }
  // ferror is sticky, so this catches every unchecked fputs above: plans
  // sent into a full disk or closed pipe must fail the run, not vanish.
  if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
    std::fprintf(stderr, "error: write to stdout failed: %s\n",
                 std::strerror(errno));
    if (Status == 0)
      Status = 1;
  }
  return Status;
}
