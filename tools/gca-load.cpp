//===- tools/gca-load.cpp - Load generator for the compile server ---------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
//
// Replays a mix of compile requests against a running `gca-compile --serve`
// daemon at a chosen concurrency and request rate, then reports latency
// percentiles (p50/p95/p99) and verifies correctness: with --check, every
// response's output must be bitwise-identical to what this process computes
// locally through the very same pipeline — the server is a differential
// test target, and this tool is the prover.
//
//   $ gca-compile --serve=/tmp/gca.sock --cache &
//   $ gca-load --socket=/tmp/gca.sock --workloads --synth=400
//       --clients=8 --requests=200 --check --slo-p99=2000
//
// Exit status: 0 when every request succeeded and every SLO held; 1 on any
// correctness violation (output mismatch, unparseable response, missing
// overload when --expect-overloaded, failed recovery probe) or SLO miss;
// 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "driver/Serve.h"
#include "support/Frame.h"
#include "support/Http.h"
#include "support/Io.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "support/StrUtil.h"
#include "workloads/Synth.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace gca;

namespace {

struct LoadOptions {
  std::string SocketPath;
  int Clients = 1;
  int Requests = 0; ///< Total across all clients; 0 = one pass over inputs.
  double Rate = 0;  ///< Global requests/second cap; 0 = unpaced.
  bool Workloads = false;
  int SynthNests = 0;
  /// Number of distinct synthetic inputs (seeds 1..Count), each SynthNests
  /// nests, so a synth mix exercises the cache with more than one key.
  int SynthCount = 1;
  /// Differential check: compile every input locally and require the
  /// server's output bytes to match exactly.
  bool Check = false;
  double SloP50Ms = 0, SloP95Ms = 0, SloP99Ms = 0; ///< 0 = not enforced.
  /// Saturation mode: require at least one `overloaded` response, then
  /// prove recovery with a fresh probe request that must succeed.
  bool ExpectOverloaded = false;
  /// Treat `draining` responses as expected (drain-under-load tests).
  bool AllowDraining = false;
  bool ScrapeMetrics = false; ///< {"cmd":"metrics"} after the run.
  bool Drain = false;         ///< {"cmd":"drain"} after the run.
  /// --admin=HOST:PORT: scrape GET /metrics over HTTP after the run and
  /// require it to agree with the socket metrics command counter-for-
  /// counter (modulo families that legitimately move between the two
  /// scrapes: uptime, fault-injection, the admin plane's own counters).
  std::string AdminSpec;
};

struct LoadInput {
  CompileRequest Req;
  std::string Wire;     ///< Request payload (id patched per send).
  std::string Expected; ///< Local oracle output (--check only).
};

/// Per-client tallies, merged after the run.
struct ClientResult {
  Histogram Latency;
  int64_t Ok = 0, CompileErrors = 0, Overloaded = 0, Timeouts = 0,
          Draining = 0, Mismatches = 0, ProtocolErrors = 0,
          TraceIdErrors = 0;
};

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket=PATH [options] [files.hpf...]\n"
      "  --clients=N            concurrent client connections (default 1)\n"
      "  --requests=N           total requests, round-robin over the input\n"
      "                         mix (default: one pass over the inputs)\n"
      "  --rate=R               cap the global request rate at R req/s\n"
      "  --workloads            add every built-in workload to the mix\n"
      "  --synth=N              add a generated workload with N nests\n"
      "  --synth-count=K        K distinct synth inputs, seeds 1..K\n"
      "  --check                require responses bitwise-identical to a\n"
      "                         local compilation of the same request\n"
      "  --slo-p50=MS --slo-p95=MS --slo-p99=MS\n"
      "                         fail (exit 1) when a latency SLO is missed\n"
      "  --expect-overloaded    require >=1 'overloaded' response, then a\n"
      "                         successful recovery probe\n"
      "  --allow-draining       'draining' responses are expected, not "
      "errors\n"
      "  --metrics              scrape {\"cmd\":\"metrics\"} after the run\n"
      "  --drain                send {\"cmd\":\"drain\"} after the run\n"
      "  --admin=HOST:PORT      also scrape GET /metrics over HTTP and "
      "require\n"
      "                         it to agree with the socket metrics "
      "command\n"
      "                         on every counter (the socket path stays "
      "the\n"
      "                         fallback when --admin is not given)\n",
      Argv0);
  return 2;
}

/// One synchronous request/response exchange. Returns false on transport
/// failure; \p Resp holds the parsed response on success.
bool exchange(int Fd, const std::string &Payload, JsonValue &Resp,
              std::string &Err) {
  if (writeFrame(Fd, Payload) != FrameStatus::Ok) {
    Err = "request write failed";
    return false;
  }
  std::string Wire;
  FrameStatus FS = readFrame(Fd, Wire);
  if (FS != FrameStatus::Ok) {
    Err = strFormat("response read failed (%s)", frameStatusName(FS));
    return false;
  }
  if (!JsonValue::parse(Wire, Resp, Err)) {
    Err = "response is not valid JSON: " + Err;
    return false;
  }
  return true;
}

/// Builds the request payload for \p In with the sequence number as id,
/// plus the sending client's identity and a per-request trace id (both
/// omitted from the wire when empty).
std::string wireWithId(const LoadInput &In, int64_t Id,
                       const std::string &Client = std::string(),
                       const std::string &TraceId = std::string()) {
  CompileRequest Req = In.Req;
  Req.Id = Id;
  Req.Client = Client;
  Req.TraceId = TraceId;
  return buildCompileRequestJson(Req);
}

void clientLoop(const LoadOptions &Opts, const std::vector<LoadInput> &Inputs,
                int ClientIdx, int TotalRequests,
                std::chrono::steady_clock::time_point Epoch,
                ClientResult &Out) {
  std::string Err;
  int Fd = connectUnixSocket(Opts.SocketPath, Err);
  if (Fd < 0) {
    std::fprintf(stderr, "client %d: %s\n", ClientIdx, Err.c_str());
    Out.ProtocolErrors++;
    return;
  }
  // Client C owns requests C, C+Clients, C+2*Clients, ... of the global
  // sequence, so the input mix and ids are deterministic at any client
  // count.
  for (int Seq = ClientIdx; Seq < TotalRequests; Seq += Opts.Clients) {
    if (Opts.Rate > 0) {
      auto Target =
          Epoch + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(Seq / Opts.Rate));
      std::this_thread::sleep_until(Target);
    }
    const LoadInput &In = Inputs[Seq % Inputs.size()];
    // Every request carries the sending client's identity (the /statusz
    // per-client accounting key) and a deterministic trace id the server
    // must echo back verbatim.
    const std::string Client = "client-" + std::to_string(ClientIdx);
    const std::string TraceId = "load-" + std::to_string(Seq);
    std::string Payload = wireWithId(In, Seq, Client, TraceId);
    auto Start = std::chrono::steady_clock::now();
    JsonValue Resp;
    if (!exchange(Fd, Payload, Resp, Err)) {
      std::fprintf(stderr, "client %d: request %d: %s\n", ClientIdx, Seq,
                   Err.c_str());
      Out.ProtocolErrors++;
      break; // The connection is unusable; stop this client.
    }
    int64_t LatNs = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
    const JsonValue *Status = Resp.get("status");
    const JsonValue *Id = Resp.get("id");
    if (!Status || !Status->isString() || !Id || Id->intValue(-1) != Seq) {
      std::fprintf(stderr, "client %d: request %d: malformed response\n",
                   ClientIdx, Seq);
      Out.ProtocolErrors++;
      continue;
    }
    const JsonValue *Echo = Resp.get("trace_id");
    if (!Echo || !Echo->isString() || Echo->stringValue() != TraceId) {
      std::fprintf(stderr,
                   "client %d: request %d: trace_id not echoed (sent '%s')\n",
                   ClientIdx, Seq, TraceId.c_str());
      Out.TraceIdErrors++;
    }
    const std::string &S = Status->stringValue();
    if (S == "ok" || S == "error") {
      Out.Latency.record(LatNs);
      if (S == "error")
        Out.CompileErrors++;
      else
        Out.Ok++;
      if (Opts.Check) {
        const JsonValue *Output = Resp.get("output");
        if (!Output || !Output->isString() ||
            Output->stringValue() != In.Expected) {
          std::fprintf(stderr,
                       "client %d: request %d ('%s'): output differs from "
                       "local compilation\n",
                       ClientIdx, Seq, In.Req.Name.c_str());
          Out.Mismatches++;
        }
      }
    } else if (S == "overloaded") {
      Out.Overloaded++;
    } else if (S == "timeout") {
      Out.Timeouts++;
    } else if (S == "draining") {
      Out.Draining++;
    } else {
      std::fprintf(stderr, "client %d: request %d: unexpected status '%s'\n",
                   ClientIdx, Seq, S.c_str());
      Out.ProtocolErrors++;
    }
  }
  ::close(Fd);
}

/// Prometheus exposition lines that legitimately differ between two
/// scrapes taken moments apart: uptime advances, GCA_FAULT injects into the
/// scrapes' own I/O, the HTTP scrape bumps the admin plane's counters, and
/// connection teardown from the just-closed load clients races
/// connections-active.
bool lineIsVolatile(const std::string &Line) {
  for (const char *Needle :
       {"uptime", "io_faults", "gca_admin_", "connections_active"})
    if (Line.find(Needle) != std::string::npos)
      return true;
  return false;
}

std::vector<std::string> stableLines(const std::string &Text) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = Text.size();
    std::string Line = Text.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    if (!Line.empty() && !lineIsVolatile(Line))
      Out.push_back(std::move(Line));
  }
  return Out;
}

/// The --admin cross-check: the HTTP /metrics exposition must agree with
/// the socket {"cmd":"metrics","format":"prometheus"} response line for
/// line once volatile families are dropped. The socket scrape goes first
/// and its connection is held open across the HTTP scrape, so neither
/// scrape can shift the other's connection counters. \returns false (with
/// a diagnostic on stderr) on any disagreement or transport failure.
bool crossCheckAdminMetrics(const LoadOptions &Opts) {
  std::string Err;
  int Fd = connectUnixSocket(Opts.SocketPath, Err);
  if (Fd < 0) {
    std::fprintf(stderr, "admin cross-check: %s\n", Err.c_str());
    return false;
  }
  JsonValue Resp;
  bool Okay = exchange(
      Fd, "{\"cmd\":\"metrics\",\"format\":\"prometheus\"}", Resp, Err);
  std::string SocketText;
  if (Okay) {
    const JsonValue *M = Resp.get("metrics");
    if (M && M->isString())
      SocketText = M->stringValue();
    else {
      std::fprintf(stderr,
                   "admin cross-check: socket scrape returned no text\n");
      Okay = false;
    }
  } else {
    std::fprintf(stderr, "admin cross-check: %s\n", Err.c_str());
  }

  std::string HttpBody;
  if (Okay) {
    int HttpStatus = 0;
    if (!httpGet(Opts.AdminSpec, "/metrics", HttpStatus, HttpBody, Err)) {
      std::fprintf(stderr, "admin cross-check: GET /metrics: %s\n",
                   Err.c_str());
      Okay = false;
    } else if (HttpStatus != 200) {
      std::fprintf(stderr, "admin cross-check: GET /metrics returned %d\n",
                   HttpStatus);
      Okay = false;
    }
  }
  ::close(Fd);
  if (!Okay)
    return false;

  std::vector<std::string> SockLines = stableLines(SocketText);
  std::vector<std::string> HttpLines = stableLines(HttpBody);
  if (SockLines == HttpLines)
    return true;
  std::fprintf(stderr,
               "admin cross-check: /metrics disagrees with the socket "
               "scrape (%zu vs %zu stable lines)\n",
               HttpLines.size(), SockLines.size());
  size_t N = std::min(SockLines.size(), HttpLines.size());
  for (size_t I = 0; I != N; ++I)
    if (SockLines[I] != HttpLines[I]) {
      std::fprintf(stderr, "  first difference:\n    socket: %s\n    http:   %s\n",
                   SockLines[I].c_str(), HttpLines[I].c_str());
      break;
    }
  return false;
}

/// Sends one control command on a fresh connection; returns the response
/// object, or Null on failure.
JsonValue controlCommand(const LoadOptions &Opts, const std::string &Payload) {
  std::string Err;
  int Fd = connectUnixSocket(Opts.SocketPath, Err);
  if (Fd < 0) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return JsonValue::makeNull();
  }
  JsonValue Resp;
  bool Okay = exchange(Fd, Payload, Resp, Err);
  ::close(Fd);
  if (!Okay) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return JsonValue::makeNull();
  }
  return Resp;
}

} // namespace

int main(int argc, char **argv) {
  LoadOptions Opts;
  std::vector<std::string> Paths;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NumAfter = [&](const char *Prefix) {
      return std::strtol(Arg.c_str() + std::strlen(Prefix), nullptr, 10);
    };
    if (Arg.rfind("--socket=", 0) == 0) {
      Opts.SocketPath = Arg.substr(std::strlen("--socket="));
    } else if (Arg.rfind("--clients=", 0) == 0) {
      Opts.Clients = static_cast<int>(NumAfter("--clients="));
      if (Opts.Clients < 1)
        return usage(argv[0]);
    } else if (Arg.rfind("--requests=", 0) == 0) {
      Opts.Requests = static_cast<int>(NumAfter("--requests="));
      if (Opts.Requests < 1)
        return usage(argv[0]);
    } else if (Arg.rfind("--rate=", 0) == 0) {
      Opts.Rate = std::strtod(Arg.c_str() + std::strlen("--rate="), nullptr);
      if (Opts.Rate <= 0)
        return usage(argv[0]);
    } else if (Arg == "--workloads") {
      Opts.Workloads = true;
    } else if (Arg.rfind("--synth=", 0) == 0) {
      Opts.SynthNests = static_cast<int>(NumAfter("--synth="));
      if (Opts.SynthNests <= 0)
        return usage(argv[0]);
    } else if (Arg.rfind("--synth-count=", 0) == 0) {
      Opts.SynthCount = static_cast<int>(NumAfter("--synth-count="));
      if (Opts.SynthCount < 1)
        return usage(argv[0]);
    } else if (Arg == "--check") {
      Opts.Check = true;
    } else if (Arg.rfind("--slo-p50=", 0) == 0) {
      Opts.SloP50Ms = std::strtod(Arg.c_str() + 10, nullptr);
    } else if (Arg.rfind("--slo-p95=", 0) == 0) {
      Opts.SloP95Ms = std::strtod(Arg.c_str() + 10, nullptr);
    } else if (Arg.rfind("--slo-p99=", 0) == 0) {
      Opts.SloP99Ms = std::strtod(Arg.c_str() + 10, nullptr);
    } else if (Arg == "--expect-overloaded") {
      Opts.ExpectOverloaded = true;
    } else if (Arg == "--allow-draining") {
      Opts.AllowDraining = true;
    } else if (Arg == "--metrics") {
      Opts.ScrapeMetrics = true;
    } else if (Arg == "--drain") {
      Opts.Drain = true;
    } else if (Arg.rfind("--admin=", 0) == 0) {
      Opts.AdminSpec = Arg.substr(std::strlen("--admin="));
      if (Opts.AdminSpec.empty())
        return usage(argv[0]);
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage(argv[0]);
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Opts.SocketPath.empty())
    return usage(argv[0]);

  // GCA_FAULT arms the fault injector on the client side too: the load
  // harness must survive short reads and EAGAIN storms on its own wire.
  FaultInjector::instance().configureFromEnv();

  // --- Assemble the input mix -------------------------------------------
  std::vector<LoadInput> Inputs;
  auto AddInput = [&](std::string Name, std::string Source) {
    LoadInput In;
    In.Req.Name = std::move(Name);
    In.Req.Source = std::move(Source);
    Inputs.push_back(std::move(In));
  };
  for (const std::string &Path : Paths) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    AddInput(Path, SS.str());
  }
  if (Opts.Workloads)
    for (const Workload *W : allWorkloads())
      AddInput(W->Name, W->Source);
  for (int K = 0; K < (Opts.SynthNests > 0 ? Opts.SynthCount : 0); ++K) {
    SynthSpec Spec;
    Spec.Nests = Opts.SynthNests;
    Spec.Seed = static_cast<uint64_t>(K + 1);
    AddInput(synthName(Spec), synthSource(Spec));
  }
  if (Inputs.empty()) {
    std::fprintf(stderr, "error: empty input mix (give files, --workloads, "
                         "or --synth=N)\n");
    return 2;
  }

  // --- Local oracle (once per distinct input, not per request) ----------
  if (Opts.Check)
    for (LoadInput &In : Inputs)
      In.Expected = runCompileRequest(In.Req, /*Cache=*/nullptr).Output;

  int TotalRequests =
      Opts.Requests > 0 ? Opts.Requests : static_cast<int>(Inputs.size());

  // --- Fire --------------------------------------------------------------
  std::vector<ClientResult> Results(static_cast<size_t>(Opts.Clients));
  std::vector<std::thread> Threads;
  auto Epoch = std::chrono::steady_clock::now();
  for (int C = 0; C < Opts.Clients; ++C)
    Threads.emplace_back([&, C] {
      clientLoop(Opts, Inputs, C, TotalRequests, Epoch, Results[C]);
    });
  for (std::thread &T : Threads)
    T.join();
  double WallSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Epoch)
          .count();

  ClientResult Total;
  for (const ClientResult &R : Results) {
    Total.Latency.merge(R.Latency);
    Total.Ok += R.Ok;
    Total.CompileErrors += R.CompileErrors;
    Total.Overloaded += R.Overloaded;
    Total.Timeouts += R.Timeouts;
    Total.Draining += R.Draining;
    Total.Mismatches += R.Mismatches;
    Total.ProtocolErrors += R.ProtocolErrors;
    Total.TraceIdErrors += R.TraceIdErrors;
  }

  int Status = 0;
  auto Violate = [&](const char *Fmt, auto... Args) {
    std::fprintf(stderr, Fmt, Args...);
    Status = 1;
  };

  if (Total.ProtocolErrors)
    Violate("violation: %lld protocol errors\n",
            static_cast<long long>(Total.ProtocolErrors));
  if (Total.Mismatches)
    Violate("violation: %lld responses differed from local compilation\n",
            static_cast<long long>(Total.Mismatches));
  if (Total.Draining && !Opts.AllowDraining)
    Violate("violation: %lld unexpected 'draining' responses\n",
            static_cast<long long>(Total.Draining));
  if (Total.Overloaded && !Opts.ExpectOverloaded)
    Violate("violation: %lld unexpected 'overloaded' responses\n",
            static_cast<long long>(Total.Overloaded));
  if (Total.TraceIdErrors)
    Violate("violation: %lld trace_id echo failures\n",
            static_cast<long long>(Total.TraceIdErrors));

  // The HTTP admin plane must expose the same truth the socket does.
  if (!Opts.AdminSpec.empty() && !crossCheckAdminMetrics(Opts))
    Violate("violation: admin /metrics cross-check failed\n");

  if (Opts.ExpectOverloaded) {
    if (Total.Overloaded == 0)
      Violate("violation: saturation run saw no 'overloaded' response\n");
    // Recovery probe: after the burst the server must serve again.
    LoadInput &Probe = Inputs.front();
    JsonValue Resp = controlCommand(Opts, wireWithId(Probe, TotalRequests));
    const JsonValue *S = Resp.get("status");
    if (!S || !S->isString() ||
        !(S->stringValue() == "ok" || S->stringValue() == "error"))
      Violate("violation: recovery probe after saturation was not served\n");
  }

  // --- Latency SLOs ------------------------------------------------------
  double P50Ms = Total.Latency.quantile(0.50) / 1e6;
  double P95Ms = Total.Latency.quantile(0.95) / 1e6;
  double P99Ms = Total.Latency.quantile(0.99) / 1e6;
  auto CheckSlo = [&](const char *Name, double Got, double Limit) {
    if (Limit > 0 && Got > Limit)
      Violate("violation: %s %.3f ms exceeds SLO of %.3f ms\n", Name, Got,
              Limit);
  };
  CheckSlo("p50", P50Ms, Opts.SloP50Ms);
  CheckSlo("p95", P95Ms, Opts.SloP95Ms);
  CheckSlo("p99", P99Ms, Opts.SloP99Ms);

  // --- Report ------------------------------------------------------------
  JsonWriter W;
  W.beginObject();
  W.key("requests").value(static_cast<int64_t>(TotalRequests));
  W.key("clients").value(static_cast<int64_t>(Opts.Clients));
  W.key("inputs").value(static_cast<int64_t>(Inputs.size()));
  W.key("ok").value(Total.Ok);
  W.key("compile_errors").value(Total.CompileErrors);
  W.key("overloaded").value(Total.Overloaded);
  W.key("timeouts").value(Total.Timeouts);
  W.key("draining").value(Total.Draining);
  W.key("mismatches").value(Total.Mismatches);
  W.key("protocol_errors").value(Total.ProtocolErrors);
  W.key("trace_id_errors").value(Total.TraceIdErrors);
  W.key("checked").value(Opts.Check);
  W.key("wall_s").value(WallSec);
  W.key("throughput_rps")
      .value(WallSec > 0 ? (Total.Ok + Total.CompileErrors) / WallSec : 0);
  W.key("p50_ms").value(P50Ms, 3);
  W.key("p95_ms").value(P95Ms, 3);
  W.key("p99_ms").value(P99Ms, 3);
  W.key("latency_ns").raw(Total.Latency.json());
  W.key("slo_pass").value(Status == 0);
  W.endObject();

  if (std::fputs((W.str() + "\n").c_str(), stdout) < 0)
    Status = Status ? Status : 1;

  if (Opts.ScrapeMetrics) {
    JsonValue Resp = controlCommand(Opts, "{\"cmd\":\"metrics\"}");
    const JsonValue *S = Resp.get("status");
    if (!S || !S->isString() || S->stringValue() != "ok") {
      Violate("violation: metrics scrape failed\n");
    } else {
      // Re-render the metrics subtree so the scrape is one canonical JSON
      // document on its own line.
      const JsonValue *M = Resp.get("metrics");
      if (M && M->isObject()) {
        JsonWriter MW;
        std::function<void(const JsonValue &)> Emit =
            [&](const JsonValue &V) {
              switch (V.kind()) {
              case JsonValue::Kind::Null:
                MW.null();
                break;
              case JsonValue::Kind::Bool:
                MW.value(V.boolValue());
                break;
              case JsonValue::Kind::Number:
                if (V.isIntegral())
                  MW.value(V.intValue());
                else
                  MW.value(V.numberValue());
                break;
              case JsonValue::Kind::String:
                MW.value(V.stringValue());
                break;
              case JsonValue::Kind::Array:
                MW.beginArray();
                for (const JsonValue &E : V.array())
                  Emit(E);
                MW.endArray();
                break;
              case JsonValue::Kind::Object:
                MW.beginObject();
                for (const auto &[K, E] : V.members()) {
                  MW.key(K);
                  Emit(E);
                }
                MW.endObject();
                break;
              }
            };
        Emit(*M);
        if (std::fputs((MW.str() + "\n").c_str(), stdout) < 0)
          Status = Status ? Status : 1;
      } else {
        Violate("violation: metrics scrape returned no object\n");
      }
    }
  }

  if (Opts.Drain) {
    JsonValue Resp = controlCommand(Opts, "{\"cmd\":\"drain\"}");
    const JsonValue *S = Resp.get("status");
    if (!S || !S->isString() || S->stringValue() != "ok")
      Violate("violation: drain command failed\n");
  }

  if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
    std::fprintf(stderr, "error: write to stdout failed\n");
    Status = Status ? Status : 1;
  }
  return Status;
}
