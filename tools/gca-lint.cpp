//===- tools/gca-lint.cpp - Plan audit + communication lint CLI -----------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
//
// Compiles an HPF-lite program, statically audits the communication plan of
// every routine (analysis/PlanAudit.h), and runs the communication lints
// (analysis/CommLint.h). Diagnostics print to stderr; the exit status is
// nonzero on compile errors or audit violations (and, under --werror, on any
// lint warning).
//
//   $ gca-lint prog.hpf
//   $ gca-lint --json prog.hpf          # machine-readable audit reports
//   $ gca-lint --werror prog.hpf        # warnings are fatal
//   $ gca-lint -p n=128 prog.hpf        # override a param declaration
//
//===----------------------------------------------------------------------===//

#include "driver/Compile.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace gca;

static int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--werror] [--no-audit] [--no-lint] "
               "[-p name=value]... <file.hpf>\n",
               Argv0);
  return 2;
}

int main(int argc, char **argv) {
  std::string Path;
  bool Json = false, Werror = false, Audit = true, Lint = true;
  ParamMap Params;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--werror") {
      Werror = true;
    } else if (Arg == "--no-audit") {
      Audit = false;
    } else if (Arg == "--no-lint") {
      Lint = false;
    } else if (Arg == "-p") {
      const char *Eq = I + 1 < argc ? std::strchr(argv[I + 1], '=') : nullptr;
      if (!Eq)
        return usage(argv[0]);
      Params[std::string(argv[I + 1], Eq - argv[I + 1])] =
          std::strtoll(Eq + 1, nullptr, 10);
      ++I;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage(argv[0]);
    } else if (Path.empty()) {
      Path = Arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (Path.empty())
    return usage(argv[0]);

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 1;
  }
  std::stringstream SS;
  SS << In.rdbuf();

  CompileOptions Opts;
  Opts.Params = Params;
  Opts.Audit = Audit;
  Opts.Lint = Lint;
  CompileResult R = compileSource(SS.str(), Opts);
  if (!R.Ok) {
    std::fprintf(stderr, "%s", R.Errors.c_str());
    return 1;
  }

  std::fprintf(stderr, "%s", R.Diagnostics.c_str());
  if (Json)
    for (const RoutineResult &RR : R.Routines)
      std::printf("{\"routine\":\"%s\",\"audit\":%s}\n",
                  RR.R->name().c_str(), RR.Audit.json().c_str());
  // ferror is sticky: a --json report truncated by a full disk or closed
  // pipe must fail the run, not silently pass.
  if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
    std::fprintf(stderr, "error: write to stdout failed\n");
    return 1;
  }

  if (!R.AuditOk)
    return 1;
  if (Werror && !R.Diagnostics.empty())
    return 1;
  return 0;
}
