//===- tests/test_support.cpp - support library tests ---------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/Diag.h"
#include "support/StrUtil.h"

#include <gtest/gtest.h>

using namespace gca;

TEST(StrUtil, FormatBasics) {
  EXPECT_EQ(strFormat("x=%d", 42), "x=42");
  EXPECT_EQ(strFormat("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(strFormat("%.2f", 1.5), "1.50");
}

TEST(StrUtil, FormatLongString) {
  std::string Long(1000, 'x');
  EXPECT_EQ(strFormat("%s", Long.c_str()).size(), 1000u);
}

TEST(StrUtil, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrUtil, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\na b\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StrUtil, FormatBytes) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(20 * 1024), "20.0 KB");
  EXPECT_EQ(formatBytes(3.5 * 1024 * 1024), "3.5 MB");
}

TEST(StrUtil, FormatSeconds) {
  EXPECT_EQ(formatSeconds(42e-6), "42.0 us");
  EXPECT_EQ(formatSeconds(12.3e-3), "12.30 ms");
  EXPECT_EQ(formatSeconds(2.5), "2.500 s");
}

TEST(Diag, ErrorAccumulation) {
  DiagEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(3, 7), "bad token '%s'", "x");
  D.warning(SourceLoc(4, 1), "suspicious");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diags().size(), 2u);
  EXPECT_NE(D.str().find("error: 3:7: bad token 'x'"), std::string::npos);
  EXPECT_NE(D.str().find("warning: 4:1: suspicious"), std::string::npos);
}

TEST(Diag, Clear) {
  DiagEngine D;
  D.error(SourceLoc(), "boom");
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.diags().empty());
}

TEST(Diag, InvalidLocOmitted) {
  DiagEngine D;
  D.error(SourceLoc(), "no location");
  EXPECT_EQ(D.diags()[0].str(), "error: no location");
}

TEST(SourceLoc, Str) {
  EXPECT_EQ(SourceLoc().str(), "<unknown>");
  EXPECT_EQ(SourceLoc(12, 3).str(), "12:3");
  EXPECT_TRUE(SourceLoc(1, 1).isValid());
  EXPECT_FALSE(SourceLoc().isValid());
}
