//===- tests/test_support.cpp - support library tests ---------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/Diag.h"
#include "support/Stats.h"
#include "support/StrUtil.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace gca;

TEST(StrUtil, FormatBasics) {
  EXPECT_EQ(strFormat("x=%d", 42), "x=42");
  EXPECT_EQ(strFormat("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(strFormat("%.2f", 1.5), "1.50");
}

TEST(StrUtil, FormatLongString) {
  std::string Long(1000, 'x');
  EXPECT_EQ(strFormat("%s", Long.c_str()).size(), 1000u);
}

TEST(StrUtil, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrUtil, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\na b\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StrUtil, FormatBytes) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(20 * 1024), "20.0 KB");
  EXPECT_EQ(formatBytes(3.5 * 1024 * 1024), "3.5 MB");
}

TEST(StrUtil, FormatSeconds) {
  EXPECT_EQ(formatSeconds(42e-6), "42.0 us");
  EXPECT_EQ(formatSeconds(12.3e-3), "12.30 ms");
  EXPECT_EQ(formatSeconds(2.5), "2.500 s");
}

TEST(Diag, ErrorAccumulation) {
  DiagEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(3, 7), "bad token '%s'", "x");
  D.warning(SourceLoc(4, 1), "suspicious");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diags().size(), 2u);
  EXPECT_NE(D.str().find("error: 3:7: bad token 'x'"), std::string::npos);
  EXPECT_NE(D.str().find("warning: 4:1: suspicious"), std::string::npos);
}

TEST(Diag, Clear) {
  DiagEngine D;
  D.error(SourceLoc(), "boom");
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.diags().empty());
}

TEST(Diag, InvalidLocOmitted) {
  DiagEngine D;
  D.error(SourceLoc(), "no location");
  EXPECT_EQ(D.diags()[0].str(), "error: no location");
}

TEST(SourceLoc, Str) {
  EXPECT_EQ(SourceLoc().str(), "<unknown>");
  EXPECT_EQ(SourceLoc(12, 3).str(), "12:3");
  EXPECT_TRUE(SourceLoc(1, 1).isValid());
  EXPECT_FALSE(SourceLoc().isValid());
}

//===----------------------------------------------------------------------===//
// StatsRegistry
//===----------------------------------------------------------------------===//

TEST(Stats, AddGetSnapshot) {
  StatsRegistry S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.get("x"), 0);
  S.add("x");
  S.add("x", 4);
  S.add("y", 2);
  EXPECT_EQ(S.get("x"), 5);
  StatsRegistry::Snapshot Snap = S.snapshot();
  EXPECT_EQ(Snap.size(), 2u);
  EXPECT_EQ(Snap.at("y"), 2);
}

TEST(Stats, DiffReportsOnlyChanges) {
  StatsRegistry S;
  S.add("a", 1);
  StatsRegistry::Snapshot Before = S.snapshot();
  S.add("a", 2);
  S.add("b", 7);
  StatsRegistry::Snapshot D = S.diff(Before);
  EXPECT_EQ(D.size(), 2u);
  EXPECT_EQ(D.at("a"), 2);
  EXPECT_EQ(D.at("b"), 7);
  EXPECT_TRUE(S.diff(S.snapshot()).empty());
}

TEST(Stats, MergeAndRender) {
  StatsRegistry A, B;
  A.add("n", 1);
  B.add("n", 2);
  B.add("m", 3);
  A.merge(B);
  EXPECT_EQ(A.get("n"), 3);
  EXPECT_EQ(A.get("m"), 3);
  EXPECT_EQ(A.json(), "{\"m\":3,\"n\":3}");
  EXPECT_NE(A.str().find("3 m\n"), std::string::npos);
}

TEST(Stats, ConcurrentAddsAreAtomic) {
  StatsRegistry S;
  ThreadPool Pool(4);
  for (int I = 0; I != 64; ++I)
    Pool.async([&S] { S.add("hits", 10); });
  Pool.wait();
  EXPECT_EQ(S.get("hits"), 640);
}

//===----------------------------------------------------------------------===//
// TimeTrace
//===----------------------------------------------------------------------===//

TEST(Timer, NestedRegionsAccumulate) {
  TimeTrace T;
  for (int I = 0; I != 2; ++I) {
    ScopedTimer Outer(T, "outer");
    ScopedTimer Inner(T, "inner");
  }
  const TimeTrace::Node *Outer = T.root().child("outer");
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Outer->Time.Invocations, 2);
  const TimeTrace::Node *Inner = Outer->child("inner");
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->Time.Invocations, 2);
  EXPECT_EQ(T.root().child("inner"), nullptr);
  EXPECT_GE(Outer->Time.WallSec, Inner->Time.WallSec);
}

TEST(Timer, ExitReturnsDelta) {
  TimeTrace T;
  T.enter("r");
  TimeRecord D = T.exit();
  EXPECT_EQ(D.Invocations, 1);
  EXPECT_GE(D.WallSec, 0.0);
  EXPECT_EQ(T.total().Invocations, 1);
}

TEST(Timer, ReportAndJsonShapes) {
  TimeTrace T;
  {
    ScopedTimer A(T, "alpha");
    ScopedTimer B(T, "beta");
  }
  std::string Report = T.report();
  EXPECT_NE(Report.find("alpha"), std::string::npos);
  EXPECT_NE(Report.find("  beta"), std::string::npos);
  EXPECT_NE(Report.find("total"), std::string::npos);
  std::string Json = T.json();
  EXPECT_EQ(Json.front(), '[');
  EXPECT_NE(Json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(Json.find("\"children\":[{\"name\":\"beta\""),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEveryTask) {
  std::atomic<int> Count{0};
  ThreadPool Pool(8);
  for (int I = 0; I != 100; ++I)
    Pool.async([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  std::atomic<int> Count{0};
  ThreadPool Pool(2);
  Pool.async([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1);
  Pool.async([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(3);
    for (int I = 0; I != 20; ++I)
      Pool.async([&Count] { ++Count; });
  }
  EXPECT_EQ(Count.load(), 20);
}

//===----------------------------------------------------------------------===//
// JsonValue (the wire-protocol reader)
//===----------------------------------------------------------------------===//

#include "support/Json.h"

namespace {

JsonValue parseOk(const std::string &Text) {
  JsonValue V;
  std::string Err;
  EXPECT_TRUE(JsonValue::parse(Text, V, Err)) << Text << ": " << Err;
  return V;
}

bool parseFails(const std::string &Text) {
  JsonValue V;
  std::string Err;
  return !JsonValue::parse(Text, V, Err);
}

} // namespace

TEST(JsonValueTest, Scalars) {
  EXPECT_TRUE(parseOk("null").isNull());
  EXPECT_TRUE(parseOk("true").boolValue());
  EXPECT_FALSE(parseOk("false").boolValue());
  EXPECT_EQ(parseOk("42").intValue(), 42);
  EXPECT_EQ(parseOk("-7").intValue(), -7);
  EXPECT_TRUE(parseOk("42").isIntegral());
  EXPECT_FALSE(parseOk("42.5").isIntegral());
  EXPECT_DOUBLE_EQ(parseOk("42.5").numberValue(), 42.5);
  EXPECT_DOUBLE_EQ(parseOk("1e3").numberValue(), 1000.0);
  EXPECT_EQ(parseOk("\"hi\"").stringValue(), "hi");
}

TEST(JsonValueTest, StringEscapes) {
  EXPECT_EQ(parseOk("\"a\\n\\t\\\"b\\\\\"").stringValue(), "a\n\t\"b\\");
  EXPECT_EQ(parseOk("\"\\u0041\"").stringValue(), "A");
  // Surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(parseOk("\"\\ud83d\\ude00\"").stringValue(), "\xf0\x9f\x98\x80");
  EXPECT_TRUE(parseFails("\"\\ud83d\"")); // Lone high surrogate.
  EXPECT_TRUE(parseFails("\"\\x41\""));   // Bad escape.
  EXPECT_TRUE(parseFails("\"unterminated"));
}

TEST(JsonValueTest, Containers) {
  JsonValue A = parseOk("[1,\"two\",[3],{\"k\":4}]");
  ASSERT_TRUE(A.isArray());
  ASSERT_EQ(A.array().size(), 4u);
  EXPECT_EQ(A.array()[0].intValue(), 1);
  EXPECT_EQ(A.array()[1].stringValue(), "two");
  EXPECT_EQ(A.array()[2].array()[0].intValue(), 3);
  const JsonValue *K = A.array()[3].get("k");
  ASSERT_NE(K, nullptr);
  EXPECT_EQ(K->intValue(), 4);

  JsonValue O = parseOk("{\"a\":1,\"b\":{\"c\":[true]}}");
  ASSERT_TRUE(O.isObject());
  EXPECT_EQ(O.members().size(), 2u);
  EXPECT_EQ(O.get("a")->intValue(), 1);
  EXPECT_TRUE(O.get("b")->get("c")->array()[0].boolValue());
  EXPECT_EQ(O.get("missing"), nullptr);
}

TEST(JsonValueTest, StrictnessAndLimits) {
  EXPECT_TRUE(parseFails(""));
  EXPECT_TRUE(parseFails("{"));
  EXPECT_TRUE(parseFails("[1,]"));
  EXPECT_TRUE(parseFails("{\"a\":}"));
  EXPECT_TRUE(parseFails("{\"a\" 1}"));
  EXPECT_TRUE(parseFails("1 2"));        // Trailing bytes.
  EXPECT_TRUE(parseFails("{} garbage")); // Trailing bytes.
  EXPECT_TRUE(parseFails("nul"));
  // Nesting is capped so adversarial frames cannot exhaust the stack.
  EXPECT_TRUE(parseFails(std::string(100, '[') + std::string(100, ']')));
  EXPECT_FALSE(parseFails(std::string(32, '[') + std::string(32, ']')));
  // Leading/trailing whitespace is fine.
  EXPECT_EQ(parseOk("  {\"a\": 1}\n").get("a")->intValue(), 1);
}

TEST(JsonValueTest, RoundTripsThroughWriter) {
  // What JsonWriter emits, JsonValue parses back — the two halves of the
  // wire protocol agree with each other.
  JsonWriter W;
  W.beginObject();
  W.key("name").value("we\"ird\\name\n");
  W.key("n").value(static_cast<int64_t>(-123));
  W.key("flag").value(true);
  W.key("xs").beginArray();
  W.value(static_cast<int64_t>(1));
  W.value("two");
  W.endArray();
  W.endObject();
  JsonValue V = parseOk(W.str());
  EXPECT_EQ(V.get("name")->stringValue(), "we\"ird\\name\n");
  EXPECT_EQ(V.get("n")->intValue(), -123);
  EXPECT_TRUE(V.get("flag")->boolValue());
  EXPECT_EQ(V.get("xs")->array()[1].stringValue(), "two");
}
