//===- tests/test_affine.cpp - AffineExpr tests ---------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "ir/AffineExpr.h"

#include <gtest/gtest.h>

using namespace gca;

TEST(AffineExpr, Constants) {
  AffineExpr C = AffineExpr::constant(7);
  EXPECT_TRUE(C.isConstant());
  EXPECT_EQ(C.constValue(), 7);
  EXPECT_EQ(C.numVars(), 0u);
}

TEST(AffineExpr, VarBasics) {
  AffineExpr I = AffineExpr::var(0);
  EXPECT_FALSE(I.isConstant());
  EXPECT_EQ(I.coeff(0), 1);
  EXPECT_EQ(I.coeff(1), 0);
  EXPECT_TRUE(I.usesVar(0));
  EXPECT_FALSE(I.usesVar(1));
}

TEST(AffineExpr, ZeroCoefficientVanishes) {
  AffineExpr E = AffineExpr::var(0) - AffineExpr::var(0);
  EXPECT_TRUE(E.isConstant());
  EXPECT_EQ(E.constValue(), 0);
  EXPECT_EQ((AffineExpr::var(2, 0)).numVars(), 0u);
}

TEST(AffineExpr, Arithmetic) {
  AffineExpr I = AffineExpr::var(0), J = AffineExpr::var(1);
  AffineExpr E = I * 2 + J - 3; // 2i + j - 3
  EXPECT_EQ(E.coeff(0), 2);
  EXPECT_EQ(E.coeff(1), 1);
  EXPECT_EQ(E.constPart(), -3);
  EXPECT_EQ(E.eval({5, 10}), 2 * 5 + 10 - 3);
}

TEST(AffineExpr, ScaleByZero) {
  AffineExpr E = (AffineExpr::var(0) + 5) * 0;
  EXPECT_TRUE(E.isConstant());
  EXPECT_EQ(E.constValue(), 0);
}

TEST(AffineExpr, ConstDifference) {
  AffineExpr A = AffineExpr::var(0) + 4;
  AffineExpr B = AffineExpr::var(0) - 1;
  int64_t Delta = 0;
  EXPECT_TRUE(A.constDifference(B, Delta));
  EXPECT_EQ(Delta, 5);

  AffineExpr C = AffineExpr::var(1) + 4;
  EXPECT_FALSE(A.constDifference(C, Delta));
}

TEST(AffineExpr, Substitute) {
  // (2i + j) with i := k + 1  ->  2k + j + 2.
  AffineExpr E = AffineExpr::var(0) * 2 + AffineExpr::var(1);
  AffineExpr R = E.substitute(0, AffineExpr::var(2) + 1);
  EXPECT_EQ(R.coeff(0), 0);
  EXPECT_EQ(R.coeff(1), 1);
  EXPECT_EQ(R.coeff(2), 2);
  EXPECT_EQ(R.constPart(), 2);
}

TEST(AffineExpr, SubstituteAbsentVarIsIdentity) {
  AffineExpr E = AffineExpr::var(0) + 3;
  EXPECT_TRUE(E == E.substitute(5, AffineExpr::constant(100)));
}

TEST(AffineExpr, Str) {
  std::vector<std::string> Names = {"i", "j"};
  EXPECT_EQ(AffineExpr::constant(4).str(&Names), "4");
  EXPECT_EQ((AffineExpr::var(0) - 1).str(&Names), "i-1");
  EXPECT_EQ((AffineExpr::var(0) * 2 + AffineExpr::var(1) + 3).str(&Names),
            "2*i+j+3");
  EXPECT_EQ((AffineExpr::var(1) * -1).str(&Names), "-j");
}

/// Property sweep: (A + B).eval == A.eval + B.eval, substitution respects
/// evaluation, constDifference is consistent.
class AffineProperty : public ::testing::TestWithParam<int> {};

TEST_P(AffineProperty, EvalHomomorphism) {
  int Seed = GetParam();
  // Small deterministic pseudo-random generator.
  auto Next = [State = static_cast<uint64_t>(Seed * 2654435761u + 1)]() mutable {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<int64_t>((State >> 33) % 21) - 10;
  };
  AffineExpr A = AffineExpr::constant(Next());
  AffineExpr B = AffineExpr::constant(Next());
  for (int V = 0; V != 4; ++V) {
    A = A + AffineExpr::var(V, Next());
    B = B + AffineExpr::var(V, Next());
  }
  std::vector<int64_t> Env = {Next(), Next(), Next(), Next()};
  EXPECT_EQ((A + B).eval(Env), A.eval(Env) + B.eval(Env));
  EXPECT_EQ((A - B).eval(Env), A.eval(Env) - B.eval(Env));
  EXPECT_EQ((A * 3).eval(Env), 3 * A.eval(Env));

  // Substitution property: eval(E[v := R]) == eval(E) when Env(v) == R(Env).
  AffineExpr R = AffineExpr::var(3) + 2;
  std::vector<int64_t> Env2 = Env;
  Env2[1] = R.eval(Env);
  std::vector<int64_t> EnvR = Env;
  EnvR[1] = Env2[1];
  EXPECT_EQ(A.substitute(1, R).eval(Env), A.eval(EnvR));

  // constDifference consistency.
  int64_t Delta;
  if (A.constDifference(B, Delta)) {
    EXPECT_EQ(A.eval(Env) - B.eval(Env), Delta);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AffineProperty, ::testing::Range(0, 25));
