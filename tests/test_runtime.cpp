//===- tests/test_runtime.cpp - runtime substrate tests -------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "driver/Compile.h"
#include "lower/Schedule.h"
#include "runtime/CostModel.h"
#include "runtime/Simulate.h"
#include "runtime/Verify.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace gca;

//===----------------------------------------------------------------------===//
// Machine profiles (the Figure 5 curves).
//===----------------------------------------------------------------------===//

TEST(Machine, BandwidthSaturates) {
  MachineProfile M = MachineProfile::sp2();
  EXPECT_LT(M.netBandwidth(64), 0.1 * M.PeakBandwidth);
  EXPECT_GT(M.netBandwidth(1 << 20), 0.95 * M.PeakBandwidth);
  // Monotone in message size.
  double Prev = 0;
  for (double S = 16; S <= (1 << 22); S *= 2) {
    double B = M.netBandwidth(S);
    EXPECT_GE(B, Prev);
    Prev = B;
  }
}

TEST(Machine, BcopyCacheKnee) {
  MachineProfile M = MachineProfile::sp2();
  EXPECT_EQ(M.bcopyBandwidth(1024), M.BcopyCachePeak);
  EXPECT_LT(M.bcopyBandwidth(64 * M.CacheBytes), 1.1 * M.BcopyDramPeak);
  // "bcopy bandwidth is barely twice message bandwidth beyond cache size".
  double Ratio = M.bcopyBandwidth(8e6) / M.netBandwidth(8e6);
  EXPECT_GT(Ratio, 1.5);
  EXPECT_LT(Ratio, 3.0);
}

TEST(Machine, Sp2BeatsNow) {
  MachineProfile S = MachineProfile::sp2(), N = MachineProfile::now();
  EXPECT_LT(S.SendOverhead + S.RecvOverhead,
            N.SendOverhead + N.RecvOverhead);
  EXPECT_GT(S.PeakBandwidth, N.PeakBandwidth);
  // Startup dominates small messages on both machines.
  EXPECT_GT(S.messageTime(8), 0.9 * (S.SendOverhead + S.RecvOverhead));
}

TEST(Machine, AmortizationBelowCache) {
  // "Most of the message startup amortization benefits occur at message
  // sizes much smaller than the cache limit."
  MachineProfile M = MachineProfile::sp2();
  double S = 8;
  while (M.netBandwidth(S) < 0.5 * M.PeakBandwidth)
    S *= 2;
  EXPECT_LT(S, M.CacheBytes / 4);
}

//===----------------------------------------------------------------------===//
// Processor grids.
//===----------------------------------------------------------------------===//

TEST(Grid, Factorization) {
  EXPECT_EQ(ProcGrid::factorize(25, 2), (std::vector<int>{5, 5}));
  EXPECT_EQ(ProcGrid::factorize(8, 2), (std::vector<int>{4, 2}));
  EXPECT_EQ(ProcGrid::factorize(8, 3), (std::vector<int>{2, 2, 2}));
  EXPECT_EQ(ProcGrid::factorize(7, 2), (std::vector<int>{7, 1}));
  EXPECT_EQ(ProcGrid::factorize(25, 1), (std::vector<int>{25}));
}

TEST(Grid, BlockOwnership) {
  Routine R("g");
  int A = R.addArray("a", {16, 16}, {DistKind::Block, DistKind::Block});
  ProcGrid G = ProcGrid::forArray(R.array(A), 4);
  EXPECT_EQ(G.numProcs(), 4);
  EXPECT_EQ(G.rank(), 2u);
  // 2x2 grid, 8x8 blocks.
  EXPECT_EQ(G.ownerOfElement({1, 1}), 0);
  EXPECT_EQ(G.ownerOfElement({1, 9}), 1);
  EXPECT_EQ(G.ownerOfElement({9, 1}), 2);
  EXPECT_EQ(G.ownerOfElement({16, 16}), 3);
  int64_t Lo, Hi;
  G.dim(0).ownedRange(1, Lo, Hi);
  EXPECT_EQ(Lo, 9);
  EXPECT_EQ(Hi, 16);
}

TEST(Grid, LinearizeRoundTrip) {
  Routine R("g");
  int A = R.addArray("a", {12, 12, 12},
                     {DistKind::Block, DistKind::Block, DistKind::Block});
  ProcGrid G = ProcGrid::forArray(R.array(A), 8);
  for (int P = 0; P != 8; ++P)
    EXPECT_EQ(G.linearize(G.coordsOf(P)), P);
}

TEST(Grid, CyclicOwnership) {
  Routine R("g");
  int A = R.addArray("a", {10}, {DistKind::Cyclic});
  ProcGrid G = ProcGrid::forArray(R.array(A), 3);
  EXPECT_EQ(G.ownerOfElement({1}), 0);
  EXPECT_EQ(G.ownerOfElement({2}), 1);
  EXPECT_EQ(G.ownerOfElement({4}), 0);
}

TEST(Grid, StarDimsExcluded) {
  Routine R("g");
  int A = R.addArray("g", {8, 16, 16},
                     {DistKind::Star, DistKind::Block, DistKind::Block});
  ProcGrid G = ProcGrid::forArray(R.array(A), 4);
  EXPECT_EQ(G.rank(), 2u);
  // Dim 0 never affects ownership.
  EXPECT_EQ(G.ownerOfElement({1, 1, 1}), G.ownerOfElement({8, 1, 1}));
}

//===----------------------------------------------------------------------===//
// Cost model.
//===----------------------------------------------------------------------===//

namespace {

RoutineResult analyzed(const std::string &Src, Strategy S, int64_t N) {
  CompileOptions Opts;
  Opts.Placement.Strat = S;
  Opts.Params["n"] = N;
  Opts.Params["nsteps"] = 2;
  static std::vector<std::unique_ptr<CompileResult>> Keep;
  Keep.push_back(std::make_unique<CompileResult>(compileSource(Src, Opts)));
  EXPECT_TRUE(Keep.back()->Ok) << Keep.back()->Errors;
  return std::move(Keep.back()->Routines[0]);
}

} // namespace

TEST(CostModel, ShiftScalesWithBoundary) {
  RoutineResult Small = analyzed(shallowWorkload().Source, Strategy::Global,
                                 24);
  RoutineResult Large = analyzed(shallowWorkload().Source, Strategy::Global,
                                 96);
  MachineProfile M = MachineProfile::sp2();
  std::vector<int64_t> Env(64, 0);
  double SmallT = 0, LargeT = 0;
  for (const CommGroup &G : Small.Plan.Groups)
    SmallT += groupCost(*Small.Ctx, G, M, 25, Env).Time;
  for (const CommGroup &G : Large.Plan.Groups)
    LargeT += groupCost(*Large.Ctx, G, M, 25, Env).Time;
  // Boundary data grows linearly in n; time grows but sublinearly vs
  // interior (startup amortization).
  EXPECT_GT(LargeT, SmallT);
  EXPECT_LT(LargeT, SmallT * 4);
}

TEST(CostModel, ReduceCostsLogStages) {
  RoutineResult RR = analyzed(gravityWorkload().Source, Strategy::Global, 12);
  MachineProfile M = MachineProfile::sp2();
  std::vector<int64_t> Env(64, 2);
  for (const CommGroup &G : RR.Plan.Groups) {
    if (G.Kind != CommKind::Reduce)
      continue;
    CommCost C25 = groupCost(*RR.Ctx, G, M, 25, Env);
    CommCost C4 = groupCost(*RR.Ctx, G, M, 4, Env);
    EXPECT_GT(C25.Time, C4.Time); // More stages on more processors.
  }
}

//===----------------------------------------------------------------------===//
// Simulator.
//===----------------------------------------------------------------------===//

TEST(Simulate, TimeGrowsWithProblemSize) {
  MachineProfile M = MachineProfile::sp2();
  double Prev = 0;
  for (int64_t N : {16, 32, 64}) {
    RoutineResult RR = analyzed(shallowWorkload().Source, Strategy::Global,
                                N);
    ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
    SimResult S = simulate(*RR.Ctx, RR.Plan, Prog, M, 25);
    EXPECT_GT(S.TotalTime, Prev);
    EXPECT_GT(S.CommTime, 0);
    EXPECT_GT(S.ComputeTime, 0);
    EXPECT_NEAR(S.TotalTime, S.CommTime + S.ComputeTime, 1e-12);
    Prev = S.TotalTime;
  }
}

TEST(Simulate, CommOpsMatchStaticCountsTimesTrips) {
  // trimesh main: 4 combined exchanges per timestep under comb.
  RoutineResult RR = analyzed(trimeshWorkload().Source, Strategy::Global, 12);
  ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
  SimResult S = simulate(*RR.Ctx, RR.Plan, Prog, MachineProfile::sp2(), 25);
  EXPECT_EQ(S.CommOps, 4.0 * 2 /* nsteps */);
}

TEST(Simulate, NowSlowerThanSp2OnComm) {
  RoutineResult RR = analyzed(shallowWorkload().Source, Strategy::Global, 48);
  ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
  SimResult S = simulate(*RR.Ctx, RR.Plan, Prog, MachineProfile::sp2(), 25);
  SimResult N = simulate(*RR.Ctx, RR.Plan, Prog, MachineProfile::now(), 25);
  EXPECT_GT(N.CommTime, S.CommTime);
}

//===----------------------------------------------------------------------===//
// Verifier: it must actually catch broken schedules.
//===----------------------------------------------------------------------===//

TEST(Verify, DetectsMissingCommunication) {
  RoutineResult RR = analyzed(figure4Workload().Source, Strategy::Global, 16);
  CommPlan Broken = RR.Plan;
  Broken.Groups.clear(); // Drop every communication.
  ExecProgram Prog = ExecProgram::build(*RR.Ctx, Broken);
  VerifyResult V = verifySchedule(*RR.Ctx, Broken, Prog, 4);
  EXPECT_FALSE(V.Ok);
  EXPECT_FALSE(V.Violations.empty());
}

TEST(Verify, DetectsStaleCommunication) {
  // Move the (correctly placed) exchange of figure4 to the routine entry:
  // it would then deliver data from before the definitions of a and b.
  RoutineResult RR = analyzed(figure4Workload().Source, Strategy::Global, 16);
  CommPlan Broken = RR.Plan;
  ASSERT_EQ(Broken.Groups.size(), 1u);
  Broken.Groups[0].Placement = Slot{RR.Ctx->G.entry(), 0};
  ExecProgram Prog = ExecProgram::build(*RR.Ctx, Broken);
  VerifyResult V = verifySchedule(*RR.Ctx, Broken, Prog, 4);
  EXPECT_FALSE(V.Ok);
}

TEST(Verify, CleanScheduleHasRemoteTraffic) {
  RoutineResult RR = analyzed(figure4Workload().Source, Strategy::Global, 16);
  ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
  VerifyResult V = verifySchedule(*RR.Ctx, RR.Plan, Prog, 4);
  EXPECT_TRUE(V.Ok) << V.str();
  EXPECT_GT(V.RemoteReads, 0); // The test would be vacuous otherwise.
}

//===----------------------------------------------------------------------===//
// Schedule lowering.
//===----------------------------------------------------------------------===//

TEST(Schedule, ListingShowsCommBetweenStatements) {
  RoutineResult RR = analyzed(figure4Workload().Source, Strategy::Global, 16);
  ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
  std::string L = Prog.listing(*RR.Ctx, RR.Plan);
  EXPECT_NE(L.find("COMM NNC"), std::string::npos);
  // The combined exchange carries both arrays.
  size_t Pos = L.find("COMM NNC");
  std::string Line = L.substr(Pos, L.find('\n', Pos) - Pos);
  EXPECT_NE(Line.find("a("), std::string::npos);
  EXPECT_NE(Line.find("b("), std::string::npos);
}

TEST(Schedule, EveryGroupFiresExactlyOnceInActions) {
  RoutineResult RR = analyzed(shallowWorkload().Source, Strategy::Global, 12);
  ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
  std::vector<int> Seen(RR.Plan.Groups.size(), 0);
  std::function<void(const std::vector<ExecAction> &)> Walk =
      [&](const std::vector<ExecAction> &Actions) {
        for (const ExecAction &A : Actions) {
          if (A.K == ExecAction::Kind::Comm)
            ++Seen[A.GroupId];
          Walk(A.Body);
          Walk(A.Else);
        }
      };
  Walk(Prog.actions());
  for (size_t I = 0; I != Seen.size(); ++I)
    EXPECT_EQ(Seen[I], 1) << "group " << I;
}

TEST(Schedule, ListingKeepsLoopSteps) {
  RoutineResult RR = analyzed(figure4Workload().Source, Strategy::Global, 16);
  ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
  std::string L = Prog.listing(*RR.Ctx, RR.Plan);
  // The first j loop of Figure 4 is strided (1:n:2).
  EXPECT_NE(L.find("do j = 1, 16, 2"), std::string::npos) << L;
}

TEST(CostModel, BcastAndGeneralScale) {
  // A constant-position read becomes a broadcast; a transpose becomes a
  // general pattern. Both must cost more on more processors (more stages /
  // more partners).
  const char *Src = R"(
program p
param n = 32
real a(n,n) distribute (block,block)
real b(n,n) distribute (block,block)
real s
begin
  a = 1
  s = a(3,4)
  do i = 1, n
    do j = 1, n
      b(i,j) = a(j,i)
    end do
  end do
end
)";
  RoutineResult RR = analyzed(Src, Strategy::Global, 32);
  bool SawBcast = false, SawGeneral = false;
  MachineProfile M = MachineProfile::sp2();
  std::vector<int64_t> Env(64, 1);
  for (const CommGroup &G : RR.Plan.Groups) {
    CommCost C4 = groupCost(*RR.Ctx, G, M, 4, Env);
    CommCost C25 = groupCost(*RR.Ctx, G, M, 25, Env);
    if (G.Kind == CommKind::Bcast) {
      SawBcast = true;
      EXPECT_GT(C25.Time, C4.Time);
    }
    if (G.Kind == CommKind::General) {
      SawGeneral = true;
      EXPECT_GT(C25.Messages, C4.Messages);
    }
  }
  EXPECT_TRUE(SawBcast);
  EXPECT_TRUE(SawGeneral);
}

TEST(Simulate, ZeroTripLoopCostsNothing) {
  const char *Src = R"(
program p
param n = 8
real a(n) distribute (block)
real b(n) distribute (block)
begin
  a = 1
  do t = 5, 4
    b(2:n) = a(1:n-1)
  end do
end
)";
  RoutineResult RR = analyzed(Src, Strategy::Global, 8);
  ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
  SimResult S = simulate(*RR.Ctx, RR.Plan, Prog, MachineProfile::sp2(), 4);
  // Only the initialization compute remains; no communication fires inside
  // the zero-trip loop (its placement is within the loop).
  EXPECT_GT(S.ComputeTime, 0);
}

TEST(Verify, HandlesTriangularLoops) {
  // Non-rectangular iteration spaces exercise the env-dependent paths of
  // both the simulator and verifier.
  const char *Src = R"(
program p
param n = 10
real a(n,n) distribute (block,block)
real b(n,n) distribute (block,block)
begin
  a = 1
  do i = 2, n
    do j = 2, i
      b(i,j) = a(i-1,j)
    end do
  end do
end
)";
  RoutineResult RR = analyzed(Src, Strategy::Global, 10);
  ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
  VerifyResult V = verifySchedule(*RR.Ctx, RR.Plan, Prog, 4);
  EXPECT_TRUE(V.Ok) << V.str();
  SimResult S = simulate(*RR.Ctx, RR.Plan, Prog, MachineProfile::sp2(), 4);
  EXPECT_GT(S.TotalTime, 0);
}
