//===- tests/ServeTestUtil.h - In-process compile-server harness -*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Test harness for driver/Serve.h: an in-process CompileServer whose
/// clients connect over socketpairs — no filesystem socket, no subprocess,
/// and full control of both stream ends, so tests can cut a connection
/// mid-frame, pipeline requests, or inject wire faults deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_TESTS_SERVETESTUTIL_H
#define GCA_TESTS_SERVETESTUTIL_H

#include "driver/Serve.h"
#include "support/Frame.h"
#include "support/Json.h"

#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace gca {
namespace servetest {

/// An in-process CompileServer serving socketpair connections.
class TestServer {
public:
  explicit TestServer(ServerConfig Config) : Server(std::move(Config)) {}

  ~TestServer() {
    Server.requestDrain();
    for (std::thread &T : Threads)
      T.join();
    Server.wait();
  }

  /// Opens a new client connection; returns the client-side fd (the caller
  /// closes it). The server end is pumped by a dedicated thread, exactly
  /// like a connection accepted off the listening socket; it closes its fd
  /// when the connection ends, so clients observe a real EOF.
  int connect() {
    int SV[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, SV) != 0)
      return -1;
    Threads.emplace_back([this, Fd = SV[0]] {
      Server.serveConnection(Fd, Fd);
      ::close(Fd);
    });
    return SV[1];
  }

  CompileServer &server() { return Server; }

private:
  CompileServer Server;
  std::vector<std::thread> Threads;
};

/// Reads one response frame and parses it. Null on any failure.
inline JsonValue recvJson(int Fd) {
  std::string Wire;
  if (readFrame(Fd, Wire) != FrameStatus::Ok)
    return JsonValue::makeNull();
  JsonValue Doc;
  std::string Err;
  if (!JsonValue::parse(Wire, Doc, Err))
    return JsonValue::makeNull();
  return Doc;
}

/// Sends \p Payload as a frame and reads one parsed response. Null on any
/// transport or parse failure.
inline JsonValue sendRecv(int Fd, const std::string &Payload) {
  if (writeFrame(Fd, Payload) != FrameStatus::Ok)
    return JsonValue::makeNull();
  return recvJson(Fd);
}

inline std::string status(const JsonValue &Resp) {
  const JsonValue *S = Resp.get("status");
  return S && S->isString() ? S->stringValue() : std::string();
}

inline std::string output(const JsonValue &Resp) {
  const JsonValue *O = Resp.get("output");
  return O && O->isString() ? O->stringValue() : std::string();
}

inline int64_t respId(const JsonValue &Resp) {
  const JsonValue *I = Resp.get("id");
  return I ? I->intValue(-1) : -1;
}

/// True when \p Fd becomes readable within \p TimeoutMs (fuzz harness: a
/// mutated frame may legitimately earn no response, and the client must not
/// block forever waiting for one).
inline bool readableWithin(int Fd, int TimeoutMs) {
  struct pollfd P = {Fd, POLLIN, 0};
  return ::poll(&P, 1, TimeoutMs) > 0 &&
         (P.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

} // namespace servetest
} // namespace gca

#endif // GCA_TESTS_SERVETESTUTIL_H
