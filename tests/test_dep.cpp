//===- tests/test_dep.cpp - dependence testing ----------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "dep/DepTest.h"
#include "frontend/Parser.h"
#include "support/StrUtil.h"

#include <gtest/gtest.h>

using namespace gca;

namespace {

/// Builds a routine from source, returning the (unique) def and use
/// statements tagged by writing to arrays named "w" (def) and reading in a
/// statement assigning "r" (use).
struct DepCase {
  std::unique_ptr<Program> P;
  std::unique_ptr<Cfg> G;
  std::unique_ptr<DepTester> T;
  const AssignStmt *Def = nullptr;
  const AssignStmt *Use = nullptr;

  const ArrayRef &useRef() const { return Use->rhs()[0].Ref; }
};

DepCase build(const std::string &Src) {
  DiagEngine D;
  DepCase C;
  C.P = parseProgram(Src, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  const Routine &R = *C.P->Routines[0];
  C.G = std::make_unique<Cfg>(Cfg::build(R));
  C.T = std::make_unique<DepTester>(*C.G);
  R.forEachStmt([&](Stmt *S) {
    if (auto *A = dyn_cast<AssignStmt>(S)) {
      if (!A->lhsIsScalar()) {
        const std::string &Name = R.array(A->lhs().ArrayId).Name;
        if (Name == "w")
          C.Def = A;
        if (Name == "r")
          C.Use = A;
      }
    }
  });
  EXPECT_NE(C.Def, nullptr);
  EXPECT_NE(C.Use, nullptr);
  return C;
}

} // namespace

TEST(Dep, LoopIndependentSameIteration) {
  DepCase C = build(R"(
program d
param n = 8
real w(n) distribute (block)
real r(n) distribute (block)
begin
  do i = 1, n
    w(i) = 0
    r(i) = w(i)
  end do
end
)");
  // w(i) -> w(i): all-equal direction, def textually first: dependence
  // pinned at the common level 1; not carried.
  EXPECT_TRUE(C.T->isArrayDep(C.Def, C.Use, C.useRef(), 1));
  EXPECT_EQ(C.T->depLevel(C.Def, C.Use, C.useRef()), 1);
}

TEST(Dep, CarriedByDistanceOne) {
  DepCase C = build(R"(
program d
param n = 8
real w(n) distribute (block)
real r(n) distribute (block)
begin
  do i = 2, n
    r(i) = w(i-1)
    w(i) = 0
  end do
end
)");
  // Write w(i) at iteration i, read w(i-1) at iteration i+1: carried at
  // level 1 even though the def is textually after the use.
  EXPECT_TRUE(C.T->isArrayDep(C.Def, C.Use, C.useRef(), 1));
}

TEST(Dep, AntiOrderOnlyIsNoFlowDep) {
  DepCase C = build(R"(
program d
param n = 8
real w(n) distribute (block)
real r(n) distribute (block)
begin
  do i = 2, n
    r(i) = w(i+1)
    w(i) = 0
  end do
end
)");
  // Read w(i+1) at iteration i; w(i+1) is written at iteration i+1, after
  // the read: direction '>' only — no flow dependence at any level.
  EXPECT_EQ(C.T->depLevel(C.Def, C.Use, C.useRef()), 0);
}

TEST(Dep, ZivMismatch) {
  DepCase C = build(R"(
program d
param n = 8
real w(n,n) distribute (block,*)
real r(n,n) distribute (block,*)
begin
  do i = 1, n
    w(i,3) = 0
    r(i,1) = w(i,4)
  end do
end
)");
  EXPECT_EQ(C.T->depLevel(C.Def, C.Use, C.useRef()), 0);
}

TEST(Dep, GcdParityScreen) {
  // The Figure 4 situation: writes to even columns never feed reads of odd
  // columns.
  DepCase C = build(R"(
program d
param n = 16
real w(n,n) distribute (block,*)
real r(n,n) distribute (block,*)
begin
  do s = 0, 7
    w(1,2*s+2) = 0
  end do
  do i = 2, n
    do j = 1, n, 2
      r(i,j) = w(i-1,j)
    end do
  end do
end
)");
  EXPECT_EQ(C.T->depLevel(C.Def, C.Use, C.useRef()), 0);
}

TEST(Dep, GcdParityMatches) {
  DepCase C = build(R"(
program d
param n = 16
real w(n,n) distribute (block,*)
real r(n,n) distribute (block,*)
begin
  do s = 0, 7
    w(1,2*s+1) = 0
  end do
  do i = 2, n
    do j = 1, n, 2
      r(i,j) = w(i-1,j)
    end do
  end do
end
)");
  // Odd columns written, odd columns read: dependence possible (no common
  // loops -> level-0 flow through direction constraints).
  std::vector<DirConstraint> Dirs;
  EXPECT_TRUE(C.T->directionConstraints(C.Def, C.Use, C.useRef(), Dirs));
  EXPECT_TRUE(Dirs.empty()); // CNL == 0.
}

TEST(Dep, DisjointConstantRanges) {
  DepCase C = build(R"(
program d
param n = 16
real w(n) distribute (block)
real r(n) distribute (block)
begin
  do i = 1, 4
    w(i) = 0
  end do
  do i = 9, 12
    r(i) = w(i)
  end do
end
)");
  std::vector<DirConstraint> Dirs;
  // Value ranges [1,4] and [9,12] are disjoint.
  EXPECT_FALSE(C.T->directionConstraints(C.Def, C.Use, C.useRef(), Dirs));
}

TEST(Dep, VectorizationLevel) {
  DepCase C = build(R"(
program d
param n = 8
real w(n,n) distribute (block,block)
real r(n,n) distribute (block,block)
begin
  do i = 2, n
    do j = 1, n
      w(i,j) = 0
    end do
    do j = 1, n
      r(i,j) = w(i-1,j)
    end do
  end do
end
)");
  // Carried at level 1 (the i loop): communication for the use can be
  // vectorized out of the j loop but not the i loop.
  EXPECT_TRUE(C.T->isArrayDep(C.Def, C.Use, C.useRef(), 1));
  EXPECT_FALSE(C.T->isArrayDep(C.Def, C.Use, C.useRef(), 2));
  EXPECT_EQ(C.T->depLevel(C.Def, C.Use, C.useRef()), 1);
}

TEST(Dep, LoopIndependentAtOuterLevel) {
  DepCase C = build(R"(
program d
param n = 8
real w(n,n) distribute (block,block)
real r(n,n) distribute (block,block)
begin
  do t = 1, 4
    do i = 1, n
      w(i,1) = 0
    end do
    do i = 1, n
      r(i,1) = w(i,1)
    end do
  end do
end
)");
  // Same t iteration, def nest before use nest: loop-independent at the
  // common level 1.
  EXPECT_TRUE(C.T->isArrayDep(C.Def, C.Use, C.useRef(), 1));
  EXPECT_EQ(C.T->commonNestingLevel(C.Def, C.Use), 1);
}

TEST(Dep, LevelBeyondCommonNestIsFalse) {
  DepCase C = build(R"(
program d
param n = 8
real w(n) distribute (block)
real r(n) distribute (block)
begin
  do i = 1, n
    w(i) = 0
  end do
  do i = 1, n
    r(i) = w(i)
  end do
end
)");
  // CNL == 0: IsArrayDep is false at every (1-based) level.
  EXPECT_FALSE(C.T->isArrayDep(C.Def, C.Use, C.useRef(), 1));
  EXPECT_EQ(C.T->depLevel(C.Def, C.Use, C.useRef()), 0);
}

/// Parameterized sweep: strong-SIV distance sign determines the carried
/// direction for every offset in [-3, 3].
class SivSweep : public ::testing::TestWithParam<int> {};

TEST_P(SivSweep, DistanceDirection) {
  int Off = GetParam();
  std::string Src = strFormat(R"(
program d
param n = 32
real w(n) distribute (block)
real r(n) distribute (block)
begin
  do i = 8, 24
    r(i) = w(i%+d)
    w(i) = 0
  end do
end
)",
                              Off);
  DepCase C = build(Src);
  // Flow dependence exists iff the write of some earlier-or-equal iteration
  // produces the read value: read w(i+Off) at iter i is written at iter
  // i+Off; flow requires i+Off < i  <=>  Off < 0 (carried), or Off == 0
  // with the def textually before the use (it is not).
  bool Expect = Off < 0;
  EXPECT_EQ(C.T->depLevel(C.Def, C.Use, C.useRef()) > 0, Expect);
}

INSTANTIATE_TEST_SUITE_P(Offsets, SivSweep, ::testing::Range(-3, 4));
