//===- tests/test_server.cpp - Compile-server protocol tests --------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
//
// Tier-1 coverage for the compile server (driver/Serve.h): framing
// round-trips, malformed-frame handling that degrades one connection and
// never the process, bitwise-identity of served responses against the
// one-shot pipeline, shared-cache accounting across clients, admission
// control, deadlines, graceful drain under load, I/O fault injection, and a
// bounded protocol-fuzz pass (the open-ended campaign lives in the
// `fuzz-proto` shard of gca_fuzz_tests).
//
//===----------------------------------------------------------------------===//

#include "ServeTestUtil.h"
#include "FuzzGen.h"
#include "driver/CachedPipeline.h"
#include "support/Io.h"
#include "workloads/Synth.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <set>
#include <thread>

#include <unistd.h>

using namespace gca;
using namespace gca::servetest;

namespace {

std::string smallSource() {
  SynthSpec Spec;
  Spec.Nests = 5;
  Spec.Seed = 2;
  return synthSource(Spec);
}

std::string slowSource() {
  SynthSpec Spec;
  Spec.Nests = 300;
  Spec.Seed = 4;
  return synthSource(Spec);
}

CompileRequest requestFor(std::string Source, int64_t Id) {
  CompileRequest Req;
  Req.Id = Id;
  Req.Name = "request-" + std::to_string(Id);
  Req.Source = std::move(Source);
  return Req;
}

/// Arms the global fault injector for one scope; always disarms on exit so
/// later tests see clean I/O.
struct FaultScope {
  explicit FaultScope(const std::string &Spec) {
    EXPECT_TRUE(FaultInjector::instance().configure(Spec));
  }
  ~FaultScope() { FaultInjector::instance().reset(); }
};

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

TEST(FrameTest, RoundTripOverPipe) {
  int P[2];
  ASSERT_EQ(::pipe(P), 0);
  for (const std::string &Payload :
       {std::string(), std::string("x"), std::string(100000, 'q')}) {
    // Large payloads exceed the pipe's buffer, so the writer needs its own
    // thread for the reader to drain it concurrently.
    std::thread Writer(
        [&] { ASSERT_EQ(writeFrame(P[1], Payload), FrameStatus::Ok); });
    std::string Got;
    ASSERT_EQ(readFrame(P[0], Got), FrameStatus::Ok);
    Writer.join();
    EXPECT_EQ(Got, Payload);
  }
  ::close(P[1]);
  std::string Got;
  EXPECT_EQ(readFrame(P[0], Got), FrameStatus::Eof); // Clean boundary.
  ::close(P[0]);
}

TEST(FrameTest, GarbageHeaderDetected) {
  int P[2];
  ASSERT_EQ(::pipe(P), 0);
  ASSERT_EQ(ioWriteFull(P[1], "XXXXYYYY", 8), IoStatus::Ok);
  std::string Got;
  EXPECT_EQ(readFrame(P[0], Got), FrameStatus::Garbage);
  ::close(P[0]);
  ::close(P[1]);
}

TEST(FrameTest, TruncationDistinguishedFromEof) {
  // Mid-header cut.
  int P[2];
  ASSERT_EQ(::pipe(P), 0);
  ASSERT_EQ(ioWriteFull(P[1], "GCA", 3), IoStatus::Ok);
  ::close(P[1]);
  std::string Got;
  EXPECT_EQ(readFrame(P[0], Got), FrameStatus::Truncated);
  ::close(P[0]);

  // Mid-payload cut: a complete header promising more than is delivered.
  ASSERT_EQ(::pipe(P), 0);
  std::string Frame = encodeFrame("0123456789");
  Frame.resize(Frame.size() - 4);
  ASSERT_EQ(ioWriteFull(P[1], Frame.data(), Frame.size()), IoStatus::Ok);
  ::close(P[1]);
  EXPECT_EQ(readFrame(P[0], Got), FrameStatus::Truncated);
  ::close(P[0]);
}

TEST(FrameTest, OversizedDeclaredLengthRejected) {
  int P[2];
  ASSERT_EQ(::pipe(P), 0);
  std::string Frame = encodeFrame(std::string(4096, 'z'));
  ASSERT_EQ(ioWriteFull(P[1], Frame.data(), Frame.size()), IoStatus::Ok);
  std::string Got;
  uint32_t Declared = 0;
  EXPECT_EQ(readFrame(P[0], Got, /*MaxPayload=*/1024, &Declared),
            FrameStatus::Oversized);
  EXPECT_EQ(Declared, 4096u);
  ::close(P[0]);
  ::close(P[1]);
}

//===----------------------------------------------------------------------===//
// Request encoding
//===----------------------------------------------------------------------===//

TEST(ServeProtocolTest, BuildParseRoundTrip) {
  CompileRequest Req = requestFor("begin r\nend\n", 42);
  Req.Stats = true;
  Req.PrintPlans = false;
  Req.Opts.Placement.Strat = Strategy::Optimal;
  Req.Opts.FuseLoops = true;
  Req.Opts.Verify = VerifyMode::Each;
  Req.Opts.Placement.Jobs = 3;
  Req.Opts.Params["n"] = 128;
  std::string Wire = buildCompileRequestJson(Req);

  JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(JsonValue::parse(Wire, Doc, Err)) << Err;
  CompileRequest Back;
  ASSERT_TRUE(parseCompileRequest(Doc, Back, Err)) << Err;
  EXPECT_EQ(buildCompileRequestJson(Back), Wire);
  EXPECT_EQ(Back.Opts.Placement.Strat, Strategy::Optimal);
  EXPECT_EQ(Back.Opts.Verify, VerifyMode::Each);
  EXPECT_EQ(Back.Opts.Params["n"], 128);
}

TEST(ServeProtocolTest, StrictParsingRejectsUnknownAndMistyped) {
  auto Fails = [](const std::string &Json) {
    JsonValue Doc;
    std::string Err;
    EXPECT_TRUE(JsonValue::parse(Json, Doc, Err)) << Err;
    CompileRequest Req;
    return !parseCompileRequest(Doc, Req, Err);
  };
  EXPECT_TRUE(Fails("{\"source\":\"s\",\"bogus\":1}"));
  EXPECT_TRUE(Fails("{\"name\":\"no-source\"}"));
  EXPECT_TRUE(Fails("{\"source\":42}"));
  EXPECT_TRUE(Fails("{\"source\":\"s\",\"id\":\"seven\"}"));
  EXPECT_TRUE(Fails("{\"source\":\"s\",\"options\":{\"bogus\":true}}"));
  EXPECT_TRUE(Fails("{\"source\":\"s\",\"options\":{\"strategy\":\"nope\"}}"));
  EXPECT_TRUE(Fails(
      "{\"source\":\"s\",\"options\":{\"placement_jobs\":0}}"));
  EXPECT_TRUE(Fails(
      "{\"source\":\"s\",\"options\":{\"params\":{\"n\":\"many\"}}}"));
}

//===----------------------------------------------------------------------===//
// Serving
//===----------------------------------------------------------------------===//

TEST(ServerTest, PingMetricsAndUnknownCmd) {
  TestServer TS{ServerConfig{}};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  JsonValue Pong = sendRecv(Fd, "{\"cmd\":\"ping\"}");
  EXPECT_EQ(status(Pong), "ok");
  const JsonValue *P = Pong.get("pong");
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(P->boolValue());

  JsonValue Metrics = sendRecv(Fd, "{\"cmd\":\"metrics\"}");
  EXPECT_EQ(status(Metrics), "ok");
  const JsonValue *M = Metrics.get("metrics");
  ASSERT_NE(M, nullptr);
  ASSERT_TRUE(M->isObject());

  JsonValue Unknown = sendRecv(Fd, "{\"cmd\":\"selfdestruct\"}");
  EXPECT_EQ(status(Unknown), "bad-request");
  // The connection survives a bad request: framing is still synchronized.
  EXPECT_EQ(status(sendRecv(Fd, "{\"cmd\":\"ping\"}")), "ok");
  ::close(Fd);
}

TEST(ServerTest, ResponseBitwiseIdenticalToOneShot) {
  CompileRequest Req = requestFor(smallSource(), 1);
  std::string Expected = runCompileRequest(Req, nullptr).Output;
  ASSERT_FALSE(Expected.empty());

  TestServer TS{ServerConfig{}};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  JsonValue Resp = sendRecv(Fd, buildCompileRequestJson(Req));
  EXPECT_EQ(status(Resp), "ok");
  EXPECT_EQ(respId(Resp), 1);
  EXPECT_EQ(output(Resp), Expected);
  ::close(Fd);
}

TEST(ServerTest, ConcurrentClientsBitwiseIdentical) {
  const int NumClients = 4, PerClient = 4;
  std::vector<std::string> Sources = {smallSource(), slowSource()};
  std::vector<std::string> Expected;
  for (size_t I = 0; I < Sources.size(); ++I) {
    CompileRequest Req = requestFor(Sources[I], 0);
    Req.Name = "mixed-" + std::to_string(I);
    Expected.push_back(runCompileRequest(Req, nullptr).Output);
  }

  ResultCache Cache;
  ServerConfig Config;
  Config.Cache = &Cache;
  TestServer TS{Config};
  std::atomic<int> Mismatches{0}, Failures{0};
  std::vector<std::thread> Clients;
  for (int C = 0; C < NumClients; ++C)
    Clients.emplace_back([&, C] {
      int Fd = TS.connect();
      if (Fd < 0) {
        Failures++;
        return;
      }
      for (int I = 0; I < PerClient; ++I) {
        size_t Pick = static_cast<size_t>(C + I) % Sources.size();
        CompileRequest Req = requestFor(Sources[Pick], C * 100 + I);
        // The id is not part of the rendered output: use a fixed name so
        // every client's request hits the same cache key and bytes.
        Req.Name = "mixed-" + std::to_string(Pick);
        JsonValue Resp = sendRecv(Fd, buildCompileRequestJson(Req));
        if (status(Resp) != "ok" || respId(Resp) != C * 100 + I)
          Failures++;
        if (output(Resp) != Expected[Pick])
          Mismatches++;
      }
      ::close(Fd);
    });
  for (std::thread &T : Clients)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(Mismatches.load(), 0);
  EXPECT_EQ(TS.server().counter("server.ok"),
            static_cast<int64_t>(NumClients * PerClient));
}

TEST(ServerTest, SharedCacheHitsAcrossClients) {
  ResultCache Cache;
  ServerConfig Config;
  Config.Cache = &Cache;
  TestServer TS{Config};

  CompileRequest Req = requestFor(smallSource(), 1);
  int A = TS.connect();
  ASSERT_GE(A, 0);
  JsonValue RespA = sendRecv(A, buildCompileRequestJson(Req));
  ASSERT_EQ(status(RespA), "ok");
  const JsonValue *HitA = RespA.get("cache_hit");
  ASSERT_NE(HitA, nullptr);
  EXPECT_FALSE(HitA->boolValue());

  // A different client, the same source: must replay from the shared cache.
  int B = TS.connect();
  ASSERT_GE(B, 0);
  Req.Id = 2;
  JsonValue RespB = sendRecv(B, buildCompileRequestJson(Req));
  ASSERT_EQ(status(RespB), "ok");
  const JsonValue *HitB = RespB.get("cache_hit");
  ASSERT_NE(HitB, nullptr);
  EXPECT_TRUE(HitB->boolValue());
  EXPECT_EQ(output(RespA), output(RespB));
  EXPECT_EQ(TS.server().counter("server.cache-hits"), 1);
  EXPECT_GE(TS.server().counter("cache.hits"), 1);
  ::close(A);
  ::close(B);
}

TEST(ServerTest, BadFrameKillsOnlyItsConnection) {
  TestServer TS{ServerConfig{}};
  int A = TS.connect();
  int B = TS.connect();
  ASSERT_GE(A, 0);
  ASSERT_GE(B, 0);

  // Garbage on A: one bad-frame response, then the connection closes.
  ASSERT_EQ(ioWriteFull(A, "NOPE\x01\x02\x03\x04", 8), IoStatus::Ok);
  JsonValue Resp = recvJson(A);
  EXPECT_EQ(status(Resp), "bad-frame");
  std::string Rest;
  EXPECT_EQ(readFrame(A, Rest), FrameStatus::Eof);

  // B is a separate failure domain: still fully served.
  CompileRequest Req = requestFor(smallSource(), 9);
  EXPECT_EQ(status(sendRecv(B, buildCompileRequestJson(Req))), "ok");
  EXPECT_EQ(TS.server().counter("server.bad-frames"), 1);
  ::close(A);
  ::close(B);
}

TEST(ServerTest, OversizedFrameRejectedWithoutReading) {
  ServerConfig Config;
  Config.MaxFramePayload = 1024;
  TestServer TS{Config};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  std::string Big = encodeFrame(std::string(4096, 'z'));
  ASSERT_EQ(ioWriteFull(Fd, Big.data(), Big.size()), IoStatus::Ok);
  JsonValue Resp = recvJson(Fd);
  EXPECT_EQ(status(Resp), "bad-frame");
  // The server closes without draining the oversized payload, so the kernel
  // may surface the discard as a reset rather than a clean EOF.
  std::string Rest;
  FrameStatus Fin = readFrame(Fd, Rest);
  EXPECT_TRUE(Fin == FrameStatus::Eof || Fin == FrameStatus::IoError);
  ::close(Fd);

  // The daemon survives; a fresh connection is served.
  int Fd2 = TS.connect();
  ASSERT_GE(Fd2, 0);
  EXPECT_EQ(status(sendRecv(Fd2, "{\"cmd\":\"ping\"}")), "ok");
  ::close(Fd2);
}

TEST(ServerTest, MidFrameDisconnectDegradesOnlyThatConnection) {
  TestServer TS{ServerConfig{}};
  int A = TS.connect();
  ASSERT_GE(A, 0);
  // Half a header, then gone: the server sees Truncated and reclaims the
  // connection without answering (there is nothing to answer).
  ASSERT_EQ(ioWriteFull(A, "GCAF\x40", 5), IoStatus::Ok);
  ::close(A);

  int B = TS.connect();
  ASSERT_GE(B, 0);
  CompileRequest Req = requestFor(smallSource(), 3);
  EXPECT_EQ(status(sendRecv(B, buildCompileRequestJson(Req))), "ok");
  ::close(B);
}

TEST(ServerTest, OverloadedWhenAdmissionQueueFull) {
  ServerConfig Config;
  Config.Jobs = 1;
  Config.QueueLimit = 0; // Zero admitted-but-unstarted slots: always shed.
  TestServer TS{Config};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  CompileRequest Req = requestFor(smallSource(), 5);
  JsonValue Resp = sendRecv(Fd, buildCompileRequestJson(Req));
  EXPECT_EQ(status(Resp), "overloaded");
  EXPECT_EQ(respId(Resp), 5);
  EXPECT_GE(TS.server().counter("server.overloaded"), 1);
  // Shedding is not fatal: control traffic still flows on the same
  // connection.
  EXPECT_EQ(status(sendRecv(Fd, "{\"cmd\":\"ping\"}")), "ok");
  ::close(Fd);
}

TEST(ServerTest, DeadlinePassedBeforeDispatchTimesOut) {
  ServerConfig Config;
  Config.Jobs = 1;
  Config.RequestTimeoutSec = 1e-6;
  TestServer TS{Config};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  // Pipeline two requests: with one worker, the second one's queue wait is
  // at least the first one's compile time, far past the 1 µs deadline.
  ASSERT_EQ(writeFrame(Fd, buildCompileRequestJson(
                               requestFor(slowSource(), 1))),
            FrameStatus::Ok);
  ASSERT_EQ(writeFrame(Fd, buildCompileRequestJson(
                               requestFor(smallSource(), 2))),
            FrameStatus::Ok);
  bool SawTimeoutForSecond = false;
  for (int I = 0; I < 2; ++I) {
    JsonValue Resp = recvJson(Fd);
    if (respId(Resp) == 2) {
      EXPECT_EQ(status(Resp), "timeout");
      SawTimeoutForSecond = status(Resp) == "timeout";
    } else {
      EXPECT_EQ(respId(Resp), 1);
      EXPECT_TRUE(status(Resp) == "ok" || status(Resp) == "timeout");
    }
  }
  EXPECT_TRUE(SawTimeoutForSecond);
  EXPECT_GE(TS.server().counter("server.timeouts"), 1);
  ::close(Fd);
}

TEST(ServerTest, DrainUnderLoadDropsNoInFlightRequest) {
  ServerConfig Config;
  Config.Jobs = 1;
  TestServer TS{Config};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  const int N = 4;
  for (int I = 0; I < N; ++I)
    ASSERT_EQ(writeFrame(Fd, buildCompileRequestJson(
                                 requestFor(slowSource(), I))),
              FrameStatus::Ok);
  // Wait until every request has been read and admitted, so the drain
  // deterministically lands while compiles are queued and executing.
  for (int Spin = 0; Spin < 10000; ++Spin) {
    if (TS.server().counter("server.requests") == N)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(TS.server().counter("server.requests"), N);
  TS.server().requestDrain();
  // A request arriving after the drain is rejected explicitly, not dropped
  // (in-flight work keeps the connection open long enough to read it).
  ASSERT_EQ(writeFrame(Fd, buildCompileRequestJson(
                               requestFor(smallSource(), N))),
            FrameStatus::Ok);
  int Answered = 0, Ok = 0, Draining = 0;
  bool LateRejected = false;
  for (int I = 0; I < N + 1; ++I) {
    JsonValue Resp = recvJson(Fd);
    if (Resp.isNull())
      break;
    ++Answered;
    if (status(Resp) == "ok")
      ++Ok;
    else if (status(Resp) == "draining")
      ++Draining;
    if (respId(Resp) == N)
      LateRejected = status(Resp) == "draining";
  }
  // Every admitted request was answered; nothing vanished.
  EXPECT_EQ(Answered, N + 1);
  EXPECT_EQ(Ok + Draining, N + 1);
  EXPECT_GE(Ok, 1); // At least the one already executing completes.
  EXPECT_TRUE(LateRejected);
  std::string Rest;
  EXPECT_EQ(readFrame(Fd, Rest), FrameStatus::Eof); // Then a clean close.
  ::close(Fd);
}

//===----------------------------------------------------------------------===//
// Fault injection
//===----------------------------------------------------------------------===//

TEST(ServerTest, ServesCorrectlyUnderInjectedIoFaults) {
  CompileRequest Req = requestFor(smallSource(), 1);
  std::string Expected = runCompileRequest(Req, nullptr).Output;

  FaultScope Faults("short-read=40,short-write=40,eagain=25,eintr=25,seed=11");
  TestServer TS{ServerConfig{}};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  for (int I = 0; I < 5; ++I) {
    Req.Id = I;
    JsonValue Resp = sendRecv(Fd, buildCompileRequestJson(Req));
    ASSERT_EQ(status(Resp), "ok") << "request " << I;
    EXPECT_EQ(output(Resp), Expected) << "request " << I;
  }
  ::close(Fd);
  // The retry loops actually ran: faults were injected, none escaped.
  EXPECT_GT(FaultInjector::instance().injected(), 0);
}

TEST(ServerTest, FaultedConnectionIsItsOwnFailureDomain) {
  FaultScope Faults("short-read=60,eagain=30,seed=3");
  TestServer TS{ServerConfig{}};
  int A = TS.connect();
  int B = TS.connect();
  ASSERT_GE(A, 0);
  ASSERT_GE(B, 0);
  // A dies mid-frame under fault pressure; B must still be served and the
  // process-wide behavior (accepting, compiling) must be unaffected.
  ASSERT_EQ(ioWriteFull(A, "GCAF\xff\x00\x00", 7), IoStatus::Ok);
  ::close(A);
  CompileRequest Req = requestFor(smallSource(), 8);
  JsonValue Resp = sendRecv(B, buildCompileRequestJson(Req));
  EXPECT_EQ(status(Resp), "ok");
  ::close(B);
}

TEST(FaultInjectorTest, SpecParsing) {
  FaultInjector &FI = FaultInjector::instance();
  EXPECT_TRUE(FI.configure("short-read=10,short-write=20,eagain=5,seed=42"));
  EXPECT_TRUE(FI.armed());
  FI.reset();
  EXPECT_FALSE(FI.armed());
  EXPECT_FALSE(FI.configure("bogus-knob=10"));
  EXPECT_FALSE(FI.configure("short-read=101"));
  EXPECT_FALSE(FI.configure("short-read"));
  EXPECT_FALSE(FI.armed());
  FI.reset();
}

//===----------------------------------------------------------------------===//
// Admin plane
//===----------------------------------------------------------------------===//

HttpRequest adminGet(const std::string &Target,
                     const std::string &Method = "GET") {
  HttpRequest R;
  R.Method = Method;
  R.Target = Target;
  R.Version = "HTTP/1.1";
  return R;
}

JsonValue parsedJson(const std::string &Text) {
  JsonValue Doc;
  std::string Err;
  EXPECT_TRUE(JsonValue::parse(Text, Doc, Err)) << Err << "\n" << Text;
  return Doc;
}

TEST(AdminPlaneTest, RoutingAndStatusCodes) {
  TestServer TS{ServerConfig{}};
  CompileServer &S = TS.server();
  EXPECT_EQ(S.handleAdmin(adminGet("/healthz")).Status, 200);
  EXPECT_EQ(S.handleAdmin(adminGet("/healthz")).Body, "ok\n");
  EXPECT_EQ(S.handleAdmin(adminGet("/readyz")).Status, 200);
  EXPECT_EQ(S.handleAdmin(adminGet("/metrics")).Status, 200);
  EXPECT_EQ(S.handleAdmin(adminGet("/metrics")).ContentType,
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_EQ(S.handleAdmin(adminGet("/statusz")).ContentType,
            "application/json");
  EXPECT_EQ(S.handleAdmin(adminGet("/nope")).Status, 404);
  // Query strings route like the bare path (Prometheus appends them).
  EXPECT_EQ(S.handleAdmin(adminGet("/metrics?x=1")).Status, 200);

  HttpResponse Post = S.handleAdmin(adminGet("/metrics", "POST"));
  EXPECT_EQ(Post.Status, 405);
  bool AllowGet = false;
  for (const auto &[K, V] : Post.ExtraHeaders)
    AllowGet |= K == "Allow" && V == "GET";
  EXPECT_TRUE(AllowGet);
}

TEST(AdminPlaneTest, MetricsBodyMatchesSnapshotExposition) {
  TestServer TS{ServerConfig{}};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  EXPECT_EQ(status(sendRecv(Fd, buildCompileRequestJson(
                                    requestFor(smallSource(), 1)))),
            "ok");
  ::close(Fd);
  // The admin endpoint renders through the same MetricsSnapshot as the
  // socket `metrics` command; a quiescent server yields identical bytes
  // modulo the uptime gauge, which legitimately ticks between renders.
  auto Stable = [](const std::string &Text) {
    std::string Out;
    size_t Pos = 0;
    while (Pos < Text.size()) {
      size_t Nl = Text.find('\n', Pos);
      std::string Line = Text.substr(Pos, Nl - Pos);
      Pos = (Nl == std::string::npos) ? Text.size() : Nl + 1;
      if (Line.find("uptime") == std::string::npos)
        Out += Line + "\n";
    }
    return Out;
  };
  std::string FromAdmin = TS.server().handleAdmin(adminGet("/metrics")).Body;
  std::string FromSnapshot = TS.server().metricsSnapshot().prometheus();
  EXPECT_EQ(Stable(FromAdmin), Stable(FromSnapshot));
  EXPECT_NE(FromAdmin.find("# TYPE gca_server_requests counter"),
            std::string::npos);
}

TEST(AdminPlaneTest, TraceIdEchoedInResponse) {
  TestServer TS{ServerConfig{}};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  CompileRequest Req = requestFor(smallSource(), 7);
  Req.TraceId = "trace-abc-123";
  JsonValue Resp = sendRecv(Fd, buildCompileRequestJson(Req));
  EXPECT_EQ(status(Resp), "ok");
  const JsonValue *Echo = Resp.get("trace_id");
  ASSERT_NE(Echo, nullptr);
  EXPECT_EQ(Echo->stringValue(), "trace-abc-123");
  // No trace_id sent, none echoed: trace-unaware clients see the exact
  // pre-admin-plane response shape.
  JsonValue Plain = sendRecv(Fd, buildCompileRequestJson(
                                     requestFor(smallSource(), 8)));
  EXPECT_EQ(Plain.get("trace_id"), nullptr);
  ::close(Fd);
}

TEST(AdminPlaneTest, StatuszShowsInflightAndClientAccounting) {
  ServerConfig Config;
  Config.Jobs = 1;
  TestServer TS{Config};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  // Two slow compiles on one worker: once both are admitted, at least one
  // is still in flight whenever the other executes, so the table below is
  // observed deterministically.
  for (int I = 0; I < 2; ++I) {
    CompileRequest Req = requestFor(slowSource(), I);
    Req.Client = "alice";
    Req.TraceId = "t-" + std::to_string(I);
    ASSERT_EQ(writeFrame(Fd, buildCompileRequestJson(Req)), FrameStatus::Ok);
  }
  bool SawInflight = false, SawExecuting = false;
  for (int Spin = 0; Spin < 10000 && !(SawInflight && SawExecuting); ++Spin) {
    JsonValue Doc = parsedJson(TS.server().statuszJson());
    const JsonValue *Inflight = Doc.get("inflight");
    ASSERT_NE(Inflight, nullptr);
    ASSERT_TRUE(Inflight->isArray());
    for (const JsonValue &Row : Inflight->array()) {
      SawInflight = true;
      const JsonValue *Client = Row.get("client");
      ASSERT_NE(Client, nullptr);
      EXPECT_EQ(Client->stringValue(), "alice");
      EXPECT_NE(Row.get("rid"), nullptr);
      EXPECT_GE(Row.get("age_ms")->numberValue(-1), 0.0);
      SawExecuting |= Row.get("executing")->boolValue();
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_TRUE(SawInflight);
  EXPECT_TRUE(SawExecuting);
  for (int I = 0; I < 2; ++I)
    EXPECT_EQ(status(recvJson(Fd)), "ok");
  // Completed requests leave the in-flight table and land in the
  // per-client accounting, keyed by the request's client field.
  JsonValue Doc = parsedJson(TS.server().statuszJson());
  EXPECT_TRUE(Doc.get("inflight")->array().empty());
  const JsonValue *Alice = Doc.get("clients")->get("alice");
  ASSERT_NE(Alice, nullptr);
  EXPECT_EQ(Alice->get("requests")->intValue(-1), 2);
  EXPECT_EQ(Alice->get("ok")->intValue(-1), 2);
  EXPECT_GT(Alice->get("bytes_in")->intValue(-1), 0);
  EXPECT_GT(Alice->get("bytes_out")->intValue(-1), 0);
  EXPECT_EQ(Doc.get("version")->stringValue(), kGcaCacheVersion);
  ::close(Fd);
}

TEST(AdminPlaneTest, ReadyzTurns503OnDrain) {
  TestServer TS{ServerConfig{}};
  EXPECT_EQ(TS.server().handleAdmin(adminGet("/readyz")).Status, 200);
  TS.server().requestDrain();
  HttpResponse R = TS.server().handleAdmin(adminGet("/readyz"));
  EXPECT_EQ(R.Status, 503);
  EXPECT_EQ(R.Body, "draining\n");
  // Liveness is not readiness: a draining server is still alive.
  EXPECT_EQ(TS.server().handleAdmin(adminGet("/healthz")).Status, 200);
}

TEST(AdminPlaneTest, TracezRecordsCompletedAndSlowRequests) {
  ServerConfig Config;
  Config.SlowMs = 1e-6; // Everything is slow: the pinned table must fill.
  TestServer TS{Config};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  for (int I = 0; I < 3; ++I) {
    CompileRequest Req = requestFor(smallSource(), I);
    Req.TraceId = "tz-" + std::to_string(I);
    EXPECT_EQ(status(sendRecv(Fd, buildCompileRequestJson(Req))), "ok");
  }
  ::close(Fd);
  JsonValue Doc = parsedJson(TS.server().tracezJson());
  const JsonValue *Recent = Doc.get("recent");
  ASSERT_NE(Recent, nullptr);
  ASSERT_EQ(Recent->array().size(), 3u);
  std::set<int64_t> Rids;
  for (const JsonValue &Rec : Recent->array()) {
    Rids.insert(Rec.get("rid")->intValue(-1));
    EXPECT_EQ(Rec.get("status")->stringValue(), "ok");
    EXPECT_TRUE(Rec.get("slow")->boolValue());
    EXPECT_GT(Rec.get("total_ms")->numberValue(-1), 0.0);
    const JsonValue *Spans = Rec.get("spans");
    ASSERT_NE(Spans, nullptr);
    EXPECT_GE(Spans->array().size(), 3u); // queue-wait, compile, render.
  }
  EXPECT_EQ(Rids.size(), 3u) << "rids must be unique";
  EXPECT_GE(Doc.get("slowest")->array().size(), 3u);
  EXPECT_GE(TS.server().counter("server.slow-requests"), 3);
}

TEST(AdminPlaneTest, RequestLogOneWellFormedLinePerRequest) {
  FILE *Log = std::tmpfile();
  ASSERT_NE(Log, nullptr);
  ServerConfig Config;
  Config.LogStream = Log;
  TestServer TS{Config};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  CompileRequest Req = requestFor(smallSource(), 42);
  Req.Client = "logger";
  Req.TraceId = "log-1";
  EXPECT_EQ(status(sendRecv(Fd, buildCompileRequestJson(Req))), "ok");
  ::close(Fd);
  // The log line is flushed before the response is written, so it is
  // already on disk once the client has its answer.
  std::rewind(Log);
  char Buf[4096];
  ASSERT_NE(std::fgets(Buf, sizeof(Buf), Log), nullptr);
  JsonValue Line = parsedJson(Buf);
  EXPECT_EQ(Line.get("id")->intValue(-1), 42);
  EXPECT_EQ(Line.get("client")->stringValue(), "logger");
  EXPECT_EQ(Line.get("trace_id")->stringValue(), "log-1");
  EXPECT_EQ(Line.get("status")->stringValue(), "ok");
  EXPECT_GE(Line.get("rid")->intValue(-1), 1);
  EXPECT_GT(Line.get("total_ms")->numberValue(-1), 0.0);
  EXPECT_GT(Line.get("bytes_in")->intValue(-1), 0);
  EXPECT_GT(Line.get("bytes_out")->intValue(-1), 0);
  ASSERT_NE(Line.get("ts_s"), nullptr);
  EXPECT_EQ(std::fgets(Buf, sizeof(Buf), Log), nullptr) << "extra log lines";
  std::fclose(Log);
}

TEST(AdminPlaneTest, CompilesBitwiseIdenticalUnderConcurrentScrapes) {
  CompileRequest Probe = requestFor(smallSource(), 0);
  std::string Expected = runCompileRequest(Probe, nullptr).Output;

  ServerConfig Config;
  Config.AdminSpec = "127.0.0.1:0";
  TestServer TS{Config};
  std::string Err;
  ASSERT_TRUE(TS.server().startAdmin(Err)) << Err;
  std::string Addr = TS.server().adminAddress();
  ASSERT_FALSE(Addr.empty());

  // Scrapers hammer every endpoint over real HTTP for the whole run; the
  // compile responses must not change by a byte.
  std::atomic<bool> Stop{false};
  std::atomic<int> ScrapeFailures{0};
  std::vector<std::thread> Scrapers;
  for (const char *Path : {"/metrics", "/statusz", "/tracez", "/readyz"})
    Scrapers.emplace_back([&, Path] {
      while (!Stop.load(std::memory_order_relaxed)) {
        int Status = 0;
        std::string Body, E;
        if (!httpGet(Addr, Path, Status, Body, E) ||
            (Status != 200 && Status != 503))
          ScrapeFailures++;
      }
    });

  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  for (int I = 0; I < 8; ++I) {
    CompileRequest Req = requestFor(smallSource(), I);
    Req.Name = Probe.Name;
    JsonValue Resp = sendRecv(Fd, buildCompileRequestJson(Req));
    EXPECT_EQ(status(Resp), "ok") << "request " << I;
    EXPECT_EQ(output(Resp), Expected) << "request " << I;
  }
  ::close(Fd);
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &T : Scrapers)
    T.join();
  EXPECT_EQ(ScrapeFailures.load(), 0);
}

TEST(AdminPlaneTest, ScrapesSurviveInjectedShortWrites) {
  ServerConfig Config;
  Config.AdminSpec = "127.0.0.1:0";
  TestServer TS{Config};
  std::string Err;
  ASSERT_TRUE(TS.server().startAdmin(Err)) << Err;

  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  EXPECT_EQ(status(sendRecv(Fd, buildCompileRequestJson(
                                    requestFor(smallSource(), 1)))),
            "ok");
  ::close(Fd);

  FaultScope Faults("short-write=40,short-read=40,eagain=25,seed=13");
  std::string First;
  for (int I = 0; I < 4; ++I) {
    int Status = 0;
    std::string Body, E;
    ASSERT_TRUE(httpGet(TS.server().adminAddress(), "/metrics", Status,
                        Body, E))
        << "scrape " << I << ": " << E;
    EXPECT_EQ(Status, 200);
    // The server is quiescent, so successive scrapes differ only in the
    // uptime gauge — strip it and require byte identity under faults.
    std::string Stable;
    size_t Pos = 0;
    while (Pos < Body.size()) {
      size_t Nl = Body.find('\n', Pos);
      std::string Line = Body.substr(Pos, Nl - Pos);
      Pos = (Nl == std::string::npos) ? Body.size() : Nl + 1;
      // connections_active: the compile connection we just closed is
      // reaped asynchronously, so it may still be counted on early scrapes.
      if (Line.find("uptime") == std::string::npos &&
          Line.find("io_faults") == std::string::npos &&
          Line.find("admin_") == std::string::npos &&
          Line.find("connections_active") == std::string::npos)
        Stable += Line + "\n";
    }
    if (I == 0)
      First = Stable;
    else
      EXPECT_EQ(Stable, First) << "scrape " << I;
  }
  EXPECT_GT(FaultInjector::instance().injected(), 0);
}

//===----------------------------------------------------------------------===//
// Bounded protocol fuzz (tier 1; the long campaign is in gca_fuzz_tests)
//===----------------------------------------------------------------------===//

TEST(ServerTest, BoundedProtocolFuzz) {
  ServerConfig Config;
  Config.MaxFramePayload = 64 << 10;
  TestServer TS{Config};
  fuzzgen::Rng R(20260809);
  const std::string Valid =
      encodeFrame(buildCompileRequestJson(requestFor(smallSource(), 1)));

  for (int Round = 0; Round < 60; ++Round) {
    std::string Mutant = Valid;
    int Flips = R.range(1, 8);
    for (int F = 0; F < Flips; ++F)
      Mutant[static_cast<size_t>(R.range(0, static_cast<int>(Mutant.size()) -
                                                1))] =
          static_cast<char>(R.range(0, 255));
    if (R.chance(25))
      Mutant.resize(static_cast<size_t>(
          R.range(0, static_cast<int>(Mutant.size()))));
    int Fd = TS.connect();
    ASSERT_GE(Fd, 0);
    (void)ioWriteFull(Fd, Mutant.data(), Mutant.size());
    // Oracle 1: whatever comes back (possibly nothing) parses as JSON.
    if (readableWithin(Fd, 50)) {
      std::string Wire;
      if (readFrame(Fd, Wire) == FrameStatus::Ok) {
        JsonValue Doc;
        std::string Err;
        EXPECT_TRUE(JsonValue::parse(Wire, Doc, Err))
            << "round " << Round << ": unparseable response: " << Err;
      }
    }
    ::close(Fd);
    // Oracle 2: every 10 rounds, a valid request on a fresh connection is
    // still served correctly — the daemon took no lasting damage.
    if (Round % 10 == 9) {
      int Probe = TS.connect();
      ASSERT_GE(Probe, 0);
      JsonValue Resp =
          sendRecv(Probe, buildCompileRequestJson(requestFor(smallSource(),
                                                             Round)));
      EXPECT_EQ(status(Resp), "ok") << "round " << Round;
      ::close(Probe);
    }
  }
}

} // namespace
