//===- tests/test_server.cpp - Compile-server protocol tests --------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
//
// Tier-1 coverage for the compile server (driver/Serve.h): framing
// round-trips, malformed-frame handling that degrades one connection and
// never the process, bitwise-identity of served responses against the
// one-shot pipeline, shared-cache accounting across clients, admission
// control, deadlines, graceful drain under load, I/O fault injection, and a
// bounded protocol-fuzz pass (the open-ended campaign lives in the
// `fuzz-proto` shard of gca_fuzz_tests).
//
//===----------------------------------------------------------------------===//

#include "ServeTestUtil.h"
#include "FuzzGen.h"
#include "support/Io.h"
#include "workloads/Synth.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstring>
#include <thread>

#include <unistd.h>

using namespace gca;
using namespace gca::servetest;

namespace {

std::string smallSource() {
  SynthSpec Spec;
  Spec.Nests = 5;
  Spec.Seed = 2;
  return synthSource(Spec);
}

std::string slowSource() {
  SynthSpec Spec;
  Spec.Nests = 300;
  Spec.Seed = 4;
  return synthSource(Spec);
}

CompileRequest requestFor(std::string Source, int64_t Id) {
  CompileRequest Req;
  Req.Id = Id;
  Req.Name = "request-" + std::to_string(Id);
  Req.Source = std::move(Source);
  return Req;
}

/// Arms the global fault injector for one scope; always disarms on exit so
/// later tests see clean I/O.
struct FaultScope {
  explicit FaultScope(const std::string &Spec) {
    EXPECT_TRUE(FaultInjector::instance().configure(Spec));
  }
  ~FaultScope() { FaultInjector::instance().reset(); }
};

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

TEST(FrameTest, RoundTripOverPipe) {
  int P[2];
  ASSERT_EQ(::pipe(P), 0);
  for (const std::string &Payload :
       {std::string(), std::string("x"), std::string(100000, 'q')}) {
    // Large payloads exceed the pipe's buffer, so the writer needs its own
    // thread for the reader to drain it concurrently.
    std::thread Writer(
        [&] { ASSERT_EQ(writeFrame(P[1], Payload), FrameStatus::Ok); });
    std::string Got;
    ASSERT_EQ(readFrame(P[0], Got), FrameStatus::Ok);
    Writer.join();
    EXPECT_EQ(Got, Payload);
  }
  ::close(P[1]);
  std::string Got;
  EXPECT_EQ(readFrame(P[0], Got), FrameStatus::Eof); // Clean boundary.
  ::close(P[0]);
}

TEST(FrameTest, GarbageHeaderDetected) {
  int P[2];
  ASSERT_EQ(::pipe(P), 0);
  ASSERT_EQ(ioWriteFull(P[1], "XXXXYYYY", 8), IoStatus::Ok);
  std::string Got;
  EXPECT_EQ(readFrame(P[0], Got), FrameStatus::Garbage);
  ::close(P[0]);
  ::close(P[1]);
}

TEST(FrameTest, TruncationDistinguishedFromEof) {
  // Mid-header cut.
  int P[2];
  ASSERT_EQ(::pipe(P), 0);
  ASSERT_EQ(ioWriteFull(P[1], "GCA", 3), IoStatus::Ok);
  ::close(P[1]);
  std::string Got;
  EXPECT_EQ(readFrame(P[0], Got), FrameStatus::Truncated);
  ::close(P[0]);

  // Mid-payload cut: a complete header promising more than is delivered.
  ASSERT_EQ(::pipe(P), 0);
  std::string Frame = encodeFrame("0123456789");
  Frame.resize(Frame.size() - 4);
  ASSERT_EQ(ioWriteFull(P[1], Frame.data(), Frame.size()), IoStatus::Ok);
  ::close(P[1]);
  EXPECT_EQ(readFrame(P[0], Got), FrameStatus::Truncated);
  ::close(P[0]);
}

TEST(FrameTest, OversizedDeclaredLengthRejected) {
  int P[2];
  ASSERT_EQ(::pipe(P), 0);
  std::string Frame = encodeFrame(std::string(4096, 'z'));
  ASSERT_EQ(ioWriteFull(P[1], Frame.data(), Frame.size()), IoStatus::Ok);
  std::string Got;
  uint32_t Declared = 0;
  EXPECT_EQ(readFrame(P[0], Got, /*MaxPayload=*/1024, &Declared),
            FrameStatus::Oversized);
  EXPECT_EQ(Declared, 4096u);
  ::close(P[0]);
  ::close(P[1]);
}

//===----------------------------------------------------------------------===//
// Request encoding
//===----------------------------------------------------------------------===//

TEST(ServeProtocolTest, BuildParseRoundTrip) {
  CompileRequest Req = requestFor("begin r\nend\n", 42);
  Req.Stats = true;
  Req.PrintPlans = false;
  Req.Opts.Placement.Strat = Strategy::Optimal;
  Req.Opts.FuseLoops = true;
  Req.Opts.Verify = VerifyMode::Each;
  Req.Opts.Placement.Jobs = 3;
  Req.Opts.Params["n"] = 128;
  std::string Wire = buildCompileRequestJson(Req);

  JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(JsonValue::parse(Wire, Doc, Err)) << Err;
  CompileRequest Back;
  ASSERT_TRUE(parseCompileRequest(Doc, Back, Err)) << Err;
  EXPECT_EQ(buildCompileRequestJson(Back), Wire);
  EXPECT_EQ(Back.Opts.Placement.Strat, Strategy::Optimal);
  EXPECT_EQ(Back.Opts.Verify, VerifyMode::Each);
  EXPECT_EQ(Back.Opts.Params["n"], 128);
}

TEST(ServeProtocolTest, StrictParsingRejectsUnknownAndMistyped) {
  auto Fails = [](const std::string &Json) {
    JsonValue Doc;
    std::string Err;
    EXPECT_TRUE(JsonValue::parse(Json, Doc, Err)) << Err;
    CompileRequest Req;
    return !parseCompileRequest(Doc, Req, Err);
  };
  EXPECT_TRUE(Fails("{\"source\":\"s\",\"bogus\":1}"));
  EXPECT_TRUE(Fails("{\"name\":\"no-source\"}"));
  EXPECT_TRUE(Fails("{\"source\":42}"));
  EXPECT_TRUE(Fails("{\"source\":\"s\",\"id\":\"seven\"}"));
  EXPECT_TRUE(Fails("{\"source\":\"s\",\"options\":{\"bogus\":true}}"));
  EXPECT_TRUE(Fails("{\"source\":\"s\",\"options\":{\"strategy\":\"nope\"}}"));
  EXPECT_TRUE(Fails(
      "{\"source\":\"s\",\"options\":{\"placement_jobs\":0}}"));
  EXPECT_TRUE(Fails(
      "{\"source\":\"s\",\"options\":{\"params\":{\"n\":\"many\"}}}"));
}

//===----------------------------------------------------------------------===//
// Serving
//===----------------------------------------------------------------------===//

TEST(ServerTest, PingMetricsAndUnknownCmd) {
  TestServer TS{ServerConfig{}};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  JsonValue Pong = sendRecv(Fd, "{\"cmd\":\"ping\"}");
  EXPECT_EQ(status(Pong), "ok");
  const JsonValue *P = Pong.get("pong");
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(P->boolValue());

  JsonValue Metrics = sendRecv(Fd, "{\"cmd\":\"metrics\"}");
  EXPECT_EQ(status(Metrics), "ok");
  const JsonValue *M = Metrics.get("metrics");
  ASSERT_NE(M, nullptr);
  ASSERT_TRUE(M->isObject());

  JsonValue Unknown = sendRecv(Fd, "{\"cmd\":\"selfdestruct\"}");
  EXPECT_EQ(status(Unknown), "bad-request");
  // The connection survives a bad request: framing is still synchronized.
  EXPECT_EQ(status(sendRecv(Fd, "{\"cmd\":\"ping\"}")), "ok");
  ::close(Fd);
}

TEST(ServerTest, ResponseBitwiseIdenticalToOneShot) {
  CompileRequest Req = requestFor(smallSource(), 1);
  std::string Expected = runCompileRequest(Req, nullptr).Output;
  ASSERT_FALSE(Expected.empty());

  TestServer TS{ServerConfig{}};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  JsonValue Resp = sendRecv(Fd, buildCompileRequestJson(Req));
  EXPECT_EQ(status(Resp), "ok");
  EXPECT_EQ(respId(Resp), 1);
  EXPECT_EQ(output(Resp), Expected);
  ::close(Fd);
}

TEST(ServerTest, ConcurrentClientsBitwiseIdentical) {
  const int NumClients = 4, PerClient = 4;
  std::vector<std::string> Sources = {smallSource(), slowSource()};
  std::vector<std::string> Expected;
  for (size_t I = 0; I < Sources.size(); ++I) {
    CompileRequest Req = requestFor(Sources[I], 0);
    Req.Name = "mixed-" + std::to_string(I);
    Expected.push_back(runCompileRequest(Req, nullptr).Output);
  }

  ResultCache Cache;
  ServerConfig Config;
  Config.Cache = &Cache;
  TestServer TS{Config};
  std::atomic<int> Mismatches{0}, Failures{0};
  std::vector<std::thread> Clients;
  for (int C = 0; C < NumClients; ++C)
    Clients.emplace_back([&, C] {
      int Fd = TS.connect();
      if (Fd < 0) {
        Failures++;
        return;
      }
      for (int I = 0; I < PerClient; ++I) {
        size_t Pick = static_cast<size_t>(C + I) % Sources.size();
        CompileRequest Req = requestFor(Sources[Pick], C * 100 + I);
        // The id is not part of the rendered output: use a fixed name so
        // every client's request hits the same cache key and bytes.
        Req.Name = "mixed-" + std::to_string(Pick);
        JsonValue Resp = sendRecv(Fd, buildCompileRequestJson(Req));
        if (status(Resp) != "ok" || respId(Resp) != C * 100 + I)
          Failures++;
        if (output(Resp) != Expected[Pick])
          Mismatches++;
      }
      ::close(Fd);
    });
  for (std::thread &T : Clients)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(Mismatches.load(), 0);
  EXPECT_EQ(TS.server().counter("server.ok"),
            static_cast<int64_t>(NumClients * PerClient));
}

TEST(ServerTest, SharedCacheHitsAcrossClients) {
  ResultCache Cache;
  ServerConfig Config;
  Config.Cache = &Cache;
  TestServer TS{Config};

  CompileRequest Req = requestFor(smallSource(), 1);
  int A = TS.connect();
  ASSERT_GE(A, 0);
  JsonValue RespA = sendRecv(A, buildCompileRequestJson(Req));
  ASSERT_EQ(status(RespA), "ok");
  const JsonValue *HitA = RespA.get("cache_hit");
  ASSERT_NE(HitA, nullptr);
  EXPECT_FALSE(HitA->boolValue());

  // A different client, the same source: must replay from the shared cache.
  int B = TS.connect();
  ASSERT_GE(B, 0);
  Req.Id = 2;
  JsonValue RespB = sendRecv(B, buildCompileRequestJson(Req));
  ASSERT_EQ(status(RespB), "ok");
  const JsonValue *HitB = RespB.get("cache_hit");
  ASSERT_NE(HitB, nullptr);
  EXPECT_TRUE(HitB->boolValue());
  EXPECT_EQ(output(RespA), output(RespB));
  EXPECT_EQ(TS.server().counter("server.cache-hits"), 1);
  EXPECT_GE(TS.server().counter("cache.hits"), 1);
  ::close(A);
  ::close(B);
}

TEST(ServerTest, BadFrameKillsOnlyItsConnection) {
  TestServer TS{ServerConfig{}};
  int A = TS.connect();
  int B = TS.connect();
  ASSERT_GE(A, 0);
  ASSERT_GE(B, 0);

  // Garbage on A: one bad-frame response, then the connection closes.
  ASSERT_EQ(ioWriteFull(A, "NOPE\x01\x02\x03\x04", 8), IoStatus::Ok);
  JsonValue Resp = recvJson(A);
  EXPECT_EQ(status(Resp), "bad-frame");
  std::string Rest;
  EXPECT_EQ(readFrame(A, Rest), FrameStatus::Eof);

  // B is a separate failure domain: still fully served.
  CompileRequest Req = requestFor(smallSource(), 9);
  EXPECT_EQ(status(sendRecv(B, buildCompileRequestJson(Req))), "ok");
  EXPECT_EQ(TS.server().counter("server.bad-frames"), 1);
  ::close(A);
  ::close(B);
}

TEST(ServerTest, OversizedFrameRejectedWithoutReading) {
  ServerConfig Config;
  Config.MaxFramePayload = 1024;
  TestServer TS{Config};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  std::string Big = encodeFrame(std::string(4096, 'z'));
  ASSERT_EQ(ioWriteFull(Fd, Big.data(), Big.size()), IoStatus::Ok);
  JsonValue Resp = recvJson(Fd);
  EXPECT_EQ(status(Resp), "bad-frame");
  // The server closes without draining the oversized payload, so the kernel
  // may surface the discard as a reset rather than a clean EOF.
  std::string Rest;
  FrameStatus Fin = readFrame(Fd, Rest);
  EXPECT_TRUE(Fin == FrameStatus::Eof || Fin == FrameStatus::IoError);
  ::close(Fd);

  // The daemon survives; a fresh connection is served.
  int Fd2 = TS.connect();
  ASSERT_GE(Fd2, 0);
  EXPECT_EQ(status(sendRecv(Fd2, "{\"cmd\":\"ping\"}")), "ok");
  ::close(Fd2);
}

TEST(ServerTest, MidFrameDisconnectDegradesOnlyThatConnection) {
  TestServer TS{ServerConfig{}};
  int A = TS.connect();
  ASSERT_GE(A, 0);
  // Half a header, then gone: the server sees Truncated and reclaims the
  // connection without answering (there is nothing to answer).
  ASSERT_EQ(ioWriteFull(A, "GCAF\x40", 5), IoStatus::Ok);
  ::close(A);

  int B = TS.connect();
  ASSERT_GE(B, 0);
  CompileRequest Req = requestFor(smallSource(), 3);
  EXPECT_EQ(status(sendRecv(B, buildCompileRequestJson(Req))), "ok");
  ::close(B);
}

TEST(ServerTest, OverloadedWhenAdmissionQueueFull) {
  ServerConfig Config;
  Config.Jobs = 1;
  Config.QueueLimit = 0; // Zero admitted-but-unstarted slots: always shed.
  TestServer TS{Config};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  CompileRequest Req = requestFor(smallSource(), 5);
  JsonValue Resp = sendRecv(Fd, buildCompileRequestJson(Req));
  EXPECT_EQ(status(Resp), "overloaded");
  EXPECT_EQ(respId(Resp), 5);
  EXPECT_GE(TS.server().counter("server.overloaded"), 1);
  // Shedding is not fatal: control traffic still flows on the same
  // connection.
  EXPECT_EQ(status(sendRecv(Fd, "{\"cmd\":\"ping\"}")), "ok");
  ::close(Fd);
}

TEST(ServerTest, DeadlinePassedBeforeDispatchTimesOut) {
  ServerConfig Config;
  Config.Jobs = 1;
  Config.RequestTimeoutSec = 1e-6;
  TestServer TS{Config};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  // Pipeline two requests: with one worker, the second one's queue wait is
  // at least the first one's compile time, far past the 1 µs deadline.
  ASSERT_EQ(writeFrame(Fd, buildCompileRequestJson(
                               requestFor(slowSource(), 1))),
            FrameStatus::Ok);
  ASSERT_EQ(writeFrame(Fd, buildCompileRequestJson(
                               requestFor(smallSource(), 2))),
            FrameStatus::Ok);
  bool SawTimeoutForSecond = false;
  for (int I = 0; I < 2; ++I) {
    JsonValue Resp = recvJson(Fd);
    if (respId(Resp) == 2) {
      EXPECT_EQ(status(Resp), "timeout");
      SawTimeoutForSecond = status(Resp) == "timeout";
    } else {
      EXPECT_EQ(respId(Resp), 1);
      EXPECT_TRUE(status(Resp) == "ok" || status(Resp) == "timeout");
    }
  }
  EXPECT_TRUE(SawTimeoutForSecond);
  EXPECT_GE(TS.server().counter("server.timeouts"), 1);
  ::close(Fd);
}

TEST(ServerTest, DrainUnderLoadDropsNoInFlightRequest) {
  ServerConfig Config;
  Config.Jobs = 1;
  TestServer TS{Config};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  const int N = 4;
  for (int I = 0; I < N; ++I)
    ASSERT_EQ(writeFrame(Fd, buildCompileRequestJson(
                                 requestFor(slowSource(), I))),
              FrameStatus::Ok);
  // Wait until every request has been read and admitted, so the drain
  // deterministically lands while compiles are queued and executing.
  for (int Spin = 0; Spin < 10000; ++Spin) {
    if (TS.server().counter("server.requests") == N)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(TS.server().counter("server.requests"), N);
  TS.server().requestDrain();
  // A request arriving after the drain is rejected explicitly, not dropped
  // (in-flight work keeps the connection open long enough to read it).
  ASSERT_EQ(writeFrame(Fd, buildCompileRequestJson(
                               requestFor(smallSource(), N))),
            FrameStatus::Ok);
  int Answered = 0, Ok = 0, Draining = 0;
  bool LateRejected = false;
  for (int I = 0; I < N + 1; ++I) {
    JsonValue Resp = recvJson(Fd);
    if (Resp.isNull())
      break;
    ++Answered;
    if (status(Resp) == "ok")
      ++Ok;
    else if (status(Resp) == "draining")
      ++Draining;
    if (respId(Resp) == N)
      LateRejected = status(Resp) == "draining";
  }
  // Every admitted request was answered; nothing vanished.
  EXPECT_EQ(Answered, N + 1);
  EXPECT_EQ(Ok + Draining, N + 1);
  EXPECT_GE(Ok, 1); // At least the one already executing completes.
  EXPECT_TRUE(LateRejected);
  std::string Rest;
  EXPECT_EQ(readFrame(Fd, Rest), FrameStatus::Eof); // Then a clean close.
  ::close(Fd);
}

//===----------------------------------------------------------------------===//
// Fault injection
//===----------------------------------------------------------------------===//

TEST(ServerTest, ServesCorrectlyUnderInjectedIoFaults) {
  CompileRequest Req = requestFor(smallSource(), 1);
  std::string Expected = runCompileRequest(Req, nullptr).Output;

  FaultScope Faults("short-read=40,short-write=40,eagain=25,eintr=25,seed=11");
  TestServer TS{ServerConfig{}};
  int Fd = TS.connect();
  ASSERT_GE(Fd, 0);
  for (int I = 0; I < 5; ++I) {
    Req.Id = I;
    JsonValue Resp = sendRecv(Fd, buildCompileRequestJson(Req));
    ASSERT_EQ(status(Resp), "ok") << "request " << I;
    EXPECT_EQ(output(Resp), Expected) << "request " << I;
  }
  ::close(Fd);
  // The retry loops actually ran: faults were injected, none escaped.
  EXPECT_GT(FaultInjector::instance().injected(), 0);
}

TEST(ServerTest, FaultedConnectionIsItsOwnFailureDomain) {
  FaultScope Faults("short-read=60,eagain=30,seed=3");
  TestServer TS{ServerConfig{}};
  int A = TS.connect();
  int B = TS.connect();
  ASSERT_GE(A, 0);
  ASSERT_GE(B, 0);
  // A dies mid-frame under fault pressure; B must still be served and the
  // process-wide behavior (accepting, compiling) must be unaffected.
  ASSERT_EQ(ioWriteFull(A, "GCAF\xff\x00\x00", 7), IoStatus::Ok);
  ::close(A);
  CompileRequest Req = requestFor(smallSource(), 8);
  JsonValue Resp = sendRecv(B, buildCompileRequestJson(Req));
  EXPECT_EQ(status(Resp), "ok");
  ::close(B);
}

TEST(FaultInjectorTest, SpecParsing) {
  FaultInjector &FI = FaultInjector::instance();
  EXPECT_TRUE(FI.configure("short-read=10,short-write=20,eagain=5,seed=42"));
  EXPECT_TRUE(FI.armed());
  FI.reset();
  EXPECT_FALSE(FI.armed());
  EXPECT_FALSE(FI.configure("bogus-knob=10"));
  EXPECT_FALSE(FI.configure("short-read=101"));
  EXPECT_FALSE(FI.configure("short-read"));
  EXPECT_FALSE(FI.armed());
  FI.reset();
}

//===----------------------------------------------------------------------===//
// Bounded protocol fuzz (tier 1; the long campaign is in gca_fuzz_tests)
//===----------------------------------------------------------------------===//

TEST(ServerTest, BoundedProtocolFuzz) {
  ServerConfig Config;
  Config.MaxFramePayload = 64 << 10;
  TestServer TS{Config};
  fuzzgen::Rng R(20260809);
  const std::string Valid =
      encodeFrame(buildCompileRequestJson(requestFor(smallSource(), 1)));

  for (int Round = 0; Round < 60; ++Round) {
    std::string Mutant = Valid;
    int Flips = R.range(1, 8);
    for (int F = 0; F < Flips; ++F)
      Mutant[static_cast<size_t>(R.range(0, static_cast<int>(Mutant.size()) -
                                                1))] =
          static_cast<char>(R.range(0, 255));
    if (R.chance(25))
      Mutant.resize(static_cast<size_t>(
          R.range(0, static_cast<int>(Mutant.size()))));
    int Fd = TS.connect();
    ASSERT_GE(Fd, 0);
    (void)ioWriteFull(Fd, Mutant.data(), Mutant.size());
    // Oracle 1: whatever comes back (possibly nothing) parses as JSON.
    if (readableWithin(Fd, 50)) {
      std::string Wire;
      if (readFrame(Fd, Wire) == FrameStatus::Ok) {
        JsonValue Doc;
        std::string Err;
        EXPECT_TRUE(JsonValue::parse(Wire, Doc, Err))
            << "round " << Round << ": unparseable response: " << Err;
      }
    }
    ::close(Fd);
    // Oracle 2: every 10 rounds, a valid request on a fresh connection is
    // still served correctly — the daemon took no lasting damage.
    if (Round % 10 == 9) {
      int Probe = TS.connect();
      ASSERT_GE(Probe, 0);
      JsonValue Resp =
          sendRecv(Probe, buildCompileRequestJson(requestFor(smallSource(),
                                                             Round)));
      EXPECT_EQ(status(Resp), "ok") << "round " << Round;
      ::close(Probe);
    }
  }
}

} // namespace
