//===- tests/test_fuzz.cpp - randomized end-to-end property tests ---------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic random-program generator drives the whole pipeline: it
/// builds data-parallel programs with random distributions, stencil offsets
/// (including diagonals), loop structures, branches, reductions, and
/// redundant re-reads, then asserts on every one of them that
///
///   (1) every strategy's schedule passes element-level provenance
///       verification (the safety property of Claims 4.1/4.7),
///   (2) the global algorithm never emits more call sites than the
///       baselines, and
///   (3) the placement-range invariants (Earliest dominates candidates
///       dominate Latest dominate the use) hold for every entry, and
///   (4) a warm result-cache replay of the compilation is bitwise-identical
///       to the cold run (the fuzzer doubles as a differential test of
///       driver/CachedPipeline.h), and
///   (5) the independent availability-dataflow verifier
///       (analysis/AvailDataflow.h) accepts every strategy's plan — the
///       translation-validation layer must never flag a plan the provenance
///       executor proves safe.
///
/// Seeds are fixed, so failures reproduce exactly. The seed range is split
/// into labeled shards (Shard0..Shard3 instantiations; ctest labels
/// fuzz-shard0..3) so CI can fan the fuzz tier out across jobs; `ctest -L
/// fuzz` still runs every shard.
///
//===----------------------------------------------------------------------===//

#include "FuzzGen.h"
#include "analysis/AvailDataflow.h"
#include "analysis/PlanAudit.h"
#include "driver/CachedPipeline.h"
#include "driver/Compile.h"
#include "lower/Schedule.h"
#include "runtime/Verify.h"
#include "support/ResultCache.h"
#include "support/StrUtil.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace gca;
using fuzzgen::generateProgram;

/// GCA_FUZZ_PLACEMENT_JOBS=N runs every fuzzed compilation with N placement
/// jobs (scripts/check.sh sets 8 under TSan so the parallel placement and
/// audit phases see the full fuzz corpus). Results are bitwise-identical at
/// any job count, so every assertion below holds unchanged.
static int fuzzPlacementJobs() {
  static int Jobs = [] {
    const char *E = std::getenv("GCA_FUZZ_PLACEMENT_JOBS");
    int N = E ? std::atoi(E) : 1;
    return N > 1 ? N : 1;
  }();
  return Jobs;
}

class Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(Fuzz, PipelineSafeAndMonotone) {
  uint64_t Seed = static_cast<uint64_t>(GetParam());
  std::string Src = generateProgram(Seed);
  SCOPED_TRACE(Src);

  int Sites[3] = {0, 0, 0};
  Strategy Strats[3] = {Strategy::Orig, Strategy::Earliest, Strategy::Global};
  for (int SI = 0; SI != 3; ++SI) {
    CompileOptions Opts;
    Opts.Placement.Jobs = fuzzPlacementJobs();
    Opts.Placement.Strat = Strats[SI];
    // Exercise the extension flags on a rotating subset of seeds; they must
    // never compromise safety.
    Opts.Placement.DeferReductions = Seed % 3 == 0;
    Opts.Placement.PartialRedundancy = Seed % 4 == 0;
    Opts.FuseLoops = Seed % 5 == 0;
    CompileResult R = compileSource(Src, Opts);
    ASSERT_TRUE(R.Ok) << R.Errors;
    for (const RoutineResult &RR : R.Routines) {
      Sites[SI] += RR.Plan.Stats.totalGroups();

      // (3) Placement-range invariants (reductions fire right after their
      // statement instead of dominating it, Section 6.2).
      for (const CommEntry &E : RR.Plan.Entries) {
        EXPECT_TRUE(RR.Ctx->DT.slotDominates(E.EarliestSlot, E.LatestSlot));
        if (E.M.Kind == CommKind::Reduce)
          continue;
        for (const Slot &C : E.OriginalCandidates) {
          EXPECT_TRUE(RR.Ctx->DT.slotDominates(E.EarliestSlot, C));
          EXPECT_TRUE(RR.Ctx->slotDominatesUse(C, E.UseStmt));
        }
      }

      // (4) Static audit: the plan's structural invariants re-derived
      // independently (the fuzz oracle for analysis/PlanAudit.h).
      AuditReport A = auditPlan(*RR.Ctx, RR.Plan, Opts.Placement);
      EXPECT_TRUE(A.ok()) << "[" << strategyName(Strats[SI]) << "]\n"
                          << A.str();

      // (5) Translation validation: the independent availability-dataflow
      // verifier must also accept every plan (the fuzz oracle for
      // analysis/AvailDataflow.h).
      VerifyReport VR = verifyPlan(*RR.Ctx, RR.Plan, Opts.Placement);
      EXPECT_TRUE(VR.ok()) << "[" << strategyName(Strats[SI]) << "]\n"
                           << VR.str();

      // (1) Provenance safety on a 2x2 grid.
      ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
      VerifyResult V = verifySchedule(*RR.Ctx, RR.Plan, Prog, 4);
      EXPECT_TRUE(V.Ok) << "[" << strategyName(Strats[SI]) << "]\n"
                        << V.str();
    }
  }
  // (2) Strategy monotonicity on call sites.
  EXPECT_LE(Sites[1], Sites[0]);
  EXPECT_LE(Sites[2], Sites[1]);

  // The strawman and exhaustive strategies must also be safe, and the
  // optimum can never use more call sites than the greedy.
  for (Strategy S : {Strategy::EarliestCombine, Strategy::Optimal}) {
    CompileOptions Opts;
    Opts.Placement.Jobs = fuzzPlacementJobs();
    Opts.Placement.Strat = S;
    CompileResult R = compileSource(Src, Opts);
    ASSERT_TRUE(R.Ok) << R.Errors;
    int Total = 0;
    for (const RoutineResult &RR : R.Routines) {
      Total += RR.Plan.Stats.totalGroups();
      AuditReport A = auditPlan(*RR.Ctx, RR.Plan, Opts.Placement);
      EXPECT_TRUE(A.ok()) << "[" << strategyName(S) << "]\n" << A.str();
      VerifyReport VR = verifyPlan(*RR.Ctx, RR.Plan, Opts.Placement);
      EXPECT_TRUE(VR.ok()) << "[" << strategyName(S) << "]\n" << VR.str();
      ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
      VerifyResult V = verifySchedule(*RR.Ctx, RR.Plan, Prog, 4);
      EXPECT_TRUE(V.Ok) << "[" << strategyName(S) << "]\n" << V.str();
    }
    if (S == Strategy::Optimal) {
      EXPECT_LE(Total, Sites[2]);
    }
  }

  // (4) Result-cache differential: a warm replay of this seed's program
  // must be bitwise-identical to the cold compilation — same diagnostics,
  // plan text, audit verdict, and counters. The option rotation above keeps
  // the key-normalization path under fuzz too.
  {
    CompileOptions Opts;
    Opts.Placement.Jobs = fuzzPlacementJobs();
    Opts.Placement.Strat = Strategy::Global;
    Opts.Placement.DeferReductions = Seed % 3 == 0;
    Opts.Placement.PartialRedundancy = Seed % 4 == 0;
    Opts.FuseLoops = Seed % 5 == 0;
    Opts.Audit = true;
    Opts.Verify = Seed % 2 ? VerifyMode::Final : VerifyMode::Each;
    Opts.Lint = Seed % 2 == 0;

    ResultCache Cache;
    CachedPipeline CP(Cache);
    Session Cold(Src, Opts);
    EXPECT_FALSE(CP.run(Cold));
    Session Warm(Src, Opts);
    EXPECT_TRUE(CP.run(Warm));

    StatsRegistry::Snapshot ColdStats = Cold.Stats.snapshot();
    StatsRegistry::Snapshot WarmStats = Warm.Stats.snapshot();
    CompileResult CR = Cold.take();
    CompileResult WR = Warm.take();
    ASSERT_TRUE(CR.Ok) << CR.Errors;
    EXPECT_TRUE(WR.Ok);
    EXPECT_TRUE(WR.FromCache);
    EXPECT_EQ(CR.AuditOk, WR.AuditOk);
    EXPECT_TRUE(CR.VerifyOk);
    EXPECT_EQ(CR.VerifyOk, WR.VerifyOk);
    EXPECT_EQ(CR.Diagnostics, WR.Diagnostics);
    EXPECT_EQ(CR.planText(), WR.planText());
    EXPECT_EQ(ColdStats, WarmStats);
  }
}

// The 120 seeds are split into four labeled shards so the fuzz tier can fan
// out across CI jobs (tests/CMakeLists.txt maps each instantiation to a
// fuzz-shardN ctest label; -L fuzz matches all of them).
INSTANTIATE_TEST_SUITE_P(Shard0, Fuzz, ::testing::Range(1, 31));
INSTANTIATE_TEST_SUITE_P(Shard1, Fuzz, ::testing::Range(31, 61));
INSTANTIATE_TEST_SUITE_P(Shard2, Fuzz, ::testing::Range(61, 91));
INSTANTIATE_TEST_SUITE_P(Shard3, Fuzz, ::testing::Range(91, 121));

//===----------------------------------------------------------------------===//
// Protocol fuzz: random byte mutations of valid frames against a live
// in-process compile server (driver/Serve.h). The oracle: the daemon never
// crashes, every response it does send parses as JSON, and after each
// mutation campaign a valid request on a fresh connection is still served
// with bitwise-correct output. Lives in its own instantiation ("Proto") so
// tests/CMakeLists.txt can label it fuzz-proto alongside the pipeline
// shards.
//===----------------------------------------------------------------------===//

#include "ServeTestUtil.h"
#include "support/Io.h"
#include "workloads/Synth.h"

class ProtoFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ProtoFuzz, MutatedFramesNeverKillTheDaemon) {
  using namespace gca::servetest;
  fuzzgen::Rng R(static_cast<uint64_t>(GetParam()) * 7919 + 17);

  SynthSpec Spec;
  Spec.Nests = 4 + GetParam() % 5;
  Spec.Seed = static_cast<uint64_t>(GetParam()) + 1;
  CompileRequest Valid;
  Valid.Id = 1;
  Valid.Name = "proto-" + std::to_string(GetParam());
  Valid.Source = synthSource(Spec);
  const std::string Expected = runCompileRequest(Valid, nullptr).Output;
  const std::string ValidFrame = encodeFrame(buildCompileRequestJson(Valid));

  ServerConfig Config;
  Config.MaxFramePayload = 256 << 10;
  TestServer TS{Config};

  for (int Round = 0; Round < 120; ++Round) {
    // Mutate: byte flips, truncation, duplication, or random prefix junk.
    std::string Mutant = ValidFrame;
    int Flips = R.range(0, 12);
    for (int F = 0; F < Flips; ++F)
      Mutant[static_cast<size_t>(
          R.range(0, static_cast<int>(Mutant.size()) - 1))] =
          static_cast<char>(R.range(0, 255));
    if (R.chance(20))
      Mutant.resize(static_cast<size_t>(
          R.range(0, static_cast<int>(Mutant.size()))));
    if (R.chance(10))
      Mutant = std::string(static_cast<size_t>(R.range(1, 16)),
                           static_cast<char>(R.range(0, 255))) +
               Mutant;
    if (R.chance(10))
      Mutant += Mutant;

    int Fd = TS.connect();
    ASSERT_GE(Fd, 0);
    (void)ioWriteFull(Fd, Mutant.data(), Mutant.size());
    // Drain whatever the server answers (possibly nothing); every frame
    // that does come back must parse.
    while (readableWithin(Fd, 25)) {
      std::string Wire;
      if (readFrame(Fd, Wire) != FrameStatus::Ok)
        break;
      JsonValue Doc;
      std::string Err;
      EXPECT_TRUE(JsonValue::parse(Wire, Doc, Err))
          << "round " << Round << ": " << Err;
    }
    ::close(Fd);

    if (Round % 15 == 14) {
      // The daemon is still fully functional: a valid request is served
      // and its output is bitwise-identical to the one-shot pipeline.
      int Probe = TS.connect();
      ASSERT_GE(Probe, 0);
      gca::JsonValue Resp =
          sendRecv(Probe, buildCompileRequestJson(Valid));
      ASSERT_EQ(status(Resp), "ok") << "round " << Round;
      EXPECT_EQ(output(Resp), Expected) << "round " << Round;
      ::close(Probe);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Proto, ProtoFuzz, ::testing::Range(0, 8));
