//===- tests/test_analysis.cpp - plan auditor + lint tests ----------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the static analysis subsystem: one golden-output positive test
/// and one negative test per lint rule (exact DiagEngine::str() text), audit
/// clean-pass coverage over every workload and strategy, and
/// corrupted-plan tests proving each audit invariant family rejects a broken
/// plan with a located diagnostic.
///
//===----------------------------------------------------------------------===//

#include "analysis/CommLint.h"
#include "analysis/PlanAudit.h"
#include "driver/Compile.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace gca;

namespace {

/// Compiles \p Source (already element-wise; scalarization is a no-op) and
/// returns the result, asserting success.
CompileResult compile(const std::string &Source,
                      Strategy Strat = Strategy::Global) {
  CompileOptions Opts;
  Opts.Placement.Strat = Strat;
  Opts.Audit = false;
  Opts.Lint = false;
  CompileResult R = compileSource(Source, Opts);
  EXPECT_TRUE(R.Ok) << R.Errors;
  return R;
}

/// Runs the lint rules over the first routine and returns the rendered
/// diagnostics (no baseline plan: the [no-comm-benefit] rule stays off).
std::string lint(const std::string &Source) {
  CompileResult R = compile(Source);
  DiagEngine Diags;
  lintRoutine(*R.Routines[0].Ctx, R.Routines[0].Plan, nullptr, Diags);
  return Diags.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Lint golden-output tests
//===----------------------------------------------------------------------===//

TEST(CommLint, UndistributedArrayWarns) {
  std::string Out = lint("program p\n"
                         "param n = 8\n"
                         "real a(n,n) distribute (block,block)\n"
                         "real w(n,n)\n"
                         "begin\n"
                         "do i = 2, n\n"
                         "  do j = 2, n\n"
                         "    a(i,j) = w(i,j) + a(i-1,j)\n"
                         "  end do\n"
                         "end do\n"
                         "end\n");
  EXPECT_EQ(Out, "warning: 8:14: undistributed array 'w' referenced inside "
                 "distributed loop 'j'; the access is replicated on every "
                 "processor [undistributed-array]\n");
}

TEST(CommLint, UndistributedArrayNegative) {
  // Same program with w distributed: no warning.
  EXPECT_EQ(lint("program p\n"
                 "param n = 8\n"
                 "real a(n,n) distribute (block,block)\n"
                 "real w(n,n) distribute (block,block)\n"
                 "begin\n"
                 "do i = 2, n\n"
                 "  do j = 2, n\n"
                 "    a(i,j) = w(i,j) + a(i-1,j)\n"
                 "  end do\n"
                 "end do\n"
                 "end\n"),
            "");
}

TEST(CommLint, InnermostCommWarns) {
  std::string Out = lint("program p\n"
                         "param n = 8\n"
                         "real a(n,n) distribute (block,block)\n"
                         "begin\n"
                         "do i = 2, n\n"
                         "  do j = 2, n\n"
                         "    a(i,j) = a(i,j-1) + 1\n"
                         "  end do\n"
                         "end do\n"
                         "end\n");
  EXPECT_EQ(Out, "warning: 7:14: communication for 'a' cannot be vectorized: "
                 "the definition at 7:5 pins it inside the innermost loop "
                 "'j' [innermost-comm]\n");
}

TEST(CommLint, InnermostCommNegative) {
  // The dependence is carried by the outer loop: the inner loop's messages
  // vectorize, so the rule must stay quiet.
  EXPECT_EQ(lint("program p\n"
                 "param n = 8\n"
                 "real a(n,n) distribute (block,block)\n"
                 "begin\n"
                 "do i = 2, n\n"
                 "  do j = 2, n\n"
                 "    a(i,j) = a(i-1,j) + 1\n"
                 "  end do\n"
                 "end do\n"
                 "end\n"),
            "");
}

TEST(CommLint, SubscriptOutOfRangeWarns) {
  std::string Out = lint("program p\n"
                         "param n = 8\n"
                         "real a(n,n) distribute (block,block)\n"
                         "real b(n,n) distribute (block,block)\n"
                         "begin\n"
                         "do i = 1, n\n"
                         "  do j = 1, n\n"
                         "    a(i,j) = b(i+1,j)\n"
                         "  end do\n"
                         "end do\n"
                         "end\n");
  EXPECT_EQ(Out, "warning: 8:14: subscript 1 of 'b' can reach 9, outside "
                 "the declared bounds 1:8 [subscript-out-of-range]\n");
}

TEST(CommLint, SubscriptOutOfRangeNegative) {
  // The loop bounds keep i+1 inside the declared extent.
  EXPECT_EQ(lint("program p\n"
                 "param n = 8\n"
                 "real a(n,n) distribute (block,block)\n"
                 "real b(n,n) distribute (block,block)\n"
                 "begin\n"
                 "do i = 1, n-1\n"
                 "  do j = 1, n\n"
                 "    a(i,j) = b(i+1,j)\n"
                 "  end do\n"
                 "end do\n"
                 "end\n"),
            "");
}

TEST(CommLint, UnusedArrayWarns) {
  std::string Out = lint("program p\n"
                         "param n = 8\n"
                         "real a(n,n) distribute (block,block)\n"
                         "real dead(n,n) distribute (block,block)\n"
                         "begin\n"
                         "do i = 1, n\n"
                         "  do j = 1, n\n"
                         "    a(i,j) = 1\n"
                         "  end do\n"
                         "end do\n"
                         "end\n");
  EXPECT_EQ(Out, "warning: array 'dead' is declared but never referenced "
                 "[unused-array]\n");
}

TEST(CommLint, UnusedArrayNegative) {
  EXPECT_EQ(lint("program p\n"
                 "param n = 8\n"
                 "real a(n,n) distribute (block,block)\n"
                 "begin\n"
                 "do i = 1, n\n"
                 "  do j = 1, n\n"
                 "    a(i,j) = 1\n"
                 "  end do\n"
                 "end do\n"
                 "end\n"),
            "");
}

TEST(CommLint, NoCommBenefitWarns) {
  // One shift, nothing to eliminate or combine: the global strategy matches
  // plain vectorization. Exercised through the driver, which supplies the
  // baseline plan.
  CompileOptions Opts;
  Opts.Audit = false;
  Opts.Lint = true;
  CompileResult R = compileSource("program p\n"
                                  "param n = 8\n"
                                  "real a(n,n) distribute (block,block)\n"
                                  "real b(n,n) distribute (block,block)\n"
                                  "begin\n"
                                  "do i = 2, n\n"
                                  "  do j = 1, n\n"
                                  "    a(i,j) = b(i-1,j)\n"
                                  "  end do\n"
                                  "end do\n"
                                  "end\n",
                                  Opts);
  ASSERT_TRUE(R.Ok) << R.Errors;
  EXPECT_EQ(R.Diagnostics,
            "warning: global placement found no improvement over message "
            "vectorization in 'p' (1 messages either way); consider "
            "restructuring its loops [no-comm-benefit]\n");
}

TEST(CommLint, NoCommBenefitNegative) {
  // The second read of the same section is eliminated by the global
  // algorithm, so it clearly beats the baseline.
  CompileOptions Opts;
  Opts.Audit = false;
  Opts.Lint = true;
  CompileResult R = compileSource("program p\n"
                                  "param n = 8\n"
                                  "real a(n,n) distribute (block,block)\n"
                                  "real b(n,n) distribute (block,block)\n"
                                  "real c(n,n) distribute (block,block)\n"
                                  "begin\n"
                                  "do i = 2, n\n"
                                  "  do j = 1, n\n"
                                  "    a(i,j) = b(i-1,j)\n"
                                  "  end do\n"
                                  "end do\n"
                                  "do i = 2, n\n"
                                  "  do j = 1, n\n"
                                  "    c(i,j) = b(i-1,j)\n"
                                  "  end do\n"
                                  "end do\n"
                                  "end\n",
                                  Opts);
  ASSERT_TRUE(R.Ok) << R.Errors;
  EXPECT_EQ(R.Diagnostics, "");
}

TEST(CommLint, DeadCommWarns) {
  // The use is guarded by an IF inside the loop, but the communication
  // vectorizes out to the loop preheader: every iteration that takes the
  // else path paid for a message nobody reads.
  std::string Out = lint("program p\n"
                         "param n = 8\n"
                         "real a(n,n) distribute (block,block)\n"
                         "real b(n,n) distribute (block,block)\n"
                         "begin\n"
                         "do i = 2, n\n"
                         "  if (c) then\n"
                         "    do j = 1, n\n"
                         "      a(i,j) = b(i-1,j)\n"
                         "    end do\n"
                         "  end if\n"
                         "end do\n"
                         "end\n");
  EXPECT_EQ(Out, "warning: 9:16: communication for 'b' is partially dead: "
                 "some path from its placement reaches the routine exit "
                 "without reading the data; consider sinking it into the "
                 "branch that uses it [dead-comm]\n");
}

TEST(CommLint, DeadCommNegative) {
  // Same nest without the branch: every path from the placement passes the
  // use, so the rule stays quiet. (The preheader->postexit zero-trip edge
  // must not count as a dead path — the loop provably runs here, and even
  // when it could not, a zero-trip bypass is not worth warning about.)
  EXPECT_EQ(lint("program p\n"
                 "param n = 8\n"
                 "real a(n,n) distribute (block,block)\n"
                 "real b(n,n) distribute (block,block)\n"
                 "begin\n"
                 "do i = 2, n\n"
                 "  do j = 1, n\n"
                 "    a(i,j) = b(i-1,j)\n"
                 "  end do\n"
                 "end do\n"
                 "end\n"),
            "");
}

//===----------------------------------------------------------------------===//
// Auditor: clean plans pass
//===----------------------------------------------------------------------===//

TEST(PlanAudit, AllWorkloadsAllStrategiesPass) {
  for (const Workload *W : allWorkloads()) {
    for (Strategy S : {Strategy::Orig, Strategy::Earliest, Strategy::Global,
                       Strategy::EarliestCombine, Strategy::Optimal}) {
      CompileOptions Opts;
      Opts.Placement.Strat = S;
      Opts.Audit = false;
      CompileResult R = compileSource(W->Source, Opts);
      ASSERT_TRUE(R.Ok) << W->Name << ": " << R.Errors;
      for (const RoutineResult &RR : R.Routines) {
        AuditReport A = auditPlan(*RR.Ctx, RR.Plan, Opts.Placement);
        EXPECT_TRUE(A.ok()) << W->Name << " [" << strategyName(S) << "]\n"
                            << A.str();
        EXPECT_EQ(A.EntriesChecked,
                  static_cast<int>(RR.Plan.Entries.size()));
      }
    }
  }
}

TEST(PlanAudit, CleanReportRendersOkJson) {
  CompileResult R = compile(shallowWorkload().Source);
  AuditReport A =
      auditPlan(*R.Routines[0].Ctx, R.Routines[0].Plan, PlacementOptions());
  EXPECT_TRUE(A.ok());
  EXPECT_NE(A.json().find("\"ok\":true"), std::string::npos);
  EXPECT_NE(A.json().find("\"violations\":[]"), std::string::npos);
  EXPECT_NE(A.str().find("PASS"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Auditor: corrupted plans are rejected with located diagnostics
//===----------------------------------------------------------------------===//

namespace {

/// A two-statement stencil program whose global plan has one shift group; a
/// def of the communicated array separates two reads.
const char *kStencil = "program p\n"
                       "param n = 8\n"
                       "real a(n,n) distribute (block,block)\n"
                       "real b(n,n) distribute (block,block)\n"
                       "real c(n,n) distribute (block,block)\n"
                       "begin\n"
                       "do i = 2, n\n"
                       "  do j = 1, n\n"
                       "    a(i,j) = b(i-1,j)\n"
                       "  end do\n"
                       "end do\n"
                       "do i = 1, n\n"
                       "  do j = 1, n\n"
                       "    b(i,j) = 2\n"
                       "  end do\n"
                       "end do\n"
                       "do i = 2, n\n"
                       "  do j = 1, n\n"
                       "    c(i,j) = b(i-1,j)\n"
                       "  end do\n"
                       "end do\n"
                       "end\n";

bool hasRule(const AuditReport &A, AuditRule Rule) {
  for (const AuditViolation &V : A.Violations)
    if (V.Rule == Rule)
      return true;
  return false;
}

} // namespace

TEST(PlanAudit, PlacementPastUseRejected) {
  CompileResult R = compile(kStencil);
  RoutineResult &RR = R.Routines[0];
  ASSERT_GE(RR.Plan.Groups.size(), 2u);
  // Move the first communication to just after its use: it no longer
  // dominates the use and falls outside [Earliest, Latest].
  const CommEntry &E = RR.Plan.Entries[RR.Plan.Groups[0].Members[0]];
  RR.Plan.Groups[0].Placement = RR.Ctx->G.slotAfter(E.UseStmt);

  DiagEngine Diags;
  AuditReport A = auditPlan(*RR.Ctx, RR.Plan, PlacementOptions(), &Diags);
  EXPECT_FALSE(A.ok());
  EXPECT_TRUE(hasRule(A, AuditRule::PlacementRange)) << A.str();
  // The diagnostic is located at the use's source position.
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diags()[0].Loc.isValid()) << Diags.str();
  EXPECT_NE(Diags.str().find("plan audit [placement-range]"),
            std::string::npos)
      << Diags.str();
}

TEST(PlanAudit, PlacementBeforeInterveningDefRejected) {
  CompileResult R = compile(kStencil);
  RoutineResult &RR = R.Routines[0];
  ASSERT_EQ(RR.Plan.Groups.size(), 2u);
  // Hoist the second read's communication to the first one's placement,
  // which sits before the intervening redefinition of b.
  RR.Plan.Groups[1].Placement = RR.Plan.Groups[0].Placement;

  AuditReport A = auditPlan(*RR.Ctx, RR.Plan, PlacementOptions());
  EXPECT_FALSE(A.ok());
  EXPECT_TRUE(hasRule(A, AuditRule::InterveningDef)) << A.str();
}

TEST(PlanAudit, BrokenSubsumptionChainRejected) {
  CompileResult R = compile(kStencil);
  RoutineResult &RR = R.Routines[0];
  // Fake an elimination with no surviving subsumer.
  CommEntry &E = RR.Plan.Entries[RR.Plan.Groups[0].Members[0]];
  RR.Plan.Groups[0].Members.clear();
  E.Eliminated = true;
  E.SubsumedBy = -1;
  E.GroupId = -1;

  AuditReport A = auditPlan(*RR.Ctx, RR.Plan, PlacementOptions());
  EXPECT_FALSE(A.ok());
  EXPECT_TRUE(hasRule(A, AuditRule::RedundancyAvail)) << A.str();
  EXPECT_TRUE(hasRule(A, AuditRule::Structure)) << A.str(); // Empty group.
}

TEST(PlanAudit, DataNotCoveringEntryRejected) {
  CompileResult R = compile(kStencil);
  RoutineResult &RR = R.Routines[0];
  // Shrink the first group's communicated section to a single element.
  ASSERT_FALSE(RR.Plan.Groups[0].Data.empty());
  RegSection One(std::vector<SecDim>{SecDim::single(AffineExpr::constant(1)),
                                     SecDim::single(AffineExpr::constant(1))});
  RR.Plan.Groups[0].Data[0].D = One;

  AuditReport A = auditPlan(*RR.Ctx, RR.Plan, PlacementOptions());
  EXPECT_FALSE(A.ok());
  EXPECT_TRUE(hasRule(A, AuditRule::SubsetCoverage)) << A.str();
}

TEST(PlanAudit, InconsistentGroupLinksRejected) {
  CompileResult R = compile(kStencil);
  RoutineResult &RR = R.Routines[0];
  // A member whose back-pointer names another group.
  RR.Plan.Entries[RR.Plan.Groups[0].Members[0]].GroupId = 1;

  AuditReport A = auditPlan(*RR.Ctx, RR.Plan, PlacementOptions());
  EXPECT_FALSE(A.ok());
  EXPECT_TRUE(hasRule(A, AuditRule::Structure)) << A.str();
}

TEST(PlanAudit, CombiningOverThresholdRejected) {
  // Two same-shift reads of different arrays combine into one group under
  // the global strategy; auditing under a 1-byte threshold must reject it.
  CompileResult R = compile("program p\n"
                            "param n = 8\n"
                            "real a(n,n) distribute (block,block)\n"
                            "real b(n,n) distribute (block,block)\n"
                            "real c(n,n) distribute (block,block)\n"
                            "real d(n,n) distribute (block,block)\n"
                            "begin\n"
                            "do i = 2, n\n"
                            "  do j = 1, n\n"
                            "    a(i,j) = b(i-1,j)\n"
                            "    c(i,j) = d(i-1,j)\n"
                            "  end do\n"
                            "end do\n"
                            "end\n");
  RoutineResult &RR = R.Routines[0];
  bool HasCombined = false;
  for (const CommGroup &G : RR.Plan.Groups)
    HasCombined = HasCombined || G.Members.size() >= 2;
  ASSERT_TRUE(HasCombined);

  PlacementOptions Tiny;
  Tiny.CombineThresholdBytes = 1;
  AuditReport A = auditPlan(*RR.Ctx, RR.Plan, Tiny);
  EXPECT_FALSE(A.ok());
  EXPECT_TRUE(hasRule(A, AuditRule::CombineLegality)) << A.str();

  // And under the real threshold the same plan is legal.
  EXPECT_TRUE(auditPlan(*RR.Ctx, RR.Plan, PlacementOptions()).ok());
}

TEST(PlanAudit, ViolationJsonIsMachineReadable) {
  CompileResult R = compile(kStencil);
  RoutineResult &RR = R.Routines[0];
  const CommEntry &E = RR.Plan.Entries[RR.Plan.Groups[0].Members[0]];
  RR.Plan.Groups[0].Placement = RR.Ctx->G.slotAfter(E.UseStmt);
  AuditReport A = auditPlan(*RR.Ctx, RR.Plan, PlacementOptions());
  ASSERT_FALSE(A.ok());
  std::string Json = A.json();
  EXPECT_NE(Json.find("\"ok\":false"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"rule\":\"placement-range\""), std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"line\":"), std::string::npos) << Json;
}

//===----------------------------------------------------------------------===//
// Driver integration
//===----------------------------------------------------------------------===//

TEST(Driver, AuditFlagPopulatesReports) {
  CompileOptions Opts;
  Opts.Audit = true;
  CompileResult R = compileSource(shallowWorkload().Source, Opts);
  ASSERT_TRUE(R.Ok) << R.Errors;
  EXPECT_TRUE(R.AuditOk);
  EXPECT_EQ(R.Diagnostics, "");
  for (const RoutineResult &RR : R.Routines)
    EXPECT_EQ(RR.Audit.EntriesChecked,
              static_cast<int>(RR.Plan.Entries.size()));
}
