//===- tests/test_trace.cpp - tracing, metrics, JSON writer tests ---------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "driver/Compile.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

using namespace gca;

namespace {

/// A minimal structural JSON checker: enough to catch interleaving
/// corruption (unbalanced braces/brackets, quotes broken by a torn write)
/// without a full parser. The CI job additionally parses traces with
/// python3's json module.
bool structurallyValidJson(const std::string &S) {
  int Depth = 0;
  bool InString = false, Escape = false;
  for (char C : S) {
    if (InString) {
      if (Escape)
        Escape = false;
      else if (C == '\\')
        Escape = true;
      else if (C == '"')
        InString = false;
      else if (static_cast<unsigned char>(C) < 0x20)
        return false; // Raw control character inside a string.
      continue;
    }
    switch (C) {
    case '"':
      InString = true;
      break;
    case '{':
    case '[':
      ++Depth;
      break;
    case '}':
    case ']':
      if (--Depth < 0)
        return false;
      break;
    default:
      break;
    }
  }
  return Depth == 0 && !InString;
}

size_t countOccurrences(const std::string &Hay, const std::string &Needle) {
  size_t N = 0;
  for (size_t P = Hay.find(Needle); P != std::string::npos;
       P = Hay.find(Needle, P + Needle.size()))
    ++N;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

TEST(JsonWriter, EscapesHostileStrings) {
  JsonWriter W;
  W.beginObject();
  W.key("path\"with\\both").value("a\"b\\c\nd\te");
  W.endObject();
  EXPECT_EQ(W.str(),
            "{\"path\\\"with\\\\both\":\"a\\\"b\\\\c\\nd\\te\"}");
  EXPECT_TRUE(structurallyValidJson(W.str()));
}

TEST(JsonWriter, CommasAndNesting) {
  JsonWriter W;
  W.beginObject();
  W.key("a").value(1);
  W.key("b").beginArray().value("x").value(true).null().endArray();
  W.key("c").beginObject().key("d").value(2.5, 2).endObject();
  W.key("e").raw("[1,2]");
  W.endObject();
  EXPECT_EQ(W.str(),
            "{\"a\":1,\"b\":[\"x\",true,null],\"c\":{\"d\":2.50},"
            "\"e\":[1,2]}");
}

TEST(JsonWriter, NumericTypes) {
  JsonWriter W;
  W.beginArray();
  W.value(int64_t(-9000000000));
  W.value(uint64_t(18446744073709551615ull));
  W.value(false);
  W.endArray();
  EXPECT_EQ(W.str(), "[-9000000000,18446744073709551615,false]");
}

//===----------------------------------------------------------------------===//
// Histogram and MetricsSnapshot
//===----------------------------------------------------------------------===//

TEST(Histogram, SmallValuesAreExact) {
  Histogram H;
  for (int64_t V = 0; V < 32; ++V)
    H.record(V);
  EXPECT_EQ(H.count(), 32);
  EXPECT_EQ(H.min(), 0);
  EXPECT_EQ(H.max(), 31);
  EXPECT_EQ(H.quantile(0.5), 16); // First value with cumulative >= half.
  EXPECT_EQ(H.quantile(1.0), 31);
}

TEST(Histogram, QuantileErrorBounded) {
  Histogram H;
  for (int64_t V = 1; V <= 100000; ++V)
    H.record(V);
  // Log-bucketed: quantiles land within one sub-bucket (1/16) below the
  // true value, clamped to the observed range.
  for (double Q : {0.5, 0.95, 0.99}) {
    int64_t True = static_cast<int64_t>(Q * 100000);
    int64_t Got = H.quantile(Q);
    EXPECT_LE(Got, True);
    EXPECT_GE(Got, True - True / 8) << "q=" << Q;
  }
  EXPECT_EQ(H.quantile(1.0) <= 100000, true);
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  Histogram A, B, Both;
  for (int64_t V = 0; V < 1000; V += 2) {
    A.record(V);
    Both.record(V);
  }
  for (int64_t V = 1; V < 1000; V += 2) {
    B.record(V);
    Both.record(V);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), Both.count());
  EXPECT_EQ(A.sum(), Both.sum());
  EXPECT_EQ(A.quantile(0.5), Both.quantile(0.5));
  EXPECT_EQ(A.str(), Both.str());
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram H;
  H.record(-5);
  EXPECT_EQ(H.count(), 1);
  EXPECT_EQ(H.min(), 0);
}

TEST(MetricsSnapshot, JsonAndPrometheus) {
  MetricsSnapshot S;
  S.Counters["cache.hits"] = 3;
  S.Counters["driver.inputs"] = 7;
  Histogram H;
  H.record(100);
  H.record(200);
  S.addHistogram("compile.wall_ns", H);

  std::string J = S.json();
  EXPECT_TRUE(structurallyValidJson(J));
  EXPECT_NE(J.find("\"cache.hits\":3"), std::string::npos);
  EXPECT_NE(J.find("\"compile.wall_ns\""), std::string::npos);
  EXPECT_NE(J.find("\"count\":2"), std::string::npos);

  std::string P = S.prometheus();
  EXPECT_NE(P.find("# TYPE gca_cache_hits counter"), std::string::npos);
  EXPECT_NE(P.find("gca_cache_hits 3"), std::string::npos);
  EXPECT_NE(P.find("# TYPE gca_compile_wall_ns summary"), std::string::npos);
  EXPECT_NE(P.find("gca_compile_wall_ns{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(P.find("gca_compile_wall_ns_count 2"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// TraceCollector
//===----------------------------------------------------------------------===//

TEST(Trace, DisabledEmissionIsDropped) {
  TraceCollector &C = TraceCollector::instance();
  ASSERT_FALSE(C.enabled());
  C.beginSpan("x", "t");
  C.endSpan();
  C.instant("y", "t");
  C.counter("z", "t", 1);
  { TraceSpan S("w", "t"); }
  EXPECT_EQ(C.eventCount(), 0u);
}

TEST(Trace, DisabledFastPathIsCheap) {
  // The contract is "no measurable overhead when disabled": emitting into a
  // disabled collector must be within noise of a bare loop. Bound it
  // generously (10x a relaxed atomic counter loop) so the test never flakes
  // on a loaded machine while still catching an accidental lock or
  // allocation on the fast path.
  TraceCollector &C = TraceCollector::instance();
  ASSERT_FALSE(C.enabled());
  constexpr int N = 1000000;
  std::atomic<uint64_t> Sink{0};
  auto T0 = std::chrono::steady_clock::now();
  for (int I = 0; I != N; ++I)
    Sink.fetch_add(1, std::memory_order_relaxed);
  auto T1 = std::chrono::steady_clock::now();
  for (int I = 0; I != N; ++I)
    C.counter("hot", "t", I);
  auto T2 = std::chrono::steady_clock::now();
  double Base = std::chrono::duration<double>(T1 - T0).count();
  double Traced = std::chrono::duration<double>(T2 - T1).count();
  EXPECT_EQ(C.eventCount(), 0u);
  EXPECT_LT(Traced, Base * 10 + 0.01)
      << "disabled-path emission too slow: " << Traced << "s vs " << Base
      << "s baseline";
}

TEST(Trace, ExportStructure) {
  TraceCollector &C = TraceCollector::instance();
  C.enable();
  C.setThreadName("main");
  C.beginSpan("outer", "test", {{"k", "v"}, {"n", 7}});
  C.instant("ping", "test");
  C.counter("gauge", "test", 42);
  C.endSpan();
  C.disable();

  std::string J = C.exportChromeJson();
  EXPECT_TRUE(structurallyValidJson(J));
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(J.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(J.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(J.find("\"k\":\"v\""), std::string::npos);
  EXPECT_NE(J.find("\"n\":7"), std::string::npos);
}

TEST(Trace, RedactedExportIsDeterministic) {
  TraceCollector &C = TraceCollector::instance();
  auto Run = [&C] {
    C.enable();
    C.setThreadName("main");
    for (int I = 0; I != 5; ++I) {
      C.beginSpan("span", "test", {{"i", I}});
      C.instant("mark", "test");
      C.endSpan();
    }
    C.disable();
    TraceCollector::ExportOptions O;
    O.RedactTimes = true;
    return C.exportChromeJson(O);
  };
  std::string First = Run();
  std::string Second = Run();
  EXPECT_EQ(First, Second);
  EXPECT_NE(First.find("\"ts\":0.000"), std::string::npos);
}

TEST(Trace, ArgStringsAreEscaped) {
  TraceCollector &C = TraceCollector::instance();
  C.enable();
  C.instant("evil", "test", {{"file", "a\"b\\c.hpf"}});
  C.disable();
  std::string J = C.exportChromeJson();
  EXPECT_TRUE(structurallyValidJson(J));
  EXPECT_NE(J.find("a\\\"b\\\\c.hpf"), std::string::npos);
}

TEST(Trace, EightWorkerLanesNoCorruption) {
  TraceCollector &C = TraceCollector::instance();
  C.enable();
  C.setThreadName("main");
  {
    ThreadPool Pool(8, "lanetest");
    for (int I = 0; I != 64; ++I)
      Pool.async([&C, I] {
        TraceSpan S("work", "test", {{"i", I}});
        C.instant("tick", "test");
      });
    Pool.wait();
  } // Workers joined: the collector is quiescent.
  C.disable();

  // One lane per worker, registered eagerly at thread start — present even
  // if the scheduler starved some workers of tasks.
  EXPECT_EQ(C.laneCountWithPrefix("lanetest-"), 8u);

  std::string J = C.exportChromeJson();
  EXPECT_TRUE(structurallyValidJson(J));
  // No interleaving corruption: every B has its E, every lane balances.
  EXPECT_EQ(countOccurrences(J, "\"ph\":\"B\""),
            countOccurrences(J, "\"ph\":\"E\""));
  EXPECT_EQ(countOccurrences(J, "\"name\":\"tick\""), 64u);
  for (int W = 0; W != 8; ++W)
    EXPECT_NE(J.find("\"name\":\"lanetest-" + std::to_string(W) + "\""),
              std::string::npos);
}

//===----------------------------------------------------------------------===//
// Placement decision log
//===----------------------------------------------------------------------===//

TEST(DecisionLog, EveryEntryExplained) {
  CompileOptions Opts;
  Opts.Params["n"] = 16;
  Opts.Params["nsteps"] = 2;
  CompileResult R = compileSource(figure1Workload().Source, Opts);
  ASSERT_TRUE(R.Ok) << R.Errors;
  for (const RoutineResult &RR : R.Routines) {
    const DecisionLog &Log = RR.Plan.Decisions;
    ASSERT_FALSE(RR.Plan.Entries.empty());
    ASSERT_FALSE(Log.empty());
    for (const CommEntry &E : RR.Plan.Entries) {
      int Detected = 0, Ranged = 0, Outcomes = 0;
      for (const DecisionEvent &D : Log) {
        if (D.EntryId != E.Id)
          continue;
        Detected += D.Kind == DecisionKind::Detected;
        Ranged += D.Kind == DecisionKind::RangeComputed;
        Outcomes += D.Kind == DecisionKind::RedundancyEliminated ||
                    D.Kind == DecisionKind::CombinedIntoGroup;
      }
      EXPECT_EQ(Detected, 1) << "entry " << E.Id;
      EXPECT_EQ(Ranged, 1) << "entry " << E.Id;
      // Every entry ends somewhere: in a group or folded into a subsumer.
      EXPECT_GE(Outcomes, 1) << "entry " << E.Id;
    }
    // Detection precedes ranges, ranges precede outcomes, and every placed
    // group reports its final position.
    EXPECT_EQ(Log.front().Kind, DecisionKind::Detected);
    int GroupPlaced = 0;
    for (const DecisionEvent &D : Log)
      GroupPlaced += D.Kind == DecisionKind::GroupPlaced;
    EXPECT_EQ(GroupPlaced, static_cast<int>(RR.Plan.Groups.size()));
    // The rendered log is non-empty and line-per-event.
    std::string Text = RR.Plan.decisionsStr();
    EXPECT_EQ(countOccurrences(Text, "\n"), Log.size());
  }
}

TEST(DecisionLog, DeterministicAcrossRuns) {
  CompileOptions Opts;
  Opts.Params["n"] = 16;
  Opts.Params["nsteps"] = 2;
  CompileResult A = compileSource(figure4Workload().Source, Opts);
  CompileResult B = compileSource(figure4Workload().Source, Opts);
  ASSERT_TRUE(A.Ok && B.Ok);
  ASSERT_EQ(A.Routines.size(), B.Routines.size());
  for (size_t I = 0; I != A.Routines.size(); ++I)
    EXPECT_EQ(A.Routines[I].Plan.decisionsStr(),
              B.Routines[I].Plan.decisionsStr());
}
