//===- tests/test_collective.cpp - collective lowering tests --------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
//
// The collective algorithm library and the lowering pass: delivery proofs
// for every algorithm (each operation's contract holds at pow2, non-pow2,
// and hierarchical rank counts), selector optimality properties, the
// machine-profile registry, exact parity of the direct exchange with the
// monolithic shift cost, decision-log bookkeeping, annotated listings, and
// the lowered-vs-monolithic simulation wins the PR claims.
//
//===----------------------------------------------------------------------===//

#include "driver/Compile.h"
#include "lower/Lower.h"
#include "lower/Schedule.h"
#include "runtime/Collective.h"
#include "runtime/CostModel.h"
#include "runtime/Simulate.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace gca;

namespace {

RoutineResult analyzed(const std::string &Src, Strategy S, int64_t N,
                       const char *Machine = "sp2", int Procs = 16) {
  CompileOptions Opts;
  Opts.Placement.Strat = S;
  Opts.Placement.NumProcs = Procs;
  Opts.Machine = Machine;
  Opts.Params["n"] = N;
  Opts.Params["nsteps"] = 2;
  static std::vector<std::unique_ptr<CompileResult>> Keep;
  Keep.push_back(std::make_unique<CompileResult>(compileSource(Src, Opts)));
  EXPECT_TRUE(Keep.back()->Ok) << Keep.back()->Errors;
  return std::move(Keep.back()->Routines[0]);
}

} // namespace

//===----------------------------------------------------------------------===//
// Machine-profile registry.
//===----------------------------------------------------------------------===//

TEST(MachineRegistry, ByNameRoundTrips) {
  for (const std::string &Name : MachineProfile::listProfiles()) {
    auto M = MachineProfile::byName(Name);
    ASSERT_TRUE(M.has_value()) << Name;
    EXPECT_FALSE(M->Name.empty());
  }
  EXPECT_FALSE(MachineProfile::byName("paragon").has_value());
  // Case-insensitive, and the legacy profiles match their constructors.
  EXPECT_EQ(MachineProfile::byName("SP2")->Name, MachineProfile::sp2().Name);
  EXPECT_EQ(MachineProfile::byName("now")->PeakBandwidth,
            MachineProfile::now().PeakBandwidth);
}

TEST(MachineRegistry, HierarchicalProfilesHaveNodeStructure) {
  auto F = MachineProfile::byName("fattree");
  auto G = MachineProfile::byName("gpu");
  ASSERT_TRUE(F && G);
  EXPECT_GT(F->RanksPerNode, 1);
  EXPECT_GT(G->RanksPerNode, 1);
  // Cross-node messages must cost strictly more than intra-node ones.
  EXPECT_GT(G->wireTime(4096, 0, G->RanksPerNode),
            G->wireTime(4096, 0, 1));
}

//===----------------------------------------------------------------------===//
// Delivery proofs: every algorithm delivers all bytes, for every operation
// it implements, across pow2, non-pow2, and hierarchical configurations.
//===----------------------------------------------------------------------===//

TEST(Collective, EveryAlgorithmDeliversEverywhere) {
  for (const char *Prof : {"sp2", "gpu"}) {
    MachineProfile M = *MachineProfile::byName(Prof);
    for (CollOp Op : {CollOp::Allreduce, CollOp::Bcast, CollOp::Alltoallv})
      for (CollAlgo Algo : candidateAlgos(Op))
        for (int P : {1, 2, 3, 4, 5, 8, 12, 16, 25}) {
          std::optional<CollSchedule> S =
              buildSchedule(Op, Algo, P, 4096, M);
          if (!S)
            continue; // Undefined combination (e.g. halving at non-pow2).
          std::string Err;
          EXPECT_TRUE(verifyDelivery(*S, &Err))
              << Prof << " " << collOpName(Op) << "/" << collAlgoName(Algo)
              << " P=" << P << ": " << Err;
        }
  }
}

TEST(Collective, ExchangeDeliversAllDirections) {
  for (int P : {2, 3, 8})
    for (size_t D : {size_t(1), size_t(2), size_t(4)})
      for (CollAlgo Algo : {CollAlgo::Direct, CollAlgo::Sequential}) {
        CollSchedule S =
            exchangeSchedule(P, std::vector<double>(D, 512.0), Algo);
        std::string Err;
        EXPECT_TRUE(verifyDelivery(S, &Err))
            << collAlgoName(Algo) << " P=" << P << " D=" << D << ": "
            << Err;
      }
}

TEST(Collective, BcastDeliversFromNonzeroRoot) {
  MachineProfile M = *MachineProfile::byName("sp2");
  for (CollAlgo Algo : candidateAlgos(CollOp::Bcast))
    for (int Root : {1, 7}) {
      std::optional<CollSchedule> S =
          buildSchedule(CollOp::Bcast, Algo, 8, 2048, M, Root);
      if (!S)
        continue;
      std::string Err;
      EXPECT_TRUE(verifyDelivery(*S, &Err))
          << collAlgoName(Algo) << " root=" << Root << ": " << Err;
    }
}

//===----------------------------------------------------------------------===//
// Selector properties.
//===----------------------------------------------------------------------===//

TEST(Collective, SelectorNeverCostlierThanRing) {
  for (const char *Prof : {"sp2", "fattree", "gpu"}) {
    MachineProfile M = *MachineProfile::byName(Prof);
    for (CollOp Op : {CollOp::Allreduce, CollOp::Bcast})
      for (int P : {4, 16, 25, 60})
        for (double Bytes : {64.0, 65536.0, 1048576.0}) {
          auto Sel = selectAlgorithm(Op, P, Bytes, M);
          ASSERT_TRUE(Sel.has_value());
          auto Ring = buildSchedule(Op, CollAlgo::Ring, P, Bytes, M);
          ASSERT_TRUE(Ring.has_value());
          CollCost RC = scheduleTime(*Ring, M, collOpPacked(Op));
          EXPECT_LE(Sel->Cost.Time, RC.Time * (1 + 1e-12))
              << Prof << " " << collOpName(Op) << " P=" << P
              << " bytes=" << Bytes;
        }
  }
}

TEST(Collective, SelectorIsDeterministic) {
  MachineProfile M = *MachineProfile::byName("gpu");
  for (int Rep = 0; Rep != 3; ++Rep) {
    auto A = selectAlgorithm(CollOp::Allreduce, 60, 8192, M);
    auto B = selectAlgorithm(CollOp::Allreduce, 60, 8192, M);
    ASSERT_TRUE(A && B);
    EXPECT_EQ(A->Algo, B->Algo);
    EXPECT_EQ(A->Cost.Time, B->Cost.Time);
  }
}

TEST(Collective, BineWinsOnHierarchicalNonPow2) {
  // 60 ranks on the 8-per-node GPU profile: recursive doubling pays the
  // non-pow2 fold across the slow inter-node links; the Bine-style tree
  // keeps the fold inside nodes and crosses fewer times. The selector must
  // notice.
  MachineProfile M = *MachineProfile::byName("gpu");
  auto Bine = buildSchedule(CollOp::Allreduce, CollAlgo::Bine, 60, 4096, M);
  auto RD = buildSchedule(CollOp::Allreduce, CollAlgo::RecursiveDoubling, 60,
                          4096, M);
  ASSERT_TRUE(Bine && RD);
  CollCost BC = scheduleTime(*Bine, M, false);
  CollCost RC = scheduleTime(*RD, M, false);
  EXPECT_LT(BC.CrossRounds, RC.CrossRounds);
  EXPECT_LT(BC.Time, RC.Time);
  auto Sel = selectAlgorithm(CollOp::Allreduce, 60, 4096, M);
  ASSERT_TRUE(Sel.has_value());
  EXPECT_EQ(Sel->Algo, CollAlgo::Bine);
}

TEST(Collective, DirectExchangeMatchesMonolithicShiftCost) {
  // A singleton shift slot lowered as a one-round direct exchange must cost
  // exactly what the monolithic model charges (messageTime + pack both
  // ways): the lowering never regresses un-fusable shifts.
  RoutineResult RR =
      analyzed(shallowWorkload().Source, Strategy::Global, 64, "sp2", 25);
  MachineProfile M = *MachineProfile::byName("sp2");
  std::vector<int64_t> Env(RR.Ctx->R.loopVarNames().size(), 0);
  bool Checked = false;
  for (const CommGroup &G : RR.Plan.Groups) {
    if (G.Kind != CommKind::Shift)
      continue;
    const GroupLowering *GL = RR.Lowering.group(G.Id);
    ASSERT_NE(GL, nullptr);
    if (GL->Phase >= 0)
      continue; // Fused phases intentionally beat the monolithic sum.
    double Bytes = groupPayloadBytes(*RR.Ctx, G, 25, Env);
    CollSchedule S = loweredSchedule(*GL, M, Bytes);
    CollCost C = scheduleTime(S, M, collOpPacked(GL->Op));
    CommCost Mono = groupCost(*RR.Ctx, G, M, 25, Env);
    EXPECT_NEAR(C.Time, Mono.Time, 1e-12 + 1e-9 * Mono.Time)
        << "group " << G.Id;
    Checked = true;
  }
  EXPECT_TRUE(Checked);
}

//===----------------------------------------------------------------------===//
// Microbenchmark discipline.
//===----------------------------------------------------------------------===//

TEST(Collective, MicrobenchIsSeededAndOrdered) {
  MachineProfile M = *MachineProfile::byName("sp2");
  auto S = buildSchedule(CollOp::Allreduce, CollAlgo::Ring, 8, 65536, M);
  ASSERT_TRUE(S.has_value());
  MicrobenchStats A = microbench(*S, M, 3, 10, 42);
  MicrobenchStats B = microbench(*S, M, 3, 10, 42);
  EXPECT_EQ(A.MinSec, B.MinSec);
  EXPECT_EQ(A.MedSec, B.MedSec);
  EXPECT_EQ(A.MaxSec, B.MaxSec);
  EXPECT_EQ(A.Iters, 10);
  EXPECT_LE(A.MinSec, A.MedSec);
  EXPECT_LE(A.MedSec, A.AvgSec * (1 + 1e-9) + A.MaxSec * 1e-9);
  EXPECT_LE(A.AvgSec, A.MaxSec);
  // A different seed perturbs the jitter but not the scale.
  MicrobenchStats C = microbench(*S, M, 3, 10, 7);
  EXPECT_NE(A.MedSec, C.MedSec);
  EXPECT_NEAR(A.MedSec, C.MedSec, 0.3 * A.MedSec);
}

//===----------------------------------------------------------------------===//
// The lowering pass: classification, decision log, annotations.
//===----------------------------------------------------------------------===//

TEST(Lowering, EveryGroupGetsExactlyOneDecision) {
  for (const Workload *W : allWorkloads()) {
    CompileOptions Opts;
    Opts.Placement.Strat = Strategy::Global;
    CompileResult R = compileSource(W->Source, Opts);
    ASSERT_TRUE(R.Ok) << W->Name << ": " << R.Errors;
    EXPECT_TRUE(R.VerifyOk) << W->Name; // IrVerify checks the invariant too.
    for (const RoutineResult &RR : R.Routines) {
      std::vector<int> Seen(RR.Plan.Groups.size(), 0);
      for (const DecisionEvent &E : RR.Plan.Decisions)
        if (E.Kind == DecisionKind::LoweredAs)
          ++Seen[E.OtherId];
      for (size_t I = 0; I != Seen.size(); ++I)
        EXPECT_EQ(Seen[I], 1) << W->Name << " group " << I;
      // And the lowering table itself is dense over the groups.
      for (const CommGroup &G : RR.Plan.Groups)
        EXPECT_NE(RR.Lowering.group(G.Id), nullptr)
            << W->Name << " group " << G.Id;
    }
  }
}

TEST(Lowering, ClassifierMapsKindsToOps) {
  RoutineResult RR =
      analyzed(gravityWorkload().Source, Strategy::Global, 64, "sp2", 25);
  bool SawExchange = false, SawAllreduce = false;
  for (const CommGroup &G : RR.Plan.Groups) {
    const GroupLowering *GL = RR.Lowering.group(G.Id);
    ASSERT_NE(GL, nullptr);
    switch (G.Kind) {
    case CommKind::Shift:
      EXPECT_EQ(GL->Op, CollOp::NeighborExchange);
      SawExchange = true;
      break;
    case CommKind::Reduce:
      EXPECT_EQ(GL->Op, CollOp::Allreduce);
      SawAllreduce = true;
      break;
    case CommKind::Bcast:
      EXPECT_EQ(GL->Op, CollOp::Bcast);
      break;
    default:
      break;
    }
  }
  EXPECT_TRUE(SawExchange);
  EXPECT_TRUE(SawAllreduce);
}

TEST(Lowering, ReductionProcsComeFromGrid) {
  // gravity's SUM reductions reduce over one dimension of the 5x5 grid, so
  // the collective spans 5 ranks, not 25.
  RoutineResult RR =
      analyzed(gravityWorkload().Source, Strategy::Global, 64, "sp2", 25);
  bool Checked = false;
  for (const CommGroup &G : RR.Plan.Groups) {
    if (G.Kind != CommKind::Reduce)
      continue;
    const GroupLowering *GL = RR.Lowering.group(G.Id);
    ASSERT_NE(GL, nullptr);
    EXPECT_EQ(GL->Procs, 5);
    Checked = true;
  }
  EXPECT_TRUE(Checked);
}

TEST(Lowering, AnnotatedListingShowsAlgorithms) {
  RoutineResult RR =
      analyzed(gravityWorkload().Source, Strategy::Global, 64, "sp2", 25);
  ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
  std::string Plain = Prog.listing(*RR.Ctx, RR.Plan);
  std::string Ann = Prog.listing(*RR.Ctx, RR.Plan, &RR.Lowering);
  EXPECT_EQ(Plain.find(" -> "), std::string::npos);
  EXPECT_NE(Ann.find("COMM NNC"), std::string::npos);
  EXPECT_NE(Ann.find(" -> neighbor-exchange/"), std::string::npos) << Ann;
  EXPECT_NE(Ann.find(" -> allreduce/"), std::string::npos) << Ann;
  // The fused slot advertises how many directions ride the phase.
  EXPECT_NE(Ann.find("fused="), std::string::npos) << Ann;
}

TEST(Lowering, GoldenAnnotatedListingGravitySlice) {
  // The four fusable NNC shifts of gravity's force routine share one slot;
  // the lowering posts them as one direct multi-direction exchange and the
  // listing says so on each member.
  RoutineResult RR =
      analyzed(gravityWorkload().Source, Strategy::Global, 64, "sp2", 25);
  ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
  std::string Ann = Prog.listing(*RR.Ctx, RR.Plan, &RR.Lowering);
  EXPECT_NE(Ann.find("-> neighbor-exchange/direct fused=4"),
            std::string::npos)
      << Ann;
}

TEST(Lowering, SelectionIsMachineSensitive) {
  // Identical source, different profile: decisions must record the profile
  // the pass priced (and the pipeline fingerprint keeps them apart in the
  // cache).
  RoutineResult Sp2 =
      analyzed(gravityWorkload().Source, Strategy::Global, 64, "sp2", 25);
  RoutineResult Gpu =
      analyzed(gravityWorkload().Source, Strategy::Global, 64, "gpu", 25);
  EXPECT_EQ(Sp2.Lowering.MachineName, "SP2");
  EXPECT_EQ(Gpu.Lowering.MachineName, "GPU");
  ASSERT_EQ(Sp2.Lowering.Groups.size(), Gpu.Lowering.Groups.size());
}

//===----------------------------------------------------------------------===//
// Lowered simulation: the PR's acceptance claim.
//===----------------------------------------------------------------------===//

namespace {

std::pair<double, double> commTimes(const Workload &W, int64_t N,
                                    int64_t Steps, int Procs) {
  CompileOptions Opts;
  Opts.Placement.Strat = Strategy::Global;
  Opts.Placement.NumProcs = Procs;
  Opts.Params["n"] = N;
  Opts.Params["nsteps"] = Steps;
  CompileResult R = compileSource(W.Source, Opts);
  EXPECT_TRUE(R.Ok) << R.Errors;
  MachineProfile M = *MachineProfile::byName("sp2");
  double Mono = 0, Low = 0;
  for (const RoutineResult &RR : R.Routines) {
    ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
    Mono += simulate(*RR.Ctx, RR.Plan, Prog, M, Procs).CommTime;
    Low += simulate(*RR.Ctx, RR.Plan, Prog, M, Procs, &RR.Lowering).CommTime;
  }
  return {Mono, Low};
}

} // namespace

TEST(LoweredSim, BeatsMonolithicOnFigure10Workloads) {
  int Wins = 0;
  for (const Workload *W : {&shallowWorkload(), &gravityWorkload(),
                            &trimeshWorkload(), &hydfloWorkload()}) {
    auto [Mono, Low] = commTimes(*W, 64, 2, 25);
    EXPECT_GT(Mono, 0) << W->Name;
    EXPECT_GT(Low, 0) << W->Name;
    if (Low < Mono)
      ++Wins;
  }
  EXPECT_GE(Wins, 3);
}

TEST(LoweredSim, NeverWorseThanMonolithicHere) {
  // On these workloads the lowering is conservative: singleton exchanges are
  // exact-parity and fused/collective slots only improve, so lowered comm
  // time must never exceed monolithic.
  for (const Workload *W : {&shallowWorkload(), &gravityWorkload(),
                            &trimeshWorkload(), &hydfloWorkload()}) {
    auto [Mono, Low] = commTimes(*W, 64, 2, 25);
    EXPECT_LE(Low, Mono * (1 + 1e-9)) << W->Name;
  }
}
