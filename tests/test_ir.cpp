//===- tests/test_ir.cpp - AST / builder / printer tests ------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace gca;

TEST(ArrayDecl, BoundsAndExtents) {
  Routine R("r");
  int Id = R.addArrayBounds("a", {0, 1}, {17, 8}, {DistKind::Block,
                                                    DistKind::Star});
  const ArrayDecl &A = R.array(Id);
  EXPECT_EQ(A.rank(), 2u);
  EXPECT_EQ(A.extent(0), 18);
  EXPECT_EQ(A.extent(1), 8);
  EXPECT_EQ(A.numElems(), 18 * 8);
  EXPECT_TRUE(A.isDistributed());
}

TEST(ArrayDecl, ReplicatedArray) {
  Routine R("r");
  int Id = R.addArray("a", {4, 4}, {DistKind::Star, DistKind::Star});
  EXPECT_FALSE(R.array(Id).isDistributed());
  EXPECT_EQ(templateSigOf(R.array(Id)).rank(), 0u);
}

TEST(TemplateSig, EqualityIsAlignment) {
  Routine R("r");
  int A = R.addArray("a", {16, 16}, {DistKind::Block, DistKind::Block});
  int B = R.addArray("b", {8, 16, 16},
                     {DistKind::Star, DistKind::Block, DistKind::Block});
  int C = R.addArray("c", {16, 32}, {DistKind::Block, DistKind::Block});
  // A 3-d array with a collapsed dim aligns with a 2-d one of matching
  // distributed extents; different extents do not align.
  EXPECT_TRUE(templateSigOf(R.array(A)) == templateSigOf(R.array(B)));
  EXPECT_FALSE(templateSigOf(R.array(A)) == templateSigOf(R.array(C)));
}

TEST(LoopStmt, ConstTripCount) {
  Routine R("r");
  int V = R.addLoopVar("i");
  LoopStmt *L1 = R.newLoop(V, AffineExpr::constant(2),
                           AffineExpr::constant(10), 2);
  EXPECT_EQ(L1->constTripCount(), 5);
  LoopStmt *L2 = R.newLoop(V, AffineExpr::constant(5),
                           AffineExpr::constant(4), 1);
  EXPECT_EQ(L2->constTripCount(), 0);
  LoopStmt *L3 = R.newLoop(V, AffineExpr::constant(1), AffineExpr::var(V), 1);
  EXPECT_EQ(L3->constTripCount(), -1);
}

TEST(Builder, StructuredConstruction) {
  Routine R("demo");
  RoutineBuilder B(R);
  B.array("a", {16}, {DistKind::Block}).array("b", {16}, {DistKind::Block});
  B.scalar("s");

  B.assignLit(B.whole("a"), 1.0);
  B.beginLoop("i", B.c(2), B.c(16));
  B.assign(B.ref("b", {B.v("i")}), {B.ref("a", {B.v("i") - 1})});
  B.endLoop();
  B.beginIf("cond");
  B.assignLit(B.whole("b"), 0.0);
  B.beginElse();
  B.sumInto("s", B.whole("a"));
  B.endIf();
  EXPECT_TRUE(B.balanced());

  ASSERT_EQ(R.body().size(), 3u);
  EXPECT_EQ(R.body()[0]->kind(), StmtKind::Assign);
  EXPECT_EQ(R.body()[1]->kind(), StmtKind::Loop);
  EXPECT_EQ(R.body()[2]->kind(), StmtKind::If);

  const auto *L = cast<LoopStmt>(R.body()[1]);
  ASSERT_EQ(L->body().size(), 1u);
  const auto *S = cast<AssignStmt>(L->body()[0]);
  EXPECT_EQ(S->lhs().ArrayId, R.findArray("b"));
  EXPECT_TRUE(S->lhs().Subs[0].isElem());

  const auto *I = cast<IfStmt>(R.body()[2]);
  EXPECT_EQ(I->thenBody().size(), 1u);
  EXPECT_EQ(I->elseBody().size(), 1u);
  const auto *Sum = cast<AssignStmt>(I->elseBody()[0]);
  EXPECT_TRUE(Sum->lhsIsScalar());
  EXPECT_EQ(Sum->rhs()[0].K, RhsTerm::Kind::SumReduce);
}

TEST(Builder, LoopVarScoping) {
  Routine R("demo");
  RoutineBuilder B(R);
  B.array("a", {8, 8}, {DistKind::Block, DistKind::Block});
  B.beginLoop("i", B.c(1), B.c(8));
  AffineExpr Outer = B.v("i");
  B.beginLoop("i", B.c(1), B.c(4)); // Shadows the outer i.
  AffineExpr Inner = B.v("i");
  B.endLoop();
  B.endLoop();
  EXPECT_FALSE(Outer == Inner);
}

TEST(Builder, WholeRefCoversDeclaredBounds) {
  Routine R("demo");
  RoutineBuilder B(R);
  B.arrayBounds("g", {0, 1}, {9, 8}, {DistKind::Block, DistKind::Block});
  ArrayRef W = B.whole("g");
  ASSERT_EQ(W.Subs.size(), 2u);
  EXPECT_TRUE(W.Subs[0].isRange());
  EXPECT_EQ(W.Subs[0].Lo.constValue(), 0);
  EXPECT_EQ(W.Subs[0].Hi.constValue(), 9);
  EXPECT_EQ(W.Subs[1].Lo.constValue(), 1);
}

TEST(Routine, ForEachStmtVisitsAll) {
  Routine R("demo");
  RoutineBuilder B(R);
  B.array("a", {8}, {DistKind::Block});
  B.assignLit(B.whole("a"), 0);
  B.beginLoop("i", B.c(1), B.c(8));
  B.assignLit(B.ref("a", {B.v("i")}), 1);
  B.beginIf("c");
  B.assignLit(B.ref("a", {B.v("i")}), 2);
  B.endIf();
  B.endLoop();
  int Count = 0;
  R.forEachStmt([&](Stmt *) { ++Count; });
  EXPECT_EQ(Count, 5); // assign, loop, assign, if, assign.
}

TEST(Printer, RoundTripText) {
  Routine R("demo");
  RoutineBuilder B(R);
  B.array("a", {16, 16}, {DistKind::Block, DistKind::Star});
  B.beginLoop("i", B.c(2), B.c(16));
  B.assign(B.ref("a", {B.v("i"), B.c(3)}),
           {B.ref("a", {B.v("i") - 1, B.c(3)})});
  B.endLoop();
  std::string Text = printRoutine(R);
  EXPECT_NE(Text.find("real a(16,16) distribute (BLOCK,*)"),
            std::string::npos);
  EXPECT_NE(Text.find("do i = 2, 16"), std::string::npos);
  EXPECT_NE(Text.find("a(i,3) = a(i-1,3)"), std::string::npos);
}

TEST(Casting, IsaDynCast) {
  Routine R("demo");
  RoutineBuilder B(R);
  B.array("a", {8}, {DistKind::Block});
  Stmt *S = B.assignLit(B.whole("a"), 1);
  EXPECT_TRUE(isa<AssignStmt>(S));
  EXPECT_FALSE(isa<LoopStmt>(S));
  EXPECT_NE(dyn_cast<AssignStmt>(S), nullptr);
  EXPECT_EQ(dyn_cast<IfStmt>(S), nullptr);
}
