//===- tests/test_scalarize.cpp - scalarizer tests ------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Printer.h"
#include "xform/Scalarize.h"

#include <gtest/gtest.h>

using namespace gca;

static std::unique_ptr<Program> parseAndScalarize(const std::string &Src) {
  DiagEngine D;
  auto P = parseProgram(Src, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  scalarizeProgram(*P, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  return P;
}

TEST(Scalarize, WholeArrayBecomesLoopNest) {
  auto P = parseAndScalarize(R"(
program s
param n = 6
real a(n,n) distribute (block,block)
begin
  a = 3
end
)");
  const Routine &R = *P->Routines[0];
  ASSERT_EQ(R.body().size(), 1u);
  const auto *L0 = dyn_cast<LoopStmt>(R.body()[0]);
  ASSERT_NE(L0, nullptr);
  const auto *L1 = dyn_cast<LoopStmt>(L0->body()[0]);
  ASSERT_NE(L1, nullptr);
  const auto *S = dyn_cast<AssignStmt>(L1->body()[0]);
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->lhs().Subs[0].isElem());
  EXPECT_TRUE(S->lhs().Subs[1].isElem());
  EXPECT_EQ(L0->constTripCount(), 6);
}

TEST(Scalarize, ShiftOffsetsPreserved) {
  auto P = parseAndScalarize(R"(
program s
param n = 8
real a(n) distribute (block)
real c(n) distribute (block)
begin
  c(2:n) = a(1:n-1)
end
)");
  const Routine &R = *P->Routines[0];
  const auto *L = cast<LoopStmt>(R.body()[0]);
  EXPECT_EQ(L->lo().constValue(), 2);
  EXPECT_EQ(L->hi().constValue(), 8);
  const auto *S = cast<AssignStmt>(L->body()[0]);
  // c(i) = a(i-1): constant offset -1 between the RHS and LHS subscripts.
  int64_t Delta;
  ASSERT_TRUE(
      S->rhs()[0].Ref.Subs[0].Lo.constDifference(S->lhs().Subs[0].Lo, Delta));
  EXPECT_EQ(Delta, -1);
}

TEST(Scalarize, StridedSectionNormalized) {
  auto P = parseAndScalarize(R"(
program s
param n = 16
real b(n,n) distribute (block,*)
begin
  b(:,1:n:2) = 1
end
)");
  const Routine &R = *P->Routines[0];
  const auto *L0 = cast<LoopStmt>(R.body()[0]);
  const auto *L1 = cast<LoopStmt>(L0->body()[0]);
  // Dim 1 is direct (step 1); dim 2 is normalized 0..7 with subscript
  // 2*t + 1.
  EXPECT_EQ(L0->constTripCount(), 16);
  EXPECT_EQ(L1->lo().constValue(), 0);
  EXPECT_EQ(L1->constTripCount(), 8);
  const auto *S = cast<AssignStmt>(L1->body()[0]);
  EXPECT_EQ(S->lhs().Subs[1].Lo.coeff(L1->var()), 2);
  EXPECT_EQ(S->lhs().Subs[1].Lo.constPart(), 1);
}

TEST(Scalarize, ScalarAndReductionLeftIntact) {
  auto P = parseAndScalarize(R"(
program s
param n = 8
real g(n,n) distribute (block,block)
real s
begin
  s = sum(g(1,1:n))
end
)");
  const Routine &R = *P->Routines[0];
  ASSERT_EQ(R.body().size(), 1u);
  const auto *S = dyn_cast<AssignStmt>(R.body()[0]);
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->lhsIsScalar());
  EXPECT_TRUE(S->rhs()[0].Ref.Subs[1].isRange());
}

TEST(Scalarize, InsideLoopsAndBranches) {
  auto P = parseAndScalarize(R"(
program s
param n = 8
real a(n) distribute (block)
begin
  do t = 1, 3
    if (c) then
      a(1:n) = 2
    end if
  end do
end
)");
  const Routine &R = *P->Routines[0];
  const auto *T = cast<LoopStmt>(R.body()[0]);
  const auto *I = cast<IfStmt>(T->body()[0]);
  EXPECT_EQ(I->thenBody()[0]->kind(), StmtKind::Loop);
}

TEST(Scalarize, NonconformingDiagnosed) {
  DiagEngine D;
  auto P = parseProgram(R"(
program s
param n = 8
real a(n,n) distribute (block,block)
real c(n) distribute (block)
begin
  c(1:n) = a(1:n,1:n)
end
)",
                        D);
  ASSERT_FALSE(D.hasErrors());
  scalarizeProgram(*P, D);
  EXPECT_TRUE(D.hasErrors());
  EXPECT_NE(D.str().find("nonconforming"), std::string::npos);
}

TEST(Scalarize, Figure3ColumnsDiffer) {
  // The paper's Figure 3: the F90 source scalarizes into the *separate*
  // loops of column 2 — it is not fused into column 3's form.
  auto P = parseAndScalarize(R"(
program f3
param n = 8
real a(n) distribute (block)
real b(n) distribute (block)
real c(n) distribute (block)
begin
  a = 3
  b = 4
  c(2:n) = a(1:n-1) + b(1:n-1)
end
)");
  const Routine &R = *P->Routines[0];
  ASSERT_EQ(R.body().size(), 3u); // Three separate loop nests.
  for (const Stmt *S : R.body())
    EXPECT_EQ(S->kind(), StmtKind::Loop);
}
