//===- tests/test_pipeline.cpp - Pass pipeline and session tests ----------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
//
// The instrumented pass pipeline of driver/Pipeline.h: determinism of
// parallel batch compilation, the Scalarize x Fuse x Audit x Lint options
// matrix, preservation of frontend warnings, lint-baseline reuse, per-pass
// instrumentation, and dump-after hooks.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "analysis/CommLint.h"
#include "support/ThreadPool.h"
#include "workloads/Synth.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace gca;

namespace {

/// The deterministic fingerprint of one compilation: plans, stats,
/// diagnostics, and counters (timings excluded).
std::string fingerprint(const std::string &Source,
                        const CompileOptions &Opts) {
  Session S(Source, Opts);
  S.run();
  CompileResult R = S.take();
  std::string Out = R.Errors + R.Diagnostics;
  for (const RoutineResult &RR : R.Routines) {
    Out += RR.Plan.str(*RR.R);
    Out += RR.Plan.decisionsStr();
    Out += RR.Plan.Stats.str();
  }
  Out += S.Stats.json();
  return Out;
}

TEST(Pipeline, DeterministicSeriallyAndParallel) {
  std::vector<const Workload *> Ws = allWorkloads();
  CompileOptions Opts;
  Opts.Audit = true;
  Opts.Lint = true;

  // Serial reference, computed twice: same source -> same fingerprint.
  std::vector<std::string> Ref;
  for (const Workload *W : Ws)
    Ref.push_back(fingerprint(W->Source, Opts));
  for (size_t I = 0; I != Ws.size(); ++I)
    EXPECT_EQ(Ref[I], fingerprint(Ws[I]->Source, Opts)) << Ws[I]->Name;

  // Eight-way parallel run over several copies of the suite: every result
  // must be bitwise identical to the serial reference.
  std::vector<std::string> Par(Ws.size() * 4);
  ThreadPool Pool(8);
  for (size_t I = 0; I != Par.size(); ++I)
    Pool.async([&, I] { Par[I] = fingerprint(Ws[I % Ws.size()]->Source, Opts); });
  Pool.wait();
  for (size_t I = 0; I != Par.size(); ++I)
    EXPECT_EQ(Ref[I % Ws.size()], Par[I]) << Ws[I % Ws.size()]->Name;
}

TEST(Pipeline, OptionsMatrixAllSucceed) {
  for (const Workload *W : evaluationWorkloads())
    for (bool Scalarize : {false, true})
      for (bool Fuse : {false, true})
        for (bool Audit : {false, true})
          for (bool Lint : {false, true}) {
            CompileOptions Opts;
            Opts.Scalarize = Scalarize;
            Opts.FuseLoops = Fuse;
            Opts.Audit = Audit;
            Opts.Lint = Lint;
            CompileResult R = compileSource(W->Source, Opts);
            ASSERT_TRUE(R.Ok)
                << W->Name << " scalarize=" << Scalarize << " fuse=" << Fuse
                << " audit=" << Audit << " lint=" << Lint << "\n"
                << R.Errors;
            EXPECT_TRUE(R.AuditOk)
                << W->Name << " scalarize=" << Scalarize << " fuse=" << Fuse
                << "\n"
                << R.Diagnostics;
          }
}

TEST(Pipeline, PassRecordsCoverStandardPipeline) {
  Session S(shallowWorkload().Source, CompileOptions());
  ASSERT_TRUE(S.run());
  std::vector<std::string> Names;
  for (const PassRecord &P : S.Passes)
    Names.push_back(P.Name);
  EXPECT_EQ(Names, (std::vector<std::string>{"parse", "scalarize", "fuse",
                                             "build-context", "placement",
                                             "lower", "audit", "verify",
                                             "lint"}));
  // Counter increments are attributed to the pass that made them.
  for (const PassRecord &P : S.Passes) {
    if (P.Name == "placement")
      EXPECT_EQ(P.Counters.at("placement.entries-detected"), 20);
    else
      EXPECT_FALSE(P.Counters.count("placement.entries-detected")) << P.Name;
  }
  TimeRecord Total = S.Times.total();
  EXPECT_GT(Total.WallSec, 0.0);
  EXPECT_EQ(Total.Invocations, 9);
}

TEST(Pipeline, DumpAfterRecordsSnapshot) {
  CompileOptions Opts;
  Opts.DumpAfter = "scalarize";
  Session S(figure3FusedWorkload().Source, Opts);
  ASSERT_TRUE(S.run());
  ASSERT_EQ(S.Dumps.size(), 1u);
  EXPECT_EQ(S.Dumps[0].first, "scalarize");
  // The scalarized dump has loop nests but no plans yet.
  EXPECT_NE(S.Dumps[0].second.find("do "), std::string::npos);
  EXPECT_EQ(S.Dumps[0].second.find("plan["), std::string::npos);

  CompileOptions All;
  All.DumpAfter = "all";
  Session S2(figure3FusedWorkload().Source, All);
  ASSERT_TRUE(S2.run());
  EXPECT_EQ(S2.Dumps.size(), 9u);
  // After placement the dump carries the plan.
  EXPECT_NE(S2.Dumps[4].second.find("plan["), std::string::npos);
}

TEST(Pipeline, JsonTimeReportHasPassesAndCounters) {
  CompileOptions Opts;
  Opts.Audit = true;
  Session S(shallowWorkload().Source, Opts);
  ASSERT_TRUE(S.run());
  std::string Json = S.timeReportJson();
  for (const char *Key :
       {"\"name\":\"parse\"", "\"name\":\"placement\"", "\"wall_s\":",
        "\"counters\":", "placement.entries-detected", "\"regions\":",
        "\"name\":\"shallow\""})
    EXPECT_NE(Json.find(Key), std::string::npos) << Key << "\n" << Json;
}

//===----------------------------------------------------------------------===//
// Regression: non-error frontend diagnostics reach CompileResult
//===----------------------------------------------------------------------===//

TEST(Pipeline, FrontendWarningsPreserved) {
  // An override that matches no param declaration draws a parser warning.
  CompileOptions Opts;
  Opts.Params["typo"] = 3;
  Opts.Audit = false;
  Opts.Lint = false;
  CompileResult R = compileSource(figure4Workload().Source, Opts);
  ASSERT_TRUE(R.Ok) << R.Errors;
  EXPECT_NE(R.Diagnostics.find("parameter override 'typo=3' does not match"),
            std::string::npos)
      << R.Diagnostics;

  // The old driver cleared the engine before audit/lint, losing the
  // warning; it must now survive alongside lint output.
  Opts.Lint = true;
  R = compileSource(figure4Workload().Source, Opts);
  ASSERT_TRUE(R.Ok) << R.Errors;
  EXPECT_NE(R.Diagnostics.find("parameter override"), std::string::npos)
      << R.Diagnostics;
}

TEST(Pipeline, MatchedOverridesStayQuiet) {
  CompileOptions Opts;
  Opts.Params["n"] = 16;
  Opts.Audit = false;
  CompileResult R = compileSource(figure4Workload().Source, Opts);
  ASSERT_TRUE(R.Ok) << R.Errors;
  EXPECT_EQ(R.Diagnostics, "");
}

//===----------------------------------------------------------------------===//
// Lint baseline reuse
//===----------------------------------------------------------------------===//

TEST(Pipeline, BaselineReuseMatchesFreshBaseline) {
  for (const Workload *W : evaluationWorkloads()) {
    CompileOptions Opts;
    Opts.Audit = false;
    Opts.Lint = true;
    // Through the session: the Orig baseline is computed once per routine
    // and shared between lint and the stats registry.
    Session S(W->Source, Opts);
    ASSERT_TRUE(S.run());
    int64_t BaselineGroups = S.Stats.get("placement.baseline-groups");
    CompileResult R = S.take();

    // By hand: a fresh baseline per routine.
    CompileOptions Plain;
    Plain.Audit = false;
    CompileResult Fresh = compileSource(W->Source, Plain);
    DiagEngine Diags;
    int64_t FreshGroups = 0;
    for (const RoutineResult &RR : Fresh.Routines) {
      PlacementOptions BaseOpts = Plain.Placement;
      BaseOpts.Strat = Strategy::Orig;
      CommPlan Baseline = planCommunication(*RR.Ctx, BaseOpts);
      FreshGroups += Baseline.Stats.totalGroups();
      lintRoutine(*RR.Ctx, RR.Plan, &Baseline, Diags);
    }
    EXPECT_EQ(R.Diagnostics, Diags.str()) << W->Name;
    EXPECT_EQ(BaselineGroups, FreshGroups) << W->Name;
  }
}

//===----------------------------------------------------------------------===//
// Error paths through the wrapper stay intact
//===----------------------------------------------------------------------===//

TEST(Pipeline, ParseErrorsStillFail) {
  CompileResult R = compileSource("program p\nbogus tokens here\n",
                                  CompileOptions());
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Errors.find("error"), std::string::npos);
  EXPECT_TRUE(R.Routines.empty());
}

} // namespace

TEST(Pipeline, PlacementJobsMatrixIsBitwiseIdentical) {
  // The full pipeline at --placement-jobs 1/2/8 under every strategy, over
  // the workload suite plus a seeded synthetic routine set: plans, decision
  // logs, diagnostics, and every counter must be bitwise-identical at any
  // job count. This is the end-to-end face of the engine-level matrix in
  // test_placement.cpp — and the reason PlacementOptions::Jobs is not
  // result-cache key material.
  std::vector<std::pair<std::string, std::string>> Inputs;
  for (const Workload *W : allWorkloads())
    Inputs.emplace_back(W->Name, W->Source);
  SynthSpec Spec;
  Spec.Nests = 200;
  Spec.Seed = 1;
  Inputs.emplace_back("synth-n200", synthSource(Spec));

  for (Strategy Strat :
       {Strategy::Orig, Strategy::Earliest, Strategy::Global,
        Strategy::Optimal, Strategy::EarliestCombine}) {
    for (const auto &[Name, Src] : Inputs) {
      CompileOptions Opts;
      Opts.Audit = true;
      Opts.Lint = true;
      Opts.Placement.Strat = Strat;
      Opts.Placement.Jobs = 1;
      std::string Ref = fingerprint(Src, Opts);
      for (int Jobs : {2, 8}) {
        Opts.Placement.Jobs = Jobs;
        EXPECT_EQ(Ref, fingerprint(Src, Opts))
            << Name << " strategy=" << strategyName(Strat)
            << " jobs=" << Jobs;
      }
    }
  }
}
