//===- tests/test_parser.cpp - HPF-lite frontend tests --------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace gca;

static std::unique_ptr<Program> parseOk(const std::string &Src,
                                        const ParamMap &Params = {}) {
  DiagEngine D;
  auto P = parseProgram(Src, D, Params);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  EXPECT_NE(P, nullptr);
  return P;
}

static std::string parseErr(const std::string &Src) {
  DiagEngine D;
  parseProgram(Src, D);
  EXPECT_TRUE(D.hasErrors());
  return D.str();
}

TEST(Lexer, TokensAndComments) {
  DiagEngine D;
  auto Toks = lexSource("a = b(1:n) ! comment\n+ 2 // more\n", D);
  EXPECT_FALSE(D.hasErrors());
  // a = b ( 1 : n ) + 2 EOF
  ASSERT_EQ(Toks.size(), 11u);
  EXPECT_TRUE(Toks[0].isKeyword("a"));
  EXPECT_TRUE(Toks[1].is(TokKind::Assign));
  EXPECT_TRUE(Toks[3].is(TokKind::LParen));
  EXPECT_TRUE(Toks[4].is(TokKind::Number));
  EXPECT_EQ(Toks[4].IntValue, 1);
  EXPECT_TRUE(Toks[5].is(TokKind::Colon));
  EXPECT_TRUE(Toks[8].is(TokKind::Plus));
  EXPECT_TRUE(Toks.back().is(TokKind::Eof));
}

TEST(Lexer, TracksLines) {
  DiagEngine D;
  auto Toks = lexSource("a\nbb\n  c", D);
  EXPECT_EQ(Toks[0].Loc.Line, 1);
  EXPECT_EQ(Toks[1].Loc.Line, 2);
  EXPECT_EQ(Toks[2].Loc.Line, 3);
  EXPECT_EQ(Toks[2].Loc.Col, 3);
}

TEST(Lexer, RejectsGarbage) {
  DiagEngine D;
  lexSource("a = @", D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(Parser, MinimalProgram) {
  auto P = parseOk(R"(
program tiny
param n = 8
real a(n) distribute (block)
begin
  a = 1
end
)");
  ASSERT_EQ(P->Routines.size(), 1u);
  const Routine &R = *P->Routines[0];
  EXPECT_EQ(R.name(), "tiny");
  EXPECT_EQ(R.array(0).extent(0), 8);
  ASSERT_EQ(R.body().size(), 1u);
}

TEST(Parser, ParamOverrideWins) {
  auto P = parseOk(R"(
program tiny
param n = 8
real a(n) distribute (block)
begin
  a = 1
end
)",
                   {{"n", 32}});
  EXPECT_EQ(P->Routines[0]->array(0).extent(0), 32);
}

TEST(Parser, ExplicitBoundsAndDistributions) {
  auto P = parseOk(R"(
program b
param n = 4
real g(5,0:n+1,0:n+1) distribute (*,block,cyclic)
begin
  g(1,1,1) = 0
end
)");
  const ArrayDecl &G = P->Routines[0]->array(0);
  EXPECT_EQ(G.Lo[1], 0);
  EXPECT_EQ(G.Hi[1], 5);
  EXPECT_EQ(G.Dist[0], DistKind::Star);
  EXPECT_EQ(G.Dist[1], DistKind::Block);
  EXPECT_EQ(G.Dist[2], DistKind::Cyclic);
}

TEST(Parser, SectionsAndFullDims) {
  auto P = parseOk(R"(
program s
param n = 10
real a(n,n) distribute (block,block)
real b(n,n) distribute (block,block)
begin
  a(2:n,:) = b(1:n-1,:) + b(2:n,:)
end
)");
  const Routine &R = *P->Routines[0];
  const auto *S = cast<AssignStmt>(R.body()[0]);
  EXPECT_TRUE(S->lhs().Subs[0].isRange());
  EXPECT_EQ(S->lhs().Subs[0].Lo.constValue(), 2);
  EXPECT_EQ(S->lhs().Subs[1].Lo.constValue(), 1);  // ':' resolved to bounds.
  EXPECT_EQ(S->lhs().Subs[1].Hi.constValue(), 10);
  EXPECT_EQ(S->rhs().size(), 2u);
}

TEST(Parser, StridedSection) {
  auto P = parseOk(R"(
program s
param n = 16
real b(n,n) distribute (block,*)
begin
  b(:,1:n:2) = 1
end
)");
  const auto *S = cast<AssignStmt>(P->Routines[0]->body()[0]);
  EXPECT_EQ(S->lhs().Subs[1].Step, 2);
}

TEST(Parser, LoopsAndAffineSubscripts) {
  auto P = parseOk(R"(
program l
param n = 12
real a(n,n) distribute (block,block)
begin
  do i = 2, n-1
    do j = 1, n, 2
      a(i,j) = a(i-1,j) + a(2*i+1,j)
    end do
  end do
end
)");
  const Routine &R = *P->Routines[0];
  const auto *Li = cast<LoopStmt>(R.body()[0]);
  EXPECT_EQ(Li->hi().constValue(), 11);
  const auto *Lj = cast<LoopStmt>(Li->body()[0]);
  EXPECT_EQ(Lj->step(), 2);
  const auto *S = cast<AssignStmt>(Lj->body()[0]);
  EXPECT_EQ(S->rhs()[1].Ref.Subs[0].Lo.coeff(Li->var()), 2);
  EXPECT_EQ(S->rhs()[1].Ref.Subs[0].Lo.constPart(), 1);
}

TEST(Parser, IfElseWithCondText) {
  auto P = parseOk(R"(
program c
param n = 4
real a(n) distribute (block)
begin
  if (cond) then
    a = 1
  else
    a = 2
  end if
end
)");
  const auto *I = cast<IfStmt>(P->Routines[0]->body()[0]);
  EXPECT_EQ(I->cond(), "cond");
  EXPECT_EQ(I->thenBody().size(), 1u);
  EXPECT_EQ(I->elseBody().size(), 1u);
}

TEST(Parser, SumReduction) {
  auto P = parseOk(R"(
program r
param n = 6
real g(n,n) distribute (block,block)
real s
begin
  s = sum(g(1,1:n)) + sum(g(2,1:n))
end
)");
  const auto *S = cast<AssignStmt>(P->Routines[0]->body()[0]);
  EXPECT_TRUE(S->lhsIsScalar());
  ASSERT_EQ(S->rhs().size(), 2u);
  EXPECT_EQ(S->rhs()[0].K, RhsTerm::Kind::SumReduce);
  EXPECT_EQ(S->rhs()[1].K, RhsTerm::Kind::SumReduce);
}

TEST(Parser, MultipleRoutines) {
  auto P = parseOk(R"(
program multi
param n = 4
routine one
real a(n) distribute (block)
begin
  a = 1
end
routine two
real b(n) distribute (block)
begin
  b = 2
end
)");
  EXPECT_EQ(P->Routines.size(), 2u);
  EXPECT_NE(P->findRoutine("one"), nullptr);
  EXPECT_NE(P->findRoutine("two"), nullptr);
  EXPECT_EQ(P->findRoutine("three"), nullptr);
}

TEST(Parser, ErrorUndeclaredName) {
  std::string E = parseErr(R"(
program e
param n = 4
real a(n) distribute (block)
begin
  a = q
end
)");
  EXPECT_NE(E.find("unknown name 'q'"), std::string::npos);
}

TEST(Parser, ErrorRankMismatch) {
  std::string E = parseErr(R"(
program e
param n = 4
real a(n,n) distribute (block,block)
begin
  a(1) = 0
end
)");
  EXPECT_NE(E.find("rank"), std::string::npos);
}

TEST(Parser, ErrorNonAffine) {
  std::string E = parseErr(R"(
program e
param n = 4
real a(n) distribute (block)
begin
  do i = 1, n
    a(i*i) = 0
  end do
end
)");
  EXPECT_NE(E.find("not affine"), std::string::npos);
}

TEST(Parser, ErrorRedeclaration) {
  std::string E = parseErr(R"(
program e
param n = 4
real a(n) distribute (block)
real a(n) distribute (block)
begin
  a = 1
end
)");
  EXPECT_NE(E.find("redeclaration"), std::string::npos);
}

TEST(Parser, PrintedRoutineReparses) {
  auto P = parseOk(R"(
program round
param n = 8
real a(n,n) distribute (block,*)
real b(n,n) distribute (block,*)
begin
  b(:,1:n:2) = 1
  do i = 2, n
    a(i,1) = b(i-1,1) + 2
  end do
end
)");
  std::string Text = printRoutine(*P->Routines[0]);
  // The printer emits "routine <name>"; turn it into a parseable program.
  std::string Again = "program round\n" +
                      Text.substr(Text.find('\n') + 1);
  auto P2 = parseOk(Again);
  EXPECT_EQ(printRoutine(*P2->Routines[0]).substr(7),
            Text.substr(7)); // Skip "routine"/"program" prefix difference.
}
