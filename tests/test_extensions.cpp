//===- tests/test_extensions.cpp - Section 6 extensions -------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the features the paper sketches as extensions/future work:
/// deferred reduction placement via the reversed analysis (Section 6.2) and
/// the exhaustive optimal placer of the NP-hardness discussion (Section
/// 6.1).
///
//===----------------------------------------------------------------------===//

#include "driver/Compile.h"
#include "lower/Schedule.h"
#include "runtime/Verify.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace gca;

namespace {

// Two reductions computed at different statements whose results are both
// consumed later: without deferral they sit at their own statements; with
// the reversed analysis both can move down to the common consumer and
// combine into one call.
const char *TwoSums = R"(
program sums
param n = 12
real a(n,n) distribute (block,block)
real b(n,n) distribute (block,block)
real d(n,n) distribute (block,block)
real s1
real s2
begin
  a = 1
  b = 2
  d = 0
  do t = 1, 2
    s1 = sum(a(1,1:n))
    b(2:n,1:n) = a(1:n-1,1:n)
    s2 = sum(a(2,1:n))
    d(1:n,1:n) = b(1:n,1:n) + s1 + s2
    a(1:n,1:n) = d(1:n,1:n)
  end do
end
)";

CompileResult compile(const char *Src, Strategy S, bool Defer) {
  CompileOptions Opts;
  Opts.Placement.Strat = S;
  Opts.Placement.DeferReductions = Defer;
  CompileResult R = compileSource(Src, Opts);
  EXPECT_TRUE(R.Ok) << R.Errors;
  return R;
}

} // namespace

TEST(DeferReductions, CombinesAcrossStatements) {
  CompileResult Off = compile(TwoSums, Strategy::Global, false);
  CompileResult On = compile(TwoSums, Strategy::Global, true);
  EXPECT_EQ(Off.Routines[0].Plan.Stats.groups(CommKind::Reduce), 2);
  EXPECT_EQ(On.Routines[0].Plan.Stats.groups(CommKind::Reduce), 1);
}

TEST(DeferReductions, DeferredScheduleVerifies) {
  CompileResult On = compile(TwoSums, Strategy::Global, true);
  const RoutineResult &RR = On.Routines[0];
  ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
  VerifyResult V = verifySchedule(*RR.Ctx, RR.Plan, Prog, 4);
  EXPECT_TRUE(V.Ok) << V.str();
}

TEST(DeferReductions, CombineStaysBeforeFirstReader) {
  CompileResult On = compile(TwoSums, Strategy::Global, true);
  const RoutineResult &RR = On.Routines[0];
  // The combined group must dominate the statement reading s1/s2.
  const AssignStmt *Reader = nullptr;
  RR.R->forEachStmt([&](Stmt *S) {
    if (auto *A = dyn_cast<AssignStmt>(S))
      for (const RhsTerm &T : A->rhs())
        if (T.K == RhsTerm::Kind::Scalar && !Reader)
          Reader = A;
  });
  ASSERT_NE(Reader, nullptr);
  for (const CommGroup &G : RR.Plan.Groups) {
    if (G.Kind == CommKind::Reduce) {
      EXPECT_TRUE(RR.Ctx->slotDominatesUse(G.Placement, Reader));
    }
  }
}

TEST(DeferReductions, NoEffectOnBaselines) {
  CompileResult Orig = compile(TwoSums, Strategy::Orig, true);
  EXPECT_EQ(Orig.Routines[0].Plan.Stats.groups(CommKind::Reduce), 2);
}

TEST(DeferReductions, GravityImprovesBeyondPaper) {
  // gravity's eight sums are all consumed by the g-update at the end of the
  // iteration; the reversed analysis defers both four-sum sets to that
  // point, where they combine into a *single* global operation — one better
  // than the paper's "two parallel sets of four" (its prototype had no
  // reduction candidate marking, Section 6.2). NNC counts are untouched.
  CompileOptions Opts;
  Opts.Placement.DeferReductions = true;
  Opts.Params["n"] = 12;
  Opts.Params["nsteps"] = 2;
  CompileResult R = compileSource(gravityWorkload().Source, Opts);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Routines[0].Plan.Stats.groups(CommKind::Reduce), 1);
  EXPECT_EQ(R.Routines[0].Plan.Stats.groups(CommKind::Shift), 4);
}

TEST(DeferReductions, AllWorkloadsStillVerify) {
  for (const Workload *W : evaluationWorkloads()) {
    CompileOptions Opts;
    Opts.Placement.DeferReductions = true;
    Opts.Params["n"] = 12;
    Opts.Params["nsteps"] = 2;
    CompileResult R = compileSource(W->Source, Opts);
    ASSERT_TRUE(R.Ok) << R.Errors;
    for (const RoutineResult &RR : R.Routines) {
      ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
      VerifyResult V = verifySchedule(*RR.Ctx, RR.Plan, Prog, 4);
      EXPECT_TRUE(V.Ok) << W->Name << ": " << V.str();
    }
  }
}

TEST(EarliestCombine, SubsetOfGlobalQuality) {
  // The earliest-placement-with-combining strawman never beats the global
  // algorithm on call sites.
  for (const Workload *W : evaluationWorkloads()) {
    CompileOptions A, B;
    A.Placement.Strat = Strategy::EarliestCombine;
    B.Placement.Strat = Strategy::Global;
    A.Params["n"] = B.Params["n"] = 12;
    A.Params["nsteps"] = B.Params["nsteps"] = 2;
    CompileResult RA = compileSource(W->Source, A);
    CompileResult RB = compileSource(W->Source, B);
    for (size_t I = 0; I != RA.Routines.size(); ++I)
      EXPECT_GE(RA.Routines[I].Plan.Stats.totalGroups(),
                RB.Routines[I].Plan.Stats.totalGroups())
          << W->Name;
  }
}
