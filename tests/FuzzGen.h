//===- tests/FuzzGen.h - deterministic random-program generator -*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic random-program generator shared by the fuzz harness
/// (test_fuzz.cpp) and the dominance/placement oracle tests: a SplitMix64
/// PRNG and a seed -> HPF-lite source mapping. Kept in a header so every
/// consumer generates byte-identical programs for a given seed — the fuzz
/// seeds double as regression inputs for "plans are bitwise-identical
/// before/after an engine change" comparisons.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_TESTS_FUZZGEN_H
#define GCA_TESTS_FUZZGEN_H

#include "support/StrUtil.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gca {
namespace fuzzgen {

/// Small deterministic PRNG (SplitMix64).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed * 2654435761u + 12345) {}
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  int range(int Lo, int Hi) { // Inclusive.
    return Lo + static_cast<int>(next() % (Hi - Lo + 1));
  }
  bool chance(int Percent) { return range(1, 100) <= Percent; }

private:
  uint64_t State;
};

/// Generates one random HPF-lite program.
inline std::string generateProgram(uint64_t Seed) {
  Rng R(Seed);
  int NumArrays = R.range(3, 6);
  int N = 10; // Small: verification is element-granular.

  std::string Src = "program fuzz\nparam n = " + std::to_string(N) + "\n";
  std::vector<std::string> Arrays;
  for (int A = 0; A != NumArrays; ++A) {
    std::string Name = strFormat("a%d", A);
    Arrays.push_back(Name);
    Src += "real " + Name + "(n,n) distribute (block,block)\n";
  }
  Src += "real s\nbegin\n";
  for (const std::string &A : Arrays)
    Src += "  " + A + " = 1\n";

  auto Ref = [&](const std::string &Name, int Di, int Dj) {
    // Interior section shifted by (Di, Dj), conforming with lhs (3:n-2,...).
    return strFormat("%s(%d:n-%d,%d:n-%d)", Name.c_str(), 3 + Di, 2 - Di,
                     3 + Dj, 2 - Dj);
  };

  int Stmts = R.range(3, 7);
  bool InLoop = R.chance(80);
  std::string Pad = "  ";
  if (InLoop) {
    Src += "  do t = 1, 2\n";
    Pad = "    ";
  }
  int OpenIf = 0;
  for (int S = 0; S != Stmts; ++S) {
    if (OpenIf == 0 && R.chance(20)) {
      Src += Pad + "if (c" + std::to_string(S) + ") then\n";
      Pad += "  ";
      OpenIf = R.range(1, 2); // Statements left inside the branch.
    }
    int Lhs = R.range(0, NumArrays - 1);
    if (R.chance(12)) {
      // A reduction over a random array's row.
      Src += Pad + strFormat("s = sum(%s(%d,1:n))\n",
                             Arrays[R.range(0, NumArrays - 1)].c_str(),
                             R.range(1, N));
    } else {
      int Terms = R.range(1, 3);
      std::string Stmt =
          Pad + strFormat("a%d(3:n-2,3:n-2) = ", Lhs);
      for (int T = 0; T != Terms; ++T) {
        int Rhs = R.range(0, NumArrays - 1);
        int Di = R.range(-2, 2), Dj = R.range(-2, 2);
        if (T)
          Stmt += " + ";
        Stmt += Ref(Arrays[Rhs], Di, Dj);
      }
      Src += Stmt + "\n";
    }
    if (OpenIf > 0 && --OpenIf == 0) {
      Pad = Pad.substr(2);
      Src += Pad + "end if\n";
    }
  }
  if (OpenIf > 0)
    Src += Pad.substr(2) + "end if\n";
  if (InLoop)
    Src += "  end do\n";
  Src += "end\n";
  return Src;
}

} // namespace fuzzgen
} // namespace gca

#endif // GCA_TESTS_FUZZGEN_H
