//===- tests/test_placement.cpp - placement algorithm tests ---------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "core/EarliestLatest.h"
#include "driver/Compile.h"
#include "driver/Pipeline.h"
#include "support/Stats.h"
#include "support/StrUtil.h"
#include "support/ThreadPool.h"
#include "workloads/Synth.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace gca;

namespace {

CompileResult compile(const std::string &Src, Strategy S,
                      int64_t N = 12) {
  CompileOptions Opts;
  Opts.Placement.Strat = S;
  Opts.Params["n"] = N;
  Opts.Params["nsteps"] = 2;
  CompileResult R = compileSource(Src, Opts);
  EXPECT_TRUE(R.Ok) << R.Errors;
  return R;
}

/// Finds the entry whose use statement assigns to \p LhsName and whose data
/// array is \p ArrayName.
const CommEntry *findEntry(const RoutineResult &RR,
                           const std::string &ArrayName,
                           const std::string &LhsName) {
  const Routine &R = *RR.R;
  for (const CommEntry &E : RR.Plan.Entries) {
    if (R.array(E.ArrayId).Name != ArrayName)
      continue;
    if (!E.UseStmt->lhsIsScalar() &&
        R.array(E.UseStmt->lhs().ArrayId).Name == LhsName)
      return &E;
  }
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Structural invariants on every workload and strategy.
//===----------------------------------------------------------------------===//

class PlacementInvariants
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PlacementInvariants, EveryEntryWellFormed) {
  auto [WIdx, SIdx] = GetParam();
  const Workload *W = allWorkloads()[WIdx];
  Strategy S = static_cast<Strategy>(SIdx);
  CompileResult R = compile(W->Source, S);
  for (const RoutineResult &RR : R.Routines) {
    const AnalysisContext &Ctx = *RR.Ctx;
    for (const CommEntry &E : RR.Plan.Entries) {
      // Claim 4.1/4.5: Earliest dominates Latest dominates the use.
      // (Reductions are inverted: they fire right after their statement.)
      EXPECT_TRUE(Ctx.DT.slotDominates(E.EarliestSlot, E.LatestSlot));
      if (E.M.Kind == CommKind::Reduce) {
        EXPECT_EQ(E.LatestSlot, Ctx.G.slotAfter(E.UseStmt));
        continue;
      }
      EXPECT_TRUE(Ctx.slotDominatesUse(E.LatestSlot, E.UseStmt));
      // Claim 4.6: every candidate is a single dominating position between
      // the two.
      for (const Slot &C : E.OriginalCandidates) {
        EXPECT_TRUE(Ctx.DT.slotDominates(E.EarliestSlot, C));
        EXPECT_TRUE(Ctx.DT.slotDominates(C, E.LatestSlot));
        EXPECT_TRUE(Ctx.slotDominatesUse(C, E.UseStmt));
      }
      if (!E.Eliminated) {
        EXPECT_TRUE(E.Chosen.isValid());
        EXPECT_GE(E.GroupId, 0);
      } else {
        EXPECT_GE(E.SubsumedBy, 0);
      }
    }
    // Every non-reduction group placement dominates its members' uses.
    for (const CommGroup &G : RR.Plan.Groups) {
      EXPECT_FALSE(G.Members.empty());
      if (G.Kind != CommKind::Reduce) {
        for (int Id : G.Members)
          EXPECT_TRUE(
              Ctx.slotDominatesUse(G.Placement,
                                   RR.Plan.Entries[Id].UseStmt));
        for (int Id : G.Attached)
          EXPECT_TRUE(
              Ctx.slotDominatesUse(G.Placement,
                                   RR.Plan.Entries[Id].UseStmt));
      }
      EXPECT_EQ(G.Data.size(), G.DataAug.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, PlacementInvariants,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 3)));

//===----------------------------------------------------------------------===//
// The paper's running example (Figure 4).
//===----------------------------------------------------------------------===//

TEST(Figure4, EarliestPoints) {
  CompileResult R = compile(figure4Workload().Source, Strategy::Global, 16);
  const RoutineResult &RR = R.Routines[0];
  const AnalysisContext &Ctx = *RR.Ctx;

  // Earliest(a) for both uses is the phi-merge after the IF (node where the
  // two branch definitions converge) — the paper's "Earliest(a1) =
  // Earliest(a2) = 7".
  const CommEntry *A1 = nullptr, *A2 = nullptr, *B1 = nullptr, *B2 = nullptr;
  for (const CommEntry &E : RR.Plan.Entries) {
    const std::string &Name = RR.R->array(E.ArrayId).Name;
    // Statement order identifies the first (strided j) and second loop uses.
    if (Name == "a")
      (A1 ? A2 : A1) = &E;
    if (Name == "b")
      (B1 ? B2 : B1) = &E;
  }
  ASSERT_TRUE(A1 && A2 && B1 && B2);
  EXPECT_EQ(A1->EarliestSlot, A2->EarliestSlot);
  // b1 (odd columns) can move up right after statement 1's nest; b2 (all
  // columns) only after statement 2's: different earliest points, exactly
  // the paper's syntax-sensitivity observation.
  EXPECT_NE(B1->EarliestSlot, B2->EarliestSlot);
  EXPECT_TRUE(Ctx.DT.slotDominates(B1->EarliestSlot, B2->EarliestSlot));
}

TEST(Figure4, StrategiesMatchPaper) {
  // orig: one vectorized site per array (2). nored: earliest placement
  // catches a1 but not b1 (3). comb: everything combines into one exchange
  // with a1 and b1 eliminated (1).
  int Expect[3] = {2, 3, 1};
  Strategy Strats[3] = {Strategy::Orig, Strategy::Earliest, Strategy::Global};
  for (int I = 0; I != 3; ++I) {
    CompileResult R = compile(figure4Workload().Source, Strats[I], 16);
    EXPECT_EQ(R.Routines[0].Plan.Stats.groups(CommKind::Shift), Expect[I])
        << strategyName(Strats[I]);
  }
  CompileResult R = compile(figure4Workload().Source, Strategy::Global, 16);
  EXPECT_EQ(R.Routines[0].Plan.Stats.NumEliminated, 2);
}

TEST(Figure4, GlobalPlacementIsLaterThanEarliest) {
  CompileResult R = compile(figure4Workload().Source, Strategy::Global, 16);
  const RoutineResult &RR = R.Routines[0];
  // The combined group sits at the loop preheader — strictly later than the
  // earliest points ("placement of communication is not at the earliest
  // point detected by dataflow analysis").
  ASSERT_EQ(RR.Plan.Groups.size(), 1u);
  const CommGroup &G = RR.Plan.Groups[0];
  for (const CommEntry &E : RR.Plan.Entries)
    EXPECT_TRUE(RR.Ctx->DT.slotDominates(E.EarliestSlot, G.Placement));
  for (const CommEntry &E : RR.Plan.Entries) {
    if (!E.Eliminated) {
      EXPECT_NE(G.Placement, E.EarliestSlot);
    }
  }
}

//===----------------------------------------------------------------------===//
// Figure 3: syntax sensitivity.
//===----------------------------------------------------------------------===//

TEST(Figure3, EarliestCombiningIsSyntaxSensitive) {
  // Under earliest placement + same-point combining, the hand-fused form
  // combines a and b into one message while the scalarized form cannot.
  CompileResult Scal = compile(figure3ScalarizedWorkload().Source,
                               Strategy::EarliestCombine, 16);
  CompileResult Fused = compile(figure3HandCodedWorkload().Source,
                                Strategy::EarliestCombine, 16);
  EXPECT_EQ(Scal.Routines[0].Plan.Stats.groups(CommKind::Shift), 2);
  EXPECT_EQ(Fused.Routines[0].Plan.Stats.groups(CommKind::Shift), 1);
}

TEST(Figure3, GlobalPlacementIsRobust) {
  // The paper's algorithm reaches one combined message for every
  // semantically equivalent form.
  for (const Workload *W :
       {&figure3FusedWorkload(), &figure3ScalarizedWorkload(),
        &figure3HandCodedWorkload()}) {
    CompileResult R = compile(W->Source, Strategy::Global, 16);
    EXPECT_EQ(R.Routines[0].Plan.Stats.groups(CommKind::Shift), 1)
        << W->Name;
  }
}

//===----------------------------------------------------------------------===//
// Earliest computation specifics.
//===----------------------------------------------------------------------===//

TEST(Earliest, StopsAtLastInterferingDef) {
  CompileResult R = compile(R"(
program e
param n = 8
real a(n) distribute (block)
real b(n) distribute (block)
begin
  a(1:n) = 1
  a(1:n) = 2
  b(2:n) = a(1:n-1)
end
)",
                            Strategy::Global, 8);
  const RoutineResult &RR = R.Routines[0];
  ASSERT_EQ(RR.Plan.Entries.size(), 1u);
  const CommEntry &E = RR.Plan.Entries[0];
  // Earliest must be after the *second* definition nest of a.
  const AnalysisContext &Ctx = *RR.Ctx;
  const auto *SecondNest = cast<LoopStmt>(RR.R->body()[1]);
  int Post = Ctx.G.loop(Ctx.G.loopIdOf(SecondNest)).Postexit;
  EXPECT_EQ(E.EarliestSlot.Node, Post);
}

TEST(Earliest, EntryWhenNoDefsExist) {
  CompileResult R = compile(R"(
program e
param n = 8
real a(n) distribute (block)
real b(n) distribute (block)
begin
  b(2:n) = a(1:n-1)
end
)",
                            Strategy::Global, 8);
  const RoutineResult &RR = R.Routines[0];
  ASSERT_EQ(RR.Plan.Entries.size(), 1u);
  // Data comes from ENTRY only: communication may hoist to the entry node.
  EXPECT_EQ(RR.Plan.Entries[0].EarliestSlot.Node, RR.Ctx->G.entry());
}

TEST(Earliest, CarriedDepPinsToHeader) {
  CompileResult R = compile(R"(
program e
param n = 8
real a(n) distribute (block)
real b(n) distribute (block)
begin
  a = 0
  do t = 1, 4
    b(2:n) = a(1:n-1)
    a(1:n) = b(1:n)
  end do
end
)",
                            Strategy::Global, 8);
  const RoutineResult &RR = R.Routines[0];
  const CommEntry *Use = findEntry(RR, "a", "b");
  ASSERT_NE(Use, nullptr);
  // a is rewritten every iteration: communication must stay inside the
  // t-loop, at its header (top of each iteration). (The init statement's
  // scalarized nest occupies the first loop ids.)
  const auto *TLoop = cast<LoopStmt>(RR.R->body()[1]);
  const CfgLoop &T = RR.Ctx->G.loop(RR.Ctx->G.loopIdOf(TLoop));
  EXPECT_EQ(Use->EarliestSlot.Node, T.Header);
  EXPECT_EQ(Use->CommLevel, 1);
}

TEST(Latest, VectorizesToDependenceFreeLevel) {
  CompileResult R = compile(R"(
program e
param n = 8
real a(n,n) distribute (block,block)
real b(n,n) distribute (block,block)
begin
  a = 0
  do t = 1, 4
    do i = 2, n
      do j = 1, n
        b(i,j) = a(i-1,j)
      end do
    end do
    a(1:n,1:n) = b(1:n,1:n)
  end do
end
)",
                            Strategy::Global, 8);
  const RoutineResult &RR = R.Routines[0];
  const CommEntry *Use = findEntry(RR, "a", "b");
  ASSERT_NE(Use, nullptr);
  // Dependence carried at the t level: Latest is the preheader of the
  // level-2 loop (the i loop), i.e. communication vectorized over i and j.
  EXPECT_EQ(Use->CommLevel, 1);
  const Routine &Rt = *RR.R;
  const auto *TL = cast<LoopStmt>(Rt.body()[1]);
  const auto *IL = cast<LoopStmt>(TL->body()[0]);
  EXPECT_EQ(Use->LatestSlot.Node,
            RR.Ctx->G.loop(RR.Ctx->G.loopIdOf(IL)).Preheader);
}

TEST(Subsumption, RestrictsSubsumerIntoVictimRange) {
  CompileResult R = compile(figure4Workload().Source, Strategy::Global, 16);
  const RoutineResult &RR = R.Routines[0];
  // b1 was eliminated by b2; the surviving group must still be placed where
  // b1's data is fresh (dominated by b1's earliest).
  for (const CommEntry &E : RR.Plan.Entries) {
    if (!E.Eliminated)
      continue;
    const CommGroup &G = RR.Plan.Groups[RR.Plan.Entries[E.SubsumedBy]
                                            .GroupId >= 0
                                            ? RR.Plan.Entries[E.SubsumedBy]
                                                  .GroupId
                                            : E.GroupId];
    EXPECT_TRUE(RR.Ctx->DT.slotDominates(E.EarliestSlot, G.Placement));
    EXPECT_TRUE(RR.Ctx->slotDominatesUse(G.Placement, E.UseStmt));
  }
}

//===----------------------------------------------------------------------===//
// Optimal placer (Section 6.1 ablation).
//===----------------------------------------------------------------------===//

TEST(Optimal, NeverWorseThanGreedy) {
  for (const Workload *W : {&figure4Workload(), &figure3ScalarizedWorkload(),
                            &gravityWorkload()}) {
    CompileResult Greedy = compile(W->Source, Strategy::Global, 8);
    CompileResult Opt = compile(W->Source, Strategy::Optimal, 8);
    for (size_t I = 0; I != Greedy.Routines.size(); ++I)
      EXPECT_LE(Opt.Routines[I].Plan.Stats.totalGroups(),
                Greedy.Routines[I].Plan.Stats.totalGroups())
          << W->Name;
  }
}

//===----------------------------------------------------------------------===//
// Indexed placement sets: pattern-class bucketing must cut the pairwise
// comparison work, and the engine must surface its query counters.
//===----------------------------------------------------------------------===//

namespace {

/// Four shift nests reading \p SrcA and four reading \p SrcB, every nest
/// over its own disjoint index window so no section subsumes another (no
/// entry is eliminated and the pairwise scans see all survivors). All
/// shifts have the same sign, so with SrcA == SrcB every entry lands in
/// one (array, pattern-class) bucket; with two distinct arrays the bucket
/// splits in half and cross-array pairs are never compared.
std::string bucketWorkload(const std::string &SrcA, const std::string &SrcB) {
  std::string S = "program bucket\nparam n = 32\n";
  for (const char *A : {"x1", "x2", "x3", "x4", "y1", "y2", "y3", "y4"})
    S += std::string("real ") + A + "(n) distribute (block)\n";
  S += "real " + SrcA + "(n) distribute (block)\n";
  if (SrcB != SrcA)
    S += "real " + SrcB + "(n) distribute (block)\n";
  S += "begin\n";
  const char *SinkA[] = {"x1", "x2", "x3", "x4"};
  const char *SinkB[] = {"y1", "y2", "y3", "y4"};
  for (int I = 0; I != 4; ++I)
    S += strFormat("  do i = %d, %d\n    %s(i) = %s(i-1)\n  end do\n",
                   2 + 3 * I, 4 + 3 * I, SinkA[I], SrcA.c_str());
  for (int I = 4; I != 8; ++I)
    S += strFormat("  do i = %d, %d\n    %s(i) = %s(i-1)\n  end do\n",
                   2 + 3 * I, 4 + 3 * I, SinkB[I - 4], SrcB.c_str());
  S += "end\n";
  return S;
}

int64_t pairComparesOf(const std::string &Src) {
  CompileOptions Opts;
  Opts.Placement.Strat = Strategy::Global;
  Session S(Src, Opts);
  EXPECT_TRUE(S.run()) << S.Result.Errors;
  EXPECT_GT(S.Stats.get("placement.slotset-merges"), 0);
  EXPECT_GT(S.Stats.get("dom.queries"), 0);
  return S.Stats.get("placement.pair-compares");
}

} // namespace

TEST(IndexedPlacement, BucketingCutsPairComparesOnTwoArrayWorkload) {
  // Same shape, same entry count (8 stencil entries with identical slot
  // ranges); the only difference is whether they all read one array or
  // split across two. The (array, pattern-class) buckets must prevent every
  // cross-array comparison, so the two-array run does strictly less work.
  int64_t OneArray = pairComparesOf(bucketWorkload("b", "b"));
  int64_t TwoArrays = pairComparesOf(bucketWorkload("b", "d"));
  EXPECT_GT(OneArray, 0);
  EXPECT_GT(TwoArrays, 0);
  EXPECT_LT(TwoArrays, OneArray);
}

//===----------------------------------------------------------------------===//
// Parallel placement determinism (engine level)
//===----------------------------------------------------------------------===//

namespace {

/// Everything deterministic one planCommunication() call produces: rendered
/// plan, decision log, plan stats, and the exported counter registry.
std::string planFingerprint(const AnalysisContext &Ctx, const Routine &R,
                            const PlacementOptions &Opts) {
  StatsRegistry Stats;
  PlacementOptions O = Opts;
  O.Stats = &Stats;
  CommPlan Plan = planCommunication(Ctx, O);
  return Plan.str(R) + Plan.decisionsStr() + Plan.Stats.str() + Stats.json();
}

} // namespace

TEST(ParallelPlacement, JobsMatrixIsBitwiseDeterministic) {
  // Every strategy at jobs 1/2/8 over a seeded synthetic routine set: plans,
  // decision logs, plan stats, and counters (dom.queries included) must be
  // bitwise-identical at every job count. The engine commits per-entry
  // analysis results in entry order, so this holds by construction — the
  // test pins the construction.
  SynthSpec Spec;
  Spec.Nests = 120;
  Spec.Seed = 7;
  std::string Src = synthSource(Spec);
  DiagEngine D;
  auto P = parseProgram(Src, D);
  ASSERT_TRUE(P && !D.hasErrors());

  for (Strategy Strat :
       {Strategy::Orig, Strategy::Earliest, Strategy::Global,
        Strategy::Optimal, Strategy::EarliestCombine}) {
    for (const auto &R : P->Routines) {
      AnalysisContext Ctx(*R);
      PlacementOptions Opts;
      Opts.Strat = Strat;
      std::string Ref = planFingerprint(Ctx, *R, Opts);
      ASSERT_FALSE(Ref.empty());
      for (int Jobs : {2, 8}) {
        ThreadPool Pool(static_cast<unsigned>(Jobs), "placement-test");
        PlacementOptions PJ = Opts;
        PJ.Jobs = Jobs;
        PJ.Pool = &Pool;
        EXPECT_EQ(Ref, planFingerprint(Ctx, *R, PJ))
            << strategyName(Strat) << " jobs=" << Jobs;
      }
    }
  }
}
