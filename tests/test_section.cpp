//===- tests/test_section.cpp - section / mapping / ASD tests -------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "section/Asd.h"

#include <gtest/gtest.h>

using namespace gca;

namespace {

SecDim dim(int64_t Lo, int64_t Hi, int64_t Step = 1) {
  return SecDim::triplet(AffineExpr::constant(Lo), AffineExpr::constant(Hi),
                         Step);
}

RegSection sec2(int64_t L0, int64_t H0, int64_t L1, int64_t H1) {
  return RegSection({dim(L0, H0), dim(L1, H1)});
}

TemplateSig sig2(int64_t N = 16) {
  TemplateSig S;
  S.Dims = {{N, DistKind::Block}, {N, DistKind::Block}};
  return S;
}

} // namespace

TEST(Section, Counting) {
  EXPECT_EQ(dim(1, 10).count(), 10);
  EXPECT_EQ(dim(1, 10, 2).count(), 5);
  EXPECT_EQ(dim(5, 4).count(), 0);
  EXPECT_EQ(sec2(1, 4, 1, 3).numElems(), 12);
}

TEST(Section, SymbolicCount) {
  // i : i is one element per enclosing iteration; i : i+3 is four.
  SecDim Sym = SecDim::triplet(AffineExpr::var(0), AffineExpr::var(0) + 3);
  EXPECT_EQ(Sym.count(), 4);
  SecDim Unknown = SecDim::triplet(AffineExpr::var(0), AffineExpr::var(1));
  EXPECT_EQ(Unknown.count(), -1);
}

TEST(Section, Containment) {
  EXPECT_TRUE(sec2(2, 8, 2, 8).containedIn(sec2(1, 9, 1, 9)));
  EXPECT_FALSE(sec2(0, 8, 2, 8).containedIn(sec2(1, 9, 1, 9)));
  EXPECT_TRUE(sec2(1, 9, 1, 9).containedIn(sec2(1, 9, 1, 9)));
}

TEST(Section, StrideContainment) {
  // Odd elements 1:9:2 are inside 1:9:1 but 1:9:1 is not inside 1:9:2,
  // and even elements are not inside odd.
  RegSection Odd({dim(1, 9, 2)});
  RegSection Even({dim(2, 8, 2)});
  RegSection Full({dim(1, 9, 1)});
  EXPECT_TRUE(Odd.containedIn(Full));
  EXPECT_FALSE(Full.containedIn(Odd));
  EXPECT_FALSE(Even.containedIn(Odd));
  EXPECT_FALSE(Odd.containedIn(Even));
}

TEST(Section, SymbolicContainment) {
  // Plane (i, 1:8) is inside plane (i, 0:9), but not inside (i-1, 0:9).
  AffineExpr I = AffineExpr::var(0);
  RegSection A({SecDim::single(I), dim(1, 8)});
  RegSection B({SecDim::single(I), dim(0, 9)});
  RegSection C({SecDim::single(I - 1), dim(0, 9)});
  EXPECT_TRUE(A.containedIn(B));
  EXPECT_FALSE(A.containedIn(C));
}

TEST(Section, UnionApprox) {
  RegSection U;
  int64_t UE, SE;
  ASSERT_TRUE(sec2(1, 4, 1, 8).unionApprox(sec2(5, 8, 1, 8), U, UE, SE));
  EXPECT_EQ(UE, 64);
  EXPECT_EQ(SE, 64);
  EXPECT_EQ(U.dim(0).Lo.constValue(), 1);
  EXPECT_EQ(U.dim(0).Hi.constValue(), 8);
}

TEST(Section, UnionOfStridedPhases) {
  // Odd union even covers everything at step 1 (gcd with lo offset).
  RegSection Odd({dim(1, 15, 2)});
  RegSection Even({dim(2, 16, 2)});
  RegSection U;
  int64_t UE, SE;
  ASSERT_TRUE(Odd.unionApprox(Even, U, UE, SE));
  EXPECT_EQ(U.dim(0).Step, 1);
  EXPECT_EQ(UE, 16);
}

TEST(Section, UnionFailsAcrossStructures) {
  RegSection A({SecDim::single(AffineExpr::var(0))});
  RegSection B({SecDim::single(AffineExpr::var(1))});
  RegSection U;
  int64_t UE, SE;
  EXPECT_FALSE(A.unionApprox(B, U, UE, SE));
}

TEST(Section, Concretize) {
  AffineExpr I = AffineExpr::var(0);
  RegSection S({SecDim::single(I - 1), dim(1, 8, 2)});
  std::vector<DimRange> R = S.concretize({5});
  EXPECT_EQ(R[0].Lo, 4);
  EXPECT_EQ(R[0].Hi, 4);
  EXPECT_EQ(R[1].count(), 4);
}

TEST(Mapping, EqualityAndKinds) {
  Mapping S1 = Mapping::shift(sig2(), {1, 0});
  Mapping S2 = Mapping::shift(sig2(), {1, 0});
  Mapping S3 = Mapping::shift(sig2(), {0, 1});
  EXPECT_TRUE(S1 == S2);
  EXPECT_FALSE(S1 == S3);
  EXPECT_FALSE(Mapping::local() == S1);
}

TEST(Mapping, ShiftSubsumption) {
  // Same direction, wider reach subsumes narrower; opposite directions and
  // different axes never do.
  Mapping Near = Mapping::shift(sig2(), {-1, 0});
  Mapping Far = Mapping::shift(sig2(), {-2, 0});
  Mapping Up = Mapping::shift(sig2(), {1, 0});
  EXPECT_TRUE(Near.subsumedBy(Far));
  EXPECT_FALSE(Far.subsumedBy(Near));
  EXPECT_FALSE(Near.subsumedBy(Up));
  EXPECT_TRUE(Near.subsumedBy(Near));
}

TEST(Mapping, CompatibilityIgnoresMagnitude) {
  Mapping Near = Mapping::shift(sig2(), {-1, 0});
  Mapping Far = Mapping::shift(sig2(), {-2, 0});
  Mapping Diag = Mapping::shift(sig2(), {-1, 1});
  EXPECT_TRUE(Near.compatibleWith(Far));
  EXPECT_FALSE(Near.compatibleWith(Diag));
}

TEST(Mapping, SigMismatchBlocksEverything) {
  TemplateSig Other;
  Other.Dims = {{32, DistKind::Block}, {16, DistKind::Block}};
  Mapping A = Mapping::shift(sig2(), {1, 0});
  Mapping B = Mapping::shift(Other, {1, 0});
  EXPECT_FALSE(A.compatibleWith(B));
  EXPECT_FALSE(A.subsumedBy(B));
}

TEST(Mapping, ReduceAndBcast) {
  Mapping R1 = Mapping::reduce(sig2(), {1, 1});
  Mapping R2 = Mapping::reduce(sig2(), {1, 1});
  Mapping R3 = Mapping::reduce(sig2(), {0, 1});
  EXPECT_TRUE(R1.compatibleWith(R2));
  EXPECT_FALSE(R1.compatibleWith(R3));
  Mapping B1 = Mapping::bcast(sig2(), 0, 5);
  Mapping B2 = Mapping::bcast(sig2(), 0, 6);
  EXPECT_FALSE(B1.compatibleWith(B2));
  EXPECT_TRUE(B1.subsumedBy(B1));
}

TEST(Asd, SubsumptionNeedsAllThree) {
  Asd Small{0, sec2(2, 8, 2, 8), Mapping::shift(sig2(), {-1, 0})};
  Asd Big{0, sec2(1, 9, 1, 9), Mapping::shift(sig2(), {-1, 0})};
  Asd OtherArray{1, sec2(1, 9, 1, 9), Mapping::shift(sig2(), {-1, 0})};
  Asd OtherDir{0, sec2(1, 9, 1, 9), Mapping::shift(sig2(), {0, -1})};
  EXPECT_TRUE(Small.subsumedBy(Big));
  EXPECT_FALSE(Big.subsumedBy(Small));
  EXPECT_FALSE(Small.subsumedBy(OtherArray));
  EXPECT_FALSE(Small.subsumedBy(OtherDir));
}

/// Property sweep: containment implies union == container (elementwise).
class SectionProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SectionProperty, ContainUnionConsistency) {
  auto [Lo, Len, Step] = GetParam();
  RegSection Inner({dim(Lo, Lo + Len * Step, Step)});
  RegSection Outer({dim(Lo - Step, Lo + (Len + 2) * Step, Step)});
  EXPECT_TRUE(Inner.containedIn(Outer));
  RegSection U;
  int64_t UE, SE;
  ASSERT_TRUE(Inner.unionApprox(Outer, U, UE, SE));
  EXPECT_EQ(UE, Outer.numElems());
  EXPECT_TRUE(Outer.containedIn(U));
  EXPECT_TRUE(U.containedIn(Outer));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SectionProperty,
    ::testing::Combine(::testing::Values(1, 3, 10),
                       ::testing::Values(0, 1, 5),
                       ::testing::Values(1, 2, 3)));
