//===- tests/test_detect.cpp - communication detection tests --------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "core/Detect.h"
#include "frontend/Parser.h"
#include "xform/Scalarize.h"

#include <gtest/gtest.h>

using namespace gca;

namespace {

struct Built {
  std::unique_ptr<Program> P;
  std::unique_ptr<AnalysisContext> Ctx;
  std::vector<CommEntry> Entries;
};

Built build(const std::string &Src, bool Scalarize = true) {
  DiagEngine D;
  Built B;
  B.P = parseProgram(Src, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  if (Scalarize)
    scalarizeProgram(*B.P, D);
  B.Ctx = std::make_unique<AnalysisContext>(*B.P->Routines[0]);
  PlacementOptions Opts;
  B.Entries = detectCommunication(*B.Ctx, Opts);
  return B;
}

int countKind(const std::vector<CommEntry> &Es, CommKind K) {
  int N = 0;
  for (const CommEntry &E : Es)
    N += E.M.Kind == K;
  return N;
}

} // namespace

TEST(Detect, AlignedCopyIsLocal) {
  Built B = build(R"(
program d
param n = 8
real a(n,n) distribute (block,block)
real b(n,n) distribute (block,block)
begin
  a(1:n,1:n) = b(1:n,1:n)
end
)");
  EXPECT_TRUE(B.Entries.empty());
}

TEST(Detect, ReplicatedArrayIsLocal) {
  Built B = build(R"(
program d
param n = 8
real a(n,n) distribute (block,block)
real c(n,n) distribute (*,*)
begin
  a(1:n,1:n) = c(1:n,1:n)
end
)");
  EXPECT_TRUE(B.Entries.empty());
}

TEST(Detect, SimpleShift) {
  Built B = build(R"(
program d
param n = 8
real a(n,n) distribute (block,block)
real b(n,n) distribute (block,block)
begin
  a(2:n,1:n) = b(1:n-1,1:n)
end
)");
  ASSERT_EQ(B.Entries.size(), 1u);
  const CommEntry &E = B.Entries[0];
  EXPECT_EQ(E.M.Kind, CommKind::Shift);
  ASSERT_EQ(E.M.Offsets.size(), 2u);
  EXPECT_EQ(E.M.Offsets[0], -1);
  EXPECT_EQ(E.M.Offsets[1], 0);
}

TEST(Detect, StarDimsIgnoredForMapping) {
  Built B = build(R"(
program d
param n = 8
real g(n,n,n) distribute (*,block,block)
real w(n,n) distribute (block,block)
begin
  do i = 2, n
    w(1:n,1:n) = g(i-1,1:n,1:n)
  end do
end
)");
  // The i-1 subscript is on the non-distributed dim: aligned copy.
  EXPECT_TRUE(B.Entries.empty());
}

TEST(Detect, DiagonalDecomposesIntoAugmentedAxes) {
  Built B = build(R"(
program d
param n = 8
real a(n,n) distribute (block,block)
real b(n,n) distribute (block,block)
begin
  a(2:n,2:n) = b(1:n-1,1:n-1)
end
)");
  ASSERT_EQ(B.Entries.size(), 2u);
  const CommEntry &E0 = B.Entries[0];
  const CommEntry &E1 = B.Entries[1];
  EXPECT_EQ(E0.M.Offsets, (std::vector<int64_t>{-1, 0}));
  EXPECT_EQ(E1.M.Offsets, (std::vector<int64_t>{0, -1}));
  // Phases share a diagonal id and carry the sibling dim's augmentation.
  ASSERT_EQ(E0.DiagIds.size(), 1u);
  EXPECT_EQ(E0.DiagIds, E1.DiagIds);
  EXPECT_EQ(E0.Augment[1][0], 1); // Phase 0 extends the column side.
  EXPECT_EQ(E1.Augment[0][0], 1); // Phase 1 extends the row side.
}

TEST(Detect, DiagonalKeptWhenSubsumptionDisabled) {
  DiagEngine D;
  auto P = parseProgram(R"(
program d
param n = 8
real a(n,n) distribute (block,block)
real b(n,n) distribute (block,block)
begin
  a(2:n,2:n) = b(1:n-1,1:n-1)
end
)",
                        D);
  scalarizeProgram(*P, D);
  AnalysisContext Ctx(*P->Routines[0]);
  PlacementOptions Opts;
  Opts.SubsumeDiagonals = false;
  auto Entries = detectCommunication(Ctx, Opts);
  ASSERT_EQ(Entries.size(), 1u);
  EXPECT_EQ(Entries[0].M.Offsets, (std::vector<int64_t>{-1, -1}));
}

TEST(Detect, PerStatementCoalescing) {
  Built B = build(R"(
program d
param n = 8
real a(n,n) distribute (block,block)
real b(n,n) distribute (block,block)
begin
  a(2:n-1,1:n) = b(1:n-2,1:n) + b(3:n,1:n) + b(1:n-2,1:n)
end
)");
  // Two directions on b; the duplicated -1 reference coalesces.
  ASSERT_EQ(B.Entries.size(), 2u);
  EXPECT_EQ(countKind(B.Entries, CommKind::Shift), 2);
  int TotalRefs = 0;
  for (const CommEntry &E : B.Entries)
    TotalRefs += static_cast<int>(E.Refs.size());
  EXPECT_EQ(TotalRefs, 3);
}

TEST(Detect, WidestOffsetWinsInCoalescing) {
  Built B = build(R"(
program d
param n = 8
real a(n,n) distribute (block,block)
real b(n,n) distribute (block,block)
begin
  a(3:n,1:n) = b(2:n-1,1:n) + b(1:n-2,1:n)
end
)");
  // Offsets -1 and -2 in the same direction coalesce to reach -2.
  ASSERT_EQ(B.Entries.size(), 1u);
  EXPECT_EQ(B.Entries[0].M.Offsets[0], -2);
}

TEST(Detect, SumBecomesReduce) {
  Built B = build(R"(
program d
param n = 8
real g(n,n) distribute (block,block)
real s
begin
  s = sum(g(1,1:n)) + sum(g(1:n,1:n))
end
)");
  ASSERT_EQ(B.Entries.size(), 2u);
  EXPECT_EQ(B.Entries[0].M.Kind, CommKind::Reduce);
  // Row sum reduces only the (ranged) second template dim; the full sum
  // reduces both.
  EXPECT_EQ(B.Entries[0].M.ReduceDims, (std::vector<uint8_t>{0, 1}));
  EXPECT_EQ(B.Entries[1].M.ReduceDims, (std::vector<uint8_t>{1, 1}));
}

TEST(Detect, ScalarReadOfDistributedElement) {
  Built B = build(R"(
program d
param n = 8
real g(n,n) distribute (block,block)
real s
begin
  s = g(3,4)
end
)");
  ASSERT_EQ(B.Entries.size(), 1u);
  EXPECT_EQ(B.Entries[0].M.Kind, CommKind::Bcast);
}

TEST(Detect, MisalignedIsGeneral) {
  Built B = build(R"(
program d
param n = 8
real a(n,n) distribute (block,block)
real c(n,32) distribute (block,block)
begin
  a(1:n,1:n) = c(1:n,1:n)
end
)");
  ASSERT_EQ(B.Entries.size(), 1u);
  EXPECT_EQ(B.Entries[0].M.Kind, CommKind::General);
}

TEST(Detect, TransposeIsGeneral) {
  Built B = build(R"(
program d
param n = 8
real a(n,n) distribute (block,block)
real b(n,n) distribute (block,block)
begin
  do i = 1, n
    do j = 1, n
      a(i,j) = b(j,i)
    end do
  end do
end
)");
  ASSERT_EQ(B.Entries.size(), 1u);
  EXPECT_EQ(B.Entries[0].M.Kind, CommKind::General);
}

TEST(Detect, AsdOfEntryExpandsByLevel) {
  Built B = build(R"(
program d
param n = 8
real a(n,n) distribute (block,block)
real b(n,n) distribute (block,block)
begin
  do t = 1, 2
    a(2:n,1:n) = b(1:n-1,1:n)
  end do
end
)");
  ASSERT_EQ(B.Entries.size(), 1u);
  // At level 0 (outside everything) the whole section is exposed.
  Asd At0 = asdOfEntry(*B.Ctx, B.Entries[0], 0);
  EXPECT_EQ(At0.D.numElems(), 7 * 8);
  // At level 3 (inside the element loops) a single element remains.
  Asd At3 = asdOfEntry(*B.Ctx, B.Entries[0], 3);
  EXPECT_EQ(At3.D.numElems(), 1);
}

TEST(Detect, AugmentClampsToArrayBounds) {
  Built B = build(R"(
program d
param n = 8
real a(n,n) distribute (block,block)
real b(n,n) distribute (block,block)
begin
  a(2:n,2:n) = b(1:n-1,1:n-1)
end
)");
  ASSERT_EQ(B.Entries.size(), 2u);
  for (const CommEntry &E : B.Entries) {
    Asd A = asdOfEntry(*B.Ctx, E, 0);
    for (unsigned D = 0; D != A.D.rank(); ++D) {
      EXPECT_GE(A.D.dim(D).Lo.constValue(), 1);
      EXPECT_LE(A.D.dim(D).Hi.constValue(), 8);
    }
  }
}
