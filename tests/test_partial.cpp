//===- tests/test_partial.cpp - partial redundancy elimination ------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the [14]-style partial redundancy elimination the paper's
/// Section 4.6 discussion contrasts against ("the solution proposed in [14]
/// would ... reduce the communication for b2 to ASD(b2) - ASD(b1), while
/// the communication for b1 would remain unchanged"), and of the section
/// difference operation backing it.
///
//===----------------------------------------------------------------------===//

#include "driver/Compile.h"
#include "lower/Schedule.h"
#include "runtime/Verify.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace gca;

namespace {

SecDim dim(int64_t Lo, int64_t Hi, int64_t Step = 1) {
  return SecDim::triplet(AffineExpr::constant(Lo), AffineExpr::constant(Hi),
                         Step);
}

} // namespace

TEST(SectionDifference, SuffixRemainder) {
  RegSection A({dim(1, 10), dim(1, 8)});
  RegSection B({dim(1, 10), dim(1, 5)});
  RegSection Rem;
  ASSERT_TRUE(A.difference(B, Rem));
  EXPECT_EQ(Rem.dim(1).Lo.constValue(), 6);
  EXPECT_EQ(Rem.dim(1).Hi.constValue(), 8);
  EXPECT_EQ(Rem.dim(0).Hi.constValue(), 10);
}

TEST(SectionDifference, PrefixRemainder) {
  RegSection A({dim(1, 10)});
  RegSection B({dim(4, 12)});
  RegSection Rem;
  ASSERT_TRUE(A.difference(B, Rem));
  EXPECT_EQ(Rem.dim(0).Lo.constValue(), 1);
  EXPECT_EQ(Rem.dim(0).Hi.constValue(), 3);
}

TEST(SectionDifference, FullCoverIsEmpty) {
  RegSection A({dim(2, 9)});
  RegSection B({dim(1, 10)});
  RegSection Rem;
  EXPECT_FALSE(A.difference(B, Rem));
}

TEST(SectionDifference, TwoSidedNotRepresentable) {
  RegSection A({dim(1, 10)});
  RegSection B({dim(4, 6)}); // Remainder would be two pieces.
  RegSection Rem;
  EXPECT_FALSE(A.difference(B, Rem));
}

TEST(SectionDifference, TwoUncoveredDimsNotRepresentable) {
  RegSection A({dim(1, 10), dim(1, 10)});
  RegSection B({dim(1, 5), dim(1, 5)});
  RegSection Rem;
  EXPECT_FALSE(A.difference(B, Rem));
}

TEST(SectionDifference, StridedPhasesBlocked) {
  // Odd columns minus all columns is empty; all minus odd is the even
  // phase, which a single regular section cannot... it can: step 2 from 2.
  // But the lattice-phase case (different strides) is conservatively
  // rejected by the stride-compat screen.
  RegSection All({dim(1, 16)});
  RegSection Odd({dim(1, 15, 2)});
  RegSection Rem;
  EXPECT_FALSE(All.difference(Odd, Rem)); // Stride screen rejects.
}

TEST(PartialRedundancy, Figure4ReducesB2Volume) {
  // Under earliest placement with partial redundancy, b2 ships only
  // ASD(b2) - ASD(b1) while b1 stays — exactly the [14] behaviour the
  // paper describes. Call-site count is unchanged (that is the paper's
  // point: the startup overhead remains).
  CompileOptions Plain, Partial;
  Plain.Placement.Strat = Partial.Placement.Strat = Strategy::Earliest;
  Partial.Placement.PartialRedundancy = true;
  Plain.Params["n"] = Partial.Params["n"] = 16;

  CompileResult A = compileSource(figure4Workload().Source, Plain);
  CompileResult B = compileSource(figure4Workload().Source, Partial);
  ASSERT_TRUE(A.Ok && B.Ok);
  EXPECT_EQ(A.Routines[0].Plan.Stats.groups(CommKind::Shift), 3);
  EXPECT_EQ(B.Routines[0].Plan.Stats.groups(CommKind::Shift), 3);

  auto bBytes = [](const RoutineResult &RR) {
    double Elems = 0;
    for (const CommGroup &G : RR.Plan.Groups)
      for (const Asd &D : G.Data)
        if (RR.R->array(D.ArrayId).Name == "b")
          Elems += static_cast<double>(D.D.numElems());
    return Elems;
  };
  // b1 (odd columns) + full b2 vs b1 + even-column remainder... the strided
  // phase split is not single-section representable, so check the clearly
  // representable direction instead: total b volume must not increase, and
  // the plans stay verifiable.
  EXPECT_LE(bBytes(B.Routines[0]), bBytes(A.Routines[0]));

  const RoutineResult &RR = B.Routines[0];
  ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
  VerifyResult V = verifySchedule(*RR.Ctx, RR.Plan, Prog, 4);
  EXPECT_TRUE(V.Ok) << V.str();
}

TEST(PartialRedundancy, ReducesVolumeOnCleanOverlap) {
  // Two uses of the same rows with nested column ranges: the second ships
  // only the uncovered suffix.
  // The column-half definition between the two uses forces different
  // earliest points (so the entries do not simply coalesce), while leaving
  // the first delivery's columns 1:8 intact.
  const char *Src = R"(
program p
param n = 16
real a(n,n) distribute (block,block)
real b(n,n) distribute (block,block)
real c(n,n) distribute (block,block)
begin
  a = 1
  b(2:n,1:8) = a(1:n-1,1:8)
  a(1:n,9:16) = b(1:n,9:16)
  c(2:n,1:n) = a(1:n-1,1:n)
end
)";
  CompileOptions Plain, Partial;
  Plain.Placement.Strat = Partial.Placement.Strat = Strategy::Earliest;
  Partial.Placement.PartialRedundancy = true;
  CompileResult A = compileSource(Src, Plain);
  CompileResult B = compileSource(Src, Partial);
  ASSERT_TRUE(A.Ok && B.Ok);

  auto totalElems = [](const RoutineResult &RR) {
    double Elems = 0;
    for (const CommGroup &G : RR.Plan.Groups)
      for (const Asd &D : G.Data)
        Elems += static_cast<double>(D.D.numElems());
    return Elems;
  };
  // Plain: 15x8 + 15x16 = 360 elements; partial: the second exchange
  // ships only the refreshed columns 9:16 -> 15x8 + 15x8 = 240.
  EXPECT_EQ(totalElems(A.Routines[0]), 360);
  EXPECT_EQ(totalElems(B.Routines[0]), 240);

  const RoutineResult &RR = B.Routines[0];
  ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
  VerifyResult V = verifySchedule(*RR.Ctx, RR.Plan, Prog, 4);
  EXPECT_TRUE(V.Ok) << V.str();
}

TEST(PartialRedundancy, WorkloadsStillSafe) {
  for (const Workload *W : evaluationWorkloads()) {
    CompileOptions Opts;
    Opts.Placement.Strat = Strategy::Earliest;
    Opts.Placement.PartialRedundancy = true;
    Opts.Params["n"] = 12;
    Opts.Params["nsteps"] = 2;
    CompileResult R = compileSource(W->Source, Opts);
    ASSERT_TRUE(R.Ok) << R.Errors;
    for (const RoutineResult &RR : R.Routines) {
      ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
      VerifyResult V = verifySchedule(*RR.Ctx, RR.Plan, Prog, 4);
      EXPECT_TRUE(V.Ok) << W->Name << "/" << RR.R->name() << "\n" << V.str();
    }
  }
}
