//===- tests/test_verify.cpp - translation-validation verifier tests ------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The plan-mutation ("chaos") harness for the translation-validation layer:
/// each test compiles a program whose unmutated plan verifies clean, corrupts
/// the plan in one distinct way, and asserts the expected verifier rule
/// fires. The mutation classes cover both halves — the availability dataflow
/// (hoist past a def, hoist out of a carrying loop, sink past the use,
/// shrink a descriptor, retarget a subsumption, widen a mapping) and the
/// structural verifier (drop a group, invalid slot, duplicate membership,
/// tampered decision log, out-of-scope descriptor variable).
///
/// A clean-plan sweep closes the loop: every strategy over every workload
/// and a bank of generator seeds must produce zero violations, so the teeth
/// shown by the mutations are not false ones.
///
//===----------------------------------------------------------------------===//

#include "FuzzGen.h"
#include "analysis/AvailDataflow.h"
#include "driver/Compile.h"
#include "support/Stats.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace gca;
using fuzzgen::generateProgram;

namespace {

CompileResult compile(const std::string &Source,
                      Strategy Strat = Strategy::Global) {
  CompileOptions Opts;
  Opts.Placement.Strat = Strat;
  Opts.Audit = false;
  Opts.Lint = false;
  CompileResult R = compileSource(Source, Opts);
  EXPECT_TRUE(R.Ok) << R.Errors;
  return R;
}

bool hasRule(const VerifyReport &R, VerifyRule Rule) {
  for (const VerifyViolation &V : R.Violations)
    if (V.Rule == Rule)
      return true;
  return false;
}

/// Verifies the routine's plan, asserting it was clean before any mutation
/// when \p ExpectClean.
VerifyReport verify(const RoutineResult &RR) {
  return verifyPlan(*RR.Ctx, RR.Plan, PlacementOptions());
}

/// The test_analysis stencil: two reads of b separated by a redefinition,
/// so the global plan has two single-member groups.
const char *kStencil = "program p\n"
                       "param n = 8\n"
                       "real a(n,n) distribute (block,block)\n"
                       "real b(n,n) distribute (block,block)\n"
                       "real c(n,n) distribute (block,block)\n"
                       "begin\n"
                       "do i = 2, n\n"
                       "  do j = 1, n\n"
                       "    a(i,j) = b(i-1,j)\n"
                       "  end do\n"
                       "end do\n"
                       "do i = 1, n\n"
                       "  do j = 1, n\n"
                       "    b(i,j) = 2\n"
                       "  end do\n"
                       "end do\n"
                       "do i = 2, n\n"
                       "  do j = 1, n\n"
                       "    c(i,j) = b(i-1,j)\n"
                       "  end do\n"
                       "end do\n"
                       "end\n";

/// A time-loop-carried dependence: b is read (nest 1) and rewritten
/// (nest 2) every iteration of t, so the communication must fire inside
/// loop t each iteration — but the communicated section itself is t-free,
/// so hoisting it out of the loop leaves the descriptor perfectly in scope
/// and only the carried-dependence kill can catch the staleness.
const char *kCarried = "program p\n"
                       "param n = 8\n"
                       "param m = 4\n"
                       "real a(n,n) distribute (block,block)\n"
                       "real b(n,n) distribute (block,block)\n"
                       "begin\n"
                       "do t = 1, m\n"
                       "  do i = 2, n\n"
                       "    do j = 1, n\n"
                       "      a(i,j) = b(i-1,j)\n"
                       "    end do\n"
                       "  end do\n"
                       "  do i = 1, n\n"
                       "    do j = 1, n\n"
                       "      b(i,j) = a(i,j)\n"
                       "    end do\n"
                       "  end do\n"
                       "end do\n"
                       "end\n";

/// Two identical reads of b with no redefinition: the global strategy
/// eliminates the second entry through SubsumedBy. The middle nest
/// redefines d, pinning d's communication after it — so the d group cannot
/// merge with the b group and the plan keeps a second, unrelated group to
/// retarget things at.
const char *kRedundant = "program p\n"
                         "param n = 8\n"
                         "real a(n,n) distribute (block,block)\n"
                         "real b(n,n) distribute (block,block)\n"
                         "real c(n,n) distribute (block,block)\n"
                         "real d(n,n) distribute (block,block)\n"
                         "begin\n"
                         "do i = 2, n\n"
                         "  do j = 1, n\n"
                         "    a(i,j) = b(i-1,j)\n"
                         "  end do\n"
                         "end do\n"
                         "do i = 1, n\n"
                         "  do j = 1, n\n"
                         "    d(i,j) = 1\n"
                         "  end do\n"
                         "end do\n"
                         "do i = 2, n\n"
                         "  do j = 1, n\n"
                         "    c(i,j) = b(i-1,j) + d(i-1,j)\n"
                         "  end do\n"
                         "end do\n"
                         "end\n";

/// The eliminated entry of \p Plan (asserting exactly one exists).
int eliminatedEntry(const CommPlan &Plan) {
  for (const CommEntry &E : Plan.Entries)
    if (E.Eliminated)
      return E.Id;
  return -1;
}

} // namespace

//===----------------------------------------------------------------------===//
// Mutation classes: the dataflow half
//===----------------------------------------------------------------------===//

TEST(VerifyMutation, HoistPastDefCaught) {
  CompileResult R = compile(kStencil);
  RoutineResult &RR = R.Routines[0];
  ASSERT_EQ(RR.Plan.Groups.size(), 2u);
  ASSERT_TRUE(verify(RR).ok());
  // Hoist the second read's communication to the first one's placement,
  // before the redefinition of b: every path now reads stale data.
  RR.Plan.Groups[1].Placement = RR.Plan.Groups[0].Placement;

  VerifyReport V = verify(RR);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(hasRule(V, VerifyRule::AvailFreshness)) << V.str();
}

TEST(VerifyMutation, HoistOutOfCarryingLoopCaught) {
  CompileResult R = compile(kCarried);
  RoutineResult &RR = R.Routines[0];
  ASSERT_GE(RR.Plan.Groups.size(), 1u);
  ASSERT_TRUE(verify(RR).ok());
  // The communication for b(i-1,j) legally sits inside loop t (nest 2
  // rewrites b every iteration). Hoist it to the routine entry: its t-free
  // descriptor is still in scope there, but from iteration 2 on the data
  // is stale — only the carried-dependence back-edge kill can see it.
  int GId = -1;
  for (const CommEntry &E : RR.Plan.Entries)
    if (!E.Eliminated && E.M.Kind == CommKind::Shift)
      GId = E.GroupId;
  ASSERT_GE(GId, 0);
  ASSERT_GE(RR.Ctx->slotLevel(RR.Plan.Groups[GId].Placement), 1)
      << "expected an in-loop placement to hoist";
  RR.Plan.Groups[GId].Placement = RR.Ctx->G.slotAtEnd(RR.Ctx->G.entry());

  VerifyReport V = verify(RR);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(hasRule(V, VerifyRule::AvailFreshness)) << V.str();
  EXPECT_FALSE(hasRule(V, VerifyRule::AvailCoverage)) << V.str();
}

TEST(VerifyMutation, SinkPastUseCaught) {
  CompileResult R = compile(kStencil);
  RoutineResult &RR = R.Routines[0];
  ASSERT_TRUE(verify(RR).ok());
  // Move the first communication to just after its use: no path has the
  // data when the use executes.
  const CommEntry &E = RR.Plan.Entries[RR.Plan.Groups[0].Members[0]];
  RR.Plan.Groups[0].Placement = RR.Ctx->G.slotAfter(E.UseStmt);

  VerifyReport V = verify(RR);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(hasRule(V, VerifyRule::AvailCoverage)) << V.str();
}

TEST(VerifyMutation, ShrunkSectionCaught) {
  CompileResult R = compile(kStencil);
  RoutineResult &RR = R.Routines[0];
  ASSERT_FALSE(RR.Plan.Groups[0].Data.empty());
  ASSERT_TRUE(verify(RR).ok());
  // Shrink the communicated descriptor to one element: the GEN no longer
  // covers the use's section, so the fact is never generated.
  RegSection One(
      std::vector<SecDim>{SecDim::single(AffineExpr::constant(1)),
                          SecDim::single(AffineExpr::constant(1))});
  RR.Plan.Groups[0].Data[0].D = One;

  VerifyReport V = verify(RR);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(hasRule(V, VerifyRule::AvailCoverage)) << V.str();
}

TEST(VerifyMutation, RetargetedSubsumptionCaught) {
  CompileResult R = compile(kRedundant);
  RoutineResult &RR = R.Routines[0];
  int EId = eliminatedEntry(RR.Plan);
  ASSERT_GE(EId, 0) << "expected a SubsumedBy-eliminated entry";
  ASSERT_TRUE(verify(RR).ok());
  CommEntry &E = RR.Plan.Entries[EId];
  // Re-attach the eliminated entry to a group of a *different* array: the
  // group it now claims to ride on communicates nothing it needs.
  int NewG = -1;
  for (const CommGroup &Grp : RR.Plan.Groups)
    if (Grp.Id != E.GroupId &&
        !std::any_of(Grp.Data.begin(), Grp.Data.end(), [&](const Asd &A) {
          return A.ArrayId == E.ArrayId;
        }))
      NewG = Grp.Id;
  ASSERT_GE(NewG, 0) << "expected a group of another array";
  CommGroup &Old = RR.Plan.Groups[E.GroupId];
  Old.Attached.erase(
      std::find(Old.Attached.begin(), Old.Attached.end(), EId));
  RR.Plan.Groups[NewG].Attached.push_back(EId);
  E.GroupId = NewG;

  VerifyReport V = verify(RR);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(hasRule(V, VerifyRule::AvailRedundancy)) << V.str();
}

TEST(VerifyMutation, WidenedMappingCaught) {
  CompileResult R = compile(kRedundant);
  RoutineResult &RR = R.Routines[0];
  int EId = eliminatedEntry(RR.Plan);
  ASSERT_GE(EId, 0);
  ASSERT_TRUE(verify(RR).ok());
  // Widen the eliminated entry's shift: the serving group's mapping no
  // longer reaches every receiver the dropped message would have served
  // (the M1(D1) subset-of M2(D1) test of Section 4.6 fails).
  CommEntry &E = RR.Plan.Entries[EId];
  ASSERT_FALSE(E.M.Offsets.empty());
  for (int64_t &O : E.M.Offsets)
    O += 3;

  VerifyReport V = verify(RR);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(hasRule(V, VerifyRule::AvailRedundancy)) << V.str();
}

//===----------------------------------------------------------------------===//
// Mutation classes: the structural half
//===----------------------------------------------------------------------===//

TEST(VerifyMutation, DroppedGroupCaught) {
  CompileResult R = compile(kStencil);
  RoutineResult &RR = R.Routines[0];
  ASSERT_EQ(RR.Plan.Groups.size(), 2u);
  ASSERT_TRUE(verify(RR).ok());
  // Drop the last group wholesale: its member now dangles, and the decision
  // log still talks about a group the plan does not have.
  RR.Plan.Groups.pop_back();

  VerifyReport V = verify(RR);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(hasRule(V, VerifyRule::PlanIntegrity)) << V.str();
  EXPECT_TRUE(hasRule(V, VerifyRule::DecisionLog)) << V.str();
}

TEST(VerifyMutation, InvalidSlotCaught) {
  CompileResult R = compile(kStencil);
  RoutineResult &RR = R.Routines[0];
  ASSERT_TRUE(verify(RR).ok());
  RR.Plan.Groups[0].Placement = Slot{9999, 3};

  VerifyReport V = verify(RR);
  EXPECT_FALSE(V.ok());
  // Both halves see it: the slot is structurally absent, and the dataflow
  // treats the group as never firing.
  EXPECT_TRUE(hasRule(V, VerifyRule::PlanIntegrity)) << V.str();
  EXPECT_TRUE(hasRule(V, VerifyRule::AvailCoverage)) << V.str();
}

TEST(VerifyMutation, DuplicateMembershipCaught) {
  CompileResult R = compile(kStencil);
  RoutineResult &RR = R.Routines[0];
  ASSERT_TRUE(verify(RR).ok());
  RR.Plan.Groups[0].Members.push_back(RR.Plan.Groups[0].Members[0]);

  VerifyReport V = verify(RR);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(hasRule(V, VerifyRule::PlanIntegrity)) << V.str();
}

TEST(VerifyMutation, TamperedDecisionLogCaught) {
  CompileResult R = compile(kStencil);
  RoutineResult &RR = R.Routines[0];
  ASSERT_TRUE(verify(RR).ok());
  // Rewrite a GroupPlaced record to a different slot: the log no longer
  // explains the plan.
  bool Tampered = false;
  for (DecisionEvent &Ev : RR.Plan.Decisions)
    if (Ev.Kind == DecisionKind::GroupPlaced) {
      ++Ev.Where.Index;
      Tampered = true;
      break;
    }
  ASSERT_TRUE(Tampered);

  VerifyReport V = verify(RR);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(hasRule(V, VerifyRule::DecisionLog)) << V.str();
}

TEST(VerifyMutation, ErasedEliminationEventCaught) {
  CompileResult R = compile(kRedundant);
  RoutineResult &RR = R.Routines[0];
  ASSERT_GE(eliminatedEntry(RR.Plan), 0);
  ASSERT_TRUE(verify(RR).ok());
  // Drop every RedundancyEliminated record: an eliminated entry without an
  // explaining event is a hole in the log.
  auto &D = RR.Plan.Decisions;
  D.erase(std::remove_if(D.begin(), D.end(),
                         [](const DecisionEvent &Ev) {
                           return Ev.Kind ==
                                  DecisionKind::RedundancyEliminated;
                         }),
          D.end());

  VerifyReport V = verify(RR);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(hasRule(V, VerifyRule::DecisionLog)) << V.str();
}

TEST(VerifyMutation, OutOfScopeDescriptorVarCaught) {
  CompileResult R = compile(kStencil);
  RoutineResult &RR = R.Routines[0];
  ASSERT_FALSE(RR.Plan.Groups[0].Data.empty());
  ASSERT_TRUE(verify(RR).ok());
  // Parameterize the group's descriptor by a loop variable that is not in
  // scope at its (loop-level-0) placement point.
  int IVar = -1;
  for (size_t V = 0; V != RR.Ctx->R.loopVarNames().size(); ++V)
    if (RR.Ctx->varLoop(static_cast<int>(V)))
      IVar = static_cast<int>(V);
  ASSERT_GE(IVar, 0);
  ASSERT_EQ(RR.Ctx->slotLevel(RR.Plan.Groups[0].Placement), 0)
      << "expected a top-level placement";
  RR.Plan.Groups[0].Data[0].D.dim(0).Lo = AffineExpr::var(IVar);

  VerifyReport V = verify(RR);
  EXPECT_FALSE(V.ok());
  EXPECT_TRUE(hasRule(V, VerifyRule::PlanIntegrity)) << V.str();
}

//===----------------------------------------------------------------------===//
// Clean plans: zero violations across strategies, workloads, and seeds
//===----------------------------------------------------------------------===//

namespace {

const Strategy kAllStrategies[] = {Strategy::Orig, Strategy::Earliest,
                                   Strategy::Global,
                                   Strategy::EarliestCombine,
                                   Strategy::Optimal};

} // namespace

TEST(VerifyClean, AllWorkloadsAllStrategiesPass) {
  for (const Workload *W : allWorkloads()) {
    for (Strategy S : kAllStrategies) {
      CompileOptions Opts;
      Opts.Placement.Strat = S;
      Opts.Audit = false;
      CompileResult R = compileSource(W->Source, Opts);
      ASSERT_TRUE(R.Ok) << W->Name << ": " << R.Errors;
      for (const RoutineResult &RR : R.Routines) {
        VerifyReport V = verifyPlan(*RR.Ctx, RR.Plan, Opts.Placement);
        EXPECT_TRUE(V.ok()) << W->Name << " [" << strategyName(S) << "]\n"
                            << V.str();
        EXPECT_GT(V.Checks, 0);
      }
    }
  }
}

TEST(VerifyClean, GeneratedProgramsPass) {
  // 20 generator seeds (disjoint from the fuzz tier's 1..120) x 5
  // strategies, with the extension options rotating like the fuzz harness
  // rotates them.
  for (uint64_t Seed = 200; Seed != 220; ++Seed) {
    std::string Src = generateProgram(Seed);
    SCOPED_TRACE(Src);
    for (Strategy S : kAllStrategies) {
      CompileOptions Opts;
      Opts.Placement.Strat = S;
      Opts.Placement.DeferReductions = Seed % 3 == 0;
      Opts.Placement.PartialRedundancy = Seed % 4 == 0;
      Opts.FuseLoops = Seed % 5 == 0;
      Opts.Audit = false;
      CompileResult R = compileSource(Src, Opts);
      ASSERT_TRUE(R.Ok) << R.Errors;
      for (const RoutineResult &RR : R.Routines) {
        VerifyReport V = verifyPlan(*RR.Ctx, RR.Plan, Opts.Placement);
        EXPECT_TRUE(V.ok()) << "[" << strategyName(S) << "] seed "
                            << Seed << "\n"
                            << V.str();
      }
    }
  }
}

TEST(VerifyClean, ReportRendersAndCounts) {
  CompileResult R = compile(kStencil);
  const RoutineResult &RR = R.Routines[0];
  PlacementOptions Opts;
  StatsRegistry Stats;
  Opts.Stats = &Stats;
  VerifyReport V = verifyPlan(*RR.Ctx, RR.Plan, Opts);
  EXPECT_TRUE(V.ok());
  EXPECT_EQ(V.Facts, 2);
  EXPECT_GT(V.Checks, 0);
  EXPECT_NE(V.str().find("PASS"), std::string::npos);
  EXPECT_NE(V.json().find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(Stats.get("verify.dataflow-facts"), 2);
  EXPECT_EQ(Stats.get("verify.violations"), 0);
  EXPECT_EQ(Stats.get("verify.checks"), V.Checks);
}

TEST(VerifyClean, ViolationReportIsMachineReadable) {
  CompileResult R = compile(kStencil);
  RoutineResult &RR = R.Routines[0];
  const CommEntry &E = RR.Plan.Entries[RR.Plan.Groups[0].Members[0]];
  RR.Plan.Groups[0].Placement = RR.Ctx->G.slotAfter(E.UseStmt);
  DiagEngine Diags;
  VerifyReport V = verifyPlan(*RR.Ctx, RR.Plan, PlacementOptions(), &Diags);
  ASSERT_FALSE(V.ok());
  EXPECT_NE(V.json().find("\"ok\":false"), std::string::npos);
  EXPECT_NE(V.json().find("\"rule\":\"avail-coverage\""), std::string::npos)
      << V.json();
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("plan verify [avail-coverage]"),
            std::string::npos)
      << Diags.str();
  // The dataflow violations carry the offending use's source location.
  bool HasLoc = false;
  for (const Diag &D : Diags.diags())
    HasLoc |= D.Loc.isValid();
  EXPECT_TRUE(HasLoc) << Diags.str();
}
