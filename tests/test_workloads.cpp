//===- tests/test_workloads.cpp - evaluation workload tests ---------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end checks of the evaluation programs: the static message counts
/// of the paper's Figure 10 table, monotonicity of the strategies, and the
/// data-provenance verification of every generated schedule (Claim 4.7).
///
//===----------------------------------------------------------------------===//

#include "driver/Compile.h"
#include "lower/Schedule.h"
#include "runtime/Simulate.h"
#include "runtime/Verify.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace gca;

namespace {

CompileResult compile(const Workload &W, Strategy S, int64_t N = 12,
                      int64_t Steps = 2) {
  CompileOptions Opts;
  Opts.Placement.Strat = S;
  Opts.Params["n"] = N;
  Opts.Params["nsteps"] = Steps;
  CompileResult R = compileSource(W.Source, Opts);
  EXPECT_TRUE(R.Ok) << R.Errors;
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// The Figure 10 static-count table, row by row.
//===----------------------------------------------------------------------===//

class Figure10Table : public ::testing::TestWithParam<int> {};

TEST_P(Figure10Table, CountsMatchPaper) {
  const Workload *W = evaluationWorkloads()[GetParam()];
  CompileResult Orig = compile(*W, Strategy::Orig);
  CompileResult Nored = compile(*W, Strategy::Earliest);
  CompileResult Comb = compile(*W, Strategy::Global);
  for (const ExpectedCounts &E : W->Expected) {
    CommKind K = E.Kind == "SUM" ? CommKind::Reduce : CommKind::Shift;
    ASSERT_NE(Orig.find(E.Routine), nullptr) << E.Routine;
    EXPECT_EQ(Orig.find(E.Routine)->Plan.Stats.groups(K), E.Orig)
        << W->Name << "/" << E.Routine << " orig " << E.Kind;
    EXPECT_EQ(Nored.find(E.Routine)->Plan.Stats.groups(K), E.Nored)
        << W->Name << "/" << E.Routine << " nored " << E.Kind;
    EXPECT_EQ(Comb.find(E.Routine)->Plan.Stats.groups(K), E.Comb)
        << W->Name << "/" << E.Routine << " comb " << E.Kind;
  }
}

INSTANTIATE_TEST_SUITE_P(Rows, Figure10Table, ::testing::Range(0, 4));

//===----------------------------------------------------------------------===//
// Safety: every schedule delivers every remote element after its last write.
//===----------------------------------------------------------------------===//

class ScheduleSafety
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ScheduleSafety, ProvenanceVerifies) {
  auto [WIdx, SIdx, P] = GetParam();
  const Workload *W = allWorkloads()[WIdx];
  Strategy S = static_cast<Strategy>(SIdx);
  CompileResult R = compile(*W, S);
  for (const RoutineResult &RR : R.Routines) {
    ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
    VerifyResult V = verifySchedule(*RR.Ctx, RR.Plan, Prog, P);
    EXPECT_TRUE(V.Ok) << W->Name << "/" << RR.R->name() << " ["
                      << strategyName(S) << ", P=" << P << "]\n"
                      << V.str();
    EXPECT_GT(V.ChecksPerformed, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScheduleSafety,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 3),
                       ::testing::Values(2, 4, 6)));

//===----------------------------------------------------------------------===//
// Strategy monotonicity: the paper's headline relations.
//===----------------------------------------------------------------------===//

class StrategyMonotonic : public ::testing::TestWithParam<int> {};

TEST_P(StrategyMonotonic, CombNeverMoreSitesThanNored) {
  const Workload *W = evaluationWorkloads()[GetParam()];
  CompileResult Orig = compile(*W, Strategy::Orig);
  CompileResult Nored = compile(*W, Strategy::Earliest);
  CompileResult Comb = compile(*W, Strategy::Global);
  for (size_t I = 0; I != Orig.Routines.size(); ++I) {
    int O = Orig.Routines[I].Plan.Stats.totalGroups();
    int N = Nored.Routines[I].Plan.Stats.totalGroups();
    int C = Comb.Routines[I].Plan.Stats.totalGroups();
    EXPECT_LE(N, O);
    EXPECT_LE(C, N);
  }
}

TEST_P(StrategyMonotonic, SimulatedCommTimeImproves) {
  const Workload *W = evaluationWorkloads()[GetParam()];
  MachineProfile M = MachineProfile::sp2();
  double Times[3];
  Strategy Strats[3] = {Strategy::Orig, Strategy::Earliest, Strategy::Global};
  for (int S = 0; S != 3; ++S) {
    CompileResult R = compile(*W, Strats[S], 24, 2);
    double Comm = 0;
    for (const RoutineResult &RR : R.Routines) {
      ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
      Comm += simulate(*RR.Ctx, RR.Plan, Prog, M, 25).CommTime;
    }
    Times[S] = Comm;
  }
  // Small slack: redundancy elimination may slightly enlarge one message
  // while removing another.
  EXPECT_LE(Times[1], Times[0] * 1.05);
  EXPECT_LE(Times[2], Times[1] * 1.05);
  EXPECT_LT(Times[2], Times[0]);
}

INSTANTIATE_TEST_SUITE_P(Workloads, StrategyMonotonic,
                         ::testing::Range(0, 4));

//===----------------------------------------------------------------------===//
// Problem-size robustness: counts are size-independent, as static counts
// must be.
//===----------------------------------------------------------------------===//

class SizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SizeSweep, StaticCountsAreSizeIndependent) {
  int64_t N = GetParam();
  const Workload &W = shallowWorkload();
  CompileResult R = compile(W, Strategy::Global, N);
  EXPECT_EQ(R.Routines[0].Plan.Stats.groups(CommKind::Shift), 8) << N;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(8, 12, 16, 24, 48));

//===----------------------------------------------------------------------===//
// gravity specifics: the Figure 1 narrative.
//===----------------------------------------------------------------------===//

TEST(Gravity, CombinedGroupsPairArrays) {
  CompileResult R = compile(gravityWorkload(), Strategy::Global);
  const RoutineResult &RR = R.Routines[0];
  // Each NNC group carries both g and glast ("the NNC for g and glast can
  // be combined").
  int Paired = 0;
  for (const CommGroup &G : RR.Plan.Groups) {
    if (G.Kind != CommKind::Shift)
      continue;
    EXPECT_EQ(G.Data.size(), 2u);
    ++Paired;
  }
  EXPECT_EQ(Paired, 4);
  // The two SUM groups each carry four reductions ("two parallel sets of
  // four global sums").
  int Sums = 0;
  for (const CommGroup &G : RR.Plan.Groups) {
    if (G.Kind != CommKind::Reduce)
      continue;
    EXPECT_EQ(G.Members.size() + G.Attached.size(), 4u);
    ++Sums;
  }
  EXPECT_EQ(Sums, 2);
}

TEST(Hydflo, RedundancyFactor) {
  // gauss is the paper's "factor of almost nine" row: 52 -> 6.
  CompileResult Orig = compile(hydfloWorkload(), Strategy::Orig);
  CompileResult Comb = compile(hydfloWorkload(), Strategy::Global);
  int O = Orig.find("gauss")->Plan.Stats.groups(CommKind::Shift);
  int C = Comb.find("gauss")->Plan.Stats.groups(CommKind::Shift);
  EXPECT_GE(static_cast<double>(O) / C, 8.0);
}
