//===- tests/test_ssa.cpp - array SSA tests -------------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ssa/Ssa.h"

#include <gtest/gtest.h>

using namespace gca;

namespace {

struct Built {
  std::unique_ptr<Program> P;
  std::unique_ptr<Cfg> G;
  std::unique_ptr<Ssa> S;
  const Routine *R;
};

Built build(const std::string &Src) {
  DiagEngine D;
  Built B;
  B.P = parseProgram(Src, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  B.R = B.P->Routines[0].get();
  B.G = std::make_unique<Cfg>(Cfg::build(*B.R));
  B.S = std::make_unique<Ssa>(Ssa::build(*B.G));
  return B;
}

int countDefs(const Ssa &S, DefKind K) {
  int N = 0;
  for (unsigned I = 0; I != S.numDefs(); ++I)
    N += S.def(static_cast<int>(I)).Kind == K;
  return N;
}

} // namespace

TEST(Ssa, EntryDefsForEveryVariable) {
  Built B = build(R"(
program s
param n = 4
real a(n) distribute (block)
real b(n) distribute (block)
real x
begin
  a(1) = 1
end
)");
  EXPECT_EQ(B.S->numVars(), 3u);
  EXPECT_EQ(countDefs(*B.S, DefKind::Entry), 3);
  for (unsigned V = 0; V != 3; ++V)
    EXPECT_EQ(B.S->def(B.S->entryDef(static_cast<int>(V))).Kind,
              DefKind::Entry);
}

TEST(Ssa, StraightLinePrevChain) {
  Built B = build(R"(
program s
param n = 4
real a(n) distribute (block)
begin
  a(1) = 1
  a(2) = a(1)
end
)");
  const Routine &R = *B.R;
  const auto *S1 = cast<AssignStmt>(R.body()[0]);
  const auto *S2 = cast<AssignStmt>(R.body()[1]);
  int Var = B.S->varOfArray(0);
  int D1 = B.S->defOfStmt(S1);
  int D2 = B.S->defOfStmt(S2);
  EXPECT_EQ(B.S->def(D1).Prev, B.S->entryDef(Var));
  EXPECT_EQ(B.S->def(D2).Prev, D1);
  // S2's RHS sees S1's def (not its own).
  EXPECT_EQ(B.S->reachingBefore(S2, Var), D1);
}

TEST(Ssa, LoopPhiEntryAndExit) {
  Built B = build(R"(
program s
param n = 4
real a(n) distribute (block)
begin
  do i = 1, n
    a(i) = a(i)
  end do
  a(1) = a(1)
end
)");
  const Routine &R = *B.R;
  EXPECT_EQ(countDefs(*B.S, DefKind::PhiEntry), 1);
  EXPECT_EQ(countDefs(*B.S, DefKind::PhiExit), 1);

  const auto *L = cast<LoopStmt>(R.body()[0]);
  const auto *Body = cast<AssignStmt>(L->body()[0]);
  const auto *After = cast<AssignStmt>(R.body()[1]);
  int Var = B.S->varOfArray(0);

  // The body's use sees the phiEntry; its params are [entry, body def].
  int Phi = B.S->reachingBefore(Body, Var);
  EXPECT_EQ(B.S->def(Phi).Kind, DefKind::PhiEntry);
  ASSERT_EQ(B.S->def(Phi).Params.size(), 2u);
  EXPECT_EQ(B.S->def(Phi).Params[0], B.S->entryDef(Var));
  EXPECT_EQ(B.S->def(Phi).Params[1], B.S->defOfStmt(Body));

  // After the loop, the phiExit merges [phiEntry, zero-trip pre-value].
  int Exit = B.S->reachingBefore(After, Var);
  EXPECT_EQ(B.S->def(Exit).Kind, DefKind::PhiExit);
  EXPECT_EQ(B.S->def(Exit).Params[0], Phi);
  EXPECT_EQ(B.S->def(Exit).Params[1], B.S->entryDef(Var));
}

TEST(Ssa, IfMergePhi) {
  Built B = build(R"(
program s
param n = 4
real a(n) distribute (block)
real b(n) distribute (block)
begin
  if (cond) then
    a(1) = 1
  else
    a(2) = 2
  end if
  b(1) = a(1)
end
)");
  const Routine &R = *B.R;
  EXPECT_EQ(countDefs(*B.S, DefKind::PhiMerge), 1);
  const auto *Use = cast<AssignStmt>(R.body()[1]);
  int Var = B.S->varOfArray(R.findArray("a"));
  int Phi = B.S->reachingBefore(Use, Var);
  EXPECT_EQ(B.S->def(Phi).Kind, DefKind::PhiMerge);
  // Variables assigned identically on both paths need no phi: b has none.
  for (unsigned I = 0; I != B.S->numDefs(); ++I) {
    const SsaDef &D = B.S->def(static_cast<int>(I));
    if (D.Kind == DefKind::PhiMerge) {
      EXPECT_EQ(B.S->varName(D.Var), "a");
    }
  }
}

TEST(Ssa, NoPhiForUntouchedVars) {
  Built B = build(R"(
program s
param n = 4
real a(n) distribute (block)
real b(n) distribute (block)
begin
  do i = 1, n
    a(i) = b(i)
  end do
end
)");
  // b is only read: no phis for it.
  for (unsigned I = 0; I != B.S->numDefs(); ++I) {
    const SsaDef &D = B.S->def(static_cast<int>(I));
    if (D.Kind != DefKind::Entry) {
      EXPECT_EQ(B.S->varName(D.Var), "a");
    }
  }
}

TEST(Ssa, CollectReachingRegularDefs) {
  Built B = build(R"(
program s
param n = 4
real a(n) distribute (block)
real b(n) distribute (block)
begin
  a(1) = 1
  if (cond) then
    a(2) = 2
  end if
  do i = 1, n
    a(i) = 3
  end do
  b(1) = a(1)
end
)");
  const Routine &R = *B.R;
  const auto *Use = cast<AssignStmt>(R.body().back());
  int Var = B.S->varOfArray(R.findArray("a"));
  std::vector<int> Defs;
  bool FromEntry = false;
  B.S->collectReachingRegularDefs(B.S->reachingBefore(Use, Var), Defs,
                                  FromEntry);
  // All three regular defs of a reach the use (arrays preserve), and so
  // does the ENTRY pseudo-def.
  EXPECT_EQ(Defs.size(), 3u);
  EXPECT_TRUE(FromEntry);
}

TEST(Ssa, CommonNestingLevel) {
  Built B = build(R"(
program s
param n = 4
real a(n,n) distribute (block,block)
begin
  do i = 1, n
    do j = 1, n
      a(i,j) = a(i,j)
    end do
    a(i,1) = 0
  end do
end
)");
  const Routine &R = *B.R;
  const auto *Li = cast<LoopStmt>(R.body()[0]);
  const auto *Lj = cast<LoopStmt>(Li->body()[0]);
  const auto *Inner = cast<AssignStmt>(Lj->body()[0]);
  const auto *Outer = cast<AssignStmt>(Li->body()[1]);
  int Var = B.S->varOfArray(0);
  int InnerDef = B.S->defOfStmt(Inner);
  int OuterDef = B.S->defOfStmt(Outer);
  const std::vector<int> &InnerNest = B.G->loopNestOf(Inner);
  EXPECT_EQ(B.S->commonNestingLevel(InnerDef, InnerNest), 2);
  EXPECT_EQ(B.S->commonNestingLevel(OuterDef, InnerNest), 1);
  EXPECT_EQ(B.S->commonNestingLevel(B.S->entryDef(Var), InnerNest), 0);
}

TEST(Ssa, AfterSlotPlacement) {
  Built B = build(R"(
program s
param n = 4
real a(n) distribute (block)
begin
  a(1) = 1
  do i = 1, n
    a(i) = 2
  end do
end
)");
  const Routine &R = *B.R;
  const auto *S1 = cast<AssignStmt>(R.body()[0]);
  int D1 = B.S->defOfStmt(S1);
  // "Communication placed at d means immediately after d."
  EXPECT_EQ(B.S->def(D1).AfterSlot, B.G->slotAfter(S1));
  // phiEntry sits at the header top, phiExit at the postexit top.
  const CfgLoop &L = B.G->loop(0);
  for (unsigned I = 0; I != B.S->numDefs(); ++I) {
    const SsaDef &D = B.S->def(static_cast<int>(I));
    if (D.Kind == DefKind::PhiEntry) {
      EXPECT_EQ(D.AfterSlot, (Slot{L.Header, 0}));
    }
    if (D.Kind == DefKind::PhiExit) {
      EXPECT_EQ(D.AfterSlot, (Slot{L.Postexit, 0}));
    }
  }
}
