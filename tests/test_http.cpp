//===- tests/test_http.cpp - Admin-plane HTTP responder tests -------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
//
// Tier-1 coverage for support/Http.h: request-head parsing over a
// socketpair (every HttpReadStatus), the protocol failure domains of a live
// listener (431 on oversized headers, 400 on non-HTTP bytes, silent close
// on truncation — each costing only its own connection), concurrent
// scrapes, and byte-identical responses under GCA_FAULT short-write storms.
//
//===----------------------------------------------------------------------===//

#include "support/Http.h"
#include "support/Io.h"

#include "gtest/gtest.h"

#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace gca;

namespace {

/// Arms the global fault injector for one scope; always disarms on exit so
/// later tests see clean I/O.
struct FaultScope {
  explicit FaultScope(const std::string &Spec) {
    EXPECT_TRUE(FaultInjector::instance().configure(Spec));
  }
  ~FaultScope() { FaultInjector::instance().reset(); }
};

int connectTcp(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Writes \p Bytes raw, half-closes the write side, and reads the entire
/// response (empty when the server closes without answering).
std::string rawExchange(uint16_t Port, const std::string &Bytes) {
  int Fd = connectTcp(Port);
  EXPECT_GE(Fd, 0);
  if (Fd < 0)
    return std::string();
  EXPECT_EQ(ioWriteFull(Fd, Bytes.data(), Bytes.size()), IoStatus::Ok);
  ::shutdown(Fd, SHUT_WR);
  std::string Resp;
  EXPECT_NE(ioReadToEof(Fd, Resp), IoStatus::Error);
  ::close(Fd);
  return Resp;
}

/// Feeds \p Bytes through a socketpair into readHttpRequest. The writer
/// closes its end after sending, so parses that need more input see EOF.
HttpReadStatus parseBytes(const std::string &Bytes, HttpRequest &Req) {
  int SV[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, SV), 0);
  std::thread Writer([&, Fd = SV[0]] {
    if (!Bytes.empty())
      ioWriteFull(Fd, Bytes.data(), Bytes.size());
    ::close(Fd);
  });
  HttpReadStatus St = readHttpRequest(SV[1], Req);
  Writer.join();
  ::close(SV[1]);
  return St;
}

//===----------------------------------------------------------------------===//
// Request-head parsing
//===----------------------------------------------------------------------===//

TEST(HttpParseTest, WellFormedRequestHead) {
  HttpRequest Req;
  ASSERT_EQ(parseBytes("GET /metrics?name=x HTTP/1.1\r\n"
                       "Host: localhost\r\n"
                       "ACCEPT:  text/plain \r\n"
                       "\r\n",
                       Req),
            HttpReadStatus::Ok);
  EXPECT_EQ(Req.Method, "GET");
  EXPECT_EQ(Req.Target, "/metrics?name=x");
  EXPECT_EQ(Req.path(), "/metrics");
  EXPECT_EQ(Req.Version, "HTTP/1.1");
  // Header lookup is case-insensitive and values are trimmed.
  ASSERT_NE(Req.header("host"), nullptr);
  EXPECT_EQ(*Req.header("HOST"), "localhost");
  ASSERT_NE(Req.header("accept"), nullptr);
  EXPECT_EQ(*Req.header("accept"), "text/plain");
  EXPECT_EQ(Req.header("x-missing"), nullptr);
}

TEST(HttpParseTest, BareNewlineTerminatorTolerated) {
  HttpRequest Req;
  ASSERT_EQ(parseBytes("GET / HTTP/1.0\nHost: a\n\n", Req),
            HttpReadStatus::Ok);
  EXPECT_EQ(Req.path(), "/");
}

TEST(HttpParseTest, EofBeforeFirstByte) {
  HttpRequest Req;
  EXPECT_EQ(parseBytes("", Req), HttpReadStatus::Eof);
}

TEST(HttpParseTest, TruncatedMidRequest) {
  HttpRequest Req;
  EXPECT_EQ(parseBytes("GET /metrics HTTP/1.1\r\nHost:", Req),
            HttpReadStatus::Truncated);
}

TEST(HttpParseTest, NonHttpBytesAreMalformed) {
  HttpRequest Req;
  // A GCAF frame aimed at the admin port (a misconfigured gca-load).
  EXPECT_EQ(parseBytes("GCAFxxxxnot-http\r\n\r\n", Req),
            HttpReadStatus::Malformed);
  EXPECT_EQ(parseBytes("GET /nover\r\n\r\n", Req), HttpReadStatus::Malformed);
}

TEST(HttpParseTest, OversizedHeaderBlockHitsCap) {
  HttpRequest Req;
  std::string Huge = "GET / HTTP/1.1\r\nX-Pad: ";
  Huge.append(2 * kMaxHttpHeaderBytes, 'a');
  EXPECT_EQ(parseBytes(Huge, Req), HttpReadStatus::TooLarge);
}

//===----------------------------------------------------------------------===//
// Live listener failure domains
//===----------------------------------------------------------------------===//

/// A listener whose handler echoes the request path; every protocol-error
/// test checks the next well-formed request still succeeds, proving the
/// error cost only its own connection.
struct EchoServer {
  HttpServer Server{[](const HttpRequest &R) {
    HttpResponse Resp;
    Resp.Body = "path=" + R.path() + "\n";
    return Resp;
  }};
  EchoServer() {
    std::string Err;
    EXPECT_TRUE(Server.start("127.0.0.1:0", Err)) << Err;
  }
  std::string get(const std::string &Path, int &Status) {
    std::string Body, Err;
    EXPECT_TRUE(httpGet(Server.address(), Path, Status, Body, Err)) << Err;
    return Body;
  }
};

TEST(HttpServerTest, EphemeralPortRoundTrip) {
  EchoServer ES;
  EXPECT_NE(ES.Server.port(), 0);
  int Status = 0;
  EXPECT_EQ(ES.get("/healthz", Status), "path=/healthz\n");
  EXPECT_EQ(Status, 200);
  EXPECT_EQ(ES.Server.requestsServed(), 1);
}

TEST(HttpServerTest, OversizedHeaderAnswered431) {
  EchoServer ES;
  // Exactly the cap, terminator never seen: the server consumes every byte
  // we sent before answering, so its close cannot RST away the response.
  std::string Huge = "GET / HTTP/1.1\r\nX-Pad: ";
  Huge.resize(kMaxHttpHeaderBytes, 'a');
  std::string Resp = rawExchange(ES.Server.port(), Huge);
  EXPECT_EQ(Resp.compare(0, 12, "HTTP/1.1 431"), 0) << Resp;
  // The listener survives: a normal request on a fresh connection works.
  int Status = 0;
  ES.get("/ok", Status);
  EXPECT_EQ(Status, 200);
  EXPECT_GE(ES.Server.badRequests(), 1);
}

TEST(HttpServerTest, NonHttpBytesAnswered400) {
  EchoServer ES;
  std::string Resp = rawExchange(ES.Server.port(), "GCAFxxxxjunk\r\n\r\n");
  EXPECT_EQ(Resp.compare(0, 12, "HTTP/1.1 400"), 0) << Resp;
  int Status = 0;
  ES.get("/ok", Status);
  EXPECT_EQ(Status, 200);
}

TEST(HttpServerTest, TruncatedRequestClosedSilently) {
  EchoServer ES;
  // Half a request line, then gone: no response is owed and none arrives.
  EXPECT_EQ(rawExchange(ES.Server.port(), "GET /met"), "");
  int Status = 0;
  ES.get("/ok", Status);
  EXPECT_EQ(Status, 200);
  EXPECT_EQ(ES.Server.requestsServed(), 1); // The bad one never counted.
  EXPECT_GE(ES.Server.badRequests(), 1);
}

TEST(HttpServerTest, ConcurrentScrapes) {
  EchoServer ES;
  const int N = 16;
  std::vector<std::thread> Threads;
  std::vector<int> Statuses(N, 0);
  std::vector<std::string> Bodies(N);
  for (int I = 0; I < N; ++I)
    Threads.emplace_back([&, I] {
      std::string Err;
      httpGet(ES.Server.address(), "/metrics", Statuses[I], Bodies[I], Err);
    });
  for (std::thread &T : Threads)
    T.join();
  for (int I = 0; I < N; ++I) {
    EXPECT_EQ(Statuses[I], 200) << "scrape " << I;
    EXPECT_EQ(Bodies[I], "path=/metrics\n") << "scrape " << I;
  }
  EXPECT_EQ(ES.Server.requestsServed(), N);
}

TEST(HttpServerTest, ScrapesByteIdenticalUnderShortWriteFaults) {
  // A multi-kilobyte body forces many write calls, so injected short
  // writes actually bite; the checked I/O layer must still deliver every
  // byte, or fail loudly — never truncate.
  std::string Big;
  for (int I = 0; I < 400; ++I)
    Big += "gca_counter_" + std::to_string(I) + " " + std::to_string(I) + "\n";
  HttpServer Server{[&](const HttpRequest &) {
    HttpResponse R;
    R.Body = Big;
    return R;
  }};
  std::string Err;
  ASSERT_TRUE(Server.start("127.0.0.1:0", Err)) << Err;

  FaultScope Faults("short-write=40,short-read=40,eagain=25,eintr=25,seed=7");
  for (int I = 0; I < 5; ++I) {
    int Status = 0;
    std::string Body;
    ASSERT_TRUE(httpGet(Server.address(), "/metrics", Status, Body, Err))
        << "scrape " << I << ": " << Err;
    EXPECT_EQ(Status, 200);
    EXPECT_EQ(Body, Big) << "scrape " << I;
  }
  EXPECT_GT(FaultInjector::instance().injected(), 0);
}

TEST(HttpServerTest, StopUnblocksIdleConnection) {
  EchoServer ES;
  // A peer that connects and never sends would pin a connection thread on
  // read; stop() must wake it through the stop pipe and return promptly
  // (this test hangs, under its harness timeout, if it does not).
  int Fd = connectTcp(ES.Server.port());
  ASSERT_GE(Fd, 0);
  ES.Server.stop();
  ::close(Fd);
}

} // namespace
