//===- tests/test_cfg.cpp - augmented CFG and dominator tests -------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "FuzzGen.h"
#include "cfg/DomTree.h"
#include "frontend/Parser.h"
#include "xform/Scalarize.h"

#include <gtest/gtest.h>

using namespace gca;

namespace {

struct Built {
  std::unique_ptr<Program> P;
  Cfg G;
};

Built build(const std::string &Src, bool Scalarize = false) {
  DiagEngine D;
  auto P = parseProgram(Src, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  if (Scalarize)
    scalarizeProgram(*P, D);
  Cfg G = Cfg::build(*P->Routines[0]);
  return {std::move(P), std::move(G)};
}

} // namespace

TEST(Cfg, StraightLineSingleBlock) {
  Built B = build(R"(
program s
param n = 4
real a(n) distribute (block)
begin
  a(1) = 1
  a(2) = 2
end
)");
  // Entry node holds both statements; exit follows.
  const Cfg &G = B.G;
  EXPECT_EQ(G.numLoops(), 0u);
  EXPECT_EQ(G.node(G.entry()).Stmts.size(), 2u);
}

TEST(Cfg, LoopHasAugmentedNodes) {
  Built B = build(R"(
program l
param n = 4
real a(n) distribute (block)
begin
  do i = 1, n
    a(i) = 1
  end do
end
)");
  const Cfg &G = B.G;
  ASSERT_EQ(G.numLoops(), 1u);
  const CfgLoop &L = G.loop(0);
  EXPECT_EQ(G.node(L.Preheader).Kind, NodeKind::Preheader);
  EXPECT_EQ(G.node(L.Header).Kind, NodeKind::Header);
  EXPECT_EQ(G.node(L.Postexit).Kind, NodeKind::Postexit);
  // Zero-trip edge: preheader -> postexit (Figure 7).
  const auto &PreSuccs = G.node(L.Preheader).Succs;
  EXPECT_NE(std::find(PreSuccs.begin(), PreSuccs.end(), L.Postexit),
            PreSuccs.end());
  // Header exits to postexit; body has a back edge to the header.
  const auto &HdrSuccs = G.node(L.Header).Succs;
  EXPECT_NE(std::find(HdrSuccs.begin(), HdrSuccs.end(), L.Postexit),
            HdrSuccs.end());
  const auto &HdrPreds = G.node(L.Header).Preds;
  EXPECT_EQ(HdrPreds.size(), 2u); // Preheader + back edge.
}

TEST(Cfg, NestingLevels) {
  Built B = build(R"(
program l
param n = 4
real a(n,n) distribute (block,block)
begin
  do i = 1, n
    do j = 1, n
      a(i,j) = 1
    end do
  end do
end
)");
  const Cfg &G = B.G;
  ASSERT_EQ(G.numLoops(), 2u);
  const CfgLoop &Outer = G.loop(0);
  const CfgLoop &Inner = G.loop(1);
  EXPECT_EQ(Outer.Level, 1);
  EXPECT_EQ(Inner.Level, 2);
  EXPECT_EQ(Inner.Parent, Outer.Id);
  // Preheader/postexit of the inner loop are at the outer level.
  EXPECT_EQ(G.nestingLevel(Inner.Preheader), 1);
  EXPECT_EQ(G.nestingLevel(Inner.Header), 2);
  EXPECT_EQ(G.nestingLevel(Inner.Postexit), 1);
  EXPECT_EQ(G.enclosingLoopAtLevel(Inner.Header, 1), Outer.Id);
  EXPECT_EQ(G.enclosingLoopAtLevel(Inner.Header, 2), Inner.Id);
}

TEST(Cfg, StatementMaps) {
  Built B = build(R"(
program l
param n = 4
real a(n) distribute (block)
begin
  a(1) = 0
  do i = 1, n
    a(i) = 1
  end do
end
)");
  const Cfg &G = B.G;
  const Routine &R = B.P->Routines[0] ? *B.P->Routines[0] : *B.P->Routines[0];
  const auto *First = cast<AssignStmt>(R.body()[0]);
  const auto *L = cast<LoopStmt>(R.body()[1]);
  const auto *Body = cast<AssignStmt>(L->body()[0]);
  EXPECT_EQ(G.nodeOf(First), G.entry());
  EXPECT_EQ(G.indexOf(First), 0);
  EXPECT_LT(G.preorderOf(First), G.preorderOf(Body));
  EXPECT_EQ(G.loopNestOf(Body).size(), 1u);
  EXPECT_EQ(G.loopNestOf(First).size(), 0u);
  EXPECT_EQ(G.loopIdOf(L), G.loopNestOf(Body)[0]);
}

TEST(Cfg, IfJoinStructure) {
  Built B = build(R"(
program c
param n = 4
real a(n) distribute (block)
begin
  if (cond) then
    a(1) = 1
  else
    a(2) = 2
  end if
  a(3) = 3
end
)");
  const Cfg &G = B.G;
  const Routine &R = *B.P->Routines[0];
  const auto *I = cast<IfStmt>(R.body()[0]);
  int Join = G.joinNodeOf(I);
  EXPECT_EQ(G.node(Join).Preds.size(), 2u);
  // The statement after the if lives in the join block.
  const auto *After = cast<AssignStmt>(R.body()[1]);
  EXPECT_EQ(G.nodeOf(After), Join);
}

TEST(DomTree, BasicFacts) {
  Built B = build(R"(
program d
param n = 4
real a(n) distribute (block)
begin
  if (cond) then
    a(1) = 1
  end if
  do i = 1, n
    a(i) = 2
  end do
end
)");
  const Cfg &G = B.G;
  DomTree DT = DomTree::compute(G);
  // Entry dominates everything; nothing strictly dominates entry.
  for (unsigned N = 0; N != G.numNodes(); ++N) {
    EXPECT_TRUE(DT.dominates(G.entry(), static_cast<int>(N)));
    if (static_cast<int>(N) != G.entry()) {
      EXPECT_FALSE(DT.dominates(static_cast<int>(N), G.entry()));
    }
  }
  // idom is a strict dominator and depth increases along idom chains.
  for (unsigned N = 0; N != G.numNodes(); ++N) {
    int Id = DT.idom(static_cast<int>(N));
    if (Id < 0)
      continue;
    EXPECT_TRUE(DT.properlyDominates(Id, static_cast<int>(N)));
    EXPECT_EQ(DT.depth(static_cast<int>(N)), DT.depth(Id) + 1);
  }
}

TEST(DomTree, LoopBodyDoesNotDominatePostexit) {
  Built B = build(R"(
program d
param n = 4
real a(n) distribute (block)
begin
  do i = 1, n
    a(i) = 2
  end do
  a(1) = 3
end
)");
  const Cfg &G = B.G;
  DomTree DT = DomTree::compute(G);
  const CfgLoop &L = G.loop(0);
  // The zero-trip edge means neither the header nor the body dominate the
  // postexit; the preheader does.
  EXPECT_FALSE(DT.dominates(L.Header, L.Postexit));
  EXPECT_TRUE(DT.dominates(L.Preheader, L.Postexit));
  EXPECT_EQ(DT.idom(L.Postexit), L.Preheader);
}

TEST(DomTree, BranchesDoNotDominateJoin) {
  Built B = build(R"(
program d
param n = 4
real a(n) distribute (block)
begin
  if (cond) then
    a(1) = 1
  else
    a(2) = 2
  end if
  a(3) = 3
end
)");
  const Cfg &G = B.G;
  DomTree DT = DomTree::compute(G);
  const Routine &R = *B.P->Routines[0];
  const auto *I = cast<IfStmt>(R.body()[0]);
  int Join = G.joinNodeOf(I);
  const auto *Then = cast<AssignStmt>(I->thenBody()[0]);
  const auto *Else = cast<AssignStmt>(I->elseBody()[0]);
  EXPECT_FALSE(DT.dominates(G.nodeOf(Then), Join));
  EXPECT_FALSE(DT.dominates(G.nodeOf(Else), Join));
}

TEST(DomTree, SlotDominance) {
  Built B = build(R"(
program d
param n = 4
real a(n) distribute (block)
begin
  a(1) = 1
  a(2) = 2
end
)");
  const Cfg &G = B.G;
  DomTree DT = DomTree::compute(G);
  const Routine &R = *B.P->Routines[0];
  const auto *S1 = cast<AssignStmt>(R.body()[0]);
  const auto *S2 = cast<AssignStmt>(R.body()[1]);
  EXPECT_TRUE(DT.slotDominates(G.slotBefore(S1), G.slotBefore(S2)));
  EXPECT_TRUE(DT.slotDominates(G.slotAfter(S1), G.slotBefore(S2)));
  EXPECT_FALSE(DT.slotDominates(G.slotBefore(S2), G.slotBefore(S1)));
  EXPECT_TRUE(DT.slotDominates(G.slotBefore(S1), G.slotBefore(S1)));
}

/// Property: every reachable node's predecessors include its idom's
/// dominance frontier relationship, checked on the scalarized shallow-like
/// structure with many loops.
TEST(DomTree, ScalesToScalarizedWorkload) {
  Built B = build(R"(
program d
param n = 6
real a(n,n) distribute (block,block)
real b(n,n) distribute (block,block)
begin
  a = 1
  b = 2
  do t = 1, 2
    a(2:n,1:n) = b(1:n-1,1:n)
    b(2:n,1:n) = a(1:n-1,1:n)
  end do
end
)",
                  /*Scalarize=*/true);
  const Cfg &G = B.G;
  DomTree DT = DomTree::compute(G);
  int Dominated = 0;
  for (unsigned N = 0; N != G.numNodes(); ++N)
    Dominated += DT.dominates(G.entry(), static_cast<int>(N));
  EXPECT_EQ(Dominated, static_cast<int>(G.numNodes()));
}

//===----------------------------------------------------------------------===//
// Randomized dominance oracle: the O(1) interval test and the O(log n)
// common-dominator lifting must agree with the chain-walk references on
// arbitrary digraphs, including self-loops, multi-edges, and unreachable
// nodes that no structured program produces.
//===----------------------------------------------------------------------===//

TEST(DomTreeOracle, RandomGraphsMatchChainWalkReference) {
  for (uint64_t Seed = 1; Seed <= 60; ++Seed) {
    fuzzgen::Rng Rand(Seed);
    int N = Rand.range(2, 48);
    std::vector<std::vector<int>> Succs(N);
    for (int U = 0; U != N; ++U) {
      int K = Rand.range(0, 3);
      for (int J = 0; J != K; ++J)
        Succs[U].push_back(Rand.range(0, N - 1));
    }
    DomTree DT = DomTree::computeFromSuccessors(Succs, /*Entry=*/0);

    // Independent reachability by DFS over the successor lists.
    std::vector<char> Reach(N, 0);
    std::vector<int> Work{0};
    while (!Work.empty()) {
      int U = Work.back();
      Work.pop_back();
      if (Reach[U])
        continue;
      Reach[U] = 1;
      for (int V : Succs[U])
        Work.push_back(V);
    }

    for (int U = 0; U != N; ++U) {
      ASSERT_EQ(DT.reachable(U), static_cast<bool>(Reach[U]))
          << "seed " << Seed << " node " << U;
      ASSERT_TRUE(DT.dominates(U, U)) << "seed " << Seed; // Reflexive.
      if (Reach[U]) {
        ASSERT_TRUE(DT.dominates(0, U)) << "seed " << Seed << " node " << U;
      }
    }

    for (int A = 0; A != N; ++A)
      for (int B = 0; B != N; ++B) {
        if (Reach[A] && Reach[B]) {
          ASSERT_EQ(DT.dominates(A, B), DT.dominatesLinear(A, B))
              << "seed " << Seed << " pair (" << A << "," << B << ")";
          ASSERT_EQ(DT.commonDominator(A, B), DT.commonDominatorLinear(A, B))
              << "seed " << Seed << " pair (" << A << "," << B << ")";
        } else {
          // Unreachable nodes dominate (and are dominated by) only
          // themselves.
          ASSERT_EQ(DT.dominates(A, B), A == B)
              << "seed " << Seed << " pair (" << A << "," << B << ")";
        }
      }
  }
}

TEST(DomTreeOracle, DeepChainExercisesBinaryLifting) {
  // A long spine with random shortcut edges: depths in the hundreds force
  // multi-level jumps through the Up table.
  fuzzgen::Rng Rand(7);
  int N = 400;
  std::vector<std::vector<int>> Succs(N);
  for (int U = 0; U + 1 < N; ++U)
    Succs[U].push_back(U + 1);
  for (int E = 0; E != 80; ++E)
    Succs[Rand.range(0, N - 1)].push_back(Rand.range(0, N - 1));
  DomTree DT = DomTree::computeFromSuccessors(Succs, 0);
  for (int T = 0; T != 4000; ++T) {
    int A = Rand.range(0, N - 1), B = Rand.range(0, N - 1);
    ASSERT_EQ(DT.dominates(A, B), DT.dominatesLinear(A, B))
        << "pair (" << A << "," << B << ")";
    ASSERT_EQ(DT.commonDominator(A, B), DT.commonDominatorLinear(A, B))
        << "pair (" << A << "," << B << ")";
  }
}
