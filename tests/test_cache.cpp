//===- tests/test_cache.cpp - Result-cache differential harness -----------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The correctness contract of the result cache is bitwise replay: a warm
/// compilation must be indistinguishable from a cold one — same plans, same
/// diagnostics, same dump-after records, same counters. This harness proves
/// it differentially over every built-in workload under every evaluation
/// strategy, then attacks the key: flipping any single option or any single
/// source byte must miss, permuting how semantically identical options were
/// built up must hit, and corrupt or truncated disk entries must degrade to
/// misses, never to wrong replays.
///
//===----------------------------------------------------------------------===//

#include "driver/CachedPipeline.h"
#include "support/ResultCache.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <unistd.h>

using namespace gca;

namespace {

/// Everything observable from one compilation, rendered for comparison.
struct Observed {
  bool Ok = false;
  bool AuditOk = true;
  std::string Errors;
  std::string Diagnostics;
  std::string PlanText;
  std::vector<std::pair<std::string, std::string>> Dumps;
  StatsRegistry::Snapshot Counters;

  bool operator==(const Observed &O) const = default;
};

Observed observe(Session &S) {
  Observed Out;
  CompileResult R = S.take();
  Out.Ok = R.Ok;
  Out.AuditOk = R.AuditOk;
  Out.Errors = R.Errors;
  Out.Diagnostics = R.Diagnostics;
  Out.PlanText = R.planText();
  Out.Dumps = S.Dumps;
  Out.Counters = S.Stats.snapshot();
  return Out;
}

CompileOptions fullOptions(Strategy Strat) {
  CompileOptions Opts;
  Opts.Placement.Strat = Strat;
  Opts.Audit = true;
  Opts.Lint = true;
  Opts.DumpAfter = "placement";
  return Opts;
}

std::string tempCacheDir(const char *Tag) {
  return (std::filesystem::path(::testing::TempDir()) /
          (std::string("gca-cache-") + Tag + "-" +
           std::to_string(::getpid())))
      .string();
}

/// The single .gcache file in \p Dir (the tests store exactly one entry).
std::filesystem::path onlyCacheFile(const std::string &Dir) {
  std::filesystem::path Found;
  int Count = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir))
    if (E.path().extension() == ".gcache") {
      Found = E.path();
      ++Count;
    }
  EXPECT_EQ(Count, 1);
  return Found;
}

CachedResult sampleResult() {
  CachedResult R;
  R.Ok = true;
  R.AuditOk = false;
  R.Errors = "";
  R.Diagnostics = "warning: something\nnote: with\nnewlines\n";
  R.Plans = {{"main", "plan text\nwith lines\n"}, {"aux", ""}};
  R.Dumps = {{"placement", std::string("binary\0bytes\n", 13)}};
  R.Counters = {{"placement.entries-detected", 7}, {"lint.warnings", 0}};
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Differential: cold vs. warm over every workload x strategy
//===----------------------------------------------------------------------===//

class CacheDifferential : public ::testing::TestWithParam<Strategy> {};

TEST_P(CacheDifferential, WarmReplayIsBitwiseIdentical) {
  ResultCache Cache;
  CachedPipeline CP(Cache);
  for (const Workload *W : allWorkloads()) {
    SCOPED_TRACE(W->Name);
    CompileOptions Opts = fullOptions(GetParam());

    Session Cold(W->Source, Opts);
    EXPECT_FALSE(CP.run(Cold)) << "first compilation must miss";
    Observed C = observe(Cold);

    Session Warm(W->Source, Opts);
    EXPECT_TRUE(CP.run(Warm)) << "second compilation must hit";
    Observed H = observe(Warm);

    ASSERT_TRUE(C.Ok);
    EXPECT_EQ(C.Ok, H.Ok);
    EXPECT_EQ(C.AuditOk, H.AuditOk);
    EXPECT_EQ(C.Errors, H.Errors);
    EXPECT_EQ(C.Diagnostics, H.Diagnostics);
    EXPECT_EQ(C.PlanText, H.PlanText);
    EXPECT_EQ(C.Dumps, H.Dumps);
    // The cache keeps its own hit/miss counters outside the session
    // registry, so session stats compare exactly.
    EXPECT_EQ(C.Counters, H.Counters);
  }
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, static_cast<int64_t>(allWorkloads().size()));
  EXPECT_EQ(S.Hits, static_cast<int64_t>(allWorkloads().size()));
}

INSTANTIATE_TEST_SUITE_P(Strategies, CacheDifferential,
                         ::testing::Values(Strategy::Orig, Strategy::Earliest,
                                           Strategy::Global,
                                           Strategy::EarliestCombine),
                         [](const auto &Info) {
                           return std::string(strategyName(Info.param));
                         });

TEST(CacheDifferential, CompileSourceOverloadReplaysDiagnostics) {
  // A -p override matching no param declaration produces a frontend warning
  // — the kind of non-error diagnostic a replay must not drop.
  const Workload &W = figure4Workload();
  CompileOptions Opts = fullOptions(Strategy::Global);
  Opts.Params["no_such_param"] = 3;

  ResultCache Cache;
  CompileResult Cold = compileSource(W.Source, Opts, &Cache);
  CompileResult Warm = compileSource(W.Source, Opts, &Cache);

  ASSERT_TRUE(Cold.Ok);
  EXPECT_FALSE(Cold.FromCache);
  EXPECT_TRUE(Warm.FromCache);
  EXPECT_FALSE(Cold.Diagnostics.empty());
  EXPECT_EQ(Cold.Diagnostics, Warm.Diagnostics);
  EXPECT_EQ(Cold.planText(), Warm.planText());
  EXPECT_EQ(Cold.AuditOk, Warm.AuditOk);

  // Null cache degrades to the plain overload.
  CompileResult Plain = compileSource(W.Source, Opts, nullptr);
  EXPECT_FALSE(Plain.FromCache);
  EXPECT_EQ(Plain.Diagnostics, Cold.Diagnostics);
  EXPECT_EQ(Plain.planText(), Cold.planText());
}

TEST(CacheDifferential, FailedCompilationsReplayTheirErrors) {
  ResultCache Cache;
  CompileOptions Opts;
  std::string Bad = "program broken\nbegin\nthis is not hpf\nend\n";
  CompileResult Cold = compileSource(Bad, Opts, &Cache);
  CompileResult Warm = compileSource(Bad, Opts, &Cache);
  ASSERT_FALSE(Cold.Ok);
  EXPECT_FALSE(Warm.Ok);
  EXPECT_TRUE(Warm.FromCache);
  EXPECT_FALSE(Cold.Errors.empty());
  EXPECT_EQ(Cold.Errors, Warm.Errors);
}

//===----------------------------------------------------------------------===//
// Key sensitivity: any input flip must change the key
//===----------------------------------------------------------------------===//

TEST(CacheKeyTest, EveryOptionFlipChangesTheKey) {
  const std::string Src = figure4Workload().Source;
  CompileOptions Base;
  CacheKey K0 = compileCacheKey(Src, Base);

  std::vector<std::pair<const char *, CompileOptions>> Flips;
  auto Add = [&](const char *Name, auto Mutate) {
    CompileOptions O = Base;
    Mutate(O);
    Flips.emplace_back(Name, std::move(O));
  };
  Add("strategy", [](auto &O) { O.Placement.Strat = Strategy::Orig; });
  Add("combine-threshold",
      [](auto &O) { O.Placement.CombineThresholdBytes += 1; });
  Add("max-union-growth", [](auto &O) { O.Placement.MaxUnionGrowth += 0.25; });
  Add("num-procs", [](auto &O) { O.Placement.NumProcs += 1; });
  Add("subsume-diagonals",
      [](auto &O) { O.Placement.SubsumeDiagonals = !O.Placement.SubsumeDiagonals; });
  Add("partial-redundancy",
      [](auto &O) { O.Placement.PartialRedundancy = !O.Placement.PartialRedundancy; });
  Add("defer-reductions",
      [](auto &O) { O.Placement.DeferReductions = !O.Placement.DeferReductions; });
  Add("scalarize", [](auto &O) { O.Scalarize = !O.Scalarize; });
  Add("fuse-loops", [](auto &O) { O.FuseLoops = !O.FuseLoops; });
  Add("audit", [](auto &O) { O.Audit = !O.Audit; });
  Add("lint", [](auto &O) { O.Lint = !O.Lint; });
  Add("dump-after", [](auto &O) { O.DumpAfter = "placement"; });
  Add("param", [](auto &O) { O.Params["n"] = 64; });

  for (const auto &[Name, Opts] : Flips) {
    SCOPED_TRACE(Name);
    EXPECT_FALSE(compileCacheKey(Src, Opts) == K0)
        << "option '" << Name << "' is not folded into the cache key";
  }

  // A populated cache must MISS under every flipped option set.
  ResultCache Cache;
  CachedPipeline CP(Cache);
  Session Seed(Src, Base);
  EXPECT_FALSE(CP.run(Seed));
  for (const auto &[Name, Opts] : Flips) {
    SCOPED_TRACE(Name);
    Session S(Src, Opts);
    EXPECT_FALSE(CP.run(S)) << "flipped option replayed a stale result";
  }
}

TEST(CacheKeyTest, EverySourceByteMatters) {
  CompileOptions Opts;
  std::string Src = figure4Workload().Source;
  CacheKey K0 = compileCacheKey(Src, Opts);
  for (size_t I = 0; I < Src.size(); I += 7) {
    std::string Mutated = Src;
    Mutated[I] = Mutated[I] == 'x' ? 'y' : 'x';
    if (Mutated == Src)
      continue;
    EXPECT_FALSE(compileCacheKey(Mutated, Opts) == K0) << "byte " << I;
  }
  // Appending and prepending also change it.
  EXPECT_FALSE(compileCacheKey(Src + " ", Opts) == K0);
  EXPECT_FALSE(compileCacheKey(" " + Src, Opts) == K0);
}

TEST(CacheKeyTest, PipelinePassListIsPartOfTheKey) {
  const std::string Src = figure4Workload().Source;
  CompileOptions Opts;
  CacheKey K0 = compileCacheKey(Src, Opts, Pipeline::standard());

  Pipeline Extended;
  for (const Pass &Stage : Pipeline::standard().passes())
    Extended.add(Stage.Name, Stage.Fn);
  Extended.add("extra-pass", [](Session &) { return true; });
  EXPECT_FALSE(compileCacheKey(Src, Opts, Extended) == K0)
      << "adding a pass must invalidate cached results";
}

//===----------------------------------------------------------------------===//
// Normalization: semantically identical option sets hash equal
//===----------------------------------------------------------------------===//

TEST(CacheKeyTest, NormalizationIsCanonical) {
  // Defaults vs. explicitly default-filled fields.
  CompileOptions Default;
  CompileOptions Explicit;
  Explicit.Placement.Strat = Strategy::Global;
  Explicit.Placement.CombineThresholdBytes = 20 * 1024;
  Explicit.Placement.MaxUnionGrowth = 1.5;
  Explicit.Placement.NumProcs = 25;
  Explicit.Placement.SubsumeDiagonals = true;
  Explicit.Placement.PartialRedundancy = false;
  Explicit.Placement.DeferReductions = false;
  Explicit.Scalarize = Default.Scalarize;
  Explicit.FuseLoops = Default.FuseLoops;
  Explicit.Audit = Default.Audit;
  Explicit.Lint = Default.Lint;
  Explicit.DumpAfter = "";
  EXPECT_EQ(optionsFingerprint(Default), optionsFingerprint(Explicit));

  // The non-semantic stats-export pointer is excluded.
  StatsRegistry Stats;
  CompileOptions WithStats = Default;
  WithStats.Placement.Stats = &Stats;
  EXPECT_EQ(optionsFingerprint(Default), optionsFingerprint(WithStats));
}

TEST(CacheKeyTest, PermutedParamOrderingsHashEqual) {
  // Build the same override set in every insertion order (and once with an
  // overwritten stale value); all renderings must be identical.
  std::vector<std::pair<std::string, int64_t>> Overrides = {
      {"n", 128}, {"nsteps", 4}, {"m", 9}};
  std::vector<int> Perm = {0, 1, 2};
  std::string Want;
  do {
    CompileOptions O;
    for (int I : Perm)
      O.Params[Overrides[I].first] = Overrides[I].second;
    std::string Got = optionsFingerprint(O);
    if (Want.empty())
      Want = Got;
    EXPECT_EQ(Got, Want);
  } while (std::next_permutation(Perm.begin(), Perm.end()));

  CompileOptions Overwritten;
  Overwritten.Params["nsteps"] = 999; // Stale; overwritten below.
  Overwritten.Params["m"] = 9;
  Overwritten.Params["n"] = 128;
  Overwritten.Params["nsteps"] = 4;
  EXPECT_EQ(optionsFingerprint(Overwritten), Want);

  // But a different value — or an extra override — is a different key.
  CompileOptions Different;
  Different.Params["n"] = 128;
  Different.Params["nsteps"] = 5;
  Different.Params["m"] = 9;
  EXPECT_NE(optionsFingerprint(Different), Want);
}

//===----------------------------------------------------------------------===//
// Serialization and the disk tier
//===----------------------------------------------------------------------===//

TEST(CachedResultTest, SerializeRoundTripsExactly) {
  CachedResult R = sampleResult();
  std::string Bytes = R.serialize();
  std::optional<CachedResult> Back = CachedResult::deserialize(Bytes);
  ASSERT_TRUE(Back.has_value());
  EXPECT_TRUE(*Back == R);

  // Empty result round-trips too.
  CachedResult Empty;
  Back = CachedResult::deserialize(Empty.serialize());
  ASSERT_TRUE(Back.has_value());
  EXPECT_TRUE(*Back == Empty);
}

TEST(CachedResultTest, TamperedBytesFailClosed) {
  std::string Bytes = sampleResult().serialize();
  // Truncations at every length.
  for (size_t Len = 0; Len < Bytes.size(); Len += 11)
    EXPECT_FALSE(CachedResult::deserialize(Bytes.substr(0, Len)).has_value())
        << "truncated to " << Len;
  // Single-byte flips throughout.
  for (size_t I = 0; I < Bytes.size(); I += 5) {
    std::string Mutated = Bytes;
    Mutated[I] ^= 0x20;
    if (Mutated == Bytes)
      continue;
    EXPECT_FALSE(CachedResult::deserialize(Mutated).has_value())
        << "flip at " << I;
  }
  // Trailing garbage.
  EXPECT_FALSE(CachedResult::deserialize(Bytes + "x").has_value());
}

TEST(ResultCacheTest, DiskTierSurvivesProcessBoundary) {
  std::string Dir = tempCacheDir("disk");
  std::filesystem::remove_all(Dir);
  CacheKey K = CacheKey::of("some material");
  CachedResult R = sampleResult();
  {
    ResultCache::Config C;
    C.Dir = Dir;
    ResultCache Cache(C);
    Cache.store(K, R);
  }
  // A fresh cache (empty memory tier) over the same directory hits disk.
  ResultCache::Config C;
  C.Dir = Dir;
  ResultCache Cache(C);
  std::atomic<int> Computes{0};
  CachedResult Got = Cache.getOrCompute(K, [&] {
    ++Computes;
    return CachedResult();
  });
  EXPECT_EQ(Computes.load(), 0) << "disk entry should satisfy the lookup";
  EXPECT_TRUE(Got == R);
  EXPECT_EQ(Cache.stats().DiskHits, 1);
  std::filesystem::remove_all(Dir);
}

class CorruptDiskEntry : public ::testing::TestWithParam<const char *> {};

TEST_P(CorruptDiskEntry, IsAMissNeverAWrongReplay) {
  std::string Dir = tempCacheDir(GetParam());
  std::filesystem::remove_all(Dir);
  CacheKey K = CacheKey::of("corruptible");
  {
    ResultCache::Config C;
    C.Dir = Dir;
    ResultCache Cache(C);
    Cache.store(K, sampleResult());
  }
  std::filesystem::path File = onlyCacheFile(Dir);
  std::string Mode = GetParam();
  if (Mode == "truncated") {
    auto Size = std::filesystem::file_size(File);
    std::filesystem::resize_file(File, Size / 2);
  } else if (Mode == "empty") {
    std::ofstream(File, std::ios::trunc).close();
  } else { // flipped
    std::fstream F(File, std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(static_cast<std::streamoff>(std::filesystem::file_size(File) / 2));
    F.put('\xff');
  }

  ResultCache::Config C;
  C.Dir = Dir;
  ResultCache Cache(C);
  std::atomic<int> Computes{0};
  CachedResult Fresh;
  Fresh.Ok = true;
  Fresh.Diagnostics = "recomputed";
  bool Hit = true;
  CachedResult Got = Cache.getOrCompute(K, [&] {
    ++Computes;
    return Fresh;
  }, &Hit);
  EXPECT_FALSE(Hit);
  EXPECT_EQ(Computes.load(), 1);
  EXPECT_TRUE(Got == Fresh);
  EXPECT_GE(Cache.stats().DiskErrors, 1);
  // The recompute rewrote the entry; it must now be readable again.
  ResultCache Cache2(C);
  EXPECT_TRUE(Cache2.lookup(K).has_value());
  std::filesystem::remove_all(Dir);
}

INSTANTIATE_TEST_SUITE_P(Modes, CorruptDiskEntry,
                         ::testing::Values("truncated", "empty", "flipped"));

//===----------------------------------------------------------------------===//
// Memory tier: LRU byte budget
//===----------------------------------------------------------------------===//

TEST(ResultCacheTest, LruEvictionHonorsByteBudget) {
  CachedResult Big;
  Big.Ok = true;
  Big.Diagnostics.assign(1000, 'd');
  size_t EntryBytes = Big.byteSize();

  ResultCache::Config C;
  C.MemBudgetBytes = 3 * EntryBytes + EntryBytes / 2; // Room for three.
  ResultCache Cache(C);

  std::vector<CacheKey> Keys;
  for (int I = 0; I != 6; ++I) {
    Keys.push_back(CacheKey::of("entry " + std::to_string(I)));
    Cache.store(Keys.back(), Big);
  }
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Evictions, 3);
  EXPECT_EQ(S.Entries, 3);
  EXPECT_LE(S.Bytes, static_cast<int64_t>(C.MemBudgetBytes));
  // Oldest three evicted, newest three resident.
  for (int I = 0; I != 3; ++I)
    EXPECT_FALSE(Cache.lookup(Keys[I]).has_value()) << I;
  for (int I = 3; I != 6; ++I)
    EXPECT_TRUE(Cache.lookup(Keys[I]).has_value()) << I;
}

TEST(ResultCacheTest, LookupRefreshesRecency) {
  CachedResult Big;
  Big.Ok = true;
  Big.Diagnostics.assign(1000, 'd');
  size_t EntryBytes = Big.byteSize();

  ResultCache::Config C;
  C.MemBudgetBytes = 2 * EntryBytes + EntryBytes / 2; // Room for two.
  ResultCache Cache(C);

  CacheKey A = CacheKey::of("a"), B = CacheKey::of("b"),
           D = CacheKey::of("d");
  Cache.store(A, Big);
  Cache.store(B, Big);
  EXPECT_TRUE(Cache.lookup(A).has_value()); // A is now most recent.
  Cache.store(D, Big);                      // Evicts B, not A.
  EXPECT_TRUE(Cache.lookup(A).has_value());
  EXPECT_FALSE(Cache.lookup(B).has_value());
  EXPECT_TRUE(Cache.lookup(D).has_value());
}

TEST(ResultCacheTest, SingleOversizeEntryStaysResident) {
  CachedResult Big;
  Big.Ok = true;
  Big.Diagnostics.assign(4096, 'd');
  ResultCache::Config C;
  C.MemBudgetBytes = 16; // Smaller than any entry.
  ResultCache Cache(C);
  CacheKey K = CacheKey::of("oversize");
  Cache.store(K, Big);
  // The most recent entry is never evicted, so the cache still functions.
  EXPECT_TRUE(Cache.lookup(K).has_value());
  EXPECT_EQ(Cache.stats().Entries, 1);
}

//===----------------------------------------------------------------------===//
// Single-flight concurrency
//===----------------------------------------------------------------------===//

TEST(ResultCacheTest, ConcurrentIdenticalRequestsComputeOnce) {
  ResultCache Cache;
  CacheKey K = CacheKey::of("contended");
  std::atomic<int> Computes{0};
  std::atomic<int> Hits{0};

  ThreadPool Pool(8);
  for (int I = 0; I != 8; ++I)
    Pool.async([&] {
      bool Hit = false;
      CachedResult R = Cache.getOrCompute(
          K,
          [&] {
            ++Computes;
            // Widen the race window so every other thread queues behind the
            // in-flight computation instead of finishing first.
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            CachedResult Out;
            Out.Ok = true;
            Out.Diagnostics = "computed once";
            return Out;
          },
          &Hit);
      EXPECT_EQ(R.Diagnostics, "computed once");
      if (Hit)
        ++Hits;
    });
  Pool.wait();

  EXPECT_EQ(Computes.load(), 1) << "single-flight must dedupe the compute";
  EXPECT_EQ(Hits.load(), 7);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1);
  EXPECT_EQ(S.Hits, 7);
}

TEST(ResultCacheTest, ConcurrentDistinctKeysDoNotSerialize) {
  ResultCache Cache;
  std::atomic<int> Computes{0};
  ThreadPool Pool(8);
  for (int I = 0; I != 64; ++I)
    Pool.async([&Cache, &Computes, I] {
      CacheKey K = CacheKey::of("key " + std::to_string(I % 16));
      Cache.getOrCompute(K, [&] {
        ++Computes;
        CachedResult R;
        R.Ok = true;
        R.Diagnostics = std::to_string(I % 16);
        return R;
      });
    });
  Pool.wait();
  // Every key computed at least once and never produced a wrong value;
  // single-flight plus memory hits bound computes by the key count.
  EXPECT_EQ(Computes.load(), 16);
  for (int I = 0; I != 16; ++I) {
    auto R = Cache.lookup(CacheKey::of("key " + std::to_string(I)));
    ASSERT_TRUE(R.has_value());
    EXPECT_EQ(R->Diagnostics, std::to_string(I));
  }
}

//===----------------------------------------------------------------------===//
// Routine-granularity incremental recompilation
//===----------------------------------------------------------------------===//

namespace {

/// \p N copies of a jacobi-like routine (r0..rN-1) behind a shared
/// program/param prelude. \p EditedIdx >= 0 rewrites that routine's stencil
/// in place — same line count, so every other routine keeps its start line.
std::string multiRoutineSource(int N, int EditedIdx = -1) {
  std::string Src = "program multi\nparam n = 64\n";
  for (int I = 0; I != N; ++I) {
    const char *Rhs = I == EditedIdx ? "b(1:n-2) + b(1:n-2)" : "b(1:n-2) + b(3:n)";
    Src += "routine r" + std::to_string(I) + "\n";
    Src += "real a(n) distribute (block)\n";
    Src += "real b(n) distribute (block)\n";
    Src += "begin\n";
    Src += "  do t = 1, 4\n";
    Src += std::string("    a(2:n-1) = ") + Rhs + "\n";
    Src += "    b(1:n) = a(1:n)\n";
    Src += "  end do\n";
    Src += "end\n";
  }
  return Src;
}

/// Compiles \p Src through CachedPipeline (or plainly when \p Cache is
/// null) and renders everything observable.
Observed compileObserved(const std::string &Src, const CompileOptions &Opts,
                         ResultCache *Cache) {
  Session S(Src, Opts);
  if (Cache) {
    CachedPipeline CP(*Cache);
    CP.run(S);
  } else {
    S.run();
  }
  return observe(S);
}

CompileOptions routineCacheOptions() {
  CompileOptions Opts;
  Opts.Audit = true;
  Opts.Lint = true; // No DumpAfter: dump hooks disable routine caching.
  return Opts;
}

} // namespace

TEST(RoutineCacheTest, SlicingFindsEveryRoutineAndThePrelude) {
  std::string Src = multiRoutineSource(3);
  std::string Prelude;
  std::vector<RoutineSlice> Slices = sliceRoutineSources(Src, Prelude);
  ASSERT_EQ(Slices.size(), 3u);
  EXPECT_EQ(Prelude, "program multi\nparam n = 64\n");
  std::string Rebuilt = Prelude;
  int Line = 3; // Prelude is two lines; first marker is line 3.
  for (size_t I = 0; I != Slices.size(); ++I) {
    std::string Name = "r";
    Name += std::to_string(I);
    EXPECT_EQ(Slices[I].Name, Name);
    EXPECT_EQ(Slices[I].StartLine, Line);
    Line += 9; // Each routine block is nine lines.
    Rebuilt += Slices[I].Text;
  }
  // Slicing is a partition: prelude + slices reassemble the exact source.
  EXPECT_EQ(Rebuilt, Src);

  // No markers -> no slices (implicit single routine; whole-file entry
  // already covers it).
  std::string Single = "program s\nreal a(4) distribute (block)\nbegin\na = 1\nend\n";
  EXPECT_TRUE(sliceRoutineSources(Single, Prelude).empty());
}

TEST(RoutineCacheTest, OneEditRecompilesExactlyOneRoutine) {
  // The acceptance scenario: a 10-routine file, one in-place edit. The
  // second compile misses at whole-file granularity but must replay the
  // nine untouched routines — exactly 1 routine miss, 9 routine hits — and
  // its output must be bitwise-identical to an uncached compile.
  ResultCache Cache;
  CompileOptions Opts = routineCacheOptions();
  std::string A = multiRoutineSource(10);
  std::string B = multiRoutineSource(10, /*EditedIdx=*/4);

  Observed Cold = compileObserved(A, Opts, &Cache);
  ASSERT_TRUE(Cold.Ok);
  CacheStats S0 = Cache.stats();
  EXPECT_EQ(S0.Misses, 1);
  EXPECT_EQ(S0.RoutineMisses, 10);
  EXPECT_EQ(S0.RoutineHits, 0);

  Observed Warm = compileObserved(B, Opts, &Cache);
  ASSERT_TRUE(Warm.Ok);
  CacheStats S1 = Cache.stats();
  EXPECT_EQ(S1.Misses, 2);
  EXPECT_EQ(S1.RoutineHits, 9);
  EXPECT_EQ(S1.RoutineMisses, 11);

  EXPECT_EQ(Warm, compileObserved(B, Opts, nullptr));
}

TEST(RoutineCacheTest, StartLineShiftInvalidatesLaterRoutines) {
  // Growing the first routine by a line shifts every later routine's start
  // line. Cached diagnostics carry absolute line numbers, so all of them
  // must miss — the start line is key material, not just the slice text.
  ResultCache Cache;
  CompileOptions Opts = routineCacheOptions();
  std::string A = multiRoutineSource(5);
  std::string Grown = A;
  size_t FirstDo = Grown.find("  do t = 1, 4\n");
  ASSERT_NE(FirstDo, std::string::npos);
  Grown.insert(FirstDo, "  a(1:n) = b(1:n)\n");

  Observed Cold = compileObserved(A, Opts, &Cache);
  ASSERT_TRUE(Cold.Ok);
  Observed Warm = compileObserved(Grown, Opts, &Cache);
  ASSERT_TRUE(Warm.Ok);
  CacheStats S1 = Cache.stats();
  EXPECT_EQ(S1.RoutineHits, 0);
  EXPECT_EQ(S1.RoutineMisses, 10);
  EXPECT_EQ(Warm, compileObserved(Grown, Opts, nullptr));
}

TEST(RoutineCacheTest, PlacementJobsAreNotKeyMaterial) {
  // Plans and diagnostics are bitwise-identical at any --placement-jobs
  // (tests/test_pipeline.cpp pins this), so Jobs is deliberately excluded
  // from both whole-file and routine keys: entries stored by a serial
  // compile must replay for a parallel one.
  ResultCache Cache;
  CompileOptions Opts = routineCacheOptions();
  std::string A = multiRoutineSource(6);
  std::string B = multiRoutineSource(6, /*EditedIdx=*/2);

  Observed Serial = compileObserved(A, Opts, &Cache);
  ASSERT_TRUE(Serial.Ok);
  CompileOptions Par = Opts;
  Par.Placement.Jobs = 8;
  Observed Warm = compileObserved(B, Par, &Cache);
  ASSERT_TRUE(Warm.Ok);
  CacheStats S1 = Cache.stats();
  EXPECT_EQ(S1.RoutineHits, 5);
  EXPECT_EQ(S1.RoutineMisses, 7);
  EXPECT_EQ(Warm, compileObserved(B, Opts, nullptr));
}

TEST(RoutineCacheTest, ReplayedLintWarningsAreBitwiseIdentical) {
  // A routine whose global placement brings no improvement draws a
  // [no-comm-benefit] lint warning with an absolute source line. Replaying
  // it from the routine cache must reproduce the warning byte-for-byte.
  auto Jacobi = [](const char *Init) {
    std::string Src = "program jac\nparam n = 32\nparam nsteps = 4\n";
    for (const char *Name : {"ja", "jb"}) {
      Src += std::string("routine ") + Name + "\n";
      Src += "real u(n,n) distribute (block,block)\n";
      Src += "real unew(n,n) distribute (block,block)\n";
      Src += "real resid\n";
      Src += "begin\n";
      Src += std::string("  u = ") + (Name[1] == 'a' ? Init : "1") + "\n";
      Src += "  unew = 0\n";
      Src += "  do t = 1, nsteps\n";
      Src += "    unew(2:n-1,2:n-1) = u(1:n-2,2:n-1) + u(3:n,2:n-1)\n";
      Src += "    resid = sum(unew(1,1:n))\n";
      Src += "    u(1:n,1:n) = unew(1:n,1:n)\n";
      Src += "  end do\n";
      Src += "end\n";
    }
    return Src;
  };
  ResultCache Cache;
  CompileOptions Opts = routineCacheOptions();
  std::string A = Jacobi("1");
  std::string B = Jacobi("2"); // In-place edit of routine `ja` only.

  Observed Cold = compileObserved(A, Opts, &Cache);
  ASSERT_TRUE(Cold.Ok);
  Observed Warm = compileObserved(B, Opts, &Cache);
  ASSERT_TRUE(Warm.Ok);
  EXPECT_EQ(Cache.stats().RoutineHits, 1); // `jb` replays, `ja` recomputes.
  Observed Ref = compileObserved(B, Opts, nullptr);
  EXPECT_FALSE(Ref.Diagnostics.empty()); // The warning must exist to replay.
  EXPECT_EQ(Warm.Diagnostics, Ref.Diagnostics);
  EXPECT_EQ(Warm, Ref);
}

TEST(RoutineCacheTest, GatesDisableRoutineCaching) {
  // Dump-after hooks need live IR for every routine, and a file without
  // `routine` markers has nothing finer than the whole-file entry: in both
  // cases the routine tallies must stay untouched.
  {
    ResultCache Cache;
    CompileOptions Opts = routineCacheOptions();
    Opts.DumpAfter = "placement";
    compileObserved(multiRoutineSource(4), Opts, &Cache);
    compileObserved(multiRoutineSource(4, 1), Opts, &Cache);
    EXPECT_EQ(Cache.stats().RoutineHits, 0);
    EXPECT_EQ(Cache.stats().RoutineMisses, 0);
  }
  {
    ResultCache Cache;
    CompileOptions Opts = routineCacheOptions();
    compileObserved(figure4Workload().Source, Opts, &Cache);
    compileObserved(figure4Workload().Source, Opts, &Cache);
    EXPECT_EQ(Cache.stats().Hits, 1);
    EXPECT_EQ(Cache.stats().RoutineHits, 0);
    EXPECT_EQ(Cache.stats().RoutineMisses, 0);
  }
}

TEST(RoutineCacheTest, RoutineKeySensitivity) {
  CompileOptions Opts = routineCacheOptions();
  std::string Prelude = "program p\nparam n = 8\n";
  std::string Text = "routine r\nbegin\nend\n";
  CacheKey K0 = routineCacheKey(Prelude, Text, 3, Opts);
  // Same inputs -> same key.
  EXPECT_EQ(K0.hex(), routineCacheKey(Prelude, Text, 3, Opts).hex());
  // Any ingredient flip -> different key.
  EXPECT_NE(K0.hex(), routineCacheKey(Prelude + "param m = 2\n", Text, 3, Opts).hex());
  EXPECT_NE(K0.hex(), routineCacheKey(Prelude, "routine r\nbegin\nend\n ", 3, Opts).hex());
  EXPECT_NE(K0.hex(), routineCacheKey(Prelude, Text, 4, Opts).hex());
  CompileOptions Strat = Opts;
  Strat.Placement.Strat = Strategy::Orig;
  EXPECT_NE(K0.hex(), routineCacheKey(Prelude, Text, 3, Strat).hex());
  // ...except Jobs, which never changes outputs.
  CompileOptions Jobs = Opts;
  Jobs.Placement.Jobs = 8;
  EXPECT_EQ(K0.hex(), routineCacheKey(Prelude, Text, 3, Jobs).hex());
}
