//===- tests/test_fusion.cpp - loop fusion tests --------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "driver/Compile.h"
#include "lower/Schedule.h"
#include "runtime/Verify.h"
#include "workloads/Workloads.h"
#include "xform/Fuse.h"
#include "xform/Scalarize.h"

#include <gtest/gtest.h>

using namespace gca;

namespace {

std::unique_ptr<Program> parseScalarizeFuse(const std::string &Src,
                                            int *FusedOut = nullptr) {
  DiagEngine D;
  auto P = parseProgram(Src, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  scalarizeProgram(*P, D);
  int N = fuseLoops(*P);
  if (FusedOut)
    *FusedOut = N;
  return P;
}

} // namespace

TEST(Fuse, AdjacentConformableNestsMerge) {
  int Fused = 0;
  auto P = parseScalarizeFuse(R"(
program f
param n = 8
real a(n) distribute (block)
real b(n) distribute (block)
begin
  a = 3
  b = 4
end
)",
                              &Fused);
  EXPECT_EQ(Fused, 1);
  const Routine &R = *P->Routines[0];
  ASSERT_EQ(R.body().size(), 1u);
  const auto *L = cast<LoopStmt>(R.body()[0]);
  EXPECT_EQ(L->body().size(), 2u); // Both assignments in one loop.
}

TEST(Fuse, RenamesVariables) {
  auto P = parseScalarizeFuse(R"(
program f
param n = 8
real a(n) distribute (block)
real b(n) distribute (block)
begin
  a = 3
  b(1:n) = a(1:n)
end
)");
  const Routine &R = *P->Routines[0];
  ASSERT_EQ(R.body().size(), 1u);
  const auto *L = cast<LoopStmt>(R.body()[0]);
  ASSERT_EQ(L->body().size(), 2u);
  const auto *S2 = cast<AssignStmt>(L->body()[1]);
  // b's subscript now uses the surviving loop's variable.
  EXPECT_EQ(S2->lhs().Subs[0].Lo.coeff(L->var()), 1);
  EXPECT_EQ(S2->rhs()[0].Ref.Subs[0].Lo.coeff(L->var()), 1);
}

TEST(Fuse, ForwardFlowBlocks) {
  // b reads a(i+1): in a fused loop, iteration i would read a value the
  // first statement has not written yet.
  int Fused = 0;
  parseScalarizeFuse(R"(
program f
param n = 8
real a(n) distribute (block)
real b(n) distribute (block)
begin
  a = 3
  b(1:n-1) = a(2:n)
end
)",
                     &Fused);
  EXPECT_EQ(Fused, 0);
}

TEST(Fuse, BackwardFlowFuses) {
  // b reads a(i-1): already written when the fused iteration reaches it.
  int Fused = 0;
  auto P = parseScalarizeFuse(R"(
program f
param n = 8
real a(n) distribute (block)
real b(n) distribute (block)
begin
  a(2:n) = 1
  b(2:n) = a(1:n-1)
end
)",
                              &Fused);
  // Bounds differ between the two nests (2:n vs 2:n) — they match; reads
  // are backward: fusion is legal.
  EXPECT_EQ(Fused, 1);
  (void)P;
}

TEST(Fuse, MismatchedBoundsBlock) {
  int Fused = 0;
  parseScalarizeFuse(R"(
program f
param n = 8
real a(n) distribute (block)
real b(n) distribute (block)
begin
  a = 3
  b(2:n) = 4
end
)",
                     &Fused);
  EXPECT_EQ(Fused, 0);
}

TEST(Fuse, AntiDirectionBlocks) {
  // The first nest reads what the second writes: fused, the read would see
  // new values too early.
  int Fused = 0;
  parseScalarizeFuse(R"(
program f
param n = 8
real a(n) distribute (block)
real b(n) distribute (block)
begin
  b(1:n) = a(1:n)
  a = 3
end
)",
                     &Fused);
  EXPECT_EQ(Fused, 0);
}

TEST(Fuse, RepairsFigure3ForEarliestCombining) {
  // Section 2.3: with fusion before the analysis, even the syntax-sensitive
  // earliest+combining strawman reaches one message on the F90 source.
  CompileOptions Opts;
  Opts.Placement.Strat = Strategy::EarliestCombine;
  Opts.FuseLoops = true;
  CompileResult R = compileSource(figure3FusedWorkload().Source, Opts);
  ASSERT_TRUE(R.Ok) << R.Errors;
  EXPECT_EQ(R.Routines[0].Plan.Stats.groups(CommKind::Shift), 1);
}

TEST(Fuse, FusedWorkloadsStillVerifyAndCountsHold) {
  // Fusion must not change the global algorithm's counts on the evaluation
  // workloads (their cross-nest flows block fusion inside the timestep
  // loop), and every fused schedule must stay provably safe.
  for (const Workload *W : evaluationWorkloads()) {
    CompileOptions Opts;
    Opts.FuseLoops = true;
    Opts.Params["n"] = 12;
    Opts.Params["nsteps"] = 2;
    CompileResult R = compileSource(W->Source, Opts);
    ASSERT_TRUE(R.Ok) << R.Errors;
    for (const RoutineResult &RR : R.Routines) {
      ExecProgram Prog = ExecProgram::build(*RR.Ctx, RR.Plan);
      VerifyResult V = verifySchedule(*RR.Ctx, RR.Plan, Prog, 4);
      EXPECT_TRUE(V.Ok) << W->Name << "/" << RR.R->name() << "\n" << V.str();
    }
  }
}
