//===- dep/DepTest.h - Array dependence testing -----------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direction-vector dependence testing between an array definition (a
/// statement's LHS write) and an array use (an RHS reference), refined to the
/// paper's IsArrayDep(d, u, level) predicate of Figure 8(d):
///
///   IsArrayDep(d, u, l) holds iff there is a true (flow) dependence from
///   d's write to u's read whose direction vector over the common loops is
///   (=, ..., =, <, *, ..., *) with the '<' at level l — i.e. the dependence
///   is carried at level l — or, for l == CNL(d, u), a loop-independent
///   dependence (all '=') with d textually preceding u.
///
/// Subscripts are affine, so the solver uses ZIV, strong-SIV distance, a GCD
/// solvability screen (which resolves the odd/even column split of the
/// paper's Figure 4), and constant-bounds disjointness; anything beyond that
/// is conservatively assumed dependent with unconstrained direction.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_DEP_DEPTEST_H
#define GCA_DEP_DEPTEST_H

#include "cfg/Cfg.h"

#include <vector>

namespace gca {

/// The set of directions still admissible at one common loop level.
struct DirConstraint {
  bool Lt = true; ///< def iteration < use iteration ('<', carried).
  bool Eq = true; ///< same iteration ('=').
  bool Gt = true; ///< def iteration > use iteration ('>', anti direction).

  bool any() const { return Lt || Eq || Gt; }
  void intersectSingle(int Sign); // Sign<0 -> Gt only, 0 -> Eq, >0 -> Lt.
};

/// The complete direction summary of one (def, use-ref) pair: everything the
/// level predicates below derive, from a single directionConstraints pass.
/// Hot loops (the Earliest barrier walk, the audit's intervening-def scan)
/// fetch one summary per pair instead of re-solving the subscripts once per
/// level.
struct DepDirs {
  bool Possible = false;   ///< Dependence not provably absent.
  bool TextBefore = false; ///< Def textually precedes the use.
  int CNL = 0;             ///< Common nesting level of the pair.
  std::vector<DirConstraint> Dirs; ///< Per-level constraints; size CNL.
};

class DepTester {
public:
  explicit DepTester(const Cfg &G);

  /// Solves the pair once and bundles the per-level constraints with the
  /// textual order; all level predicates are pure functions of the result.
  DepDirs flowDirections(const AssignStmt *Def, const AssignStmt *Use,
                         const ArrayRef &UseRef) const;

  /// In-place variant: overwrites \p Out, reusing its Dirs capacity. Hot
  /// loops keep one scratch DepDirs alive across thousands of pairs to stay
  /// allocation-free.
  void flowDirections(const AssignStmt *Def, const AssignStmt *Use,
                      const ArrayRef &UseRef, DepDirs &Out) const;

  /// carriedAt derived from a precomputed summary.
  static bool carriedFromDirs(const DepDirs &D, int Level) {
    if (!D.Possible || Level < 1 || Level > D.CNL)
      return false;
    for (int L = 0; L + 1 < Level; ++L)
      if (!D.Dirs[L].Eq)
        return false;
    return D.Dirs[Level - 1].Lt;
  }

  /// loopIndependent derived from a precomputed summary.
  static bool loopIndependentFromDirs(const DepDirs &D) {
    if (!D.Possible || !D.TextBefore)
      return false;
    for (const DirConstraint &C : D.Dirs)
      if (!C.Eq)
        return false;
    return true;
  }

  /// depLevel derived from a precomputed summary.
  static int depLevelFromDirs(const DepDirs &D) {
    for (int L = D.CNL; L >= 1; --L)
      if (carriedFromDirs(D, L) ||
          (L == D.CNL && loopIndependentFromDirs(D)))
        return L;
    return 0;
  }

  /// Figure 8(d)'s IsArrayDep(d, u, Level). \p Def writes the same array
  /// \p UseRef reads (callers guarantee this); \p Level is 1-based.
  bool isArrayDep(const AssignStmt *Def, const AssignStmt *Use,
                  const ArrayRef &UseRef, int Level) const;

  /// DepLevel(d, u) of Section 4.2: the deepest level at which IsArrayDep
  /// holds; 0 when there is no constraint (communication may hoist to the
  /// routine entry).
  int depLevel(const AssignStmt *Def, const AssignStmt *Use,
               const ArrayRef &UseRef) const;

  /// Common nesting level of the two statements.
  int commonNestingLevel(const AssignStmt *A, const AssignStmt *B) const;

  /// True when a flow dependence carried at exactly \p Level is feasible:
  /// direction vector (=, ..., =, <) with the '<' at Level.
  bool carriedAt(const AssignStmt *Def, const AssignStmt *Use,
                 const ArrayRef &UseRef, int Level) const;

  /// True when a loop-independent flow dependence is feasible: the all-equal
  /// direction vector is admissible over every common level and the def
  /// textually precedes the use (trivially all-equal when CNL == 0).
  bool loopIndependent(const AssignStmt *Def, const AssignStmt *Use,
                       const ArrayRef &UseRef) const;

  /// Computes per-level direction constraints (1..CNL). Returns false when
  /// the dependence is provably absent altogether.
  bool directionConstraints(const AssignStmt *Def, const AssignStmt *Use,
                            const ArrayRef &UseRef,
                            std::vector<DirConstraint> &Out) const;

private:
  /// Constant value range of an affine expression under known loop bounds;
  /// returns false when some variable's bounds are not constant.
  bool constRange(const AffineExpr &E, int64_t &Min, int64_t &Max) const;

  const Cfg &G;
  /// Loop-variable id -> (lo, hi) when both bounds are constants.
  std::vector<std::pair<int64_t, int64_t>> VarBounds;
  std::vector<char> VarBoundsKnown;
  /// Loop-variable id -> step; and whether the lower bound is a constant
  /// (needed for lattice base alignment in the GCD screen).
  std::vector<int64_t> VarStep;
  std::vector<char> VarLoKnown;
  std::vector<int64_t> VarLo;
};

} // namespace gca

#endif // GCA_DEP_DEPTEST_H
