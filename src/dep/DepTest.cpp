//===- dep/DepTest.cpp - Array dependence testing -------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "dep/DepTest.h"

#include <cassert>
#include <cstdlib>
#include <numeric>

using namespace gca;

void DirConstraint::intersectSingle(int Sign) {
  if (Sign > 0) {
    Eq = false;
    Gt = false;
  } else if (Sign < 0) {
    Lt = false;
    Eq = false;
  } else {
    Lt = false;
    Gt = false;
  }
}

DepTester::DepTester(const Cfg &G) : G(G) {
  const Routine &R = G.routine();
  unsigned NumVars = static_cast<unsigned>(R.loopVarNames().size());
  VarBounds.assign(NumVars, {0, 0});
  VarBoundsKnown.assign(NumVars, 0);
  VarStep.assign(NumVars, 1);
  VarLoKnown.assign(NumVars, 0);
  VarLo.assign(NumVars, 0);
  for (unsigned L = 0, E = G.numLoops(); L != E; ++L) {
    const LoopStmt *S = G.loop(static_cast<int>(L)).L;
    VarStep[S->var()] = S->step();
    if (S->lo().isConstant()) {
      VarLoKnown[S->var()] = 1;
      VarLo[S->var()] = S->lo().constValue();
    }
    if (S->lo().isConstant() && S->hi().isConstant()) {
      int64_t Lo = S->lo().constValue(), Hi = S->hi().constValue();
      if (S->step() < 0)
        std::swap(Lo, Hi);
      VarBounds[S->var()] = {Lo, Hi};
      VarBoundsKnown[S->var()] = 1;
    }
  }
}

int DepTester::commonNestingLevel(const AssignStmt *A,
                                  const AssignStmt *B) const {
  const std::vector<int> &NA = G.loopNestOf(A);
  const std::vector<int> &NB = G.loopNestOf(B);
  unsigned N = 0;
  while (N < NA.size() && N < NB.size() && NA[N] == NB[N])
    ++N;
  return static_cast<int>(N);
}

bool DepTester::constRange(const AffineExpr &E, int64_t &Min,
                           int64_t &Max) const {
  Min = Max = E.constPart();
  for (const auto &[V, C] : E.terms()) {
    if (V >= static_cast<int>(VarBoundsKnown.size()) || !VarBoundsKnown[V])
      return false;
    int64_t Lo = VarBounds[V].first, Hi = VarBounds[V].second;
    if (C >= 0) {
      Min += C * Lo;
      Max += C * Hi;
    } else {
      Min += C * Hi;
      Max += C * Lo;
    }
  }
  return true;
}

namespace {

/// The lattice characterization of the values one subscript can take:
/// { Base + k * Mod : k integer } intersected with [Min, Max] when bounds
/// are known. Mod == 0 means the single value Base (no variables / ranges).
/// BaseKnown is false when some variable's lower bound is not constant; the
/// GCD screen then cannot align the two lattices.
struct SubLattice {
  int64_t Base = 0;
  bool BaseKnown = true;
  int64_t Mod = 0;
  bool HasRange = false; // [Min, Max] below is meaningful.
  int64_t Min = 0, Max = 0;
};

} // namespace

/// Builds the lattice view of a subscript. Loop variables contribute their
/// own stride (coeff * loop step) to the modulus and their first value
/// (coeff * lo) to the base, which is what resolves the odd/even column
/// split of the paper's Figure 4. \p CR evaluates constant ranges; \p VarInfo
/// returns (step, loKnown, lo) for a loop variable.
template <typename ConstRangeFn, typename VarInfoFn>
static SubLattice latticeOf(const Subscript &S, ConstRangeFn CR,
                            VarInfoFn VarInfo) {
  SubLattice L;
  const AffineExpr &E = S.Lo;
  L.Base = E.constPart();
  int64_t M = S.isRange() ? std::llabs(S.Step) : 0;
  for (const auto &[V, C] : E.terms()) {
    int64_t Step, Lo;
    bool LoKnown;
    VarInfo(V, Step, LoKnown, Lo);
    M = std::gcd(M, std::llabs(C * Step));
    if (LoKnown)
      L.Base += C * Lo;
    else
      L.BaseKnown = false;
  }
  // A variable upper bound (Range Hi) does not change the lattice,
  // only the value range.
  L.Mod = M;
  if (S.isElem()) {
    L.HasRange = CR(S.Lo, L.Min, L.Max);
    return L;
  }
  int64_t LoMin, LoMax, HiMin, HiMax;
  if (CR(S.Lo, LoMin, LoMax) && CR(S.Hi, HiMin, HiMax)) {
    L.HasRange = true;
    L.Min = std::min(LoMin, HiMin);
    L.Max = std::max(LoMax, HiMax);
  }
  return L;
}

bool DepTester::directionConstraints(const AssignStmt *Def,
                                     const AssignStmt *Use,
                                     const ArrayRef &UseRef,
                                     std::vector<DirConstraint> &Out) const {
  assert(!Def->lhsIsScalar() && "array dependence against a scalar def");
  const ArrayRef &DefRef = Def->lhs();
  assert(DefRef.ArrayId == UseRef.ArrayId &&
         "dependence test across different arrays");

  int CNL = commonNestingLevel(Def, Use);
  Out.assign(static_cast<size_t>(CNL), DirConstraint());

  // Common loop level (0-based) -> loop variable id, read off the def's
  // nest on demand (the scan is over at most CNL levels, so a side table
  // would cost more to build than it saves).
  const std::vector<int> &Nest = G.loopNestOf(Def);
  auto levelOfVar = [&](int V) {
    int Level = -1;
    for (int L = 0; L != CNL; ++L)
      if (G.loop(Nest[L]).L->var() == V)
        Level = L;
    return Level;
  };

  auto CR = [this](const AffineExpr &E, int64_t &Min, int64_t &Max) {
    return constRange(E, Min, Max);
  };

  unsigned Rank = static_cast<unsigned>(DefRef.Subs.size());
  assert(UseRef.Subs.size() == Rank && "rank mismatch in dependence test");

  for (unsigned Dim = 0; Dim != Rank; ++Dim) {
    const Subscript &SD = DefRef.Subs[Dim];
    const Subscript &SU = UseRef.Subs[Dim];

    // Strong-SIV: both elements, identical variable parts consisting of
    // common loop variables only -> fixed distance at the innermost level
    // whose variable appears (classic case: single var a*i + c).
    if (SD.isElem() && SU.isElem()) {
      int64_t Delta;
      if (SD.Lo.constDifference(SU.Lo, Delta)) {
        // Same variable part. Which common level does it bind?
        const auto &Terms = SD.Lo.terms();
        if (Terms.empty()) {
          // ZIV: constants must match.
          if (Delta != 0)
            return false;
          continue;
        }
        if (Terms.size() == 1) {
          int Level = levelOfVar(Terms[0].first);
          if (Level >= 0) {
            int64_t A = Terms[0].second;
            // a*xd + cd = a*xu + cu  =>  xu - xd = (cd - cu) / a = Delta / a.
            if (Delta % A != 0)
              return false; // No integer solution.
            int64_t Dist = Delta / A; // use iter minus def iter.
            if (!Out[Level].any())
              return false;
            DirConstraint C = Out[Level];
            C.intersectSingle(Dist > 0 ? 1 : Dist < 0 ? -1 : 0);
            if (!C.any())
              return false; // Conflicting constraints from two dims.
            Out[Level] = C;
            continue;
          }
          // Non-common variable with equal structure: same value iff same
          // inner iteration; unconstrained on common levels but solvable.
          continue;
        }
        // Multiple variables, identical structure: conservatively
        // unconstrained (a refined test could bind several levels).
        continue;
      }
    }

    // General screen via value lattices: GCD solvability and bounding boxes.
    auto VarInfo = [this](int V, int64_t &Step, bool &LoKnown, int64_t &Lo) {
      Step = V < static_cast<int>(VarStep.size()) ? VarStep[V] : 1;
      LoKnown = V < static_cast<int>(VarLoKnown.size()) && VarLoKnown[V];
      Lo = LoKnown ? VarLo[V] : 0;
    };
    SubLattice LD = latticeOf(SD, CR, VarInfo);
    SubLattice LU = latticeOf(SU, CR, VarInfo);
    if (LD.BaseKnown && LU.BaseKnown) {
      int64_t M = std::gcd(LD.Mod, LU.Mod);
      if (M != 0) {
        if ((LD.Base - LU.Base) % M != 0)
          return false; // GCD test: lattices never meet.
      } else if (LD.Mod == 0 && LU.Mod == 0) {
        if (LD.Base != LU.Base)
          return false; // Two distinct constants.
      }
    }
    if (LD.HasRange && LU.HasRange &&
        (LD.Max < LU.Min || LU.Max < LD.Min))
      return false; // Disjoint value ranges.
    // Otherwise: dependence possible, direction unconstrained by this dim.
  }
  return true;
}

DepDirs DepTester::flowDirections(const AssignStmt *Def,
                                  const AssignStmt *Use,
                                  const ArrayRef &UseRef) const {
  DepDirs Out;
  flowDirections(Def, Use, UseRef, Out);
  return Out;
}

void DepTester::flowDirections(const AssignStmt *Def, const AssignStmt *Use,
                               const ArrayRef &UseRef, DepDirs &Out) const {
  Out.CNL = commonNestingLevel(Def, Use);
  Out.TextBefore = G.preorderOf(Def) < G.preorderOf(Use);
  Out.Possible = directionConstraints(Def, Use, UseRef, Out.Dirs);
  if (!Out.Possible)
    Out.Dirs.clear();
}

bool DepTester::carriedAt(const AssignStmt *Def, const AssignStmt *Use,
                          const ArrayRef &UseRef, int Level) const {
  assert(Level >= 1 && "carried levels are 1-based");
  if (Level > commonNestingLevel(Def, Use))
    return false;
  return carriedFromDirs(flowDirections(Def, Use, UseRef), Level);
}

bool DepTester::loopIndependent(const AssignStmt *Def, const AssignStmt *Use,
                                const ArrayRef &UseRef) const {
  if (G.preorderOf(Def) >= G.preorderOf(Use))
    return false;
  return loopIndependentFromDirs(flowDirections(Def, Use, UseRef));
}

bool DepTester::isArrayDep(const AssignStmt *Def, const AssignStmt *Use,
                           const ArrayRef &UseRef, int Level) const {
  assert(Level >= 1 && "IsArrayDep levels are 1-based");
  DepDirs D = flowDirections(Def, Use, UseRef);
  if (Level > D.CNL)
    return false; // Figure 8(d): l > CNL(d, u) -> FALSE.
  // Carried at Level, or a loop-independent dependence pinning
  // communication inside the common nest (level CNL).
  return carriedFromDirs(D, Level) ||
         (Level == D.CNL && loopIndependentFromDirs(D));
}

int DepTester::depLevel(const AssignStmt *Def, const AssignStmt *Use,
                        const ArrayRef &UseRef) const {
  return depLevelFromDirs(flowDirections(Def, Use, UseRef));
}

