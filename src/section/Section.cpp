//===- section/Section.cpp - Regular array sections -----------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "section/Section.h"

#include "support/StrUtil.h"

#include <cstdlib>

#include <algorithm>
#include <numeric>
#include <cassert>

using namespace gca;

int64_t SecDim::count() const {
  int64_t Delta;
  if (!Hi.constDifference(Lo, Delta))
    return -1;
  if (Delta < 0)
    return 0;
  return Delta / Step + 1;
}

int64_t RegSection::numElems() const {
  int64_t N = 1;
  for (const SecDim &D : Dims) {
    int64_t C = D.count();
    if (C < 0)
      return -1;
    N *= C;
  }
  return N;
}

bool RegSection::containedIn(const RegSection &Other) const {
  if (rank() != Other.rank())
    return false;
  for (unsigned D = 0, E = rank(); D != E; ++D) {
    const SecDim &A = Dims[D];
    const SecDim &B = Other.Dims[D];
    int64_t DLo, DHi;
    if (!A.Lo.constDifference(B.Lo, DLo) || !B.Hi.constDifference(A.Hi, DHi))
      return false; // Different variable structure: unknown.
    if (DLo < 0 || DHi < 0)
      return false; // A sticks out of B on either end.
    // Stride compatibility: every element of A on B's lattice.
    if (A.Step % B.Step != 0 || DLo % B.Step != 0)
      return false;
  }
  return true;
}

bool RegSection::unionApprox(const RegSection &Other, RegSection &Out,
                             int64_t &UnionElems, int64_t &SumElems) const {
  if (rank() != Other.rank())
    return false;
  std::vector<SecDim> U;
  U.reserve(rank());
  for (unsigned D = 0, E = rank(); D != E; ++D) {
    const SecDim &A = Dims[D];
    const SecDim &B = Other.Dims[D];
    int64_t DLo, DHi;
    if (!A.Lo.constDifference(B.Lo, DLo) || !A.Hi.constDifference(B.Hi, DHi))
      return false;
    SecDim Dim;
    Dim.Lo = DLo <= 0 ? A.Lo : B.Lo;
    Dim.Hi = DHi >= 0 ? A.Hi : B.Hi;
    Dim.Step = std::gcd(A.Step, B.Step);
    // Phase: if the two lattices are offset, fall back to step that covers
    // both (gcd of steps and the lo offset).
    if (DLo % Dim.Step != 0)
      Dim.Step = std::gcd(Dim.Step, std::llabs(DLo));
    if (Dim.Step == 0)
      Dim.Step = 1;
    U.push_back(std::move(Dim));
  }
  Out = RegSection(std::move(U));
  int64_t NA = numElems(), NB = Other.numElems(), NU = Out.numElems();
  if (NA < 0 || NB < 0 || NU < 0) {
    UnionElems = -1;
    SumElems = -1;
  } else {
    UnionElems = NU;
    SumElems = NA + NB;
  }
  return true;
}

bool RegSection::difference(const RegSection &Other, RegSection &Out) const {
  if (rank() != Other.rank())
    return false;
  // Identify the single dimension where Other does not cover this section.
  int Uncovered = -1;
  for (unsigned D = 0, E = rank(); D != E; ++D) {
    const SecDim &A = Dims[D];
    const SecDim &B = Other.Dims[D];
    int64_t DLo, DHi;
    if (!A.Lo.constDifference(B.Lo, DLo) || !B.Hi.constDifference(A.Hi, DHi))
      return false;
    if (A.Step % B.Step != 0 || DLo % B.Step != 0)
      return false; // Stride mismatch: treat as uncoverable.
    bool Covered = DLo >= 0 && DHi >= 0;
    if (Covered)
      continue;
    if (Uncovered >= 0)
      return false; // Two uncovered dims: remainder is not a box.
    Uncovered = static_cast<int>(D);
  }
  if (Uncovered < 0)
    return false; // Fully covered: the difference is empty.

  const SecDim &A = Dims[Uncovered];
  const SecDim &B = Other.Dims[Uncovered];
  int64_t DLo, DHi;
  A.Lo.constDifference(B.Lo, DLo);
  B.Hi.constDifference(A.Hi, DHi);
  // The remainder must be one-sided (a pure prefix or suffix).
  SecDim Rem = A;
  if (DLo < 0 && DHi >= 0) {
    // A sticks out below B: remainder is [A.Lo, B.Lo - step].
    Rem.Hi = B.Lo - A.Step;
  } else if (DHi < 0 && DLo >= 0) {
    Rem.Lo = B.Hi + A.Step;
  } else {
    // Sticks out on both sides (or B disjoint inside): not a single box.
    return false;
  }
  Out = *this;
  Out.dim(static_cast<unsigned>(Uncovered)) = Rem;
  return true;
}

bool RegSection::mayIntersect(const RegSection &Other) const {
  if (rank() != Other.rank())
    return true; // Unknown shapes: assume overlap.
  for (unsigned D = 0, E = rank(); D != E; ++D) {
    const SecDim &A = Dims[D];
    const SecDim &B = Other.Dims[D];
    int64_t AHiBLo, BHiALo;
    // Provably disjoint when A ends before B starts or vice versa.
    if (B.Lo.constDifference(A.Hi, AHiBLo) && AHiBLo > 0)
      return false;
    if (A.Lo.constDifference(B.Hi, BHiALo) && BHiALo > 0)
      return false;
  }
  return true;
}

std::vector<DimRange>
RegSection::concretize(const std::vector<int64_t> &VarValues) const {
  std::vector<DimRange> Out;
  Out.reserve(Dims.size());
  for (const SecDim &D : Dims) {
    DimRange R;
    R.Lo = D.Lo.eval(VarValues);
    R.Hi = D.Hi.eval(VarValues);
    R.Step = D.Step;
    Out.push_back(R);
  }
  return Out;
}

std::string RegSection::str(const std::vector<std::string> *VarNames) const {
  std::vector<std::string> Parts;
  for (const SecDim &D : Dims) {
    int64_t Delta;
    if (D.Hi.constDifference(D.Lo, Delta) && Delta == 0) {
      Parts.push_back(D.Lo.str(VarNames));
      continue;
    }
    std::string P = D.Lo.str(VarNames) + ":" + D.Hi.str(VarNames);
    if (D.Step != 1)
      P += strFormat(":%lld", static_cast<long long>(D.Step));
    Parts.push_back(std::move(P));
  }
  std::string Out = "(";
  Out += join(Parts, ",");
  Out += ')';
  return Out;
}
