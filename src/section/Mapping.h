//===- section/Mapping.h - Communication mapping functions ------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "M" component of an Available Section Descriptor: a mapping function
/// from data elements to the processors that must receive them, expressed in
/// the virtual processor space of template positions (paper Section 4.6/4.7).
/// The kinds cover the patterns of the paper's evaluation:
///
///  - Shift: nearest-neighbour communication (NNC). The per-template-dim
///    offset is the element distance (rhs index minus lhs index); the
///    sender-receiver relation is its *sign*, magnitudes widen the overlap
///    region. Diagonal shifts are decomposed into axis shifts by the
///    message-coalescing prepass (Section 2.2).
///  - Reduce: a global reduction (SUM) over the marked template dims, result
///    replicated everywhere.
///  - Bcast: a constant position along one template dim read by all
///    processors (a broadcast plane/row).
///  - General: anything else; modeled as unstructured many-to-many.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SECTION_MAPPING_H
#define GCA_SECTION_MAPPING_H

#include "ir/Ast.h"

#include <string>
#include <vector>

namespace gca {

enum class CommKind : uint8_t {
  Local,   ///< No communication required.
  Shift,   ///< Nearest-neighbour (the paper's NNC rows).
  Reduce,  ///< Global reduction (the paper's SUM rows).
  Bcast,   ///< Broadcast of a constant template position.
  General, ///< Unstructured fallback.
};

const char *commKindName(CommKind Kind);

struct Mapping {
  CommKind Kind = CommKind::Local;
  /// The template both endpoints align to.
  TemplateSig Sig;
  /// Shift: per-template-dim element offsets (use minus owner).
  std::vector<int64_t> Offsets;
  /// Reduce: template dims collapsed by the reduction.
  std::vector<uint8_t> ReduceDims;
  /// Bcast: the template dim with a constant subscript, and its position.
  int BcastDim = -1;
  int64_t BcastPos = 0;

  static Mapping local() { return {}; }
  static Mapping shift(TemplateSig Sig, std::vector<int64_t> Offsets);
  static Mapping reduce(TemplateSig Sig, std::vector<uint8_t> ReduceDims);
  static Mapping bcast(TemplateSig Sig, int Dim, int64_t Pos);
  static Mapping general(TemplateSig Sig);

  bool isLocal() const { return Kind == CommKind::Local; }

  bool operator==(const Mapping &RHS) const;

  /// True when every receiver served by *this is also served (with the same
  /// data relation) by \p Other — the M1(D1) subset-of M2(D1) test of
  /// Section 4.6. For shifts this means equal directions with \p Other
  /// reaching at least as far.
  bool subsumedBy(const Mapping &Other) const;

  /// Section 4.7 compatibility: combining is profitable only when the
  /// sender-receiver relationships are identical or one is a subset of the
  /// other.
  bool compatibleWith(const Mapping &Other) const;

  std::string str() const;
};

} // namespace gca

#endif // GCA_SECTION_MAPPING_H
