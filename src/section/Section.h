//===- section/Section.h - Regular array sections ---------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regular array sections (lo:hi:step per dimension) with bounds affine in
/// the loop variables *outside* the placement point. Two sections produced
/// at the same placement context can then be compared exactly even when they
/// are parameterized by an enclosing loop (e.g. the planes g(i, 1:n, 1:n) and
/// g(i-1, 1:n, 1:n)). Sections are the "D" component of the paper's
/// Available Section Descriptors (Section 4.6).
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SECTION_SECTION_H
#define GCA_SECTION_SECTION_H

#include "ir/AffineExpr.h"

#include <string>
#include <vector>

namespace gca {

/// A fully concrete per-dimension triplet.
struct DimRange {
  int64_t Lo = 0;
  int64_t Hi = -1;
  int64_t Step = 1;

  bool empty() const { return Hi < Lo; }
  int64_t count() const { return empty() ? 0 : (Hi - Lo) / Step + 1; }
};

/// One dimension of a (possibly outer-loop-parameterized) section.
struct SecDim {
  AffineExpr Lo;
  AffineExpr Hi;
  int64_t Step = 1;

  static SecDim single(AffineExpr Index) {
    return {Index, Index, 1};
  }
  static SecDim triplet(AffineExpr Lo, AffineExpr Hi, int64_t Step = 1) {
    return {std::move(Lo), std::move(Hi), Step};
  }

  /// Element count when Hi - Lo is a known constant; -1 otherwise.
  int64_t count() const;

  bool operator==(const SecDim &RHS) const {
    return Lo == RHS.Lo && Hi == RHS.Hi && Step == RHS.Step;
  }
};

/// A regular section of one array.
class RegSection {
public:
  RegSection() = default;
  explicit RegSection(std::vector<SecDim> Dims) : Dims(std::move(Dims)) {}

  unsigned rank() const { return static_cast<unsigned>(Dims.size()); }
  const SecDim &dim(unsigned D) const { return Dims[D]; }
  SecDim &dim(unsigned D) { return Dims[D]; }
  const std::vector<SecDim> &dims() const { return Dims; }

  /// Total element count; -1 when some dimension's extent is not constant.
  int64_t numElems() const;

  /// Conservative containment: true only when every dimension of *this is
  /// provably inside the corresponding dimension of \p Other (same affine
  /// variable structure, constant offsets, compatible strides).
  bool containedIn(const RegSection &Other) const;

  bool operator==(const RegSection &RHS) const { return Dims == RHS.Dims; }

  /// Bounding-box union. Succeeds only when every pair of bounds has a
  /// constant difference (same outer-variable structure); \p GrowthNum /
  /// \p GrowthDen report |union| relative to |this| + |other| so callers can
  /// enforce the paper's size-growth constraint (Section 4.7). Returns false
  /// when the union is not representable.
  bool unionApprox(const RegSection &Other, RegSection &Out,
                   int64_t &UnionElems, int64_t &SumElems) const;

  /// Evaluates to concrete ranges under \p VarValues (outer loop values).
  std::vector<DimRange> concretize(const std::vector<int64_t> &VarValues) const;

  /// Representable set difference: when \p Other covers this section in all
  /// dimensions but one (where it covers a prefix or suffix), the remainder
  /// is a single regular section. Used by partial redundancy elimination
  /// ("reduce the communication for b2 to ASD(b2) - ASD(b1)", Section 4.6 /
  /// [14]). Returns false when the difference is empty or not representable.
  bool difference(const RegSection &Other, RegSection &Out) const;

  /// Conservative intersection test: false only when some dimension's value
  /// ranges are provably disjoint (constant-difference bounds); true
  /// otherwise.
  bool mayIntersect(const RegSection &Other) const;

  std::string str(const std::vector<std::string> *VarNames = nullptr) const;

private:
  std::vector<SecDim> Dims;
};

} // namespace gca

#endif // GCA_SECTION_SECTION_H
