//===- section/Mapping.cpp - Communication mapping functions --------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "section/Mapping.h"

#include "support/StrUtil.h"

#include <cstdlib>

#include <cassert>

using namespace gca;

const char *gca::commKindName(CommKind Kind) {
  switch (Kind) {
  case CommKind::Local:
    return "LOCAL";
  case CommKind::Shift:
    return "NNC";
  case CommKind::Reduce:
    return "SUM";
  case CommKind::Bcast:
    return "BCAST";
  case CommKind::General:
    return "GEN";
  }
  return "?";
}

Mapping Mapping::shift(TemplateSig Sig, std::vector<int64_t> Offsets) {
  assert(Sig.rank() == Offsets.size() && "offset per template dim required");
  Mapping M;
  M.Kind = CommKind::Shift;
  M.Sig = std::move(Sig);
  M.Offsets = std::move(Offsets);
  return M;
}

Mapping Mapping::reduce(TemplateSig Sig, std::vector<uint8_t> ReduceDims) {
  assert(Sig.rank() == ReduceDims.size() && "flag per template dim required");
  Mapping M;
  M.Kind = CommKind::Reduce;
  M.Sig = std::move(Sig);
  M.ReduceDims = std::move(ReduceDims);
  return M;
}

Mapping Mapping::bcast(TemplateSig Sig, int Dim, int64_t Pos) {
  Mapping M;
  M.Kind = CommKind::Bcast;
  M.Sig = std::move(Sig);
  M.BcastDim = Dim;
  M.BcastPos = Pos;
  return M;
}

Mapping Mapping::general(TemplateSig Sig) {
  Mapping M;
  M.Kind = CommKind::General;
  M.Sig = std::move(Sig);
  return M;
}

bool Mapping::operator==(const Mapping &RHS) const {
  return Kind == RHS.Kind && Sig == RHS.Sig && Offsets == RHS.Offsets &&
         ReduceDims == RHS.ReduceDims && BcastDim == RHS.BcastDim &&
         BcastPos == RHS.BcastPos;
}

/// Sign of an offset, used for the sender-receiver relation of shifts.
static int signOf(int64_t V) { return V > 0 ? 1 : V < 0 ? -1 : 0; }

bool Mapping::subsumedBy(const Mapping &Other) const {
  if (Kind != Other.Kind || !(Sig == Other.Sig))
    return false;
  switch (Kind) {
  case CommKind::Local:
    return true;
  case CommKind::Shift:
    // Same directions, and Other's overlap region reaches at least as far.
    for (unsigned D = 0, E = Sig.rank(); D != E; ++D) {
      if (signOf(Offsets[D]) != signOf(Other.Offsets[D]))
        return false;
      if (std::llabs(Offsets[D]) > std::llabs(Other.Offsets[D]))
        return false;
    }
    return true;
  case CommKind::Reduce:
    return ReduceDims == Other.ReduceDims;
  case CommKind::Bcast:
    return BcastDim == Other.BcastDim && BcastPos == Other.BcastPos;
  case CommKind::General:
    return false; // Conservative: never assume an unstructured superset.
  }
  return false;
}

bool Mapping::compatibleWith(const Mapping &Other) const {
  if (Kind != Other.Kind || !(Sig == Other.Sig))
    return false;
  switch (Kind) {
  case CommKind::Local:
    return true;
  case CommKind::Shift:
    // Identical directions; magnitudes may differ (overlap width = max).
    for (unsigned D = 0, E = Sig.rank(); D != E; ++D)
      if (signOf(Offsets[D]) != signOf(Other.Offsets[D]))
        return false;
    return true;
  case CommKind::Reduce:
    return ReduceDims == Other.ReduceDims;
  case CommKind::Bcast:
    return BcastDim == Other.BcastDim && BcastPos == Other.BcastPos;
  case CommKind::General:
    return false;
  }
  return false;
}

std::string Mapping::str() const {
  std::string Out = commKindName(Kind);
  switch (Kind) {
  case CommKind::Shift: {
    Out += "[";
    for (unsigned D = 0; D != Offsets.size(); ++D)
      Out += strFormat(D ? ",%lld" : "%lld",
                       static_cast<long long>(Offsets[D]));
    Out += "]";
    break;
  }
  case CommKind::Reduce: {
    Out += "[";
    for (unsigned D = 0; D != ReduceDims.size(); ++D)
      Out += ReduceDims[D] ? "+" : ".";
    Out += "]";
    break;
  }
  case CommKind::Bcast:
    Out += strFormat("[d%d=%lld]", BcastDim,
                     static_cast<long long>(BcastPos));
    break;
  case CommKind::Local:
  case CommKind::General:
    break;
  }
  return Out;
}
