//===- section/Asd.h - Available Section Descriptors ------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Available Section Descriptor of Section 4.6: a pair (D, M) where D is
/// the array section being communicated and M maps data to the receiving
/// processors. "(D1, M1) is made redundant by (D2, M2) if D1 is contained in
/// D2 and M1(D1) is contained in M2(D1)."
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SECTION_ASD_H
#define GCA_SECTION_ASD_H

#include "section/Mapping.h"
#include "section/Section.h"

namespace gca {

struct Asd {
  int ArrayId = -1;
  RegSection D;
  Mapping M;

  /// The redundancy test of Section 4.6.
  bool subsumedBy(const Asd &Other) const {
    return ArrayId == Other.ArrayId && D.containedIn(Other.D) &&
           M.subsumedBy(Other.M);
  }

  bool operator==(const Asd &RHS) const {
    return ArrayId == RHS.ArrayId && D == RHS.D && M == RHS.M;
  }

  std::string str(const std::vector<std::string> *VarNames = nullptr,
                  const std::string &ArrayName = "") const {
    return (ArrayName.empty() ? "" : ArrayName) + D.str(VarNames) + " " +
           M.str();
  }
};

} // namespace gca

#endif // GCA_SECTION_ASD_H
