//===- support/Trace.h - Structured tracing collector -----------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide structured trace collector for the compiler and the batch
/// driver: span (begin/end and complete), instant, and counter events land in
/// lock-free per-thread buffers and export as Chrome trace-event JSON,
/// loadable in Perfetto or chrome://tracing.
///
/// Design rules:
///
///  - **Disabled is free.** Every emission helper starts with a single
///    relaxed atomic load (`enabled()`); when tracing is off nothing else
///    runs — no allocation, no locking, no clock reads. Hot paths may emit
///    unconditionally.
///
///  - **Emission is lock-free.** Each thread owns one TraceLane; only the
///    owning thread ever appends to it, so appends take no lock. The process
///    mutex is touched once per thread (lane registration) and by the
///    control plane (enable/disable/export).
///
///  - **Export needs quiescence.** exportChromeJson()/snapshot() and
///    enable()/disable() must run while no other thread is emitting —
///    in practice after ThreadPool workers have been joined. Lanes are never
///    deallocated, so a thread's cached lane pointer stays valid for the
///    whole process lifetime.
///
///  - **Structure is deterministic.** Events carry a per-lane sequence
///    number and export sorted by (lane, sequence); argument lists keep
///    emission order. Two runs that execute the same work on the same lanes
///    produce byte-identical traces once timestamps are redacted
///    (ExportOptions::RedactTimes), which is what the golden tests assert.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SUPPORT_TRACE_H
#define GCA_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gca {

/// One key/value argument of a trace event. String values are escaped at
/// export; numeric values render bare.
struct TraceArg {
  std::string Key;
  std::string Value;
  bool IsNumber = false;

  TraceArg(std::string K, std::string V)
      : Key(std::move(K)), Value(std::move(V)) {}
  TraceArg(std::string K, const char *V) : Key(std::move(K)), Value(V) {}
  TraceArg(std::string K, int64_t V);
  TraceArg(std::string K, int V) : TraceArg(std::move(K), int64_t(V)) {}
};

/// One event in the Chrome trace-event model. Phase 'B'/'E' bound a span on
/// the emitting thread's lane, 'X' is a complete span with an explicit
/// duration, 'i' an instant, 'C' a counter sample.
struct TraceEvent {
  std::string Name;
  const char *Category = "";
  char Phase = 'i';
  uint64_t TsNs = 0;  ///< Nanoseconds since the collector's enable() epoch.
  uint64_t DurNs = 0; ///< 'X' events only.
  uint64_t Seq = 0;   ///< Per-lane emission index (deterministic ordering).
  std::vector<TraceArg> Args;
};

/// The per-thread event buffer. Only the owning thread appends; the
/// collector reads it at export time (quiescent).
struct TraceLane {
  uint32_t Tid = 0;       ///< Dense lane id, in registration order.
  std::string ThreadName; ///< From setThreadName(); empty = unnamed.
  std::vector<TraceEvent> Events;
  uint64_t NextSeq = 0;
};

/// Controls for TraceCollector::exportChromeJson().
struct TraceExportOptions {
  /// Render every ts/dur as 0 so structurally-identical runs export
  /// byte-identical documents (golden tests).
  bool RedactTimes = false;
};

class TraceCollector {
public:
  /// The process-wide collector every layer emits into.
  static TraceCollector &instance();

  /// Starts a new trace: clears all lanes' events, resets the timestamp
  /// epoch, and turns the fast-path flag on. Quiescent-only.
  void enable();

  /// Turns emission off. Already-collected events stay exportable.
  /// Quiescent-only.
  void disable();

  /// The fast-path check: one relaxed atomic load. All emission helpers
  /// no-op when false.
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Nanoseconds since the enable() epoch.
  uint64_t nowNs() const;

  /// Names the calling thread's lane (Chrome thread_name metadata).
  /// Registers the lane even before any event, so worker lanes exist in the
  /// export whether or not work landed on them.
  void setThreadName(const std::string &Name);

  /// Opens a span on the calling thread's lane; pair with endSpan().
  void beginSpan(const std::string &Name, const char *Category,
                 std::vector<TraceArg> Args = {});
  /// Closes the innermost open span of the calling thread.
  void endSpan();

  /// A span with explicit bounds (e.g. measured queue-wait intervals).
  void completeSpan(const std::string &Name, const char *Category,
                    uint64_t StartNs, uint64_t DurNs,
                    std::vector<TraceArg> Args = {});

  /// A point event on the calling thread's lane.
  void instant(const std::string &Name, const char *Category,
               std::vector<TraceArg> Args = {});

  /// A counter sample (renders as a value track in the viewer).
  void counter(const std::string &Name, const char *Category, int64_t Value);

  using ExportOptions = TraceExportOptions;

  /// The whole trace as a Chrome trace-event JSON document:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"} with one thread_name
  /// metadata record per lane followed by the events sorted by
  /// (lane, sequence). Quiescent-only.
  std::string exportChromeJson(const ExportOptions &Opts = ExportOptions()) const;

  /// exportChromeJson() to \p Path; false on I/O failure. Quiescent-only.
  bool writeChromeJson(const std::string &Path,
                       const ExportOptions &Opts = ExportOptions()) const;

  /// Total events across all lanes. Quiescent-only (tests).
  size_t eventCount() const;

  /// Lanes registered so far (named or having emitted). Quiescent-only.
  size_t laneCount() const;

  /// Lanes whose name starts with \p Prefix. Quiescent-only (tests).
  size_t laneCountWithPrefix(const std::string &Prefix) const;

private:
  TraceCollector() = default;

  /// The calling thread's lane, registering it on first use.
  TraceLane &myLane();

  std::atomic<bool> Enabled{false};
  uint64_t EpochNs = 0; ///< steady_clock ns at enable().

  mutable std::mutex Mu; ///< Guards Lanes registration only.
  std::vector<std::unique_ptr<TraceLane>> Lanes;
};

/// RAII span against the process-wide collector; no-op when tracing is
/// disabled at construction.
class TraceSpan {
public:
  TraceSpan(const std::string &Name, const char *Category,
            std::vector<TraceArg> Args = {}) {
    TraceCollector &C = TraceCollector::instance();
    if (C.enabled()) {
      Open = true;
      C.beginSpan(Name, Category, std::move(Args));
    }
  }
  ~TraceSpan() {
    if (Open)
      TraceCollector::instance().endSpan();
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  bool Open = false;
};

} // namespace gca

#endif // GCA_SUPPORT_TRACE_H
