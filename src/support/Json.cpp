//===- support/Json.cpp - Streaming JSON writer ---------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/StrUtil.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

using namespace gca;

void JsonWriter::separate() {
  if (AfterKey) {
    AfterKey = false;
    return;
  }
  if (!FirstInScope.back())
    Out += ",";
  FirstInScope.back() = false;
}

JsonWriter &JsonWriter::beginObject() {
  separate();
  Out += "{";
  FirstInScope.push_back(true);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  Out += "}";
  FirstInScope.pop_back();
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  separate();
  Out += "[";
  FirstInScope.push_back(true);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  Out += "]";
  FirstInScope.pop_back();
  return *this;
}

JsonWriter &JsonWriter::key(const std::string &K) {
  if (!FirstInScope.back())
    Out += ",";
  FirstInScope.back() = false;
  Out += '"';
  Out += jsonEscape(K);
  Out += "\":";
  AfterKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(const std::string &S) {
  separate();
  Out += '"';
  Out += jsonEscape(S);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::value(const char *S) {
  return value(std::string(S));
}

JsonWriter &JsonWriter::value(int64_t N) {
  separate();
  Out += strFormat("%lld", static_cast<long long>(N));
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t N) {
  separate();
  Out += strFormat("%llu", static_cast<unsigned long long>(N));
  return *this;
}

JsonWriter &JsonWriter::value(bool B) {
  separate();
  Out += B ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::value(double D, int Precision) {
  separate();
  Out += strFormat("%.*f", Precision, D);
  return *this;
}

JsonWriter &JsonWriter::null() {
  separate();
  Out += "null";
  return *this;
}

JsonWriter &JsonWriter::raw(const std::string &Json) {
  separate();
  Out += Json;
  return *this;
}

//===----------------------------------------------------------------------===//
// JsonValue
//===----------------------------------------------------------------------===//

JsonValue JsonValue::makeBool(bool V) {
  JsonValue J;
  J.K = Kind::Bool;
  J.B = V;
  return J;
}

JsonValue JsonValue::makeNumber(double V) {
  JsonValue J;
  J.K = Kind::Number;
  J.Num = V;
  return J;
}

JsonValue JsonValue::makeInt(int64_t V) {
  JsonValue J;
  J.K = Kind::Number;
  J.Num = static_cast<double>(V);
  J.Int = V;
  J.Integral = true;
  return J;
}

JsonValue JsonValue::makeString(std::string V) {
  JsonValue J;
  J.K = Kind::String;
  J.Str = std::move(V);
  return J;
}

JsonValue JsonValue::makeArray(std::vector<JsonValue> V) {
  JsonValue J;
  J.K = Kind::Array;
  J.Arr = std::move(V);
  return J;
}

JsonValue
JsonValue::makeObject(std::vector<std::pair<std::string, JsonValue>> V) {
  JsonValue J;
  J.K = Kind::Object;
  J.Obj = std::move(V);
  return J;
}

const JsonValue *JsonValue::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, Value] : Obj)
    if (Name == Key)
      return &Value;
  return nullptr;
}

namespace {

/// Strict recursive-descent parser over a byte buffer. Never throws; every
/// failure records a message with the byte offset. Depth-capped.
class JsonParser {
public:
  JsonParser(const std::string &Text, std::string &Err)
      : Text(Text), Err(Err) {}

  bool run(JsonValue &Out) {
    skipWs();
    if (!parseValue(Out, 0))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing bytes after document");
    return true;
  }

private:
  static constexpr int MaxDepth = 64;

  bool fail(const std::string &Msg) {
    Err = strFormat("json: %s at offset %zu", Msg.c_str(), Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail("invalid literal");
    Pos += Len;
    return true;
  }

  bool parseValue(JsonValue &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case 'n':
      return literal("null") && (Out = JsonValue::makeNull(), true);
    case 't':
      return literal("true") && (Out = JsonValue::makeBool(true), true);
    case 'f':
      return literal("false") && (Out = JsonValue::makeBool(false), true);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue::makeString(std::move(S));
      return true;
    }
    case '[':
      return parseArray(Out, Depth);
    case '{':
      return parseObject(Out, Depth);
    default:
      return parseNumber(Out);
    }
  }

  bool parseArray(JsonValue &Out, int Depth) {
    ++Pos; // '['
    std::vector<JsonValue> Elems;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      Out = JsonValue::makeArray(std::move(Elems));
      return true;
    }
    while (true) {
      JsonValue Elem;
      skipWs();
      if (!parseValue(Elem, Depth + 1))
        return false;
      Elems.push_back(std::move(Elem));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      char C = Text[Pos++];
      if (C == ']')
        break;
      if (C != ',')
        return fail("expected ',' or ']' in array");
    }
    Out = JsonValue::makeArray(std::move(Elems));
    return true;
  }

  bool parseObject(JsonValue &Out, int Depth) {
    ++Pos; // '{'
    std::vector<std::pair<std::string, JsonValue>> Members;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      Out = JsonValue::makeObject(std::move(Members));
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':' after object key");
      ++Pos;
      skipWs();
      JsonValue Value;
      if (!parseValue(Value, Depth + 1))
        return false;
      Members.emplace_back(std::move(Key), std::move(Value));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      char C = Text[Pos++];
      if (C == '}')
        break;
      if (C != ',')
        return fail("expected ',' or '}' in object");
    }
    Out = JsonValue::makeObject(std::move(Members));
    return true;
  }

  static void appendUtf8(std::string &S, uint32_t Cp) {
    if (Cp < 0x80) {
      S.push_back(static_cast<char>(Cp));
    } else if (Cp < 0x800) {
      S.push_back(static_cast<char>(0xc0 | (Cp >> 6)));
      S.push_back(static_cast<char>(0x80 | (Cp & 0x3f)));
    } else if (Cp < 0x10000) {
      S.push_back(static_cast<char>(0xe0 | (Cp >> 12)));
      S.push_back(static_cast<char>(0x80 | ((Cp >> 6) & 0x3f)));
      S.push_back(static_cast<char>(0x80 | (Cp & 0x3f)));
    } else {
      S.push_back(static_cast<char>(0xf0 | (Cp >> 18)));
      S.push_back(static_cast<char>(0x80 | ((Cp >> 12) & 0x3f)));
      S.push_back(static_cast<char>(0x80 | ((Cp >> 6) & 0x3f)));
      S.push_back(static_cast<char>(0x80 | (Cp & 0x3f)));
    }
  }

  bool parseHex4(uint32_t &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I != 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<uint32_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<uint32_t>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<uint32_t>(C - 'A' + 10);
      else
        return fail("invalid \\u escape");
    }
    return true;
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening '"'
    Out.clear();
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      unsigned char C = static_cast<unsigned char>(Text[Pos++]);
      if (C == '"')
        return true;
      if (C < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out.push_back(static_cast<char>(C));
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out.push_back(E);
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        uint32_t Cp;
        if (!parseHex4(Cp))
          return false;
        if (Cp >= 0xd800 && Cp <= 0xdbff) {
          // High surrogate: must be followed by \uDC00..\uDFFF.
          if (Pos + 1 >= Text.size() || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return fail("unpaired surrogate");
          Pos += 2;
          uint32_t Lo;
          if (!parseHex4(Lo))
            return false;
          if (Lo < 0xdc00 || Lo > 0xdfff)
            return fail("invalid low surrogate");
          Cp = 0x10000 + ((Cp - 0xd800) << 10) + (Lo - 0xdc00);
        } else if (Cp >= 0xdc00 && Cp <= 0xdfff) {
          return fail("unpaired surrogate");
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    size_t DigitsStart = Pos;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    if (Pos == DigitsStart)
      return fail("invalid number");
    // JSON forbids leading zeros ("01"), but the writer never emits them
    // and being lenient here costs nothing, so accept them.
    bool Integral = true;
    if (Pos < Text.size() && Text[Pos] == '.') {
      Integral = false;
      ++Pos;
      size_t FracStart = Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
      if (Pos == FracStart)
        return fail("invalid number fraction");
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Integral = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      size_t ExpStart = Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
      if (Pos == ExpStart)
        return fail("invalid number exponent");
    }
    std::string Literal = Text.substr(Start, Pos - Start);
    if (Integral) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(Literal.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0') {
        Out = JsonValue::makeInt(V);
        return true;
      }
      // Out-of-range integer: fall through to double.
    }
    errno = 0;
    char *End = nullptr;
    double D = std::strtod(Literal.c_str(), &End);
    if (!End || *End != '\0')
      return fail("invalid number");
    Out = JsonValue::makeNumber(D);
    return true;
  }

  const std::string &Text;
  std::string &Err;
  size_t Pos = 0;
};

} // namespace

bool JsonValue::parse(const std::string &Text, JsonValue &Out,
                      std::string &Err) {
  Err.clear();
  return JsonParser(Text, Err).run(Out);
}
