//===- support/Json.cpp - Streaming JSON writer ---------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/StrUtil.h"

using namespace gca;

void JsonWriter::separate() {
  if (AfterKey) {
    AfterKey = false;
    return;
  }
  if (!FirstInScope.back())
    Out += ",";
  FirstInScope.back() = false;
}

JsonWriter &JsonWriter::beginObject() {
  separate();
  Out += "{";
  FirstInScope.push_back(true);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  Out += "}";
  FirstInScope.pop_back();
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  separate();
  Out += "[";
  FirstInScope.push_back(true);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  Out += "]";
  FirstInScope.pop_back();
  return *this;
}

JsonWriter &JsonWriter::key(const std::string &K) {
  if (!FirstInScope.back())
    Out += ",";
  FirstInScope.back() = false;
  Out += '"';
  Out += jsonEscape(K);
  Out += "\":";
  AfterKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(const std::string &S) {
  separate();
  Out += '"';
  Out += jsonEscape(S);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::value(const char *S) {
  return value(std::string(S));
}

JsonWriter &JsonWriter::value(int64_t N) {
  separate();
  Out += strFormat("%lld", static_cast<long long>(N));
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t N) {
  separate();
  Out += strFormat("%llu", static_cast<unsigned long long>(N));
  return *this;
}

JsonWriter &JsonWriter::value(bool B) {
  separate();
  Out += B ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::value(double D, int Precision) {
  separate();
  Out += strFormat("%.*f", Precision, D);
  return *this;
}

JsonWriter &JsonWriter::null() {
  separate();
  Out += "null";
  return *this;
}

JsonWriter &JsonWriter::raw(const std::string &Json) {
  separate();
  Out += Json;
  return *this;
}
