//===- support/SourceLoc.cpp - Source locations ---------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/SourceLoc.h"

#include "support/StrUtil.h"

using namespace gca;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return strFormat("%d:%d", Line, Col);
}
