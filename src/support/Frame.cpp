//===- support/Frame.cpp - Length-prefixed message framing ----------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/Frame.h"

#include "support/Io.h"

#include <cstring>

namespace gca {

const char *frameStatusName(FrameStatus S) {
  switch (S) {
  case FrameStatus::Ok:
    return "ok";
  case FrameStatus::Eof:
    return "eof";
  case FrameStatus::Truncated:
    return "truncated";
  case FrameStatus::Garbage:
    return "garbage";
  case FrameStatus::Oversized:
    return "oversized";
  case FrameStatus::IoError:
    return "io-error";
  }
  return "unknown";
}

FrameStatus readFrame(int Fd, std::string &Payload, size_t MaxPayload,
                      uint32_t *DeclaredLen) {
  Payload.clear();
  char Header[kFrameHeaderBytes];
  switch (ioReadFull(Fd, Header, sizeof Header)) {
  case IoStatus::Ok:
    break;
  case IoStatus::Eof:
    return FrameStatus::Eof;
  case IoStatus::Short:
    return FrameStatus::Truncated;
  case IoStatus::Error:
    return FrameStatus::IoError;
  }
  if (std::memcmp(Header, kFrameMagic, sizeof kFrameMagic) != 0)
    return FrameStatus::Garbage;
  uint32_t Len = static_cast<uint8_t>(Header[4]) |
                 static_cast<uint32_t>(static_cast<uint8_t>(Header[5])) << 8 |
                 static_cast<uint32_t>(static_cast<uint8_t>(Header[6])) << 16 |
                 static_cast<uint32_t>(static_cast<uint8_t>(Header[7])) << 24;
  if (DeclaredLen)
    *DeclaredLen = Len;
  if (Len > MaxPayload)
    return FrameStatus::Oversized;
  Payload.resize(Len);
  if (Len == 0)
    return FrameStatus::Ok;
  switch (ioReadFull(Fd, &Payload[0], Len)) {
  case IoStatus::Ok:
    return FrameStatus::Ok;
  case IoStatus::Eof:
  case IoStatus::Short:
    Payload.clear();
    return FrameStatus::Truncated;
  case IoStatus::Error:
    Payload.clear();
    return FrameStatus::IoError;
  }
  return FrameStatus::IoError;
}

std::string encodeFrame(const std::string &Payload) {
  std::string Out;
  Out.reserve(kFrameHeaderBytes + Payload.size());
  Out.append(kFrameMagic, sizeof kFrameMagic);
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  Out.push_back(static_cast<char>(Len & 0xff));
  Out.push_back(static_cast<char>((Len >> 8) & 0xff));
  Out.push_back(static_cast<char>((Len >> 16) & 0xff));
  Out.push_back(static_cast<char>((Len >> 24) & 0xff));
  Out += Payload;
  return Out;
}

FrameStatus writeFrame(int Fd, const std::string &Payload) {
  if (Payload.size() > 0xffffffffu)
    return FrameStatus::IoError;
  // One buffer, one checked write: a frame is either fully on the wire or
  // the connection is dead — readers never see a header without its
  // payload from a healthy peer.
  std::string Wire = encodeFrame(Payload);
  return ioWriteFull(Fd, Wire.data(), Wire.size()) == IoStatus::Ok
             ? FrameStatus::Ok
             : FrameStatus::IoError;
}

} // namespace gca
