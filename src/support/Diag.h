//===- support/Diag.h - Diagnostic engine -----------------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small accumulating diagnostic engine. The frontend and semantic checks
/// report recoverable user errors here (the library never throws); callers
/// check hasErrors() after a phase and bail out.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SUPPORT_DIAG_H
#define GCA_SUPPORT_DIAG_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace gca {

/// Severity of a reported diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic: severity, location, rendered message.
struct Diag {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  /// Renders "error: 3:7: message" style text (message style follows the
  /// LLVM convention: lowercase first letter, no trailing period).
  std::string str() const;
};

/// Accumulates diagnostics for one compilation.
///
/// All frontend entry points take a DiagEngine; user-input problems become
/// errors here rather than assertions, which are reserved for internal
/// invariant violations.
class DiagEngine {
public:
  /// Reports an error at \p Loc with a printf-style message.
  void error(SourceLoc Loc, const char *Fmt, ...)
      __attribute__((format(printf, 3, 4)));

  /// Reports a warning at \p Loc with a printf-style message.
  void warning(SourceLoc Loc, const char *Fmt, ...)
      __attribute__((format(printf, 3, 4)));

  /// Reports a note at \p Loc with a printf-style message.
  void note(SourceLoc Loc, const char *Fmt, ...)
      __attribute__((format(printf, 3, 4)));

  /// Appends a fully-formed diagnostic verbatim — the replay path of the
  /// routine-granularity result cache, which stores the structured records
  /// and re-reports them so cached and cold runs render identical text.
  void append(Diag D) {
    if (D.Kind == DiagKind::Error)
      ++NumErrors;
    Diags.push_back(std::move(D));
  }

  bool hasErrors() const { return NumErrors > 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diag> &diags() const { return Diags; }

  /// Renders every accumulated diagnostic, one per line.
  std::string str() const;

  /// Drops all accumulated diagnostics (for engine reuse in tests).
  void clear();

private:
  void report(DiagKind Kind, SourceLoc Loc, const char *Fmt, va_list Args);

  std::vector<Diag> Diags;
  unsigned NumErrors = 0;
};

} // namespace gca

#endif // GCA_SUPPORT_DIAG_H
