//===- support/Stats.cpp - Named counter registry -------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include "support/StrUtil.h"

using namespace gca;

void StatsRegistry::add(const std::string &Name, int64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters[Name] += Delta;
}

int64_t StatsRegistry::get(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

bool StatsRegistry::empty() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters.empty();
}

StatsRegistry::Snapshot StatsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters;
}

StatsRegistry::Snapshot StatsRegistry::diff(const Snapshot &Before) const {
  Snapshot Out;
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &[Name, Value] : Counters) {
    auto It = Before.find(Name);
    int64_t Delta = Value - (It == Before.end() ? 0 : It->second);
    if (Delta != 0)
      Out[Name] = Delta;
  }
  return Out;
}

void StatsRegistry::merge(const StatsRegistry &Other) {
  Snapshot Theirs = Other.snapshot();
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &[Name, Value] : Theirs)
    Counters[Name] += Value;
}

std::string StatsRegistry::str() const {
  Snapshot Snap = snapshot();
  size_t Width = 0;
  for (const auto &[Name, Value] : Snap)
    Width = std::max(Width, std::to_string(Value).size());
  std::string Out;
  for (const auto &[Name, Value] : Snap)
    Out += strFormat("%*lld %s\n", static_cast<int>(Width + 2),
                     static_cast<long long>(Value), Name.c_str());
  return Out;
}

std::string StatsRegistry::json() const {
  Snapshot Snap = snapshot();
  std::string Out = "{";
  bool First = true;
  for (const auto &[Name, Value] : Snap) {
    if (!First)
      Out += ",";
    First = false;
    Out += strFormat("\"%s\":%lld", Name.c_str(),
                     static_cast<long long>(Value));
  }
  Out += "}";
  return Out;
}
