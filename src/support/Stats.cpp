//===- support/Stats.cpp - Named counter registry -------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include "support/Json.h"
#include "support/StrUtil.h"

#include <algorithm>
#include <cctype>

using namespace gca;

void StatsRegistry::add(const std::string &Name, int64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters[Name] += Delta;
}

int64_t StatsRegistry::get(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

bool StatsRegistry::empty() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters.empty();
}

StatsRegistry::Snapshot StatsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters;
}

StatsRegistry::Snapshot StatsRegistry::diff(const Snapshot &Before) const {
  Snapshot Out;
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &[Name, Value] : Counters) {
    auto It = Before.find(Name);
    int64_t Delta = Value - (It == Before.end() ? 0 : It->second);
    if (Delta != 0)
      Out[Name] = Delta;
  }
  return Out;
}

void StatsRegistry::merge(const StatsRegistry &Other) {
  Snapshot Theirs = Other.snapshot();
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &[Name, Value] : Theirs)
    Counters[Name] += Value;
}

std::string StatsRegistry::str() const {
  Snapshot Snap = snapshot();
  size_t Width = 0;
  for (const auto &[Name, Value] : Snap)
    Width = std::max(Width, std::to_string(Value).size());
  std::string Out;
  for (const auto &[Name, Value] : Snap)
    Out += strFormat("%*lld %s\n", static_cast<int>(Width + 2),
                     static_cast<long long>(Value), Name.c_str());
  return Out;
}

std::string StatsRegistry::json() const {
  Snapshot Snap = snapshot();
  JsonWriter W;
  W.beginObject();
  for (const auto &[Name, Value] : Snap)
    W.key(Name).value(Value);
  W.endObject();
  return W.str();
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

// Bucket layout: values in [0,32) get exact buckets 0..31; a value with
// highest set bit b >= 5 lands in one of 16 sub-buckets of [2^b, 2^(b+1)),
// at index 32 + (b-5)*16 + (the 4 bits below the highest bit).
size_t Histogram::bucketOf(int64_t Value) {
  uint64_t V = Value < 0 ? 0 : static_cast<uint64_t>(Value);
  if (V < 32)
    return static_cast<size_t>(V);
  int B = 63;
  while (!(V >> B))
    --B;
  uint64_t Sub = (V >> (B - 4)) & 0xF;
  return 32 + static_cast<size_t>(B - 5) * 16 + static_cast<size_t>(Sub);
}

int64_t Histogram::bucketLowerBound(size_t Bucket) {
  if (Bucket < 32)
    return static_cast<int64_t>(Bucket);
  size_t B = (Bucket - 32) / 16 + 5;
  size_t Sub = (Bucket - 32) % 16;
  return static_cast<int64_t>((16 + Sub) << (B - 4));
}

void Histogram::record(int64_t Value) {
  if (Value < 0)
    Value = 0;
  size_t Idx = bucketOf(Value);
  if (Idx >= Buckets.size())
    Buckets.resize(Idx + 1, 0);
  ++Buckets[Idx];
  if (!Count || Value < Min)
    Min = Value;
  if (!Count || Value > Max)
    Max = Value;
  ++Count;
  Sum += Value;
}

int64_t Histogram::quantile(double Q) const {
  if (!Count)
    return 0;
  Q = std::min(1.0, std::max(0.0, Q));
  int64_t Rank = static_cast<int64_t>(Q * static_cast<double>(Count));
  if (Rank >= Count)
    Rank = Count - 1;
  int64_t Seen = 0;
  for (size_t I = 0; I != Buckets.size(); ++I) {
    Seen += Buckets[I];
    if (Seen > Rank)
      return std::max(std::min(bucketLowerBound(I), Max), Min);
  }
  return Max;
}

void Histogram::merge(const Histogram &Other) {
  if (!Other.Count)
    return;
  if (Other.Buckets.size() > Buckets.size())
    Buckets.resize(Other.Buckets.size(), 0);
  for (size_t I = 0; I != Other.Buckets.size(); ++I)
    Buckets[I] += Other.Buckets[I];
  if (!Count || Other.Min < Min)
    Min = Other.Min;
  if (!Count || Other.Max > Max)
    Max = Other.Max;
  Count += Other.Count;
  Sum += Other.Sum;
}

std::string Histogram::str() const {
  return strFormat("count=%lld min=%lld p50=%lld p95=%lld p99=%lld max=%lld",
                   static_cast<long long>(Count),
                   static_cast<long long>(min()),
                   static_cast<long long>(quantile(0.5)),
                   static_cast<long long>(quantile(0.95)),
                   static_cast<long long>(quantile(0.99)),
                   static_cast<long long>(max()));
}

static void histogramJson(JsonWriter &W, const Histogram &H) {
  W.beginObject();
  W.key("count").value(H.count());
  W.key("min").value(H.min());
  W.key("max").value(H.max());
  W.key("sum").value(H.sum());
  W.key("mean").value(H.mean(), 3);
  W.key("p50").value(H.quantile(0.5));
  W.key("p95").value(H.quantile(0.95));
  W.key("p99").value(H.quantile(0.99));
  W.endObject();
}

std::string Histogram::json() const {
  JsonWriter W;
  histogramJson(W, *this);
  return W.str();
}

//===----------------------------------------------------------------------===//
// MetricsSnapshot
//===----------------------------------------------------------------------===//

std::string MetricsSnapshot::json() const {
  JsonWriter W;
  W.beginObject();
  W.key("counters").beginObject();
  for (const auto &[Name, Value] : Counters)
    W.key(Name).value(Value);
  W.endObject();
  W.key("histograms").beginObject();
  for (const auto &[Name, H] : Histograms) {
    W.key(Name);
    histogramJson(W, H);
  }
  W.endObject();
  W.endObject();
  return W.str();
}

/// "placement.subset-eliminated" -> "gca_placement_subset_eliminated".
static std::string promName(const std::string &Dotted) {
  std::string Out = "gca_";
  for (char C : Dotted)
    Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '_')
               ? C
               : '_';
  return Out;
}

std::string MetricsSnapshot::prometheus() const {
  std::string Out;
  for (const auto &[Name, Value] : Counters) {
    std::string P = promName(Name);
    Out += strFormat("# HELP %s gcomm counter %s\n", P.c_str(), Name.c_str());
    Out += strFormat("# TYPE %s counter\n%s %lld\n", P.c_str(), P.c_str(),
                     static_cast<long long>(Value));
  }
  for (const auto &[Name, H] : Histograms) {
    std::string P = promName(Name);
    Out += strFormat("# HELP %s gcomm histogram %s\n", P.c_str(),
                     Name.c_str());
    Out += strFormat("# TYPE %s summary\n", P.c_str());
    for (double Q : {0.5, 0.95, 0.99})
      Out += strFormat("%s{quantile=\"%g\"} %lld\n", P.c_str(), Q,
                       static_cast<long long>(H.quantile(Q)));
    Out += strFormat("%s_sum %lld\n", P.c_str(),
                     static_cast<long long>(H.sum()));
    Out += strFormat("%s_count %lld\n", P.c_str(),
                     static_cast<long long>(H.count()));
  }
  return Out;
}
