//===- support/Http.h - Minimal HTTP/1.1 admin responder --------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small HTTP/1.1 responder for the compile server's admin
/// plane (`--admin=HOST:PORT`): enough protocol to serve `GET /metrics`,
/// `/healthz`, `/readyz`, `/statusz`, and `/tracez` to Prometheus, curl, and
/// load balancers — and nothing more. One request per connection
/// (`Connection: close`), GET-only routing left to the handler, bounded
/// header size, no keep-alive, no chunked encoding, no TLS.
///
/// Every byte moves through the checked ioReadFull/ioWriteFull wrappers
/// (support/Io.h), so the responder inherits EINTR/partial-transfer handling
/// and the GCA_FAULT injection seam: a scrape under `short-write=40` storms
/// completes byte-identically or fails loudly, never silently truncated.
///
/// Failure domains mirror the frame layer's discipline: a truncated request
/// or dead peer costs only its own connection; an oversized header block is
/// answered `431`, a request line that is not HTTP is answered `400`, and
/// the listener keeps accepting through all of it.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SUPPORT_HTTP_H
#define GCA_SUPPORT_HTTP_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace gca {

/// Header-block cap: a legitimate scrape request is a few hundred bytes, so
/// anything beyond this is a protocol error answered with 431.
inline constexpr size_t kMaxHttpHeaderBytes = 8192;

/// One parsed request head (the admin plane ignores bodies: every endpoint
/// is a GET, and non-GET methods are answered 405 without reading further).
struct HttpRequest {
  std::string Method;  ///< "GET", verbatim (case-sensitive per RFC 9110).
  std::string Target;  ///< Request target, e.g. "/metrics".
  std::string Version; ///< "HTTP/1.1".
  std::vector<std::pair<std::string, std::string>> Headers;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string *header(const std::string &Name) const;

  /// \p Target with any "?query" suffix removed.
  std::string path() const;
};

enum class HttpReadStatus : uint8_t {
  Ok,        ///< A complete, parseable request head was read.
  Eof,       ///< The peer closed before sending the first byte.
  Truncated, ///< The peer closed mid-request (no response owed).
  TooLarge,  ///< Header block exceeded the cap; answer 431 and close.
  Malformed, ///< Bytes arrived but are not an HTTP request; answer 400.
  Aborted,   ///< AbortFd became readable (server stopping).
  IoError,   ///< read failed with a non-retryable errno.
};

/// Reads one request head from \p Fd (through ioReadFull, so GCA_FAULT
/// exercises this path) until the blank line, \p MaxHeaderBytes, EOF, or
/// \p AbortFd becoming readable — the server's stop pipe, so a hung client
/// cannot pin a connection thread past shutdown.
HttpReadStatus readHttpRequest(int Fd, HttpRequest &Req,
                               size_t MaxHeaderBytes = kMaxHttpHeaderBytes,
                               int AbortFd = -1);

struct HttpResponse {
  int Status = 200;
  std::string ContentType = "text/plain; charset=utf-8";
  std::string Body;
  /// Extra response headers (e.g. {"Allow", "GET"} on a 405).
  std::vector<std::pair<std::string, std::string>> ExtraHeaders;
};

/// Reason phrase for the handful of status codes the admin plane emits.
const char *httpStatusText(int Status);

/// Serializes \p R (status line, Content-Type/Length, Connection: close,
/// body) through ioWriteFull. \returns false on write failure.
bool writeHttpResponse(int Fd, const HttpResponse &R);

/// A TCP listener dispatching each accepted connection to a handler on its
/// own thread: read one request, answer it, close. Binding to port 0 picks
/// an ephemeral port, readable from port()/address() after start().
class HttpServer {
public:
  using Handler = std::function<HttpResponse(const HttpRequest &)>;

  explicit HttpServer(Handler H) : Handle(std::move(H)) {}
  ~HttpServer() { stop(); }

  HttpServer(const HttpServer &) = delete;
  HttpServer &operator=(const HttpServer &) = delete;

  /// Binds \p HostPort ("HOST:PORT"; HOST may be a dotted IPv4 address,
  /// "localhost", or empty for 127.0.0.1; PORT 0 = ephemeral), listens, and
  /// spawns the accept loop. \returns false with \p Err set on failure.
  bool start(const std::string &HostPort, std::string &Err);

  /// Stops accepting, wakes blocked reads via the stop pipe, and joins the
  /// accept loop and every connection thread. Idempotent.
  void stop();

  /// The bound port (resolves port 0); 0 before start().
  uint16_t port() const { return Port; }

  /// "HOST:PORT" with the resolved port; empty before start().
  std::string address() const;

  /// Serves exactly one already-open connection on the calling thread and
  /// closes \p Fd — the unit tests' socketpair harness.
  void serveConnection(int Fd);

  /// Requests answered with a handler-produced response.
  int64_t requestsServed() const {
    return Served.load(std::memory_order_relaxed);
  }
  /// Connections dropped or answered 400/431 before reaching the handler.
  int64_t badRequests() const {
    return BadRequests.load(std::memory_order_relaxed);
  }

private:
  /// One connection thread plus its completion flag, so the accept loop can
  /// join finished threads eagerly instead of accumulating one dormant
  /// std::thread per scrape until stop().
  struct ConnSlot {
    std::thread T;
    std::atomic<bool> Done{false};
  };

  void acceptLoop();
  void reapFinished();

  Handler Handle;
  int ListenFd = -1;
  int StopPipe[2] = {-1, -1}; ///< Written once on stop; polled, never read.
  std::string Host;
  uint16_t Port = 0;
  std::thread AcceptThread;
  std::atomic<bool> Stopping{false};

  std::mutex ThreadsMu;
  std::vector<std::unique_ptr<ConnSlot>> ConnThreads;

  std::atomic<int64_t> Served{0};
  std::atomic<int64_t> BadRequests{0};
};

/// Blocking one-shot HTTP client: connects to \p HostPort, issues
/// `GET <Path>`, and returns the status code and body (headers are parsed
/// and discarded; the connection reads to EOF, which `Connection: close`
/// guarantees is the body's end). The scraping side of the admin plane —
/// gca-load's /metrics cross-check and the tests — shares this one client
/// so both ends of the wire go through the checked I/O layer. \returns
/// false with \p Err set on connect/transport/parse failure.
bool httpGet(const std::string &HostPort, const std::string &Path,
             int &Status, std::string &Body, std::string &Err);

} // namespace gca

#endif // GCA_SUPPORT_HTTP_H
