//===- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace gca;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Shutdown = true;
  }
  WorkCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::async(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(Task));
  }
  WorkCV.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mu);
  IdleCV.wait(Lock, [this] { return Queue.empty() && NumActive == 0; });
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    WorkCV.wait(Lock, [this] { return Shutdown || !Queue.empty(); });
    if (Queue.empty()) {
      if (Shutdown)
        return;
      continue;
    }
    std::function<void()> Task = std::move(Queue.front());
    Queue.pop_front();
    ++NumActive;
    Lock.unlock();
    Task();
    Lock.lock();
    --NumActive;
    if (Queue.empty() && NumActive == 0)
      IdleCV.notify_all();
  }
}
