//===- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Arena.h"
#include "support/StrUtil.h"
#include "support/Trace.h"

using namespace gca;

ThreadPool::ThreadPool(unsigned NumThreads, std::string LanePrefix)
    : LanePrefix(std::move(LanePrefix)) {
  if (NumThreads == 0)
    NumThreads = std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Shutdown = true;
  }
  WorkCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::async(std::function<void()> Task) {
  TraceCollector &C = TraceCollector::instance();
  uint64_t EnqueueNs = C.enabled() ? C.nowNs() : UINT64_MAX;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back({std::move(Task), EnqueueNs});
  }
  WorkCV.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mu);
  IdleCV.wait(Lock, [this] { return Queue.empty() && NumActive == 0; });
}

void ThreadPool::workerLoop(unsigned Index) {
  // Register this worker's lane up front so the exported trace shows one
  // lane per worker even when fewer tasks than workers arrive.
  TraceCollector &C = TraceCollector::instance();
  if (C.enabled())
    C.setThreadName(strFormat("%s-%u", LanePrefix.c_str(), Index));

  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    WorkCV.wait(Lock, [this] { return Shutdown || !Queue.empty(); });
    if (Queue.empty()) {
      if (Shutdown)
        break;
      continue;
    }
    QueuedTask Task = std::move(Queue.front());
    Queue.pop_front();
    ++NumActive;
    Lock.unlock();
    if (C.enabled()) {
      if (Task.EnqueueNs != UINT64_MAX) {
        uint64_t Now = C.nowNs();
        C.completeSpan("task-wait", "pool", Task.EnqueueNs,
                       Now >= Task.EnqueueNs ? Now - Task.EnqueueNs : 0);
      }
      TraceSpan Span("task", "pool");
      Task.Fn();
    } else {
      Task.Fn();
    }
    Lock.lock();
    --NumActive;
    if (Queue.empty() && NumActive == 0)
      IdleCV.notify_all();
  }
  Lock.unlock();
  // Arenas destroyed on this worker parked their blocks in its thread-local
  // cache; the cache dies with the thread, so hand the blocks back to the
  // allocator instead of leaking them.
  Arena::freeThreadCache();
}
