//===- support/StrUtil.cpp - String helpers -------------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/StrUtil.h"

#include <cassert>
#include <cctype>
#include <cstdio>

using namespace gca;

std::string gca::strFormatV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  assert(Needed >= 0 && "invalid format string");
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args);
  return Out;
}

std::string gca::strFormat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Out = strFormatV(Fmt, Args);
  va_end(Args);
  return Out;
}

std::string gca::join(const std::vector<std::string> &Parts,
                      const std::string &Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string gca::trim(const std::string &S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

std::string gca::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += strFormat("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

std::string gca::formatBytes(double Bytes) {
  if (Bytes < 1024.0)
    return strFormat("%.0f B", Bytes);
  if (Bytes < 1024.0 * 1024.0)
    return strFormat("%.1f KB", Bytes / 1024.0);
  if (Bytes < 1024.0 * 1024.0 * 1024.0)
    return strFormat("%.1f MB", Bytes / (1024.0 * 1024.0));
  return strFormat("%.2f GB", Bytes / (1024.0 * 1024.0 * 1024.0));
}

std::string gca::formatSeconds(double Seconds) {
  if (Seconds < 1e-3)
    return strFormat("%.1f us", Seconds * 1e6);
  if (Seconds < 1.0)
    return strFormat("%.2f ms", Seconds * 1e3);
  return strFormat("%.3f s", Seconds);
}
