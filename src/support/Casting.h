//===- support/Casting.h - isa/cast/dyn_cast helpers ------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal LLVM-style isa<>/cast<>/dyn_cast<> built on a static classof()
/// predicate, so the IR can use kind-discriminated class hierarchies without
/// C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SUPPORT_CASTING_H
#define GCA_SUPPORT_CASTING_H

#include <cassert>

namespace gca {

/// Returns true if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast (const overload).
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast (const overload).
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace gca

#endif // GCA_SUPPORT_CASTING_H
