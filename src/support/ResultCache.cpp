//===- support/ResultCache.cpp - Content-addressed result cache -----------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/ResultCache.h"

#include "support/Json.h"
#include "support/StrUtil.h"
#include "support/Trace.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace gca;

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

uint64_t gca::fnv1a64(const std::string &Bytes, uint64_t Basis) {
  uint64_t H = Basis;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

CacheKey CacheKey::of(const std::string &Material) {
  CacheKey K;
  K.Lo = fnv1a64(Material);
  // A second independent stream: different basis, and fold in the length so
  // the two words never degenerate to a function of one another.
  K.Hi = fnv1a64(Material, 0xcbf29ce484222325ull ^ 0x9e3779b97f4a7c15ull) ^
         (Material.size() * 0x94d049bb133111ebull);
  return K;
}

std::string CacheKey::hex() const {
  return strFormat("%016llx%016llx", static_cast<unsigned long long>(Hi),
                   static_cast<unsigned long long>(Lo));
}

//===----------------------------------------------------------------------===//
// CachedResult serialization
//===----------------------------------------------------------------------===//

size_t CachedResult::byteSize() const {
  size_t N = sizeof(CachedResult) + Errors.size() + Diagnostics.size();
  for (const auto &[Name, Text] : Plans)
    N += Name.size() + Text.size() + 2 * sizeof(std::string);
  for (const auto &[Name, Text] : Dumps)
    N += Name.size() + Text.size() + 2 * sizeof(std::string);
  for (const auto &[Name, Value] : Counters)
    N += Name.size() + sizeof(Value) + 48; // Node overhead estimate.
  return N;
}

namespace {

void appendBlob(std::string &S, const char *Tag, const std::string &Bytes) {
  S += strFormat("%s %zu\n", Tag, Bytes.size());
  S += Bytes;
  S += '\n';
}

/// Strict cursor over the serialized form; every helper returns false on any
/// deviation from the expected format.
class Reader {
public:
  explicit Reader(const std::string &S) : S(S) {}

  size_t pos() const { return Pos; }
  bool atEnd() const { return Pos == S.size(); }

  /// Reads one '\n'-terminated line (without the terminator).
  bool line(std::string &Out) {
    size_t Nl = S.find('\n', Pos);
    if (Nl == std::string::npos)
      return false;
    Out.assign(S, Pos, Nl - Pos);
    Pos = Nl + 1;
    return true;
  }

  /// Parses "Tag N\n" followed by exactly N raw bytes and a '\n'.
  bool blob(const char *Tag, std::string &Out) {
    std::string Header;
    if (!line(Header))
      return false;
    std::string Expect = std::string(Tag) + ' ';
    if (Header.rfind(Expect, 0) != 0)
      return false;
    size_t Size = 0;
    if (!parseSize(Header.substr(Expect.size()), Size))
      return false;
    if (Pos + Size + 1 > S.size() || S[Pos + Size] != '\n')
      return false;
    Out.assign(S, Pos, Size);
    Pos += Size + 1;
    return true;
  }

  /// Parses "Tag N\n" into \p Count.
  bool count(const char *Tag, size_t &Count) {
    std::string Header;
    if (!line(Header))
      return false;
    std::string Expect = std::string(Tag) + ' ';
    if (Header.rfind(Expect, 0) != 0)
      return false;
    return parseSize(Header.substr(Expect.size()), Count);
  }

  static bool parseSize(const std::string &Digits, size_t &Out) {
    if (Digits.empty())
      return false;
    Out = 0;
    for (char C : Digits) {
      if (C < '0' || C > '9')
        return false;
      Out = Out * 10 + static_cast<size_t>(C - '0');
    }
    return true;
  }

private:
  const std::string &S;
  size_t Pos = 0;
};

bool readPairList(Reader &R, const char *ListTag,
                  std::vector<std::pair<std::string, std::string>> &Out) {
  size_t N = 0;
  if (!R.count(ListTag, N) || N > (1u << 20))
    return false;
  Out.clear();
  for (size_t I = 0; I != N; ++I) {
    std::string Name, Text;
    if (!R.blob("name", Name) || !R.blob("text", Text))
      return false;
    Out.emplace_back(std::move(Name), std::move(Text));
  }
  return true;
}

} // namespace

std::string CachedResult::serialize() const {
  std::string S = "GCACHE2\n";
  S += strFormat("flags %d %d %d\n", Ok ? 1 : 0, AuditOk ? 1 : 0,
                 VerifyOk ? 1 : 0);
  appendBlob(S, "errors", Errors);
  appendBlob(S, "diagnostics", Diagnostics);
  S += strFormat("plans %zu\n", Plans.size());
  for (const auto &[Name, Text] : Plans) {
    appendBlob(S, "name", Name);
    appendBlob(S, "text", Text);
  }
  S += strFormat("dumps %zu\n", Dumps.size());
  for (const auto &[Name, Text] : Dumps) {
    appendBlob(S, "name", Name);
    appendBlob(S, "text", Text);
  }
  S += strFormat("counters %zu\n", Counters.size());
  for (const auto &[Name, Value] : Counters) {
    appendBlob(S, "name", Name);
    S += strFormat("value %lld\n", static_cast<long long>(Value));
  }
  S += strFormat("sum %016llx\n",
                 static_cast<unsigned long long>(fnv1a64(S)));
  return S;
}

std::optional<CachedResult> CachedResult::deserialize(const std::string &S) {
  Reader R(S);
  CachedResult Out;
  std::string Line;
  if (!R.line(Line) || Line != "GCACHE2")
    return std::nullopt;
  if (!R.line(Line) || Line.rfind("flags ", 0) != 0 || Line.size() != 11 ||
      (Line[6] != '0' && Line[6] != '1') || Line[7] != ' ' ||
      (Line[8] != '0' && Line[8] != '1') || Line[9] != ' ' ||
      (Line[10] != '0' && Line[10] != '1'))
    return std::nullopt;
  Out.Ok = Line[6] == '1';
  Out.AuditOk = Line[8] == '1';
  Out.VerifyOk = Line[10] == '1';
  if (!R.blob("errors", Out.Errors) || !R.blob("diagnostics", Out.Diagnostics))
    return std::nullopt;
  if (!readPairList(R, "plans", Out.Plans) ||
      !readPairList(R, "dumps", Out.Dumps))
    return std::nullopt;
  size_t NumCounters = 0;
  if (!R.count("counters", NumCounters) || NumCounters > (1u << 20))
    return std::nullopt;
  for (size_t I = 0; I != NumCounters; ++I) {
    std::string Name;
    if (!R.blob("name", Name))
      return std::nullopt;
    if (!R.line(Line) || Line.rfind("value ", 0) != 0)
      return std::nullopt;
    long long Value = 0;
    try {
      size_t Used = 0;
      Value = std::stoll(Line.substr(6), &Used);
      if (Used != Line.size() - 6)
        return std::nullopt;
    } catch (...) {
      return std::nullopt;
    }
    Out.Counters[Name] = Value;
  }
  size_t BeforeSum = R.pos();
  if (!R.line(Line) || Line.rfind("sum ", 0) != 0 || Line.size() != 20)
    return std::nullopt;
  unsigned long long Want = 0;
  if (std::sscanf(Line.c_str() + 4, "%16llx", &Want) != 1)
    return std::nullopt;
  if (fnv1a64(S.substr(0, BeforeSum)) != Want)
    return std::nullopt;
  if (!R.atEnd())
    return std::nullopt;
  return Out;
}

//===----------------------------------------------------------------------===//
// CacheStats
//===----------------------------------------------------------------------===//

std::string CacheStats::str() const {
  return strFormat("cache: hits=%lld misses=%lld evictions=%lld bytes=%lld "
                   "entries=%lld disk-hits=%lld disk-errors=%lld "
                   "routine-hits=%lld routine-misses=%lld",
                   static_cast<long long>(Hits),
                   static_cast<long long>(Misses),
                   static_cast<long long>(Evictions),
                   static_cast<long long>(Bytes),
                   static_cast<long long>(Entries),
                   static_cast<long long>(DiskHits),
                   static_cast<long long>(DiskErrors),
                   static_cast<long long>(RoutineHits),
                   static_cast<long long>(RoutineMisses));
}

std::string CacheStats::json() const {
  JsonWriter W;
  W.beginObject();
  W.key("hits").value(Hits);
  W.key("misses").value(Misses);
  W.key("evictions").value(Evictions);
  W.key("bytes").value(Bytes);
  W.key("entries").value(Entries);
  W.key("disk_hits").value(DiskHits);
  W.key("disk_errors").value(DiskErrors);
  W.key("routine_hits").value(RoutineHits);
  W.key("routine_misses").value(RoutineMisses);
  W.endObject();
  return W.str();
}

//===----------------------------------------------------------------------===//
// Trace emission
//===----------------------------------------------------------------------===//

/// "cache-hit"/"cache-miss"/"cache-disk-read" instant on the calling
/// thread's lane; \p Bytes < 0 omits the size argument.
static void traceCacheInstant(const char *Name, const CacheKey &K,
                              int64_t Bytes) {
  TraceCollector &C = TraceCollector::instance();
  if (!C.enabled())
    return;
  std::vector<TraceArg> Args;
  Args.emplace_back("key", K.hex());
  if (Bytes >= 0)
    Args.emplace_back("bytes", Bytes);
  C.instant(Name, "cache", std::move(Args));
}

/// Samples the memory tier's resident bytes as a counter track.
static void traceCacheBytes(int64_t MemBytes) {
  TraceCollector &C = TraceCollector::instance();
  if (C.enabled())
    C.counter("cache.mem-bytes", "cache", MemBytes);
}

//===----------------------------------------------------------------------===//
// ResultCache
//===----------------------------------------------------------------------===//

ResultCache::ResultCache() : ResultCache(Config{}) {}

ResultCache::ResultCache(Config C) : Cfg(std::move(C)) {
  if (!Cfg.Dir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(Cfg.Dir, Ec);
    if (Ec)
      Cfg.Dir.clear(); // Degrade to memory-only on an unusable directory.
  }
}

ResultCache::Entry *ResultCache::findLocked(const KeyT &K) {
  auto It = Mem.find(K);
  if (It == Mem.end())
    return nullptr;
  Lru.splice(Lru.begin(), Lru, It->second.LruIt);
  return &It->second;
}

void ResultCache::insertLocked(const KeyT &K, const CachedResult &R) {
  auto It = Mem.find(K);
  if (It != Mem.end()) {
    MemBytes -= It->second.Bytes;
    It->second.Result = R;
    It->second.Bytes = R.byteSize();
    MemBytes += It->second.Bytes;
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
  } else {
    Lru.push_front(K);
    Entry E;
    E.Result = R;
    E.Bytes = R.byteSize();
    E.LruIt = Lru.begin();
    MemBytes += E.Bytes;
    Mem.emplace(K, std::move(E));
  }
  evictToBudgetLocked();
}

void ResultCache::evictToBudgetLocked() {
  while (MemBytes > Cfg.MemBudgetBytes && Mem.size() > 1) {
    KeyT Victim = Lru.back();
    auto It = Mem.find(Victim);
    MemBytes -= It->second.Bytes;
    Mem.erase(It);
    Lru.pop_back();
    ++NEvictions;
  }
}

std::optional<CachedResult> ResultCache::lookup(const CacheKey &K) {
  return lookupTallied(K, /*Routine=*/false);
}

std::optional<CachedResult> ResultCache::lookupRoutine(const CacheKey &K) {
  return lookupTallied(K, /*Routine=*/true);
}

std::optional<CachedResult> ResultCache::lookupTallied(const CacheKey &K,
                                                       bool Routine) {
  KeyT Key{K.Hi, K.Lo};
  {
    std::lock_guard<std::mutex> L(Mu);
    if (Entry *E = findLocked(Key)) {
      ++(Routine ? NRoutineHits : NHits);
      traceCacheInstant("cache-hit", K, static_cast<int64_t>(E->Bytes));
      return E->Result;
    }
  }
  if (std::optional<CachedResult> D = readDisk(K)) {
    traceCacheInstant("cache-disk-read", K,
                      static_cast<int64_t>(D->byteSize()));
    int64_t Resident;
    {
      std::lock_guard<std::mutex> L(Mu);
      insertLocked(Key, *D);
      ++(Routine ? NRoutineHits : NHits);
      ++NDiskHits;
      Resident = static_cast<int64_t>(MemBytes);
    }
    traceCacheInstant("cache-hit", K, static_cast<int64_t>(D->byteSize()));
    traceCacheBytes(Resident);
    return D;
  }
  {
    std::lock_guard<std::mutex> L(Mu);
    ++(Routine ? NRoutineMisses : NMisses);
  }
  traceCacheInstant("cache-miss", K, -1);
  return std::nullopt;
}

void ResultCache::store(const CacheKey &K, const CachedResult &R) {
  writeDisk(K, R);
  int64_t Resident;
  {
    std::lock_guard<std::mutex> L(Mu);
    insertLocked({K.Hi, K.Lo}, R);
    Resident = static_cast<int64_t>(MemBytes);
  }
  traceCacheBytes(Resident);
}

CachedResult
ResultCache::getOrCompute(const CacheKey &K,
                          const std::function<CachedResult()> &Compute,
                          bool *Hit) {
  KeyT Key{K.Hi, K.Lo};
  std::unique_lock<std::mutex> L(Mu);
  for (;;) {
    if (Entry *E = findLocked(Key)) {
      ++NHits;
      traceCacheInstant("cache-hit", K, static_cast<int64_t>(E->Bytes));
      if (Hit)
        *Hit = true;
      return E->Result;
    }
    if (!InFlight.count(Key))
      break;
    FlightCV.wait(L);
  }
  InFlight.insert(Key);
  L.unlock();

  // Holder of the in-flight marker; disk probe and compute both run outside
  // the lock so other keys proceed unimpeded.
  auto Finish = [&](const CachedResult &R, bool FromDisk) {
    if (!FromDisk)
      writeDisk(K, R);
    L.lock();
    insertLocked(Key, R);
    if (FromDisk) {
      ++NHits;
      ++NDiskHits;
    } else {
      ++NMisses;
    }
    int64_t Resident = static_cast<int64_t>(MemBytes);
    InFlight.erase(Key);
    FlightCV.notify_all();
    L.unlock();
    traceCacheInstant(FromDisk ? "cache-hit" : "cache-miss", K,
                      FromDisk ? static_cast<int64_t>(R.byteSize()) : -1);
    traceCacheBytes(Resident);
  };

  if (std::optional<CachedResult> D = readDisk(K)) {
    traceCacheInstant("cache-disk-read", K,
                      static_cast<int64_t>(D->byteSize()));
    Finish(*D, /*FromDisk=*/true);
    if (Hit)
      *Hit = true;
    return *D;
  }

  CachedResult R;
  try {
    R = Compute();
  } catch (...) {
    L.lock();
    InFlight.erase(Key);
    FlightCV.notify_all();
    throw;
  }
  Finish(R, /*FromDisk=*/false);
  if (Hit)
    *Hit = false;
  return R;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  CacheStats S;
  S.Hits = NHits;
  S.Misses = NMisses;
  S.Evictions = NEvictions;
  S.Bytes = static_cast<int64_t>(MemBytes);
  S.Entries = static_cast<int64_t>(Mem.size());
  S.DiskHits = NDiskHits;
  S.DiskErrors = NDiskErrors;
  S.RoutineHits = NRoutineHits;
  S.RoutineMisses = NRoutineMisses;
  return S;
}

//===----------------------------------------------------------------------===//
// Disk tier
//===----------------------------------------------------------------------===//

std::optional<CachedResult> ResultCache::readDisk(const CacheKey &K) {
  if (Cfg.Dir.empty())
    return std::nullopt;
  std::filesystem::path Path =
      std::filesystem::path(Cfg.Dir) / (K.hex() + ".gcache");
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  if (!In.good() && !In.eof()) {
    std::lock_guard<std::mutex> L(Mu);
    ++NDiskErrors;
    return std::nullopt;
  }
  std::optional<CachedResult> R = CachedResult::deserialize(Bytes);
  if (!R) {
    std::lock_guard<std::mutex> L(Mu);
    ++NDiskErrors;
  }
  return R;
}

void ResultCache::writeDisk(const CacheKey &K, const CachedResult &R) {
  if (Cfg.Dir.empty())
    return;
  static std::atomic<uint64_t> TmpCounter{0};
  std::filesystem::path Dir(Cfg.Dir);
  std::filesystem::path Final = Dir / (K.hex() + ".gcache");
  std::filesystem::path Tmp =
      Dir / strFormat("%s.tmp.%llu", K.hex().c_str(),
                      static_cast<unsigned long long>(
                          TmpCounter.fetch_add(1, std::memory_order_relaxed)));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      std::lock_guard<std::mutex> L(Mu);
      ++NDiskErrors;
      return;
    }
    std::string Bytes = R.serialize();
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!Out.good()) {
      std::lock_guard<std::mutex> L(Mu);
      ++NDiskErrors;
      Out.close();
      std::error_code Ec;
      std::filesystem::remove(Tmp, Ec);
      return;
    }
  }
  std::error_code Ec;
  std::filesystem::rename(Tmp, Final, Ec);
  if (Ec) {
    std::lock_guard<std::mutex> L(Mu);
    ++NDiskErrors;
    std::filesystem::remove(Tmp, Ec);
  }
}
