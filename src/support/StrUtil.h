//===- support/StrUtil.h - String helpers -----------------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string plus a handful of small string
/// utilities shared across the library (join, trimming, numeric rendering).
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SUPPORT_STRUTIL_H
#define GCA_SUPPORT_STRUTIL_H

#include <cstdarg>
#include <string>
#include <vector>

namespace gca {

/// printf-style formatting that returns an owned std::string.
std::string strFormat(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// vprintf-style counterpart of strFormat.
std::string strFormatV(const char *Fmt, va_list Args);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Strips leading and trailing ASCII whitespace.
std::string trim(const std::string &S);

/// Escapes \p S for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string jsonEscape(const std::string &S);

/// Renders a byte count in a human-friendly form ("512 B", "20.0 KB", ...).
std::string formatBytes(double Bytes);

/// Renders a seconds count in a human-friendly form ("12.3 us", "4.5 ms").
std::string formatSeconds(double Seconds);

} // namespace gca

#endif // GCA_SUPPORT_STRUTIL_H
