//===- support/Arena.h - Bump-pointer allocation ----------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena for the placement engine's slot sets and scratch
/// tables. Allocation is a pointer increment inside the current block; blocks
/// are geometrically sized and never move, so spans handed out stay valid for
/// the arena's lifetime. Only trivially-destructible element types are
/// supported (no destructors run on reset or teardown).
///
/// Retired blocks are parked in a small per-thread cache and handed to the
/// next arena constructed on the same thread, so a steady-state compile loop
/// (the benchmark's repeat runs, the batch driver's queue) reuses the same
/// memory instead of hitting the system allocator once per plan.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SUPPORT_ARENA_H
#define GCA_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace gca {

class Arena {
public:
  explicit Arena(size_t FirstBlockBytes = kDefaultBlockBytes)
      : NextBlockBytes(FirstBlockBytes) {
    // Adopt a cached block before touching malloc.
    BlockCache &Cache = blockCache();
    if (Cache.Count != 0) {
      Blocks.push_back(Cache.Parked[--Cache.Count]);
      Cur = Blocks.back().Data;
      End = Cur + Blocks.back().Bytes;
      NextBlockBytes = std::max(NextBlockBytes, Blocks.back().Bytes * 2);
    }
  }

  ~Arena() {
    // Park up to kMaxCachedBlocks on this thread for the next arena; free
    // the rest. Blocks are plain byte storage, so which thread allocated
    // them is irrelevant.
    BlockCache &Cache = blockCache();
    for (const Block &B : Blocks) {
      if (Cache.Count < kMaxCachedBlocks)
        Cache.Parked[Cache.Count++] = B;
      else
        std::free(B.Data);
    }
  }

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Bytes with \p Align alignment (power of two).
  void *alloc(size_t Bytes, size_t Align) {
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
    uintptr_t Aligned = (P + Align - 1) & ~(Align - 1);
    if (Aligned + Bytes > reinterpret_cast<uintptr_t>(End)) {
      newBlock(Bytes + Align);
      P = reinterpret_cast<uintptr_t>(Cur);
      Aligned = (P + Align - 1) & ~(Align - 1);
    }
    Cur = reinterpret_cast<char *>(Aligned + Bytes);
    Allocated += Bytes;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Allocates an uninitialized array of \p N trivially-destructible Ts.
  template <typename T> T *allocArray(size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    if (N == 0)
      return nullptr;
    return static_cast<T *>(alloc(N * sizeof(T), alignof(T)));
  }

  /// Total payload bytes handed out (excludes alignment and block slack).
  size_t bytesAllocated() const { return Allocated; }

  /// Frees every block parked in this thread's cache. Threads that die
  /// before the process does (thread-pool workers, connection threads) must
  /// call this on their way out: the cache is deliberately never destructed
  /// (see BlockCache), so blocks still parked when the thread's storage
  /// vanishes would otherwise be unreachable — a real leak, and a reported
  /// one under LeakSanitizer.
  static void freeThreadCache() {
    BlockCache &Cache = blockCache();
    while (Cache.Count != 0)
      std::free(Cache.Parked[--Cache.Count].Data);
  }

private:
  struct Block {
    char *Data;
    size_t Bytes;
  };

  static constexpr size_t kDefaultBlockBytes = 64 * 1024;
  static constexpr size_t kMaxCachedBlocks = 8;

  /// Trivially destructible on purpose: no thread_local destructor gets
  /// registered, so arenas held by objects of static storage duration (test
  /// fixtures, cached pipelines) can still park blocks during program
  /// teardown, after the point where a vector cache would already have been
  /// destroyed. Parked blocks at thread exit are reclaimed by the OS.
  struct BlockCache {
    Block Parked[kMaxCachedBlocks];
    size_t Count = 0;
  };

  static BlockCache &blockCache() {
    thread_local BlockCache Cache;
    return Cache;
  }

  void newBlock(size_t MinBytes) {
    size_t Bytes = std::max(NextBlockBytes, MinBytes);
    NextBlockBytes = Bytes * 2;
    char *Data = static_cast<char *>(std::malloc(Bytes));
    if (!Data)
      throw std::bad_alloc();
    Blocks.push_back({Data, Bytes});
    Cur = Data;
    End = Data + Bytes;
  }

  std::vector<Block> Blocks;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t NextBlockBytes;
  size_t Allocated = 0;
};

} // namespace gca

#endif // GCA_SUPPORT_ARENA_H
