//===- support/Timer.cpp - Scoped timers and time reports -----------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"

#include "support/StrUtil.h"

#include <cassert>
#include <chrono>
#include <ctime>

using namespace gca;

static double wallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

static double cpuNow() {
#ifdef CLOCK_THREAD_CPUTIME_ID
  timespec TS;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &TS) == 0)
    return static_cast<double>(TS.tv_sec) + 1e-9 * TS.tv_nsec;
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

const TimeTrace::Node *TimeTrace::Node::child(const std::string &Name) const {
  for (const auto &C : Children)
    if (C->Name == Name)
      return C.get();
  return nullptr;
}

void TimeTrace::enter(const std::string &Name) {
  Node *Parent = Stack.empty() ? &Root : Stack.back().N;
  Node *N = nullptr;
  for (auto &C : Parent->Children)
    if (C->Name == Name) {
      N = C.get();
      break;
    }
  if (!N) {
    Parent->Children.push_back(std::make_unique<Node>());
    N = Parent->Children.back().get();
    N->Name = Name;
  }
  Stack.push_back({N, wallNow(), cpuNow()});
}

TimeRecord TimeTrace::exit() {
  assert(!Stack.empty() && "exit() without matching enter()");
  Open O = Stack.back();
  Stack.pop_back();
  TimeRecord Delta;
  Delta.WallSec = wallNow() - O.WallStart;
  Delta.CpuSec = cpuNow() - O.CpuStart;
  Delta.Invocations = 1;
  O.N->Time += Delta;
  return Delta;
}

TimeRecord TimeTrace::total() const {
  TimeRecord T;
  for (const auto &C : Root.Children)
    T += C->Time;
  return T;
}

static void reportNode(const TimeTrace::Node &N, int Depth,
                       std::string &Out) {
  Out += strFormat("%9.4fs %9.4fs  %*s%s\n", N.Time.WallSec, N.Time.CpuSec,
                   Depth * 2, "", N.Name.c_str());
  for (const auto &C : N.Children)
    reportNode(*C, Depth + 1, Out);
}

std::string TimeTrace::report() const {
  std::string Out = "     wall       cpu  region\n";
  for (const auto &C : Root.Children)
    reportNode(*C, 0, Out);
  TimeRecord T = total();
  Out += strFormat("%9.4fs %9.4fs  total\n", T.WallSec, T.CpuSec);
  return Out;
}

static void jsonNode(const TimeTrace::Node &N, std::string &Out) {
  Out += strFormat("{\"name\":\"%s\",\"wall_s\":%.6f,\"cpu_s\":%.6f,"
                   "\"invocations\":%lld,\"children\":[",
                   N.Name.c_str(), N.Time.WallSec, N.Time.CpuSec,
                   static_cast<long long>(N.Time.Invocations));
  for (size_t I = 0; I != N.Children.size(); ++I) {
    if (I)
      Out += ",";
    jsonNode(*N.Children[I], Out);
  }
  Out += "]}";
}

std::string TimeTrace::json() const {
  std::string Out = "[";
  for (size_t I = 0; I != Root.Children.size(); ++I) {
    if (I)
      Out += ",";
    jsonNode(*Root.Children[I], Out);
  }
  Out += "]";
  return Out;
}
