//===- support/Timer.cpp - Scoped timers and time reports -----------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"

#include "support/Json.h"
#include "support/StrUtil.h"
#include "support/Trace.h"

#include <cassert>
#include <chrono>
#include <ctime>

using namespace gca;

static double wallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

static double cpuNow() {
#ifdef CLOCK_THREAD_CPUTIME_ID
  timespec TS;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &TS) == 0)
    return static_cast<double>(TS.tv_sec) + 1e-9 * TS.tv_nsec;
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

const TimeTrace::Node *TimeTrace::Node::child(const std::string &Name) const {
  for (const auto &C : Children)
    if (C->Name == Name)
      return C.get();
  return nullptr;
}

void TimeTrace::enter(const std::string &Name) {
  Node *Parent = Stack.empty() ? &Root : Stack.back().N;
  Node *N = nullptr;
  for (auto &C : Parent->Children)
    if (C->Name == Name) {
      N = C.get();
      break;
    }
  if (!N) {
    Parent->Children.push_back(std::make_unique<Node>());
    N = Parent->Children.back().get();
    N->Name = Name;
  }
  Stack.push_back({N, wallNow(), cpuNow()});
  // Every timed region doubles as a trace span: the pipeline's pass and
  // per-routine enter/exit points feed the trace for free.
  TraceCollector &C = TraceCollector::instance();
  if (C.enabled())
    C.beginSpan(Name, "region");
}

TimeRecord TimeTrace::exit() {
  assert(!Stack.empty() && "exit() without matching enter()");
  TraceCollector &C = TraceCollector::instance();
  if (C.enabled())
    C.endSpan();
  Open O = Stack.back();
  Stack.pop_back();
  TimeRecord Delta;
  Delta.WallSec = wallNow() - O.WallStart;
  Delta.CpuSec = cpuNow() - O.CpuStart;
  Delta.Invocations = 1;
  O.N->Time += Delta;
  return Delta;
}

TimeRecord TimeTrace::total() const {
  TimeRecord T;
  for (const auto &C : Root.Children)
    T += C->Time;
  return T;
}

static void reportNode(const TimeTrace::Node &N, int Depth,
                       std::string &Out) {
  Out += strFormat("%9.4fs %9.4fs  %*s%s\n", N.Time.WallSec, N.Time.CpuSec,
                   Depth * 2, "", N.Name.c_str());
  for (const auto &C : N.Children)
    reportNode(*C, Depth + 1, Out);
}

std::string TimeTrace::report() const {
  std::string Out = "     wall       cpu  region\n";
  for (const auto &C : Root.Children)
    reportNode(*C, 0, Out);
  TimeRecord T = total();
  Out += strFormat("%9.4fs %9.4fs  total\n", T.WallSec, T.CpuSec);
  return Out;
}

static void jsonNode(const TimeTrace::Node &N, JsonWriter &W) {
  W.beginObject();
  W.key("name").value(N.Name);
  W.key("wall_s").value(N.Time.WallSec, 6);
  W.key("cpu_s").value(N.Time.CpuSec, 6);
  W.key("invocations").value(N.Time.Invocations);
  W.key("children").beginArray();
  for (const auto &C : N.Children)
    jsonNode(*C, W);
  W.endArray();
  W.endObject();
}

std::string TimeTrace::json() const {
  JsonWriter W;
  W.beginArray();
  for (const auto &C : Root.Children)
    jsonNode(*C, W);
  W.endArray();
  return W.str();
}
