//===- support/Io.h - Checked fd I/O and fault injection --------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one place in the tree that calls read(2)/write(2): full-buffer
/// wrappers that survive partial transfers, EINTR, and spurious EAGAIN, so
/// every caller (the compile server's framing layer, the load generator,
/// the CLIs' output paths) shares a single audited retry loop instead of
/// re-growing the unchecked-write bug class one call site at a time.
///
/// The same layer hosts the fault-injection seam: a process-wide
/// FaultInjector, configured programmatically or from the `GCA_FAULT`
/// environment variable, that deterministically shortens reads/writes and
/// synthesizes EAGAIN/EINTR storms *inside* the wrappers. Production code
/// pays one relaxed atomic load when injection is off; tests turn it on to
/// prove the server degrades per-connection, never process-wide.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SUPPORT_IO_H
#define GCA_SUPPORT_IO_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace gca {

/// Outcome of a full-buffer transfer.
enum class IoStatus : uint8_t {
  Ok,    ///< Every requested byte was transferred.
  Eof,   ///< Read: the peer closed before the first byte (clean EOF).
  Short, ///< Read: the peer closed mid-buffer (truncated stream).
  Error, ///< A non-retryable errno; see the wrapper's errno.
};

/// Reads exactly \p Len bytes from \p Fd into \p Buf, retrying partial
/// reads, EINTR, and EAGAIN (blocking fds should not return EAGAIN, but a
/// fault injector or a misconfigured socket can; the loop polls briefly and
/// retries). \returns Ok, Eof (zero bytes read), Short (some bytes read,
/// then EOF), or Error.
IoStatus ioReadFull(int Fd, void *Buf, size_t Len);

/// Writes exactly \p Len bytes from \p Buf to \p Fd, retrying partial
/// writes, EINTR, and EAGAIN. Sockets are written with send(MSG_NOSIGNAL)
/// so a disconnected peer surfaces as EPIPE instead of killing the process
/// with SIGPIPE; non-socket fds fall back to write(2). \returns Ok or
/// Error.
IoStatus ioWriteFull(int Fd, const void *Buf, size_t Len);

/// Appends everything from \p Fd to \p Out until clean EOF, with the same
/// EINTR/EAGAIN/fault-injection discipline as ioReadFull. The HTTP client
/// side of the admin plane reads `Connection: close` bodies this way.
/// \returns Ok at EOF, Error on a non-retryable errno or once \p Out would
/// exceed \p MaxBytes (guarding against an unbounded peer).
IoStatus ioReadToEof(int Fd, std::string &Out,
                     size_t MaxBytes = 64u << 20);

/// Deterministic I/O fault injection. One process-wide instance; configure
/// with a spec string of comma-separated `knob=value` entries:
///
///   short-read=P    with probability P%, clamp a read to a 1-byte slice
///   short-write=P   with probability P%, clamp a write to a 1-byte slice
///   eagain=P        with probability P%, synthesize EAGAIN before the call
///   eintr=P         with probability P%, synthesize EINTR before the call
///   seed=S          PRNG seed (default 1)
///   max=N           stop injecting after N faults (default 100000)
///
/// e.g. `GCA_FAULT=short-read=40,short-write=40,eagain=25,seed=7`. All
/// injected faults are recoverable by construction — they exercise the
/// retry loops without ever changing the bytes delivered — so a correct
/// caller completes identically with injection on or off.
class FaultInjector {
public:
  static FaultInjector &instance();

  /// Parses \p Spec and arms the injector. An empty spec disarms. \returns
  /// false (leaving the injector disarmed) on a malformed spec.
  bool configure(const std::string &Spec);

  /// configure(getenv("GCA_FAULT")); no-op when the variable is unset.
  void configureFromEnv();

  /// Disarms and zeroes the counters.
  void reset();

  bool armed() const { return Armed.load(std::memory_order_relaxed); }

  /// Total faults injected since the last configure()/reset().
  int64_t injected() const { return Injected.load(std::memory_order_relaxed); }

  /// --- Hooks called by the wrappers (no-ops when disarmed) --------------
  /// True when the next read/write should see a synthetic EAGAIN.
  bool injectEagain();
  /// True when the next read/write should see a synthetic EINTR.
  bool injectEintr();
  /// The transfer length the next read should request: \p Len, or a 1-byte
  /// slice when a short-read fault fires.
  size_t clampRead(size_t Len);
  /// The transfer length the next write should attempt.
  size_t clampWrite(size_t Len);

private:
  FaultInjector() = default;
  bool roll(int Percent);

  std::atomic<bool> Armed{false};
  std::atomic<int64_t> Injected{0};
  std::mutex Mu; ///< Guards the PRNG state and knobs below.
  uint64_t State = 0;
  int ShortReadPct = 0;
  int ShortWritePct = 0;
  int EagainPct = 0;
  int EintrPct = 0;
  int64_t MaxFaults = 100000;
};

} // namespace gca

#endif // GCA_SUPPORT_IO_H
