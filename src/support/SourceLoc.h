//===- support/SourceLoc.h - Source locations -------------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny (line, column) source location used by the HPF-lite frontend and
/// threaded through the IR so diagnostics and debug dumps can point back at
/// the original program text.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SUPPORT_SOURCELOC_H
#define GCA_SUPPORT_SOURCELOC_H

#include <string>

namespace gca {

/// A 1-based (line, column) position in an HPF-lite source buffer.
/// Line 0 denotes an unknown/synthesized location (e.g. IR built through the
/// builder API, or statements introduced by the scalarizer).
struct SourceLoc {
  int Line = 0;
  int Col = 0;

  SourceLoc() = default;
  SourceLoc(int Line, int Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line > 0; }

  /// Renders "line:col", or "<unknown>" for synthesized locations.
  std::string str() const;

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

} // namespace gca

#endif // GCA_SUPPORT_SOURCELOC_H
