//===- support/Stats.h - Named counter registry -----------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A named counter registry in the style of LLVM's `Statistic`, but owned by
/// a compilation session instead of living in globals: every pass and
/// analysis increments counters through a `StatsRegistry *` it is handed, so
/// concurrent compilations never share mutable state. Counter names are
/// dotted `layer.event` strings ("placement.subset-eliminated"); the
/// registry renders them as an aligned text report or JSON, and supports
/// snapshot/diff so the pass manager can attribute increments to the pass
/// that made them.
///
/// Alongside the counters live log-bucketed latency Histograms (p50/p95/p99
/// with ~6% relative error, mergeable across threads' private copies) and
/// the MetricsSnapshot exporter, which renders counters + histograms as one
/// JSON document or Prometheus text exposition — the payload of
/// `gca-compile --metrics` and the bench results files.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SUPPORT_STATS_H
#define GCA_SUPPORT_STATS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace gca {

class StatsRegistry {
public:
  /// An ordered name -> value view of the registry at one point in time.
  using Snapshot = std::map<std::string, int64_t>;

  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry &) = delete;
  StatsRegistry &operator=(const StatsRegistry &) = delete;

  /// Adds \p Delta to the counter \p Name (creating it at zero).
  void add(const std::string &Name, int64_t Delta = 1);

  /// The current value of \p Name; zero when never incremented.
  int64_t get(const std::string &Name) const;

  /// True when no counter was ever incremented.
  bool empty() const;

  /// All counters, ordered by name.
  Snapshot snapshot() const;

  /// The counters that changed since \p Before, as (name, increment) —
  /// counters never decrease, so every entry is positive.
  Snapshot diff(const Snapshot &Before) const;

  /// Folds every counter of \p Other into this registry (for aggregating
  /// per-session registries into a batch-wide report).
  void merge(const StatsRegistry &Other);

  /// Aligned "  <value> <name>" lines, ordered by name (the format of
  /// LLVM's -stats output).
  std::string str() const;

  /// `{"name":value,...}` ordered by name.
  std::string json() const;

private:
  mutable std::mutex Mu;
  Snapshot Counters;
};

/// A log-bucketed histogram of non-negative integer samples (latencies in
/// nanoseconds, byte counts). Values below 32 get exact buckets; above, each
/// power-of-two range splits into 16 sub-buckets, bounding the relative
/// quantile error at 1/16. Not thread-safe: record into a private instance
/// and merge() (the StatsRegistry discipline).
class Histogram {
public:
  /// Adds one sample; negative values clamp to zero.
  void record(int64_t Value);

  int64_t count() const { return Count; }
  int64_t min() const { return Count ? Min : 0; }
  int64_t max() const { return Count ? Max : 0; }
  int64_t sum() const { return Sum; }
  double mean() const { return Count ? static_cast<double>(Sum) / Count : 0; }

  /// The lower bound of the bucket holding the \p Q quantile (0 < Q <= 1):
  /// quantile(0.5) = p50. Zero when empty.
  int64_t quantile(double Q) const;

  /// Folds \p Other's samples into this histogram.
  void merge(const Histogram &Other);

  /// "count=N min=A p50=B p95=C p99=D max=E" one-liner.
  std::string str() const;

  /// {"count":..,"min":..,"max":..,"sum":..,"mean":..,"p50":..,"p95":..,
  /// "p99":..}.
  std::string json() const;

private:
  static size_t bucketOf(int64_t Value);
  static int64_t bucketLowerBound(size_t Bucket);

  std::vector<int64_t> Buckets; ///< Grown on demand; index = bucketOf().
  int64_t Count = 0;
  int64_t Sum = 0;
  int64_t Min = 0;
  int64_t Max = 0;
};

/// A point-in-time bundle of counters and named histograms, with the two
/// wire renderings every exporter shares: one JSON object, and Prometheus
/// text exposition (counters as counters, histograms as summaries with
/// quantile labels; metric names are prefixed "gca_" and dots map to
/// underscores).
struct MetricsSnapshot {
  StatsRegistry::Snapshot Counters;
  /// Ordered by insertion; names use the same dotted convention as counters.
  std::vector<std::pair<std::string, Histogram>> Histograms;

  void addHistogram(const std::string &Name, const Histogram &H) {
    Histograms.emplace_back(Name, H);
  }

  /// {"counters":{...},"histograms":{"name":{...},...}}.
  std::string json() const;

  /// Prometheus text exposition format (one "# TYPE" comment per metric).
  std::string prometheus() const;
};

} // namespace gca

#endif // GCA_SUPPORT_STATS_H
