//===- support/Stats.h - Named counter registry -----------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A named counter registry in the style of LLVM's `Statistic`, but owned by
/// a compilation session instead of living in globals: every pass and
/// analysis increments counters through a `StatsRegistry *` it is handed, so
/// concurrent compilations never share mutable state. Counter names are
/// dotted `layer.event` strings ("placement.subset-eliminated"); the
/// registry renders them as an aligned text report or JSON, and supports
/// snapshot/diff so the pass manager can attribute increments to the pass
/// that made them.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SUPPORT_STATS_H
#define GCA_SUPPORT_STATS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace gca {

class StatsRegistry {
public:
  /// An ordered name -> value view of the registry at one point in time.
  using Snapshot = std::map<std::string, int64_t>;

  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry &) = delete;
  StatsRegistry &operator=(const StatsRegistry &) = delete;

  /// Adds \p Delta to the counter \p Name (creating it at zero).
  void add(const std::string &Name, int64_t Delta = 1);

  /// The current value of \p Name; zero when never incremented.
  int64_t get(const std::string &Name) const;

  /// True when no counter was ever incremented.
  bool empty() const;

  /// All counters, ordered by name.
  Snapshot snapshot() const;

  /// The counters that changed since \p Before, as (name, increment) —
  /// counters never decrease, so every entry is positive.
  Snapshot diff(const Snapshot &Before) const;

  /// Folds every counter of \p Other into this registry (for aggregating
  /// per-session registries into a batch-wide report).
  void merge(const StatsRegistry &Other);

  /// Aligned "  <value> <name>" lines, ordered by name (the format of
  /// LLVM's -stats output).
  std::string str() const;

  /// `{"name":value,...}` ordered by name.
  std::string json() const;

private:
  mutable std::mutex Mu;
  Snapshot Counters;
};

} // namespace gca

#endif // GCA_SUPPORT_STATS_H
