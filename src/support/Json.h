//===- support/Json.h - Streaming JSON writer -------------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer shared by every JSON producer in the tree
/// (trace exporter, metrics snapshots, time reports, cache-stats trailers).
/// It handles commas, nesting, and string escaping so no call site ever
/// splices user-controlled text into a JSON literal by hand — the bug class
/// this type exists to retire. Output is canonical-compact: no whitespace,
/// keys emitted in call order, doubles printed with a fixed caller-chosen
/// precision so equal inputs always render equal bytes.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SUPPORT_JSON_H
#define GCA_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace gca {

class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits an object key (escaped); the next value/begin* call attaches to
  /// it. Must only be called directly inside an object.
  JsonWriter &key(const std::string &K);

  JsonWriter &value(const std::string &S);
  JsonWriter &value(const char *S);
  JsonWriter &value(int64_t N);
  JsonWriter &value(uint64_t N);
  JsonWriter &value(int N) { return value(static_cast<int64_t>(N)); }
  JsonWriter &value(bool B);
  /// Fixed-point double with \p Precision digits after the point (printf
  /// %.*f), matching the repo's historical %.6f timing fields.
  JsonWriter &value(double D, int Precision = 6);
  JsonWriter &null();

  /// Splices \p Json verbatim as one value. The caller guarantees it is a
  /// complete, valid JSON value (used to embed sub-reports that already
  /// render themselves).
  JsonWriter &raw(const std::string &Json);

  /// The document so far. Valid JSON once every begin* has been closed.
  const std::string &str() const { return Out; }

private:
  void separate();

  std::string Out;
  /// One entry per open container: true until the first element lands.
  std::vector<bool> FirstInScope{true};
  bool AfterKey = false;
};

} // namespace gca

#endif // GCA_SUPPORT_JSON_H
