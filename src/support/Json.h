//===- support/Json.h - Streaming JSON writer -------------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer shared by every JSON producer in the tree
/// (trace exporter, metrics snapshots, time reports, cache-stats trailers).
/// It handles commas, nesting, and string escaping so no call site ever
/// splices user-controlled text into a JSON literal by hand — the bug class
/// this type exists to retire. Output is canonical-compact: no whitespace,
/// keys emitted in call order, doubles printed with a fixed caller-chosen
/// precision so equal inputs always render equal bytes.
///
/// Alongside the writer lives JsonValue, the recursive-descent reader the
/// compile server and load generator use to parse wire messages. It is
/// strict (no trailing garbage, bounded nesting depth, full string-escape
/// handling including surrogate pairs) and never throws: parse failures
/// return false with a position-stamped error, which is exactly the
/// behavior the protocol fuzzer's oracle needs.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SUPPORT_JSON_H
#define GCA_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gca {

class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits an object key (escaped); the next value/begin* call attaches to
  /// it. Must only be called directly inside an object.
  JsonWriter &key(const std::string &K);

  JsonWriter &value(const std::string &S);
  JsonWriter &value(const char *S);
  JsonWriter &value(int64_t N);
  JsonWriter &value(uint64_t N);
  JsonWriter &value(int N) { return value(static_cast<int64_t>(N)); }
  JsonWriter &value(bool B);
  /// Fixed-point double with \p Precision digits after the point (printf
  /// %.*f), matching the repo's historical %.6f timing fields.
  JsonWriter &value(double D, int Precision = 6);
  JsonWriter &null();

  /// Splices \p Json verbatim as one value. The caller guarantees it is a
  /// complete, valid JSON value (used to embed sub-reports that already
  /// render themselves).
  JsonWriter &raw(const std::string &Json);

  /// The document so far. Valid JSON once every begin* has been closed.
  const std::string &str() const { return Out; }

private:
  void separate();

  std::string Out;
  /// One entry per open container: true until the first element lands.
  std::vector<bool> FirstInScope{true};
  bool AfterKey = false;
};

/// A parsed JSON document: a tagged tree. Objects keep their members in
/// document order (duplicate keys: the first wins on lookup). Numbers store
/// both the double value and, when the literal was integral and in range,
/// the exact int64.
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolValue(bool Default = false) const { return isBool() ? B : Default; }
  double numberValue(double Default = 0) const {
    return isNumber() ? Num : Default;
  }
  /// The integral value; \p Default when not a number or not integral.
  int64_t intValue(int64_t Default = 0) const {
    return isNumber() && Integral ? Int : Default;
  }
  bool isIntegral() const { return isNumber() && Integral; }
  const std::string &stringValue() const { return Str; }
  const std::vector<JsonValue> &array() const { return Arr; }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Obj;
  }

  /// Object member lookup; null when this is not an object or the key is
  /// absent.
  const JsonValue *get(const std::string &Key) const;

  /// Parses \p Text as exactly one JSON document (leading/trailing
  /// whitespace allowed, anything else after the value is an error). On
  /// failure \p Err names the problem and byte offset. Nesting is capped at
  /// 64 levels so adversarial input cannot exhaust the stack.
  static bool parse(const std::string &Text, JsonValue &Out, std::string &Err);

  /// --- Construction (used by tests and by parse) ------------------------
  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool V);
  static JsonValue makeNumber(double V);
  static JsonValue makeInt(int64_t V);
  static JsonValue makeString(std::string V);
  static JsonValue makeArray(std::vector<JsonValue> V);
  static JsonValue makeObject(std::vector<std::pair<std::string, JsonValue>> V);

private:
  Kind K = Kind::Null;
  bool B = false;
  bool Integral = false;
  double Num = 0;
  int64_t Int = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;
};

} // namespace gca

#endif // GCA_SUPPORT_JSON_H
