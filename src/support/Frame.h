//===- support/Frame.h - Length-prefixed message framing --------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile server's wire format: every message — request or response —
/// is one frame of
///
///   'G' 'C' 'A' 'F'   4-byte magic
///   <len>             payload length, uint32 little-endian
///   <payload>         len bytes, one JSON document
///
/// over a byte stream (Unix socket or a stdin/stdout pipe pair). The magic
/// makes desynchronization detectable: a stream that does not start a frame
/// with the magic is garbage, and since a length prefix cannot be trusted
/// after that, the only safe recovery is closing the connection. Oversized
/// and truncated frames are likewise distinguished from clean EOF so the
/// server can account for them without tearing anything else down.
///
/// All transfers go through the checked ioReadFull/ioWriteFull wrappers
/// (support/Io.h), so framing inherits EINTR/partial-transfer handling and
/// the GCA_FAULT injection seam.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SUPPORT_FRAME_H
#define GCA_SUPPORT_FRAME_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace gca {

/// Frame header magic, on the wire in this byte order.
inline constexpr char kFrameMagic[4] = {'G', 'C', 'A', 'F'};

/// Header size: magic + uint32 length.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Default payload cap. A compile request is source text plus options —
/// far below this — so anything larger is a protocol error, not a workload.
inline constexpr size_t kMaxFramePayload = 16u << 20;

enum class FrameStatus : uint8_t {
  Ok,        ///< A complete frame was transferred.
  Eof,       ///< Read: clean EOF on a frame boundary (peer finished).
  Truncated, ///< Read: EOF mid-header or mid-payload.
  Garbage,   ///< Read: header does not start with the magic; stream is
             ///< unsynchronized and the connection must be dropped.
  Oversized, ///< Read: header length exceeds the cap; payload not read.
  IoError,   ///< read/write failed with a non-retryable errno.
};

/// Human-readable name ("ok", "eof", ...) for logs and error responses.
const char *frameStatusName(FrameStatus S);

/// Reads one frame from \p Fd into \p Payload. On Oversized, \p Payload is
/// cleared and the declared length is left in \p *DeclaredLen when non-null
/// (the caller may report it before closing; the payload bytes are NOT
/// consumed, so the connection cannot be reused).
FrameStatus readFrame(int Fd, std::string &Payload,
                      size_t MaxPayload = kMaxFramePayload,
                      uint32_t *DeclaredLen = nullptr);

/// Writes \p Payload as one frame to \p Fd. \returns Ok or IoError;
/// payloads above 4 GiB - 1 cannot be represented and yield IoError.
FrameStatus writeFrame(int Fd, const std::string &Payload);

/// Renders the 8-byte header + payload as one contiguous buffer (what
/// writeFrame puts on the wire) — the seed material for protocol fuzzing.
std::string encodeFrame(const std::string &Payload);

} // namespace gca

#endif // GCA_SUPPORT_FRAME_H
