//===- support/Http.cpp - Minimal HTTP/1.1 admin responder ----------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/Http.h"

#include "support/Io.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace gca {

namespace {

bool iequals(const std::string &A, const std::string &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (std::tolower(static_cast<unsigned char>(A[I])) !=
        std::tolower(static_cast<unsigned char>(B[I])))
      return false;
  return true;
}

/// Splits "HOST:PORT"; empty host or "localhost" maps to 127.0.0.1. Only
/// numeric dotted-quad hosts are accepted — the admin plane deliberately
/// does no name resolution.
bool parseHostPort(const std::string &Spec, std::string &Host, uint16_t &Port,
                   std::string &Err) {
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos) {
    Err = "expected HOST:PORT, got '" + Spec + "'";
    return false;
  }
  Host = Spec.substr(0, Colon);
  if (Host.empty() || Host == "localhost")
    Host = "127.0.0.1";
  const std::string PortStr = Spec.substr(Colon + 1);
  char *Rest = nullptr;
  long V = std::strtol(PortStr.c_str(), &Rest, 10);
  if (PortStr.empty() || !Rest || *Rest != '\0' || V < 0 || V > 65535) {
    Err = "bad port '" + PortStr + "'";
    return false;
  }
  Port = static_cast<uint16_t>(V);
  return true;
}

/// Parses the request head in \p Raw (everything up to but excluding the
/// blank line) into \p Req. Tolerates bare-\n line endings.
bool parseRequestHead(const std::string &Raw, HttpRequest &Req) {
  size_t Pos = 0;
  auto nextLine = [&](std::string &Line) -> bool {
    if (Pos >= Raw.size())
      return false;
    size_t Nl = Raw.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = Raw.size();
    size_t End = Nl;
    if (End > Pos && Raw[End - 1] == '\r')
      --End;
    Line = Raw.substr(Pos, End - Pos);
    Pos = Nl + 1;
    return true;
  };

  std::string Line;
  if (!nextLine(Line) || Line.empty())
    return false;
  size_t Sp1 = Line.find(' ');
  size_t Sp2 = Sp1 == std::string::npos ? std::string::npos
                                        : Line.find(' ', Sp1 + 1);
  if (Sp1 == std::string::npos || Sp2 == std::string::npos)
    return false;
  Req.Method = Line.substr(0, Sp1);
  Req.Target = Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  Req.Version = Line.substr(Sp2 + 1);
  if (Req.Method.empty() || Req.Target.empty() ||
      Req.Version.rfind("HTTP/", 0) != 0)
    return false;

  while (nextLine(Line)) {
    if (Line.empty())
      break;
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      return false;
    std::string Name = Line.substr(0, Colon);
    size_t ValStart = Colon + 1;
    while (ValStart < Line.size() &&
           (Line[ValStart] == ' ' || Line[ValStart] == '\t'))
      ++ValStart;
    size_t ValEnd = Line.size();
    while (ValEnd > ValStart &&
           (Line[ValEnd - 1] == ' ' || Line[ValEnd - 1] == '\t'))
      --ValEnd;
    if (Name.empty())
      return false;
    Req.Headers.emplace_back(Name, Line.substr(ValStart, ValEnd - ValStart));
  }
  return true;
}

} // namespace

const std::string *HttpRequest::header(const std::string &Name) const {
  for (const auto &H : Headers)
    if (iequals(H.first, Name))
      return &H.second;
  return nullptr;
}

std::string HttpRequest::path() const {
  size_t Q = Target.find('?');
  return Q == std::string::npos ? Target : Target.substr(0, Q);
}

HttpReadStatus readHttpRequest(int Fd, HttpRequest &Req, size_t MaxHeaderBytes,
                               int AbortFd) {
  // Byte-at-a-time through ioReadFull: the request head is tiny, the byte
  // loop keeps the terminator scan trivial, and every byte still crosses
  // the checked/fault-injected read path. Each byte is preceded by a poll
  // on {Fd, AbortFd} so a stopping server can reclaim the thread even if
  // the client never finishes its request.
  std::string Raw;
  Raw.reserve(256);
  for (;;) {
    if (Raw.size() >= MaxHeaderBytes)
      return HttpReadStatus::TooLarge;

    struct pollfd P[2];
    P[0].fd = Fd;
    P[0].events = POLLIN;
    P[0].revents = 0;
    P[1].fd = AbortFd;
    P[1].events = POLLIN;
    P[1].revents = 0;
    int NP = AbortFd >= 0 ? 2 : 1;
    int R = ::poll(P, static_cast<nfds_t>(NP), -1);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return HttpReadStatus::IoError;
    }
    if (NP == 2 && (P[1].revents & (POLLIN | POLLHUP | POLLERR)))
      return HttpReadStatus::Aborted;
    if (!(P[0].revents & (POLLIN | POLLHUP | POLLERR)))
      continue;

    char C;
    IoStatus S = ioReadFull(Fd, &C, 1);
    if (S == IoStatus::Eof)
      return Raw.empty() ? HttpReadStatus::Eof : HttpReadStatus::Truncated;
    if (S != IoStatus::Ok)
      return HttpReadStatus::IoError;
    Raw.push_back(C);

    // Head terminator: CRLFCRLF, or bare LFLF from sloppy clients.
    if (Raw.size() >= 4 && Raw.compare(Raw.size() - 4, 4, "\r\n\r\n") == 0)
      break;
    if (Raw.size() >= 2 && Raw.compare(Raw.size() - 2, 2, "\n\n") == 0)
      break;
  }

  Req = HttpRequest();
  return parseRequestHead(Raw, Req) ? HttpReadStatus::Ok
                                    : HttpReadStatus::Malformed;
}

const char *httpStatusText(int Status) {
  switch (Status) {
  case 200:
    return "OK";
  case 400:
    return "Bad Request";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  case 431:
    return "Request Header Fields Too Large";
  case 503:
    return "Service Unavailable";
  default:
    return "Unknown";
  }
}

bool writeHttpResponse(int Fd, const HttpResponse &R) {
  std::string Out;
  Out.reserve(R.Body.size() + 256);
  char Line[128];
  std::snprintf(Line, sizeof(Line), "HTTP/1.1 %d %s\r\n", R.Status,
                httpStatusText(R.Status));
  Out += Line;
  Out += "Content-Type: " + R.ContentType + "\r\n";
  std::snprintf(Line, sizeof(Line), "Content-Length: %zu\r\n", R.Body.size());
  Out += Line;
  for (const auto &H : R.ExtraHeaders)
    Out += H.first + ": " + H.second + "\r\n";
  Out += "Connection: close\r\n\r\n";
  Out += R.Body;
  return ioWriteFull(Fd, Out.data(), Out.size()) == IoStatus::Ok;
}

//===----------------------------------------------------------------------===//
// HttpServer
//===----------------------------------------------------------------------===//

bool HttpServer::start(const std::string &HostPort, std::string &Err) {
  if (ListenFd >= 0) {
    Err = "admin server already started";
    return false;
  }
  uint16_t WantPort = 0;
  if (!parseHostPort(HostPort, Host, WantPort, Err))
    return false;

  struct sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(WantPort);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Err = "bad admin host '" + Host + "' (numeric IPv4 or 'localhost' only)";
    return false;
  }

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  (void)::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(Fd, reinterpret_cast<struct sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Err = "bind " + HostPort + ": " + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  if (::listen(Fd, 64) < 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    ::close(Fd);
    return false;
  }

  // Learn the kernel-assigned port when binding port 0.
  struct sockaddr_in Bound;
  socklen_t BoundLen = sizeof(Bound);
  if (::getsockname(Fd, reinterpret_cast<struct sockaddr *>(&Bound),
                    &BoundLen) < 0) {
    Err = std::string("getsockname: ") + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  Port = ntohs(Bound.sin_port);

  if (::pipe(StopPipe) < 0) {
    Err = std::string("pipe: ") + std::strerror(errno);
    ::close(Fd);
    return false;
  }

  ListenFd = Fd;
  Stopping.store(false, std::memory_order_relaxed);
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

void HttpServer::stop() {
  if (ListenFd < 0)
    return;
  Stopping.store(true, std::memory_order_relaxed);
  char B = 1;
  (void)!::write(StopPipe[1], &B, 1);
  if (AcceptThread.joinable())
    AcceptThread.join();

  std::vector<std::unique_ptr<ConnSlot>> Slots;
  {
    std::lock_guard<std::mutex> L(ThreadsMu);
    Slots.swap(ConnThreads);
  }
  for (auto &S : Slots)
    if (S->T.joinable())
      S->T.join();

  ::close(ListenFd);
  ListenFd = -1;
  ::close(StopPipe[0]);
  ::close(StopPipe[1]);
  StopPipe[0] = StopPipe[1] = -1;
}

std::string HttpServer::address() const {
  if (Port == 0 && Host.empty())
    return "";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%s:%u", Host.c_str(),
                static_cast<unsigned>(Port));
  return Buf;
}

void HttpServer::acceptLoop() {
  while (!Stopping.load(std::memory_order_relaxed)) {
    struct pollfd P[2];
    P[0].fd = ListenFd;
    P[0].events = POLLIN;
    P[0].revents = 0;
    P[1].fd = StopPipe[0];
    P[1].events = POLLIN;
    P[1].revents = 0;
    int R = ::poll(P, 2, -1);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (P[1].revents & POLLIN)
      break;
    if (!(P[0].revents & POLLIN))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    reapFinished();
    // The thread is fully constructed before the slot is published; stop()
    // joins the accept loop before sweeping slots, so it never observes a
    // slot whose thread is still being assigned.
    auto Slot = std::make_unique<ConnSlot>();
    ConnSlot *S = Slot.get();
    S->T = std::thread([this, Fd, S] {
      serveConnection(Fd);
      S->Done.store(true, std::memory_order_release);
    });
    std::lock_guard<std::mutex> L(ThreadsMu);
    ConnThreads.push_back(std::move(Slot));
  }
}

void HttpServer::reapFinished() {
  std::lock_guard<std::mutex> L(ThreadsMu);
  for (size_t I = 0; I < ConnThreads.size();) {
    ConnSlot &S = *ConnThreads[I];
    if (S.Done.load(std::memory_order_acquire) && S.T.joinable()) {
      S.T.join();
      ConnThreads.erase(ConnThreads.begin() +
                        static_cast<std::ptrdiff_t>(I));
    } else {
      ++I;
    }
  }
}

void HttpServer::serveConnection(int Fd) {
  HttpRequest Req;
  HttpReadStatus S =
      readHttpRequest(Fd, Req, kMaxHttpHeaderBytes, StopPipe[0]);
  switch (S) {
  case HttpReadStatus::Ok: {
    HttpResponse R = Handle(Req);
    if (writeHttpResponse(Fd, R))
      Served.fetch_add(1, std::memory_order_relaxed);
    break;
  }
  case HttpReadStatus::TooLarge: {
    BadRequests.fetch_add(1, std::memory_order_relaxed);
    HttpResponse R;
    R.Status = 431;
    R.Body = "header block too large\n";
    (void)writeHttpResponse(Fd, R);
    break;
  }
  case HttpReadStatus::Malformed: {
    BadRequests.fetch_add(1, std::memory_order_relaxed);
    HttpResponse R;
    R.Status = 400;
    R.Body = "malformed request\n";
    (void)writeHttpResponse(Fd, R);
    break;
  }
  case HttpReadStatus::Eof:
  case HttpReadStatus::Truncated:
  case HttpReadStatus::Aborted:
  case HttpReadStatus::IoError:
    // Nothing useful to answer: the peer is gone, never spoke, or we are
    // shutting down. Truncated/IoError still count as bad requests so the
    // failure is visible in /statusz.
    if (S == HttpReadStatus::Truncated || S == HttpReadStatus::IoError)
      BadRequests.fetch_add(1, std::memory_order_relaxed);
    break;
  }
  ::close(Fd);
}

//===----------------------------------------------------------------------===//
// httpGet
//===----------------------------------------------------------------------===//

bool httpGet(const std::string &HostPort, const std::string &Path, int &Status,
             std::string &Body, std::string &Err) {
  std::string Host;
  uint16_t Port = 0;
  if (!parseHostPort(HostPort, Host, Port, Err))
    return false;

  struct sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Err = "bad host '" + Host + "'";
    return false;
  }
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                sizeof(Addr)) < 0) {
    Err = "connect " + HostPort + ": " + std::strerror(errno);
    ::close(Fd);
    return false;
  }

  std::string Req = "GET " + Path + " HTTP/1.1\r\nHost: " + HostPort +
                    "\r\nConnection: close\r\n\r\n";
  if (ioWriteFull(Fd, Req.data(), Req.size()) != IoStatus::Ok) {
    Err = "write failed";
    ::close(Fd);
    return false;
  }

  std::string Raw;
  if (ioReadToEof(Fd, Raw) != IoStatus::Ok) {
    Err = "read failed";
    ::close(Fd);
    return false;
  }
  ::close(Fd);

  // Split head from body on the first blank line.
  size_t HeadEnd = Raw.find("\r\n\r\n");
  size_t BodyStart;
  if (HeadEnd != std::string::npos) {
    BodyStart = HeadEnd + 4;
  } else {
    HeadEnd = Raw.find("\n\n");
    if (HeadEnd == std::string::npos) {
      Err = "no header terminator in response";
      return false;
    }
    BodyStart = HeadEnd + 2;
  }
  // Status line: "HTTP/1.1 NNN reason".
  size_t Sp = Raw.find(' ');
  if (Sp == std::string::npos || Raw.rfind("HTTP/", 0) != 0) {
    Err = "malformed status line";
    return false;
  }
  char *Rest = nullptr;
  long Code = std::strtol(Raw.c_str() + Sp + 1, &Rest, 10);
  if (!Rest || Code < 100 || Code > 599) {
    Err = "malformed status code";
    return false;
  }
  Status = static_cast<int>(Code);
  Body = Raw.substr(BodyStart);
  return true;
}

} // namespace gca
