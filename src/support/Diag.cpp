//===- support/Diag.cpp - Diagnostic engine -------------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/Diag.h"

#include "support/StrUtil.h"

using namespace gca;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "diag";
}

std::string Diag::str() const {
  if (Loc.isValid())
    return strFormat("%s: %s: %s", kindName(Kind), Loc.str().c_str(),
                     Message.c_str());
  return strFormat("%s: %s", kindName(Kind), Message.c_str());
}

void DiagEngine::report(DiagKind Kind, SourceLoc Loc, const char *Fmt,
                        va_list Args) {
  Diag D;
  D.Kind = Kind;
  D.Loc = Loc;
  D.Message = strFormatV(Fmt, Args);
  if (Kind == DiagKind::Error)
    ++NumErrors;
  Diags.push_back(std::move(D));
}

void DiagEngine::error(SourceLoc Loc, const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  report(DiagKind::Error, Loc, Fmt, Args);
  va_end(Args);
}

void DiagEngine::warning(SourceLoc Loc, const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  report(DiagKind::Warning, Loc, Fmt, Args);
  va_end(Args);
}

void DiagEngine::note(SourceLoc Loc, const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  report(DiagKind::Note, Loc, Fmt, Args);
  va_end(Args);
}

std::string DiagEngine::str() const {
  std::string Out;
  for (const Diag &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

void DiagEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}
