//===- support/Timer.h - Scoped timers and time reports ---------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall/CPU timing for the pass pipeline. A TimeTrace owns a tree of named
/// timing nodes; enter()/exit() (or the RAII ScopedTimer) push and pop
/// nodes, so nested regions — a pass timing its per-routine work — show up
/// as children in the hierarchical report, LLVM `-time-passes` style. A
/// trace belongs to one compilation session and is not thread-safe; each
/// concurrent compilation owns its own trace.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SUPPORT_TIMER_H
#define GCA_SUPPORT_TIMER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gca {

/// Accumulated time for one region: seconds of wall clock, seconds of
/// thread CPU time, and how many times the region was entered.
struct TimeRecord {
  double WallSec = 0;
  double CpuSec = 0;
  int64_t Invocations = 0;

  TimeRecord &operator+=(const TimeRecord &O) {
    WallSec += O.WallSec;
    CpuSec += O.CpuSec;
    Invocations += O.Invocations;
    return *this;
  }
};

class TimeTrace {
public:
  struct Node {
    std::string Name;
    TimeRecord Time;
    std::vector<std::unique_ptr<Node>> Children;

    /// The child named \p Name, or null.
    const Node *child(const std::string &Name) const;
  };

  TimeTrace() { Root.Name = "total"; }
  TimeTrace(const TimeTrace &) = delete;
  TimeTrace &operator=(const TimeTrace &) = delete;

  /// Opens (or re-opens) the child region \p Name of the current region and
  /// makes it current.
  void enter(const std::string &Name);

  /// Closes the current region, accumulates its elapsed wall/CPU time, and
  /// returns to its parent. \returns the time added by this enter/exit pair.
  TimeRecord exit();

  /// The region tree (children of the synthetic "total" root are the
  /// top-level regions). Totals are meaningful only when every enter() has
  /// been exited.
  const Node &root() const { return Root; }

  /// Sum of the top-level regions' records.
  TimeRecord total() const;

  /// Indented hierarchical report: "  wall  cpu  name" per region, children
  /// indented beneath their parent, ordered by first entry.
  std::string report() const;

  /// The tree as JSON: {"name":..,"wall_s":..,"cpu_s":..,"invocations":..,
  /// "children":[...]} for each region, rooted at the top-level list.
  std::string json() const;

private:
  struct Open {
    Node *N;
    double WallStart;
    double CpuStart;
  };

  Node Root;
  std::vector<Open> Stack;
};

/// RAII wrapper for one enter()/exit() pair.
class ScopedTimer {
public:
  ScopedTimer(TimeTrace &Trace, const std::string &Name) : Trace(Trace) {
    Trace.enter(Name);
  }
  ~ScopedTimer() { Trace.exit(); }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  TimeTrace &Trace;
};

} // namespace gca

#endif // GCA_SUPPORT_TIMER_H
