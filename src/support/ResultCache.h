//===- support/ResultCache.h - Content-addressed result cache ---*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, content-addressed cache for compilation results. The paper
/// does communication placement once, globally, instead of repeatedly per
/// loop nest; the same economy applies across compilations — a batch or fuzz
/// run that compiles the same (source, options) pair twice should pay for it
/// once. Keys are 128-bit FNV-1a digests of everything that can change the
/// output (the driver builds them; see driver/CachedPipeline.h); values are
/// CachedResult: the rendered artifacts of one compilation — plan text,
/// diagnostics, dump-after records, counters — which is exactly what a
/// replay must reproduce bitwise.
///
/// Two tiers:
///   - a memory tier with an LRU byte budget (evictions are counted), and
///   - an optional disk tier (one file per key under a cache directory,
///     written to a temp file and atomically renamed; corrupt, truncated or
///     otherwise undecodable entries are treated as misses).
///
/// getOrCompute() is single-flight: concurrent requests for the same key
/// block while the first computes, then all observe a hit — duplicated
/// inputs in a parallel batch never compute twice.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SUPPORT_RESULTCACHE_H
#define GCA_SUPPORT_RESULTCACHE_H

#include "support/Stats.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace gca {

/// 64-bit FNV-1a over \p Bytes, starting from \p Basis.
uint64_t fnv1a64(const std::string &Bytes,
                 uint64_t Basis = 1469598103934665603ull);

/// A 128-bit content digest (two independent FNV-1a streams). 64 bits keeps
/// accidental collisions plausible over long fuzz campaigns; 128 does not.
struct CacheKey {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const CacheKey &O) const = default;
  /// 32 lowercase hex digits (the disk-tier file stem).
  std::string hex() const;

  /// Digest of \p Material.
  static CacheKey of(const std::string &Material);
};

/// The replayable artifacts of one compilation: everything a cache hit must
/// reproduce bitwise without re-running passes.
struct CachedResult {
  bool Ok = false;
  bool AuditOk = true;
  bool VerifyOk = true;
  std::string Errors;
  std::string Diagnostics;
  /// (routine name, rendered CommPlan::str text), in routine order.
  std::vector<std::pair<std::string, std::string>> Plans;
  /// (pass name, dump text) in execution order — Session::Dumps verbatim.
  std::vector<std::pair<std::string, std::string>> Dumps;
  /// The session's full counter registry at end of compilation.
  StatsRegistry::Snapshot Counters;

  bool operator==(const CachedResult &O) const = default;

  /// Approximate in-memory footprint, used against the LRU byte budget.
  size_t byteSize() const;

  /// Length-prefixed, checksummed byte serialization (the disk format).
  std::string serialize() const;

  /// Strict inverse of serialize(): any truncation, tampering, checksum or
  /// trailing-garbage mismatch yields nullopt (the caller treats it as a
  /// cache miss).
  static std::optional<CachedResult> deserialize(const std::string &Bytes);
};

/// Counter snapshot of one cache (names match the `cache.*` stats the batch
/// driver reports).
struct CacheStats {
  int64_t Hits = 0;       ///< Lookups served from memory or disk.
  int64_t Misses = 0;     ///< Lookups that had to (re)compute.
  int64_t Evictions = 0;  ///< Memory-tier entries dropped to the budget.
  int64_t Bytes = 0;      ///< Memory-tier bytes currently resident.
  int64_t Entries = 0;    ///< Memory-tier entries currently resident.
  int64_t DiskHits = 0;   ///< Subset of Hits that came from the disk tier.
  int64_t DiskErrors = 0; ///< Corrupt/unwritable disk entries encountered.
  /// Routine-granularity lookups (CachedPipeline's incremental
  /// recompilation): tallied separately from the whole-file counters so
  /// "how many routines replayed" is directly visible — and so existing
  /// whole-file hit/miss expectations stay unperturbed.
  int64_t RoutineHits = 0;
  int64_t RoutineMisses = 0;

  /// One-line "cache: hits=... misses=..." rendering (the --cache-stats
  /// output of gca-compile).
  std::string str() const;
  /// {"hits":...,...} rendering for --time-report=json.
  std::string json() const;
};

class ResultCache {
public:
  struct Config {
    /// Memory-tier budget; least-recently-used entries are evicted past it
    /// (the most recent entry always stays resident).
    size_t MemBudgetBytes = 64ull << 20;
    /// Disk-tier directory; empty means memory-only. Created on demand.
    std::string Dir;
  };

  /// Default-configured: 64 MiB memory tier, no disk tier.
  ResultCache();
  explicit ResultCache(Config C);
  ResultCache(const ResultCache &) = delete;
  ResultCache &operator=(const ResultCache &) = delete;

  /// The cached result for \p K, or nullopt. Hits refresh LRU recency;
  /// disk-tier hits are promoted into the memory tier.
  std::optional<CachedResult> lookup(const CacheKey &K);

  /// lookup() for a routine-granularity key: identical storage and tiers,
  /// but tallied under the cache.routine-{hits,misses} counters instead of
  /// the whole-file ones.
  std::optional<CachedResult> lookupRoutine(const CacheKey &K);

  /// Inserts \p R under \p K in both tiers (overwriting any prior entry).
  void store(const CacheKey &K, const CachedResult &R);

  /// Single-flight lookup-or-compute: returns the cached result for \p K,
  /// or runs \p Compute and stores its result. Concurrent callers with the
  /// same key wait for the in-flight computation instead of duplicating it.
  /// \p Hit, when non-null, reports whether the result was replayed.
  CachedResult getOrCompute(const CacheKey &K,
                            const std::function<CachedResult()> &Compute,
                            bool *Hit = nullptr);

  CacheStats stats() const;
  const Config &config() const { return Cfg; }

private:
  using KeyT = std::pair<uint64_t, uint64_t>;
  struct Entry {
    CachedResult Result;
    size_t Bytes = 0;
    std::list<KeyT>::iterator LruIt;
  };

  std::optional<CachedResult> lookupTallied(const CacheKey &K, bool Routine);
  Entry *findLocked(const KeyT &K);
  void insertLocked(const KeyT &K, const CachedResult &R);
  void evictToBudgetLocked();

  std::optional<CachedResult> readDisk(const CacheKey &K);
  void writeDisk(const CacheKey &K, const CachedResult &R);

  Config Cfg;
  mutable std::mutex Mu;
  std::condition_variable FlightCV; ///< Signals in-flight completions.
  std::set<KeyT> InFlight;
  std::map<KeyT, Entry> Mem;
  std::list<KeyT> Lru; ///< Front = most recently used.
  size_t MemBytes = 0;
  int64_t NHits = 0, NMisses = 0, NEvictions = 0, NDiskHits = 0,
          NDiskErrors = 0;
  int64_t NRoutineHits = 0, NRoutineMisses = 0;
};

} // namespace gca

#endif // GCA_SUPPORT_RESULTCACHE_H
