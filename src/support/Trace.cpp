//===- support/Trace.cpp - Structured tracing collector -------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Json.h"
#include "support/StrUtil.h"

#include <chrono>
#include <cstdio>

using namespace gca;

TraceArg::TraceArg(std::string K, int64_t V)
    : Key(std::move(K)), Value(strFormat("%lld", static_cast<long long>(V))),
      IsNumber(true) {}

TraceCollector &TraceCollector::instance() {
  static TraceCollector C;
  return C;
}

static uint64_t steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t TraceCollector::nowNs() const { return steadyNowNs() - EpochNs; }

void TraceCollector::enable() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &L : Lanes) {
    L->Events.clear();
    L->NextSeq = 0;
  }
  EpochNs = steadyNowNs();
  Enabled.store(true, std::memory_order_relaxed);
}

void TraceCollector::disable() {
  Enabled.store(false, std::memory_order_relaxed);
}

TraceLane &TraceCollector::myLane() {
  // One lane per (thread, process): lanes are never deallocated, so the
  // cached pointer stays valid for the thread's whole life and appends after
  // the first event take no lock.
  static thread_local TraceLane *Mine = nullptr;
  if (!Mine) {
    std::lock_guard<std::mutex> Lock(Mu);
    Lanes.push_back(std::make_unique<TraceLane>());
    Mine = Lanes.back().get();
    Mine->Tid = static_cast<uint32_t>(Lanes.size() - 1);
  }
  return *Mine;
}

void TraceCollector::setThreadName(const std::string &Name) {
  if (!enabled())
    return;
  myLane().ThreadName = Name;
}

void TraceCollector::beginSpan(const std::string &Name, const char *Category,
                               std::vector<TraceArg> Args) {
  if (!enabled())
    return;
  TraceLane &L = myLane();
  L.Events.push_back(
      {Name, Category, 'B', nowNs(), 0, L.NextSeq++, std::move(Args)});
}

void TraceCollector::endSpan() {
  if (!enabled())
    return;
  TraceLane &L = myLane();
  L.Events.push_back({"", "", 'E', nowNs(), 0, L.NextSeq++, {}});
}

void TraceCollector::completeSpan(const std::string &Name,
                                  const char *Category, uint64_t StartNs,
                                  uint64_t DurNs, std::vector<TraceArg> Args) {
  if (!enabled())
    return;
  TraceLane &L = myLane();
  L.Events.push_back(
      {Name, Category, 'X', StartNs, DurNs, L.NextSeq++, std::move(Args)});
}

void TraceCollector::instant(const std::string &Name, const char *Category,
                             std::vector<TraceArg> Args) {
  if (!enabled())
    return;
  TraceLane &L = myLane();
  L.Events.push_back(
      {Name, Category, 'i', nowNs(), 0, L.NextSeq++, std::move(Args)});
}

void TraceCollector::counter(const std::string &Name, const char *Category,
                             int64_t Value) {
  if (!enabled())
    return;
  TraceLane &L = myLane();
  TraceEvent E{Name, Category, 'C', nowNs(), 0, L.NextSeq++, {}};
  E.Args.emplace_back("value", Value);
  L.Events.push_back(std::move(E));
}

static void writeEventJson(JsonWriter &W, const TraceEvent &E, uint32_t Tid,
                           bool RedactTimes) {
  W.beginObject();
  W.key("ph").value(std::string(1, E.Phase));
  if (!E.Name.empty() || E.Phase != 'E')
    W.key("name").value(E.Name);
  if (E.Category[0])
    W.key("cat").value(E.Category);
  W.key("pid").value(int64_t(1));
  W.key("tid").value(static_cast<int64_t>(Tid));
  // Chrome "ts"/"dur" are microseconds; three decimals keep ns resolution.
  W.key("ts").value(RedactTimes ? 0.0 : static_cast<double>(E.TsNs) / 1000.0,
                    3);
  if (E.Phase == 'X')
    W.key("dur").value(
        RedactTimes ? 0.0 : static_cast<double>(E.DurNs) / 1000.0, 3);
  if (E.Phase == 'i')
    W.key("s").value("t"); // Instant scope: thread.
  if (!E.Args.empty()) {
    W.key("args").beginObject();
    for (const TraceArg &A : E.Args) {
      W.key(A.Key);
      if (A.IsNumber)
        W.raw(A.Value);
      else
        W.value(A.Value);
    }
    W.endObject();
  }
  W.endObject();
}

std::string
TraceCollector::exportChromeJson(const ExportOptions &Opts) const {
  std::lock_guard<std::mutex> Lock(Mu);
  JsonWriter W;
  W.beginObject().key("traceEvents").beginArray();
  // One thread_name metadata record per lane, then the events sorted by
  // (lane, sequence) — lanes keep registration order, events emission order,
  // so the document structure is deterministic for deterministic workloads.
  for (const auto &L : Lanes) {
    if (L->ThreadName.empty())
      continue;
    W.beginObject()
        .key("ph")
        .value("M")
        .key("name")
        .value("thread_name")
        .key("pid")
        .value(int64_t(1))
        .key("tid")
        .value(static_cast<int64_t>(L->Tid))
        .key("args")
        .beginObject()
        .key("name")
        .value(L->ThreadName)
        .endObject()
        .endObject();
  }
  for (const auto &L : Lanes)
    for (const TraceEvent &E : L->Events)
      writeEventJson(W, E, L->Tid, Opts.RedactTimes);
  W.endArray().key("displayTimeUnit").value("ms").endObject();
  return W.str();
}

bool TraceCollector::writeChromeJson(const std::string &Path,
                                     const ExportOptions &Opts) const {
  std::string Json = exportChromeJson(Opts);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = Written == Json.size() && std::fclose(F) == 0;
  if (Written != Json.size())
    std::fclose(F);
  return Ok;
}

size_t TraceCollector::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const auto &L : Lanes)
    N += L->Events.size();
  return N;
}

size_t TraceCollector::laneCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Lanes.size();
}

size_t TraceCollector::laneCountWithPrefix(const std::string &Prefix) const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const auto &L : Lanes)
    N += L->ThreadName.rfind(Prefix, 0) == 0;
  return N;
}
