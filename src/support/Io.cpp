//===- support/Io.cpp - Checked fd I/O and fault injection ----------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/Io.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace gca {

namespace {

/// Briefly waits for \p Fd to become ready for \p Events after an EAGAIN.
/// Blocking fds should never need this; bounded so an injected EAGAIN storm
/// degrades to a busy retry, not a hang.
void pollBriefly(int Fd, short Events) {
  struct pollfd P;
  P.fd = Fd;
  P.events = Events;
  P.revents = 0;
  (void)::poll(&P, 1, 1 /*ms*/);
}

} // namespace

IoStatus ioReadFull(int Fd, void *Buf, size_t Len) {
  FaultInjector &FI = FaultInjector::instance();
  char *P = static_cast<char *>(Buf);
  size_t Done = 0;
  while (Done != Len) {
    if (FI.armed()) {
      // Synthetic errno storms: behave exactly as if the syscall had
      // returned -1 with errno set, taking the same retry edges real
      // EINTR/EAGAIN would.
      if (FI.injectEintr())
        continue;
      if (FI.injectEagain()) {
        pollBriefly(Fd, POLLIN);
        continue;
      }
    }
    size_t Want = FI.armed() ? FI.clampRead(Len - Done) : Len - Done;
    ssize_t N = ::read(Fd, P + Done, Want);
    if (N > 0) {
      Done += static_cast<size_t>(N);
      continue;
    }
    if (N == 0)
      return Done == 0 ? IoStatus::Eof : IoStatus::Short;
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollBriefly(Fd, POLLIN);
      continue;
    }
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

IoStatus ioWriteFull(int Fd, const void *Buf, size_t Len) {
  FaultInjector &FI = FaultInjector::instance();
  const char *P = static_cast<const char *>(Buf);
  size_t Done = 0;
  while (Done != Len) {
    if (FI.armed()) {
      if (FI.injectEintr())
        continue;
      if (FI.injectEagain()) {
        pollBriefly(Fd, POLLOUT);
        continue;
      }
    }
    size_t Want = FI.armed() ? FI.clampWrite(Len - Done) : Len - Done;
    // send(MSG_NOSIGNAL) keeps a dead peer from raising SIGPIPE; pipes and
    // regular files are not sockets, so fall back to write(2) on ENOTSOCK.
    ssize_t N = ::send(Fd, P + Done, Want, MSG_NOSIGNAL);
    if (N < 0 && errno == ENOTSOCK)
      N = ::write(Fd, P + Done, Want);
    if (N > 0) {
      Done += static_cast<size_t>(N);
      continue;
    }
    if (N == 0)
      continue; // Zero-byte write: retry.
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollBriefly(Fd, POLLOUT);
      continue;
    }
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

IoStatus ioReadToEof(int Fd, std::string &Out, size_t MaxBytes) {
  char Buf[4096];
  for (;;) {
    size_t Want = sizeof(Buf);
    if (Out.size() + Want > MaxBytes) {
      if (Out.size() >= MaxBytes)
        return IoStatus::Error;
      Want = MaxBytes - Out.size();
    }
    // Reuse the checked single-buffer loop for its retry/injection edges;
    // Short here just means "fewer than Want before EOF", which for a
    // read-to-EOF is success, not truncation.
    size_t Before = Out.size();
    Out.resize(Before + Want);
    size_t Got = 0;
    IoStatus S = IoStatus::Ok;
    {
      FaultInjector &FI = FaultInjector::instance();
      char *P = Out.data() + Before;
      while (Got != Want) {
        if (FI.armed()) {
          if (FI.injectEintr())
            continue;
          if (FI.injectEagain()) {
            pollBriefly(Fd, POLLIN);
            continue;
          }
        }
        size_t Slice = FI.armed() ? FI.clampRead(Want - Got) : Want - Got;
        ssize_t N = ::read(Fd, P + Got, Slice);
        if (N > 0) {
          Got += static_cast<size_t>(N);
          continue;
        }
        if (N == 0) {
          S = IoStatus::Eof;
          break;
        }
        if (errno == EINTR)
          continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          pollBriefly(Fd, POLLIN);
          continue;
        }
        S = IoStatus::Error;
        break;
      }
    }
    Out.resize(Before + Got);
    if (S == IoStatus::Eof)
      return IoStatus::Ok;
    if (S == IoStatus::Error)
      return IoStatus::Error;
  }
}

//===----------------------------------------------------------------------===//
// FaultInjector
//===----------------------------------------------------------------------===//

FaultInjector &FaultInjector::instance() {
  static FaultInjector FI;
  return FI;
}

bool FaultInjector::configure(const std::string &Spec) {
  std::lock_guard<std::mutex> L(Mu);
  Armed.store(false, std::memory_order_relaxed);
  Injected.store(0, std::memory_order_relaxed);
  ShortReadPct = ShortWritePct = EagainPct = EintrPct = 0;
  MaxFaults = 100000;
  State = 1;
  if (Spec.empty())
    return true;

  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Entry = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    size_t Eq = Entry.find('=');
    if (Eq == std::string::npos)
      return false;
    std::string Key = Entry.substr(0, Eq);
    char *Rest = nullptr;
    long long Value = std::strtoll(Entry.c_str() + Eq + 1, &Rest, 10);
    if (!Rest || *Rest != '\0' || Value < 0)
      return false;
    bool IsPct = Key == "short-read" || Key == "short-write" ||
                 Key == "eagain" || Key == "eintr";
    if (IsPct && Value > 100)
      return false;
    if (Key == "short-read")
      ShortReadPct = static_cast<int>(Value);
    else if (Key == "short-write")
      ShortWritePct = static_cast<int>(Value);
    else if (Key == "eagain")
      EagainPct = static_cast<int>(Value);
    else if (Key == "eintr")
      EintrPct = static_cast<int>(Value);
    else if (Key == "seed")
      State = static_cast<uint64_t>(Value) * 2654435761u + 12345;
    else if (Key == "max")
      MaxFaults = Value;
    else
      return false;
  }
  Armed.store(ShortReadPct || ShortWritePct || EagainPct || EintrPct,
              std::memory_order_relaxed);
  return true;
}

void FaultInjector::configureFromEnv() {
  if (const char *E = std::getenv("GCA_FAULT"))
    (void)configure(E);
}

void FaultInjector::reset() { (void)configure(""); }

bool FaultInjector::roll(int Percent) {
  if (Percent <= 0)
    return false;
  if (Injected.load(std::memory_order_relaxed) >= MaxFaults)
    return false;
  // SplitMix64 step under the lock: deterministic for a given seed and
  // sequence of calls (single-connection tests), statistically fair under
  // concurrency.
  State += 0x9e3779b97f4a7c15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  Z ^= Z >> 31;
  if (static_cast<int>(Z % 100) >= Percent)
    return false;
  Injected.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::injectEagain() {
  std::lock_guard<std::mutex> L(Mu);
  return roll(EagainPct);
}

bool FaultInjector::injectEintr() {
  std::lock_guard<std::mutex> L(Mu);
  return roll(EintrPct);
}

size_t FaultInjector::clampRead(size_t Len) {
  std::lock_guard<std::mutex> L(Mu);
  return Len > 1 && roll(ShortReadPct) ? 1 : Len;
}

size_t FaultInjector::clampWrite(size_t Len) {
  std::lock_guard<std::mutex> L(Mu);
  return Len > 1 && roll(ShortWritePct) ? 1 : Len;
}

} // namespace gca
