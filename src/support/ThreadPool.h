//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fixed-size thread pool for the batch compilation driver: tasks
/// are closures over independent compilation sessions, so the pool needs no
/// futures or result plumbing — callers enqueue work with async() and
/// rendezvous with wait(). Determinism is the caller's job (sessions share
/// no mutable state; outputs are ordered by input, not completion).
///
/// When the process-wide TraceCollector is enabled, every worker registers a
/// named lane ("<prefix>-<index>") at startup, each dispatched task gets a
/// "task" span on its worker's lane, and the dequeue-minus-enqueue interval
/// is recorded as a "task-wait" complete span — queue pressure and run time
/// are separately visible in the exported timeline.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_SUPPORT_THREADPOOL_H
#define GCA_SUPPORT_THREADPOOL_H

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gca {

class ThreadPool {
public:
  /// Spawns \p NumThreads workers; 0 means std::thread::hardware_concurrency
  /// (at least 1). \p LanePrefix names the workers' trace lanes.
  explicit ThreadPool(unsigned NumThreads = 0,
                      std::string LanePrefix = "worker");

  /// Waits for all queued work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task; it runs on some worker in FIFO dispatch order.
  void async(std::function<void()> Task);

  /// Blocks until every task enqueued so far has finished.
  void wait();

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

private:
  struct QueuedTask {
    std::function<void()> Fn;
    /// TraceCollector::nowNs() at enqueue when tracing was on; UINT64_MAX
    /// otherwise (so a task enqueued before enable() reports no wait span).
    uint64_t EnqueueNs;
  };

  void workerLoop(unsigned Index);

  std::string LanePrefix;
  std::vector<std::thread> Workers;
  std::deque<QueuedTask> Queue;
  std::mutex Mu;
  std::condition_variable WorkCV; ///< Signals workers: work or shutdown.
  std::condition_variable IdleCV; ///< Signals wait(): queue drained and idle.
  unsigned NumActive = 0;
  bool Shutdown = false;
};

/// Deterministic chunked fan-out: the number of contiguous chunks [0, N) is
/// split into, given the requested job count. A few chunks per worker keeps
/// the tail balanced without fragmenting the work; serial callers get one
/// chunk so the parallel and serial paths run the same code.
inline int parallelChunkCount(const ThreadPool *Pool, int Jobs, int N) {
  if (N <= 0)
    return 0;
  if (!Pool || Jobs <= 1)
    return 1;
  return std::min(N, Jobs * 4);
}

/// Runs \p F(Begin, End, ChunkIndex) over [0, N) split into \p NumChunks
/// contiguous chunks (from parallelChunkCount), on \p Pool when it is
/// non-null and more than one chunk was requested, inline otherwise. The
/// chunk boundaries depend only on (N, NumChunks), so any per-chunk results
/// the caller collects can be reduced in chunk order for scheduling-
/// independent output.
template <typename Fn>
void runChunked(ThreadPool *Pool, int N, int NumChunks, Fn &&F) {
  if (NumChunks <= 0)
    return;
  int Per = (N + NumChunks - 1) / NumChunks;
  if (!Pool || NumChunks == 1) {
    for (int C = 0; C != NumChunks; ++C)
      F(std::min(C * Per, N), std::min((C + 1) * Per, N), C);
    return;
  }
  for (int C = 0; C != NumChunks; ++C)
    Pool->async([&F, C, Per, N] {
      F(std::min(C * Per, N), std::min((C + 1) * Per, N), C);
    });
  Pool->wait();
}

} // namespace gca

#endif // GCA_SUPPORT_THREADPOOL_H
