//===- ir/Builder.cpp - Programmatic routine construction -----------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

#include <cassert>

using namespace gca;

RoutineBuilder &RoutineBuilder::array(const std::string &Name,
                                      std::vector<int64_t> Extents,
                                      std::vector<DistKind> Dist) {
  if (Dist.empty())
    Dist.assign(Extents.size(), DistKind::Block);
  R.addArray(Name, std::move(Extents), std::move(Dist));
  return *this;
}

RoutineBuilder &RoutineBuilder::arrayBounds(const std::string &Name,
                                            std::vector<int64_t> Lo,
                                            std::vector<int64_t> Hi,
                                            std::vector<DistKind> Dist) {
  R.addArrayBounds(Name, std::move(Lo), std::move(Hi), std::move(Dist));
  return *this;
}

RoutineBuilder &RoutineBuilder::scalar(const std::string &Name) {
  R.addScalar(Name);
  return *this;
}

AffineExpr RoutineBuilder::v(const std::string &Name) const {
  for (auto It = Frames.rbegin(), E = Frames.rend(); It != E; ++It)
    if (It->LoopVarId >= 0 && It->LoopVarName == Name)
      return AffineExpr::var(It->LoopVarId);
  assert(false && "loop variable not in scope");
  return AffineExpr::constant(0);
}

ArrayRef RoutineBuilder::ref(const std::string &Name,
                             std::vector<AffineExpr> Subs) const {
  ArrayRef Out;
  Out.ArrayId = R.findArray(Name);
  assert(Out.ArrayId >= 0 && "reference to undeclared array");
  assert(Subs.size() == R.array(Out.ArrayId).rank() &&
         "subscript count does not match array rank");
  for (AffineExpr &S : Subs)
    Out.Subs.push_back(Subscript::elem(std::move(S)));
  return Out;
}

ArrayRef RoutineBuilder::refs(const std::string &Name,
                              std::vector<Subscript> Subs) const {
  ArrayRef Out;
  Out.ArrayId = R.findArray(Name);
  assert(Out.ArrayId >= 0 && "reference to undeclared array");
  assert(Subs.size() == R.array(Out.ArrayId).rank() &&
         "subscript count does not match array rank");
  Out.Subs = std::move(Subs);
  return Out;
}

ArrayRef RoutineBuilder::whole(const std::string &Name) const {
  int Id = R.findArray(Name);
  assert(Id >= 0 && "reference to undeclared array");
  const ArrayDecl &A = R.array(Id);
  ArrayRef Out;
  Out.ArrayId = Id;
  for (unsigned D = 0, E = A.rank(); D != E; ++D)
    Out.Subs.push_back(Subscript::range(AffineExpr::constant(A.Lo[D]),
                                        AffineExpr::constant(A.Hi[D])));
  return Out;
}

Subscript RoutineBuilder::fullDim(const std::string &Name,
                                  unsigned Dim) const {
  int Id = R.findArray(Name);
  assert(Id >= 0 && "reference to undeclared array");
  const ArrayDecl &A = R.array(Id);
  assert(Dim < A.rank() && "dimension out of range");
  return Subscript::range(AffineExpr::constant(A.Lo[Dim]),
                          AffineExpr::constant(A.Hi[Dim]));
}

std::vector<Stmt *> &RoutineBuilder::currentList() {
  if (Frames.empty())
    return R.body();
  Frame &F = Frames.back();
  if (auto *L = dyn_cast<LoopStmt>(F.S))
    return L->body();
  auto *I = cast<IfStmt>(F.S);
  return F.InElse ? I->elseBody() : I->thenBody();
}

void RoutineBuilder::append(Stmt *S) { currentList().push_back(S); }

AssignStmt *RoutineBuilder::assign(ArrayRef Lhs, std::vector<RhsTerm> Rhs,
                                   int NumOps) {
  AssignStmt *S = R.newAssign(std::move(Lhs), std::move(Rhs), NumOps);
  append(S);
  return S;
}

AssignStmt *RoutineBuilder::assign(ArrayRef Lhs,
                                   std::initializer_list<ArrayRef> RhsRefs) {
  std::vector<RhsTerm> Rhs;
  for (const ArrayRef &Ref : RhsRefs)
    Rhs.push_back(RhsTerm::array(Ref));
  int NumOps = static_cast<int>(Rhs.size());
  return assign(std::move(Lhs), std::move(Rhs), NumOps);
}

AssignStmt *RoutineBuilder::assignLit(ArrayRef Lhs, double Value) {
  return assign(std::move(Lhs), {RhsTerm::literal(Value)}, 0);
}

AssignStmt *RoutineBuilder::sumInto(const std::string &ScalarName,
                                    ArrayRef Arg) {
  int Sid = R.findScalar(ScalarName);
  assert(Sid >= 0 && "sum target scalar not declared");
  AssignStmt *S = R.newScalarAssign(Sid, {RhsTerm::sum(std::move(Arg))}, 1);
  append(S);
  return S;
}

AssignStmt *RoutineBuilder::scalarAssign(const std::string &ScalarName,
                                         std::vector<RhsTerm> Rhs,
                                         int NumOps) {
  int Sid = R.findScalar(ScalarName);
  assert(Sid >= 0 && "assignment target scalar not declared");
  AssignStmt *S = R.newScalarAssign(Sid, std::move(Rhs), NumOps);
  append(S);
  return S;
}

LoopStmt *RoutineBuilder::beginLoop(const std::string &Var, AffineExpr Lo,
                                    AffineExpr Hi, int64_t Step) {
  int VarId = R.addLoopVar(Var);
  LoopStmt *L = R.newLoop(VarId, std::move(Lo), std::move(Hi), Step);
  append(L);
  Frame F;
  F.S = L;
  F.LoopVarId = VarId;
  F.LoopVarName = Var;
  Frames.push_back(std::move(F));
  return L;
}

void RoutineBuilder::endLoop() {
  assert(!Frames.empty() && isa<LoopStmt>(Frames.back().S) &&
         "endLoop without matching beginLoop");
  Frames.pop_back();
}

IfStmt *RoutineBuilder::beginIf(const std::string &Cond) {
  IfStmt *I = R.newIf(Cond);
  append(I);
  Frame F;
  F.S = I;
  Frames.push_back(std::move(F));
  return I;
}

void RoutineBuilder::beginElse() {
  assert(!Frames.empty() && isa<IfStmt>(Frames.back().S) &&
         !Frames.back().InElse && "beginElse without open if");
  Frames.back().InElse = true;
}

void RoutineBuilder::endIf() {
  assert(!Frames.empty() && isa<IfStmt>(Frames.back().S) &&
         "endIf without matching beginIf");
  Frames.pop_back();
}
