//===- ir/Printer.cpp - HPF-lite pretty printer ---------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "support/StrUtil.h"

using namespace gca;

static std::string printSubscript(const Routine &R, const Subscript &S) {
  const std::vector<std::string> &Names = R.loopVarNames();
  if (S.isElem())
    return S.Lo.str(&Names);
  std::string Out = S.Lo.str(&Names) + ":" + S.Hi.str(&Names);
  if (S.Step != 1)
    Out += strFormat(":%lld", static_cast<long long>(S.Step));
  return Out;
}

std::string gca::printArrayRef(const Routine &R, const ArrayRef &Ref) {
  const ArrayDecl &A = R.array(Ref.ArrayId);
  std::vector<std::string> Subs;
  for (const Subscript &S : Ref.Subs)
    Subs.push_back(printSubscript(R, S));
  return A.Name + "(" + join(Subs, ",") + ")";
}

static std::string printRhsTerm(const Routine &R, const RhsTerm &T) {
  switch (T.K) {
  case RhsTerm::Kind::Array:
    return printArrayRef(R, T.Ref);
  case RhsTerm::Kind::Scalar:
    return R.scalar(T.ScalarId).Name;
  case RhsTerm::Kind::Literal:
    return strFormat("%g", T.Literal);
  case RhsTerm::Kind::SumReduce:
    return "sum(" + printArrayRef(R, T.Ref) + ")";
  }
  return "?";
}

static void printStmtInto(const Routine &R, const Stmt *S, int Indent,
                          std::string &Out) {
  std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
  switch (S->kind()) {
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    std::vector<std::string> Terms;
    for (const RhsTerm &T : A->rhs())
      Terms.push_back(printRhsTerm(R, T));
    std::string Lhs = A->lhsIsScalar() ? R.scalar(A->lhsScalarId()).Name
                                       : printArrayRef(R, A->lhs());
    Out += Pad + Lhs + " = " + join(Terms, " + ") + "\n";
    break;
  }
  case StmtKind::Loop: {
    const auto *L = cast<LoopStmt>(S);
    const std::vector<std::string> &Names = R.loopVarNames();
    Out += Pad + "do " + R.loopVarName(L->var()) + " = " +
           L->lo().str(&Names) + ", " + L->hi().str(&Names);
    if (L->step() != 1)
      Out += strFormat(", %lld", static_cast<long long>(L->step()));
    Out += "\n";
    for (const Stmt *C : L->body())
      printStmtInto(R, C, Indent + 1, Out);
    Out += Pad + "end do\n";
    break;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    Out += Pad + "if (" + I->cond() + ") then\n";
    for (const Stmt *C : I->thenBody())
      printStmtInto(R, C, Indent + 1, Out);
    if (!I->elseBody().empty()) {
      Out += Pad + "else\n";
      for (const Stmt *C : I->elseBody())
        printStmtInto(R, C, Indent + 1, Out);
    }
    Out += Pad + "end if\n";
    break;
  }
  }
}

std::string gca::printStmt(const Routine &R, const Stmt *S, int Indent) {
  std::string Out;
  printStmtInto(R, S, Indent, Out);
  return Out;
}

std::string gca::printRoutine(const Routine &R) {
  std::string Out = "routine " + R.name() + "\n";
  for (const ArrayDecl &A : R.arrays()) {
    std::vector<std::string> Dims, Dist;
    for (unsigned D = 0, E = A.rank(); D != E; ++D) {
      if (A.Lo[D] == 1)
        Dims.push_back(strFormat("%lld", static_cast<long long>(A.Hi[D])));
      else
        Dims.push_back(strFormat("%lld:%lld", static_cast<long long>(A.Lo[D]),
                                 static_cast<long long>(A.Hi[D])));
      Dist.push_back(distKindName(A.Dist[D]));
    }
    Out += "  real " + A.Name + "(" + join(Dims, ",") + ") distribute (" +
           join(Dist, ",") + ")\n";
  }
  for (const ScalarDecl &S : R.scalars())
    Out += "  real " + S.Name + "\n";
  Out += "begin\n";
  for (const Stmt *S : R.body())
    printStmtInto(R, S, 1, Out);
  Out += "end\n";
  return Out;
}
