//===- ir/Ast.h - HPF-lite abstract syntax ----------------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The HPF-lite IR: routines containing distributed array declarations and a
/// structured statement tree (assignments with affine/section subscripts, DO
/// loops, IF/ELSE). This models exactly what the paper's algorithm consumes:
/// data-parallel programs annotated with data-decomposition directives, where
/// each RHS is treated as a list of array references (the paper itself elides
/// the operations; Section 2).
///
//===----------------------------------------------------------------------===//

#ifndef GCA_IR_AST_H
#define GCA_IR_AST_H

#include "ir/AffineExpr.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace gca {

class Routine;

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// Per-dimension distribution directive, as in HPF `DISTRIBUTE (BLOCK, *)`.
enum class DistKind : uint8_t {
  Block, ///< Contiguous blocks across the corresponding template dimension.
  Cyclic, ///< Round-robin elements across the template dimension.
  Star,  ///< Dimension is not distributed (every owner holds it whole).
};

const char *distKindName(DistKind Kind);

/// A declared distributed (or replicated) array.
struct ArrayDecl {
  std::string Name;
  int Id = -1;
  /// Inclusive per-dimension bounds; Fortran-style, default lower bound 1.
  std::vector<int64_t> Lo;
  std::vector<int64_t> Hi;
  std::vector<DistKind> Dist;
  int64_t ElemBytes = 8;

  unsigned rank() const { return static_cast<unsigned>(Lo.size()); }
  int64_t extent(unsigned Dim) const { return Hi[Dim] - Lo[Dim] + 1; }
  int64_t numElems() const;

  /// True if at least one dimension is distributed.
  bool isDistributed() const;
};

/// The template signature of an array: the ordered list of its distributed
/// dimensions' (extent, kind) pairs. Two arrays whose signatures match are
/// aligned to the same (virtual) processor template, which is the paper's
/// precondition for communication-pattern compatibility checks done "in the
/// virtual processor space of template positions" (Section 4.7).
struct TemplateSig {
  std::vector<std::pair<int64_t, DistKind>> Dims;

  bool operator==(const TemplateSig &RHS) const { return Dims == RHS.Dims; }
  unsigned rank() const { return static_cast<unsigned>(Dims.size()); }
  std::string str() const;
};

/// Computes the template signature of \p A (empty for replicated arrays).
TemplateSig templateSigOf(const ArrayDecl &A);

/// A declared scalar. Scalars are replicated on all processors; assigning a
/// reduction into one implies a global reduction communication.
struct ScalarDecl {
  std::string Name;
  int Id = -1;
};

//===----------------------------------------------------------------------===//
// References
//===----------------------------------------------------------------------===//

/// One subscript position: either a single affine index (`a(i-1, j)`) or an
/// F90 section triplet (`a(1:n:2, :)`). The frontend resolves bare `:` to the
/// declared bounds, so Range subscripts always carry explicit bounds.
struct Subscript {
  enum class Kind : uint8_t { Elem, Range } K = Kind::Elem;
  AffineExpr Lo; ///< Elem: the index. Range: the lower bound.
  AffineExpr Hi; ///< Range only: the upper bound (inclusive).
  int64_t Step = 1; ///< Range only.

  static Subscript elem(AffineExpr Index);
  static Subscript range(AffineExpr Lo, AffineExpr Hi, int64_t Step = 1);

  bool isElem() const { return K == Kind::Elem; }
  bool isRange() const { return K == Kind::Range; }
  bool operator==(const Subscript &RHS) const {
    return K == RHS.K && Lo == RHS.Lo && (!isRange() || (Hi == RHS.Hi && Step == RHS.Step));
  }
};

/// A (possibly sectioned) reference to an array.
struct ArrayRef {
  int ArrayId = -1;
  std::vector<Subscript> Subs;
  SourceLoc Loc;

  bool isValid() const { return ArrayId >= 0; }
  /// True if any subscript is a Range (an F90 section reference).
  bool hasRanges() const;
};

/// One term of a right-hand side. The analyses treat the RHS as a list of
/// references; the operator combining terms only matters for flop counting.
struct RhsTerm {
  enum class Kind : uint8_t { Array, Scalar, Literal, SumReduce } K =
      Kind::Literal;
  ArrayRef Ref;       ///< Array / SumReduce argument.
  int ScalarId = -1;  ///< Scalar.
  double Literal = 0; ///< Literal.

  static RhsTerm array(ArrayRef Ref);
  static RhsTerm scalar(int ScalarId);
  static RhsTerm literal(double Value);
  static RhsTerm sum(ArrayRef Ref);

  bool isArrayLike() const {
    return K == Kind::Array || K == Kind::SumReduce;
  }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t { Assign, Loop, If };

/// Base of the structured statement tree. Statements are arena-allocated and
/// owned by their Routine; ids are dense and stable, assigned at creation.
class Stmt {
public:
  StmtKind kind() const { return K; }
  int id() const { return Id; }
  SourceLoc loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  virtual ~Stmt(); // Out-of-line virtual anchor.

protected:
  Stmt(StmtKind K, int Id) : K(K), Id(Id) {}

private:
  friend class Routine;
  StmtKind K;
  int Id;
  SourceLoc Loc;
};

/// `lhs = rhs-term (op rhs-term)*`. The LHS is an array reference or a
/// scalar. A SumReduce RHS term denotes `sum(section)`, the paper's SUM
/// communication type.
class AssignStmt : public Stmt {
public:
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Assign; }

  bool lhsIsScalar() const { return LhsScalarId >= 0; }
  const ArrayRef &lhs() const { return Lhs; }
  int lhsScalarId() const { return LhsScalarId; }
  const std::vector<RhsTerm> &rhs() const { return Rhs; }
  std::vector<RhsTerm> &rhs() { return Rhs; }

  /// Floating point operations per (scalar) execution of this statement.
  int numOps() const { return NumOps; }
  void setNumOps(int N) { NumOps = N; }

private:
  friend class Routine;
  AssignStmt(int Id, ArrayRef Lhs, std::vector<RhsTerm> Rhs, int NumOps)
      : Stmt(StmtKind::Assign, Id), Lhs(std::move(Lhs)), LhsScalarId(-1),
        Rhs(std::move(Rhs)), NumOps(NumOps) {}
  AssignStmt(int Id, int LhsScalarId, std::vector<RhsTerm> Rhs, int NumOps)
      : Stmt(StmtKind::Assign, Id), LhsScalarId(LhsScalarId),
        Rhs(std::move(Rhs)), NumOps(NumOps) {}

  ArrayRef Lhs;
  int LhsScalarId;
  std::vector<RhsTerm> Rhs;
  int NumOps = 1;
};

/// `do v = lo, hi [, step] ... end do` with affine bounds and constant step.
class LoopStmt : public Stmt {
public:
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Loop; }

  int var() const { return Var; }
  const AffineExpr &lo() const { return Lo; }
  const AffineExpr &hi() const { return Hi; }
  int64_t step() const { return Step; }
  const std::vector<Stmt *> &body() const { return Body; }
  std::vector<Stmt *> &body() { return Body; }

  /// Trip count when the bounds are constant; -1 otherwise.
  int64_t constTripCount() const;

private:
  friend class Routine;
  LoopStmt(int Id, int Var, AffineExpr Lo, AffineExpr Hi, int64_t Step)
      : Stmt(StmtKind::Loop, Id), Var(Var), Lo(std::move(Lo)),
        Hi(std::move(Hi)), Step(Step) {}

  int Var;
  AffineExpr Lo, Hi;
  int64_t Step;
  std::vector<Stmt *> Body;
};

/// `if (cond) then ... [else ...] end if`. The condition is an uninterpreted
/// name: the analyses only need the control structure, exactly as in the
/// paper's running example (Figure 4, `if (cond)`).
class IfStmt : public Stmt {
public:
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }

  const std::string &cond() const { return Cond; }
  const std::vector<Stmt *> &thenBody() const { return Then; }
  std::vector<Stmt *> &thenBody() { return Then; }
  const std::vector<Stmt *> &elseBody() const { return Else; }
  std::vector<Stmt *> &elseBody() { return Else; }

private:
  friend class Routine;
  IfStmt(int Id, std::string Cond)
      : Stmt(StmtKind::If, Id), Cond(std::move(Cond)) {}

  std::string Cond;
  std::vector<Stmt *> Then, Else;
};

//===----------------------------------------------------------------------===//
// Routine / Program
//===----------------------------------------------------------------------===//

/// One procedure: declarations plus a structured statement tree. The paper's
/// algorithm is intraprocedural, so the Routine is the unit of analysis.
class Routine {
public:
  explicit Routine(std::string Name) : Name(std::move(Name)) {}
  Routine(const Routine &) = delete;
  Routine &operator=(const Routine &) = delete;

  const std::string &name() const { return Name; }

  // Declarations -----------------------------------------------------------

  /// Declares an array with bounds 1..Extents[d] and the given distribution.
  int addArray(const std::string &Name, std::vector<int64_t> Extents,
               std::vector<DistKind> Dist);

  /// Declares an array with explicit per-dimension bounds.
  int addArrayBounds(const std::string &Name, std::vector<int64_t> Lo,
                     std::vector<int64_t> Hi, std::vector<DistKind> Dist);

  int addScalar(const std::string &Name);
  int addLoopVar(const std::string &Name);

  const std::vector<ArrayDecl> &arrays() const { return Arrays; }
  const ArrayDecl &array(int Id) const { return Arrays[Id]; }
  const std::vector<ScalarDecl> &scalars() const { return Scalars; }
  const ScalarDecl &scalar(int Id) const { return Scalars[Id]; }
  const std::vector<std::string> &loopVarNames() const { return LoopVars; }
  const std::string &loopVarName(int Id) const { return LoopVars[Id]; }

  /// \returns the array id for \p Name, or -1.
  int findArray(const std::string &Name) const;
  /// \returns the scalar id for \p Name, or -1.
  int findScalar(const std::string &Name) const;
  /// \returns the loop-var id for \p Name, or -1.
  int findLoopVar(const std::string &Name) const;

  // Statement construction -------------------------------------------------

  AssignStmt *newAssign(ArrayRef Lhs, std::vector<RhsTerm> Rhs,
                        int NumOps = 1);
  AssignStmt *newScalarAssign(int LhsScalarId, std::vector<RhsTerm> Rhs,
                              int NumOps = 1);
  LoopStmt *newLoop(int Var, AffineExpr Lo, AffineExpr Hi, int64_t Step = 1);
  IfStmt *newIf(std::string Cond);

  // Body -------------------------------------------------------------------

  const std::vector<Stmt *> &body() const { return Body; }
  std::vector<Stmt *> &body() { return Body; }

  unsigned numStmts() const { return static_cast<unsigned>(Arena.size()); }
  Stmt *stmt(int Id) const { return Arena[Id].get(); }

  /// Visits every statement in the tree in source order (pre-order).
  void forEachStmt(const std::function<void(Stmt *)> &Fn) const;

private:
  std::string Name;
  std::vector<ArrayDecl> Arrays;
  std::vector<ScalarDecl> Scalars;
  std::vector<std::string> LoopVars;
  std::vector<std::unique_ptr<Stmt>> Arena;
  std::vector<Stmt *> Body;
};

/// A whole HPF-lite program (usually a single routine per source file, but
/// the workloads use several routines for trimesh/hydflo).
struct Program {
  std::string Name;
  std::vector<std::unique_ptr<Routine>> Routines;

  Routine *findRoutine(const std::string &Name) const;
};

} // namespace gca

#endif // GCA_IR_AST_H
