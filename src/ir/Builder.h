//===- ir/Builder.h - Programmatic routine construction ---------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fluent builder over ir::Routine used by tests and workloads to construct
/// HPF-lite programs without going through the text frontend. Loop variables
/// are scoped by name: beginLoop("i", ...) introduces a fresh variable that
/// v("i") resolves to until the matching endLoop().
///
//===----------------------------------------------------------------------===//

#ifndef GCA_IR_BUILDER_H
#define GCA_IR_BUILDER_H

#include "ir/Ast.h"

#include <initializer_list>

namespace gca {

class RoutineBuilder {
public:
  /// Builds into \p R, which must outlive the builder.
  explicit RoutineBuilder(Routine &R) : R(R) {}

  Routine &routine() { return R; }

  // Declarations -----------------------------------------------------------

  /// Declares an array with 1-based bounds; \p Dist defaults to BLOCK in
  /// every dimension when empty.
  RoutineBuilder &array(const std::string &Name, std::vector<int64_t> Extents,
                        std::vector<DistKind> Dist = {});

  /// Declares an array with explicit bounds.
  RoutineBuilder &arrayBounds(const std::string &Name,
                              std::vector<int64_t> Lo, std::vector<int64_t> Hi,
                              std::vector<DistKind> Dist);

  RoutineBuilder &scalar(const std::string &Name);

  // Expressions ------------------------------------------------------------

  /// The innermost in-scope loop variable named \p Name.
  AffineExpr v(const std::string &Name) const;

  static AffineExpr c(int64_t Value) { return AffineExpr::constant(Value); }

  // References -------------------------------------------------------------

  /// `name(subs...)` with element subscripts.
  ArrayRef ref(const std::string &Name, std::vector<AffineExpr> Subs) const;

  /// `name(subs...)` with explicit Subscript values (sections allowed).
  ArrayRef refs(const std::string &Name, std::vector<Subscript> Subs) const;

  /// `name` as a whole-array reference (every dimension full range).
  ArrayRef whole(const std::string &Name) const;

  /// A full-range subscript for dimension \p Dim of \p Name.
  Subscript fullDim(const std::string &Name, unsigned Dim) const;

  // Statements -------------------------------------------------------------

  AssignStmt *assign(ArrayRef Lhs, std::vector<RhsTerm> Rhs, int NumOps = 1);

  /// Convenience: `lhs = r1 + r2 + ...` over plain array references.
  AssignStmt *assign(ArrayRef Lhs, std::initializer_list<ArrayRef> RhsRefs);

  /// Convenience: `lhs = literal`.
  AssignStmt *assignLit(ArrayRef Lhs, double Value);

  /// `scalarName = sum(ref)` — a SUM reduction.
  AssignStmt *sumInto(const std::string &ScalarName, ArrayRef Arg);

  AssignStmt *scalarAssign(const std::string &ScalarName,
                           std::vector<RhsTerm> Rhs, int NumOps = 1);

  LoopStmt *beginLoop(const std::string &Var, AffineExpr Lo, AffineExpr Hi,
                      int64_t Step = 1);
  void endLoop();

  IfStmt *beginIf(const std::string &Cond);
  void beginElse();
  void endIf();

  /// True when every loop/if opened has been closed.
  bool balanced() const { return Frames.empty(); }

private:
  std::vector<Stmt *> &currentList();
  void append(Stmt *S);

  struct Frame {
    Stmt *S;
    bool InElse = false; // IfStmt only.
    int LoopVarId = -1;  // LoopStmt only.
    std::string LoopVarName;
  };

  Routine &R;
  std::vector<Frame> Frames;
};

} // namespace gca

#endif // GCA_IR_BUILDER_H
