//===- ir/Printer.h - HPF-lite pretty printer -------------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a Routine back to HPF-lite source text. Used for debugging dumps
/// and for round-trip tests of the frontend.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_IR_PRINTER_H
#define GCA_IR_PRINTER_H

#include "ir/Ast.h"

#include <string>

namespace gca {

/// Renders the declarations and body of \p R as HPF-lite text.
std::string printRoutine(const Routine &R);

/// Renders one statement subtree at the given indent depth.
std::string printStmt(const Routine &R, const Stmt *S, int Indent = 0);

/// Renders an array reference, e.g. "a(i-1,1:n:2)".
std::string printArrayRef(const Routine &R, const ArrayRef &Ref);

} // namespace gca

#endif // GCA_IR_PRINTER_H
