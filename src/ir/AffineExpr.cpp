//===- ir/AffineExpr.cpp - Affine index expressions -----------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "ir/AffineExpr.h"

#include "support/StrUtil.h"

#include <algorithm>
#include <cassert>

using namespace gca;

AffineExpr AffineExpr::constant(int64_t C) {
  AffineExpr E;
  E.Const = C;
  return E;
}

AffineExpr AffineExpr::var(int VarId, int64_t Coeff) {
  AffineExpr E;
  if (Coeff != 0)
    E.Terms.emplace_back(VarId, Coeff);
  return E;
}

int64_t AffineExpr::constValue() const {
  assert(isConstant() && "constValue() on non-constant affine expression");
  return Const;
}

int64_t AffineExpr::coeff(int VarId) const {
  auto It = std::lower_bound(
      Terms.begin(), Terms.end(), VarId,
      [](const std::pair<int, int64_t> &T, int Id) { return T.first < Id; });
  if (It != Terms.end() && It->first == VarId)
    return It->second;
  return 0;
}

std::vector<int> AffineExpr::vars() const {
  std::vector<int> Out;
  Out.reserve(Terms.size());
  for (const auto &T : Terms)
    Out.push_back(T.first);
  return Out;
}

int64_t AffineExpr::eval(const std::vector<int64_t> &VarValues) const {
  int64_t V = Const;
  for (const auto &T : Terms) {
    int64_t Val =
        T.first < static_cast<int>(VarValues.size()) ? VarValues[T.first] : 0;
    V += T.second * Val;
  }
  return V;
}

void AffineExpr::addTerm(int VarId, int64_t Coeff) {
  if (Coeff == 0)
    return;
  auto It = std::lower_bound(
      Terms.begin(), Terms.end(), VarId,
      [](const std::pair<int, int64_t> &T, int Id) { return T.first < Id; });
  if (It != Terms.end() && It->first == VarId) {
    It->second += Coeff;
    if (It->second == 0)
      Terms.erase(It);
    return;
  }
  Terms.insert(It, {VarId, Coeff});
}

AffineExpr AffineExpr::substitute(int VarId, const AffineExpr &Repl) const {
  int64_t C = coeff(VarId);
  if (C == 0)
    return *this;
  AffineExpr Out = *this;
  Out.addTerm(VarId, -C);
  return Out + Repl * C;
}

AffineExpr AffineExpr::operator+(const AffineExpr &RHS) const {
  AffineExpr Out = *this;
  Out.Const += RHS.Const;
  for (const auto &T : RHS.Terms)
    Out.addTerm(T.first, T.second);
  return Out;
}

AffineExpr AffineExpr::operator-(const AffineExpr &RHS) const {
  return *this + RHS * -1;
}

AffineExpr AffineExpr::operator*(int64_t Scale) const {
  AffineExpr Out;
  if (Scale == 0)
    return Out;
  Out.Const = Const * Scale;
  Out.Terms = Terms;
  for (auto &T : Out.Terms)
    T.second *= Scale;
  return Out;
}

AffineExpr AffineExpr::operator+(int64_t C) const {
  AffineExpr Out = *this;
  Out.Const += C;
  return Out;
}

AffineExpr AffineExpr::operator-(int64_t C) const { return *this + (-C); }

bool AffineExpr::constDifference(const AffineExpr &RHS, int64_t &Delta) const {
  if (Terms != RHS.Terms)
    return false;
  Delta = Const - RHS.Const;
  return true;
}

std::string AffineExpr::str(const std::vector<std::string> *VarNames) const {
  std::string Out;
  bool First = true;
  for (const auto &T : Terms) {
    std::string Name = VarNames && T.first < static_cast<int>(VarNames->size())
                           ? (*VarNames)[T.first]
                           : strFormat("v%d", T.first);
    int64_t C = T.second;
    if (First) {
      if (C == 1)
        Out += Name;
      else if (C == -1)
        Out += "-" + Name;
      else
        Out += strFormat("%lld*%s", static_cast<long long>(C), Name.c_str());
      First = false;
      continue;
    }
    if (C == 1)
      Out += "+" + Name;
    else if (C == -1)
      Out += "-" + Name;
    else if (C > 0)
      Out += strFormat("+%lld*%s", static_cast<long long>(C), Name.c_str());
    else
      Out += strFormat("-%lld*%s", static_cast<long long>(-C), Name.c_str());
  }
  if (First)
    return strFormat("%lld", static_cast<long long>(Const));
  if (Const > 0)
    Out += strFormat("+%lld", static_cast<long long>(Const));
  else if (Const < 0)
    Out += strFormat("%lld", static_cast<long long>(Const));
  return Out;
}
