//===- ir/AffineExpr.h - Affine index expressions ---------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Affine expressions over loop variables: Const + sum(Coeff_i * LoopVar_i).
/// Program parameters (the `param n = 64` declarations of HPF-lite) are
/// folded to constants by the frontend, so every subscript and loop bound the
/// analyses see is affine over loop variables with integer coefficients.
/// This mirrors the subscript model of the paper's dependence tests
/// (Section 4.2, Figure 8(d)).
///
//===----------------------------------------------------------------------===//

#ifndef GCA_IR_AFFINEEXPR_H
#define GCA_IR_AFFINEEXPR_H

#include <cstdint>
#include <string>
#include <vector>

namespace gca {

/// An affine integer expression Const + sum(Coeff_i * Var_i) where Var_i are
/// loop-variable ids local to a Routine. Terms are kept sorted by variable id
/// with no zero coefficients, so structural equality is value equality.
class AffineExpr {
public:
  AffineExpr() = default;

  /// Builds the constant expression \p C.
  static AffineExpr constant(int64_t C);

  /// Builds Coeff * var(VarId).
  static AffineExpr var(int VarId, int64_t Coeff = 1);

  bool isConstant() const { return Terms.empty(); }

  /// \returns the constant value; only valid when isConstant().
  int64_t constValue() const;

  /// \returns the additive constant part.
  int64_t constPart() const { return Const; }

  /// \returns the coefficient of \p VarId (0 if absent).
  int64_t coeff(int VarId) const;

  /// \returns true if \p VarId appears with a nonzero coefficient.
  bool usesVar(int VarId) const { return coeff(VarId) != 0; }

  /// \returns the ids of all variables with nonzero coefficients.
  std::vector<int> vars() const;

  /// The (variable id, coefficient) terms, sorted by variable id. The
  /// allocation-free view the dependence tester's hot loops iterate.
  const std::vector<std::pair<int, int64_t>> &terms() const { return Terms; }

  /// Number of distinct variables in the expression.
  unsigned numVars() const { return static_cast<unsigned>(Terms.size()); }

  /// Evaluates under \p VarValues (indexed by variable id; ids beyond the
  /// vector are treated as 0, which callers must not rely on for real vars).
  int64_t eval(const std::vector<int64_t> &VarValues) const;

  /// Substitutes variable \p VarId with expression \p Repl.
  AffineExpr substitute(int VarId, const AffineExpr &Repl) const;

  AffineExpr operator+(const AffineExpr &RHS) const;
  AffineExpr operator-(const AffineExpr &RHS) const;
  AffineExpr operator*(int64_t Scale) const;
  AffineExpr operator+(int64_t C) const;
  AffineExpr operator-(int64_t C) const;

  bool operator==(const AffineExpr &RHS) const {
    return Const == RHS.Const && Terms == RHS.Terms;
  }

  /// Difference check: returns true and sets \p Delta when this - RHS is a
  /// constant (i.e. the two expressions have identical variable parts).
  bool constDifference(const AffineExpr &RHS, int64_t &Delta) const;

  /// Renders using \p VarName to map ids to names (may be null: v<id>).
  std::string str(const std::vector<std::string> *VarNames = nullptr) const;

private:
  void addTerm(int VarId, int64_t Coeff);

  int64_t Const = 0;
  /// Sorted by variable id; no zero coefficients.
  std::vector<std::pair<int, int64_t>> Terms;
};

} // namespace gca

#endif // GCA_IR_AFFINEEXPR_H
