//===- ir/Ast.cpp - HPF-lite abstract syntax ------------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "ir/Ast.h"

#include "support/StrUtil.h"

#include <cassert>

using namespace gca;

Stmt::~Stmt() = default;

const char *gca::distKindName(DistKind Kind) {
  switch (Kind) {
  case DistKind::Block:
    return "BLOCK";
  case DistKind::Cyclic:
    return "CYCLIC";
  case DistKind::Star:
    return "*";
  }
  return "?";
}

int64_t ArrayDecl::numElems() const {
  int64_t N = 1;
  for (unsigned D = 0, E = rank(); D != E; ++D)
    N *= extent(D);
  return N;
}

bool ArrayDecl::isDistributed() const {
  for (DistKind K : Dist)
    if (K != DistKind::Star)
      return true;
  return false;
}

std::string TemplateSig::str() const {
  std::vector<std::string> Parts;
  for (const auto &D : Dims)
    Parts.push_back(strFormat("%lld:%s", static_cast<long long>(D.first),
                              distKindName(D.second)));
  std::string Out = "[";
  Out += join(Parts, ",");
  Out += ']';
  return Out;
}

TemplateSig gca::templateSigOf(const ArrayDecl &A) {
  TemplateSig Sig;
  for (unsigned D = 0, E = A.rank(); D != E; ++D)
    if (A.Dist[D] != DistKind::Star)
      Sig.Dims.emplace_back(A.extent(D), A.Dist[D]);
  return Sig;
}

Subscript Subscript::elem(AffineExpr Index) {
  Subscript S;
  S.K = Kind::Elem;
  S.Lo = std::move(Index);
  return S;
}

Subscript Subscript::range(AffineExpr Lo, AffineExpr Hi, int64_t Step) {
  assert(Step != 0 && "section step must be nonzero");
  Subscript S;
  S.K = Kind::Range;
  S.Lo = std::move(Lo);
  S.Hi = std::move(Hi);
  S.Step = Step;
  return S;
}

bool ArrayRef::hasRanges() const {
  for (const Subscript &S : Subs)
    if (S.isRange())
      return true;
  return false;
}

RhsTerm RhsTerm::array(ArrayRef Ref) {
  RhsTerm T;
  T.K = Kind::Array;
  T.Ref = std::move(Ref);
  return T;
}

RhsTerm RhsTerm::scalar(int ScalarId) {
  RhsTerm T;
  T.K = Kind::Scalar;
  T.ScalarId = ScalarId;
  return T;
}

RhsTerm RhsTerm::literal(double Value) {
  RhsTerm T;
  T.K = Kind::Literal;
  T.Literal = Value;
  return T;
}

RhsTerm RhsTerm::sum(ArrayRef Ref) {
  RhsTerm T;
  T.K = Kind::SumReduce;
  T.Ref = std::move(Ref);
  return T;
}

int64_t LoopStmt::constTripCount() const {
  if (!Lo.isConstant() || !Hi.isConstant())
    return -1;
  int64_t Span = Hi.constValue() - Lo.constValue();
  if (Step > 0)
    return Span < 0 ? 0 : Span / Step + 1;
  return Span > 0 ? 0 : Span / Step + 1;
}

int Routine::addArray(const std::string &Name, std::vector<int64_t> Extents,
                      std::vector<DistKind> Dist) {
  std::vector<int64_t> Lo(Extents.size(), 1);
  return addArrayBounds(Name, std::move(Lo), std::move(Extents),
                        std::move(Dist));
}

int Routine::addArrayBounds(const std::string &Name, std::vector<int64_t> Lo,
                            std::vector<int64_t> Hi,
                            std::vector<DistKind> Dist) {
  assert(Lo.size() == Hi.size() && Lo.size() == Dist.size() &&
         "mismatched array declaration ranks");
  assert(findArray(Name) < 0 && findScalar(Name) < 0 &&
         "redeclared array name");
  ArrayDecl A;
  A.Name = Name;
  A.Id = static_cast<int>(Arrays.size());
  A.Lo = std::move(Lo);
  A.Hi = std::move(Hi);
  A.Dist = std::move(Dist);
  Arrays.push_back(std::move(A));
  return Arrays.back().Id;
}

int Routine::addScalar(const std::string &Name) {
  assert(findArray(Name) < 0 && findScalar(Name) < 0 &&
         "redeclared scalar name");
  ScalarDecl S;
  S.Name = Name;
  S.Id = static_cast<int>(Scalars.size());
  Scalars.push_back(std::move(S));
  return Scalars.back().Id;
}

int Routine::addLoopVar(const std::string &Name) {
  LoopVars.push_back(Name);
  return static_cast<int>(LoopVars.size()) - 1;
}

int Routine::findArray(const std::string &Name) const {
  for (const ArrayDecl &A : Arrays)
    if (A.Name == Name)
      return A.Id;
  return -1;
}

int Routine::findScalar(const std::string &Name) const {
  for (const ScalarDecl &S : Scalars)
    if (S.Name == Name)
      return S.Id;
  return -1;
}

int Routine::findLoopVar(const std::string &Name) const {
  for (int I = 0, E = static_cast<int>(LoopVars.size()); I != E; ++I)
    if (LoopVars[I] == Name)
      return I;
  return -1;
}

AssignStmt *Routine::newAssign(ArrayRef Lhs, std::vector<RhsTerm> Rhs,
                               int NumOps) {
  int Id = static_cast<int>(Arena.size());
  auto *S = new AssignStmt(Id, std::move(Lhs), std::move(Rhs), NumOps);
  Arena.emplace_back(S);
  return S;
}

AssignStmt *Routine::newScalarAssign(int LhsScalarId,
                                     std::vector<RhsTerm> Rhs, int NumOps) {
  int Id = static_cast<int>(Arena.size());
  auto *S = new AssignStmt(Id, LhsScalarId, std::move(Rhs), NumOps);
  Arena.emplace_back(S);
  return S;
}

LoopStmt *Routine::newLoop(int Var, AffineExpr Lo, AffineExpr Hi,
                           int64_t Step) {
  assert(Var >= 0 && Var < static_cast<int>(LoopVars.size()) &&
         "loop variable not declared");
  int Id = static_cast<int>(Arena.size());
  auto *S = new LoopStmt(Id, Var, std::move(Lo), std::move(Hi), Step);
  Arena.emplace_back(S);
  return S;
}

IfStmt *Routine::newIf(std::string Cond) {
  int Id = static_cast<int>(Arena.size());
  auto *S = new IfStmt(Id, std::move(Cond));
  Arena.emplace_back(S);
  return S;
}

static void visitStmts(const std::vector<Stmt *> &List,
                       const std::function<void(Stmt *)> &Fn) {
  for (Stmt *S : List) {
    Fn(S);
    if (auto *L = dyn_cast<LoopStmt>(S)) {
      visitStmts(L->body(), Fn);
    } else if (auto *I = dyn_cast<IfStmt>(S)) {
      visitStmts(I->thenBody(), Fn);
      visitStmts(I->elseBody(), Fn);
    }
  }
}

void Routine::forEachStmt(const std::function<void(Stmt *)> &Fn) const {
  visitStmts(Body, Fn);
}

Routine *Program::findRoutine(const std::string &Name) const {
  for (const auto &R : Routines)
    if (R->name() == Name)
      return R.get();
  return nullptr;
}
