//===- cfg/DomTree.h - Dominator tree ---------------------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative dominator tree (Cooper-Harvey-Kennedy) over the augmented CFG,
/// plus slot-level dominance queries. The placement algorithm's candidate
/// marking (paper Figure 9(e)) walks DomTreeParent links, and redundancy
/// elimination (Figure 9(f)) uses slot dominance ordering.
///
/// Every placement pass — Earliest/Latest walks, subset elimination,
/// redundancy probes, combining — funnels through dominates(), so queries
/// are O(1): a DFS of the finished tree assigns each node a pre/post
/// interval, and A dominates B iff B's interval nests inside A's. A
/// binary-lifting ancestor table makes the nearest common dominator of two
/// nodes O(log depth), which group placement uses to find the latest
/// common position of combined entries. The chain-walk implementations are
/// kept as *Linear reference versions for the randomized oracle test.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_CFG_DOMTREE_H
#define GCA_CFG_DOMTREE_H

#include "cfg/Cfg.h"

#include <cstdint>
#include <atomic>
#include <vector>

namespace gca {

class DomTree {
public:
  /// Computes dominators of every node reachable from G.entry().
  static DomTree compute(const Cfg &G);

  /// Computes dominators of an arbitrary digraph given successor lists
  /// (test support: the randomized dominance oracle builds graphs that no
  /// structured program produces).
  static DomTree computeFromSuccessors(
      const std::vector<std::vector<int>> &Succs, int Entry);

  /// Immediate dominator of \p Node (-1 for the entry node).
  int idom(int Node) const { return IDom[Node]; }

  /// Depth in the dominator tree (entry = 0).
  int depth(int Node) const { return Depth[Node]; }

  /// True when \p Node is reachable from the entry node.
  bool reachable(int Node) const { return DfsIn[Node] >= 0; }

  /// Reflexive node dominance: two integer compares on the DFS intervals.
  /// Unreachable nodes dominate (and are dominated by) only themselves.
  bool dominates(int A, int B) const {
    Queries.fetch_add(1, std::memory_order_relaxed);
    if (A == B)
      return true;
    return DfsIn[A] >= 0 && DfsIn[B] >= 0 && DfsIn[A] < DfsIn[B] &&
           DfsOut[B] <= DfsOut[A];
  }

  bool properlyDominates(int A, int B) const {
    return A != B && dominates(A, B);
  }

  /// Slot (program point) dominance: A dominates B iff every execution
  /// reaching point B has passed point A. Reflexive.
  bool slotDominates(const Slot &A, const Slot &B) const {
    if (A.Node == B.Node)
      return A.Index <= B.Index;
    return properlyDominates(A.Node, B.Node);
  }

  /// Nearest common dominator of two reachable nodes, via the dominance
  /// intervals when one dominates the other and binary lifting otherwise:
  /// O(log depth).
  int commonDominator(int A, int B) const;

  /// Children of \p Node in the dominator tree.
  const std::vector<int> &children(int Node) const {
    return Children[Node];
  }

  /// Dominance queries answered since construction — the `dom.queries`
  /// counter. A relaxed atomic tally: the parallel placement and audit
  /// phases query from many workers at once, and each entry's query count
  /// is scheduling-independent, so the total stays exact at any job count.
  uint64_t queryCount() const {
    return Queries.load(std::memory_order_relaxed);
  }

  // --- Reference implementations (oracle-test support) -------------------

  /// The pre-interval chain-walk dominance test: walks idom links from B up
  /// to A's depth. Kept as the independent oracle for the randomized
  /// dominance test; the engine itself always uses dominates().
  bool dominatesLinear(int A, int B) const {
    int DA = Depth[A];
    while (Depth[B] > DA)
      B = IDom[B];
    return A == B;
  }

  /// Chain-walk nearest common dominator (oracle for commonDominator).
  int commonDominatorLinear(int A, int B) const {
    while (A != B) {
      while (Depth[A] > Depth[B])
        A = IDom[A];
      while (Depth[B] > Depth[A])
        B = IDom[B];
      if (A != B) {
        A = IDom[A];
        B = IDom[B];
      }
    }
    return A;
  }

private:
  DomTree() = default;

  static DomTree computeImpl(unsigned N, int Entry,
                             const std::vector<std::vector<int>> &Succs,
                             const std::vector<std::vector<int>> &Preds);

  /// Builds the DFS intervals and the binary-lifting table from
  /// IDom/Children (called once at the end of computeImpl).
  void buildQueryStructures(int Entry);

  std::vector<int> IDom;
  std::vector<int> Depth;
  std::vector<std::vector<int>> Children;
  /// DFS pre/post timestamps over the dominator tree; -1 for unreachable
  /// nodes (they nest inside nothing).
  std::vector<int> DfsIn;
  std::vector<int> DfsOut;
  /// Up[K][N] = the 2^K-th ancestor of N (entry saturates to itself).
  std::vector<std::vector<int>> Up;
  /// Relaxed atomic: the parallel placement/audit phases query from many
  /// workers, and the total is scheduling-independent (each entry issues a
  /// fixed number of queries), so dom.queries stays exact at any job count.
  mutable std::atomic<uint64_t> Queries{0};

public:
  // The atomic tally deletes the implicit copies; carry its value across
  // (trees are only copied/moved during construction, never mid-query).
  DomTree(const DomTree &O)
      : IDom(O.IDom), Depth(O.Depth), Children(O.Children), DfsIn(O.DfsIn),
        DfsOut(O.DfsOut), Up(O.Up), Queries(O.queryCount()) {}
  DomTree(DomTree &&O) noexcept
      : IDom(std::move(O.IDom)), Depth(std::move(O.Depth)),
        Children(std::move(O.Children)), DfsIn(std::move(O.DfsIn)),
        DfsOut(std::move(O.DfsOut)), Up(std::move(O.Up)),
        Queries(O.queryCount()) {}
  DomTree &operator=(const DomTree &O) {
    IDom = O.IDom;
    Depth = O.Depth;
    Children = O.Children;
    DfsIn = O.DfsIn;
    DfsOut = O.DfsOut;
    Up = O.Up;
    Queries.store(O.queryCount(), std::memory_order_relaxed);
    return *this;
  }
  DomTree &operator=(DomTree &&O) noexcept {
    IDom = std::move(O.IDom);
    Depth = std::move(O.Depth);
    Children = std::move(O.Children);
    DfsIn = std::move(O.DfsIn);
    DfsOut = std::move(O.DfsOut);
    Up = std::move(O.Up);
    Queries.store(O.queryCount(), std::memory_order_relaxed);
    return *this;
  }
};

} // namespace gca

#endif // GCA_CFG_DOMTREE_H
