//===- cfg/DomTree.h - Dominator tree ---------------------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative dominator tree (Cooper-Harvey-Kennedy) over the augmented CFG,
/// plus slot-level dominance queries. The placement algorithm's candidate
/// marking (paper Figure 9(e)) walks DomTreeParent links, and redundancy
/// elimination (Figure 9(f)) uses slot dominance ordering.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_CFG_DOMTREE_H
#define GCA_CFG_DOMTREE_H

#include "cfg/Cfg.h"

#include <vector>

namespace gca {

class DomTree {
public:
  /// Computes dominators of every node reachable from G.entry().
  static DomTree compute(const Cfg &G);

  /// Immediate dominator of \p Node (-1 for the entry node).
  int idom(int Node) const { return IDom[Node]; }

  /// Depth in the dominator tree (entry = 0).
  int depth(int Node) const { return Depth[Node]; }

  /// Reflexive node dominance.
  bool dominates(int A, int B) const;

  bool properlyDominates(int A, int B) const {
    return A != B && dominates(A, B);
  }

  /// Slot (program point) dominance: A dominates B iff every execution
  /// reaching point B has passed point A. Reflexive.
  bool slotDominates(const Slot &A, const Slot &B) const {
    if (A.Node == B.Node)
      return A.Index <= B.Index;
    return properlyDominates(A.Node, B.Node);
  }

  /// Children of \p Node in the dominator tree.
  const std::vector<int> &children(int Node) const {
    return Children[Node];
  }

private:
  DomTree() = default;

  std::vector<int> IDom;
  std::vector<int> Depth;
  std::vector<std::vector<int>> Children;
};

} // namespace gca

#endif // GCA_CFG_DOMTREE_H
