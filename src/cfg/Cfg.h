//===- cfg/Cfg.h - Augmented control flow graph -----------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The augmented CFG of the paper's Section 4.1 / Figure 7: basic blocks plus
/// explicit *preheader* and *postexit* nodes around every loop, with a
/// zero-trip edge from the preheader to the postexit. Preheaders dominate all
/// loop nodes and provide the canonical hoisting position for vectorized
/// communication; postexits carry the phi-exit definitions of the array SSA.
///
/// Placement points are "slots": (node, index) pairs where index j denotes
/// the program point immediately before the j-th statement of the node
/// (j == numStmts is the end of the node). Communication "placed immediately
/// after a definition d" is the slot following d's statement.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_CFG_CFG_H
#define GCA_CFG_CFG_H

#include "ir/Ast.h"

#include <string>
#include <vector>

namespace gca {

enum class NodeKind : uint8_t {
  Entry,
  Exit,
  Plain,
  Preheader,
  Header,
  Postexit,
};

const char *nodeKindName(NodeKind Kind);

/// One CFG node. Only Plain/Entry nodes carry statements.
struct CfgNode {
  int Id = -1;
  NodeKind Kind = NodeKind::Plain;
  std::vector<int> Succs;
  std::vector<int> Preds;
  /// Assign statements in execution order (loops/ifs are structure, not
  /// block contents).
  std::vector<const AssignStmt *> Stmts;
  /// Innermost loop containing this node, -1 at top level. Preheader and
  /// postexit nodes belong to the loop's *parent* (they are outside).
  int LoopId = -1;
};

/// One natural loop of the augmented CFG (they are all structured DO loops).
struct CfgLoop {
  int Id = -1;
  int Parent = -1; ///< Enclosing loop, -1 at top level.
  int Level = 0;   ///< 1 = outermost (the paper's nesting level NL).
  const LoopStmt *L = nullptr;
  int Preheader = -1;
  int Header = -1;
  int Postexit = -1;
};

/// A placement slot: the program point immediately before statement
/// \p Index of node \p Node (Index == node.Stmts.size() is the node's end).
struct Slot {
  int Node = -1;
  int Index = 0;

  bool isValid() const { return Node >= 0; }
  friend bool operator==(const Slot &A, const Slot &B) {
    return A.Node == B.Node && A.Index == B.Index;
  }
  friend bool operator<(const Slot &A, const Slot &B) {
    return A.Node != B.Node ? A.Node < B.Node : A.Index < B.Index;
  }
};

/// The augmented CFG of one routine, with loop structure, statement
/// positions, and the statement loop-nest map the dependence tests need.
class Cfg {
public:
  /// Builds the augmented CFG of \p R. The routine must be scalarized
  /// (element-wise assignments only) for the analyses to be precise, but the
  /// graph itself is well-defined for any routine.
  static Cfg build(const Routine &R);

  const Routine &routine() const { return *R; }

  // Nodes --------------------------------------------------------------

  unsigned numNodes() const { return static_cast<unsigned>(Nodes.size()); }
  const CfgNode &node(int Id) const { return Nodes[Id]; }
  int entry() const { return Entry; }
  int exit() const { return Exit; }

  // Loops --------------------------------------------------------------

  unsigned numLoops() const { return static_cast<unsigned>(Loops.size()); }
  const CfgLoop &loop(int Id) const { return Loops[Id]; }

  /// Nesting level of a node: number of loops containing it.
  int nestingLevel(int Node) const;

  /// Innermost loop of \p Node (-1 if none).
  int loopOf(int Node) const { return Nodes[Node].LoopId; }

  /// The loop at nesting level \p Level (1-based) on the chain enclosing
  /// \p Node; -1 when Level exceeds the node's nesting.
  int enclosingLoopAtLevel(int Node, int Level) const;

  // Statements -----------------------------------------------------------

  /// The node containing \p S (CfgNode(S) in the paper).
  int nodeOf(const AssignStmt *S) const;
  /// The index of \p S within its node.
  int indexOf(const AssignStmt *S) const;
  /// The slot immediately before \p S.
  Slot slotBefore(const AssignStmt *S) const;
  /// The slot immediately after \p S.
  Slot slotAfter(const AssignStmt *S) const;
  /// End-of-node slot (used for preheader/header placements).
  Slot slotAtEnd(int Node) const;

  // Dense slot numbering -------------------------------------------------
  //
  // Every slot of the routine has a dense id in [0, numSlots()), assigned
  // node-major / index-minor, so ascending id order coincides with
  // Slot::operator< (and hence with std::map<Slot, ...> iteration order).
  // The placement engine's sorted-id slot sets and per-slot tables are
  // built on these ids.

  /// Total number of slots: sum over nodes of (numStmts + 1).
  int numSlots() const { return static_cast<int>(SlotOfId.size()); }

  /// Dense id of \p S.
  int slotId(const Slot &S) const { return NodeSlotBase[S.Node] + S.Index; }

  /// The slot with dense id \p Id.
  const Slot &slotOfId(int Id) const { return SlotOfId[Id]; }

  /// Source pre-order position of \p S, for textual-order comparisons in the
  /// loop-independent dependence test.
  int preorderOf(const AssignStmt *S) const;

  /// The stack of loops (CfgLoop ids, outermost first) enclosing \p S in the
  /// AST. This is NL(S) long.
  const std::vector<int> &loopNestOf(const AssignStmt *S) const;

  /// The CfgLoop id created for \p L.
  int loopIdOf(const LoopStmt *L) const;
  /// The join node of \p I (where phi-merge defs live).
  int joinNodeOf(const IfStmt *I) const;

  /// Renders the graph for debugging.
  std::string str() const;

private:
  Cfg() = default;

  const Routine *R = nullptr;
  std::vector<CfgNode> Nodes;
  std::vector<CfgLoop> Loops;
  int Entry = -1;
  int Exit = -1;

  // Statement-id indexed maps.
  std::vector<int> StmtNode;
  std::vector<int> StmtIndex;
  std::vector<int> StmtPreorder;
  std::vector<std::vector<int>> StmtLoopNest;
  /// LoopStmt -> CfgLoop id; IfStmt -> join node id; -1 otherwise.
  std::vector<int> StmtAux;

  /// First slot id of each node (prefix sums of Stmts.size() + 1) and the
  /// id -> slot reverse map.
  std::vector<int> NodeSlotBase;
  std::vector<Slot> SlotOfId;
  void numberSlots();

  friend class CfgBuilder;
};

} // namespace gca

#endif // GCA_CFG_CFG_H
