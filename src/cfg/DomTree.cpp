//===- cfg/DomTree.cpp - Dominator tree -----------------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "cfg/DomTree.h"

#include <algorithm>
#include <cassert>

using namespace gca;

/// Computes a reverse-postorder of the nodes reachable from entry.
static std::vector<int> reversePostorder(const Cfg &G) {
  std::vector<int> Order;
  std::vector<char> Visited(G.numNodes(), 0);
  // Iterative DFS with explicit (node, next-successor) stack.
  std::vector<std::pair<int, unsigned>> Stack;
  Stack.emplace_back(G.entry(), 0);
  Visited[G.entry()] = 1;
  while (!Stack.empty()) {
    auto &[N, NextSucc] = Stack.back();
    const CfgNode &Node = G.node(N);
    if (NextSucc < Node.Succs.size()) {
      int S = Node.Succs[NextSucc++];
      if (!Visited[S]) {
        Visited[S] = 1;
        Stack.emplace_back(S, 0);
      }
      continue;
    }
    Order.push_back(N);
    Stack.pop_back();
  }
  std::reverse(Order.begin(), Order.end());
  return Order;
}

DomTree DomTree::compute(const Cfg &G) {
  DomTree T;
  unsigned N = G.numNodes();
  T.IDom.assign(N, -1);
  T.Depth.assign(N, 0);
  T.Children.assign(N, {});

  std::vector<int> RPO = reversePostorder(G);
  std::vector<int> RpoIndex(N, -1);
  for (int I = 0, E = static_cast<int>(RPO.size()); I != E; ++I)
    RpoIndex[RPO[I]] = I;

  int Entry = G.entry();
  T.IDom[Entry] = Entry; // Temporarily self, per CHK convention.

  auto intersect = [&](int A, int B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = T.IDom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = T.IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int Node : RPO) {
      if (Node == Entry)
        continue;
      int NewIDom = -1;
      for (int P : G.node(Node).Preds) {
        if (RpoIndex[P] < 0 || T.IDom[P] < 0)
          continue; // Unreachable or unprocessed predecessor.
        NewIDom = NewIDom < 0 ? P : intersect(P, NewIDom);
      }
      assert(NewIDom >= 0 && "reachable node with no processed predecessor");
      if (T.IDom[Node] != NewIDom) {
        T.IDom[Node] = NewIDom;
        Changed = true;
      }
    }
  }

  T.IDom[Entry] = -1;
  for (int Node : RPO) {
    if (Node == Entry)
      continue;
    T.Children[T.IDom[Node]].push_back(Node);
  }
  // Depths in RPO order: the idom of a node always precedes it in RPO.
  for (int Node : RPO)
    T.Depth[Node] = Node == Entry ? 0 : T.Depth[T.IDom[Node]] + 1;
  return T;
}

bool DomTree::dominates(int A, int B) const {
  while (Depth[B] > Depth[A])
    B = IDom[B];
  return A == B;
}
