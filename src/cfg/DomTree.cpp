//===- cfg/DomTree.cpp - Dominator tree -----------------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "cfg/DomTree.h"

#include <algorithm>
#include <cassert>

using namespace gca;

/// Computes a reverse-postorder of the nodes reachable from \p Entry.
static std::vector<int>
reversePostorder(const std::vector<std::vector<int>> &Succs, int Entry) {
  std::vector<int> Order;
  std::vector<char> Visited(Succs.size(), 0);
  // Iterative DFS with explicit (node, next-successor) stack.
  std::vector<std::pair<int, unsigned>> Stack;
  Stack.emplace_back(Entry, 0);
  Visited[Entry] = 1;
  while (!Stack.empty()) {
    auto &[N, NextSucc] = Stack.back();
    const std::vector<int> &NodeSuccs = Succs[N];
    if (NextSucc < NodeSuccs.size()) {
      int S = NodeSuccs[NextSucc++];
      if (!Visited[S]) {
        Visited[S] = 1;
        Stack.emplace_back(S, 0);
      }
      continue;
    }
    Order.push_back(N);
    Stack.pop_back();
  }
  std::reverse(Order.begin(), Order.end());
  return Order;
}

DomTree DomTree::computeImpl(unsigned N, int Entry,
                             const std::vector<std::vector<int>> &Succs,
                             const std::vector<std::vector<int>> &Preds) {
  DomTree T;
  T.IDom.assign(N, -1);
  T.Depth.assign(N, 0);
  T.Children.assign(N, {});

  std::vector<int> RPO = reversePostorder(Succs, Entry);
  std::vector<int> RpoIndex(N, -1);
  for (int I = 0, E = static_cast<int>(RPO.size()); I != E; ++I)
    RpoIndex[RPO[I]] = I;

  T.IDom[Entry] = Entry; // Temporarily self, per CHK convention.

  auto intersect = [&](int A, int B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = T.IDom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = T.IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int Node : RPO) {
      if (Node == Entry)
        continue;
      int NewIDom = -1;
      for (int P : Preds[Node]) {
        if (RpoIndex[P] < 0 || T.IDom[P] < 0)
          continue; // Unreachable or unprocessed predecessor.
        NewIDom = NewIDom < 0 ? P : intersect(P, NewIDom);
      }
      assert(NewIDom >= 0 && "reachable node with no processed predecessor");
      if (T.IDom[Node] != NewIDom) {
        T.IDom[Node] = NewIDom;
        Changed = true;
      }
    }
  }

  T.IDom[Entry] = -1;
  for (int Node : RPO) {
    if (Node == Entry)
      continue;
    T.Children[T.IDom[Node]].push_back(Node);
  }
  // Depths in RPO order: the idom of a node always precedes it in RPO.
  for (int Node : RPO)
    T.Depth[Node] = Node == Entry ? 0 : T.Depth[T.IDom[Node]] + 1;

  T.buildQueryStructures(Entry);
  return T;
}

DomTree DomTree::compute(const Cfg &G) {
  unsigned N = G.numNodes();
  std::vector<std::vector<int>> Succs(N), Preds(N);
  for (unsigned I = 0; I != N; ++I) {
    Succs[I] = G.node(I).Succs;
    Preds[I] = G.node(I).Preds;
  }
  return computeImpl(N, G.entry(), Succs, Preds);
}

DomTree DomTree::computeFromSuccessors(
    const std::vector<std::vector<int>> &Succs, int Entry) {
  std::vector<std::vector<int>> Preds(Succs.size());
  for (size_t I = 0; I != Succs.size(); ++I)
    for (int S : Succs[I])
      Preds[S].push_back(static_cast<int>(I));
  return computeImpl(static_cast<unsigned>(Succs.size()), Entry, Succs,
                     Preds);
}

void DomTree::buildQueryStructures(int Entry) {
  unsigned N = static_cast<unsigned>(IDom.size());
  DfsIn.assign(N, -1);
  DfsOut.assign(N, -1);

  // Pre/post timestamps from one DFS over the dominator tree. Reachable B
  // is in A's subtree iff In[A] <= In[B] && Out[B] <= Out[A].
  int Clock = 0;
  std::vector<std::pair<int, unsigned>> Stack;
  Stack.emplace_back(Entry, 0);
  DfsIn[Entry] = Clock++;
  int MaxDepth = 0;
  while (!Stack.empty()) {
    auto &[Node, NextChild] = Stack.back();
    if (NextChild < Children[Node].size()) {
      int C = Children[Node][NextChild++];
      DfsIn[C] = Clock++;
      MaxDepth = std::max(MaxDepth, Depth[C]);
      Stack.emplace_back(C, 0);
      continue;
    }
    DfsOut[Node] = Clock++;
    Stack.pop_back();
  }

  // Binary-lifting table. The entry (and every unreachable node) saturates
  // to itself so lifts never leave the array.
  int Levels = 1;
  while ((1 << Levels) <= MaxDepth)
    ++Levels;
  Up.assign(Levels, std::vector<int>(N));
  for (unsigned I = 0; I != N; ++I)
    Up[0][I] = IDom[I] >= 0 ? IDom[I] : static_cast<int>(I);
  for (int K = 1; K != Levels; ++K)
    for (unsigned I = 0; I != N; ++I)
      Up[K][I] = Up[K - 1][Up[K - 1][I]];
}

int DomTree::commonDominator(int A, int B) const {
  ++Queries;
  assert(DfsIn[A] >= 0 && DfsIn[B] >= 0 &&
         "common dominator of unreachable node");
  // Ancestor fast paths via the intervals.
  auto InSubtree = [&](int X, int Y) { // Y inside X's subtree.
    return DfsIn[X] <= DfsIn[Y] && DfsOut[Y] <= DfsOut[X];
  };
  if (InSubtree(A, B))
    return A;
  if (InSubtree(B, A))
    return B;
  // Lift the deeper node to the shallower's depth, then lift both while
  // their ancestors differ.
  if (Depth[A] < Depth[B])
    std::swap(A, B);
  int Delta = Depth[A] - Depth[B];
  for (int K = 0; Delta; ++K, Delta >>= 1)
    if (Delta & 1)
      A = Up[K][A];
  if (A == B)
    return A;
  for (int K = static_cast<int>(Up.size()) - 1; K >= 0; --K)
    if (Up[K][A] != Up[K][B]) {
      A = Up[K][A];
      B = Up[K][B];
    }
  return Up[0][A];
}
