//===- cfg/Cfg.cpp - Augmented control flow graph -------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include "support/StrUtil.h"

#include <cassert>

using namespace gca;

const char *gca::nodeKindName(NodeKind Kind) {
  switch (Kind) {
  case NodeKind::Entry:
    return "entry";
  case NodeKind::Exit:
    return "exit";
  case NodeKind::Plain:
    return "plain";
  case NodeKind::Preheader:
    return "preheader";
  case NodeKind::Header:
    return "header";
  case NodeKind::Postexit:
    return "postexit";
  }
  return "?";
}

namespace gca {

class CfgBuilder {
public:
  explicit CfgBuilder(const Routine &R) { G.R = &R; }

  Cfg take() { return std::move(G); }

  void run() {
    const Routine &R = *G.R;
    unsigned NumStmts = R.numStmts();
    G.StmtNode.assign(NumStmts, -1);
    G.StmtIndex.assign(NumStmts, -1);
    G.StmtPreorder.assign(NumStmts, -1);
    G.StmtLoopNest.assign(NumStmts, {});
    G.StmtAux.assign(NumStmts, -1);

    G.Entry = newNode(NodeKind::Entry);
    Cur = G.Entry;
    buildList(R.body());
    G.Exit = newNode(NodeKind::Exit);
    addEdge(Cur, G.Exit);
  }

private:
  int newNode(NodeKind Kind) {
    CfgNode N;
    N.Id = static_cast<int>(G.Nodes.size());
    N.Kind = Kind;
    N.LoopId = LoopStack.empty() ? -1 : LoopStack.back();
    G.Nodes.push_back(std::move(N));
    return G.Nodes.back().Id;
  }

  void addEdge(int From, int To) {
    G.Nodes[From].Succs.push_back(To);
    G.Nodes[To].Preds.push_back(From);
  }

  /// Opens a fresh Plain node as the current insertion block, linked from
  /// \p From.
  int freshBlockAfter(int From) {
    int N = newNode(NodeKind::Plain);
    addEdge(From, N);
    return N;
  }

  void buildList(const std::vector<Stmt *> &List) {
    for (const Stmt *S : List)
      buildStmt(S);
  }

  void buildStmt(const Stmt *S) {
    G.StmtPreorder[S->id()] = NextPreorder++;
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      CfgNode &N = G.Nodes[Cur];
      G.StmtNode[A->id()] = Cur;
      G.StmtIndex[A->id()] = static_cast<int>(N.Stmts.size());
      for (int LId : LoopStack)
        G.StmtLoopNest[A->id()].push_back(LId);
      N.Stmts.push_back(A);
      break;
    }
    case StmtKind::Loop: {
      const auto *L = cast<LoopStmt>(S);
      // Preheader and postexit live in the *enclosing* loop.
      int Pre = newNode(NodeKind::Preheader);
      addEdge(Cur, Pre);

      CfgLoop Loop;
      Loop.Id = static_cast<int>(G.Loops.size());
      Loop.Parent = LoopStack.empty() ? -1 : LoopStack.back();
      Loop.Level = static_cast<int>(LoopStack.size()) + 1;
      Loop.L = L;
      Loop.Preheader = Pre;
      G.Loops.push_back(Loop);
      int LoopId = Loop.Id;
      G.StmtAux[L->id()] = LoopId;

      LoopStack.push_back(LoopId);
      int Header = newNode(NodeKind::Header);
      G.Loops[LoopId].Header = Header;
      addEdge(Pre, Header);

      // Body chain.
      Cur = freshBlockAfter(Header);
      buildList(L->body());
      addEdge(Cur, Header); // Back edge.
      LoopStack.pop_back();

      int Post = newNode(NodeKind::Postexit);
      G.Loops[LoopId].Postexit = Post;
      addEdge(Header, Post); // Loop-exit edge.
      addEdge(Pre, Post);    // Zero-trip edge (Figure 7).

      Cur = freshBlockAfter(Post);
      break;
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      int Cond = Cur;
      // Then chain.
      Cur = freshBlockAfter(Cond);
      buildList(I->thenBody());
      int ThenEnd = Cur;
      // Else chain (a block exists even when the else body is empty, so the
      // join always has exactly two predecessors).
      Cur = freshBlockAfter(Cond);
      buildList(I->elseBody());
      int ElseEnd = Cur;
      int Join = newNode(NodeKind::Plain);
      G.StmtAux[I->id()] = Join;
      addEdge(ThenEnd, Join);
      addEdge(ElseEnd, Join);
      Cur = Join;
      break;
    }
    }
  }

  Cfg G;
  int Cur = -1;
  int NextPreorder = 0;
  std::vector<int> LoopStack;
};

} // namespace gca

Cfg Cfg::build(const Routine &R) {
  CfgBuilder B(R);
  B.run();
  Cfg G = B.take();
  G.numberSlots();
  return G;
}

void Cfg::numberSlots() {
  NodeSlotBase.assign(Nodes.size(), 0);
  int Next = 0;
  for (size_t N = 0; N != Nodes.size(); ++N) {
    NodeSlotBase[N] = Next;
    Next += static_cast<int>(Nodes[N].Stmts.size()) + 1;
  }
  SlotOfId.resize(Next);
  for (size_t N = 0; N != Nodes.size(); ++N)
    for (int I = 0, E = static_cast<int>(Nodes[N].Stmts.size()); I <= E; ++I)
      SlotOfId[NodeSlotBase[N] + I] = {static_cast<int>(N), I};
}

int Cfg::nestingLevel(int Node) const {
  int L = Nodes[Node].LoopId;
  return L < 0 ? 0 : Loops[L].Level;
}

int Cfg::enclosingLoopAtLevel(int Node, int Level) const {
  int L = Nodes[Node].LoopId;
  while (L >= 0 && Loops[L].Level > Level)
    L = Loops[L].Parent;
  if (L >= 0 && Loops[L].Level == Level)
    return L;
  return -1;
}

int Cfg::nodeOf(const AssignStmt *S) const {
  assert(S->id() < static_cast<int>(StmtNode.size()) && StmtNode[S->id()] >= 0 &&
         "statement not in CFG");
  return StmtNode[S->id()];
}

int Cfg::indexOf(const AssignStmt *S) const { return StmtIndex[S->id()]; }

Slot Cfg::slotBefore(const AssignStmt *S) const {
  return {nodeOf(S), indexOf(S)};
}

Slot Cfg::slotAfter(const AssignStmt *S) const {
  return {nodeOf(S), indexOf(S) + 1};
}

Slot Cfg::slotAtEnd(int Node) const {
  return {Node, static_cast<int>(Nodes[Node].Stmts.size())};
}

int Cfg::loopIdOf(const LoopStmt *L) const {
  assert(StmtAux[L->id()] >= 0 && "loop not in CFG");
  return StmtAux[L->id()];
}

int Cfg::joinNodeOf(const IfStmt *I) const {
  assert(StmtAux[I->id()] >= 0 && "if not in CFG");
  return StmtAux[I->id()];
}

int Cfg::preorderOf(const AssignStmt *S) const {
  return StmtPreorder[S->id()];
}

const std::vector<int> &Cfg::loopNestOf(const AssignStmt *S) const {
  return StmtLoopNest[S->id()];
}

std::string Cfg::str() const {
  std::string Out;
  for (const CfgNode &N : Nodes) {
    Out += strFormat("B%d [%s] loop=%d:", N.Id, nodeKindName(N.Kind),
                     N.LoopId);
    Out += " succs={";
    for (size_t I = 0; I < N.Succs.size(); ++I)
      Out += strFormat(I ? ",%d" : "%d", N.Succs[I]);
    Out += strFormat("} stmts=%d\n", static_cast<int>(N.Stmts.size()));
  }
  for (const CfgLoop &L : Loops)
    Out += strFormat("L%d level=%d parent=%d pre=B%d hdr=B%d post=B%d\n",
                     L.Id, L.Level, L.Parent, L.Preheader, L.Header,
                     L.Postexit);
  return Out;
}
