//===- core/Placement.cpp - Global communication placement ----------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "core/Placement.h"

#include "core/Detect.h"
#include "core/EarliestLatest.h"
#include "support/Stats.h"
#include "support/StrUtil.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>

using namespace gca;

const char *gca::strategyName(Strategy S) {
  switch (S) {
  case Strategy::Orig:
    return "orig";
  case Strategy::Earliest:
    return "nored";
  case Strategy::Global:
    return "comb";
  case Strategy::Optimal:
    return "optimal";
  case Strategy::EarliestCombine:
    return "earlycomb";
  }
  return "?";
}

const char *gca::decisionKindName(DecisionKind K) {
  switch (K) {
  case DecisionKind::Detected:
    return "detected";
  case DecisionKind::RangeComputed:
    return "range-computed";
  case DecisionKind::SubsetSlotCleared:
    return "subset-slot-cleared";
  case DecisionKind::RedundancyEliminated:
    return "redundancy-eliminated";
  case DecisionKind::PartiallyReduced:
    return "partially-reduced";
  case DecisionKind::CombinedIntoGroup:
    return "combined-into-group";
  case DecisionKind::GroupPlaced:
    return "group-placed";
  case DecisionKind::LoweredAs:
    return "lowered-as";
  }
  return "?";
}

/// "(B4,1)" rendering shared by decision details.
static std::string slotStr(const Slot &S) {
  if (!S.isValid())
    return "(-)";
  return strFormat("(B%d,%d)", S.Node, S.Index);
}

std::string CommPlan::decisionsStr() const {
  std::string Out;
  for (const DecisionEvent &E : Decisions) {
    Out += strFormat("  %-21s", decisionKindName(E.Kind));
    if (E.EntryId >= 0)
      Out += strFormat(" entry=%d", E.EntryId);
    if (E.OtherId >= 0)
      Out += strFormat(
          " %s=%d",
          E.Kind == DecisionKind::CombinedIntoGroup ||
                  E.Kind == DecisionKind::GroupPlaced ||
                  E.Kind == DecisionKind::LoweredAs
              ? "group"
              : "subsumer",
          E.OtherId);
    if (E.Where.isValid())
      Out += " @" + slotStr(E.Where);
    if (!E.Detail.empty())
      Out += " " + E.Detail;
    Out += "\n";
  }
  return Out;
}

int CommStats::totalGroups() const {
  int N = 0;
  for (int K : NumGroups)
    N += K;
  return N;
}

std::string CommStats::str() const {
  return strFormat("NNC=%d SUM=%d BCAST=%d GEN=%d (entries=%d elim=%d)",
                   groups(CommKind::Shift), groups(CommKind::Reduce),
                   groups(CommKind::Bcast), groups(CommKind::General),
                   NumEntries, NumEliminated);
}

int64_t gca::estimatePerProcBytes(const AnalysisContext &Ctx, const Asd &A,
                                  int NumProcs) {
  const ArrayDecl &Decl = Ctx.R.array(A.ArrayId);
  int64_t Elems = A.D.numElems();
  if (Elems < 0)
    Elems = Decl.numElems(); // Unknown extent: assume the whole array.
  unsigned TRank = std::max(1u, A.M.Sig.rank());
  int ProcsPerDim =
      std::max(1, static_cast<int>(std::llround(
                      std::pow(static_cast<double>(NumProcs),
                               1.0 / static_cast<double>(TRank)))));
  switch (A.M.Kind) {
  case CommKind::Shift: {
    // Boundary slab: extent along the shifted dim becomes |offset|; the
    // remaining extents are divided among the processors of the other dims.
    std::vector<unsigned> Dims;
    for (unsigned D = 0, E = Decl.rank(); D != E; ++D)
      if (Decl.Dist[D] != DistKind::Star)
        Dims.push_back(D);
    int64_t Slab = Elems;
    for (unsigned K = 0; K != A.M.Offsets.size(); ++K) {
      if (A.M.Offsets[K] == 0)
        continue;
      int64_t Count = K < Dims.size() ? A.D.dim(Dims[K]).count() : -1;
      if (Count > 0)
        Slab = Slab / Count * std::llabs(A.M.Offsets[K]);
    }
    int OtherProcs = 1;
    for (unsigned K = 1; K < TRank; ++K)
      OtherProcs *= ProcsPerDim;
    return Slab * Decl.ElemBytes / std::max(1, OtherProcs);
  }
  case CommKind::Reduce:
    return Decl.ElemBytes; // One partial result per reduction.
  case CommKind::Bcast: {
    std::vector<unsigned> Dims;
    for (unsigned D = 0, E = Decl.rank(); D != E; ++D)
      if (Decl.Dist[D] != DistKind::Star)
        Dims.push_back(D);
    int64_t Count = A.M.BcastDim < static_cast<int>(Dims.size())
                        ? A.D.dim(Dims[A.M.BcastDim]).count()
                        : 1;
    if (Count > 0)
      Elems /= Count;
    return Elems * Decl.ElemBytes / std::max(1, ProcsPerDim);
  }
  case CommKind::General:
    return Elems * Decl.ElemBytes / std::max(1, NumProcs);
  case CommKind::Local:
    return 0;
  }
  return 0;
}

namespace {

/// Shared machinery for the strategy drivers.
class Placer {
public:
  Placer(const AnalysisContext &Ctx, const PlacementOptions &Opts)
      : Ctx(Ctx), Opts(Opts) {}

  CommPlan run() {
    DomQueriesStart = Ctx.DT.queryCount();
    CommPlan Plan;
    Plan.Strat = Opts.Strat;
    Plan.Mem = std::make_shared<Arena>();
    Plan.Entries = detectCommunication(Ctx, Opts, &Plan.Decisions);
    AsdIdx.reset(static_cast<int>(Plan.Entries.size()));
    computeClasses(Plan);
    analyzeEntries(Plan);

    switch (Opts.Strat) {
    case Strategy::Orig:
      runOrig(Plan);
      break;
    case Strategy::Earliest:
      runEarliest(Plan);
      break;
    case Strategy::Global:
      runGlobal(Plan);
      break;
    case Strategy::Optimal:
      runOptimal(Plan);
      break;
    case Strategy::EarliestCombine:
      runEarliest(Plan);
      break;
    }

    finalizeGroups(Plan);
    computeStats(Plan);
    return Plan;
  }

private:
  /// Per-entry Earliest/Latest analysis (Sections 4.2-4.4), fanned across
  /// the placement pool when Opts.Jobs > 1. Entries are independent: the
  /// analysis reads only the immutable context (the dominance query tally
  /// is a relaxed atomic), and every entry's results land in its own slots
  /// of the chunk-indexed output, so scheduling cannot reorder anything.
  /// The serial commit loop then copies each candidate list into the plan's
  /// arena and appends the RangeComputed events in entry order — serial and
  /// parallel runs produce bitwise-identical plans and decision logs.
  void analyzeEntries(CommPlan &Plan) {
    const int N = static_cast<int>(Plan.Entries.size());
    struct Chunk {
      int Begin = 0, End = 0;
      std::vector<Slot> Slots;      ///< Concatenated candidate lists.
      std::vector<uint32_t> Offset; ///< End offset per entry in the chunk.
    };
    int NumChunks = parallelChunkCount(Opts.Pool, Opts.Jobs, N);
    std::vector<Chunk> Chunks(NumChunks);
    runChunked(Opts.Pool, N, NumChunks, [&](int Begin, int End, int CI) {
      Chunk &C = Chunks[CI];
      C.Begin = Begin;
      C.End = End;
      std::vector<Slot> Tmp;
      for (int I = Begin; I < End; ++I) {
        analyzeEntryPlacement(Ctx, Plan.Entries[I], Opts, Tmp);
        C.Slots.insert(C.Slots.end(), Tmp.begin(), Tmp.end());
        C.Offset.push_back(static_cast<uint32_t>(C.Slots.size()));
      }
    });
    for (const Chunk &C : Chunks) {
      uint32_t Prev = 0;
      for (int I = C.Begin; I < C.End; ++I) {
        uint32_t End = C.Offset[I - C.Begin];
        uint32_t Len = End - Prev;
        // Two arena copies: Candidates shrinks during elimination while
        // OriginalCandidates may later be pinned, so they diverge.
        Slot *Mem = Plan.Mem->allocArray<Slot>(2 * static_cast<size_t>(Len));
        std::copy(C.Slots.begin() + Prev, C.Slots.begin() + End, Mem);
        std::copy(Mem, Mem + Len, Mem + Len);
        CommEntry &E = Plan.Entries[I];
        E.Candidates = SlotSpan(Mem, Len);
        E.OriginalCandidates = SlotSpan(Mem + Len, Len);
        Prev = End;
        Plan.Decisions.push_back(
            {DecisionKind::RangeComputed, E.Id, -1, E.EarliestSlot,
             strFormat("earliest=%s latest=%s candidates=%d level=%d",
                       slotStr(E.EarliestSlot).c_str(),
                       slotStr(E.LatestSlot).c_str(), static_cast<int>(Len),
                       E.CommLevel)});
      }
    }
  }

  // --- Helpers ------------------------------------------------------------

  const Asd &asdAt(const CommEntry &E, int Level) {
    int32_t &Idx = AsdIdx.at(E.Id, Level);
    if (Idx < 0) {
      Idx = static_cast<int32_t>(AsdPool.size());
      AsdPool.push_back(asdOfEntry(Ctx, E, Level));
    }
    return AsdPool[Idx];
  }

  int slotLevel(const Slot &S) const { return Ctx.slotLevel(S); }

  int slotIdOf(const Slot &S) const { return Ctx.G.slotId(S); }

  /// Total order on slots by dominance depth (later slots order higher).
  bool slotLater(const Slot &A, const Slot &B) const {
    if (A.Node != B.Node)
      return Ctx.DT.depth(A.Node) > Ctx.DT.depth(B.Node);
    return A.Index > B.Index;
  }

  /// Reusable epoch-stamped integer table over dense slot ids: reset() is
  /// O(1), so the per-call cost of a mark/count sweep is the touched slots,
  /// not numSlots().
  class DenseTable {
  public:
    void ensure(int N) {
      if (static_cast<int>(Epoch.size()) < N) {
        Epoch.resize(N, 0);
        Val.resize(N, 0);
      }
    }
    void reset() { ++Cur; }
    int get(int I) const { return Epoch[I] == Cur ? Val[I] : 0; }
    void set(int I, int V) {
      Epoch[I] = Cur;
      Val[I] = V;
    }
    void inc(int I) { set(I, get(I) + 1); }

  private:
    std::vector<int> Epoch, Val;
    int Cur = 0;
  };

  /// Dense pattern-class ids. CompatClass equates entries whose mappings
  /// are mutually combinable: away from General, Mapping::compatibleWith is
  /// an equivalence relation keyed on (kind, template signature, and the
  /// kind's direction data — shift offset signs, reduction dims, broadcast
  /// source); General never matches anything (itself included) and gets a
  /// unique class. SubsumeClass additionally splits by array, since
  /// Asd::subsumedBy requires ArrayId equality and Mapping::subsumedBy
  /// implies compatibility. Bucketing the pairwise scans by these ids skips
  /// exactly the pairs the full scans reject on the cheap kind/signature
  /// checks, so it cannot change any decision.
  void computeClasses(const CommPlan &Plan) {
    std::map<std::string, int> CompatIds;
    std::map<std::pair<int, int>, int> SubsumeIds;
    CompatClass.resize(Plan.Entries.size());
    SubsumeClass.resize(Plan.Entries.size());
    for (const CommEntry &E : Plan.Entries) {
      std::string Key;
      if (E.M.Kind == CommKind::General) {
        Key = strFormat("G!%d", E.Id);
      } else {
        Key = strFormat("%d|", static_cast<int>(E.M.Kind));
        for (const auto &[Ext, Dist] : E.M.Sig.Dims)
          Key += strFormat("%lld/%d,", static_cast<long long>(Ext),
                           static_cast<int>(Dist));
        Key += "|";
        switch (E.M.Kind) {
        case CommKind::Shift:
          for (int64_t O : E.M.Offsets)
            Key += O > 0 ? '+' : O < 0 ? '-' : '0';
          break;
        case CommKind::Reduce:
          for (uint8_t D : E.M.ReduceDims)
            Key += D ? '+' : '.';
          break;
        case CommKind::Bcast:
          Key += strFormat("d%d=%lld", E.M.BcastDim,
                           static_cast<long long>(E.M.BcastPos));
          break;
        default:
          break;
        }
      }
      auto It = CompatIds.emplace(Key, static_cast<int>(CompatIds.size()));
      CompatClass[E.Id] = It.first->second;
      auto It2 = SubsumeIds.emplace(
          std::make_pair(E.ArrayId, It.first->second),
          static_cast<int>(SubsumeIds.size()));
      SubsumeClass[E.Id] = It2.first->second;
    }
    NumCompatClasses = static_cast<int>(CompatIds.size());
  }

  /// The latest slot in the (sorted ascending) intersection of candidate
  /// lists; invalid slot when the intersection is empty. A counting merge
  /// over dense slot ids: a slot of the first list is common iff every
  /// other list bumped its count. The first list is scanned in its own
  /// order with the same strict slotLater update as the original nested
  /// scan, so ties resolve to the same slot.
  Slot latestCommon(const std::vector<const SlotSpan *> &Lists) {
    if (Lists.empty())
      return Slot();
    SlotMarks.ensure(Ctx.G.numSlots());
    SlotMarks.reset();
    for (size_t I = 1; I < Lists.size(); ++I) {
      ++SlotSetMerges;
      for (const Slot &S : *Lists[I])
        SlotMarks.inc(slotIdOf(S));
    }
    int Needed = static_cast<int>(Lists.size()) - 1;
    Slot Best;
    for (const Slot &S : *Lists[0])
      if (SlotMarks.get(slotIdOf(S)) == Needed &&
          (!Best.isValid() || slotLater(S, Best)))
        Best = S;
    return Best;
  }

  /// Section shapes (per-dim counts, singleton dims squeezed) for the
  /// cross-array combining rule: the combined descriptor must refer to
  /// "identical sections of different arrays" (Section 4.7).
  static std::vector<int64_t> squeezedShape(const RegSection &D) {
    std::vector<int64_t> Out;
    for (unsigned I = 0, E = D.rank(); I != E; ++I) {
      int64_t C = D.dim(I).count();
      if (C != 1)
        Out.push_back(C);
    }
    return Out;
  }

  /// Combining admission test of Section 4.7 for adding entry \p E to a
  /// group currently holding \p Members at slot \p S. Only the global
  /// algorithm may combine across arrays; the orig/nored baselines perform
  /// same-array coalescing only.
  bool canJoinGroup(const CommGroup &G, const std::vector<CommEntry> &Entries,
                    const CommEntry &E, const Slot &S) {
    int Level = slotLevel(S);
    if (!G.M.compatibleWith(E.M))
      return false;
    bool CrossCombine = Opts.Strat == Strategy::Global ||
                        Opts.Strat == Strategy::Optimal ||
                        Opts.Strat == Strategy::EarliestCombine;
    if (!CrossCombine) {
      // Baselines only coalesce same-array data and never combine
      // reductions (combining is the new algorithm's contribution).
      if (E.M.Kind == CommKind::Reduce)
        return false;
      for (int M : G.Members)
        if (Entries[M].ArrayId != E.ArrayId)
          return false;
    }
    if (E.M.Kind == CommKind::Reduce)
      return true; // Combined payload is one value per reduction.

    const Asd &AE = asdAt(E, Level);
    int64_t Bytes = estimatePerProcBytes(Ctx, AE, Opts.NumProcs);
    for (int M : G.Members)
      Bytes += estimatePerProcBytes(Ctx, asdAt(Entries[M], Level),
                                    Opts.NumProcs);
    if (Bytes > Opts.CombineThresholdBytes)
      return false;

    for (int M : G.Members) {
      const Asd &AM = asdAt(Entries[M], Level);
      // Both same-array and cross-array combining use one union descriptor
      // (for different arrays it "refers to identical sections of different
      // arrays"); its size may exceed the combined size only by a small
      // constant (Section 4.7).
      if (AM.D.rank() == AE.D.rank()) {
        RegSection U;
        int64_t UnionElems, SumElems;
        if (!AM.D.unionApprox(AE.D, U, UnionElems, SumElems))
          return false;
        if (UnionElems > 0 && SumElems > 0 &&
            static_cast<double>(UnionElems) >
                Opts.MaxUnionGrowth * static_cast<double>(SumElems))
          return false;
      } else if (squeezedShape(AM.D) != squeezedShape(AE.D)) {
        // Different ranks (e.g. a 3-d plane against a 2-d array): require
        // identical squeezed shapes.
        return false;
      }
    }
    return true;
  }

  /// Buckets entries by chosen slot and forms compatibility groups.
  void buildGroups(CommPlan &Plan) {
    std::map<Slot, std::vector<int>> BySlot;
    for (const CommEntry &E : Plan.Entries)
      if (!E.Eliminated && E.Chosen.isValid())
        BySlot[E.Chosen].push_back(E.Id);

    for (auto &[S, Ids] : BySlot) {
      // Groups opened at this slot, indexed by the opener's compatibility
      // class. canJoinGroup rejects any cross-class entry at its very first
      // check (G.M stays the opener's mapping throughout buildGroups), so
      // only same-class groups need scanning; within a class the open order
      // is preserved, so the first accepting group is unchanged.
      std::map<int, std::vector<int>> GroupsHere;
      for (int Id : Ids) {
        CommEntry &E = Plan.Entries[Id];
        bool Joined = false;
        for (int GId : GroupsHere[CompatClass[Id]]) {
          CommGroup &G = Plan.Groups[GId];
          ++PairCompares;
          if (canJoinGroup(G, Plan.Entries, E, S)) {
            G.Members.push_back(Id);
            E.GroupId = GId;
            Plan.Decisions.push_back(
                {DecisionKind::CombinedIntoGroup, Id, GId, S,
                 strFormat("members=%d",
                           static_cast<int>(G.Members.size()))});
            Joined = true;
            break;
          }
        }
        if (Joined)
          continue;
        CommGroup G;
        G.Id = static_cast<int>(Plan.Groups.size());
        G.Placement = S;
        G.Kind = E.M.Kind;
        G.M = E.M;
        G.Members = {Id};
        E.GroupId = G.Id;
        Plan.Decisions.push_back(
            {DecisionKind::CombinedIntoGroup, Id, G.Id, S, "opened group"});
        Plan.Groups.push_back(std::move(G));
        GroupsHere[CompatClass[Id]].push_back(Plan.Groups.back().Id);
      }
    }

    // Attach eliminated entries to their subsumer's group.
    for (CommEntry &E : Plan.Entries) {
      if (!E.Eliminated)
        continue;
      int Leader = E.SubsumedBy;
      std::set<int> Seen;
      while (Leader >= 0 && Plan.Entries[Leader].Eliminated &&
             Seen.insert(Leader).second)
        Leader = Plan.Entries[Leader].SubsumedBy;
      if (Leader >= 0 && Plan.Entries[Leader].GroupId >= 0) {
        int GId = Plan.Entries[Leader].GroupId;
        Plan.Groups[GId].Attached.push_back(E.Id);
        E.GroupId = GId;
        Plan.Decisions.push_back({DecisionKind::CombinedIntoGroup, E.Id, GId,
                                  Plan.Groups[GId].Placement,
                                  "attached via subsumer"});
      }
    }
  }

  /// Final placement: each group moves to the latest position common to the
  /// candidate ranges of its members and attached entries (Section 4.7);
  /// groups that land on the same point and are mutually combinable merge
  /// (the motion often reunites entries the pruned-slot greedy separated);
  /// then each group's widest mapping and data descriptors are computed.
  void finalizeGroups(CommPlan &Plan) {
    for (CommGroup &G : Plan.Groups) {
      std::vector<const SlotSpan *> Lists;
      for (int Id : G.Members)
        Lists.push_back(&Plan.Entries[Id].OriginalCandidates);
      for (int Id : G.Attached)
        Lists.push_back(&Plan.Entries[Id].OriginalCandidates);
      Slot Best = latestCommon(Lists);
      if (Best.isValid())
        G.Placement = Best;
    }

    mergeCoplacedGroups(Plan);

    for (CommGroup &G : Plan.Groups) {
      int Level = slotLevel(G.Placement);
      // Widest mapping across members and attached entries.
      auto widen = [&](const CommEntry &E) {
        for (unsigned K = 0; K != G.M.Offsets.size(); ++K)
          if (std::llabs(E.M.Offsets[K]) > std::llabs(G.M.Offsets[K]))
            G.M.Offsets[K] = E.M.Offsets[K];
      };
      for (int Id : G.Members)
        widen(Plan.Entries[Id]);
      for (int Id : G.Attached)
        widen(Plan.Entries[Id]);

      // Data descriptors: union same-array sections where representable.
      G.Data.clear();
      G.DataAug.clear();
      auto addAsd = [&](const CommEntry &E) {
        Asd A = asdAt(E, Level);
        if (E.ReducedD)
          A.D = *E.ReducedD; // Partial redundancy: remainder only.
        for (size_t I = 0; I != G.Data.size(); ++I) {
          Asd &Existing = G.Data[I];
          if (Existing.ArrayId != A.ArrayId)
            continue;
          RegSection U;
          int64_t UE, SE;
          if (Existing.D.unionApprox(A.D, U, UE, SE)) {
            Existing.D = std::move(U);
            Existing.M = G.M;
            for (unsigned D = 0; D != E.Augment.size(); ++D) {
              G.DataAug[I][D][0] =
                  std::max(G.DataAug[I][D][0], E.Augment[D][0]);
              G.DataAug[I][D][1] =
                  std::max(G.DataAug[I][D][1], E.Augment[D][1]);
            }
            return;
          }
        }
        A.M = G.M;
        G.Data.push_back(std::move(A));
        G.DataAug.push_back(E.Augment);
      };
      for (int Id : G.Members)
        addAsd(Plan.Entries[Id]);
      // Attached entries' data must be covered by the group descriptors;
      // widen the union to include them.
      for (int Id : G.Attached)
        addAsd(Plan.Entries[Id]);
      Plan.Decisions.push_back(
          {DecisionKind::GroupPlaced, -1, G.Id, G.Placement,
           strFormat("kind=%s members=%d attached=%d data=%d",
                     commKindName(G.Kind),
                     static_cast<int>(G.Members.size()),
                     static_cast<int>(G.Attached.size()),
                     static_cast<int>(G.Data.size()))});
    }
  }

  /// Merges groups that finalized onto the same slot when every member of
  /// one can join the other (same-kind, compatible mapping, size rules).
  void mergeCoplacedGroups(CommPlan &Plan) {
    if (Opts.Strat != Strategy::Global && Opts.Strat != Strategy::Optimal)
      return;
    // Merge partners per (final slot, compatibility class): a merge needs
    // equal placements and member-wise compatible mappings, and both are
    // invariant under merging (offset widening keeps the sign pattern that
    // keys the class), so only same-bucket groups can ever pass the checks.
    // Buckets list group ids ascending — the original inner-scan order.
    std::map<std::pair<int, int>, std::vector<int>> Partners;
    for (const CommGroup &G : Plan.Groups)
      Partners[{slotIdOf(G.Placement), CompatClass[G.Members[0]]}].push_back(
          G.Id);
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (CommGroup &G1 : Plan.Groups) {
        if (G1.Members.empty())
          continue;
        for (int G2Id : Partners[{slotIdOf(G1.Placement),
                                  CompatClass[G1.Members[0]]}]) {
          CommGroup &G2 = Plan.Groups[G2Id];
          if (G2.Id == G1.Id || G2.Members.empty())
            continue;
          if (!(G1.Placement == G2.Placement) || G1.Kind != G2.Kind)
            continue;
          ++PairCompares;
          bool AllJoin = true;
          for (int Id : G2.Members)
            AllJoin &= canJoinGroup(G1, Plan.Entries, Plan.Entries[Id],
                                    G1.Placement);
          if (!AllJoin)
            continue;
          for (int Id : G2.Members) {
            G1.Members.push_back(Id);
            Plan.Entries[Id].GroupId = G1.Id;
          }
          for (int Id : G2.Attached) {
            G1.Attached.push_back(Id);
            Plan.Entries[Id].GroupId = G1.Id;
          }
          for (unsigned K = 0; K != G1.M.Offsets.size(); ++K)
            if (std::llabs(G2.M.Offsets[K]) > std::llabs(G1.M.Offsets[K]))
              G1.M.Offsets[K] = G2.M.Offsets[K];
          G2.Members.clear();
          G2.Attached.clear();
          Progress = true;
        }
      }
    }
    // Compact: drop emptied groups and renumber.
    std::vector<CommGroup> Kept;
    for (CommGroup &G : Plan.Groups) {
      if (G.Members.empty())
        continue;
      int NewId = static_cast<int>(Kept.size());
      for (int Id : G.Members)
        Plan.Entries[Id].GroupId = NewId;
      for (int Id : G.Attached)
        Plan.Entries[Id].GroupId = NewId;
      G.Id = NewId;
      Kept.push_back(std::move(G));
    }
    Plan.Groups = std::move(Kept);
  }

  void computeStats(CommPlan &Plan) {
    Plan.Stats = CommStats();
    Plan.Stats.NumEntries = static_cast<int>(Plan.Entries.size());
    for (const CommEntry &E : Plan.Entries)
      Plan.Stats.NumEliminated += E.Eliminated;
    for (const CommGroup &G : Plan.Groups)
      ++Plan.Stats.NumGroups[static_cast<int>(G.Kind)];
    if (StatsRegistry *S = Opts.Stats) {
      S->add("placement.entries-detected", Plan.Stats.NumEntries);
      S->add("placement.redundancy-eliminated", Plan.Stats.NumEliminated);
      S->add("placement.groups", Plan.Stats.totalGroups());
      int64_t Combined = 0;
      for (const CommGroup &G : Plan.Groups)
        Combined += G.Members.size() > 1;
      S->add("placement.combined-groups", Combined);
      S->add("dom.queries",
             static_cast<int64_t>(Ctx.DT.queryCount() - DomQueriesStart));
      S->add("placement.pair-compares", PairCompares);
      S->add("placement.slotset-merges", SlotSetMerges);
    }
  }

  // --- Strategy: orig (message vectorization only) -------------------------

  void runOrig(CommPlan &Plan) {
    for (CommEntry &E : Plan.Entries)
      E.Chosen = E.LatestSlot;
    buildGroups(Plan);
    // No global motion: groups stay at the vectorized position.
    for (CommGroup &G : Plan.Groups)
      pinGroup(Plan, G);
  }

  /// Prevents finalizeGroups from moving this group: collapse the members'
  /// original candidate lists to the chosen slot.
  void pinGroup(CommPlan &Plan, CommGroup &G) {
    for (int Id : G.Members)
      Plan.Entries[Id].OriginalCandidates.assignSingle(G.Placement);
  }

  // --- Strategy: nored (earliest placement + redundancy elimination) -------

  void runEarliest(CommPlan &Plan) {
    for (CommEntry &E : Plan.Entries)
      E.Chosen = E.EarliestSlot;
    // Subsumer candidates per subsume class (ascending entry id, the
    // original scan order): descriptor coverage requires same array and
    // mapping class, so entries of other classes can never subsume.
    std::map<int, std::vector<int>> ClassBuckets;
    for (const CommEntry &E : Plan.Entries)
      ClassBuckets[SubsumeClass[E.Id]].push_back(E.Id);
    // Classic redundancy elimination: an entry whose descriptor is covered
    // by one placed at a dominating (or equal, lower-id) slot is dropped.
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (CommEntry &C1 : Plan.Entries) {
        if (C1.Eliminated)
          continue;
        for (int I2 : ClassBuckets[SubsumeClass[C1.Id]]) {
          CommEntry &C2 = Plan.Entries[I2];
          if (C2.Id == C1.Id || C2.Eliminated)
            continue;
          ++PairCompares;
          if (!Ctx.DT.slotDominates(C2.Chosen, C1.Chosen))
            continue;
          // Availability kill: C2's data must still be fresh at C1's use,
          // i.e. C2 fires after the last definition interfering with C1's
          // data — which is exactly C1's Earliest point.
          if (!Ctx.DT.slotDominates(C1.EarliestSlot, C2.Chosen))
            continue;
          const Asd &A1 = asdAt(C1, slotLevel(C1.Chosen));
          const Asd &A2 = asdAt(C2, slotLevel(C2.Chosen));
          if (!A1.subsumedBy(A2))
            continue;
          // Symmetric pairs (equal descriptors at the same slot): keep the
          // lower id.
          if (C1.Chosen == C2.Chosen && A2.subsumedBy(A1) && C2.Id > C1.Id)
            continue;
          C1.Eliminated = true;
          C1.SubsumedBy = C2.Id;
          Plan.Decisions.push_back(
              {DecisionKind::RedundancyEliminated, C1.Id, C2.Id, C1.Chosen,
               "covered by dominating communication"});
          Progress = true;
          break;
        }
      }
    }
    // Partial redundancy ([14]): an entry whose descriptor is only
    // partially covered by an earlier dominating communication sends the
    // remainder. (The global algorithm instead eliminates such entries
    // outright by moving them later; Section 4.6.)
    if (Opts.PartialRedundancy) {
      // Definitions that could invalidate delivered data, with their
      // (fully expanded) write sections.
      std::vector<std::pair<const AssignStmt *, RegSection>> Defs;
      Ctx.R.forEachStmt([&](Stmt *St) {
        auto *A = dyn_cast<AssignStmt>(St);
        if (A && !A->lhsIsScalar())
          Defs.emplace_back(A, Ctx.sectionOfRef(A->lhs(), 0));
      });
      for (CommEntry &C2 : Plan.Entries) {
        if (C2.Eliminated || C2.M.Kind == CommKind::Reduce)
          continue;
        // Covering entries must share C2's array and mapping class (the
        // scan checks exactly that below), so only the class bucket can
        // qualify.
        for (int I1 : ClassBuckets[SubsumeClass[C2.Id]]) {
          CommEntry &C1 = Plan.Entries[I1];
          if (C1.Id == C2.Id || C1.Eliminated)
            continue;
          ++PairCompares;
          if (!Ctx.DT.slotDominates(C1.Chosen, C2.Chosen))
            continue;
          const Asd &A1 = asdAt(C1, slotLevel(C1.Chosen));
          const Asd &A2 = asdAt(C2, slotLevel(C2.Chosen));
          if (A1.ArrayId != A2.ArrayId || !A2.M.subsumedBy(A1.M))
            continue;
          // Freshness: no definition executing after C1's communication may
          // touch the data C1 delivered before C2's use. Conservatively,
          // any definition not provably *before* C1's communication (its
          // after-point dominating C1's slot) is suspect — this covers
          // loop-carried kills and defs inside branches.
          bool Fresh = true;
          // A definition is provably before slot P when its after-point
          // dominates P, or when the postexit of one of its enclosing loops
          // does (the zero-trip edge keeps loop bodies from dominating
          // anything after the loop).
          auto executesBefore = [&](const AssignStmt *D, const Slot &P) {
            if (Ctx.DT.slotDominates(Ctx.G.slotAfter(D), P))
              return true;
            for (int L : Ctx.G.loopNestOf(D)) {
              Slot Post{Ctx.G.loop(L).Postexit, 0};
              if (Ctx.DT.slotDominates(Post, P))
                return true;
            }
            return false;
          };
          for (const auto &[D, Sec] : Defs) {
            if (D->lhs().ArrayId != A1.ArrayId)
              continue;
            if (executesBefore(D, C1.Chosen))
              continue; // Strictly before the covering communication.
            if (Sec.mayIntersect(A1.D)) {
              Fresh = false;
              break;
            }
          }
          if (!Fresh)
            continue;
          const RegSection &Cur = C2.ReducedD ? *C2.ReducedD : A2.D;
          RegSection Rem;
          if (Cur.difference(A1.D, Rem)) {
            C2.ReducedD = std::move(Rem);
            Plan.Decisions.push_back(
                {DecisionKind::PartiallyReduced, C2.Id, C1.Id, C2.Chosen,
                 "remainder-only send"});
          }
        }
      }
    }
    buildGroups(Plan);
    for (CommGroup &G : Plan.Groups)
      pinGroup(Plan, G);
  }

  // --- Strategy: comb (the paper's global algorithm) ------------------------

  void subsetElimination(CommPlan &Plan) {
    // CommSet(S1) subset-of CommSet(S2) -> empty CommSet(S1) (Section 4.5).
    //
    // Indexed form of the quadratic slot-pair scan. Per pass, each slot's
    // member set and each entry's candidate set are snapshotted as sorted
    // dense ids. A slot S2 can cover S1 only if every member of S1 still
    // listed S2 at pass start — i.e. S2 lies in the intersection of the
    // members' snapshot candidate lists — so instead of testing S1 against
    // every other slot, we enumerate that intersection in ascending slot-id
    // order (the iteration order of the original std::map scan) and apply
    // the original size/equality/tie checks. A cleared slot's member set is
    // treated as empty for the rest of the pass, exactly as the original's
    // in-place Set1.clear() did; per-entry candidate removals never feed
    // back into a pass in either form, because the scan works off the
    // snapshot.
    int64_t SlotsCleared = 0;
    int NumSlots = Ctx.G.numSlots();
    bool Progress = true;
    while (Progress) {
      Progress = false;
      // Pass-start snapshot: per-entry sorted candidate ids and per-slot
      // member lists (ascending entry id).
      std::vector<std::vector<int>> CandIds(Plan.Entries.size());
      std::vector<std::vector<int>> Members(NumSlots);
      std::vector<int> UsedSlots;
      for (const CommEntry &E : Plan.Entries)
        for (const Slot &S : E.Candidates) {
          int Id = slotIdOf(S);
          CandIds[E.Id].push_back(Id);
          if (Members[Id].empty())
            UsedSlots.push_back(Id);
          Members[Id].push_back(E.Id);
        }
      for (std::vector<int> &V : CandIds)
        std::sort(V.begin(), V.end());
      std::sort(UsedSlots.begin(), UsedSlots.end());
      std::vector<char> Cleared(NumSlots, 0);

      for (int S1Id : UsedSlots) {
        if (Cleared[S1Id])
          continue;
        const std::vector<int> &Set1 = Members[S1Id];
        Slot S1 = Ctx.G.slotOfId(S1Id);
        // Enumerate candidate cover slots: the intersection of the members'
        // snapshot candidate lists, via the smallest list + binary probes.
        const std::vector<int> *Smallest = &CandIds[Set1[0]];
        for (int Id : Set1)
          if (CandIds[Id].size() < Smallest->size())
            Smallest = &CandIds[Id];
        for (int S2Id : *Smallest) {
          if (S2Id == S1Id || Cleared[S2Id])
            continue;
          size_t Size2 = Members[S2Id].size();
          if (Set1.size() > Size2)
            continue;
          ++PairCompares;
          bool Subset = true;
          for (int Id : Set1) {
            ++SlotSetMerges;
            if (!std::binary_search(CandIds[Id].begin(), CandIds[Id].end(),
                                    S2Id)) {
              Subset = false;
              break;
            }
          }
          if (!Subset)
            continue;
          Slot S2 = Ctx.G.slotOfId(S2Id);
          // Equal sets: empty the earlier slot (the final latest-common
          // step recovers any flexibility given up here).
          if (Set1.size() == Size2 && !slotLater(S2, S1))
            continue;
          for (int Id : Set1)
            Plan.Entries[Id].Candidates.removeValue(S1);
          Plan.Decisions.push_back(
              {DecisionKind::SubsetSlotCleared, -1, -1, S1,
               strFormat("covered by %s; %d entries affected",
                         slotStr(S2).c_str(),
                         static_cast<int>(Set1.size()))});
          Cleared[S1Id] = 1;
          ++SlotsCleared;
          Progress = true;
          break;
        }
      }
    }
    if (Opts.Stats && SlotsCleared)
      Opts.Stats->add("placement.subset-eliminated", SlotsCleared);
  }

  void redundancyElimination(CommPlan &Plan) {
    // Figure 9(f), with the dominance-ordered disabling of the subsumed
    // entry's candidates. The subsumer scan per (slot, entry) is bucketed
    // by SubsumeClass: Asd::subsumedBy requires same array, kind,
    // signature, and direction data, so entries of other classes can never
    // subsume and skipping them changes nothing.
    bool Progress = true;
    while (Progress) {
      Progress = false;
      // Member lists per slot id (ascending — the original std::map<Slot>
      // order) with a per-class index for the subsumer scan.
      std::map<int, std::vector<int>> SlotSet;
      for (const CommEntry &E : Plan.Entries)
        if (!E.Eliminated)
          for (const Slot &S : E.Candidates)
            SlotSet[slotIdOf(S)].push_back(E.Id);

      for (auto &[SId, Ids] : SlotSet) {
        Slot S = Ctx.G.slotOfId(SId);
        int Level = slotLevel(S);
        // Class index of this slot's members; entry order within a bucket
        // stays ascending, so the first accepted subsumer is unchanged.
        std::map<int, std::vector<int>> Buckets;
        for (int Id : Ids)
          Buckets[SubsumeClass[Id]].push_back(Id);
        for (int I1 : Ids) {
          CommEntry &C1 = Plan.Entries[I1];
          if (C1.Eliminated || C1.Candidates.empty())
            continue;
          for (int I2 : Buckets[SubsumeClass[I1]]) {
            if (I1 == I2)
              continue;
            CommEntry &C2 = Plan.Entries[I2];
            if (C2.Eliminated)
              continue;
            ++PairCompares;
            const Asd &A1 = asdAt(C1, Level);
            const Asd &A2 = asdAt(C2, Level);
            if (!A1.subsumedBy(A2))
              continue;
            // Equal descriptors: deterministic victim (higher id).
            if (A2.subsumedBy(A1) && I1 < I2)
              continue;
            // Never let an entry subsume its own (transitive) subsumer.
            if (isTransitiveSubsumer(Plan, I1, I2))
              continue;
            // Disable C1 at S and every slot S dominates.
            size_t BeforeSize = C1.Candidates.size();
            SlotSpan &Cand = C1.Candidates;
            Slot SCopy = S;
            Cand.removeIf([&](const Slot &X) {
              return Ctx.DT.slotDominates(SCopy, X);
            });
            if (Cand.size() != BeforeSize)
              Progress = true;
            if (Cand.empty()) {
              C1.Eliminated = true;
              C1.SubsumedBy = I2;
              Plan.Decisions.push_back(
                  {DecisionKind::RedundancyEliminated, I1, I2, S,
                   "descriptor subsumed at common slot"});
              // The subsumer must be placeable inside the victim's safe
              // range: restrict it (S itself is always common).
              restrictTo(C2, C1.OriginalCandidates);
              // The subsumer also inherits any diagonal-phase linkage.
              C2.DiagIds.insert(C2.DiagIds.end(), C1.DiagIds.begin(),
                                C1.DiagIds.end());
            }
            break;
          }
        }
      }
    }
  }

  /// True if \p Subsumer is transitively recorded as subsumed by \p Entry.
  static bool isTransitiveSubsumer(const CommPlan &Plan, int Entry,
                                   int Subsumer) {
    int Cur = Subsumer;
    std::set<int> Seen;
    while (Cur >= 0 && Seen.insert(Cur).second) {
      if (Cur == Entry)
        return true;
      Cur = Plan.Entries[Cur].SubsumedBy;
    }
    return false;
  }

  /// Intersects \p E's candidates with \p Allowed (keeps at least one slot;
  /// callers guarantee nonempty intersection). Membership tests run against
  /// the sorted dense ids of \p Allowed; \p E's candidate order is kept.
  void restrictTo(CommEntry &E, const SlotSpan &Allowed) {
    ++SlotSetMerges;
    std::vector<int> &AllowedIds = RestrictScratch;
    AllowedIds.clear();
    AllowedIds.reserve(Allowed.size());
    for (const Slot &S : Allowed)
      AllowedIds.push_back(slotIdOf(S));
    std::sort(AllowedIds.begin(), AllowedIds.end());
    SlotSpan &Cand = E.Candidates;
    auto Outside = [&](const Slot &S) {
      return !std::binary_search(AllowedIds.begin(), AllowedIds.end(),
                                 slotIdOf(S));
    };
    // Keep the original set when the intersection would be empty (callers
    // guarantee nonempty, but stay defensive like the vector version).
    bool AnyKept = false;
    for (const Slot &S : Cand)
      AnyKept |= !Outside(S);
    if (AnyKept)
      Cand.removeIf(Outside);
  }

  void greedyChoose(CommPlan &Plan) {
    // Figure 9(g): most-constrained entry first; each picks the candidate
    // where it can combine with the most other entries (ties toward the
    // latest slot, which reduces buffer/cache contention — Section 4.7).
    // Axis phases of one decomposed diagonal choose jointly and land on a
    // common slot, so the overlap forwarding order of Section 2.2 holds.
    std::map<int, std::vector<int>> Units; // DiagId -> entries.
    std::vector<int> UnitOf(Plan.Entries.size(), -1);
    for (const CommEntry &E : Plan.Entries) {
      if (E.Eliminated)
        continue;
      for (int D : E.DiagIds) {
        Units[D].push_back(E.Id);
        UnitOf[E.Id] = D;
      }
    }
    // Merge entries that share any DiagId into one unit (rare chains).
    // Entries with several DiagIds keep the first as canonical.

    std::vector<std::vector<int>> Work; // Units of entries to place.
    std::vector<char> Seen(Plan.Entries.size(), 0);
    for (const CommEntry &E : Plan.Entries) {
      if (E.Eliminated || Seen[E.Id])
        continue;
      std::vector<int> Unit = {E.Id};
      Seen[E.Id] = 1;
      for (int D : E.DiagIds)
        for (int Sib : Units[D])
          if (!Seen[Sib]) {
            Seen[Sib] = 1;
            Unit.push_back(Sib);
          }
      Work.push_back(std::move(Unit));
    }
    std::sort(Work.begin(), Work.end(),
              [&](const std::vector<int> &A, const std::vector<int> &B) {
                size_t CA = Plan.Entries[A[0]].Candidates.size();
                size_t CB = Plan.Entries[B[0]].Candidates.size();
                return CA != CB ? CA < CB : A[0] < B[0];
              });

    // Live candidate counts per (slot, compatibility class), maintained as
    // units pin their slots: countAt(E, S) = how many *other* live entries
    // of E's class currently list S. compatibleWith partitions non-General
    // entries into exactly these classes (General never matches, and its
    // unique class only ever holds E itself, which the self-term removes),
    // so the count equals the original per-entry scan.
    int NumSlots = Ctx.G.numSlots();
    // Flat [slot][class] count matrix: one allocation, cache-friendly rows.
    std::vector<int> ClassCount(
        static_cast<size_t>(NumSlots) * NumCompatClasses, 0);
    auto cellOf = [&](int SlotId, int Cls) -> int & {
      return ClassCount[static_cast<size_t>(SlotId) * NumCompatClasses + Cls];
    };
    std::vector<std::vector<int>> SortedCand(Plan.Entries.size());
    for (const CommEntry &E : Plan.Entries) {
      if (E.Eliminated)
        continue;
      for (const Slot &S : E.Candidates) {
        int Id = slotIdOf(S);
        cellOf(Id, CompatClass[E.Id])++;
        SortedCand[E.Id].push_back(Id);
      }
      std::sort(SortedCand[E.Id].begin(), SortedCand[E.Id].end());
    }
    auto countAt = [&](const CommEntry &E, const Slot &S) {
      ++PairCompares;
      int Id = slotIdOf(S);
      int Count = cellOf(Id, CompatClass[E.Id]);
      // Exclude E itself when it still lists S.
      if (std::binary_search(SortedCand[E.Id].begin(),
                             SortedCand[E.Id].end(), Id))
        --Count;
      return Count;
    };
    // Pins entry E to exactly \p S, keeping the counts in sync.
    auto pinTo = [&](CommEntry &E, const Slot &S) {
      int Cls = CompatClass[E.Id];
      for (int Id : SortedCand[E.Id])
        cellOf(Id, Cls)--;
      int SId = slotIdOf(S);
      cellOf(SId, Cls)++;
      SortedCand[E.Id] = {SId};
      E.Candidates.assignSingle(S);
      E.Chosen = S;
    };

    for (const std::vector<int> &Unit : Work) {
      // Common candidate slots of the unit: filter the first member's list
      // in place (its order is preserved) against a dense mark of each
      // later member's list.
      SlotMarks.ensure(NumSlots);
      const SlotSpan &Cand0 = Plan.Entries[Unit[0]].Candidates;
      std::vector<Slot> Common(Cand0.begin(), Cand0.end());
      for (size_t I = 1; I < Unit.size(); ++I) {
        ++SlotSetMerges;
        SlotMarks.reset();
        for (const Slot &S : Plan.Entries[Unit[I]].Candidates)
          SlotMarks.set(slotIdOf(S), 1);
        Common.erase(std::remove_if(Common.begin(), Common.end(),
                                    [&](const Slot &S) {
                                      return !SlotMarks.get(slotIdOf(S));
                                    }),
                     Common.end());
      }
      // Subset elimination may have pruned the live sets apart; any original
      // candidate is still a *safe* position (pruning is an optimization),
      // so fall back to the intersection of the original ranges.
      if (Common.empty() && Unit.size() > 1) {
        const SlotSpan &Orig0 = Plan.Entries[Unit[0]].OriginalCandidates;
        Common.assign(Orig0.begin(), Orig0.end());
        for (size_t I = 1; I < Unit.size(); ++I) {
          ++SlotSetMerges;
          SlotMarks.reset();
          for (const Slot &S : Plan.Entries[Unit[I]].OriginalCandidates)
            SlotMarks.set(slotIdOf(S), 1);
          Common.erase(std::remove_if(Common.begin(), Common.end(),
                                      [&](const Slot &S) {
                                        return !SlotMarks.get(slotIdOf(S));
                                      }),
                       Common.end());
        }
      }
      // A unit with no common slot at all degrades to independent choice
      // (cannot happen for phases of one use, which share their range).
      if (Common.empty()) {
        for (int Id : Unit)
          Common.push_back(Plan.Entries[Id].Candidates.front());
        for (size_t I = 0; I != Unit.size(); ++I)
          pinTo(Plan.Entries[Unit[I]], Common[I]);
        continue;
      }
      Slot BestSlot = Common.front();
      int BestCount = -1;
      for (const Slot &S : Common) {
        int Count = 0;
        for (int Id : Unit)
          Count += countAt(Plan.Entries[Id], S);
        if (Count > BestCount ||
            (Count == BestCount && slotLater(S, BestSlot))) {
          BestCount = Count;
          BestSlot = S;
        }
      }
      for (int Id : Unit)
        pinTo(Plan.Entries[Id], BestSlot);
    }
  }

  void runGlobal(CommPlan &Plan) {
    subsetElimination(Plan);
    redundancyElimination(Plan);
    greedyChoose(Plan);
    buildGroups(Plan);
    // finalizeGroups (caller) applies the latest-common-position motion.
  }

  // --- Strategy: optimal (exhaustive, Section 6.1 ablation) ----------------

  void runOptimal(CommPlan &Plan) {
    // Reuse elimination phases (they are safe), then search the candidate
    // cross-product for the placement minimizing the number of groups.
    subsetElimination(Plan);
    redundancyElimination(Plan);

    std::vector<int> Active;
    for (const CommEntry &E : Plan.Entries)
      if (!E.Eliminated)
        Active.push_back(E.Id);

    double Space = 1;
    for (int Id : Active)
      Space *= static_cast<double>(Plan.Entries[Id].Candidates.size());
    if (Active.size() > 16 || Space > 2e6) {
      // Too large to enumerate: fall back to the greedy heuristic.
      greedyChoose(Plan);
      buildGroups(Plan);
      return;
    }

    std::vector<Slot> Best(Active.size());
    std::vector<Slot> Cur(Active.size());
    int BestGroups = -1;

    // Counts groups for a full assignment without materializing them.
    auto countGroups = [&]() {
      std::map<Slot, std::vector<int>> BySlot;
      for (size_t I = 0; I != Active.size(); ++I)
        BySlot[Cur[I]].push_back(Active[I]);
      int N = 0;
      for (auto &[S, Ids] : BySlot) {
        std::vector<CommGroup> Groups;
        for (int Id : Ids) {
          CommEntry &E = Plan.Entries[Id];
          bool Joined = false;
          for (CommGroup &G : Groups) {
            if (canJoinGroup(G, Plan.Entries, E, S)) {
              G.Members.push_back(Id);
              Joined = true;
              break;
            }
          }
          if (!Joined) {
            CommGroup G;
            G.Kind = E.M.Kind;
            G.M = E.M;
            G.Members = {Id};
            Groups.push_back(std::move(G));
          }
        }
        N += static_cast<int>(Groups.size());
      }
      return N;
    };

    std::function<void(size_t)> Rec = [&](size_t I) {
      if (I == Active.size()) {
        int N = countGroups();
        if (BestGroups < 0 || N < BestGroups) {
          BestGroups = N;
          Best = Cur;
        }
        return;
      }
      for (const Slot &S : Plan.Entries[Active[I]].Candidates) {
        Cur[I] = S;
        Rec(I + 1);
      }
    };
    Rec(0);

    for (size_t I = 0; I != Active.size(); ++I) {
      Plan.Entries[Active[I]].Chosen = Best[I];
      Plan.Entries[Active[I]].Candidates.assignSingle(Best[I]);
    }
    buildGroups(Plan);
  }

  const AnalysisContext &Ctx;
  const PlacementOptions &Opts;
  /// Per-(entry, level) abstract section descriptor table, computed on first
  /// use. SoA layout: one dense int32 index row per level (lazily added)
  /// pointing into a stable pool, instead of a unique_ptr box per cell.
  class AsdIndex {
  public:
    void reset(int NumEntries) {
      N = NumEntries;
      ByLevel.clear();
    }
    int32_t &at(int Entry, int Level) {
      while (static_cast<int>(ByLevel.size()) <= Level)
        ByLevel.emplace_back(N, -1);
      return ByLevel[Level][Entry];
    }

  private:
    int N = 0;
    std::vector<std::vector<int32_t>> ByLevel;
  };
  AsdIndex AsdIdx;
  /// Descriptor pool; deque for reference stability (asdAt results are held
  /// across further asdAt calls in the pairwise scans).
  std::deque<Asd> AsdPool;
  /// Pattern-class ids per entry (see computeClasses).
  std::vector<int> CompatClass;
  std::vector<int> SubsumeClass;
  int NumCompatClasses = 0;
  /// Scratch tables reused across the indexed passes.
  DenseTable SlotMarks;
  std::vector<int> RestrictScratch;
  /// Instrumentation: pairwise comparisons actually performed by the
  /// subset/redundancy/combining scans, and sorted-id set merges.
  int64_t PairCompares = 0;
  int64_t SlotSetMerges = 0;
  uint64_t DomQueriesStart = 0;
};

} // namespace

CommPlan gca::planCommunication(const AnalysisContext &Ctx,
                                const PlacementOptions &Opts) {
  return Placer(Ctx, Opts).run();
}

std::string CommPlan::str(const Routine &R) const {
  std::string Out = strFormat("plan[%s]: %d entries, %d groups; %s\n",
                              strategyName(Strat),
                              static_cast<int>(Entries.size()),
                              static_cast<int>(Groups.size()),
                              Stats.str().c_str());
  const std::vector<std::string> &Names = R.loopVarNames();
  for (const CommGroup &G : Groups) {
    Out += strFormat("  group %d @(B%d,%d) %s:", G.Id, G.Placement.Node,
                     G.Placement.Index, commKindName(G.Kind));
    for (const Asd &A : G.Data) {
      Out += ' ';
      Out += A.str(&Names, R.array(A.ArrayId).Name);
    }
    Out += strFormat("  members=%d attached=%d\n",
                     static_cast<int>(G.Members.size()),
                     static_cast<int>(G.Attached.size()));
  }
  return Out;
}
