//===- core/Placement.h - Global communication placement --------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top of the paper's algorithm (Section 4): detection, placement-range
/// analysis, subset elimination (4.5), global redundancy elimination (4.6,
/// Figure 9(f)), greedy candidate choice and message combining (4.7, Figure
/// 9(g)), and final latest-common-position group placement — plus the two
/// baseline strategies of the evaluation (message vectorization only, and
/// earliest-placement redundancy elimination) and an exhaustive optimal
/// placer for the Section 6.1 ablation.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_CORE_PLACEMENT_H
#define GCA_CORE_PLACEMENT_H

#include "core/CommEntry.h"
#include "core/Context.h"

namespace gca {

/// Runs the selected strategy over the routine and returns the full plan.
CommPlan planCommunication(const AnalysisContext &Ctx,
                           const PlacementOptions &Opts);

/// Estimated per-processor message bytes for one descriptor placed at
/// nesting level \p Level (used for the 20 KB combining threshold).
int64_t estimatePerProcBytes(const AnalysisContext &Ctx, const Asd &A,
                             int NumProcs);

} // namespace gca

#endif // GCA_CORE_PLACEMENT_H
