//===- core/Detect.h - Communication requirement detection ------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Finds every RHS reference that needs communication under the
/// owner-computes rule and classifies its pattern (NNC shift, SUM reduction,
/// broadcast, general). Diagonal shifts are decomposed into augmented axis
/// shifts (the pHPF message-coalescing optimization the paper's Section 2.2
/// credits for subsuming diagonal communication), and references with
/// identical patterns within one statement are coalesced into one entry.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_CORE_DETECT_H
#define GCA_CORE_DETECT_H

#include "core/CommEntry.h"
#include "core/Context.h"

namespace gca {

/// Produces the initial communication entries of the routine, in statement
/// order. Entry ids are dense. When \p Decisions is non-null, one
/// DecisionKind::Detected event is appended per entry (after diagonal
/// decomposition and coalescing), recording its kind, array, reference
/// count, and any diagonal-phase linkage.
std::vector<CommEntry> detectCommunication(const AnalysisContext &Ctx,
                                           const PlacementOptions &Opts,
                                           DecisionLog *Decisions = nullptr);

/// The descriptor (array section + mapping) entry \p E communicates when
/// placed at nesting level \p Level: the union of its references' sections
/// with the overlap augmentation applied, clamped to the array bounds.
Asd asdOfEntry(const AnalysisContext &Ctx, const CommEntry &E, int Level);

/// Classification of a single RHS reference against the statement's LHS;
/// exposed for unit tests.
Mapping classifyRef(const Routine &R, const AssignStmt *S,
                    const ArrayRef &Ref, bool IsSum);

} // namespace gca

#endif // GCA_CORE_DETECT_H
