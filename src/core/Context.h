//===- core/Context.h - Shared analysis context -----------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bundles every per-routine analysis structure the placement algorithm
/// needs — augmented CFG, dominator tree, array SSA, dependence tester, and
/// loop-variable metadata — plus the section-expansion helper that turns a
/// reference into the array section accessed when communication is placed at
/// a given loop level (loops deeper than the level are expanded; enclosing
/// loop variables stay symbolic).
///
//===----------------------------------------------------------------------===//

#ifndef GCA_CORE_CONTEXT_H
#define GCA_CORE_CONTEXT_H

#include "cfg/Cfg.h"
#include "cfg/DomTree.h"
#include "dep/DepTest.h"
#include "section/Section.h"
#include "ssa/Ssa.h"

namespace gca {

class AnalysisContext {
public:
  explicit AnalysisContext(const Routine &R)
      : R(R), G(Cfg::build(R)), DT(DomTree::compute(G)), S(Ssa::build(G)),
        Dep(G) {
    initVarInfo();
  }
  AnalysisContext(const AnalysisContext &) = delete;
  AnalysisContext &operator=(const AnalysisContext &) = delete;

  const Routine &R;
  Cfg G;
  DomTree DT;
  Ssa S;
  DepTester Dep;

  /// Nesting level (1-based) of the loop binding each loop variable.
  int varLevel(int Var) const { return VarLevel[Var]; }
  /// The loop binding each loop variable.
  const LoopStmt *varLoop(int Var) const { return VarLoop[Var]; }

  /// Nesting level of a slot (number of loops whose body contains it).
  int slotLevel(const Slot &P) const { return G.nestingLevel(P.Node); }

  /// The section of \p Ref accessed by all iterations of loops strictly
  /// deeper than \p Level; bounds stay affine in the variables of loops at
  /// or above \p Level. This is the data descriptor of a communication for
  /// \p Ref placed at nesting level \p Level.
  RegSection sectionOfRef(const ArrayRef &Ref, int Level) const;

  /// True when slot \p P is executed before statement \p Use on every path
  /// (i.e. P dominates the point just before Use).
  bool slotDominatesUse(const Slot &P, const AssignStmt *Use) const {
    return DT.slotDominates(P, G.slotBefore(Use));
  }

private:
  void initVarInfo();
  /// Expands every variable of level > \p Level out of \p E, steering toward
  /// the minimum (\p Low = true) or maximum of the expression.
  AffineExpr expandBound(AffineExpr E, int Level, bool Low) const;

  std::vector<int> VarLevel;
  std::vector<const LoopStmt *> VarLoop;
};

} // namespace gca

#endif // GCA_CORE_CONTEXT_H
