//===- core/Detect.cpp - Communication requirement detection --------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "core/Detect.h"

#include "support/StrUtil.h"

#include <cassert>
#include <cstdlib>

using namespace gca;

/// The distributed dimensions of \p A, in order (template dim k is array dim
/// DistDims[k]).
static std::vector<unsigned> distDimsOf(const ArrayDecl &A) {
  std::vector<unsigned> Out;
  for (unsigned D = 0, E = A.rank(); D != E; ++D)
    if (A.Dist[D] != DistKind::Star)
      Out.push_back(D);
  return Out;
}

Mapping gca::classifyRef(const Routine &R, const AssignStmt *S,
                         const ArrayRef &Ref, bool IsSum) {
  const ArrayDecl &RA = R.array(Ref.ArrayId);
  TemplateSig SigR = templateSigOf(RA);
  std::vector<unsigned> DimsR = distDimsOf(RA);

  // Replicated arrays are available everywhere.
  if (SigR.rank() == 0 && !IsSum)
    return Mapping::local();

  // Reductions: partial sums happen on the owners; the global combine runs
  // over the template dims the reduced section spans, and the result is
  // replicated (Section 6.2).
  if (IsSum) {
    if (SigR.rank() == 0)
      return Mapping::local(); // Replicated operand: purely local sum.
    std::vector<uint8_t> RD(SigR.rank(), 0);
    for (unsigned K = 0; K != DimsR.size(); ++K) {
      const Subscript &Sub = Ref.Subs[DimsR[K]];
      // A ranged (or variable) subscript spans processors along this
      // template dim, so the combine must run across it.
      if (Sub.isRange() || !Sub.Lo.isConstant())
        RD[K] = 1;
    }
    return Mapping::reduce(std::move(SigR), std::move(RD));
  }

  if (S->lhsIsScalar()) {
    // A plain distributed reference feeding a (replicated) scalar: every
    // processor needs the value. A single constant position is a broadcast;
    // anything else is unstructured.
    bool AllConst = true;
    for (unsigned K = 0; K != DimsR.size(); ++K) {
      const Subscript &Sub = Ref.Subs[DimsR[K]];
      AllConst &= Sub.isElem() && Sub.Lo.isConstant();
    }
    if (AllConst && !DimsR.empty()) {
      const Subscript &Sub = Ref.Subs[DimsR[0]];
      return Mapping::bcast(std::move(SigR), 0, Sub.Lo.constValue());
    }
    return Mapping::general(std::move(SigR));
  }

  const ArrayDecl &LA = R.array(S->lhs().ArrayId);
  TemplateSig SigL = templateSigOf(LA);
  if (!(SigL == SigR))
    return Mapping::general(std::move(SigR)); // Misaligned: redistribution.

  std::vector<unsigned> DimsL = distDimsOf(LA);
  std::vector<int64_t> Offsets(SigR.rank(), 0);
  int BcastDim = -1;
  int64_t BcastPos = 0;
  for (unsigned K = 0; K != DimsR.size(); ++K) {
    const Subscript &SubL = S->lhs().Subs[DimsL[K]];
    const Subscript &SubR = Ref.Subs[DimsR[K]];
    int64_t Delta;
    if (SubL.isElem() && SubR.isElem()) {
      if (SubR.Lo.constDifference(SubL.Lo, Delta)) {
        Offsets[K] = Delta;
        continue;
      }
      if (SubR.Lo.isConstant() && BcastDim < 0) {
        BcastDim = static_cast<int>(K);
        BcastPos = SubR.Lo.constValue();
        continue;
      }
      return Mapping::general(std::move(SigR));
    }
    if (SubL.isRange() && SubR.isRange()) {
      int64_t DHi;
      if (SubR.Lo.constDifference(SubL.Lo, Delta) &&
          SubR.Hi.constDifference(SubL.Hi, DHi) && Delta == DHi &&
          SubL.Step == SubR.Step) {
        Offsets[K] = Delta;
        continue;
      }
      return Mapping::general(std::move(SigR));
    }
    return Mapping::general(std::move(SigR));
  }

  if (BcastDim >= 0) {
    for (int64_t O : Offsets)
      if (O != 0)
        return Mapping::general(std::move(SigR));
    return Mapping::bcast(std::move(SigR), BcastDim, BcastPos);
  }
  for (int64_t O : Offsets)
    if (O != 0)
      return Mapping::shift(std::move(SigR), std::move(Offsets));
  return Mapping::local();
}

namespace {

class Detector {
public:
  Detector(const AnalysisContext &Ctx, const PlacementOptions &Opts,
           DecisionLog *Decisions)
      : Ctx(Ctx), Opts(Opts), Decisions(Decisions) {}

  std::vector<CommEntry> run() {
    Ctx.R.forEachStmt([&](Stmt *S) {
      if (auto *A = dyn_cast<AssignStmt>(S))
        visitAssign(A);
    });
    if (Decisions)
      for (const CommEntry &E : Entries) {
        std::string Detail = strFormat(
            "kind=%s array=%s refs=%d", commKindName(E.M.Kind),
            Ctx.R.array(E.ArrayId).Name.c_str(),
            static_cast<int>(E.Refs.size()));
        if (!E.DiagIds.empty())
          Detail += strFormat(" diag=%d", E.DiagIds.front());
        Decisions->push_back(
            {DecisionKind::Detected, E.Id, -1, Slot(), std::move(Detail)});
      }
    return std::move(Entries);
  }

private:
  void visitAssign(const AssignStmt *S) {
    std::vector<CommEntry> Raw;
    for (const RhsTerm &T : S->rhs()) {
      if (!T.isArrayLike())
        continue;
      bool IsSum = T.K == RhsTerm::Kind::SumReduce;
      Mapping M = classifyRef(Ctx.R, S, T.Ref, IsSum);
      if (M.isLocal())
        continue;
      appendEntries(S, T.Ref, std::move(M), Raw);
    }
    coalesceInto(Raw);
  }

  /// Appends entries for one classified reference, decomposing diagonal
  /// shifts into augmented axis shifts.
  void appendEntries(const AssignStmt *S, const ArrayRef &Ref, Mapping M,
                     std::vector<CommEntry> &Out) {
    const ArrayDecl &A = Ctx.R.array(Ref.ArrayId);
    std::vector<unsigned> Dims = distDimsOf(A);

    unsigned NonZero = 0;
    if (M.Kind == CommKind::Shift)
      for (int64_t O : M.Offsets)
        NonZero += O != 0;

    if (M.Kind != CommKind::Shift || NonZero <= 1 ||
        !Opts.SubsumeDiagonals) {
      CommEntry E;
      E.UseStmt = S;
      E.Refs = {Ref};
      E.ArrayId = Ref.ArrayId;
      E.M = std::move(M);
      E.Augment.assign(A.rank(), {0, 0});
      Out.push_back(std::move(E));
      return;
    }

    // Diagonal NNC: one axis shift per nonzero template dim, each phase
    // carrying the overlap augmentation of its sibling dims. With symmetric
    // augmentation the phases may fire in any order: whichever runs second
    // forwards the corner data the first one deposited in the neighbour's
    // overlap region (Section 2.2).
    std::vector<std::array<int64_t, 2>> FullAug(A.rank(), {0, 0});
    for (unsigned K = 0; K != M.Offsets.size(); ++K) {
      if (M.Offsets[K] == 0)
        continue;
      unsigned ADim = Dims[K];
      if (M.Offsets[K] < 0)
        FullAug[ADim][0] = -M.Offsets[K];
      else
        FullAug[ADim][1] = M.Offsets[K];
    }
    int DiagId = NextDiagId++;
    for (unsigned K = 0; K != M.Offsets.size(); ++K) {
      if (M.Offsets[K] == 0)
        continue;
      CommEntry E;
      E.UseStmt = S;
      E.Refs = {Ref};
      E.ArrayId = Ref.ArrayId;
      std::vector<int64_t> Off(M.Offsets.size(), 0);
      Off[K] = M.Offsets[K];
      E.M = Mapping::shift(M.Sig, std::move(Off));
      // Sibling dims' augmentation only (own dim is the shift itself).
      E.Augment = FullAug;
      E.Augment[Dims[K]] = {0, 0};
      E.DiagIds = {DiagId};
      Out.push_back(std::move(E));
    }
  }

  /// Per-statement message coalescing: merge entries with compatible
  /// patterns on the same array into one entry.
  void coalesceInto(std::vector<CommEntry> &Raw) {
    std::vector<CommEntry> Merged;
    for (CommEntry &E : Raw) {
      bool Done = false;
      for (CommEntry &Into : Merged) {
        if (Into.ArrayId != E.ArrayId || !Into.M.compatibleWith(E.M))
          continue;
        // Reductions stay one entry per sum() so the baselines emit one
        // call per reduction; the global algorithm combines them later.
        if (E.M.Kind == CommKind::Reduce)
          continue;
        // Merge: widest shift offsets, widest augmentation, all refs.
        for (unsigned K = 0; K != Into.M.Offsets.size(); ++K)
          if (std::llabs(E.M.Offsets[K]) > std::llabs(Into.M.Offsets[K]))
            Into.M.Offsets[K] = E.M.Offsets[K];
        for (unsigned D = 0; D != Into.Augment.size(); ++D) {
          Into.Augment[D][0] = std::max(Into.Augment[D][0], E.Augment[D][0]);
          Into.Augment[D][1] = std::max(Into.Augment[D][1], E.Augment[D][1]);
        }
        Into.Refs.insert(Into.Refs.end(), E.Refs.begin(), E.Refs.end());
        Into.DiagIds.insert(Into.DiagIds.end(), E.DiagIds.begin(),
                            E.DiagIds.end());
        Done = true;
        break;
      }
      if (!Done)
        Merged.push_back(std::move(E));
    }
    for (CommEntry &E : Merged) {
      E.Id = static_cast<int>(Entries.size());
      Entries.push_back(std::move(E));
    }
  }

  const AnalysisContext &Ctx;
  const PlacementOptions &Opts;
  DecisionLog *Decisions;
  std::vector<CommEntry> Entries;
  int NextDiagId = 0;
};

} // namespace

std::vector<CommEntry>
gca::detectCommunication(const AnalysisContext &Ctx,
                         const PlacementOptions &Opts,
                         DecisionLog *Decisions) {
  return Detector(Ctx, Opts, Decisions).run();
}

Asd gca::asdOfEntry(const AnalysisContext &Ctx, const CommEntry &E,
                    int Level) {
  const ArrayDecl &A = Ctx.R.array(E.ArrayId);
  RegSection D = Ctx.sectionOfRef(E.Refs[0], Level);
  for (size_t I = 1; I < E.Refs.size(); ++I) {
    RegSection Other = Ctx.sectionOfRef(E.Refs[I], Level);
    RegSection U;
    int64_t UE, SE;
    if (D.unionApprox(Other, U, UE, SE))
      D = std::move(U);
    // A failed union (different variable structure) keeps the first
    // section; the overlap augmentation below still covers the widest shift.
  }
  // Apply overlap augmentation and clamp constant bounds to the array.
  for (unsigned Dim = 0, ED = D.rank(); Dim != ED; ++Dim) {
    SecDim &SD = D.dim(Dim);
    if (E.Augment[Dim][0] != 0)
      SD.Lo = SD.Lo - E.Augment[Dim][0];
    if (E.Augment[Dim][1] != 0)
      SD.Hi = SD.Hi + E.Augment[Dim][1];
    if (SD.Lo.isConstant() && SD.Lo.constValue() < A.Lo[Dim])
      SD.Lo = AffineExpr::constant(A.Lo[Dim]);
    if (SD.Hi.isConstant() && SD.Hi.constValue() > A.Hi[Dim])
      SD.Hi = AffineExpr::constant(A.Hi[Dim]);
  }
  Asd Out;
  Out.ArrayId = E.ArrayId;
  Out.D = std::move(D);
  Out.M = E.M;
  return Out;
}
