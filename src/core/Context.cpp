//===- core/Context.cpp - Shared analysis context -------------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "core/Context.h"

#include <cassert>
#include <cstdlib>
#include <numeric>

using namespace gca;

void AnalysisContext::initVarInfo() {
  unsigned NumVars = static_cast<unsigned>(R.loopVarNames().size());
  VarLevel.assign(NumVars, 0);
  VarLoop.assign(NumVars, nullptr);
  for (unsigned L = 0, E = G.numLoops(); L != E; ++L) {
    const CfgLoop &Loop = G.loop(static_cast<int>(L));
    VarLevel[Loop.L->var()] = Loop.Level;
    VarLoop[Loop.L->var()] = Loop.L;
  }
}

AffineExpr AnalysisContext::expandBound(AffineExpr E, int Level,
                                        bool Low) const {
  // Repeatedly substitute the deepest too-deep variable by the loop bound
  // that extremizes the expression. Loop bounds only mention shallower
  // variables, so this terminates.
  while (true) {
    int Deepest = -1;
    int DeepestLevel = Level;
    for (int V : E.vars()) {
      if (VarLevel[V] > DeepestLevel) {
        DeepestLevel = VarLevel[V];
        Deepest = V;
      }
    }
    if (Deepest < 0)
      return E;
    const LoopStmt *L = VarLoop[Deepest];
    assert(L && "loop variable without a loop");
    assert(L->step() > 0 && "section expansion requires positive loop steps");
    int64_t C = E.coeff(Deepest);
    // For a lower bound: positive coefficient wants the loop minimum.
    const AffineExpr &Repl =
        ((C > 0) == Low) ? L->lo() : L->hi();
    E = E.substitute(Deepest, Repl);
  }
}

RegSection AnalysisContext::sectionOfRef(const ArrayRef &Ref,
                                         int Level) const {
  std::vector<SecDim> Dims;
  Dims.reserve(Ref.Subs.size());
  for (const Subscript &Sub : Ref.Subs) {
    SecDim D;
    if (Sub.isElem()) {
      D.Lo = Sub.Lo;
      D.Hi = Sub.Lo;
      D.Step = 1;
    } else {
      D.Lo = Sub.Lo;
      D.Hi = Sub.Hi;
      D.Step = Sub.Step;
    }
    // Stride contributed by expanded variables: gcd of their coefficients
    // (and the existing step for ranges).
    int64_t Stride = Sub.isRange() ? std::llabs(Sub.Step) : 0;
    bool Expanded = false;
    for (int V : D.Lo.vars()) {
      if (VarLevel[V] > Level) {
        Stride = std::gcd(Stride, std::llabs(D.Lo.coeff(V)) *
                                      std::llabs(VarLoop[V]->step()));
        Expanded = true;
      }
    }
    D.Lo = expandBound(D.Lo, Level, /*Low=*/true);
    D.Hi = expandBound(D.Hi, Level, /*Low=*/false);
    if (Sub.isElem() && !Expanded)
      Stride = 1; // Single element per enclosing iteration.
    if (Stride == 0)
      Stride = 1;
    D.Step = Stride;
    Dims.push_back(std::move(D));
  }
  return RegSection(std::move(Dims));
}
