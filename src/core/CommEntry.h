//===- core/CommEntry.h - Communication entries and plans -------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data model of the placement algorithm: one CommEntry per non-local
/// reference (after diagonal decomposition and per-statement coalescing),
/// carrying its Earliest/Latest analysis, candidate slots, and final
/// placement; CommGroups are the combined aggregate operations the code
/// generator emits (one runtime call site each); a CommPlan is the result of
/// running one placement strategy over a routine.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_CORE_COMMENTRY_H
#define GCA_CORE_COMMENTRY_H

#include "cfg/Cfg.h"
#include "section/Asd.h"
#include "support/Arena.h"

#include <array>
#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace gca {

class StatsRegistry;
class ThreadPool;

/// A fixed-capacity slot sequence carved out of its plan's arena (SoA slot
/// storage: the Slot payloads of every entry live in a handful of arena
/// blocks instead of one heap vector per entry). The elimination passes only
/// ever shrink candidate sets or collapse them to a chosen slot, so the span
/// mutates in place and never reallocates; the backing memory is owned by
/// CommPlan::Mem and outlives every copy of the plan.
class SlotSpan {
public:
  SlotSpan() = default;
  SlotSpan(Slot *Data, uint32_t Len) : Data(Data), Len(Len) {}

  using value_type = Slot;
  const Slot *begin() const { return Data; }
  const Slot *end() const { return Data + Len; }
  size_t size() const { return Len; }
  bool empty() const { return Len == 0; }
  const Slot &front() const { return Data[0]; }
  const Slot &back() const { return Data[Len - 1]; }
  const Slot &operator[](size_t I) const { return Data[I]; }

  /// Collapses the span to the single slot \p S (greedy pinning, group
  /// pinning). Requires nonzero capacity, i.e. the span was ever non-empty.
  void assignSingle(const Slot &S) {
    assert(Data && "assignSingle on a span with no storage");
    Data[0] = S;
    Len = 1;
  }

  /// Erase-remove of every slot matching \p P, preserving order.
  template <typename Pred> void removeIf(Pred P) {
    Slot *Out = Data;
    for (Slot *I = Data, *E = Data + Len; I != E; ++I)
      if (!P(*I))
        *Out++ = *I;
    Len = static_cast<uint32_t>(Out - Data);
  }

  void removeValue(const Slot &S) {
    removeIf([&](const Slot &X) { return X == S; });
  }

private:
  Slot *Data = nullptr;
  uint32_t Len = 0;
};

/// One communication requirement for one use.
struct CommEntry {
  int Id = -1;
  const AssignStmt *UseStmt = nullptr;
  /// The references this entry fetches data for (more than one after
  /// per-statement coalescing merged same-pattern references).
  std::vector<ArrayRef> Refs;
  int ArrayId = -1;
  Mapping M;
  /// Extra elements the overlap region must extend by on each side of each
  /// array dim (from diagonal-shift decomposition, Section 2.2); indexed
  /// [dim][0 = low side, 1 = high side].
  std::vector<std::array<int64_t, 2>> Augment;
  /// Diagonal-decomposition linkage: ids shared by the axis-phase entries of
  /// one diagonal reference. Sibling phases must be placed at the same point
  /// (and fire in dimension order there) so corner forwarding through the
  /// overlap regions stays correct (Section 2.2).
  std::vector<int> DiagIds;

  // --- Analysis results (Sections 4.2-4.4) ---
  int EarliestDef = -1; ///< SSA def id returned by Earliest(u).
  Slot EarliestSlot;
  Slot LatestSlot;
  int CommLevel = 0;
  /// Candidate placement slots, in dominance order (earliest first). For
  /// reductions this is the single slot before the use (Section 6.2).
  /// Arena-backed (CommPlan::Mem); elimination shrinks it in place.
  SlotSpan Candidates;
  /// Candidates as originally marked, before subset/redundancy elimination
  /// ("including entries disabled during redundancy elimination" take part
  /// in the final latest-common-position computation). Arena-backed.
  SlotSpan OriginalCandidates;

  // --- Placement outcome (Sections 4.5-4.7) ---
  bool Eliminated = false; ///< Fully redundant; folded into SubsumedBy.
  int SubsumedBy = -1;
  /// Partial redundancy elimination ([14], paper Section 4.6 discussion):
  /// when set, only this remainder section is communicated — the rest is
  /// available from an earlier dominating communication.
  std::optional<RegSection> ReducedD;
  Slot Chosen;
  int GroupId = -1;
};

/// One combined aggregate communication operation (one call site).
struct CommGroup {
  int Id = -1;
  Slot Placement;
  CommKind Kind = CommKind::Local;
  Mapping M; ///< The widest mapping of the members (max shift magnitudes).
  std::vector<int> Members;  ///< Entry ids placed here.
  std::vector<int> Attached; ///< Eliminated entries served by this group.
  /// Descriptors communicated, one per distinct (array, section): evaluated
  /// at the placement slot's nesting level.
  std::vector<Asd> Data;
  /// Per-Data overlap augmentation (widest over contributing entries),
  /// indexed [DataIdx][ArrayDim][0 = low side, 1 = high side]. Receivers of
  /// a shift extend their ghost boxes by this much along the non-shifted
  /// dims (corner forwarding, Section 2.2).
  std::vector<std::vector<std::array<int64_t, 2>>> DataAug;
};

/// What happened to one communication entry (or slot, or group) at one step
/// of the placement algorithm. The ordered log of these events is the
/// explanation of a plan: every entry's path from detection through the
/// elimination phases to its final placement point is recorded, in the
/// deterministic order the algorithm took its decisions.
enum class DecisionKind : uint8_t {
  Detected,              ///< Entry created by detection (Sections 2.2, 4.1).
  RangeComputed,         ///< Earliest/Latest range + candidates (4.2-4.4).
  SubsetSlotCleared,     ///< A slot emptied by subset elimination (4.5).
  RedundancyEliminated,  ///< Entry folded into a subsumer (4.6, Fig. 9(f)).
  PartiallyReduced,      ///< Remainder-only send ([14]; PartialRedundancy).
  CombinedIntoGroup,     ///< Entry admitted to a group (4.7, Fig. 9(g)).
  GroupPlaced,           ///< Group's final latest-common position (4.7).
  LoweredAs,             ///< Group lowered to a collective algorithm
                         ///< (lower/Lower.h): "<op>/<algo> ...".
};

const char *decisionKindName(DecisionKind K);

/// One record of the placement decision log.
struct DecisionEvent {
  DecisionKind Kind;
  /// The entry decided about; -1 for slot- and group-scoped events.
  int EntryId = -1;
  /// The other party: subsumer entry id (RedundancyEliminated,
  /// PartiallyReduced), group id (CombinedIntoGroup, GroupPlaced); -1 when
  /// not applicable.
  int OtherId = -1;
  /// The slot involved (cleared slot, chosen placement); invalid when n/a.
  Slot Where;
  /// Human-readable specifics ("kind=NNC array=a refs=2", "covered by
  /// (B4,0)"), stable across runs.
  std::string Detail;
};

using DecisionLog = std::vector<DecisionEvent>;

/// Placement strategies evaluated by the paper (Section 5) plus the
/// exhaustive reference placer used for the Section 6.1 ablation.
enum class Strategy : uint8_t {
  Orig,     ///< Message vectorization only (the paper's "orig" bars).
  Earliest, ///< + earliest-placement redundancy elimination ("nored").
  Global,   ///< The paper's new algorithm ("comb").
  Optimal,  ///< Exhaustive candidate choice (extension, small inputs only).
  /// Earliest placement with same-point combining: the strawman of the
  /// paper's Figure 3 discussion. It combines across arrays only when their
  /// earliest points happen to coincide, which is what makes it sensitive
  /// to the syntactic structure of the source.
  EarliestCombine,
};

const char *strategyName(Strategy S);

/// Options controlling combining (Section 4.7).
struct PlacementOptions {
  Strategy Strat = Strategy::Global;
  /// Combined per-processor data size cap ("currently set to 20 KB for
  /// SP2").
  int64_t CombineThresholdBytes = 20 * 1024;
  /// Union-descriptor growth cap: |D1 u D2| may exceed |D1| + |D2| by at
  /// most this factor ("a small constant").
  double MaxUnionGrowth = 1.5;
  /// Number of processors assumed when estimating per-processor message
  /// sizes for the threshold test.
  int NumProcs = 25;
  /// Decompose diagonal shifts into augmented axis shifts (the pHPF message
  /// coalescing of Section 2.2). Disabled only in ablation studies.
  bool SubsumeDiagonals = true;
  /// Partial redundancy elimination for the earliest-placement baseline:
  /// an entry covered *partially* by an earlier dominating communication
  /// sends only the representable section difference, the behaviour of [14]
  /// that the paper's Figure 4 discussion contrasts against ("reduce the
  /// communication for b2 to ASD(b2) - ASD(b1)").
  bool PartialRedundancy = false;
  /// Section 6.2 extension ("left for future work" in the paper): give
  /// reductions a placement *range* via the reversed analysis — the global
  /// combine may defer from its sum() statement to any dominating point
  /// before the first read of the result scalar, letting reductions
  /// computed at different statements combine. Global/Optimal only.
  bool DeferReductions = false;
  /// When non-null, the placement and audit phases export their counters
  /// (entries detected, subset/redundancy eliminations, combined groups,
  /// rules checked) here. Owned by the caller — typically the compilation
  /// Session — so concurrent compilations never share a registry.
  StatsRegistry *Stats = nullptr;
  /// Worker threads for the per-entry analysis fan-out (placement) and the
  /// per-entry/per-group rule checks (audit). 1 = fully serial. Results are
  /// committed in entry order regardless of scheduling, so every job count
  /// produces bitwise-identical plans, stats, and decision logs.
  int Jobs = 1;
  /// The pool the parallel phases run on when Jobs > 1. Owned by the caller
  /// (the Session lazily builds one sized to Jobs). Null with Jobs > 1
  /// degrades to serial.
  ThreadPool *Pool = nullptr;
};

/// Static message statistics, per communication kind (the Figure 10 table).
struct CommStats {
  int NumGroups[5] = {0, 0, 0, 0, 0}; ///< Indexed by CommKind.
  int NumEntries = 0;
  int NumEliminated = 0;

  int groups(CommKind K) const { return NumGroups[static_cast<int>(K)]; }
  int totalGroups() const;
  std::string str() const;
};

/// The result of one strategy run.
struct CommPlan {
  Strategy Strat = Strategy::Global;
  std::vector<CommEntry> Entries;
  std::vector<CommGroup> Groups;
  CommStats Stats;
  /// Backing storage of every entry's candidate spans. Shared so plan copies
  /// stay cheap and valid; the spans are read-only once placement returns.
  std::shared_ptr<Arena> Mem;
  /// Why the plan looks the way it does: every detection, range, elimination,
  /// combining and final-placement decision, in algorithm order. Appended by
  /// Detect and the Placer; deterministic for a given (routine, options).
  DecisionLog Decisions;

  std::string str(const Routine &R) const;

  /// One "  <kind> entry=<id> ... <detail>" line per decision event.
  std::string decisionsStr() const;
};

} // namespace gca

#endif // GCA_CORE_COMMENTRY_H
