//===- core/EarliestLatest.cpp - Placement range analysis -----------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// Earliest(u) implementation note. The paper computes Earliest(u) with the
/// Test/Rcount walk of Figure 8; Claim 4.1 and Lemmas 4.2-4.4 characterize
/// the result: the earliest single point that (a) dominates u and (b) is not
/// dominated-by-passed by any definition with a true dependence to u. We
/// compute that characterization directly: every dependence source d
/// (a regular def with IsArrayDep to u, discovered through the SSA chain of
/// phi parameters and preserving-def look-through) contributes a *barrier* —
/// the first position on its chain toward u that dominates u. That is
/// slotAfter(d) when d itself dominates u, the phi-merge/phi-exit where d's
/// value surfaces when it does not, and the phi-entry at the carrying loop's
/// header for loop-carried sources. Earliest(u) is the latest barrier (they
/// are totally ordered: all dominate u). This is exactly the set of "two
/// node-disjoint backpath" merge points Lemma 4.3's argument pivots on, and
/// it is robust against the double-counting subtleties that a literal
/// reading of Rcount exhibits around zero-trip edges and preserving defs.
///
//===----------------------------------------------------------------------===//

#include "core/EarliestLatest.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace gca;

namespace {

/// Cached absorber-independent contributions of one def: whether any ref
/// has a loop-independent dependence, and the carried-level header slots
/// (a span into the shared HeaderPool).
struct DefContrib {
  int Epoch = 0; ///< Valid when equal to the scratch epoch.
  bool AnyLI = false;
  int PoolBegin = 0, PoolEnd = 0;
};

/// Per-thread walk state, reused across entries: the walk touches only a
/// fraction of the def table per entry, so epoch tags beat full clears.
/// thread_local because the batch driver compiles units concurrently.
struct WalkScratch {
  std::vector<int64_t> BestDepth;
  std::vector<int> BestEpoch;
  std::vector<DefContrib> Contrib;
  std::vector<std::pair<Slot, int64_t>> HeaderPool;
  int Epoch = 0;
};

/// Computes Earliest(u) for one entry via dependence-source barriers.
class EarliestWalk {
public:
  EarliestWalk(const AnalysisContext &Ctx, const CommEntry &E,
               WalkScratch &SC)
      : Ctx(Ctx), E(E), UseNest(Ctx.G.loopNestOf(E.UseStmt)),
        UsePoint(Ctx.G.slotBefore(E.UseStmt)), SC(SC) {}

  /// Classifies the dependences from def \p D to the use and pushes their
  /// barriers. A loop-independent dependence flows along the intra-iteration
  /// chain, so its barrier is the current \p Absorber (the nearest chain
  /// position dominating the use); a dependence carried at level l flows
  /// through the level-l loop's back edge, so its barrier is that loop's
  /// header top (the phi-entry point), independent of the chain route that
  /// reached D. Returns true when a loop-independent dependence pins this
  /// chain (nothing above D can supply fresher data along it).
  ///
  /// The walk may revisit a def with a deeper absorber; everything except
  /// the absorber itself is a pure function of (def, use), so the subscript
  /// solves run once per def and the contributions replay from a cache:
  /// barrier updates are commutative maxima, making the replay exact.
  bool pushBarriers(int DefId, const SsaDef &D, const Slot &Absorber,
                    int64_t AbsDepth) {
    assert(D.Kind == DefKind::Regular && "dependence test needs a statement");
    DefContrib &C = SC.Contrib[DefId];
    if (C.Epoch != SC.Epoch) {
      C.Epoch = SC.Epoch;
      C.AnyLI = false;
      C.PoolBegin = static_cast<int>(SC.HeaderPool.size());
      for (const ArrayRef &Ref : E.Refs) {
        // One subscript solve per (def, ref); every level predicate below
        // is derived from the summary.
        Ctx.Dep.flowDirections(D.Stmt, E.UseStmt, Ref, Scratch);
        C.AnyLI |= DepTester::loopIndependentFromDirs(Scratch);
        for (int L = 1; L <= Scratch.CNL; ++L) {
          if (!DepTester::carriedFromDirs(Scratch, L))
            continue;
          const CfgLoop &Loop = Ctx.G.loop(UseNest[L - 1]);
          Slot Header{Loop.Header, 0};
          SC.HeaderPool.push_back({Header, slotDepth(Header)});
        }
      }
      C.PoolEnd = static_cast<int>(SC.HeaderPool.size());
    }
    for (int I = C.PoolBegin; I != C.PoolEnd; ++I)
      if (SC.HeaderPool[I].second > BarrierDepth) {
        Barrier = SC.HeaderPool[I].first;
        BarrierDepth = SC.HeaderPool[I].second;
      }
    if (C.AnyLI && AbsDepth > BarrierDepth) {
      Barrier = Absorber;
      BarrierDepth = AbsDepth;
    }
    return C.AnyLI;
  }

  Slot run() {
    int Var = Ctx.S.varOfArray(E.ArrayId);
    int Start = Ctx.S.reachingBefore(E.UseStmt, Var);
    if (SC.BestEpoch.size() < Ctx.S.numDefs()) {
      SC.BestDepth.resize(Ctx.S.numDefs());
      SC.BestEpoch.resize(Ctx.S.numDefs(), 0);
      SC.Contrib.resize(Ctx.S.numDefs());
    }
    ++SC.Epoch;
    SC.HeaderPool.clear();
    Slot EntrySlot = Ctx.S.def(Ctx.S.entryDef(Var)).AfterSlot;
    Barrier = EntrySlot;
    BarrierDepth = slotDepth(EntrySlot);
    walk(Start, EntrySlot, BarrierDepth);
    return Barrier;
  }

private:
  /// Dominance depth used to order slots (deeper = later).
  int64_t slotDepth(const Slot &S) const {
    return static_cast<int64_t>(Ctx.DT.depth(S.Node)) * 1000000 + S.Index;
  }

  /// Walks the use-def chain from the use toward definitions; \p Absorber is
  /// the most recently passed chain position that dominates the use — i.e.
  /// the first dominating point (walking back up toward the use) at which
  /// data defined here surfaces. A source found below pins Earliest to the
  /// absorber current when it is reached. Defs may be revisited with a
  /// deeper absorber so the deepest (safest) barrier is always found.
  void walk(int DefId, Slot Absorber, int64_t AbsDepth) {
    if (DefId < 0)
      return;
    const SsaDef &D = Ctx.S.def(DefId);
    if (Ctx.DT.slotDominates(D.AfterSlot, UsePoint)) {
      Absorber = D.AfterSlot;
      AbsDepth = slotDepth(Absorber);
    }
    if (SC.BestEpoch[DefId] == SC.Epoch && SC.BestDepth[DefId] >= AbsDepth)
      return;
    SC.BestEpoch[DefId] = SC.Epoch;
    SC.BestDepth[DefId] = AbsDepth;

    switch (D.Kind) {
    case DefKind::Entry:
      return;
    case DefKind::Regular:
      if (pushBarriers(DefId, D, Absorber, AbsDepth))
        return; // Loop-independent source: the chain is pinned here.
      if (Ctx.S.varIsArray(D.Var)) // Preserving: look through.
        walk(D.Prev, Absorber, AbsDepth);
      return;
    case DefKind::PhiEntry:
    case DefKind::PhiExit:
    case DefKind::PhiMerge:
      for (int P : D.Params)
        walk(P, Absorber, AbsDepth);
      return;
    }
  }

  const AnalysisContext &Ctx;
  const CommEntry &E;
  const std::vector<int> &UseNest;
  Slot UsePoint;
  Slot Barrier;
  int64_t BarrierDepth = 0;
  WalkScratch &SC;
  DepDirs Scratch;
};

} // namespace

Slot gca::computeEarliestSlot(const AnalysisContext &Ctx,
                              const CommEntry &E) {
  thread_local WalkScratch SC;
  return EarliestWalk(Ctx, E, SC).run();
}

/// Latest(u) of Section 4.2: CommLevel = max DepLevel over reaching regular
/// defs; placement before the statement (CommLevel == NL(u)) or in the
/// preheader of the loop at level CommLevel + 1.
static void computeLatest(const AnalysisContext &Ctx, CommEntry &E) {
  int Var = Ctx.S.varOfArray(E.ArrayId);
  int Reach = Ctx.S.reachingBefore(E.UseStmt, Var);
  std::vector<int> Defs;
  bool ReachesEntry = false;
  Ctx.S.collectReachingRegularDefs(Reach, Defs, ReachesEntry);

  const std::vector<int> &Nest = Ctx.G.loopNestOf(E.UseStmt);
  int NL = static_cast<int>(Nest.size());

  int CommLevel = 0;
  DepDirs Scratch;
  for (int DId : Defs) {
    if (CommLevel == NL)
      break; // Saturated: DepLevel never exceeds the use's nest depth.
    const SsaDef &D = Ctx.S.def(DId);
    // DepLevel(d, u) <= CNL(d, u), so a def whose common nesting level does
    // not exceed the max found so far cannot raise it: skip the subscript
    // solve entirely.
    if (Ctx.Dep.commonNestingLevel(D.Stmt, E.UseStmt) <= CommLevel)
      continue;
    for (const ArrayRef &Ref : E.Refs) {
      Ctx.Dep.flowDirections(D.Stmt, E.UseStmt, Ref, Scratch);
      CommLevel = std::max(CommLevel, DepTester::depLevelFromDirs(Scratch));
    }
  }
  assert(CommLevel <= NL && "communication level deeper than the use");
  E.CommLevel = CommLevel;
  if (CommLevel == NL) {
    E.LatestSlot = Ctx.G.slotBefore(E.UseStmt);
  } else {
    const CfgLoop &L = Ctx.G.loop(Nest[CommLevel]);
    E.LatestSlot = {L.Preheader, 0};
  }
}

/// Enumerates the slots of the dominator-tree segment [Lo, Hi] (both slots
/// included; Lo must dominate Hi), in dominance order, appending to \p Out
/// (cleared first; the caller's scratch vector keeps its capacity across
/// entries).
static void slotRange(const AnalysisContext &Ctx, const Slot &Lo,
                      const Slot &Hi, std::vector<Slot> &Out) {
  // Emitted directly in dominance order (earliest first): the blocks on the
  // idom chain from Lo down to Hi have strictly increasing depth, and slots
  // within one block are ascending, so no sort is needed.
  Out.clear();
  if (Lo.Node == Hi.Node) {
    for (int I = Lo.Index; I <= Hi.Index; ++I)
      Out.push_back({Lo.Node, I});
    return;
  }
  // Collect the interior chain Hi -> Lo (exclusive), then walk it backward.
  std::vector<int> Chain;
  int C = Ctx.DT.idom(Hi.Node);
  while (C >= 0 && C != Lo.Node) {
    Chain.push_back(C);
    C = Ctx.DT.idom(C);
  }
  assert(C == Lo.Node &&
         "Earliest block not on the dominator chain of Latest (Claim 4.5)");
  Slot End = Ctx.G.slotAtEnd(Lo.Node);
  for (int I = Lo.Index; I <= End.Index; ++I)
    Out.push_back({Lo.Node, I});
  for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
    Slot E2 = Ctx.G.slotAtEnd(*It);
    for (int I = 0; I <= E2.Index; ++I)
      Out.push_back({*It, I});
  }
  for (int I = 0; I <= Hi.Index; ++I)
    Out.push_back({Hi.Node, I});
}

/// Candidate marking of Figure 9(e): slots from Latest(u) up the dominator
/// tree to Earliest(u).
static void markCandidates(const AnalysisContext &Ctx, const CommEntry &E,
                           std::vector<Slot> &CandOut) {
  slotRange(Ctx, E.EarliestSlot, E.LatestSlot, CandOut);
}

/// The Section 6.2 extension: widens a reduction's placement range from the
/// single point after its sum() statement to every dominating point before
/// the first read of the result scalar (the "reversed SSA" analysis the
/// paper leaves for future work). Bails out when the result flows into a
/// phi (it escapes the straight-line region) or has no direct reader.
static void deferReduction(const AnalysisContext &Ctx, CommEntry &E,
                           std::vector<Slot> &CandOut) {
  const AssignStmt *S = E.UseStmt;
  if (!S->lhsIsScalar())
    return;
  int ScalarId = S->lhsScalarId();
  int Var = Ctx.S.varOfScalar(ScalarId);
  int Def = Ctx.S.defOfStmt(S);

  // Find the statements reading this scalar, and the set of definitions
  // backward-reachable from those reads through phi parameters (a phi that
  // never reaches a read is dead — typically the loop-exit merge of a
  // scalar that is re-assigned every iteration).
  std::vector<const AssignStmt *> Readers;
  std::vector<int> ReadRoots;
  Ctx.R.forEachStmt([&](Stmt *St) {
    auto *A = dyn_cast<AssignStmt>(St);
    if (!A || A == S)
      return;
    bool ReadsScalar = false;
    for (const RhsTerm &T : A->rhs())
      ReadsScalar |= T.K == RhsTerm::Kind::Scalar && T.ScalarId == ScalarId;
    if (!ReadsScalar)
      return;
    int Reach = Ctx.S.reachingBefore(A, Var);
    if (Reach == Def)
      Readers.push_back(A);
    else
      ReadRoots.push_back(Reach);
  });
  if (Readers.empty())
    return;

  // The value must not escape through a *live* phi to some other read.
  std::vector<char> Marked(Ctx.S.numDefs(), 0);
  std::vector<int> Work = ReadRoots;
  while (!Work.empty()) {
    int D = Work.back();
    Work.pop_back();
    if (D < 0 || Marked[D])
      continue;
    Marked[D] = 1;
    for (int P : Ctx.S.def(D).Params) {
      if (P == Def)
        return; // Escapes: another read sees it through a merge.
      Work.push_back(P);
    }
  }

  const AssignStmt *First = Readers[0];
  for (const AssignStmt *R : Readers)
    if (Ctx.G.preorderOf(R) < Ctx.G.preorderOf(First))
      First = R;
  Slot Lo = Ctx.G.slotAfter(S);
  Slot Hi = Ctx.G.slotBefore(First);
  if (!Ctx.DT.slotDominates(Lo, Hi))
    return;

  std::vector<Slot> Range;
  slotRange(Ctx, Lo, Hi, Range);
  // Keep only slots that execute before *every* reader and that are no
  // deeper than the sum statement itself (descending into a consumer's
  // loop nest would fire the combine once per iteration).
  int MaxLevel = static_cast<int>(Ctx.G.loopNestOf(S).size());
  std::vector<Slot> Kept;
  for (const Slot &P : Range) {
    if (Ctx.slotLevel(P) > MaxLevel)
      continue;
    bool All = true;
    for (const AssignStmt *R : Readers)
      All &= Ctx.DT.slotDominates(P, Ctx.G.slotBefore(R));
    if (All)
      Kept.push_back(P);
  }
  if (Kept.empty())
    return;
  E.LatestSlot = Kept.back();
  CandOut = std::move(Kept);
}

void gca::analyzeEntryPlacement(const AnalysisContext &Ctx, CommEntry &E,
                                const PlacementOptions &Opts,
                                std::vector<Slot> &CandOut) {
  // Reductions are inverted (Section 6.2): "the computation occurs first
  // (for the partial reduction operation on individual processors),
  // followed by communication for the global reduction operation that must
  // be completed before the use" — so the combine fires immediately after
  // the statement computing the partial sums. The prototype does no
  // candidate marking for reductions; it only combines ones placed at the
  // same point.
  if (E.M.Kind == CommKind::Reduce) {
    E.EarliestSlot = E.LatestSlot = Ctx.G.slotAfter(E.UseStmt);
    E.CommLevel = static_cast<int>(Ctx.G.loopNestOf(E.UseStmt).size());
    CandOut.clear();
    CandOut.push_back(E.LatestSlot);
    if (Opts.DeferReductions && (Opts.Strat == Strategy::Global ||
                                 Opts.Strat == Strategy::Optimal))
      deferReduction(Ctx, E, CandOut);
    return;
  }

  computeLatest(Ctx, E);
  E.EarliestSlot = computeEarliestSlot(Ctx, E);

  // Claim 4.5 guarantees Earliest dominates Latest; guard against analysis
  // imprecision by degrading to the single Latest slot.
  if (!Ctx.DT.slotDominates(E.EarliestSlot, E.LatestSlot)) {
    std::fprintf(stderr,
                 "EarliestLatest violation: stmt=%d array=%d early=(B%d,%d) "
                 "late=(B%d,%d) commlevel=%d\n",
                 E.UseStmt->id(), E.ArrayId, E.EarliestSlot.Node,
                 E.EarliestSlot.Index, E.LatestSlot.Node, E.LatestSlot.Index,
                 E.CommLevel);
    assert(false && "Earliest does not dominate Latest");
    E.EarliestSlot = E.LatestSlot;
  }
  markCandidates(Ctx, E, CandOut);
}
