//===- core/EarliestLatest.h - Placement range analysis ---------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes, for each communication entry:
///
///  - Latest(u): the latest-and-shallowest placement from standard
///    communication vectorization (Section 4.2) — just before the outermost
///    loop carrying no true dependence on u, or just before the statement
///    when every common level carries one;
///  - Earliest(u): the earliest *single dominating* placement, from the
///    Test/Rcount walk over the array SSA (Figure 8, Claim 4.1);
///  - the candidate slots between them along the dominator tree
///    (Figure 9(e), Claims 4.5/4.6).
///
/// Reductions skip the range analysis: the prototype places reduction
/// communication at its use and only combines same-point reductions
/// (Section 6.2).
///
//===----------------------------------------------------------------------===//

#ifndef GCA_CORE_EARLIESTLATEST_H
#define GCA_CORE_EARLIESTLATEST_H

#include "core/CommEntry.h"
#include "core/Context.h"

namespace gca {

/// Fills EarliestSlot/LatestSlot/CommLevel of \p E and appends the candidate
/// slot range to \p CandOut (cleared first). The caller commits the list to
/// the plan's arena — both Candidates and OriginalCandidates start as copies
/// of it — so the analysis itself is free of shared-state writes and may run
/// for many entries concurrently.
void analyzeEntryPlacement(const AnalysisContext &Ctx, CommEntry &E,
                           const PlacementOptions &Opts,
                           std::vector<Slot> &CandOut);

/// The Earliest(u) computation (Figure 8 / Claim 4.1, via dependence-source
/// barriers — see the implementation note in EarliestLatest.cpp); exposed
/// for unit tests.
Slot computeEarliestSlot(const AnalysisContext &Ctx, const CommEntry &E);

} // namespace gca

#endif // GCA_CORE_EARLIESTLATEST_H
