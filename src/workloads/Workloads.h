//===- workloads/Workloads.h - Evaluation programs --------------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HPF-lite re-creations of the paper's motivating codes (Figures 1-4) and
/// evaluation benchmarks (Section 5). The original sources are not published
/// in the paper; these are "simplified forms" in the paper's own sense,
/// constructed to reproduce the communication structure it reports:
///
///   benchmark  routine   type   orig  nored  comb   (Figure 10 table)
///   shallow    main      NNC      20     14     8
///   gravity    main      NNC       8      8     4
///   gravity    main      SUM       8      8     2
///   trimesh    main      NNC      24     24     4
///   trimesh    normdot   NNC      13     13     4
///   hydflo     gauss     NNC      52     30     6
///   hydflo     flux      NNC      12     12     6
///
/// Every source takes `n` (per-dimension problem size) and `nsteps` as
/// parameters, overridable through the ParamMap, which is how the benchmarks
/// sweep Figure 10's problem sizes.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_WORKLOADS_WORKLOADS_H
#define GCA_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

namespace gca {

/// Expected static call-site counts for one routine and kind.
struct ExpectedCounts {
  std::string Routine;
  std::string Kind; ///< "NNC" or "SUM".
  int Orig;
  int Nored;
  int Comb;
};

struct Workload {
  std::string Name;
  std::string Source;
  std::vector<ExpectedCounts> Expected; ///< Empty for motivating examples.
};

/// The NCAR shallow-water benchmark (Figure 2 / Figure 10 rows 1).
const Workload &shallowWorkload();
/// The NPAC gravity benchmark (Figure 1 / Figure 10 rows 2-3).
const Workload &gravityWorkload();
/// The trimesh benchmark (Figure 10 rows 4-5; routines main and normdot).
const Workload &trimeshWorkload();
/// The hydflo benchmark (Figure 10 rows 6-7; routines gauss and flux).
const Workload &hydfloWorkload();

/// Figure 1: the motivating form of gravity (combining NNC and sums).
const Workload &figure1Workload();
/// Figure 2: the motivating form of shallow (earliest placement may hurt).
const Workload &figure2Workload();
/// Figure 3: the three semantically equal forms (syntax sensitivity).
const Workload &figure3FusedWorkload();      // Column 1 (F90 source).
const Workload &figure3ScalarizedWorkload(); // Column 2 (separate loops).
const Workload &figure3HandCodedWorkload();  // Column 3 (hand-fused F77).
/// Figure 4: the running example of the analysis sections.
const Workload &figure4Workload();

/// All evaluation workloads (shallow, gravity, trimesh, hydflo).
std::vector<const Workload *> evaluationWorkloads();
/// All workloads including the motivating figures.
std::vector<const Workload *> allWorkloads();

} // namespace gca

#endif // GCA_WORKLOADS_WORKLOADS_H
