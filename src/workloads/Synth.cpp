//===- workloads/Synth.cpp - Synthetic workload generator -----------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "workloads/Synth.h"

#include "support/StrUtil.h"

using namespace gca;

namespace {

/// SplitMix64, same update as the fuzz harness PRNG (tests/FuzzGen.h) so a
/// synth workload is reproducible from its seed alone.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed * 2654435761u + 12345) {}
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  int range(int Lo, int Hi) { // Inclusive.
    return Lo + static_cast<int>(next() % (Hi - Lo + 1));
  }
  bool chance(int Percent) { return range(1, 100) <= Percent; }

private:
  uint64_t State;
};

} // namespace

std::string gca::synthName(const SynthSpec &Spec) {
  return strFormat("synth:N=%d,seed=%llu", Spec.Nests,
                   static_cast<unsigned long long>(Spec.Seed));
}

std::string gca::synthSource(const SynthSpec &Spec) {
  Rng R(Spec.Seed);
  int NumArrays = Spec.NumArrays < 2 ? 2 : Spec.NumArrays;

  std::string Src = "program synth\nparam n = " +
                    std::to_string(Spec.Extent < 8 ? 8 : Spec.Extent) + "\n";
  std::vector<std::string> Arrays;
  for (int A = 0; A != NumArrays; ++A) {
    std::string Name = strFormat("a%d", A);
    Arrays.push_back(Name);
    Src += "real " + Name + "(n,n) distribute (block,block)\n";
  }
  Src += "real s\nbegin\n";
  for (const std::string &A : Arrays)
    Src += "  " + A + " = 1\n";

  // Interior section shifted by (Di, Dj); conforms with the (3:n-2,3:n-2)
  // lhs for any |Di|,|Dj| <= 2.
  auto Ref = [&](const std::string &Name, int Di, int Dj) {
    return strFormat("%s(%d:n-%d,%d:n-%d)", Name.c_str(), 3 + Di, 2 - Di,
                     3 + Dj, 2 - Dj);
  };

  Src += "  do t = 1, 2\n";
  std::string Base = "    ";
  std::string Pad = Base;
  int OpenIf = 0;     // Statements left inside an open branch.
  int OpenLoop = 0;   // Statements left inside an open inner loop.
  int LoopId = 0;
  // The most recent stencil reference, replayed verbatim now and then so the
  // redundancy-elimination pass always has same-descriptor work at scale.
  std::string LastRef;

  for (int S = 0; S != Spec.Nests; ++S) {
    if (OpenLoop == 0 && OpenIf == 0 && Spec.InnerLoopEvery > 0 &&
        S % Spec.InnerLoopEvery == Spec.InnerLoopEvery - 1) {
      Src += Pad + strFormat("do k%d = 1, 2\n", LoopId++);
      Pad += "  ";
      OpenLoop = R.range(2, 4);
    }
    if (OpenIf == 0 && R.chance(15)) {
      Src += Pad + "if (c" + std::to_string(S) + ") then\n";
      Pad += "  ";
      OpenIf = R.range(1, 2);
    }

    if (R.chance(12)) {
      // A reduction over a random array's row.
      Src += Pad + strFormat("s = sum(%s(%d,1:n))\n",
                             Arrays[R.range(0, NumArrays - 1)].c_str(),
                             R.range(1, 4));
    } else if (!LastRef.empty() && R.chance(18)) {
      // Exact re-read of the previous stencil reference.
      Src += Pad + strFormat("a%d(3:n-2,3:n-2) = ", R.range(0, NumArrays - 1)) +
             LastRef + "\n";
    } else {
      int Terms = R.range(1, 4);
      std::string Stmt =
          Pad + strFormat("a%d(3:n-2,3:n-2) = ", R.range(0, NumArrays - 1));
      for (int T = 0; T != Terms; ++T) {
        int Rhs = R.range(0, NumArrays - 1);
        int Di = R.range(-2, 2), Dj = R.range(-2, 2);
        if (T)
          Stmt += " + ";
        std::string RefStr = Ref(Arrays[Rhs], Di, Dj);
        if (T == 0)
          LastRef = RefStr;
        Stmt += RefStr;
      }
      Src += Stmt + "\n";
    }

    if (OpenIf > 0 && --OpenIf == 0) {
      Pad = Pad.substr(2);
      Src += Pad + "end if\n";
    }
    if (OpenIf == 0 && OpenLoop > 0 && --OpenLoop == 0) {
      Pad = Pad.substr(2);
      Src += Pad + "end do\n";
    }
  }
  if (OpenIf > 0) {
    Pad = Pad.substr(2);
    Src += Pad + "end if\n";
  }
  if (OpenLoop > 0) {
    Pad = Pad.substr(2);
    Src += Pad + "end do\n";
  }
  Src += "  end do\nend\n";
  return Src;
}
