//===- workloads/Synth.h - Synthetic workload generator ---------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic synthetic-workload generator for scaling studies of the
/// placement engine. The paper's evaluation routines top out at a few dozen
/// communication entries; the asymptotics of subset elimination, redundancy
/// elimination, and combining only show at hundreds to thousands of entries,
/// so the benchmark/regression-gate workloads are generated: `N` statement
/// nests over a pool of distributed arrays, mixing shift stencils (including
/// diagonals that decompose into linked axis phases), row broadcasts, global
/// reductions, and deliberate exact re-reads (redundancy-elimination
/// fodder), optionally wrapped in inner loops so candidate ranges span
/// several dominator-tree levels.
///
/// The mapping (spec -> source text) is a pure function of the spec,
/// including the seed, so bench baselines and regression comparisons are
/// reproducible across machines and runs.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_WORKLOADS_SYNTH_H
#define GCA_WORKLOADS_SYNTH_H

#include <cstdint>
#include <string>

namespace gca {

/// Shape of one generated workload.
struct SynthSpec {
  /// Number of statement nests in the timestep body. Each nest yields
  /// roughly 2.5 communication entries on average (stencil statements carry
  /// 1-4 distinct-pattern references; reductions and broadcasts one each).
  int Nests = 100;
  /// PRNG seed; same (seed, knobs) -> byte-identical source.
  uint64_t Seed = 1;
  /// Distributed (n,n) arrays in the pool.
  int NumArrays = 8;
  /// Per-dimension problem size (the `n` param; overridable with -p n=...).
  int Extent = 64;
  /// Wrap every K-th run of statements in an inner `do` loop whose bounds
  /// are communication-invariant, giving those entries multi-level
  /// placement ranges. 0 disables inner loops.
  int InnerLoopEvery = 8;
};

/// The generated program text.
std::string synthSource(const SynthSpec &Spec);

/// "synth:N=<nests>,seed=<seed>" — the input name used by drivers and
/// benchmarks for a generated workload.
std::string synthName(const SynthSpec &Spec);

} // namespace gca

#endif // GCA_WORKLOADS_SYNTH_H
