//===- workloads/Workloads.cpp - Evaluation programs ----------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace gca;

//===----------------------------------------------------------------------===//
// shallow — NCAR shallow-water, the paper's Figure 2 structure: 13 (n,n)
// (BLOCK,BLOCK) arrays; per timestep, F90 array statements compute cu, cv,
// h, z from p/u/v (read with +-1 shifts, including the diagonal in z that
// message coalescing subsumes), then unew/vnew/pnew from z/h/cu/cv, then the
// time-smoothing copies. Static NNC call sites: orig 20, nored 14, comb 8.
//===----------------------------------------------------------------------===//

static const char *ShallowSrc = R"(
program shallow
param n = 64
param nsteps = 4
real u(n,n) distribute (block,block)
real v(n,n) distribute (block,block)
real p(n,n) distribute (block,block)
real unew(n,n) distribute (block,block)
real vnew(n,n) distribute (block,block)
real pnew(n,n) distribute (block,block)
real uold(n,n) distribute (block,block)
real vold(n,n) distribute (block,block)
real pold(n,n) distribute (block,block)
real cu(n,n) distribute (block,block)
real cv(n,n) distribute (block,block)
real z(n,n) distribute (block,block)
real h(n,n) distribute (block,block)
begin
  u = 1
  v = 1
  p = 1
  uold = 1
  vold = 1
  pold = 1
  cu = 0
  cv = 0
  z = 0
  h = 0
  unew = 0
  vnew = 0
  pnew = 0
  do t = 1, nsteps
    cu(2:n,1:n) = p(2:n,1:n) + p(1:n-1,1:n) + u(2:n,1:n)
    cv(1:n,2:n) = p(1:n,2:n) + p(1:n,1:n-1) + v(1:n,2:n)
    h(1:n-1,1:n-1) = p(1:n-1,1:n-1) + u(2:n,1:n-1) + u(1:n-1,1:n-1) + v(1:n-1,2:n) + v(1:n-1,1:n-1)
    z(2:n,2:n) = v(2:n,2:n) + v(1:n-1,2:n) + u(2:n,2:n) + u(2:n,1:n-1) + p(1:n-1,1:n-1) + p(2:n,1:n-1) + p(1:n-1,2:n) + p(2:n,2:n)
    unew(2:n,1:n-1) = uold(2:n,1:n-1) + z(2:n,2:n) + z(2:n,1:n-1) + cv(2:n,2:n) + cv(1:n-1,2:n) + cv(1:n-1,1:n-1) + cv(2:n,1:n-1) + h(2:n,1:n-1) + h(1:n-1,1:n-1)
    vnew(1:n-1,2:n) = vold(1:n-1,2:n) + z(2:n,2:n) + z(1:n-1,2:n) + cu(2:n,2:n) + cu(2:n,1:n-1) + cu(1:n-1,1:n-1) + cu(1:n-1,2:n) + h(1:n-1,2:n) + h(1:n-1,1:n-1)
    pnew(2:n-1,2:n-1) = pold(2:n-1,2:n-1) + cu(3:n,2:n-1) + cu(2:n-1,2:n-1) + cv(2:n-1,3:n) + cv(2:n-1,2:n-1) + h(1:n-2,2:n-1) + h(2:n-1,1:n-2)
    uold(1:n,1:n) = u(1:n,1:n) + unew(1:n,1:n)
    vold(1:n,1:n) = v(1:n,1:n) + vnew(1:n,1:n)
    pold(1:n,1:n) = p(1:n,1:n) + pnew(1:n,1:n)
    u = unew
    v = vnew
    p = pnew
  end do
end
)";

//===----------------------------------------------------------------------===//
// gravity — NPAC gravity, the paper's Figure 1 structure: a 3-d (n,n,n)
// (*,BLOCK,BLOCK) field swept plane by plane inside a timestep loop, with
// plane-stencil NNC for g and for the 2-d glast copy, plus four global sums
// over rows of each. NNC: orig 8, nored 8, comb 4 (g and glast combine per
// direction). SUM: orig 8, nored 8, comb 2 (four sums combine per point).
//===----------------------------------------------------------------------===//

static const char *GravitySrc = R"(
program gravity
param n = 16
param nsteps = 2
real g(n,n,n) distribute (*,block,block)
real glast(n,n) distribute (block,block)
real w(n,n) distribute (block,block)
real w2(n,n) distribute (block,block)
real sg
real sgl
begin
  g = 1
  glast = 0
  w = 0
  w2 = 0
  sg = 0
  sgl = 0
  do t = 1, nsteps
    do i = 2, n-1
      w(2:n-1,2:n-1) = g(i-1,3:n,2:n-1) + g(i-1,1:n-2,2:n-1) + g(i-1,2:n-1,3:n) + g(i-1,2:n-1,1:n-2)
      sg = sum(g(i,n,1:n)) + sum(g(i,n-1,1:n)) + sum(g(i,1,1:n)) + sum(g(i,2,1:n))
      w2(2:n-1,2:n-1) = glast(3:n,2:n-1) + glast(1:n-2,2:n-1) + glast(2:n-1,3:n) + glast(2:n-1,1:n-2)
      sgl = sum(glast(n,1:n)) + sum(glast(n-1,1:n)) + sum(glast(1,1:n)) + sum(glast(2,1:n))
      glast(1:n,1:n) = g(i,1:n,1:n)
      g(i,1:n,1:n) = w(1:n,1:n) + w2(1:n,1:n) + sg + sgl
    end do
  end do
end
)";

//===----------------------------------------------------------------------===//
// trimesh — over 25 (n,n) (BLOCK,BLOCK) arrays. main: six stencil arrays
// read with all four shift directions each iteration (24 sites), combining
// to one exchange per direction (4). normdot: thirteen shifted references
// over four arrays (13 -> 13 -> 4).
//===----------------------------------------------------------------------===//

static const char *TrimeshSrc = R"(
program trimesh
param n = 64
param nsteps = 4
routine main
real a1(n,n) distribute (block,block)
real a2(n,n) distribute (block,block)
real a3(n,n) distribute (block,block)
real a4(n,n) distribute (block,block)
real a5(n,n) distribute (block,block)
real a6(n,n) distribute (block,block)
real r1(n,n) distribute (block,block)
real r2(n,n) distribute (block,block)
real r3(n,n) distribute (block,block)
real r4(n,n) distribute (block,block)
real r5(n,n) distribute (block,block)
real r6(n,n) distribute (block,block)
real e1(n,n) distribute (block,block)
real e2(n,n) distribute (block,block)
real e3(n,n) distribute (block,block)
real e4(n,n) distribute (block,block)
real e5(n,n) distribute (block,block)
real e6(n,n) distribute (block,block)
real e7(n,n) distribute (block,block)
real e8(n,n) distribute (block,block)
real e9(n,n) distribute (block,block)
real e10(n,n) distribute (block,block)
real e11(n,n) distribute (block,block)
real e12(n,n) distribute (block,block)
real e13(n,n) distribute (block,block)
real e14(n,n) distribute (block,block)
begin
  a1 = 1
  a2 = 1
  a3 = 1
  a4 = 1
  a5 = 1
  a6 = 1
  do t = 1, nsteps
    r1(2:n-1,2:n-1) = a1(3:n,2:n-1) + a1(1:n-2,2:n-1) + a1(2:n-1,3:n) + a1(2:n-1,1:n-2)
    r2(2:n-1,2:n-1) = a2(3:n,2:n-1) + a2(1:n-2,2:n-1) + a2(2:n-1,3:n) + a2(2:n-1,1:n-2)
    r3(2:n-1,2:n-1) = a3(3:n,2:n-1) + a3(1:n-2,2:n-1) + a3(2:n-1,3:n) + a3(2:n-1,1:n-2)
    r4(2:n-1,2:n-1) = a4(3:n,2:n-1) + a4(1:n-2,2:n-1) + a4(2:n-1,3:n) + a4(2:n-1,1:n-2)
    r5(2:n-1,2:n-1) = a5(3:n,2:n-1) + a5(1:n-2,2:n-1) + a5(2:n-1,3:n) + a5(2:n-1,1:n-2)
    r6(2:n-1,2:n-1) = a6(3:n,2:n-1) + a6(1:n-2,2:n-1) + a6(2:n-1,3:n) + a6(2:n-1,1:n-2)
    e1(1:n,1:n) = r1(1:n,1:n) + e2(1:n,1:n)
    e2(1:n,1:n) = r2(1:n,1:n) + e3(1:n,1:n)
    e3(1:n,1:n) = r3(1:n,1:n) + e4(1:n,1:n)
    e4(1:n,1:n) = r4(1:n,1:n) + e5(1:n,1:n)
    e5(1:n,1:n) = r5(1:n,1:n) + e6(1:n,1:n)
    e6(1:n,1:n) = r6(1:n,1:n) + e7(1:n,1:n)
    e7(1:n,1:n) = e8(1:n,1:n) + e9(1:n,1:n)
    e8(1:n,1:n) = e10(1:n,1:n) + e11(1:n,1:n)
    e9(1:n,1:n) = e12(1:n,1:n) + e13(1:n,1:n)
    e10(1:n,1:n) = e14(1:n,1:n) + r1(1:n,1:n)
    a1(1:n,1:n) = r1(1:n,1:n) + e1(1:n,1:n)
    a2(1:n,1:n) = r2(1:n,1:n) + e2(1:n,1:n)
    a3(1:n,1:n) = r3(1:n,1:n) + e3(1:n,1:n)
    a4(1:n,1:n) = r4(1:n,1:n) + e4(1:n,1:n)
    a5(1:n,1:n) = r5(1:n,1:n) + e5(1:n,1:n)
    a6(1:n,1:n) = r6(1:n,1:n) + e6(1:n,1:n)
  end do
end
routine normdot
real c1(n,n) distribute (block,block)
real c2(n,n) distribute (block,block)
real c3(n,n) distribute (block,block)
real c4(n,n) distribute (block,block)
real d1(n,n) distribute (block,block)
real d2(n,n) distribute (block,block)
real d3(n,n) distribute (block,block)
real d4(n,n) distribute (block,block)
begin
  c1 = 1
  c2 = 1
  c3 = 1
  c4 = 1
  do t = 1, nsteps
    d1(2:n-1,2:n-1) = c1(3:n,2:n-1) + c1(1:n-2,2:n-1) + c1(2:n-1,3:n) + c1(2:n-1,1:n-2)
    d2(2:n-1,2:n-1) = c2(3:n,2:n-1) + c2(1:n-2,2:n-1) + c2(2:n-1,3:n)
    d3(2:n-1,2:n-1) = c3(1:n-2,2:n-1) + c3(2:n-1,3:n) + c3(2:n-1,1:n-2)
    d4(2:n-1,2:n-1) = c4(3:n,2:n-1) + c4(2:n-1,3:n) + c4(2:n-1,1:n-2)
    c1(1:n,1:n) = d1(1:n,1:n)
    c2(1:n,1:n) = d2(1:n,1:n)
    c3(1:n,1:n) = d3(1:n,1:n)
    c4(1:n,1:n) = d4(1:n,1:n)
  end do
end
)";

//===----------------------------------------------------------------------===//
// hydflo — eight 5x(n+2)^3 arrays distributed (*,BLOCK,BLOCK,BLOCK). gauss:
// an iterative sweep whose statements re-read the same shifted planes, so
// redundancy elimination drops 52 sites to 30 and combining reaches 6 (one
// exchange per 3-d direction) — the paper's factor-of-almost-nine row.
// flux: two-field sweep, 12 -> 12 -> 6.
//===----------------------------------------------------------------------===//

static const char *HydfloSrc = R"(
program hydflo
param n = 16
param nsteps = 2
routine gauss
real h1(5,0:n+1,0:n+1,0:n+1) distribute (*,block,block,block)
real h2(5,0:n+1,0:n+1,0:n+1) distribute (*,block,block,block)
real h3(5,0:n+1,0:n+1,0:n+1) distribute (*,block,block,block)
real h4(5,0:n+1,0:n+1,0:n+1) distribute (*,block,block,block)
real h5(5,0:n+1,0:n+1,0:n+1) distribute (*,block,block,block)
real f1(5,0:n+1,0:n+1,0:n+1) distribute (*,block,block,block)
real f2(5,0:n+1,0:n+1,0:n+1) distribute (*,block,block,block)
real f3(5,0:n+1,0:n+1,0:n+1) distribute (*,block,block,block)
begin
  h1 = 1
  h2 = 1
  h3 = 1
  h4 = 1
  h5 = 1
  f1 = 0
  f2 = 0
  f3 = 0
  do t = 1, nsteps
    f1(1,1:n,1:n,1:n) = h1(1,2:n+1,1:n,1:n) + h1(1,0:n-1,1:n,1:n) + h1(1,1:n,2:n+1,1:n) + h1(1,1:n,0:n-1,1:n) + h1(1,1:n,1:n,2:n+1) + h1(1,1:n,1:n,0:n-1)
    f2(1,1:n,1:n,1:n) = h2(1,2:n+1,1:n,1:n) + h2(1,0:n-1,1:n,1:n) + h2(1,1:n,2:n+1,1:n) + h2(1,1:n,0:n-1,1:n) + h2(1,1:n,1:n,2:n+1) + h2(1,1:n,1:n,0:n-1)
    f3(1,1:n,1:n,1:n) = h3(1,2:n+1,1:n,1:n) + h3(1,0:n-1,1:n,1:n) + h3(1,1:n,2:n+1,1:n) + h3(1,1:n,0:n-1,1:n) + h3(1,1:n,1:n,2:n+1) + h3(1,1:n,1:n,0:n-1)
    f1(2,1:n,1:n,1:n) = h4(1,2:n+1,1:n,1:n) + h4(1,0:n-1,1:n,1:n) + h4(1,1:n,2:n+1,1:n) + h4(1,1:n,0:n-1,1:n) + h4(1,1:n,1:n,2:n+1) + h4(1,1:n,1:n,0:n-1)
    f2(2,1:n,1:n,1:n) = h5(1,2:n+1,1:n,1:n) + h5(1,0:n-1,1:n,1:n) + h5(1,1:n,2:n+1,1:n) + h5(1,1:n,0:n-1,1:n) + h5(1,1:n,1:n,2:n+1) + h5(1,1:n,1:n,0:n-1)
    f3(2,1:n,1:n,1:n) = h1(1,2:n+1,1:n,1:n) + h1(1,0:n-1,1:n,1:n) + h1(1,1:n,2:n+1,1:n) + h1(1,1:n,0:n-1,1:n) + h1(1,1:n,1:n,2:n+1) + h1(1,1:n,1:n,0:n-1) + h2(1,2:n+1,1:n,1:n) + h2(1,0:n-1,1:n,1:n) + h2(1,1:n,2:n+1,1:n) + h2(1,1:n,0:n-1,1:n) + h2(1,1:n,1:n,2:n+1) + h2(1,1:n,1:n,0:n-1) + h3(1,2:n+1,1:n,1:n) + h3(1,0:n-1,1:n,1:n) + h3(1,1:n,2:n+1,1:n) + h3(1,1:n,0:n-1,1:n) + h3(1,1:n,1:n,2:n+1) + h3(1,1:n,1:n,0:n-1) + h4(1,1:n,2:n+1,1:n) + h4(1,1:n,0:n-1,1:n) + h4(1,1:n,1:n,2:n+1) + h4(1,1:n,1:n,0:n-1)
    h1(1,1:n,1:n,1:n) = f1(1,1:n,1:n,1:n)
    h2(1,1:n,1:n,1:n) = f2(1,1:n,1:n,1:n)
    h3(1,1:n,1:n,1:n) = f3(1,1:n,1:n,1:n)
    h4(1,1:n,1:n,1:n) = f1(2,1:n,1:n,1:n)
    h5(1,1:n,1:n,1:n) = f2(2,1:n,1:n,1:n)
  end do
end
routine flux
real p1(5,0:n+1,0:n+1,0:n+1) distribute (*,block,block,block)
real p2(5,0:n+1,0:n+1,0:n+1) distribute (*,block,block,block)
real q1(5,0:n+1,0:n+1,0:n+1) distribute (*,block,block,block)
real q2(5,0:n+1,0:n+1,0:n+1) distribute (*,block,block,block)
begin
  p1 = 1
  p2 = 1
  do t = 1, nsteps
    q1(1,1:n,1:n,1:n) = p1(1,2:n+1,1:n,1:n) + p1(1,0:n-1,1:n,1:n) + p1(1,1:n,2:n+1,1:n) + p1(1,1:n,0:n-1,1:n) + p1(1,1:n,1:n,2:n+1) + p1(1,1:n,1:n,0:n-1)
    q2(1,1:n,1:n,1:n) = p2(1,2:n+1,1:n,1:n) + p2(1,0:n-1,1:n,1:n) + p2(1,1:n,2:n+1,1:n) + p2(1,1:n,0:n-1,1:n) + p2(1,1:n,1:n,2:n+1) + p2(1,1:n,1:n,0:n-1)
    p1(1,1:n,1:n,1:n) = q1(1,1:n,1:n,1:n)
    p2(1,1:n,1:n,1:n) = q2(1,1:n,1:n,1:n)
  end do
end
)";

//===----------------------------------------------------------------------===//
// Figures 3 and 4 (motivating examples).
//===----------------------------------------------------------------------===//

static const char *Figure3FusedSrc = R"(
program figure3a
param n = 64
real a(n) distribute (block)
real b(n) distribute (block)
real c(n) distribute (block)
begin
  a = 3
  b = 4
  c(2:n) = a(1:n-1) + b(1:n-1)
end
)";

static const char *Figure3ScalarizedSrc = R"(
program figure3b
param n = 64
real a(n) distribute (block)
real b(n) distribute (block)
real c(n) distribute (block)
begin
  do i = 1, n
    a(i) = 3
  end do
  do i = 1, n
    b(i) = 4
  end do
  do i = 2, n
    c(i) = a(i-1) + b(i-1)
  end do
end
)";

static const char *Figure3HandCodedSrc = R"(
program figure3c
param n = 64
real a(n) distribute (block)
real b(n) distribute (block)
real c(n) distribute (block)
begin
  do i = 1, n
    a(i) = 3
    b(i) = 4
  end do
  do i = 2, n
    c(i) = a(i-1) + b(i-1)
  end do
end
)";

static const char *Figure4Src = R"(
program figure4
param n = 16
real a(n,n) distribute (block,*)
real b(n,n) distribute (block,*)
real c(n,n) distribute (block,*)
real d(n,n) distribute (block,*)
begin
  b(:,1:n:2) = 1
  b(:,2:n:2) = 2
  if (cond) then
    a = 3
  else
    a = d
  end if
  do i = 2, n
    do j = 1, n, 2
      c(i,j) = a(i-1,j) + b(i-1,j)
    end do
    do j = 1, n
      c(i,j) = a(i-1,j) + b(i-1,j)
    end do
  end do
end
)";

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

const Workload &gca::shallowWorkload() {
  static const Workload W{
      "shallow", ShallowSrc, {{"shallow", "NNC", 20, 14, 8}}};
  return W;
}

const Workload &gca::gravityWorkload() {
  static const Workload W{"gravity",
                          GravitySrc,
                          {{"gravity", "NNC", 8, 8, 4},
                           {"gravity", "SUM", 8, 8, 2}}};
  return W;
}

const Workload &gca::trimeshWorkload() {
  static const Workload W{"trimesh",
                          TrimeshSrc,
                          {{"main", "NNC", 24, 24, 4},
                           {"normdot", "NNC", 13, 13, 4}}};
  return W;
}

const Workload &gca::hydfloWorkload() {
  static const Workload W{"hydflo",
                          HydfloSrc,
                          {{"gauss", "NNC", 52, 30, 6},
                           {"flux", "NNC", 12, 12, 6}}};
  return W;
}

const Workload &gca::figure1Workload() {
  // Figure 1 is the motivating form of gravity; the communication structure
  // is identical.
  static const Workload W{"figure1",
                          GravitySrc,
                          {{"gravity", "NNC", 8, 8, 4},
                           {"gravity", "SUM", 8, 8, 2}}};
  return W;
}

const Workload &gca::figure2Workload() {
  static const Workload W{
      "figure2", ShallowSrc, {{"shallow", "NNC", 20, 14, 8}}};
  return W;
}

const Workload &gca::figure3FusedWorkload() {
  static const Workload W{"figure3a", Figure3FusedSrc, {}};
  return W;
}

const Workload &gca::figure3ScalarizedWorkload() {
  static const Workload W{"figure3b", Figure3ScalarizedSrc, {}};
  return W;
}

const Workload &gca::figure3HandCodedWorkload() {
  static const Workload W{"figure3c", Figure3HandCodedSrc, {}};
  return W;
}

const Workload &gca::figure4Workload() {
  static const Workload W{
      "figure4", Figure4Src, {{"figure4", "NNC", 2, 3, 1}}};
  return W;
}

std::vector<const Workload *> gca::evaluationWorkloads() {
  return {&shallowWorkload(), &gravityWorkload(), &trimeshWorkload(),
          &hydfloWorkload()};
}

std::vector<const Workload *> gca::allWorkloads() {
  return {&shallowWorkload(),        &gravityWorkload(),
          &trimeshWorkload(),        &hydfloWorkload(),
          &figure3FusedWorkload(),   &figure3ScalarizedWorkload(),
          &figure3HandCodedWorkload(), &figure4Workload()};
}
