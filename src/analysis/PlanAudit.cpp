//===- analysis/PlanAudit.cpp - Static communication plan auditor ---------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "analysis/PlanAudit.h"

#include "core/Detect.h"
#include "support/Stats.h"
#include "support/StrUtil.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <set>

using namespace gca;

const char *gca::auditRuleName(AuditRule Rule) {
  switch (Rule) {
  case AuditRule::Structure:
    return "structure";
  case AuditRule::PlacementRange:
    return "placement-range";
  case AuditRule::InterveningDef:
    return "intervening-def";
  case AuditRule::SubsetCoverage:
    return "subset-coverage";
  case AuditRule::RedundancyAvail:
    return "redundancy-availability";
  case AuditRule::CombineLegality:
    return "combine-legality";
  }
  return "?";
}

std::string AuditViolation::str() const {
  std::string Out = strFormat("%s(entry=%d,group=%d)", auditRuleName(Rule),
                              EntryId, GroupId);
  if (Loc.isValid())
    Out += " @" + Loc.str();
  return Out + ": " + Message;
}

std::string AuditReport::str() const {
  std::string Out = strFormat(
      "audit[%s]: %s (%d entries, %d groups, %d violations)\n",
      strategyName(Strat), ok() ? "PASS" : "FAIL", EntriesChecked,
      GroupsChecked, static_cast<int>(Violations.size()));
  for (const AuditViolation &V : Violations)
    Out += "  " + V.str() + "\n";
  return Out;
}

std::string AuditReport::json() const {
  std::string Out = strFormat(
      "{\"ok\":%s,\"strategy\":\"%s\",\"entries\":%d,\"groups\":%d,"
      "\"violations\":[",
      ok() ? "true" : "false", strategyName(Strat), EntriesChecked,
      GroupsChecked);
  for (size_t I = 0; I != Violations.size(); ++I) {
    const AuditViolation &V = Violations[I];
    if (I)
      Out += ",";
    Out += strFormat("{\"rule\":\"%s\",\"entry\":%d,\"group\":%d,"
                     "\"line\":%d,\"col\":%d,\"message\":\"%s\"}",
                     auditRuleName(V.Rule), V.EntryId, V.GroupId, V.Loc.Line,
                     V.Loc.Col, jsonEscape(V.Message).c_str());
  }
  return Out + "]}";
}

namespace {

/// One auditor run over one plan.
class Auditor {
public:
  Auditor(const AnalysisContext &Ctx, const CommPlan &Plan,
          const PlacementOptions &Opts, DiagEngine *Diags)
      : Ctx(Ctx), Plan(Plan), Opts(Opts), Diags(Diags) {}

  AuditReport run() {
    Report.Strat = Plan.Strat;
    Report.EntriesChecked = static_cast<int>(Plan.Entries.size());
    Report.GroupsChecked = static_cast<int>(Plan.Groups.size());

    collectArrayDefs();
    computeBranchSignatures();
    // Sorted dense slot ids of every entry's original placement range, so
    // the per-member "is the group's slot a legal position" probe in
    // checkCombining is a binary search instead of a list scan.
    OrigCandIds.resize(Plan.Entries.size());
    for (const CommEntry &E : Plan.Entries) {
      for (const Slot &S : E.OriginalCandidates)
        OrigCandIds[E.Id].push_back(Ctx.G.slotId(S));
      std::sort(OrigCandIds[E.Id].begin(), OrigCandIds[E.Id].end());
    }

    checkStructure();

    // The per-entry and per-group rule checks are independent and read-only
    // (shared precomputed tables, const context), so they fan out across the
    // placement pool. Each check appends its violations to a per-item list;
    // emission — the diagnostics and the report — happens serially in item
    // order afterwards, so every job count produces the identical report
    // and diagnostic stream.
    const int NE = static_cast<int>(Plan.Entries.size());
    std::vector<std::vector<AuditViolation>> PerEntry(NE);
    runChunked(Opts.Pool, NE, parallelChunkCount(Opts.Pool, Opts.Jobs, NE),
               [&](int Begin, int End, int) {
                 DepDirs Dirs; // Per-chunk subscript-solve scratch.
                 for (int I = Begin; I < End; ++I) {
                   const CommEntry &E = Plan.Entries[I];
                   std::vector<AuditViolation> &Out = PerEntry[I];
                   const CommGroup *G = servingGroup(E, Out);
                   if (!G)
                     continue; // Reported by structure / availability.
                   checkPlacementRange(E, *G, Out);
                   checkInterveningDefs(E, *G, Dirs, Out);
                   checkCoverage(E, *G, Out);
                 }
               });
    for (std::vector<AuditViolation> &V : PerEntry)
      emitAll(std::move(V));

    const int NG = static_cast<int>(Plan.Groups.size());
    std::vector<std::vector<AuditViolation>> PerGroup(NG);
    runChunked(Opts.Pool, NG, parallelChunkCount(Opts.Pool, Opts.Jobs, NG),
               [&](int Begin, int End, int) {
                 for (int I = Begin; I < End; ++I)
                   checkCombining(Plan.Groups[I], PerGroup[I]);
               });
    for (std::vector<AuditViolation> &V : PerGroup)
      emitAll(std::move(V));
    return std::move(Report);
  }

private:
  // --- Reporting ------------------------------------------------------------

  /// Records a violation into \p Out. Collection is side-effect free so the
  /// rule checks can run on worker threads; emitAll() later renders the
  /// diagnostics and fills the report, serially and in deterministic order.
  static void violate(std::vector<AuditViolation> &Out, AuditRule Rule,
                      int EntryId, int GroupId, SourceLoc Loc,
                      std::string Msg) {
    Out.push_back({Rule, EntryId, GroupId, Loc, std::move(Msg)});
  }

  /// Serial emission: the diagnostic stream and the report see violations in
  /// the same order the serial auditor produced them.
  void emitAll(std::vector<AuditViolation> &&Violations) {
    for (AuditViolation &V : Violations) {
      if (Diags)
        Diags->error(V.Loc, "plan audit [%s]: %s", auditRuleName(V.Rule),
                     V.Message.c_str());
      Report.Violations.push_back(std::move(V));
    }
  }

  SourceLoc locOf(const CommEntry &E) const {
    if (!E.Refs.empty() && E.Refs[0].Loc.isValid())
      return E.Refs[0].Loc;
    return E.UseStmt->loc();
  }

  std::string arrayName(int Id) const { return Ctx.R.array(Id).Name; }

  std::string slotStr(const Slot &S) const {
    return strFormat("(B%d,%d)", S.Node, S.Index);
  }

  // --- Shared pre-computation ------------------------------------------------

  /// All regular SSA definitions, bucketed by array id.
  void collectArrayDefs() {
    ArrayDefs.assign(Ctx.R.arrays().size(), {});
    for (unsigned I = 0, E = Ctx.S.numDefs(); I != E; ++I) {
      const SsaDef &D = Ctx.S.def(static_cast<int>(I));
      if (D.Kind != DefKind::Regular || !Ctx.S.varIsArray(D.Var))
        continue;
      ArrayDefs[Ctx.S.arrayOfVar(D.Var)].push_back(D.Stmt);
    }
  }

  /// Branch signature of every statement: the (if-stmt id, branch index)
  /// pairs on its ancestor chain. Two statements lie on disjoint
  /// same-iteration paths iff they disagree on the branch of a shared IF.
  void computeBranchSignatures() {
    BranchSig.assign(Ctx.R.numStmts(), {});
    std::vector<std::pair<int, int>> Stack;
    std::function<void(const std::vector<Stmt *> &)> Walk =
        [&](const std::vector<Stmt *> &Body) {
          for (Stmt *S : Body) {
            BranchSig[S->id()] = Stack;
            if (auto *L = dyn_cast<LoopStmt>(S)) {
              Walk(L->body());
            } else if (auto *I = dyn_cast<IfStmt>(S)) {
              Stack.emplace_back(I->id(), 0);
              Walk(I->thenBody());
              Stack.back().second = 1;
              Walk(I->elseBody());
              Stack.pop_back();
            }
          }
        };
    Walk(Ctx.R.body());
  }

  /// True when \p A and \p B sit in different arms of some common IF (no
  /// single-iteration execution runs both).
  bool onDisjointBranches(const Stmt *A, const Stmt *B) const {
    for (const auto &[IfId, Arm] : BranchSig[A->id()])
      for (const auto &[IfId2, Arm2] : BranchSig[B->id()])
        if (IfId == IfId2 && Arm != Arm2)
          return true;
    return false;
  }

  /// The group that serves entry \p E's communication (its own group, or the
  /// group its SubsumedBy chain was attached to). Null, with a violation
  /// recorded, when the entry resolves nowhere.
  const CommGroup *servingGroup(const CommEntry &E,
                                std::vector<AuditViolation> &Out) const {
    if (E.GroupId < 0 || E.GroupId >= static_cast<int>(Plan.Groups.size())) {
      violate(Out,
              E.Eliminated ? AuditRule::RedundancyAvail
                           : AuditRule::Structure,
              E.Id, E.GroupId, locOf(E),
              strFormat("entry %d (array '%s') is served by no group",
                        E.Id, arrayName(E.ArrayId).c_str()));
      return nullptr;
    }
    return &Plan.Groups[E.GroupId];
  }

  // --- Structure ------------------------------------------------------------

  void checkStructure() {
    std::vector<AuditViolation> Out;
    std::vector<int> MemberOf(Plan.Entries.size(), -1);
    for (const CommGroup &G : Plan.Groups) {
      if (G.Id != static_cast<int>(&G - Plan.Groups.data()))
        violate(Out, AuditRule::Structure, -1, G.Id, SourceLoc(),
                strFormat("group id %d does not match its index", G.Id));
      if (G.Members.empty())
        violate(Out, AuditRule::Structure, -1, G.Id, SourceLoc(),
                strFormat("group %d has no members", G.Id));
      if (G.Data.size() != G.DataAug.size())
        violate(Out, AuditRule::Structure, -1, G.Id, SourceLoc(),
                strFormat("group %d has %d data descriptors but %d "
                          "augmentation records",
                          G.Id, static_cast<int>(G.Data.size()),
                          static_cast<int>(G.DataAug.size())));
      for (int Id : G.Members) {
        const CommEntry &E = Plan.Entries[Id];
        if (E.Eliminated)
          violate(Out, AuditRule::Structure, Id, G.Id, locOf(E),
                  strFormat("eliminated entry %d listed as a member of "
                            "group %d", Id, G.Id));
        if (E.GroupId != G.Id)
          violate(Out, AuditRule::Structure, Id, G.Id, locOf(E),
                  strFormat("entry %d is a member of group %d but points at "
                            "group %d", Id, G.Id, E.GroupId));
        if (MemberOf[Id] >= 0)
          violate(Out, AuditRule::Structure, Id, G.Id, locOf(E),
                  strFormat("entry %d is a member of both group %d and "
                            "group %d", Id, MemberOf[Id], G.Id));
        MemberOf[Id] = G.Id;
      }
      for (int Id : G.Attached)
        if (!Plan.Entries[Id].Eliminated)
          violate(Out, AuditRule::Structure, Id, G.Id,
                  locOf(Plan.Entries[Id]),
                  strFormat("live entry %d attached to group %d", Id, G.Id));
    }
    // Every eliminated entry must resolve through its SubsumedBy chain to a
    // live subsumer (redundancy availability, Section 4.6).
    for (const CommEntry &E : Plan.Entries) {
      if (!E.Eliminated)
        continue;
      int Cur = E.SubsumedBy;
      std::set<int> Seen;
      while (Cur >= 0 && Plan.Entries[Cur].Eliminated &&
             Seen.insert(Cur).second)
        Cur = Plan.Entries[Cur].SubsumedBy;
      if (Cur < 0 || Plan.Entries[Cur].Eliminated)
        violate(Out, AuditRule::RedundancyAvail, E.Id, E.GroupId, locOf(E),
                strFormat("eliminated entry %d has no live subsumer "
                          "(SubsumedBy chain %s)",
                          E.Id, E.SubsumedBy < 0 ? "unset" : "cyclic"));
    }
    emitAll(std::move(Out));
  }

  // --- Family 1: placement range / dominance ---------------------------------

  void checkPlacementRange(const CommEntry &E, const CommGroup &G,
                           std::vector<AuditViolation> &Out) const {
    const Slot &P = G.Placement;
    // Earliest(u) must dominate the placement: data the communication ships
    // is complete there (Claim 4.1). For reductions Earliest is the slot
    // after the partial-sum statement (Section 6.2), so this also enforces
    // the inverted ordering.
    if (!Ctx.DT.slotDominates(E.EarliestSlot, P))
      violate(Out, AuditRule::PlacementRange, E.Id, G.Id, locOf(E),
              strFormat("communication for '%s' placed at %s, before "
                        "Earliest %s",
                        arrayName(E.ArrayId).c_str(), slotStr(P).c_str(),
                        slotStr(E.EarliestSlot).c_str()));
    // The placement must not fall past Latest(u) either: groups move to the
    // latest position *common* to their members (Section 4.7).
    if (!Ctx.DT.slotDominates(P, E.LatestSlot))
      violate(Out, AuditRule::PlacementRange, E.Id, G.Id, locOf(E),
              strFormat("communication for '%s' placed at %s, past Latest "
                        "%s",
                        arrayName(E.ArrayId).c_str(), slotStr(P).c_str(),
                        slotStr(E.LatestSlot).c_str()));
    // Every use must be dominated: the data must be available on all paths.
    if (E.M.Kind != CommKind::Reduce &&
        !Ctx.slotDominatesUse(P, E.UseStmt))
      violate(Out,
              E.Eliminated ? AuditRule::RedundancyAvail
                           : AuditRule::PlacementRange,
              E.Id, G.Id, locOf(E),
              strFormat("communication for '%s' placed at %s does not "
                        "dominate its use",
                        arrayName(E.ArrayId).c_str(), slotStr(P).c_str()));
  }

  // --- Family 2: intervening definitions -------------------------------------

  void checkInterveningDefs(const CommEntry &E, const CommGroup &G,
                            DepDirs &Dirs,
                            std::vector<AuditViolation> &Out) const {
    if (E.M.Kind == CommKind::Reduce)
      return; // Reductions consume partial sums computed at their statement.
    const Slot &P = G.Placement;
    const std::vector<int> &UseNest = Ctx.G.loopNestOf(E.UseStmt);
    // Levels whose carrying loop does not enclose the placement: only these
    // can produce a family-(b) violation.
    int NL = static_cast<int>(UseNest.size());
    std::vector<char> LevelBad(static_cast<size_t>(NL) + 1, 0);
    bool AnyBad = false;
    for (int L = 1; L <= NL; ++L) {
      LevelBad[L] = Ctx.G.enclosingLoopAtLevel(P.Node, L) != UseNest[L - 1];
      AnyBad |= LevelBad[L] != 0;
    }
    for (const AssignStmt *D : ArrayDefs[E.ArrayId]) {
      // Screens that avoid the subscript solve: (a) needs the def textually
      // before the use (loop independence) and the placement dominating it;
      // (b) needs some carried level L <= CNL whose loop misses the
      // placement. Both are O(1)-checkable from the statement positions.
      bool NeedA = Ctx.G.preorderOf(D) < Ctx.G.preorderOf(E.UseStmt) &&
                   Ctx.DT.slotDominates(P, Ctx.G.slotBefore(D));
      bool NeedB = false;
      if (AnyBad) {
        int CNL = Ctx.Dep.commonNestingLevel(D, E.UseStmt);
        for (int L = 1; L <= CNL && !NeedB; ++L)
          NeedB = LevelBad[L] != 0;
      }
      if (!NeedA && !NeedB)
        continue;
      for (const ArrayRef &Ref : E.Refs) {
        // One subscript solve per (def, ref); the loop-independent and
        // per-level carried predicates both derive from the summary.
        DepDirs &DD = Dirs;
        Ctx.Dep.flowDirections(D, E.UseStmt, Ref, DD);
        // (a) Same-iteration staleness: a definition with a feasible
        // loop-independent flow dependence to the use that can execute
        // after the communication fired.
        if (DepTester::loopIndependentFromDirs(DD) &&
            !onDisjointBranches(D, E.UseStmt) &&
            Ctx.DT.slotDominates(P, Ctx.G.slotBefore(D))) {
          violate(Out, AuditRule::InterveningDef, E.Id, G.Id, locOf(E),
                  strFormat("definition of '%s' at %s executes between the "
                            "communication at %s and its use",
                            arrayName(E.ArrayId).c_str(),
                            D->loc().isValid() ? D->loc().str().c_str()
                                               : "<unknown>",
                            slotStr(P).c_str()));
          break; // One diagnostic per (def, entry) pair is enough.
        }
        // (b) Cross-iteration staleness: a definition with a dependence
        // carried by loop l rewrites communicated data every iteration, so
        // the communication must fire inside that loop.
        bool Flagged = false;
        for (int L = 1; L <= DD.CNL && !Flagged; ++L) {
          if (!DepTester::carriedFromDirs(DD, L))
            continue;
          if (static_cast<int>(UseNest.size()) < L ||
              Ctx.G.enclosingLoopAtLevel(P.Node, L) != UseNest[L - 1]) {
            const CfgLoop &Loop = Ctx.G.loop(UseNest[L - 1]);
            violate(Out, AuditRule::InterveningDef, E.Id, G.Id, locOf(E),
                    strFormat("communication for '%s' at %s sits outside "
                              "the level-%d loop '%s' that carries a true "
                              "dependence from the definition at %s",
                              arrayName(E.ArrayId).c_str(),
                              slotStr(P).c_str(), L,
                              Ctx.R.loopVarName(Loop.L->var()).c_str(),
                              D->loc().isValid() ? D->loc().str().c_str()
                                                 : "<unknown>"));
            Flagged = true;
          }
        }
        if (Flagged)
          break;
      }
    }
  }

  // --- Family 3: data coverage -----------------------------------------------

  void checkCoverage(const CommEntry &E, const CommGroup &G,
                     std::vector<AuditViolation> &Out) const {
    int Level = Ctx.slotLevel(G.Placement);
    Asd A = asdOfEntry(Ctx, E, Level);
    const RegSection &Needed = E.ReducedD ? *E.ReducedD : A.D;
    for (const Asd &Data : G.Data) {
      if (Data.ArrayId != E.ArrayId || !Needed.containedIn(Data.D))
        continue;
      // Eliminated entries additionally need the mapping covered: every
      // receiver the dropped message would have served must be served by
      // the surviving one (the M1(D1) subset-of M2(D1) test, Section 4.6).
      if (E.Eliminated && !E.M.subsumedBy(Data.M))
        continue;
      return; // Covered.
    }
    violate(Out, AuditRule::SubsetCoverage, E.Id, G.Id, locOf(E),
            strFormat("section %s of '%s' required by entry %d is not "
                      "covered by group %d's descriptors",
                      Needed.str(&Ctx.R.loopVarNames()).c_str(),
                      arrayName(E.ArrayId).c_str(), E.Id, G.Id));
  }

  // --- Family 5: combining legality -------------------------------------------

  void checkCombining(const CommGroup &G,
                      std::vector<AuditViolation> &Out) const {
    int Level = Ctx.slotLevel(G.Placement);
    int64_t Bytes = 0;
    int Payloads = 0;
    auto checkMapping = [&](const CommEntry &E) {
      if (E.M.Kind != G.Kind)
        violate(Out, AuditRule::CombineLegality, E.Id, G.Id, locOf(E),
                strFormat("entry %d (%s) combined into a %s group",
                          E.Id, commKindName(E.M.Kind),
                          commKindName(G.Kind)));
      else if (!E.M.compatibleWith(G.M))
        violate(Out, AuditRule::CombineLegality, E.Id, G.Id, locOf(E),
                strFormat("entry %d's mapping %s is incompatible with "
                          "group %d's %s",
                          E.Id, E.M.str().c_str(), G.Id, G.M.str().c_str()));
      // The group's widened mapping must reach at least as far as every
      // contributor (the overlap region serves the widest shift).
      for (unsigned K = 0; K < E.M.Offsets.size() && K < G.M.Offsets.size();
           ++K)
        if (std::llabs(E.M.Offsets[K]) > std::llabs(G.M.Offsets[K]))
          violate(Out, AuditRule::CombineLegality, E.Id, G.Id, locOf(E),
                  strFormat("group %d's shift reaches %lld along template "
                            "dim %u but entry %d needs %lld",
                            G.Id,
                            static_cast<long long>(G.M.Offsets[K]), K, E.Id,
                            static_cast<long long>(E.M.Offsets[K])));
    };
    for (int Id : G.Members) {
      const CommEntry &E = Plan.Entries[Id];
      checkMapping(E);
      // The final position must be common to every member's original
      // placement range (Section 4.7's latest-common-position rule).
      if (!std::binary_search(OrigCandIds[Id].begin(), OrigCandIds[Id].end(),
                              Ctx.G.slotId(G.Placement)))
        violate(Out, AuditRule::CombineLegality, Id, G.Id, locOf(E),
                strFormat("group %d placed at %s, which is not a legal "
                          "placement point of member entry %d",
                          G.Id, slotStr(G.Placement).c_str(), Id));
      if (G.Kind != CommKind::Reduce) {
        Bytes += estimatePerProcBytes(Ctx, asdOfEntry(Ctx, E, Level),
                                      Opts.NumProcs);
        ++Payloads;
      }
    }
    for (int Id : G.Attached)
      checkMapping(Plan.Entries[Id]);
    // The combining size threshold gates *combined* messages only; a lone
    // oversized message is legal (there is nothing to split).
    if (Payloads >= 2 && Bytes > Opts.CombineThresholdBytes)
      violate(Out, AuditRule::CombineLegality, -1, G.Id,
              G.Members.empty() ? SourceLoc()
                                : locOf(Plan.Entries[G.Members[0]]),
              strFormat("group %d combines %lld bytes per processor, over "
                        "the %lld byte threshold",
                        G.Id, static_cast<long long>(Bytes),
                        static_cast<long long>(Opts.CombineThresholdBytes)));
  }

  const AnalysisContext &Ctx;
  const CommPlan &Plan;
  const PlacementOptions &Opts;
  DiagEngine *Diags;
  AuditReport Report;
  /// Array id -> regular defining statements.
  std::vector<std::vector<const AssignStmt *>> ArrayDefs;
  /// Stmt id -> (if id, branch) ancestor pairs.
  std::vector<std::vector<std::pair<int, int>>> BranchSig;
  /// Entry id -> sorted dense slot ids of OriginalCandidates.
  std::vector<std::vector<int>> OrigCandIds;
};

} // namespace

AuditReport gca::auditPlan(const AnalysisContext &Ctx, const CommPlan &Plan,
                           const PlacementOptions &Opts, DiagEngine *Diags) {
  uint64_t QueriesBefore = Ctx.DT.queryCount();
  AuditReport Report = Auditor(Ctx, Plan, Opts, Diags).run();
  if (StatsRegistry *S = Opts.Stats) {
    S->add("dom.queries",
           static_cast<int64_t>(Ctx.DT.queryCount() - QueriesBefore));
    S->add("audit.entries-checked", Report.EntriesChecked);
    S->add("audit.groups-checked", Report.GroupsChecked);
    // The six invariant families of the file comment each ran once.
    S->add("audit.rules-checked", 6);
    S->add("audit.violations", static_cast<int64_t>(Report.Violations.size()));
  }
  return Report;
}
