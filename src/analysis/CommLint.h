//===- analysis/CommLint.h - Communication lint rules -----------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// User-facing communication lints built on the same analyses the placer
/// uses. Each rule emits DiagEngine warnings tagged [rule-name]:
///
///  - [undistributed-array]: an undistributed (replicated) array is
///    referenced inside a loop that distributes work across processors, so
///    the reference is replicated on every processor.
///  - [innermost-comm]: a communication is pinned inside the innermost loop
///    of its use (message vectorization is impossible); cites the blocking
///    definition.
///  - [subscript-out-of-range]: an affine subscript can statically exceed
///    the array's declared extent under the enclosing loop bounds.
///  - [unused-array]: an array is declared (and possibly distributed) but
///    never referenced.
///  - [no-comm-benefit]: the routine's plan is no better than plain message
///    vectorization — nothing was eliminated or combined, suggesting the
///    loop structure blocks the global optimizations.
///  - [dead-comm]: a placed communication is partially dead — the
///    availability dataflow (analysis/AvailDataflow.h) found a genuine path
///    from its placement to the routine exit on which no served use reads
///    the data (typically an IF arm that skips every use).
///
//===----------------------------------------------------------------------===//

#ifndef GCA_ANALYSIS_COMMLINT_H
#define GCA_ANALYSIS_COMMLINT_H

#include "core/CommEntry.h"
#include "core/Context.h"
#include "support/Diag.h"

namespace gca {

/// Runs every lint rule over one analyzed routine. \p Plan is the plan the
/// compilation produced; \p Baseline optionally supplies the pure
/// message-vectorization (Strategy::Orig) plan, enabling the
/// [no-comm-benefit] rule. \returns the number of warnings emitted.
int lintRoutine(const AnalysisContext &Ctx, const CommPlan &Plan,
                const CommPlan *Baseline, DiagEngine &Diags);

} // namespace gca

#endif // GCA_ANALYSIS_COMMLINT_H
