//===- analysis/IrVerify.cpp - Structural IR/plan verifier ----------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "analysis/IrVerify.h"

#include "support/StrUtil.h"

#include <algorithm>
#include <set>

using namespace gca;

const char *gca::verifyRuleName(VerifyRule Rule) {
  switch (Rule) {
  case VerifyRule::CfgStructure:
    return "cfg-structure";
  case VerifyRule::SsaForm:
    return "ssa-form";
  case VerifyRule::PlanIntegrity:
    return "plan-integrity";
  case VerifyRule::DecisionLog:
    return "decision-log";
  case VerifyRule::AvailCoverage:
    return "avail-coverage";
  case VerifyRule::AvailFreshness:
    return "avail-freshness";
  case VerifyRule::AvailRedundancy:
    return "avail-redundancy";
  }
  return "?";
}

std::string VerifyViolation::str() const {
  std::string Out = strFormat("%s(entry=%d,group=%d)", verifyRuleName(Rule),
                              EntryId, GroupId);
  if (Loc.isValid())
    Out += " @" + Loc.str();
  return Out + ": " + Message;
}

std::string VerifyReport::str() const {
  std::string Out =
      strFormat("verify[%s]: %s (%d facts, %d checks, %d violations)\n",
                strategyName(Strat), ok() ? "PASS" : "FAIL", Facts, Checks,
                static_cast<int>(Violations.size()));
  for (const VerifyViolation &V : Violations)
    Out += "  " + V.str() + "\n";
  return Out;
}

std::string VerifyReport::json() const {
  std::string Out = strFormat(
      "{\"ok\":%s,\"strategy\":\"%s\",\"facts\":%d,\"checks\":%d,"
      "\"violations\":[",
      ok() ? "true" : "false", strategyName(Strat), Facts, Checks);
  for (size_t I = 0; I != Violations.size(); ++I) {
    const VerifyViolation &V = Violations[I];
    if (I)
      Out += ",";
    Out += strFormat("{\"rule\":\"%s\",\"entry\":%d,\"group\":%d,"
                     "\"line\":%d,\"col\":%d,\"message\":\"%s\"}",
                     verifyRuleName(V.Rule), V.EntryId, V.GroupId, V.Loc.Line,
                     V.Loc.Col, jsonEscape(V.Message).c_str());
  }
  return Out + "]}";
}

namespace {

void violate(VerifyReport &Report, VerifyRule Rule, int EntryId, int GroupId,
             SourceLoc Loc, std::string Msg) {
  Report.Violations.push_back({Rule, EntryId, GroupId, Loc, std::move(Msg)});
}

/// True when (Node, Index) denotes an existing slot of \p G.
bool validSlot(const Cfg &G, const Slot &S) {
  return S.Node >= 0 && S.Node < static_cast<int>(G.numNodes()) &&
         S.Index >= 0 &&
         S.Index <= static_cast<int>(G.node(S.Node).Stmts.size());
}

//===----------------------------------------------------------------------===//
// CFG well-formedness
//===----------------------------------------------------------------------===//

void checkCfg(const Cfg &G, VerifyReport &Report) {
  auto bad = [&](int Node, std::string Msg) {
    violate(Report, VerifyRule::CfgStructure, -1, -1, SourceLoc(),
            strFormat("node B%d: ", Node) + std::move(Msg));
  };
  int N = static_cast<int>(G.numNodes());

  // Node ids, edge symmetry, statement position maps, slot numbering.
  for (int Id = 0; Id != N; ++Id) {
    const CfgNode &Node = G.node(Id);
    Report.Checks += 4;
    if (Node.Id != Id)
      bad(Id, strFormat("id %d does not match its index", Node.Id));
    for (int S : Node.Succs) {
      if (S < 0 || S >= N) {
        bad(Id, strFormat("successor B%d out of range", S));
        continue;
      }
      const std::vector<int> &BP = G.node(S).Preds;
      if (std::find(BP.begin(), BP.end(), Id) == BP.end())
        bad(Id, strFormat("edge to B%d has no matching back-pointer", S));
    }
    for (int P : Node.Preds) {
      if (P < 0 || P >= N) {
        bad(Id, strFormat("predecessor B%d out of range", P));
        continue;
      }
      const std::vector<int> &FS = G.node(P).Succs;
      if (std::find(FS.begin(), FS.end(), Id) == FS.end())
        bad(Id, strFormat("pred edge from B%d has no matching successor", P));
    }
    if (Node.Kind != NodeKind::Plain && Node.Kind != NodeKind::Entry &&
        !Node.Stmts.empty())
      bad(Id, strFormat("%s node carries %d statements",
                        nodeKindName(Node.Kind),
                        static_cast<int>(Node.Stmts.size())));
    for (size_t I = 0; I != Node.Stmts.size(); ++I) {
      const AssignStmt *S = Node.Stmts[I];
      ++Report.Checks;
      if (G.nodeOf(S) != Id || G.indexOf(S) != static_cast<int>(I))
        bad(Id, strFormat("statement %d maps to (B%d,%d), stored at index %d",
                          S->id(), G.nodeOf(S), G.indexOf(S),
                          static_cast<int>(I)));
    }
    for (int I = 0, E = static_cast<int>(Node.Stmts.size()); I <= E; ++I) {
      Slot S{Id, I};
      ++Report.Checks;
      int SId = G.slotId(S);
      if (SId < 0 || SId >= G.numSlots() || !(G.slotOfId(SId) == S))
        bad(Id, strFormat("slot (B%d,%d) does not round-trip through its "
                          "dense id %d",
                          Id, I, SId));
    }
  }

  // Entry/exit shape.
  Report.Checks += 2;
  if (G.entry() < 0 || G.entry() >= N || !G.node(G.entry()).Preds.empty())
    violate(Report, VerifyRule::CfgStructure, -1, -1, SourceLoc(),
            "entry node is missing or has predecessors");
  if (G.exit() < 0 || G.exit() >= N || !G.node(G.exit()).Succs.empty())
    violate(Report, VerifyRule::CfgStructure, -1, -1, SourceLoc(),
            "exit node is missing or has successors");

  // Loop triples: preheader -> header, the preheader -> postexit zero-trip
  // edge, the header -> postexit loop exit, and the back edge from inside
  // the loop (Figure 7).
  auto hasEdge = [&](int From, int To) {
    const std::vector<int> &S = G.node(From).Succs;
    return std::find(S.begin(), S.end(), To) != S.end();
  };
  for (unsigned LI = 0, LE = G.numLoops(); LI != LE; ++LI) {
    const CfgLoop &L = G.loop(static_cast<int>(LI));
    auto badLoop = [&](std::string Msg) {
      violate(Report, VerifyRule::CfgStructure, -1, -1, SourceLoc(),
              strFormat("loop %d: ", L.Id) + std::move(Msg));
    };
    Report.Checks += 8;
    if (L.Preheader < 0 || L.Preheader >= N || L.Header < 0 || L.Header >= N ||
        L.Postexit < 0 || L.Postexit >= N) {
      badLoop("preheader/header/postexit node missing");
      continue;
    }
    if (G.node(L.Preheader).Kind != NodeKind::Preheader ||
        G.node(L.Header).Kind != NodeKind::Header ||
        G.node(L.Postexit).Kind != NodeKind::Postexit)
      badLoop("preheader/header/postexit node kinds are wrong");
    if (!hasEdge(L.Preheader, L.Header))
      badLoop("missing preheader -> header edge");
    if (!hasEdge(L.Preheader, L.Postexit))
      badLoop("missing zero-trip preheader -> postexit edge");
    if (!hasEdge(L.Header, L.Postexit))
      badLoop("missing header -> postexit exit edge");
    if (G.node(L.Header).LoopId != L.Id)
      badLoop("header is not inside its own loop");
    if (G.node(L.Preheader).LoopId != L.Parent ||
        G.node(L.Postexit).LoopId != L.Parent)
      badLoop("preheader/postexit are not in the enclosing loop");
    int WantLevel = L.Parent < 0 ? 1 : G.loop(L.Parent).Level + 1;
    if (L.Level != WantLevel)
      badLoop(strFormat("level %d, expected %d from the parent chain",
                        L.Level, WantLevel));
    // The back edge: some predecessor of the header other than the
    // preheader, coming from inside the loop.
    bool HasBack = false;
    for (int P : G.node(L.Header).Preds) {
      if (P == L.Preheader)
        continue;
      for (int C = G.node(P).LoopId; C >= 0; C = G.loop(C).Parent)
        if (C == L.Id)
          HasBack = true;
    }
    if (!HasBack)
      badLoop("no back edge from inside the loop to the header");
  }
}

//===----------------------------------------------------------------------===//
// SSA form
//===----------------------------------------------------------------------===//

void checkSsa(const Cfg &G, const Ssa &S, VerifyReport &Report) {
  auto bad = [&](int Def, std::string Msg) {
    violate(Report, VerifyRule::SsaForm, -1, -1, SourceLoc(),
            strFormat("def %d: ", Def) + std::move(Msg));
  };
  int NumDefs = static_cast<int>(S.numDefs());
  std::vector<int> EntryCount(S.numVars(), 0);
  std::vector<int> DefOfStmt; // Stmt id -> def id, for single-def checking.

  for (int Id = 0; Id != NumDefs; ++Id) {
    const SsaDef &D = S.def(Id);
    Report.Checks += 3;
    if (D.Id != Id)
      bad(Id, strFormat("id %d does not match its index", D.Id));
    if (D.Var < 0 || D.Var >= static_cast<int>(S.numVars())) {
      bad(Id, strFormat("variable %d out of range", D.Var));
      continue;
    }
    if (D.Node < 0 || D.Node >= static_cast<int>(G.numNodes()))
      bad(Id, strFormat("node B%d out of range", D.Node));
    for (int P : D.Params) {
      ++Report.Checks;
      if (P < 0 || P >= NumDefs)
        bad(Id, strFormat("phi parameter %d out of range", P));
      else if (S.def(P).Var != D.Var)
        bad(Id, strFormat("phi parameter %d defines variable %d, not %d", P,
                          S.def(P).Var, D.Var));
    }
    switch (D.Kind) {
    case DefKind::Entry:
      ++EntryCount[D.Var];
      if (!D.Params.empty() || D.Stmt)
        bad(Id, "ENTRY pseudo-def with parameters or a statement");
      break;
    case DefKind::Regular: {
      if (!D.Stmt) {
        bad(Id, "regular def without a statement");
        break;
      }
      int SId = D.Stmt->id();
      if (SId >= static_cast<int>(DefOfStmt.size()))
        DefOfStmt.resize(SId + 1, -1);
      if (DefOfStmt[SId] >= 0)
        bad(Id, strFormat("statement %d already defines def %d (single "
                          "def per statement)",
                          SId, DefOfStmt[SId]));
      DefOfStmt[SId] = Id;
      if (S.defOfStmt(D.Stmt) != Id)
        bad(Id, strFormat("defOfStmt(stmt %d) resolves to %d", SId,
                          S.defOfStmt(D.Stmt)));
      if (G.nodeOf(D.Stmt) != D.Node)
        bad(Id, strFormat("statement %d lives in B%d, def recorded in B%d",
                          SId, G.nodeOf(D.Stmt), D.Node));
      if (S.varIsArray(D.Var)) {
        if (D.Prev < 0 || D.Prev >= NumDefs)
          bad(Id, "preserving array def without a Prev link");
        else if (S.def(D.Prev).Var != D.Var)
          bad(Id, strFormat("Prev def %d defines variable %d, not %d",
                            D.Prev, S.def(D.Prev).Var, D.Var));
      }
      if (!validSlot(G, D.AfterSlot) || !(D.AfterSlot == G.slotAfter(D.Stmt)))
        bad(Id, "AfterSlot is not the slot immediately after the statement");
      break;
    }
    case DefKind::PhiEntry:
    case DefKind::PhiExit:
    case DefKind::PhiMerge:
      if (D.Params.size() != 2)
        bad(Id, strFormat("%s phi with arity %d, expected 2",
                          defKindName(D.Kind),
                          static_cast<int>(D.Params.size())));
      if ((D.Kind == DefKind::PhiEntry || D.Kind == DefKind::PhiExit) &&
          (D.LoopId < 0 || D.LoopId >= static_cast<int>(G.numLoops())))
        bad(Id, "loop phi without a valid loop");
      break;
    }
  }

  for (unsigned V = 0; V != S.numVars(); ++V) {
    ++Report.Checks;
    if (EntryCount[V] != 1)
      violate(Report, VerifyRule::SsaForm, -1, -1, SourceLoc(),
              strFormat("variable %d has %d ENTRY pseudo-defs, expected "
                        "exactly 1",
                        V, EntryCount[V]));
    else if (S.entryDef(static_cast<int>(V)) < 0 ||
             S.def(S.entryDef(static_cast<int>(V))).Kind != DefKind::Entry)
      violate(Report, VerifyRule::SsaForm, -1, -1, SourceLoc(),
              strFormat("entryDef(%u) does not resolve to an ENTRY def", V));
  }
}

//===----------------------------------------------------------------------===//
// Plan cross-reference integrity
//===----------------------------------------------------------------------===//

SourceLoc locOf(const CommEntry &E) {
  if (!E.Refs.empty() && E.Refs[0].Loc.isValid())
    return E.Refs[0].Loc;
  return E.UseStmt ? E.UseStmt->loc() : SourceLoc();
}

void checkPlan(const AnalysisContext &Ctx, const CommPlan &Plan,
               VerifyReport &Report) {
  const Cfg &G = Ctx.G;
  int NumEntries = static_cast<int>(Plan.Entries.size());
  int NumGroups = static_cast<int>(Plan.Groups.size());

  std::vector<int> MemberOf(NumEntries, -1), AttachedTo(NumEntries, -1);
  for (const CommGroup &Grp : Plan.Groups) {
    auto bad = [&](int Entry, std::string Msg) {
      violate(Report, VerifyRule::PlanIntegrity, Entry, Grp.Id,
              Entry >= 0 && Entry < NumEntries ? locOf(Plan.Entries[Entry])
                                               : SourceLoc(),
              std::move(Msg));
    };
    Report.Checks += 4;
    if (Grp.Id != static_cast<int>(&Grp - Plan.Groups.data()))
      bad(-1, strFormat("group id %d does not match its index", Grp.Id));
    if (!validSlot(G, Grp.Placement))
      bad(-1, strFormat("group %d placed at non-existent slot (B%d,%d)",
                        Grp.Id, Grp.Placement.Node, Grp.Placement.Index));
    if (Grp.Members.empty())
      bad(-1, strFormat("group %d has no members", Grp.Id));
    if (Grp.Data.size() != Grp.DataAug.size())
      bad(-1, strFormat("group %d carries %d descriptors but %d "
                        "augmentation records",
                        Grp.Id, static_cast<int>(Grp.Data.size()),
                        static_cast<int>(Grp.DataAug.size())));
    for (size_t I = 0;
         I != std::min(Grp.Data.size(), Grp.DataAug.size()); ++I) {
      ++Report.Checks;
      if (Grp.DataAug[I].size() != Grp.Data[I].D.rank())
        bad(-1, strFormat("group %d descriptor %d has rank %u but %d "
                          "augmentation dims",
                          Grp.Id, static_cast<int>(I), Grp.Data[I].D.rank(),
                          static_cast<int>(Grp.DataAug[I].size())));
    }
    for (int Id : Grp.Members) {
      Report.Checks += 3;
      if (Id < 0 || Id >= NumEntries) {
        bad(-1, strFormat("member entry %d out of range", Id));
        continue;
      }
      if (MemberOf[Id] >= 0)
        bad(Id, strFormat("entry %d is a member of groups %d and %d", Id,
                          MemberOf[Id], Grp.Id));
      MemberOf[Id] = Grp.Id;
      if (Plan.Entries[Id].GroupId != Grp.Id)
        bad(Id, strFormat("member entry %d points at group %d", Id,
                          Plan.Entries[Id].GroupId));
      if (Plan.Entries[Id].Eliminated)
        bad(Id, strFormat("eliminated entry %d listed as a member", Id));
    }
    for (int Id : Grp.Attached) {
      Report.Checks += 2;
      if (Id < 0 || Id >= NumEntries) {
        bad(-1, strFormat("attached entry %d out of range", Id));
        continue;
      }
      if (AttachedTo[Id] >= 0)
        bad(Id, strFormat("entry %d attached to groups %d and %d", Id,
                          AttachedTo[Id], Grp.Id));
      AttachedTo[Id] = Grp.Id;
      if (!Plan.Entries[Id].Eliminated)
        bad(Id, strFormat("live entry %d listed as attached", Id));
    }

    // Descriptor sections may only mention loop variables bound by loops
    // enclosing the placement point — a deeper loop's variable has no value
    // there, so a section parameterized by it describes nothing.
    std::set<int> InScope;
    if (Grp.Placement.Node >= 0 &&
        Grp.Placement.Node < static_cast<int>(G.numNodes()))
      for (int C = G.loopOf(Grp.Placement.Node); C >= 0;
           C = G.loop(C).Parent)
        InScope.insert(G.loop(C).L->var());
    for (size_t I = 0; I != Grp.Data.size(); ++I) {
      for (unsigned Dim = 0; Dim != Grp.Data[I].D.rank(); ++Dim) {
        const SecDim &SD = Grp.Data[I].D.dim(Dim);
        for (const AffineExpr *E : {&SD.Lo, &SD.Hi})
          for (int V : E->vars()) {
            ++Report.Checks;
            if (V < 0 ||
                V >= static_cast<int>(Ctx.R.loopVarNames().size())) {
              bad(-1, strFormat("group %d descriptor %d mentions unknown "
                                "variable %d",
                                Grp.Id, static_cast<int>(I), V));
              continue;
            }
            if (!InScope.count(V) && Ctx.varLoop(V) != nullptr)
              bad(-1, strFormat("group %d descriptor %d mentions loop "
                                "variable '%s', which is not in scope at "
                                "(B%d,%d)",
                                Grp.Id, static_cast<int>(I),
                                Ctx.R.loopVarName(V).c_str(),
                                Grp.Placement.Node, Grp.Placement.Index));
          }
      }
    }
  }

  for (const CommEntry &E : Plan.Entries) {
    auto bad = [&](std::string Msg) {
      violate(Report, VerifyRule::PlanIntegrity, E.Id, E.GroupId, locOf(E),
              std::move(Msg));
    };
    Report.Checks += 4;
    if (E.Id != static_cast<int>(&E - Plan.Entries.data()))
      bad(strFormat("entry id %d does not match its index", E.Id));
    if (E.GroupId < 0 || E.GroupId >= NumGroups)
      bad(strFormat("entry %d is served by no group (GroupId %d)", E.Id,
                    E.GroupId));
    else if (E.Eliminated ? AttachedTo[E.Id] != E.GroupId
                          : MemberOf[E.Id] != E.GroupId)
      bad(strFormat("entry %d points at group %d but is not on its %s list",
                    E.Id, E.GroupId, E.Eliminated ? "attached" : "member"));
    for (const Slot *S : {&E.EarliestSlot, &E.LatestSlot}) {
      if (S->isValid() && !validSlot(G, *S))
        bad(strFormat("entry %d has a placement-range slot (B%d,%d) that "
                      "is not in the CFG",
                      E.Id, S->Node, S->Index));
    }
    if (E.Eliminated) {
      int Cur = E.SubsumedBy;
      std::set<int> Seen;
      while (Cur >= 0 && Cur < NumEntries && Plan.Entries[Cur].Eliminated &&
             Seen.insert(Cur).second)
        Cur = Plan.Entries[Cur].SubsumedBy;
      if (Cur < 0 || Cur >= NumEntries || Plan.Entries[Cur].Eliminated)
        bad(strFormat("eliminated entry %d has no live subsumer "
                      "(SubsumedBy chain %s)",
                      E.Id,
                      E.SubsumedBy < 0
                          ? "unset"
                          : (E.SubsumedBy >= NumEntries ? "out of range"
                                                        : "cyclic")));
    }
  }
}

//===----------------------------------------------------------------------===//
// Decision log consistency
//===----------------------------------------------------------------------===//

void checkDecisions(const CommPlan &Plan, VerifyReport &Report) {
  if (Plan.Decisions.empty())
    return; // Plans built without a log (tests, replays) have nothing to
            // cross-check.
  int NumEntries = static_cast<int>(Plan.Entries.size());
  int NumGroups = static_cast<int>(Plan.Groups.size());
  std::vector<char> GroupPlacedSeen(NumGroups, 0);
  std::vector<int> LoweredSeen(static_cast<size_t>(NumGroups), 0);
  std::vector<char> EliminatedSeen(NumEntries, 0);

  auto bad = [&](const DecisionEvent &Ev, std::string Msg) {
    violate(Report, VerifyRule::DecisionLog, Ev.EntryId, -1, SourceLoc(),
            strFormat("%s event: ", decisionKindName(Ev.Kind)) +
                std::move(Msg));
  };
  for (const DecisionEvent &Ev : Plan.Decisions) {
    ++Report.Checks;
    switch (Ev.Kind) {
    case DecisionKind::Detected:
    case DecisionKind::RangeComputed:
      if (Ev.EntryId < 0 || Ev.EntryId >= NumEntries)
        bad(Ev, strFormat("entry %d out of range", Ev.EntryId));
      break;
    case DecisionKind::RedundancyEliminated:
      if (Ev.EntryId < 0 || Ev.EntryId >= NumEntries)
        bad(Ev, strFormat("entry %d out of range", Ev.EntryId));
      else if (!Plan.Entries[Ev.EntryId].Eliminated)
        bad(Ev, strFormat("entry %d is not eliminated in the final plan",
                          Ev.EntryId));
      else
        EliminatedSeen[Ev.EntryId] = 1;
      break;
    case DecisionKind::PartiallyReduced:
      if (Ev.EntryId < 0 || Ev.EntryId >= NumEntries)
        bad(Ev, strFormat("entry %d out of range", Ev.EntryId));
      else if (!Plan.Entries[Ev.EntryId].ReducedD)
        bad(Ev, strFormat("entry %d carries no reduced section", Ev.EntryId));
      break;
    case DecisionKind::GroupPlaced:
      if (Ev.OtherId < 0 || Ev.OtherId >= NumGroups) {
        bad(Ev, strFormat("group %d out of range", Ev.OtherId));
      } else {
        if (!(Plan.Groups[Ev.OtherId].Placement == Ev.Where))
          bad(Ev, strFormat("records group %d at (B%d,%d) but the plan "
                            "places it at (B%d,%d)",
                            Ev.OtherId, Ev.Where.Node, Ev.Where.Index,
                            Plan.Groups[Ev.OtherId].Placement.Node,
                            Plan.Groups[Ev.OtherId].Placement.Index));
        GroupPlacedSeen[Ev.OtherId] = 1;
      }
      break;
    case DecisionKind::LoweredAs:
      if (Ev.OtherId < 0 || Ev.OtherId >= NumGroups)
        bad(Ev, strFormat("group %d out of range", Ev.OtherId));
      else if (++LoweredSeen[static_cast<size_t>(Ev.OtherId)] > 1)
        bad(Ev, strFormat("group %d lowered more than once", Ev.OtherId));
      break;
    case DecisionKind::SubsetSlotCleared:
    case DecisionKind::CombinedIntoGroup:
      // Slot/group ids in these events reference pre-merge state; only the
      // final-plan-facing kinds above are cross-checked.
      break;
    }
  }
  // Lowering is all-or-nothing: once any group carries a lowered-as event,
  // every group must carry exactly one.
  bool AnyLowered = false;
  for (int N : LoweredSeen)
    AnyLowered = AnyLowered || N > 0;
  if (AnyLowered)
    for (int GId = 0; GId != NumGroups; ++GId)
      if (!LoweredSeen[static_cast<size_t>(GId)]) {
        ++Report.Checks;
        violate(Report, VerifyRule::DecisionLog, -1, GId, SourceLoc(),
                strFormat("group %d has no LoweredAs event in the decision "
                          "log",
                          GId));
      }
  for (int GId = 0; GId != NumGroups; ++GId) {
    ++Report.Checks;
    if (!GroupPlacedSeen[GId])
      violate(Report, VerifyRule::DecisionLog, -1, GId, SourceLoc(),
              strFormat("group %d has no GroupPlaced event in the decision "
                        "log",
                        GId));
  }
  for (int EId = 0; EId != NumEntries; ++EId) {
    ++Report.Checks;
    if (Plan.Entries[EId].Eliminated && !EliminatedSeen[EId])
      violate(Report, VerifyRule::DecisionLog, EId, -1,
              locOf(Plan.Entries[EId]),
              strFormat("eliminated entry %d has no RedundancyEliminated "
                        "event in the decision log",
                        EId));
  }
}

} // namespace

void gca::verifyIr(const Routine &R, const Cfg &G, const Ssa &S,
                   VerifyReport &Report) {
  (void)R;
  checkCfg(G, Report);
  checkSsa(G, S, Report);
}

void gca::verifyPlanIntegrity(const AnalysisContext &Ctx,
                              const CommPlan &Plan, VerifyReport &Report) {
  checkPlan(Ctx, Plan, Report);
  checkDecisions(Plan, Report);
}
