//===- analysis/AvailDataflow.cpp - Must-availability verifier ------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "analysis/AvailDataflow.h"

#include "support/Stats.h"
#include "support/StrUtil.h"

#include <algorithm>
#include <cstdint>

using namespace gca;

namespace {

bool validSlot(const Cfg &G, const Slot &S) {
  return S.Node >= 0 && S.Node < static_cast<int>(G.numNodes()) &&
         S.Index >= 0 &&
         S.Index <= static_cast<int>(G.node(S.Node).Stmts.size());
}

/// A fixed-width bit row over the fact universe.
using BitRow = std::vector<uint64_t>;

void rowSetAll(BitRow &R) {
  std::fill(R.begin(), R.end(), ~uint64_t(0));
}
void rowClearAll(BitRow &R) { std::fill(R.begin(), R.end(), 0); }
void rowAnd(BitRow &R, const BitRow &O) {
  for (size_t I = 0; I != R.size(); ++I)
    R[I] &= O[I];
}
void rowOr(BitRow &R, const BitRow &O) {
  for (size_t I = 0; I != R.size(); ++I)
    R[I] |= O[I];
}
void rowAndNot(BitRow &R, const BitRow &O) {
  for (size_t I = 0; I != R.size(); ++I)
    R[I] &= ~O[I];
}
void rowSetBit(BitRow &R, int B) { R[B >> 6] |= uint64_t(1) << (B & 63); }
void rowClearBit(BitRow &R, int B) {
  R[B >> 6] &= ~(uint64_t(1) << (B & 63));
}
bool rowTestBit(const BitRow &R, int B) {
  return (R[B >> 6] >> (B & 63)) & 1;
}

/// The two simultaneous domains: Reach sees GEN and the structural kills
/// only ("the communication fired on every path"); Avail additionally sees
/// the dependence kills ("and no definition made it stale").
enum Domain { Reach = 0, Avail = 1 };

/// Why a fact can die on a freshness path, for the violation message.
struct Killer {
  const AssignStmt *Def = nullptr;
  int Level = 0; ///< 0 = loop-independent; else the carrying level.
};

/// One availability fact: "entry E's communicated section is available".
struct Fact {
  int EntryId = -1;
  int GroupId = -1;
  bool Placed = false;    ///< Serving group's slot exists in the CFG.
  bool Generated = false; ///< Descriptors cover the section: GEN emitted.
  RegSection Needed;      ///< The section the use requires (for messages).
  Slot QueryPoint;        ///< slotBefore(UseStmt).
  std::vector<Killer> Killers;
};

/// An intra-node transfer event. Events are applied in (Pos, IsKill) order:
/// a communication at slot p fires before statement p executes, so a GEN at
/// p precedes the kill of statement p, and the kill of statement p precedes
/// a GEN at slot p+1.
struct Event {
  int Pos = 0;
  bool IsKill = false;
  int FactId = -1;
};

} // namespace

struct AvailDataflow::Impl {
  const AnalysisContext &Ctx;
  const CommPlan &Plan;

  std::vector<Fact> Facts;
  std::vector<int> FactOfEntry; ///< Entry id -> fact id (-1).
  int Words = 0;

  std::vector<std::vector<Event>> Events; ///< Per node, sorted.
  /// Per loop, the facts killed on its back edge, per domain. Reach carries
  /// the structural kills (loops enclosing the placement parameterize the
  /// descriptor); Avail adds the carried-dependence kills.
  std::vector<BitRow> BackKill[2];
  /// Scope rows: the facts alive inside each loop (and at top level). A
  /// fact's scope — nodes whose loop chain the placement's chain prefixes —
  /// is exactly the body of the placement's innermost loop, so one row per
  /// loop stands in for a per-node mask.
  BitRow TopScope;
  std::vector<BitRow> LoopScope;
  std::vector<const BitRow *> ScopeOf; ///< Per node, into the rows above.
  std::vector<BitRow> In[2], Out[2];

  std::vector<std::vector<int>> NodeChain; ///< Loop chain, outermost first.
  std::vector<int> HeaderLoop;             ///< Node -> loop headed, or -1.
  std::vector<int> Rpo;
  std::vector<int> RpoIndex; ///< Node -> position in Rpo, or -1 unreachable.

  Impl(const AnalysisContext &Ctx, const CommPlan &Plan)
      : Ctx(Ctx), Plan(Plan) {
    buildNodeMaps();
    buildFacts();
    solve();
  }

  // --- Construction ---------------------------------------------------------

  void buildNodeMaps() {
    const Cfg &G = Ctx.G;
    int N = static_cast<int>(G.numNodes());
    NodeChain.resize(N);
    HeaderLoop.assign(N, -1);
    for (int Id = 0; Id != N; ++Id) {
      for (int L = G.loopOf(Id); L >= 0; L = G.loop(L).Parent)
        NodeChain[Id].push_back(L);
      std::reverse(NodeChain[Id].begin(), NodeChain[Id].end());
    }
    for (unsigned L = 0; L != G.numLoops(); ++L) {
      const CfgLoop &Loop = G.loop(static_cast<int>(L));
      if (Loop.Header >= 0 && Loop.Header < N)
        HeaderLoop[Loop.Header] = Loop.Id;
    }
    // Reverse post-order over successors from ENTRY.
    std::vector<char> State(N, 0); // 0 unvisited, 1 on stack, 2 done.
    std::vector<std::pair<int, size_t>> Stack;
    Stack.emplace_back(G.entry(), 0);
    State[G.entry()] = 1;
    while (!Stack.empty()) {
      auto &[Node, NextSucc] = Stack.back();
      const std::vector<int> &Succs = G.node(Node).Succs;
      if (NextSucc < Succs.size()) {
        int S = Succs[NextSucc++];
        if (!State[S]) {
          State[S] = 1;
          Stack.emplace_back(S, 0);
        }
      } else {
        State[Node] = 2;
        Rpo.push_back(Node);
        Stack.pop_back();
      }
    }
    std::reverse(Rpo.begin(), Rpo.end());
    RpoIndex.assign(N, -1);
    for (int I = 0, E = static_cast<int>(Rpo.size()); I != E; ++I)
      RpoIndex[Rpo[I]] = I;
  }

  /// The entry's data descriptor at placement level \p Level, re-derived
  /// from the references alone: union the per-reference sections, widen by
  /// the diagonal-decomposition augmentation, clamp constant bounds to the
  /// array. (Deliberately independent of core/Detect's derivation — the
  /// verifier recomputes what the plan claims.)
  RegSection neededSection(const CommEntry &E, int Level) const {
    const ArrayDecl &A = Ctx.R.array(E.ArrayId);
    RegSection D = Ctx.sectionOfRef(E.Refs[0], Level);
    for (size_t I = 1; I < E.Refs.size(); ++I) {
      RegSection Other = Ctx.sectionOfRef(E.Refs[I], Level);
      RegSection U;
      int64_t UE, SE;
      if (D.unionApprox(Other, U, UE, SE))
        D = std::move(U);
      // A failed union keeps the first section; the augmentation below
      // still widens to the largest shift.
    }
    for (unsigned Dim = 0, ED = D.rank(); Dim != ED; ++Dim) {
      SecDim &SD = D.dim(Dim);
      if (Dim < E.Augment.size()) {
        if (E.Augment[Dim][0] != 0)
          SD.Lo = SD.Lo - E.Augment[Dim][0];
        if (E.Augment[Dim][1] != 0)
          SD.Hi = SD.Hi + E.Augment[Dim][1];
      }
      if (Dim < A.rank()) {
        if (SD.Lo.isConstant() && SD.Lo.constValue() < A.Lo[Dim])
          SD.Lo = AffineExpr::constant(A.Lo[Dim]);
        if (SD.Hi.isConstant() && SD.Hi.constValue() > A.Hi[Dim])
          SD.Hi = AffineExpr::constant(A.Hi[Dim]);
      }
    }
    return D;
  }

  void buildFacts() {
    const Cfg &G = Ctx.G;
    int N = static_cast<int>(G.numNodes());
    FactOfEntry.assign(Plan.Entries.size(), -1);

    // All regular SSA definitions, bucketed by array id.
    std::vector<std::vector<const AssignStmt *>> ArrayDefs(
        Ctx.R.arrays().size());
    for (unsigned I = 0, E = Ctx.S.numDefs(); I != E; ++I) {
      const SsaDef &D = Ctx.S.def(static_cast<int>(I));
      if (D.Kind == DefKind::Regular && Ctx.S.varIsArray(D.Var))
        ArrayDefs[Ctx.S.arrayOfVar(D.Var)].push_back(D.Stmt);
    }

    Events.assign(N, {});
    int NumLoops = static_cast<int>(G.numLoops());
    // Sized after the facts are counted; collect (loop, fact, domain)
    // back-edge kills first.
    std::vector<std::pair<int, int>> BackKillReach, BackKillAvail;

    // A subsumer cited by a PartiallyReduced event is also queried at the
    // reduced entry's use (check() below), so its kill screen must cover
    // that point too.
    std::vector<std::vector<const AssignStmt *>> ExtraQueryStmts(
        Plan.Entries.size());
    for (const DecisionEvent &Ev : Plan.Decisions) {
      if (Ev.Kind != DecisionKind::PartiallyReduced)
        continue;
      if (Ev.EntryId < 0 ||
          Ev.EntryId >= static_cast<int>(Plan.Entries.size()) ||
          Ev.OtherId < 0 ||
          Ev.OtherId >= static_cast<int>(Plan.Entries.size()) ||
          !Plan.Entries[Ev.EntryId].UseStmt)
        continue;
      ExtraQueryStmts[Ev.OtherId].push_back(Plan.Entries[Ev.EntryId].UseStmt);
    }

    DepDirs Scratch;
    for (const CommEntry &E : Plan.Entries) {
      if (E.M.Kind == CommKind::Reduce)
        continue; // Reductions fire at their statement; nothing to track.
      if (E.GroupId < 0 || E.GroupId >= static_cast<int>(Plan.Groups.size()))
        continue; // verifyPlanIntegrity reports the dangling reference.
      if (E.Refs.empty() || E.ArrayId < 0 ||
          E.ArrayId >= static_cast<int>(Ctx.R.arrays().size()) ||
          !E.UseStmt)
        continue;
      const CommGroup &Grp = Plan.Groups[E.GroupId];

      Fact F;
      F.EntryId = E.Id;
      F.GroupId = Grp.Id;
      F.QueryPoint = G.slotBefore(E.UseStmt);
      F.Placed = validSlot(G, Grp.Placement);
      int FactId = static_cast<int>(Facts.size());

      if (F.Placed) {
        int Level = Ctx.slotLevel(Grp.Placement);
        F.Needed = E.ReducedD ? *E.ReducedD : neededSection(E, Level);
        // GEN only when the group really communicates the section: array,
        // containment, and (for subsumption-served entries) the mapping
        // subset test of Section 4.6. A shrunk or retargeted descriptor
        // generates nothing, and the coverage family reports it.
        for (const Asd &Data : Grp.Data) {
          if (Data.ArrayId != E.ArrayId || !F.Needed.containedIn(Data.D))
            continue;
          if (E.Eliminated && !E.M.subsumedBy(Data.M))
            continue;
          F.Generated = true;
          break;
        }
        if (F.Generated)
          Events[Grp.Placement.Node].push_back(
              {Grp.Placement.Index, false, FactId});
        // Structural kills: every loop enclosing the placement binds a
        // variable the descriptor may be parameterized by — the fact names
        // different elements each iteration, so it dies on the back edge
        // (the placement re-GENs before any use of the next iteration).
        for (int L : NodeChain[Grp.Placement.Node]) {
          BackKillReach.emplace_back(L, FactId);
          BackKillAvail.emplace_back(L, FactId);
        }
      }

      // Dependence kills, mirroring IsArrayDep feasibility (Figure 8(d)):
      // a loop-independent flow dependence kills right after the defining
      // statement; a dependence carried at level L kills on the back edge
      // of the level-L loop of the use's nest. A communication legally
      // placed at that loop's header top survives: the header GEN re-fires
      // before the killed value would be read.
      //
      // A fact that never GENs has nothing to kill, and a kill can change a
      // query only when some path runs placement -> def -> query point with
      // no back edge of a loop enclosing the placement: those back edges
      // already kill the fact structurally, and the placement re-GENs it
      // before any later kill could be observed. Such paths stay inside the
      // placement's innermost loop, whose body — child loops collapsed to
      // their preheaders — is acyclic with RPO monotone along every edge.
      // So project def, placement, and query points into that region: a def
      // outside the loop is irrelevant, one sharing a child loop with a
      // query point is kept, and the rest must fall in the RPO window.
      if (F.Placed && F.Generated) {
        const std::vector<int> &UseNest = G.loopNestOf(E.UseStmt);
        const std::vector<int> &PlaceChain = NodeChain[Grp.Placement.Node];
        int Lp = PlaceChain.empty() ? -1 : PlaceChain.back();
        // The node's region directly inside Lp: the node itself, the
        // preheader of its enclosing child loop of Lp, or -1 outside Lp.
        auto projNode = [&](int Node) -> int {
          const std::vector<int> &NC = NodeChain[Node];
          size_t At = 0;
          if (Lp >= 0) {
            while (At != NC.size() && NC[At] != Lp)
              ++At;
            if (At == NC.size())
              return -1; // Not inside the placement's loop.
            ++At;
          }
          if (At == NC.size())
            return Node; // Directly in the region's body.
          return G.loop(NC[At]).Preheader;
        };
        int PlaceRpo = -1, LastRpo = -1;
        std::vector<int> QueryRegions;
        bool NoScreen = false;
        auto addQueryNode = [&](int Node, bool IsPlacement) {
          if (Node < 0 || Node >= N)
            return;
          int PN = projNode(Node);
          if (PN < 0)
            return; // Out of scope: that query fails with no kills needed.
          if (PN >= N || RpoIndex[PN] < 0) {
            NoScreen = true;
            return;
          }
          if (IsPlacement)
            PlaceRpo = RpoIndex[PN];
          LastRpo = std::max(LastRpo, RpoIndex[PN]);
          if (std::find(QueryRegions.begin(), QueryRegions.end(), PN) ==
              QueryRegions.end())
            QueryRegions.push_back(PN);
        };
        addQueryNode(Grp.Placement.Node, true);
        addQueryNode(F.QueryPoint.Node, false);
        for (const AssignStmt *Q : ExtraQueryStmts[E.Id])
          addQueryNode(G.nodeOf(Q), false);
        if (PlaceRpo < 0)
          NoScreen = true;
        // With every query point out of scope the queries fail outright and
        // no kill can change them; skip the def sweep entirely.
        bool SkipDefs = !NoScreen && LastRpo < 0;
        for (const AssignStmt *D : ArrayDefs[E.ArrayId]) {
          if (SkipDefs)
            break;
          int DefNode = G.nodeOf(D);
          if (!NoScreen) {
            int PN = projNode(DefNode);
            if (PN < 0)
              continue; // Outside the placement's loop: cannot matter.
            if (PN >= N || RpoIndex[PN] < 0)
              PN = DefNode;
            if (std::find(QueryRegions.begin(), QueryRegions.end(), PN) ==
                    QueryRegions.end() &&
                (RpoIndex[PN] < PlaceRpo || RpoIndex[PN] > LastRpo))
              continue;
          }
          bool LiAdded = false;
          std::vector<char> LevelAdded(UseNest.size() + 1, 0);
          for (const ArrayRef &Ref : E.Refs) {
            Ctx.Dep.flowDirections(D, E.UseStmt, Ref, Scratch);
            if (!Scratch.Possible)
              continue;
            if (!LiAdded && DepTester::loopIndependentFromDirs(Scratch)) {
              Events[DefNode].push_back({G.indexOf(D), true, FactId});
              F.Killers.push_back({D, 0});
              LiAdded = true;
            }
            for (int L = 1; L <= Scratch.CNL; ++L) {
              if (LevelAdded[L] || !DepTester::carriedFromDirs(Scratch, L) ||
                  L > static_cast<int>(UseNest.size()))
                continue;
              BackKillAvail.emplace_back(UseNest[L - 1], FactId);
              F.Killers.push_back({D, L});
              LevelAdded[L] = 1;
            }
          }
        }
      }

      FactOfEntry[E.Id] = FactId;
      Facts.push_back(std::move(F));
    }

    int NumFacts = static_cast<int>(Facts.size());
    Words = (NumFacts + 63) / 64;
    if (Words == 0)
      Words = 1;

    for (int D = 0; D != 2; ++D)
      BackKill[D].assign(NumLoops, BitRow(Words, 0));
    for (auto [L, F] : BackKillReach)
      rowSetBit(BackKill[Reach][L], F);
    for (auto [L, F] : BackKillReach)
      rowSetBit(BackKill[Avail][L], F);
    for (auto [L, F] : BackKillAvail)
      rowSetBit(BackKill[Avail][L], F);

    // Scope: a fact exists only at nodes whose loop chain the placement's
    // chain prefixes — outside it the descriptor's variables are unbound.
    // That region is exactly the body of the placement's innermost loop
    // (the prefix is that loop's ancestor path), so build one row per loop
    // — its own facts plus every ancestor's — and point nodes at them.
    TopScope.assign(Words, 0);
    std::vector<BitRow> LoopOwn(NumLoops, BitRow(Words, 0));
    for (int FI = 0; FI != NumFacts; ++FI) {
      const Fact &F = Facts[FI];
      if (!F.Placed)
        continue;
      const std::vector<int> &PC =
          NodeChain[Plan.Groups[F.GroupId].Placement.Node];
      if (PC.empty())
        rowSetBit(TopScope, FI);
      else
        rowSetBit(LoopOwn[PC.back()], FI);
    }
    LoopScope.assign(NumLoops, TopScope);
    for (int L = 0; L != NumLoops; ++L)
      for (int C = L; C >= 0; C = G.loop(C).Parent)
        rowOr(LoopScope[L], LoopOwn[C]);
    ScopeOf.assign(N, &TopScope);
    for (int Node = 0; Node != N; ++Node)
      if (int L = G.loopOf(Node); L >= 0)
        ScopeOf[Node] = &LoopScope[L];

    for (auto &NodeEvents : Events)
      std::sort(NodeEvents.begin(), NodeEvents.end(),
                [](const Event &A, const Event &B) {
                  if (A.Pos != B.Pos)
                    return A.Pos < B.Pos;
                  if (A.IsKill != B.IsKill)
                    return !A.IsKill;
                  return A.FactId < B.FactId;
                });
  }

  // --- The fixed point ------------------------------------------------------

  void transfer(BitRow &Row, int Node, int Dom) const {
    for (const Event &Ev : Events[Node]) {
      if (Ev.IsKill) {
        if (Dom == Avail)
          rowClearBit(Row, Ev.FactId);
      } else {
        rowSetBit(Row, Ev.FactId);
      }
    }
  }

  void computeIn(BitRow &Row, int Node, int Dom, BitRow &Scratch) const {
    const Cfg &G = Ctx.G;
    if (Node == G.entry()) {
      rowClearAll(Row);
      return;
    }
    const std::vector<int> &Preds = G.node(Node).Preds;
    if (Preds.empty()) { // Unreachable: claim nothing.
      rowClearAll(Row);
      return;
    }
    rowSetAll(Row);
    int HL = HeaderLoop[Node];
    for (int P : Preds) {
      Scratch = Out[Dom][P];
      if (HL >= 0 && P != G.loop(HL).Preheader)
        rowAndNot(Scratch, BackKill[Dom][HL]); // The back edge kills.
      rowAnd(Row, Scratch);
    }
    rowAnd(Row, *ScopeOf[Node]);
  }

  void solve() {
    int N = static_cast<int>(Ctx.G.numNodes());
    for (int D = 0; D != 2; ++D) {
      In[D].assign(N, BitRow(Words, 0));
      Out[D].assign(N, BitRow(Words, 0));
      for (int Node = 0; Node != N; ++Node)
        rowSetAll(Out[D][Node]); // TOP: the meet only removes facts.
    }
    BitRow Scratch(Words), Row(Words);
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (int D = 0; D != 2; ++D) {
        for (int Node : Rpo) {
          computeIn(Row, Node, D, Scratch);
          In[D][Node] = Row;
          transfer(Row, Node, D);
          if (Row != Out[D][Node]) {
            Out[D][Node] = Row;
            Changed = true;
          }
        }
      }
    }
  }

  /// Is fact \p FactId in domain \p Dom at program point \p At?
  bool query(int FactId, const Slot &At, int Dom) const {
    if (!validSlot(Ctx.G, At))
      return false;
    bool Bit = rowTestBit(In[Dom][At.Node], FactId);
    for (const Event &Ev : Events[At.Node]) {
      if (Ev.Pos > At.Index || (Ev.Pos == At.Index && Ev.IsKill))
        break; // A GEN at the query point itself still serves the use.
      if (Ev.FactId != FactId)
        continue;
      Bit = Ev.IsKill ? (Dom == Avail ? false : Bit) : true;
    }
    return Bit;
  }

  // --- Checks ---------------------------------------------------------------

  std::string slotStr(const Slot &S) const {
    return strFormat("(B%d,%d)", S.Node, S.Index);
  }

  SourceLoc locOf(const CommEntry &E) const {
    if (!E.Refs.empty() && E.Refs[0].Loc.isValid())
      return E.Refs[0].Loc;
    return E.UseStmt ? E.UseStmt->loc() : SourceLoc();
  }

  std::string killerStr(const Fact &F) const {
    if (F.Killers.empty())
      return "";
    const Killer &K = F.Killers.front();
    std::string Loc =
        K.Def->loc().isValid() ? K.Def->loc().str() : "<unknown>";
    if (K.Level == 0)
      return strFormat(" (definition at %s can execute after it)",
                       Loc.c_str());
    return strFormat(" (the level-%d loop carries a dependence from the "
                     "definition at %s across iterations)",
                     K.Level, Loc.c_str());
  }

  void check(VerifyReport &Report) const {
    Report.Facts += static_cast<int>(Facts.size());
    for (int FactId = 0, NF = static_cast<int>(Facts.size()); FactId != NF;
         ++FactId) {
      const Fact &F = Facts[FactId];
      ++Report.Checks;
      const CommEntry &E = Plan.Entries[F.EntryId];
      if (query(FactId, F.QueryPoint, Avail))
        continue;
      std::string Array = Ctx.R.array(E.ArrayId).Name;
      std::string Sec = F.Needed.str(&Ctx.R.loopVarNames());
      const Slot &P = Plan.Groups[F.GroupId].Placement;
      VerifyRule Rule;
      std::string Msg;
      if (!F.Placed) {
        Rule = E.Eliminated ? VerifyRule::AvailRedundancy
                            : VerifyRule::AvailCoverage;
        Msg = strFormat("entry %d of '%s' is served by group %d at a "
                        "non-existent slot %s",
                        E.Id, Array.c_str(), F.GroupId, slotStr(P).c_str());
      } else if (!F.Generated) {
        Rule = E.Eliminated ? VerifyRule::AvailRedundancy
                            : VerifyRule::AvailCoverage;
        Msg = strFormat("section %s of '%s' needed by entry %d is not "
                        "covered by group %d's descriptors at %s",
                        Sec.c_str(), Array.c_str(), E.Id, F.GroupId,
                        slotStr(P).c_str());
      } else if (query(FactId, F.QueryPoint, Reach)) {
        Rule = E.Eliminated ? VerifyRule::AvailRedundancy
                            : VerifyRule::AvailFreshness;
        Msg = strFormat("section %s of '%s' communicated by group %d at %s "
                        "is stale on a path to the use%s",
                        Sec.c_str(), Array.c_str(), F.GroupId,
                        slotStr(P).c_str(), killerStr(F).c_str());
      } else {
        Rule = E.Eliminated ? VerifyRule::AvailRedundancy
                            : VerifyRule::AvailCoverage;
        Msg = strFormat("section %s of '%s' is not available on every path "
                        "to the use (group %d communicates at %s)",
                        Sec.c_str(), Array.c_str(), F.GroupId,
                        slotStr(P).c_str());
      }
      Report.Violations.push_back({Rule, E.Id, F.GroupId, locOf(E), Msg});
    }

    // Partial redundancy: the remainder descriptor is the entry's own fact;
    // the *rest* of the use's data rides on the subsumer's communication,
    // which therefore must also be must-available at this use.
    for (const DecisionEvent &Ev : Plan.Decisions) {
      if (Ev.Kind != DecisionKind::PartiallyReduced)
        continue;
      if (Ev.EntryId < 0 ||
          Ev.EntryId >= static_cast<int>(Plan.Entries.size()) ||
          Ev.OtherId < 0 ||
          Ev.OtherId >= static_cast<int>(Plan.Entries.size()))
        continue; // verifyPlanIntegrity owns malformed events.
      int SubFact = FactOfEntry[Ev.OtherId];
      int RedFact = FactOfEntry[Ev.EntryId];
      if (SubFact < 0 || RedFact < 0)
        continue;
      ++Report.Checks;
      const CommEntry &Red = Plan.Entries[Ev.EntryId];
      if (query(SubFact, Facts[RedFact].QueryPoint, Avail))
        continue;
      const Fact &SF = Facts[SubFact];
      Report.Violations.push_back(
          {VerifyRule::AvailRedundancy, Red.Id, Red.GroupId, locOf(Red),
           strFormat("entry %d sends only a remainder, but subsumer entry "
                     "%d's section %s is not available at the reduced use",
                     Red.Id, Ev.OtherId,
                     SF.Needed.str(&Ctx.R.loopVarNames()).c_str())});
    }
  }

  // --- Partially-dead communication (the [dead-comm] lint base) -------------

  bool groupPartiallyDead(const CommGroup &Grp) const {
    const Cfg &G = Ctx.G;
    if (Grp.Kind == CommKind::Reduce || !validSlot(G, Grp.Placement))
      return false;
    // Consumption points: the slot before every served use.
    int N = static_cast<int>(G.numNodes());
    std::vector<std::vector<int>> Consume(N);
    auto addUses = [&](const std::vector<int> &Ids) {
      for (int Id : Ids) {
        if (Id < 0 || Id >= static_cast<int>(Plan.Entries.size()))
          continue;
        const CommEntry &E = Plan.Entries[Id];
        if (!E.UseStmt)
          continue;
        Slot S = G.slotBefore(E.UseStmt);
        Consume[S.Node].push_back(S.Index);
      }
    };
    addUses(Grp.Members);
    addUses(Grp.Attached);

    // DFS for a path placement -> EXIT that passes no consumption point.
    // Zero-trip preheader->postexit edges are not taken, and a header
    // entered from its preheader must run the body once (exit allowed only
    // when re-entered over the back edge) — otherwise every loop-hoisted
    // communication would be "dead" along the skip-the-loop path and the
    // lint would be pure noise.
    std::vector<char> Visited(static_cast<size_t>(N) * 2, 0);
    struct State {
      int Node;
      int StartIdx;
      bool FromBack;
    };
    std::vector<State> Stack;
    Stack.push_back({Grp.Placement.Node, Grp.Placement.Index, false});
    while (!Stack.empty()) {
      State S = Stack.back();
      Stack.pop_back();
      size_t VKey = static_cast<size_t>(S.Node) * 2 + (S.FromBack ? 1 : 0);
      if (Visited[VKey])
        continue;
      Visited[VKey] = 1;
      bool Consumed = false;
      for (int Idx : Consume[S.Node])
        if (Idx >= S.StartIdx) {
          Consumed = true;
          break;
        }
      if (Consumed)
        continue;
      if (S.Node == G.exit())
        return true; // Reached EXIT without any use reading the data.
      int HL = HeaderLoop[S.Node];
      for (int Succ : G.node(S.Node).Succs) {
        // A preheader's postexit successor is exactly its loop's zero-trip
        // edge.
        if (G.node(S.Node).Kind == NodeKind::Preheader &&
            G.node(Succ).Kind == NodeKind::Postexit)
          continue;
        if (HL >= 0 && !S.FromBack && Succ == G.loop(HL).Postexit)
          continue; // First entry must iterate at least once.
        bool NextFromBack = false;
        int SuccHL = HeaderLoop[Succ];
        if (SuccHL >= 0 && S.Node != G.loop(SuccHL).Preheader)
          NextFromBack = true;
        Stack.push_back({Succ, 0, NextFromBack});
      }
    }
    return false;
  }
};

AvailDataflow::AvailDataflow(const AnalysisContext &Ctx, const CommPlan &Plan)
    : I(new Impl(Ctx, Plan)) {}

AvailDataflow::~AvailDataflow() = default;

void AvailDataflow::check(VerifyReport &Report) const { I->check(Report); }

int AvailDataflow::numFacts() const {
  return static_cast<int>(I->Facts.size());
}

std::vector<int> AvailDataflow::partiallyDeadGroups() const {
  std::vector<int> Out;
  for (const CommGroup &Grp : I->Plan.Groups)
    if (I->groupPartiallyDead(Grp))
      Out.push_back(Grp.Id);
  return Out;
}

VerifyReport gca::verifyPlan(const AnalysisContext &Ctx, const CommPlan &Plan,
                             const PlacementOptions &Opts,
                             DiagEngine *Diags) {
  VerifyReport Report;
  Report.Strat = Plan.Strat;
  verifyIr(Ctx.R, Ctx.G, Ctx.S, Report);
  verifyPlanIntegrity(Ctx, Plan, Report);
  AvailDataflow DF(Ctx, Plan);
  DF.check(Report);
  if (StatsRegistry *S = Opts.Stats) {
    S->add("verify.dataflow-facts", Report.Facts);
    S->add("verify.checks", Report.Checks);
    S->add("verify.violations",
           static_cast<int64_t>(Report.Violations.size()));
  }
  if (Diags)
    for (const VerifyViolation &V : Report.Violations)
      Diags->error(V.Loc, "plan verify [%s]: %s", verifyRuleName(V.Rule),
                   V.Message.c_str());
  return Report;
}
