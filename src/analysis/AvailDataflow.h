//===- analysis/AvailDataflow.h - Must-availability verifier ----*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dataflow half of the translation-validation layer: a forward
/// *must-availability* analysis over the augmented CFG that independently
/// re-derives, per program point, which (array, section, mapping) facts a
/// communication plan makes available — and checks the paper's correctness
/// claims (4.1/4.7) as genuine all-paths dataflow properties instead of the
/// dominance projections PlanAudit uses.
///
/// One fact is tracked per non-reduction plan entry: "the section this
/// entry's serving group communicates is available". Facts are GENned at the
/// group's placement slot (only when the group's descriptors actually cover
/// the entry's section — a shrunk descriptor never generates), and KILLed by
///
///  - SSA definitions of the array with a feasible loop-independent flow
///    dependence into the entry's use (the written elements overlap the
///    communicated section), killing at the slot after the definition;
///  - dependences carried by a loop at level L, killing on the back edge of
///    that loop (the data changes between iterations, so a communication
///    outside the loop is stale from iteration 2 on — while one at the
///    header top legally re-fires each iteration first);
///  - structurally, the back edges of every loop enclosing the placement
///    (the descriptor is parameterized by those loop variables, so it names
///    different elements each iteration), and every program point whose loop
///    chain the placement's chain does not prefix (the descriptor's
///    variables are out of scope there).
///
/// The meet is intersection; two simultaneous domains separate the checker
/// families: the *reach* domain (GEN + structural kills) answers "did the
/// communication fire on every path", and the *avail* domain (+ dependence
/// kills) answers "and is it still fresh". A use whose fact fails in reach
/// is an avail-coverage violation; one that reaches but is not avail is an
/// avail-freshness violation; the same checks on SubsumedBy-eliminated
/// entries report avail-redundancy.
///
/// Unlike the audit, the CFG fixed point is path-sensitive across disjoint
/// IF arms for free: a definition inside one branch only kills along that
/// branch, with no branch-signature machinery.
///
/// Shares no code with core/Placement or core/EarliestLatest: only the IR,
/// the CFG, the section algebra, and DepTester (the primitives the ISSUE
/// grants both sides).
///
//===----------------------------------------------------------------------===//

#ifndef GCA_ANALYSIS_AVAILDATAFLOW_H
#define GCA_ANALYSIS_AVAILDATAFLOW_H

#include "analysis/IrVerify.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace gca {

/// The availability fixed point of one plan over one routine's CFG.
/// Construction builds the GEN/KILL tables and solves both domains; check()
/// then runs the three dataflow checker families, and partiallyDeadGroups()
/// exposes the consumption analysis the [dead-comm] lint rule is built on.
class AvailDataflow {
public:
  AvailDataflow(const AnalysisContext &Ctx, const CommPlan &Plan);
  ~AvailDataflow();
  AvailDataflow(const AvailDataflow &) = delete;
  AvailDataflow &operator=(const AvailDataflow &) = delete;

  /// Runs the avail-coverage / avail-freshness / avail-redundancy checker
  /// families, appending violations to \p Report and bumping its Facts /
  /// Checks counters.
  void check(VerifyReport &Report) const;

  /// Ids of groups with at least one path from their placement to EXIT on
  /// which no served use consumes the communicated data (partially-dead
  /// communication). Zero-trip loop bypasses are not counted as paths —
  /// every loop-hoisted communication is "dead" along those — so a warning
  /// means a genuine at-least-one-iteration path never reads the data.
  std::vector<int> partiallyDeadGroups() const;

  /// Number of availability facts tracked (one per non-reduction entry with
  /// a resolvable serving group).
  int numFacts() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// The complete verifier: structural IR checks (verifyIr), plan
/// cross-reference integrity (verifyPlanIntegrity), and the availability
/// dataflow families, in one report. Exports `verify.dataflow-facts`,
/// `verify.checks`, and `verify.violations` through \p Opts.Stats; when
/// \p Diags is non-null every violation is additionally reported as an
/// error at the offending use.
VerifyReport verifyPlan(const AnalysisContext &Ctx, const CommPlan &Plan,
                        const PlacementOptions &Opts,
                        DiagEngine *Diags = nullptr);

} // namespace gca

#endif // GCA_ANALYSIS_AVAILDATAFLOW_H
