//===- analysis/PlanAudit.h - Static communication plan auditor -*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static auditor for communication plans: given the analysis context and a
/// finished CommPlan, it independently re-derives and checks the structural
/// invariants the placement algorithm promises (the safety side of Claims
/// 4.1/4.7), at compile time and for every program — complementing the
/// element-granularity dynamic simulator in runtime/Verify.{h,cpp}, which
/// needs tiny problem sizes and a full lowering.
///
/// Five invariant families are checked:
///
///  1. *Range/dominance*: every live entry is served by exactly one group
///     whose final placement lies in the entry's [Earliest(u), Latest(u)]
///     dominator segment and dominates the use (reductions are inverted:
///     the placement is at-or-after the partial-sum statement).
///  2. *Intervening defs*: no SSA definition of the communicated array whose
///     written elements feed the use (a feasible flow dependence on the
///     entry's references) executes between the placement point and the use
///     — checked by walking the routine's regular defs against the dominator
///     tree, and by requiring the placement to sit inside every loop that
///     carries such a dependence.
///  3. *Subset coverage*: the data descriptor of every entry — member or
///     subsumption-eliminated — is covered by its serving group's descriptors
///     (section containment plus mapping subsumption, Section 4.6).
///  4. *Redundancy availability*: every eliminated entry resolves through its
///     SubsumedBy chain to a live serving group that is available on all
///     paths to the eliminated use.
///  5. *Combining legality*: each group's members share the placement as a
///     common original candidate (the latest-common-position rule of Section
///     4.7), have mutually compatible mappings of the group's kind, and the
///     combined per-processor payload respects the combining threshold
///     (estimatePerProcBytes, "currently set to 20 KB for SP2").
///
/// Violations carry entry/group ids, a source location, and a message; they
/// can be rendered as DiagEngine errors or as a machine-readable JSON report.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_ANALYSIS_PLANAUDIT_H
#define GCA_ANALYSIS_PLANAUDIT_H

#include "core/Placement.h"
#include "support/Diag.h"

#include <string>
#include <vector>

namespace gca {

/// The invariant family a violation belongs to.
enum class AuditRule : uint8_t {
  Structure,        ///< Plan cross-references are inconsistent (ids, lists).
  PlacementRange,   ///< Placement outside [Earliest, Latest] or not
                    ///< dominating the use.
  InterveningDef,   ///< A definition of communicated data executes between
                    ///< placement and use.
  SubsetCoverage,   ///< Entry data not covered by its group's descriptors.
  RedundancyAvail,  ///< Eliminated entry without an available equivalent.
  CombineLegality,  ///< Illegal combining (common position, compatibility,
                    ///< size threshold).
};

const char *auditRuleName(AuditRule Rule);

/// One invariant violation found by the auditor.
struct AuditViolation {
  AuditRule Rule;
  int EntryId = -1; ///< Offending entry, -1 for group-level violations.
  int GroupId = -1; ///< Serving/offending group, -1 when unresolved.
  SourceLoc Loc;    ///< Source position of the use (or group's first member).
  std::string Message;

  /// Renders "rule(entry=3,group=1) @2:5: message".
  std::string str() const;
};

/// The auditor's result for one plan.
struct AuditReport {
  Strategy Strat = Strategy::Global;
  int EntriesChecked = 0;
  int GroupsChecked = 0;
  std::vector<AuditViolation> Violations;

  bool ok() const { return Violations.empty(); }

  /// Human-readable rendering, one violation per line (with a pass/fail
  /// header).
  std::string str() const;

  /// Machine-readable JSON rendering:
  /// {"ok":bool,"strategy":...,"entries":N,"groups":N,"violations":[...]}.
  std::string json() const;
};

/// Audits \p Plan against the invariants above. \p Opts supplies the
/// combining threshold and processor count the plan was built under. When
/// \p Diags is non-null every violation is additionally reported as a
/// DiagEngine error at the offending use's source location.
AuditReport auditPlan(const AnalysisContext &Ctx, const CommPlan &Plan,
                      const PlacementOptions &Opts,
                      DiagEngine *Diags = nullptr);

} // namespace gca

#endif // GCA_ANALYSIS_PLANAUDIT_H
