//===- analysis/IrVerify.h - Structural IR/plan verifier --------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structural half of the translation-validation layer: re-checks the
/// well-formedness invariants every analysis assumes but none re-derives —
/// augmented-CFG shape (preheader/header/postexit triples, the zero-trip
/// edge, edge symmetry, slot numbering), array-SSA form (one ENTRY pseudo-def
/// per variable, single def per statement, phi arity, same-variable
/// parameters), and communication-plan cross-reference integrity (dense ids,
/// member/attached/GroupId agreement, in-range slots, SubsumedBy chain
/// acyclicity, section variables in scope at the placement point, decision-
/// log consistency). It is cheap enough to run between every pass
/// (`--verify=each`); the dataflow half lives in analysis/AvailDataflow.h.
///
/// Violations are reported through the shared VerifyReport, which both
/// halves append to; rule names distinguish the layers
/// (cfg-structure/ssa-form/plan-integrity/decision-log here,
/// avail-coverage/avail-freshness/avail-redundancy in the dataflow).
///
//===----------------------------------------------------------------------===//

#ifndef GCA_ANALYSIS_IRVERIFY_H
#define GCA_ANALYSIS_IRVERIFY_H

#include "core/CommEntry.h"
#include "core/Context.h"
#include "support/Diag.h"

#include <string>
#include <vector>

namespace gca {

/// The invariant families of the translation-validation layer. The first
/// four are structural (IrVerify.cpp); the avail-* rules are the dataflow
/// checker families of AvailDataflow.cpp.
enum class VerifyRule : uint8_t {
  CfgStructure,    ///< Augmented-CFG well-formedness (Figure 7 shape).
  SsaForm,         ///< Array-SSA invariants (Section 4.1).
  PlanIntegrity,   ///< Plan cross-reference and scoping integrity.
  DecisionLog,     ///< Decision log consistent with the plan it explains.
  AvailCoverage,   ///< All-paths availability of every live use's section.
  AvailFreshness,  ///< No feasible def postdates the serving communication.
  AvailRedundancy, ///< Eliminated entries are must-available at their use.
};

const char *verifyRuleName(VerifyRule Rule);

/// One violated invariant.
struct VerifyViolation {
  VerifyRule Rule;
  int EntryId = -1; ///< Plan entry concerned; -1 for IR-level findings.
  int GroupId = -1; ///< Plan group concerned; -1 when not applicable.
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// The outcome of one verifier run (structural, dataflow, or both).
struct VerifyReport {
  Strategy Strat = Strategy::Global;
  /// Availability facts tracked by the dataflow (0 for structural-only runs).
  int Facts = 0;
  /// Individual invariant checks evaluated (structural probes + per-use
  /// dataflow queries).
  int Checks = 0;
  std::vector<VerifyViolation> Violations;

  bool ok() const { return Violations.empty(); }
  std::string str() const;
  std::string json() const;
};

/// Verifies the augmented CFG and array SSA of one routine. \p G and \p S
/// must have been built from \p R. Appends to \p Report; increments
/// Report.Checks per probe.
void verifyIr(const Routine &R, const Cfg &G, const Ssa &S,
              VerifyReport &Report);

/// Verifies the cross-reference integrity of \p Plan against the IR:
/// dense entry/group ids, member/attached/GroupId agreement, slots in
/// range, Data/DataAug shape, SubsumedBy chains, descriptor variables in
/// scope at the placement point, and (when the plan carries a decision log)
/// log/plan consistency.
void verifyPlanIntegrity(const AnalysisContext &Ctx, const CommPlan &Plan,
                         VerifyReport &Report);

} // namespace gca

#endif // GCA_ANALYSIS_IRVERIFY_H
