//===- analysis/CommLint.cpp - Communication lint rules -------------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "analysis/CommLint.h"

#include "analysis/AvailDataflow.h"
#include "support/StrUtil.h"

#include <functional>
#include <set>

using namespace gca;

namespace {

/// A conservative constant range of an affine expression.
struct ValueRange {
  bool Known = false;
  int64_t Min = 0;
  int64_t Max = 0;
};

class Linter {
public:
  Linter(const AnalysisContext &Ctx, const CommPlan &Plan,
         const CommPlan *Baseline, DiagEngine &Diags)
      : Ctx(Ctx), Plan(Plan), Baseline(Baseline), Diags(Diags) {}

  int run() {
    checkUndistributedInDistributedLoop();
    checkInnermostComm();
    checkSubscriptRanges();
    checkUnusedArrays();
    checkNoCommBenefit();
    checkDeadComm();
    return NumWarnings;
  }

private:
  void warn(SourceLoc Loc, const std::string &Msg) {
    Diags.warning(Loc, "%s", Msg.c_str());
    ++NumWarnings;
  }

  /// Every array reference of \p S (LHS first, then RHS terms).
  static std::vector<const ArrayRef *> refsOf(const AssignStmt *S) {
    std::vector<const ArrayRef *> Refs;
    if (!S->lhsIsScalar())
      Refs.push_back(&S->lhs());
    for (const RhsTerm &T : S->rhs())
      if (T.isArrayLike())
        Refs.push_back(&T.Ref);
    return Refs;
  }

  /// Visits every assignment of the routine in source order.
  void forEachAssign(const std::function<void(const AssignStmt *)> &Fn) {
    Ctx.R.forEachStmt([&](Stmt *S) {
      if (const auto *A = dyn_cast<AssignStmt>(S))
        Fn(A);
    });
  }

  // --- [undistributed-array] -------------------------------------------------

  /// A loop is "distributed" when some assignment it encloses writes a
  /// distributed array dimension subscripted by the loop's variable — its
  /// iterations are spread across processors under owner-computes.
  std::set<int> distributedLoops() {
    std::set<int> Out;
    forEachAssign([&](const AssignStmt *S) {
      if (S->lhsIsScalar())
        return;
      const ArrayRef &Lhs = S->lhs();
      const ArrayDecl &A = Ctx.R.array(Lhs.ArrayId);
      for (unsigned D = 0; D < Lhs.Subs.size() && D < A.Dist.size(); ++D) {
        if (A.Dist[D] == DistKind::Star)
          continue;
        for (int Var : Lhs.Subs[D].Lo.vars())
          if (const LoopStmt *L = Ctx.varLoop(Var))
            Out.insert(Ctx.G.loopIdOf(L));
      }
    });
    return Out;
  }

  void checkUndistributedInDistributedLoop() {
    std::set<int> DistLoops = distributedLoops();
    if (DistLoops.empty())
      return;
    std::set<std::pair<int, int>> Reported; // (stmt, array)
    forEachAssign([&](const AssignStmt *S) {
      int InnermostDist = -1;
      for (int LoopId : Ctx.G.loopNestOf(S))
        if (DistLoops.count(LoopId))
          InnermostDist = LoopId;
      if (InnermostDist < 0)
        return;
      const std::string &LoopVar =
          Ctx.R.loopVarName(Ctx.G.loop(InnermostDist).L->var());
      for (const ArrayRef *Ref : refsOf(S)) {
        const ArrayDecl &A = Ctx.R.array(Ref->ArrayId);
        if (A.isDistributed() ||
            !Reported.insert({S->id(), Ref->ArrayId}).second)
          continue;
        warn(Ref->Loc.isValid() ? Ref->Loc : S->loc(),
             strFormat("undistributed array '%s' referenced inside "
                       "distributed loop '%s'; the access is replicated on "
                       "every processor [undistributed-array]",
                       A.Name.c_str(), LoopVar.c_str()));
      }
    });
  }

  // --- [innermost-comm] ------------------------------------------------------

  /// The definition whose dependence pins entry \p E at its CommLevel, for
  /// the diagnostic. Prefers the def Earliest(u) stopped at.
  const AssignStmt *blockingDef(const CommEntry &E) {
    if (E.EarliestDef >= 0) {
      const SsaDef &D = Ctx.S.def(E.EarliestDef);
      if (D.Kind == DefKind::Regular)
        return D.Stmt;
    }
    for (unsigned I = 0, N = Ctx.S.numDefs(); I != N; ++I) {
      const SsaDef &D = Ctx.S.def(static_cast<int>(I));
      if (D.Kind != DefKind::Regular || !Ctx.S.varIsArray(D.Var) ||
          Ctx.S.arrayOfVar(D.Var) != E.ArrayId)
        continue;
      for (const ArrayRef &Ref : E.Refs)
        if (Ctx.Dep.depLevel(D.Stmt, E.UseStmt, Ref) >= E.CommLevel)
          return D.Stmt;
    }
    return nullptr;
  }

  void checkInnermostComm() {
    for (const CommEntry &E : Plan.Entries) {
      if (E.Eliminated || E.M.Kind == CommKind::Reduce)
        continue;
      const std::vector<int> &Nest = Ctx.G.loopNestOf(E.UseStmt);
      if (Nest.empty() || E.CommLevel < static_cast<int>(Nest.size()))
        continue;
      SourceLoc Loc =
          !E.Refs.empty() && E.Refs[0].Loc.isValid() ? E.Refs[0].Loc
                                                     : E.UseStmt->loc();
      const AssignStmt *Def = blockingDef(E);
      std::string Blocker =
          Def ? strFormat("the definition at %s", Def->loc().str().c_str())
              : std::string("a dependence");
      warn(Loc, strFormat("communication for '%s' cannot be vectorized: %s "
                          "pins it inside the innermost loop '%s' "
                          "[innermost-comm]",
                          Ctx.R.array(E.ArrayId).Name.c_str(),
                          Blocker.c_str(),
                          Ctx.R.loopVarName(Ctx.G.loop(Nest.back()).L->var())
                              .c_str()));
    }
  }

  // --- [subscript-out-of-range] ----------------------------------------------

  /// Range of \p E under the loop-variable ranges in \p Env.
  bool evalRange(const AffineExpr &E, const std::vector<ValueRange> &Env,
                 int64_t &Min, int64_t &Max) {
    Min = Max = E.constPart();
    for (int Var : E.vars()) {
      if (Var >= static_cast<int>(Env.size()) || !Env[Var].Known)
        return false;
      int64_t C = E.coeff(Var);
      Min += C * (C > 0 ? Env[Var].Min : Env[Var].Max);
      Max += C * (C > 0 ? Env[Var].Max : Env[Var].Min);
    }
    return true;
  }

  void checkSubscript(const ArrayRef &Ref, unsigned Dim,
                      const std::vector<ValueRange> &Env) {
    const ArrayDecl &A = Ctx.R.array(Ref.ArrayId);
    if (Dim >= A.rank())
      return;
    const Subscript &Sub = Ref.Subs[Dim];
    int64_t LoMin, LoMax, HiMin, HiMax;
    if (!evalRange(Sub.Lo, Env, LoMin, LoMax))
      return;
    HiMin = LoMin;
    HiMax = LoMax;
    if (Sub.isRange() && !evalRange(Sub.Hi, Env, HiMin, HiMax))
      return;
    if (Sub.isRange() && HiMax < LoMin)
      return; // Provably empty section: nothing is accessed.
    if (LoMin >= A.Lo[Dim] && HiMax <= A.Hi[Dim])
      return;
    int64_t Reach = LoMin < A.Lo[Dim] ? LoMin : HiMax;
    warn(Ref.Loc, strFormat("subscript %u of '%s' can reach %lld, outside "
                            "the declared bounds %lld:%lld "
                            "[subscript-out-of-range]",
                            Dim + 1, A.Name.c_str(),
                            static_cast<long long>(Reach),
                            static_cast<long long>(A.Lo[Dim]),
                            static_cast<long long>(A.Hi[Dim])));
  }

  void checkSubscriptRanges() {
    std::vector<ValueRange> Env(Ctx.R.loopVarNames().size());
    std::function<void(const std::vector<Stmt *> &)> Walk =
        [&](const std::vector<Stmt *> &Body) {
          for (Stmt *S : Body) {
            if (const auto *A = dyn_cast<AssignStmt>(S)) {
              for (const ArrayRef *Ref : refsOf(A))
                for (unsigned D = 0; D < Ref->Subs.size(); ++D)
                  checkSubscript(*Ref, D, Env);
            } else if (auto *L = dyn_cast<LoopStmt>(S)) {
              int64_t LoMin = 0, LoMax = 0, HiMin = 0, HiMax = 0;
              bool Known = evalRange(L->lo(), Env, LoMin, LoMax) &&
                           evalRange(L->hi(), Env, HiMin, HiMax);
              if (Known && L->step() > 0 && LoMin > HiMax)
                continue; // Provably zero-trip: the body never runs.
              ValueRange Saved =
                  L->var() < static_cast<int>(Env.size())
                      ? Env[L->var()]
                      : ValueRange();
              if (L->var() < static_cast<int>(Env.size())) {
                ValueRange &R = Env[L->var()];
                R.Known = Known;
                R.Min = L->step() > 0 ? LoMin : HiMin;
                R.Max = L->step() > 0 ? HiMax : LoMax;
              }
              Walk(L->body());
              if (L->var() < static_cast<int>(Env.size()))
                Env[L->var()] = Saved;
            } else if (auto *I = dyn_cast<IfStmt>(S)) {
              Walk(I->thenBody());
              Walk(I->elseBody());
            }
          }
        };
    Walk(Ctx.R.body());
  }

  // --- [unused-array] ----------------------------------------------------------

  void checkUnusedArrays() {
    std::vector<bool> Used(Ctx.R.arrays().size(), false);
    forEachAssign([&](const AssignStmt *S) {
      for (const ArrayRef *Ref : refsOf(S))
        Used[Ref->ArrayId] = true;
    });
    for (const ArrayDecl &A : Ctx.R.arrays())
      if (!Used[A.Id])
        warn(SourceLoc(),
             strFormat("array '%s' is declared but never referenced "
                       "[unused-array]",
                       A.Name.c_str()));
  }

  // --- [no-comm-benefit] --------------------------------------------------------

  void checkNoCommBenefit() {
    if (!Baseline || Plan.Strat == Strategy::Orig || Plan.Entries.empty())
      return;
    if (Plan.Stats.NumEliminated > 0 ||
        Plan.Stats.totalGroups() < Baseline->Stats.totalGroups())
      return;
    warn(SourceLoc(),
         strFormat("global placement found no improvement over message "
                   "vectorization in '%s' (%d messages either way); "
                   "consider restructuring its loops [no-comm-benefit]",
                   Ctx.R.name().c_str(), Plan.Stats.totalGroups()));
  }

  // --- [dead-comm] --------------------------------------------------------------

  /// Partially-dead communication: the availability dataflow's consumption
  /// analysis found a genuine (at-least-one-iteration) path from a group's
  /// placement to EXIT on which no served use reads the data — the message
  /// is paid for on that path but never consumed. Typically an IF arm that
  /// branches around every use of the communicated section.
  void checkDeadComm() {
    if (Plan.Groups.empty())
      return;
    AvailDataflow DF(Ctx, Plan);
    for (int GId : DF.partiallyDeadGroups()) {
      const CommGroup &G = Plan.Groups[GId];
      // Cite the first member's use so the warning lands on user code.
      SourceLoc Loc;
      std::string Array = "?";
      if (!G.Members.empty()) {
        const CommEntry &E = Plan.Entries[G.Members[0]];
        Array = Ctx.R.array(E.ArrayId).Name;
        if (!E.Refs.empty() && E.Refs[0].Loc.isValid())
          Loc = E.Refs[0].Loc;
        else if (E.UseStmt)
          Loc = E.UseStmt->loc();
      }
      warn(Loc, strFormat("communication for '%s' is partially dead: some "
                          "path from its placement reaches the routine exit "
                          "without reading the data; consider sinking it "
                          "into the branch that uses it [dead-comm]",
                          Array.c_str()));
    }
  }

  const AnalysisContext &Ctx;
  const CommPlan &Plan;
  const CommPlan *Baseline;
  DiagEngine &Diags;
  int NumWarnings = 0;
};

} // namespace

int gca::lintRoutine(const AnalysisContext &Ctx, const CommPlan &Plan,
                     const CommPlan *Baseline, DiagEngine &Diags) {
  return Linter(Ctx, Plan, Baseline, Diags).run();
}
