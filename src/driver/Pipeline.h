//===- driver/Pipeline.h - Instrumented pass pipeline -----------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass-manager view of the Figure-6 compilation flow. A Session owns
/// every piece of state for one compilation — source text, diagnostics,
/// counter registry, time trace, intermediate program, per-routine results —
/// so sessions are reentrant: any number may run concurrently on different
/// threads with no shared mutable state. A Pipeline is an ordered list of
/// named Pass objects; the standard pipeline is
///
///   parse -> scalarize -> fuse -> build-context -> placement -> audit
///     -> verify -> lint
///
/// where option-gated passes (scalarize, fuse, audit, verify, lint) are
/// no-ops when disabled, keeping pass names stable for dump-after hooks. The pipeline
/// runner times every pass (wall + thread CPU), snapshots the counter
/// registry around it so increments are attributed to the pass that made
/// them, and records dumps after the pass named by CompileOptions::DumpAfter.
///
/// compileSource() in Compile.h is a thin wrapper over Session and remains
/// the one-call entry point.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_DRIVER_PIPELINE_H
#define GCA_DRIVER_PIPELINE_H

#include "driver/Compile.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include <functional>

namespace gca {

class Session;
struct CachedResult;

/// One named stage of the pipeline. Fn returns false to abort the run
/// (a fatal error; the session's Result.Errors is expected to be set).
struct Pass {
  std::string Name;
  std::function<bool(Session &)> Fn;
};

/// Instrumentation captured around one pass execution.
struct PassRecord {
  std::string Name;
  TimeRecord Time;
  /// Counters incremented while the pass ran (name -> increment).
  StatsRegistry::Snapshot Counters;
};

/// An ordered, immutable list of passes.
class Pipeline {
public:
  Pipeline &add(std::string Name, std::function<bool(Session &)> Fn);
  const std::vector<Pass> &passes() const { return Passes; }

  /// Runs every pass over \p S in order, instrumenting each; stops at the
  /// first pass that returns false. \returns true when all passes ran.
  bool run(Session &S) const;

  /// The standard Figure-6 pipeline (see the file comment).
  static const Pipeline &standard();

private:
  std::vector<Pass> Passes;
};

/// All state for one compilation of one source buffer.
class Session {
public:
  Session(std::string Source, CompileOptions Opts);
  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// Runs the standard pipeline. \returns Result.Ok.
  bool run() { return run(Pipeline::standard()); }
  bool run(const Pipeline &P);

  /// Finalizes and moves the result out (renders accumulated non-error
  /// diagnostics into Result.Diagnostics). The session keeps its
  /// instrumentation (Stats, Times, Passes, Dumps) for reporting.
  CompileResult take();

  /// The Strategy::Orig baseline plan for routine \p RoutineIdx, computed
  /// on first request and cached — the lint no-benefit rule and any stats
  /// consumer share one computation. Null when the session's own strategy
  /// already is Orig.
  const CommPlan *origBaseline(size_t RoutineIdx);

  /// Installs a ResultCache hit into this session without running any pass:
  /// Result gains the cached flags, errors, rendered diagnostics and plan
  /// texts (FromCache set), Dumps the cached dump-after records, and Stats
  /// the cached counters — everything a cold run would have produced, minus
  /// the live IR. Used by CachedPipeline (driver/CachedPipeline.h).
  void replayResult(const CachedResult &R);

  /// Renders the current program (HPF-lite text) and any computed plans;
  /// the payload of dump-after records.
  std::string dump() const;

  /// Hierarchical per-pass (and per-routine, under placement/audit/lint)
  /// time report.
  std::string timeReport() const { return Times.report(); }

  /// Per-pass timings and counters as one JSON object:
  /// {"passes":[{name,wall_s,cpu_s,counters{}}...],"regions":[tree]}.
  std::string timeReportJson() const;

  CompileOptions Opts;
  std::string Source;

  /// Accumulates across the whole run — frontend warnings are *kept* when
  /// audit/lint run later (they all render into Result.Diagnostics).
  DiagEngine Diags;
  StatsRegistry Stats;
  TimeTrace Times;
  /// One record per executed pass, in execution order.
  std::vector<PassRecord> Passes;
  /// (pass name, dump text) records made by dump-after hooks.
  std::vector<std::pair<std::string, std::string>> Dumps;

  /// The result under construction; passes populate it in place.
  CompileResult Result;

private:
  std::vector<std::unique_ptr<CommPlan>> Baselines;
  bool Taken = false;
  /// Set by replayResult(): take() must keep the replayed Diagnostics
  /// instead of re-rendering the (empty) DiagEngine.
  bool Replayed = false;
};

} // namespace gca

#endif // GCA_DRIVER_PIPELINE_H
