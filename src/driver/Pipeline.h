//===- driver/Pipeline.h - Instrumented pass pipeline -----------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass-manager view of the Figure-6 compilation flow. A Session owns
/// every piece of state for one compilation — source text, diagnostics,
/// counter registry, time trace, intermediate program, per-routine results —
/// so sessions are reentrant: any number may run concurrently on different
/// threads with no shared mutable state. A Pipeline is an ordered list of
/// named Pass objects; the standard pipeline is
///
///   parse -> scalarize -> fuse -> build-context -> placement -> audit
///     -> verify -> lint
///
/// where option-gated passes (scalarize, fuse, audit, verify, lint) are
/// no-ops when disabled, keeping pass names stable for dump-after hooks. The pipeline
/// runner times every pass (wall + thread CPU), snapshots the counter
/// registry around it so increments are attributed to the pass that made
/// them, and records dumps after the pass named by CompileOptions::DumpAfter.
///
/// compileSource() in Compile.h is a thin wrapper over Session and remains
/// the one-call entry point.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_DRIVER_PIPELINE_H
#define GCA_DRIVER_PIPELINE_H

#include "driver/Compile.h"
#include "support/ResultCache.h"
#include "support/Stats.h"
#include "support/Timer.h"

#include <functional>
#include <map>

namespace gca {

class Session;
class ThreadPool;

/// One named stage of the pipeline. Fn returns false to abort the run
/// (a fatal error; the session's Result.Errors is expected to be set).
struct Pass {
  std::string Name;
  std::function<bool(Session &)> Fn;
};

/// Instrumentation captured around one pass execution.
struct PassRecord {
  std::string Name;
  TimeRecord Time;
  /// Counters incremented while the pass ran (name -> increment).
  StatsRegistry::Snapshot Counters;
};

/// An ordered, immutable list of passes.
class Pipeline {
public:
  Pipeline &add(std::string Name, std::function<bool(Session &)> Fn);
  const std::vector<Pass> &passes() const { return Passes; }

  /// Runs every pass over \p S in order, instrumenting each; stops at the
  /// first pass that returns false. \returns true when all passes ran.
  bool run(Session &S) const;

  /// The standard Figure-6 pipeline (see the file comment).
  static const Pipeline &standard();

private:
  std::vector<Pass> Passes;
};

/// All state for one compilation of one source buffer.
class Session {
public:
  Session(std::string Source, CompileOptions Opts);
  ~Session();
  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// Runs the standard pipeline. \returns Result.Ok.
  bool run() { return run(Pipeline::standard()); }
  bool run(const Pipeline &P);

  /// Finalizes and moves the result out (renders accumulated non-error
  /// diagnostics into Result.Diagnostics). The session keeps its
  /// instrumentation (Stats, Times, Passes, Dumps) for reporting.
  CompileResult take();

  /// The Strategy::Orig baseline plan for routine \p RoutineIdx, computed
  /// on first request and cached — the lint no-benefit rule and any stats
  /// consumer share one computation. Null when the session's own strategy
  /// already is Orig.
  const CommPlan *origBaseline(size_t RoutineIdx);

  /// --- Routine-granularity incremental recompilation -------------------
  ///
  /// On a whole-file cache miss, CachedPipeline slices the source into
  /// per-routine texts and keys each on (cache version, options, pipeline,
  /// prelude, routine text, routine start line). A hit replays that
  /// routine's placement/audit/verify/lint artifacts — plan text, per-pass
  /// diagnostics, per-pass counters — while the passes recompute only the
  /// routines whose key changed; an in-place edit of one routine in a
  /// multi-routine file therefore costs one routine recompilation. The
  /// start line in the key keeps replayed diagnostic line numbers honest:
  /// an edit that shifts later routines invalidates their keys.
  struct RoutineCacheEntry {
    CacheKey Key;
    bool Hit = false;
    /// On a hit: the replayed artifacts. On a miss: the harvest under
    /// construction — the pass loops record per-pass diag/counter segments
    /// here and CachedPipeline stores the finished entry after the run.
    CachedResult Value;
  };
  /// Keyed by routine name; empty when routine caching is inactive (no
  /// cache, no `routine` markers, or a dump-after hook that needs live IR).
  std::map<std::string, RoutineCacheEntry> RoutineCache;

  bool routineCacheActive() const { return !RoutineCache.empty(); }
  /// Entry for \p Name; null when routine caching is inactive or the
  /// routine matched no source slice.
  RoutineCacheEntry *routineCacheEntry(const std::string &Name);
  /// True when \p Name's per-routine passes replay from the cache.
  bool routineCacheHit(const std::string &Name);
  /// Replays pass \p Pass's cached diagnostics and counters for routine
  /// \p Name (and its audit/verify verdict flags into Result).
  void replayRoutinePass(const char *Pass, const std::string &Name);
  /// Records pass \p Pass's diagnostic and counter deltas for routine
  /// \p RR into its harvest-in-progress.
  void recordRoutinePass(const char *Pass, const RoutineResult &RR,
                         size_t DiagsBefore,
                         const StatsRegistry::Snapshot &StatsBefore);

  /// The worker pool the parallel placement and audit phases run on, built
  /// lazily with Opts.Placement.Jobs workers on first request. Null when
  /// Jobs <= 1 (fully serial compilation). Owned by the session so
  /// concurrent sessions never share a pool (reentrancy), and reused across
  /// every routine and pass of this compilation.
  ThreadPool *placementPool();

  /// Installs a ResultCache hit into this session without running any pass:
  /// Result gains the cached flags, errors, rendered diagnostics and plan
  /// texts (FromCache set), Dumps the cached dump-after records, and Stats
  /// the cached counters — everything a cold run would have produced, minus
  /// the live IR. Used by CachedPipeline (driver/CachedPipeline.h).
  void replayResult(const CachedResult &R);

  /// Renders the current program (HPF-lite text) and any computed plans;
  /// the payload of dump-after records.
  std::string dump() const;

  /// Hierarchical per-pass (and per-routine, under placement/audit/lint)
  /// time report.
  std::string timeReport() const { return Times.report(); }

  /// Per-pass timings and counters as one JSON object:
  /// {"passes":[{name,wall_s,cpu_s,counters{}}...],"regions":[tree]}.
  std::string timeReportJson() const;

  CompileOptions Opts;
  std::string Source;

  /// Accumulates across the whole run — frontend warnings are *kept* when
  /// audit/lint run later (they all render into Result.Diagnostics).
  DiagEngine Diags;
  StatsRegistry Stats;
  TimeTrace Times;
  /// One record per executed pass, in execution order.
  std::vector<PassRecord> Passes;
  /// (pass name, dump text) records made by dump-after hooks.
  std::vector<std::pair<std::string, std::string>> Dumps;

  /// The result under construction; passes populate it in place.
  CompileResult Result;

private:
  std::vector<std::unique_ptr<CommPlan>> Baselines;
  std::unique_ptr<ThreadPool> Pool;
  bool Taken = false;
  /// Set by replayResult(): take() must keep the replayed Diagnostics
  /// instead of re-rendering the (empty) DiagEngine.
  bool Replayed = false;
};

} // namespace gca

#endif // GCA_DRIVER_PIPELINE_H
