//===- driver/CachedPipeline.cpp - Cache-fronted pipeline -----------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "driver/CachedPipeline.h"

#include "support/StrUtil.h"
#include "support/Trace.h"

using namespace gca;

const char *const gca::kGcaCacheVersion = "gcomm-cache-2";

std::string gca::optionsFingerprint(const CompileOptions &Opts) {
  const PlacementOptions &P = Opts.Placement;
  std::string S;
  // Every field, defaults included, in a fixed order. %.17g round-trips
  // doubles exactly, so equal values always render equal.
  S += strFormat("strategy=%s\n", strategyName(P.Strat));
  S += strFormat("combine-threshold-bytes=%lld\n",
                 static_cast<long long>(P.CombineThresholdBytes));
  S += strFormat("max-union-growth=%.17g\n", P.MaxUnionGrowth);
  S += strFormat("num-procs=%d\n", P.NumProcs);
  S += strFormat("subsume-diagonals=%d\n", P.SubsumeDiagonals ? 1 : 0);
  S += strFormat("partial-redundancy=%d\n", P.PartialRedundancy ? 1 : 0);
  S += strFormat("defer-reductions=%d\n", P.DeferReductions ? 1 : 0);
  S += strFormat("scalarize=%d\n", Opts.Scalarize ? 1 : 0);
  S += strFormat("fuse-loops=%d\n", Opts.FuseLoops ? 1 : 0);
  S += strFormat("audit=%d\n", Opts.Audit ? 1 : 0);
  S += strFormat("verify=%d\n", static_cast<int>(Opts.Verify));
  S += strFormat("lint=%d\n", Opts.Lint ? 1 : 0);
  S += "dump-after=" + Opts.DumpAfter + "\n";
  // ParamMap is an ordered map, so overrides render sorted by name no
  // matter the insertion order; the prefix keeps "param:n" distinct from a
  // hypothetical option of the same name.
  for (const auto &[Name, Value] : Opts.Params)
    S += strFormat("param:%s=%lld\n", Name.c_str(),
                   static_cast<long long>(Value));
  return S;
}

std::string gca::pipelineFingerprint(const Pipeline &P) {
  std::string S;
  for (const Pass &Stage : P.passes())
    S += "pass:" + Stage.Name + "\n";
  return S;
}

CacheKey gca::compileCacheKey(const std::string &Source,
                              const CompileOptions &Opts, const Pipeline &P) {
  std::string Material;
  Material += std::string(kGcaCacheVersion) + "\n";
  Material += "--options--\n" + optionsFingerprint(Opts);
  Material += "--pipeline--\n" + pipelineFingerprint(P);
  Material += "--source--\n" + Source;
  return CacheKey::of(Material);
}

CachedResult gca::harvestSession(Session &S) {
  CachedResult R;
  R.Ok = S.Result.Ok;
  R.AuditOk = S.Result.AuditOk;
  R.VerifyOk = S.Result.VerifyOk;
  R.Errors = S.Result.Errors;
  // Matches Session::take(): diagnostics render only for successful runs
  // (failed runs carry them in Errors already).
  if (S.Result.Ok)
    R.Diagnostics = S.Diags.str();
  for (const RoutineResult &RR : S.Result.Routines)
    R.Plans.emplace_back(RR.R->name(), RR.Plan.str(*RR.R));
  R.Dumps = S.Dumps;
  R.Counters = S.Stats.snapshot();
  return R;
}

bool CachedPipeline::run(Session &S) {
  CacheKey K = compileCacheKey(S.Source, S.Opts, P);
  {
    // Stamp the cache key on the compile so a trace links every span of
    // this compilation to its cache entry.
    TraceCollector &C = TraceCollector::instance();
    if (C.enabled())
      C.instant("cache-key", "cache", {{"key", K.hex()}});
  }
  bool Hit = false;
  CachedResult R = Cache.getOrCompute(
      K,
      [&] {
        S.run(P);
        return harvestSession(S);
      },
      &Hit);
  if (Hit) {
    S.replayResult(R);
  } else {
    // Cold path already ran inside the lambda; expose the rendered plans so
    // cold and warm consumers print the same bytes.
    S.Result.PlanTexts = R.Plans;
  }
  return Hit;
}
