//===- driver/CachedPipeline.cpp - Cache-fronted pipeline -----------------===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "driver/CachedPipeline.h"

#include "support/StrUtil.h"
#include "support/Trace.h"

using namespace gca;

const char *const gca::kGcaCacheVersion = "gcomm-cache-3";

std::string gca::optionsFingerprint(const CompileOptions &Opts) {
  const PlacementOptions &P = Opts.Placement;
  std::string S;
  // Every field, defaults included, in a fixed order. %.17g round-trips
  // doubles exactly, so equal values always render equal.
  //
  // PlacementOptions::Jobs (and the Pool it implies) is deliberately NOT
  // key material: the parallel placement phase commits per-entry results in
  // entry order, so plans, diagnostics, decision logs, and counters are
  // bitwise-identical at any job count — a result computed at -j8 replays
  // correctly for a serial compile and vice versa. The non-semantic Stats
  // export pointer is likewise excluded.
  S += strFormat("strategy=%s\n", strategyName(P.Strat));
  S += strFormat("combine-threshold-bytes=%lld\n",
                 static_cast<long long>(P.CombineThresholdBytes));
  S += strFormat("max-union-growth=%.17g\n", P.MaxUnionGrowth);
  S += strFormat("num-procs=%d\n", P.NumProcs);
  S += strFormat("subsume-diagonals=%d\n", P.SubsumeDiagonals ? 1 : 0);
  S += strFormat("partial-redundancy=%d\n", P.PartialRedundancy ? 1 : 0);
  S += strFormat("defer-reductions=%d\n", P.DeferReductions ? 1 : 0);
  S += strFormat("scalarize=%d\n", Opts.Scalarize ? 1 : 0);
  S += strFormat("fuse-loops=%d\n", Opts.FuseLoops ? 1 : 0);
  S += strFormat("audit=%d\n", Opts.Audit ? 1 : 0);
  S += strFormat("verify=%d\n", static_cast<int>(Opts.Verify));
  S += strFormat("lint=%d\n", Opts.Lint ? 1 : 0);
  S += "machine=" + Opts.Machine + "\n";
  S += "dump-after=" + Opts.DumpAfter + "\n";
  // ParamMap is an ordered map, so overrides render sorted by name no
  // matter the insertion order; the prefix keeps "param:n" distinct from a
  // hypothetical option of the same name.
  for (const auto &[Name, Value] : Opts.Params)
    S += strFormat("param:%s=%lld\n", Name.c_str(),
                   static_cast<long long>(Value));
  return S;
}

std::string gca::pipelineFingerprint(const Pipeline &P) {
  std::string S;
  for (const Pass &Stage : P.passes())
    S += "pass:" + Stage.Name + "\n";
  return S;
}

CacheKey gca::compileCacheKey(const std::string &Source,
                              const CompileOptions &Opts, const Pipeline &P) {
  std::string Material;
  Material += std::string(kGcaCacheVersion) + "\n";
  Material += "--options--\n" + optionsFingerprint(Opts);
  Material += "--pipeline--\n" + pipelineFingerprint(P);
  Material += "--source--\n" + Source;
  return CacheKey::of(Material);
}

CachedResult gca::harvestSession(Session &S) {
  CachedResult R;
  R.Ok = S.Result.Ok;
  R.AuditOk = S.Result.AuditOk;
  R.VerifyOk = S.Result.VerifyOk;
  R.Errors = S.Result.Errors;
  // Matches Session::take(): diagnostics render only for successful runs
  // (failed runs carry them in Errors already).
  if (S.Result.Ok)
    R.Diagnostics = S.Diags.str();
  for (const RoutineResult &RR : S.Result.Routines) {
    // A routine replayed from the routine cache never materialized a live
    // plan; its rendered text comes from the cached entry instead, so warm
    // and cold compiles still print the same bytes.
    if (Session::RoutineCacheEntry *E = S.routineCacheEntry(RR.R->name());
        E && E->Hit) {
      for (const auto &[Name, Text] : E->Value.Plans)
        if (Name == RR.R->name())
          R.Plans.emplace_back(Name, Text);
      continue;
    }
    R.Plans.emplace_back(RR.R->name(), RR.Plan.str(*RR.R));
  }
  R.Dumps = S.Dumps;
  R.Counters = S.Stats.snapshot();
  return R;
}

//===----------------------------------------------------------------------===//
// Routine-granularity slicing and keys
//===----------------------------------------------------------------------===//

static bool isIdentChar(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
         (C >= '0' && C <= '9') || C == '_';
}

std::vector<RoutineSlice> gca::sliceRoutineSources(const std::string &Source,
                                                   std::string &Prelude) {
  std::vector<RoutineSlice> Slices;
  Prelude.clear();
  size_t Pos = 0;
  int Line = 1;
  while (Pos < Source.size()) {
    size_t Eol = Source.find('\n', Pos);
    size_t End = Eol == std::string::npos ? Source.size() : Eol + 1;
    // A marker line's first token is literally `routine` followed by an
    // identifier. Comment lines (`!`, `//`) can never match, and the
    // grammar admits the keyword nowhere else at the start of a line.
    size_t I = Pos;
    while (I < End && (Source[I] == ' ' || Source[I] == '\t'))
      ++I;
    std::string Name;
    if (Source.compare(I, 7, "routine") == 0 &&
        (I + 7 >= Source.size() || !isIdentChar(Source[I + 7]))) {
      size_t N = I + 7;
      while (N < End && (Source[N] == ' ' || Source[N] == '\t'))
        ++N;
      size_t NameBegin = N;
      while (N < End && isIdentChar(Source[N]))
        ++N;
      Name.assign(Source, NameBegin, N - NameBegin);
    }
    if (!Name.empty()) {
      RoutineSlice S;
      S.Name = std::move(Name);
      S.StartLine = Line;
      Slices.push_back(std::move(S));
    }
    std::string &Out = Slices.empty() ? Prelude : Slices.back().Text;
    Out.append(Source, Pos, End - Pos);
    Pos = End;
    ++Line;
  }
  return Slices;
}

CacheKey gca::routineCacheKey(const std::string &Prelude,
                              const std::string &RoutineText, int StartLine,
                              const CompileOptions &Opts, const Pipeline &P) {
  std::string Material;
  Material += std::string(kGcaCacheVersion) + "\n";
  Material += "--routine--\n";
  Material += "--options--\n" + optionsFingerprint(Opts);
  Material += "--pipeline--\n" + pipelineFingerprint(P);
  Material += "--prelude--\n" + Prelude;
  Material += strFormat("--start-line=%d--\n", StartLine);
  Material += "--source--\n" + RoutineText;
  return CacheKey::of(Material);
}

void CachedPipeline::setupRoutineCache(Session &S) {
  // Dump-after hooks dump every routine's live IR, and --verify=each
  // cross-checks plan integrity mid-pipeline; both need full recomputation.
  if (!S.Opts.DumpAfter.empty() || S.Opts.Verify == VerifyMode::Each)
    return;
  std::string Prelude;
  std::vector<RoutineSlice> Slices = sliceRoutineSources(S.Source, Prelude);
  if (Slices.empty())
    return;
  std::map<std::string, Session::RoutineCacheEntry> Entries;
  for (const RoutineSlice &Slice : Slices) {
    Session::RoutineCacheEntry E;
    E.Key = routineCacheKey(Prelude, Slice.Text, Slice.StartLine, S.Opts, P);
    // Duplicate routine names make per-name replay ambiguous; the compile
    // may also reject them, but the cache must not rely on that.
    if (!Entries.emplace(Slice.Name, std::move(E)).second)
      return;
  }
  for (auto &[Name, E] : Entries) {
    if (std::optional<CachedResult> V = Cache.lookupRoutine(E.Key)) {
      E.Hit = true;
      E.Value = std::move(*V);
    }
  }
  S.RoutineCache = std::move(Entries);
}

void CachedPipeline::storeRoutineResults(Session &S) {
  if (!S.Result.Ok || !S.routineCacheActive())
    return;
  for (auto &[Name, E] : S.RoutineCache) {
    if (E.Hit)
      continue;
    E.Value.Ok = true;
    Cache.store(E.Key, E.Value);
  }
}

bool CachedPipeline::run(Session &S) {
  CacheKey K = compileCacheKey(S.Source, S.Opts, P);
  {
    // Stamp the cache key on the compile so a trace links every span of
    // this compilation to its cache entry.
    TraceCollector &C = TraceCollector::instance();
    if (C.enabled())
      C.instant("cache-key", "cache", {{"key", K.hex()}});
  }
  bool Hit = false;
  CachedResult R = Cache.getOrCompute(
      K,
      [&] {
        // Whole-file miss: replay whatever routines still hit at routine
        // granularity, run the pipeline (cached routines skip their
        // per-routine passes), then store the recomputed routines.
        setupRoutineCache(S);
        S.run(P);
        storeRoutineResults(S);
        return harvestSession(S);
      },
      &Hit);
  if (Hit) {
    S.replayResult(R);
  } else {
    // Cold path already ran inside the lambda; expose the rendered plans so
    // cold and warm consumers print the same bytes.
    S.Result.PlanTexts = R.Plans;
  }
  return Hit;
}
