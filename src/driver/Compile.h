//===- driver/Compile.h - One-call compilation pipeline ---------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point: parse HPF-lite text (or take a built routine),
/// scalarize, run the analysis pipeline of Figure 6 (dataflow/dependence
/// analysis -> communication analyzer -> placement), and return the plans.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_DRIVER_COMPILE_H
#define GCA_DRIVER_COMPILE_H

#include "analysis/IrVerify.h"
#include "analysis/PlanAudit.h"
#include "core/Placement.h"
#include "frontend/Parser.h"
#include "lower/Lower.h"

#include <memory>
#include <string>
#include <vector>

namespace gca {

class ResultCache;

/// How much translation validation (analysis/IrVerify.h,
/// analysis/AvailDataflow.h) the pipeline runs.
enum class VerifyMode : uint8_t {
  Off,   ///< No verification.
  Final, ///< Verify the final plans once, after placement.
  Each,  ///< Final, plus structural IR verification after every pass that
         ///< has a CFG/SSA to check (build-context, placement).
};

struct CompileOptions {
  PlacementOptions Placement;
  /// Problem-size overrides for `param` declarations (how benchmarks sweep).
  ParamMap Params;
  /// Run the pHPF-style scalarizer before analysis (Figure 3's pipeline).
  bool Scalarize = true;
  /// Fuse adjacent conformable nests after scalarization (the repair the
  /// paper's Section 2.3 notes "is not always possible"); off by default to
  /// match the pHPF pipeline.
  bool FuseLoops = false;
  /// Statically audit every produced plan (analysis/PlanAudit.h); violations
  /// land in CompileResult::Diagnostics and clear AuditOk. On by default in
  /// asserts-enabled builds, matching the cost profile of assertions.
#ifdef NDEBUG
  bool Audit = false;
#else
  bool Audit = true;
#endif
  /// Translation validation: independently re-verify every produced plan
  /// with the availability dataflow and the structural IR verifier;
  /// violations land in CompileResult::Diagnostics and clear VerifyOk. Like
  /// Audit, on by default in asserts-enabled builds.
#ifdef NDEBUG
  VerifyMode Verify = VerifyMode::Off;
#else
  VerifyMode Verify = VerifyMode::Final;
#endif
  /// Run the communication lint rules (analysis/CommLint.h); warnings land
  /// in CompileResult::Diagnostics.
  bool Lint = false;
  /// Machine profile the collective lowering pass selects algorithms for
  /// (MachineProfile::byName registry name). An unknown name is a
  /// compilation error listing the registry.
  std::string Machine = "sp2";
  /// Name of a pipeline pass ("parse", "scalarize", "fuse", "build-context",
  /// "placement", "lower", "audit", "verify", "lint", or "all") after which
  /// the session records
  /// a dump of the program and any plans (Session::Dumps). Empty = never.
  std::string DumpAfter;
};

/// Analysis results for one routine.
struct RoutineResult {
  Routine *R = nullptr;
  std::unique_ptr<AnalysisContext> Ctx;
  CommPlan Plan;
  /// The collective lowering of Plan under CompileOptions::Machine
  /// (lower/Lower.h), populated by the "lower" pass.
  PlanLowering Lowering;
  /// Populated when CompileOptions::Audit is set.
  AuditReport Audit;
  /// Populated when CompileOptions::Verify is not Off.
  VerifyReport Verify;
};

/// Results for one compilation.
struct CompileResult {
  bool Ok = false;
  /// False when the plan auditor found violations in some routine.
  bool AuditOk = true;
  /// False when the translation-validation verifier found violations in
  /// some routine (or some pass left the IR structurally broken).
  bool VerifyOk = true;
  std::string Errors;
  /// Rendered non-fatal diagnostics (DiagEngine::str() format): frontend
  /// warnings/notes followed by audit errors and lint warnings.
  std::string Diagnostics;
  std::unique_ptr<Program> Prog;
  std::vector<RoutineResult> Routines;

  /// True when this result was replayed from a ResultCache hit. Replayed
  /// results carry the rendered artifacts (Diagnostics, PlanTexts, and the
  /// session's Dumps/Stats) bitwise-identical to a cold run, but not the
  /// live IR: Prog and Routines are empty.
  bool FromCache = false;
  /// (routine name, rendered CommPlan::str text) in routine order. Populated
  /// whenever the compilation went through a ResultCache (hit or miss), so
  /// cold and warm runs render plans from the same bytes.
  std::vector<std::pair<std::string, std::string>> PlanTexts;

  /// The result for a routine by name; null when absent.
  const RoutineResult *find(const std::string &Name) const;

  /// The concatenated rendered plans: PlanTexts when present (any
  /// cache-mediated compilation), otherwise rendered from Routines.
  std::string planText() const;
};

/// Parses, scalarizes and analyzes \p Source under \p Opts. A thin wrapper
/// over the instrumented pass pipeline in driver/Pipeline.h; use a Session
/// directly for timing, counters, or dump-after hooks.
CompileResult compileSource(const std::string &Source,
                            const CompileOptions &Opts);

/// compileSource through a result cache: on a hit the returned result is
/// replayed (FromCache set, rendered artifacts only — see
/// CompileResult::FromCache); on a miss it is a normal compilation whose
/// artifacts are stored under the content-addressed key. A null \p Cache
/// behaves exactly like the two-argument overload.
CompileResult compileSource(const std::string &Source,
                            const CompileOptions &Opts, ResultCache *Cache);

/// Analyzes one already-built (and already-scalarized) routine.
RoutineResult analyzeRoutine(Routine &R, const PlacementOptions &Opts);

} // namespace gca

#endif // GCA_DRIVER_COMPILE_H
