//===- driver/Compile.h - One-call compilation pipeline ---------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point: parse HPF-lite text (or take a built routine),
/// scalarize, run the analysis pipeline of Figure 6 (dataflow/dependence
/// analysis -> communication analyzer -> placement), and return the plans.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_DRIVER_COMPILE_H
#define GCA_DRIVER_COMPILE_H

#include "core/Placement.h"
#include "frontend/Parser.h"

#include <memory>
#include <string>
#include <vector>

namespace gca {

struct CompileOptions {
  PlacementOptions Placement;
  /// Problem-size overrides for `param` declarations (how benchmarks sweep).
  ParamMap Params;
  /// Run the pHPF-style scalarizer before analysis (Figure 3's pipeline).
  bool Scalarize = true;
  /// Fuse adjacent conformable nests after scalarization (the repair the
  /// paper's Section 2.3 notes "is not always possible"); off by default to
  /// match the pHPF pipeline.
  bool FuseLoops = false;
};

/// Analysis results for one routine.
struct RoutineResult {
  Routine *R = nullptr;
  std::unique_ptr<AnalysisContext> Ctx;
  CommPlan Plan;
};

/// Results for one compilation.
struct CompileResult {
  bool Ok = false;
  std::string Errors;
  std::unique_ptr<Program> Prog;
  std::vector<RoutineResult> Routines;

  /// The result for a routine by name; null when absent.
  const RoutineResult *find(const std::string &Name) const;
};

/// Parses, scalarizes and analyzes \p Source under \p Opts.
CompileResult compileSource(const std::string &Source,
                            const CompileOptions &Opts);

/// Analyzes one already-built (and already-scalarized) routine.
RoutineResult analyzeRoutine(Routine &R, const PlacementOptions &Opts);

} // namespace gca

#endif // GCA_DRIVER_COMPILE_H
