//===- driver/CachedPipeline.h - Cache-fronted pipeline ---------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue between the pass pipeline (driver/Pipeline.h) and the
/// content-addressed result cache (support/ResultCache.h).
///
/// Cache-key discipline: the key must capture EVERY input that can change a
/// compilation's output — the exact source bytes, the full, canonically
/// normalized CompileOptions (strategy, thresholds, extension toggles, audit
/// and lint switches, dump-after selector, param overrides sorted by name
/// and default-filled), the pipeline's pass-list fingerprint, and the tool
/// version string. Any new pass or option MUST be folded into
/// optionsFingerprint()/pipelineFingerprint(), or warm replays silently go
/// stale; tests/test_cache.cpp enumerates option flips to enforce this.
///
/// On a hit, CachedPipeline::run replays the stored artifacts into the
/// Session (diagnostics, plan text, dump-after records, counters) without
/// executing a single pass; on a miss it runs the pipeline and stores the
/// harvest. Either way the session renders bitwise-identical output.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_DRIVER_CACHEDPIPELINE_H
#define GCA_DRIVER_CACHEDPIPELINE_H

#include "driver/Pipeline.h"
#include "support/ResultCache.h"

namespace gca {

/// Version string folded into every cache key: bump whenever any pass
/// changes behavior without changing its name, so stale on-disk entries
/// from older builds can never replay.
extern const char *const kGcaCacheVersion;

/// Canonical text rendering of \p Opts: every field is emitted explicitly
/// (defaults included) in a fixed order, with param overrides sorted by
/// name, so semantically identical option sets — however they were built up
/// — render and hash identically. The non-semantic PlacementOptions::Stats
/// export pointer is excluded.
std::string optionsFingerprint(const CompileOptions &Opts);

/// The pipeline's pass list as "pass:<name>" lines, in order.
std::string pipelineFingerprint(const Pipeline &P);

/// The content-addressed key for compiling \p Source under \p Opts with
/// \p P: a digest of (version, options fingerprint, pipeline fingerprint,
/// source bytes).
CacheKey compileCacheKey(const std::string &Source, const CompileOptions &Opts,
                         const Pipeline &P = Pipeline::standard());

/// Builds the replayable artifacts of a finished session (the value stored
/// under its cache key). The session must have run to completion. Routines
/// the session replayed from the routine cache contribute their cached plan
/// text (their live plan was never materialized).
CachedResult harvestSession(Session &S);

/// --- Routine-granularity keys ---------------------------------------------

/// One `routine` block of an HPF-lite source, as sliced by
/// sliceRoutineSources(): the marker line plus everything up to the next
/// marker (or end of file).
struct RoutineSlice {
  std::string Name;
  int StartLine = 0; ///< 1-based source line of the `routine` marker.
  std::string Text;  ///< Marker line through the line before the next marker.
};

/// Splits \p Source at `routine <name>` marker lines (the only place the
/// grammar admits the keyword at the start of a line) and fills \p Prelude
/// with everything before the first marker — the program/param header every
/// routine's analysis can see. Returns no slices when the file has no
/// markers: such a file is one implicit routine and the whole-file cache
/// entry already covers it at routine granularity.
std::vector<RoutineSlice> sliceRoutineSources(const std::string &Source,
                                              std::string &Prelude);

/// The content-addressed key for one routine's per-routine pass artifacts:
/// a digest of (version, options fingerprint, pipeline fingerprint, prelude,
/// start line, routine text). The start line is key material because cached
/// diagnostics carry absolute line numbers — an edit that shifts a routine
/// invalidates it, while an in-place edit of one routine leaves every other
/// routine's key (and so its cache entry) intact.
CacheKey routineCacheKey(const std::string &Prelude,
                         const std::string &RoutineText, int StartLine,
                         const CompileOptions &Opts,
                         const Pipeline &P = Pipeline::standard());

/// A pipeline fronted by a result cache.
class CachedPipeline {
public:
  explicit CachedPipeline(ResultCache &Cache,
                          const Pipeline &P = Pipeline::standard())
      : Cache(Cache), P(P) {}

  /// Runs \p S to completion: replays a cached result when one exists,
  /// otherwise runs the pipeline and stores the harvest. Single-flight —
  /// concurrent sessions with identical keys compute once. \returns true
  /// on a cache hit (S.Result.FromCache is set accordingly).
  bool run(Session &S);

private:
  /// Populates S.RoutineCache from the source's routine slices (looking up
  /// each key, installing hits) — or leaves it empty when routine caching
  /// cannot apply: dump-after hooks and --verify=each need live IR for every
  /// routine, files without markers have nothing finer than the whole file,
  /// and duplicate routine names would make keys ambiguous.
  void setupRoutineCache(Session &S);
  /// Stores the harvest of every missed routine after a successful run.
  void storeRoutineResults(Session &S);

  ResultCache &Cache;
  const Pipeline &P;
};

} // namespace gca

#endif // GCA_DRIVER_CACHEDPIPELINE_H
