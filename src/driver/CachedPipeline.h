//===- driver/CachedPipeline.h - Cache-fronted pipeline ---------*- C++ -*-===//
//
// Part of the gcomm project: a reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue between the pass pipeline (driver/Pipeline.h) and the
/// content-addressed result cache (support/ResultCache.h).
///
/// Cache-key discipline: the key must capture EVERY input that can change a
/// compilation's output — the exact source bytes, the full, canonically
/// normalized CompileOptions (strategy, thresholds, extension toggles, audit
/// and lint switches, dump-after selector, param overrides sorted by name
/// and default-filled), the pipeline's pass-list fingerprint, and the tool
/// version string. Any new pass or option MUST be folded into
/// optionsFingerprint()/pipelineFingerprint(), or warm replays silently go
/// stale; tests/test_cache.cpp enumerates option flips to enforce this.
///
/// On a hit, CachedPipeline::run replays the stored artifacts into the
/// Session (diagnostics, plan text, dump-after records, counters) without
/// executing a single pass; on a miss it runs the pipeline and stores the
/// harvest. Either way the session renders bitwise-identical output.
///
//===----------------------------------------------------------------------===//

#ifndef GCA_DRIVER_CACHEDPIPELINE_H
#define GCA_DRIVER_CACHEDPIPELINE_H

#include "driver/Pipeline.h"
#include "support/ResultCache.h"

namespace gca {

/// Version string folded into every cache key: bump whenever any pass
/// changes behavior without changing its name, so stale on-disk entries
/// from older builds can never replay.
extern const char *const kGcaCacheVersion;

/// Canonical text rendering of \p Opts: every field is emitted explicitly
/// (defaults included) in a fixed order, with param overrides sorted by
/// name, so semantically identical option sets — however they were built up
/// — render and hash identically. The non-semantic PlacementOptions::Stats
/// export pointer is excluded.
std::string optionsFingerprint(const CompileOptions &Opts);

/// The pipeline's pass list as "pass:<name>" lines, in order.
std::string pipelineFingerprint(const Pipeline &P);

/// The content-addressed key for compiling \p Source under \p Opts with
/// \p P: a digest of (version, options fingerprint, pipeline fingerprint,
/// source bytes).
CacheKey compileCacheKey(const std::string &Source, const CompileOptions &Opts,
                         const Pipeline &P = Pipeline::standard());

/// Builds the replayable artifacts of a finished session (the value stored
/// under its cache key). The session must have run to completion.
CachedResult harvestSession(Session &S);

/// A pipeline fronted by a result cache.
class CachedPipeline {
public:
  explicit CachedPipeline(ResultCache &Cache,
                          const Pipeline &P = Pipeline::standard())
      : Cache(Cache), P(P) {}

  /// Runs \p S to completion: replays a cached result when one exists,
  /// otherwise runs the pipeline and stores the harvest. Single-flight —
  /// concurrent sessions with identical keys compute once. \returns true
  /// on a cache hit (S.Result.FromCache is set accordingly).
  bool run(Session &S);

private:
  ResultCache &Cache;
  const Pipeline &P;
};

} // namespace gca

#endif // GCA_DRIVER_CACHEDPIPELINE_H
